// Pay-per-view: the paper's motivating workload — a large subscriber
// population with burst churn (members cancelling at the end of a show).
// The example runs the same churn against a batching and a non-batching
// deployment and reports the §III-E savings in rekey multicasts, then
// scales the analysis to the paper's 100,000-member group with the
// tree-level harness.
//
// Run with: go run ./examples/payperview
package main

import (
	"fmt"
	"os"
	"time"

	"mykil/internal/bench"
	"mykil/internal/core"
	"mykil/internal/member"
	"mykil/internal/simnet"
)

const (
	subscribers = 24
	churnRounds = 6
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "payperview:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("== pay-per-view churn, with and without §III-E batching ==")
	unbatched, err := runBroadcastDay(false)
	if err != nil {
		return err
	}
	batched, err := runBroadcastDay(true)
	if err != nil {
		return err
	}
	fmt.Printf("\nrekey multicast frames on the wire:\n")
	fmt.Printf("  without batching: %d\n", unbatched)
	fmt.Printf("  with batching:    %d\n", batched)
	if unbatched > 0 {
		fmt.Printf("  savings:          %.0f%% (paper claims 40-60%%)\n",
			100*(1-float64(batched)/float64(unbatched)))
	}

	fmt.Println("\n== the same effect at paper scale (tree-level analysis) ==")
	rows, err := bench.BatchingSavings(bench.PaperAreaSize, 2000, []int{2, 3}, bench.PaperArity, 7)
	if err != nil {
		return err
	}
	fmt.Print(bench.BatchingTable(rows))
	return nil
}

// runBroadcastDay simulates one "show": subscribers join, data flows,
// then viewers cancel in bursts between data packets. It returns how
// many rekey-multicast frames crossed the network.
func runBroadcastDay(batching bool) (int64, error) {
	net := simnet.New(simnet.Config{})
	opts := []core.Option{
		core.WithAreas(1),
		core.WithRSABits(512),
		core.WithNet(net),
		core.WithRekeyInterval(50 * time.Millisecond),
		core.WithOpTimeout(30 * time.Second),
	}
	if batching {
		opts = append(opts, core.WithBatching())
	}
	g, err := core.New(opts...)
	if err != nil {
		net.Close()
		return 0, err
	}
	defer func() {
		g.Close()
		net.Close()
	}()
	if err := g.WarmMemberKeys(subscribers); err != nil {
		return 0, err
	}

	members := make([]*member.Member, 0, subscribers)
	joinOne := func(id string) error {
		m, err := g.NewMember(id, core.MemberConfig{})
		if err != nil {
			return err
		}
		members = append(members, m)
		if !batching {
			return m.Join()
		}
		// Under batching, admissions complete at the next flush; run the
		// join asynchronously and force progress with data packets.
		done := make(chan error, 1)
		go func() { done <- m.Join() }()
		deadline := time.After(30 * time.Second)
		for {
			select {
			case err := <-done:
				return err
			case <-deadline:
				return fmt.Errorf("join %s stalled", id)
			case <-time.After(10 * time.Millisecond):
				g.Controller(0).FlushBatch()
			}
		}
	}
	for i := 0; i < subscribers; i++ {
		if err := joinOne(fmt.Sprintf("sub%02d", i)); err != nil {
			return 0, err
		}
	}

	// Measure only the broadcast-phase rekeys: the join phase is forced
	// to flush per admission either way.
	time.Sleep(100 * time.Millisecond) // let join-phase rekeys drain
	baseline := make(map[*member.Member]int64, len(members))
	for _, m := range members {
		baseline[m] = m.Rekeys()
	}

	// The broadcast: data packets interleaved with cancellation bursts.
	alive := members
	for round := 0; round < churnRounds; round++ {
		// End-of-show burst: several subscribers cancel back to back.
		for i := 0; i < 3 && len(alive) > 4; i++ {
			leaver := alive[len(alive)-1]
			alive = alive[:len(alive)-1]
			if err := leaver.Leave(); err != nil {
				return 0, err
			}
		}
		if err := alive[0].Send([]byte(fmt.Sprintf("scene %d", round))); err != nil {
			return 0, err
		}
		time.Sleep(30 * time.Millisecond)
	}
	// Let final rekeys drain.
	time.Sleep(200 * time.Millisecond)

	// Count churn-phase rekey frames applied by the surviving members.
	var rekeys int64
	for _, m := range alive {
		rekeys += m.Rekeys() - baseline[m]
	}
	return rekeys, nil
}
