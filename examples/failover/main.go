// Failover: the paper's §IV-C fault-tolerance machinery. An area
// controller is replicated primary-backup; when the primary crashes, the
// backup detects missed heartbeats, reconstructs the area from the
// replicated state (auxiliary tree, member public keys, parent/child
// identities), announces itself, and service continues. A second act
// crashes the root controller of a three-area tree and shows the orphan
// controllers re-parenting from their preferred lists.
//
// Run with: go run ./examples/failover
package main

import (
	"fmt"
	"os"
	"time"

	"mykil/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "failover:", err)
		os.Exit(1)
	}
}

func run() error {
	if err := actOne(); err != nil {
		return err
	}
	return actTwo()
}

// actOne: primary-backup takeover of an area controller.
func actOne() error {
	fmt.Println("== act one: primary-backup controller failover ==")
	g, err := core.New(
		core.WithAreas(1),
		core.WithRSABits(1024),
		core.WithBackups(),
		core.WithTIdle(40*time.Millisecond),
		core.WithTActive(80*time.Millisecond),
		core.WithHeartbeatEvery(40*time.Millisecond),
		core.WithOpTimeout(30*time.Second),
	)
	if err != nil {
		return err
	}
	defer g.Close()

	received := make(chan string, 8)
	if _, err := g.AddMember("viewer", core.MemberConfig{
		OnData: func(payload []byte, origin string) {
			received <- fmt.Sprintf("  viewer received %q from %s", payload, origin)
		},
	}); err != nil {
		return err
	}
	sender, err := g.AddMember("sender", core.MemberConfig{})
	if err != nil {
		return err
	}
	fmt.Println("two members joined; primary controller is syncing state to its backup")

	deadline := time.Now().Add(20 * time.Second)
	for g.Backup(0).StateMembers() != 2 {
		if time.Now().After(deadline) {
			return fmt.Errorf("backup never absorbed the member table")
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("backup holds the replicated state: %d members, tree, parent/child identities\n",
		g.Backup(0).StateMembers())

	if err := sender.Send([]byte("before the crash")); err != nil {
		return err
	}
	fmt.Println(<-received)

	fmt.Println("\ncrashing the primary controller ...")
	g.Net.Crash(core.ACAddr(0))
	for {
		if _, err := g.Backup(0).Promoted(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("backup never promoted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Println("backup promoted itself after missed heartbeats and announced the takeover")

	for {
		if err := sender.Send([]byte("after the crash")); err == nil {
			select {
			case msg := <-received:
				fmt.Println(msg)
				fmt.Println("service continued without re-registration")
				fmt.Println()
				return nil
			case <-time.After(200 * time.Millisecond):
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("no delivery through the backup")
		}
	}
}

// actTwo: orphaned controllers re-parent after the root dies.
func actTwo() error {
	fmt.Println("== act two: area-tree repair after the root controller dies ==")
	g, err := core.New(
		core.WithAreas(3), // ac-0 root; ac-1 and ac-2 its children
		core.WithRSABits(1024),
		core.WithTIdle(40*time.Millisecond),
		core.WithTActive(80*time.Millisecond),
		core.WithOpTimeout(30*time.Second),
	)
	if err != nil {
		return err
	}
	defer g.Close()

	deadline := time.Now().Add(20 * time.Second)
	for g.Controller(1).ParentID() != core.ACID(0) || g.Controller(2).ParentID() != core.ACID(0) {
		if time.Now().After(deadline) {
			return fmt.Errorf("initial area tree never formed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Println("area tree formed: ac-1 and ac-2 are children of root ac-0")

	fmt.Println("crashing the root controller ac-0 ...")
	g.Net.Crash(core.ACAddr(0))
	for {
		p1, p2 := g.Controller(1).ParentID(), g.Controller(2).ParentID()
		if p1 != core.ACID(0) && p2 != core.ACID(0) && (p1 != "" || p2 != "") {
			fmt.Printf("orphans re-parented from their preferred lists: ac-1 -> %q, ac-2 -> %q\n",
				p1, p2)
			fmt.Println("the surviving areas form a connected tree again")
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("orphans never re-parented")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
