// Hand-held: the paper's §V-E feasibility scenario. A resource-limited
// "PDA" member joins the group using the RC4 data path while a desktop
// member streams video-sized chunks; the example measures the PDA-side
// decryption throughput and compares it against the paper's multimedia
// bit-rate requirement (one minute of high-resolution MPEG-4 in 10 MB).
//
// Run with: go run ./examples/handheld
package main

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"mykil/internal/bench"
	"mykil/internal/core"
	"mykil/internal/wire"
)

const (
	chunkSize = 256 << 10 // one "video chunk"
	chunks    = 40        // 10 MB total: one minute of the paper's MPEG-4
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "handheld:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("== hand-held device feasibility (paper §V-E) ==")
	g, err := core.New(core.WithAreas(1), core.WithRSABits(1024))
	if err != nil {
		return err
	}
	defer g.Close()

	var receivedBytes atomic.Int64
	var receivedChunks atomic.Int64
	pda, err := g.AddMember("pda", core.MemberConfig{
		DataCipher: wire.CipherRC4,
		OnData: func(payload []byte, _ string) {
			receivedBytes.Add(int64(len(payload)))
			receivedChunks.Add(1)
		},
	})
	if err != nil {
		return err
	}
	desktop, err := g.AddMember("desktop", core.MemberConfig{DataCipher: wire.CipherRC4})
	if err != nil {
		return err
	}
	fmt.Printf("pda joined with the RC4 data path (%d keys, ~%d B of key storage — fits any device)\n",
		pda.NumKeys(), pda.NumKeys()*16)
	fmt.Println("desktop streams one minute of video (10 MB)")

	chunk := make([]byte, chunkSize)
	for i := range chunk {
		chunk[i] = byte(i)
	}
	start := time.Now()
	for i := 0; i < chunks; i++ {
		if err := desktop.Send(chunk); err != nil {
			return err
		}
	}
	deadline := time.Now().Add(60 * time.Second)
	for receivedChunks.Load() < chunks {
		if time.Now().After(deadline) {
			return fmt.Errorf("received %d of %d chunks", receivedChunks.Load(), chunks)
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)
	mb := float64(receivedBytes.Load()) / (1 << 20)
	fmt.Printf("  delivered %.1f MB end-to-end (encrypt + relay + decrypt) in %v — %.1f MB/s\n",
		mb, elapsed.Round(time.Millisecond), mb/elapsed.Seconds())
	fmt.Printf("  one minute of the paper's MPEG-4 stream processed in %.2fs of wall time\n",
		elapsed.Seconds())

	fmt.Println("\nraw RC4 throughput on this host (the paper's microbenchmark):")
	r := bench.RC4Throughput(16)
	fmt.Printf("  encrypt %.0f MB/s, decrypt %.0f MB/s — paper saw ~50 MB/s on a 600 MHz Celeron\n",
		r.EncryptMBs, r.DecryptMBs)
	if r.Feasible() && elapsed < time.Minute {
		fmt.Println("verdict: real-time multimedia over Mykil is comfortably feasible on small devices")
	} else {
		fmt.Println("verdict: NOT feasible on this host")
	}
	return nil
}
