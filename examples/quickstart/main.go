// Quickstart: stand up a one-area Mykil group, register three members
// through the full seven-step join protocol, exchange encrypted multicast
// data, and watch a leave trigger an LKH-style rekey that locks the
// departed member out.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"mykil/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("== Mykil quickstart ==")
	g, err := core.New(core.WithAreas(1), core.WithRSABits(1024))
	if err != nil {
		return err
	}
	defer g.Close()
	fmt.Println("started: registration server + 1 area controller")

	received := make(chan string, 16)
	onData := func(who string) func([]byte, string) {
		return func(payload []byte, origin string) {
			received <- fmt.Sprintf("  %s received %q from %s", who, payload, origin)
		}
	}

	names := []string{"alice", "bob", "carol"}
	for _, name := range names {
		start := time.Now()
		if _, err := g.AddMember(name, core.MemberConfig{OnData: onData(name)}); err != nil {
			return fmt.Errorf("join %s: %w", name, err)
		}
		fmt.Printf("%s joined via the 7-step protocol in %v (area epoch now %d)\n",
			name, time.Since(start).Round(time.Microsecond), g.Controller(0).Epoch())
	}

	fmt.Println("\nalice multicasts a message:")
	if err := g.Member("alice").Send([]byte("the show starts at nine")); err != nil {
		return err
	}
	for i := 0; i < 2; i++ { // bob and carol
		fmt.Println(<-received)
	}

	fmt.Println("\nbob leaves; the area controller rekeys the auxiliary-key tree:")
	epochBefore := g.Controller(0).Epoch()
	if err := g.Member("bob").Leave(); err != nil {
		return err
	}
	deadline := time.Now().Add(5 * time.Second)
	for g.Controller(0).Epoch() == epochBefore {
		if time.Now().After(deadline) {
			return fmt.Errorf("rekey never happened")
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("  epoch %d -> %d; members now: %d\n",
		epochBefore, g.Controller(0).Epoch(), g.Controller(0).NumMembers())

	// Wait for carol to converge to the new epoch before sending.
	for g.Member("carol").Epoch() != g.Controller(0).Epoch() {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Println("\ncarol multicasts after the rekey:")
	if err := g.Member("carol").Send([]byte("post-leave message")); err != nil {
		return err
	}
	fmt.Println(<-received) // alice only
	select {
	case msg := <-received:
		return fmt.Errorf("forward secrecy violated: %s", msg)
	case <-time.After(300 * time.Millisecond):
		fmt.Println("  bob (departed) received nothing — forward secrecy holds")
	}

	fmt.Printf("\nnetwork totals: %s\n", g.Net.Stats())
	return nil
}
