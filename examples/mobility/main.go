// Mobility: the paper's §IV-B scenario. A member joins one area, the
// network partitions it away from its controller, the member detects the
// silence (no alive messages for 5×T_idle), and rejoins a different area
// presenting only its Kerberos-style ticket — no registration server
// involved. The example also shows the anti-cohort check rejecting a
// concurrent second use of the same ticket.
//
// Run with: go run ./examples/mobility
package main

import (
	"fmt"
	"os"
	"time"

	"mykil/internal/area"
	"mykil/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mobility:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("== Mykil mobility demo ==")
	g, err := core.New(
		core.WithAreas(2),
		core.WithRSABits(1024),
		core.WithPolicy(area.AdmitOnPartition),
		core.WithTIdle(40*time.Millisecond),
		core.WithTActive(80*time.Millisecond),
		core.WithVerifyTimeout(300*time.Millisecond),
		core.WithOpTimeout(30*time.Second),
	)
	if err != nil {
		return err
	}
	defer g.Close()
	fmt.Println("started: registration server + 2 area controllers (ac-0 root, ac-1 child)")

	received := make(chan string, 8)
	roamer, err := g.AddMember("roamer", core.MemberConfig{
		AutoRejoin: true,
		OnData: func(payload []byte, origin string) {
			received <- fmt.Sprintf("  roamer received %q from %s", payload, origin)
		},
	})
	if err != nil {
		return err
	}
	home := roamer.ControllerID()
	fmt.Printf("roamer registered once and joined area served by %s; ticket issued\n", home)

	if _, err := g.AddMember("speaker", core.MemberConfig{}); err != nil {
		return err
	}
	speaker := g.Member("speaker")
	fmt.Printf("speaker joined area served by %s\n", speaker.ControllerID())

	if err := speaker.Send([]byte("before the partition")); err != nil {
		return err
	}
	fmt.Println(<-received)

	fmt.Printf("\npartitioning roamer away from %s ...\n", home)
	g.Net.SetPartitions([]string{home})

	deadline := time.Now().Add(20 * time.Second)
	for roamer.ControllerID() == home || !roamer.Connected() {
		if time.Now().After(deadline) {
			return fmt.Errorf("roamer never rejoined")
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("roamer detected controller silence (5xT_idle) and re-joined via ticket at %s\n",
		roamer.ControllerID())
	fmt.Println("  (6-step rejoin, no registration server involved)")

	g.Net.Heal()
	fmt.Println("\npartition healed; multicast reaches the roamer in its new area:")
	// The speaker may itself need a moment if it shared the partition.
	for {
		if err := speaker.Send([]byte("after the move")); err != nil {
			return err
		}
		select {
		case msg := <-received:
			fmt.Println(msg)
			fmt.Println("\nmobility demo complete: one registration, two areas, zero re-registration")
			return nil
		case <-time.After(200 * time.Millisecond):
			if time.Now().After(deadline) {
				return fmt.Errorf("no delivery after heal")
			}
		}
	}
}
