package mykil_test

// One benchmark per table and figure of the paper's §V evaluation, plus
// the §III batching claim and the DESIGN.md ablations. Each benchmark
// regenerates its experiment's data with the same code paths as
// cmd/mykil-bench and reports the headline numbers via b.ReportMetric, so
// `go test -bench=. -benchmem` reproduces the entire evaluation.
//
// Protocol-latency benchmarks run with 1024-bit RSA to keep b.N key
// generation affordable; `mykil-bench -exp joinlat -rsabits 2048`
// reproduces the paper's exact key size.

import (
	"fmt"
	"testing"
	"time"

	"mykil/internal/bench"
	"mykil/internal/core"
	"mykil/internal/crypt"
	"mykil/internal/simnet"
)

// BenchmarkTableStorageMember regenerates the §V-A member-storage table
// (paper: Iolus 32 B, LKH 272 B, Mykil 176 B of symmetric keys).
func BenchmarkTableStorageMember(b *testing.B) {
	var r *bench.StorageResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = bench.Storage(bench.PaperGroupSize, 20, bench.PaperArity)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.MemberBytesIolus), "iolus-B")
	b.ReportMetric(float64(r.MemberBytesLKH), "lkh-B")
	b.ReportMetric(float64(r.MemberBytesMykil), "mykil-B")
	if !r.OrderingHolds() {
		b.Error("paper ordering violated")
	}
}

// BenchmarkTableStorageController regenerates the §V-A controller-storage
// table (paper: Iolus ~80 KB, Mykil ~132 KB, LKH ~4 MB).
func BenchmarkTableStorageController(b *testing.B) {
	var r *bench.StorageResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = bench.Storage(bench.PaperGroupSize, 20, bench.PaperArity)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.CtrlBytesIolus), "iolus-B")
	b.ReportMetric(float64(r.CtrlBytesLKH), "lkh-B")
	b.ReportMetric(float64(r.CtrlBytesMykil), "mykil-B")
}

// BenchmarkTableCPULeave regenerates the §V-B per-member key-update
// distribution for one leave (paper: 50%/25%/12.5%/... members updating
// 1/2/3/... keys).
func BenchmarkTableCPULeave(b *testing.B) {
	var r *bench.CPUResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = bench.CPULeave(bench.PaperGroupSize, bench.PaperAreaSize, bench.PaperArity)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.IolusTotal), "iolus-updates")
	b.ReportMetric(float64(r.LKHTotal), "lkh-updates")
	b.ReportMetric(float64(r.MykilTotal), "mykil-updates")
	if !r.GeometricShapeHolds() {
		b.Error("geometric distribution violated")
	}
}

// BenchmarkFig8LeaveBandwidth regenerates Fig. 8: rekey bytes per leave
// vs number of areas, for all three protocols.
func BenchmarkFig8LeaveBandwidth(b *testing.B) {
	for _, areas := range bench.PaperAreaCounts {
		b.Run(fmt.Sprintf("areas=%d", areas), func(b *testing.B) {
			var rows []bench.LeaveBandwidthRow
			var err error
			for i := 0; i < b.N; i++ {
				rows, err = bench.LeaveBandwidth(bench.PaperGroupSize, []int{areas}, bench.PaperArity)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rows[0].IolusBytes), "iolus-B")
			b.ReportMetric(float64(rows[0].LKHBytes), "lkh-B")
			b.ReportMetric(float64(rows[0].MykilBytes), "mykil-B")
		})
	}
}

// BenchmarkFig9MykilVsLKH regenerates Fig. 9, the Mykil-vs-LKH zoom of
// the same sweep (paper: LKH flat ~544 B, Mykil 544->384 B).
func BenchmarkFig9MykilVsLKH(b *testing.B) {
	var rows []bench.LeaveBandwidthRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.LeaveBandwidth(bench.PaperGroupSize, bench.PaperAreaCounts, bench.PaperArity)
		if err != nil {
			b.Fatal(err)
		}
	}
	if !bench.Fig8ShapeHolds(rows) {
		b.Error("figure shape violated")
	}
	first, last := rows[0], rows[len(rows)-1]
	b.ReportMetric(float64(first.MykilBytes), "mykil-1area-B")
	b.ReportMetric(float64(last.MykilBytes), "mykil-20areas-B")
	b.ReportMetric(float64(first.LKHBytes), "lkh-B")
}

// BenchmarkFig10LeaveAggregation regenerates Fig. 10: ten aggregated
// leaves, Mykil best/worst case vs unaggregated LKH.
func BenchmarkFig10LeaveAggregation(b *testing.B) {
	for _, areas := range []int{1, 8, 20} {
		b.Run(fmt.Sprintf("areas=%d", areas), func(b *testing.B) {
			var rows []bench.AggregationRow
			var err error
			for i := 0; i < b.N; i++ {
				rows, err = bench.LeaveAggregation(bench.PaperGroupSize, []int{areas}, 10, bench.PaperArity)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rows[0].LKHBytes), "lkh-B")
			b.ReportMetric(float64(rows[0].MykilWorstBytes), "mykil-worst-B")
			b.ReportMetric(float64(rows[0].MykilBestBytes), "mykil-best-B")
		})
	}
}

// latencyGroup builds a two-area deployment for the §V-D protocol
// benchmarks.
func latencyGroup(b *testing.B, skipVerify bool) *core.Group {
	b.Helper()
	opts := []core.Option{
		core.WithAreas(2),
		core.WithRSABits(1024),
		core.WithNet(simnet.New(simnet.Config{DefaultLatency: time.Millisecond})),
		core.WithOpTimeout(time.Minute),
	}
	if skipVerify {
		opts = append(opts, core.WithSkipRejoinVerify())
	}
	g, err := core.New(opts...)
	if err != nil {
		b.Fatal(err)
	}
	if err := g.WarmMemberKeys(b.N); err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkJoinProtocol measures the full 7-step join (§V-D; paper:
// 0.45 s on a Pentium-III LAN with RSA-2048).
func BenchmarkJoinProtocol(b *testing.B) {
	g := latencyGroup(b, false)
	defer g.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, err := g.NewMember(fmt.Sprintf("j%d", i), core.MemberConfig{})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := m.Join(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRejoinProtocol measures the 6-step ticket rejoin including the
// steps-4/5 verification (§V-D; paper: 0.40 s).
func BenchmarkRejoinProtocol(b *testing.B) {
	benchRejoin(b, false)
}

// BenchmarkRejoinNoVerify measures the rejoin with steps 4-5 disabled
// (§V-D option 2; paper: 0.28 s).
func BenchmarkRejoinNoVerify(b *testing.B) {
	benchRejoin(b, true)
}

func benchRejoin(b *testing.B, skipVerify bool) {
	g := latencyGroup(b, skipVerify)
	defer g.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, err := g.NewMember(fmt.Sprintf("r%d", i), core.MemberConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Join(); err != nil {
			b.Fatal(err)
		}
		home := m.ControllerID()
		var target string
		for _, e := range g.Directory() {
			if e.ID != home {
				target = e.ID
			}
		}
		if err := m.Leave(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := m.Rejoin(target); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRC4Throughput measures the §V-E hand-held data path (paper:
// ~50 MB/s on a 600 MHz Celeron).
func BenchmarkRC4Throughput(b *testing.B) {
	const size = 16 << 20
	buf := make([]byte, size)
	key := crypt.NewSymKey()
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		crypt.RC4XOR(key, buf)
	}
}

// BenchmarkBatchingSavings measures the §III claim that batching saves
// 40-60% of key-update multicasts.
func BenchmarkBatchingSavings(b *testing.B) {
	var rows []bench.BatchingRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.BatchingSavings(bench.PaperAreaSize, 2000, []int{2}, bench.PaperArity, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].MsgSavingsPct, "msg-savings-%")
	b.ReportMetric(rows[0].ByteSavingsPct, "byte-savings-%")
}

// BenchmarkAblationArity sweeps the tree fan-out design choice (the
// paper, via Wong et al., prescribes 4).
func BenchmarkAblationArity(b *testing.B) {
	for _, arity := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("arity=%d", arity), func(b *testing.B) {
			var rows []bench.ArityRow
			var err error
			for i := 0; i < b.N; i++ {
				rows, err = bench.AblationArity(bench.PaperAreaSize, []int{arity})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rows[0].LeaveBytes), "leave-B")
			b.ReportMetric(float64(rows[0].Depth), "depth")
		})
	}
}

// BenchmarkAblationFlushPolicy compares §III-E's flush triggers:
// data-triggered vs timer-triggered vs the paper's hybrid.
func BenchmarkAblationFlushPolicy(b *testing.B) {
	var rows []bench.FlushPolicyRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.FlushPolicies(bench.PaperAreaSize, 2000, 10, 0.8, 0.3, bench.PaperArity, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].RekeyMsgs), "data-msgs")
	b.ReportMetric(float64(rows[1].RekeyMsgs), "timer-msgs")
	b.ReportMetric(float64(rows[2].RekeyMsgs), "hybrid-msgs")
	b.ReportMetric(rows[2].MeanStaleness, "hybrid-staleness")
}

// BenchmarkAblationPrune compares the paper's §III-D no-prune policy with
// pruning under leave/join churn.
func BenchmarkAblationPrune(b *testing.B) {
	var r *bench.PruneResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = bench.AblationPrune(bench.PaperAreaSize, 500, bench.PaperArity)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.NoPrune.Splits), "noprune-splits")
	b.ReportMetric(float64(r.WithPrune.Splits), "prune-splits")
	b.ReportMetric(float64(r.NoPrune.FinalNodes), "noprune-nodes")
	b.ReportMetric(float64(r.WithPrune.FinalNodes), "prune-nodes")
}
