// Command mykil-bench regenerates every table and figure of the paper's
// evaluation (§V) at paper scale and prints the results, together with a
// verdict on whether each result's qualitative shape matches the paper.
//
// Usage:
//
//	mykil-bench                  # run everything
//	mykil-bench -exp fig8        # one experiment
//	mykil-bench -n 10000         # smaller group
//	mykil-bench -exp joinlat -rsabits 2048 -latency 2ms -iters 5
//
// Experiments: storage cpu fig8 fig9 fig10 joinlat protocost rc4 batching
// arity prune flush model fanout journal groupcommit election all. Add
// -csv for machine-readable output.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mykil/internal/bench"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp     = flag.String("exp", "all", "experiment to run: storage|cpu|fig8|fig9|fig10|joinlat|protocost|rc4|batching|arity|prune|flush|model|fanout|journal|groupcommit|election|megasim|all (megasim only runs when named)")
		n       = flag.Int("n", bench.PaperGroupSize, "group size")
		arity   = flag.Int("arity", bench.PaperArity, "auxiliary-key-tree arity (paper's byte arithmetic: 2)")
		rsaBits = flag.Int("rsabits", 2048, "RSA modulus bits for the latency experiment")
		latency = flag.Duration("latency", 2*time.Millisecond, "injected one-way link latency for the latency experiment")
		iters   = flag.Int("iters", 5, "iterations for the latency experiment")
		rc4MB   = flag.Int("rc4mb", 16, "buffer size (MB) for the RC4 experiment")
		csv     = flag.Bool("csv", false, "emit tables as CSV instead of aligned text")

		// Mega-sim (-exp megasim only; excluded from "all").
		msAreas  = flag.Int("msareas", 0, "megasim: area count (0 = n/5000)")
		msShards = flag.Int("msshards", 0, "megasim: simnet delivery lanes (0 = auto)")
		msBits   = flag.Int("msbits", 512, "megasim: shared-keypool RSA bits")
		msPool   = flag.Int("mspool", 32, "megasim: distinct shared key pairs")
		msDet    = flag.Bool("msdet", false, "megasim: deterministic single-lane virtual scheduler")
		msJoin   = flag.Int("msjoiners", 0, "megasim: concurrent joining workers (0 = n/200, clamped)")
		msSeed   = flag.Int64("msseed", 1, "megasim: key pool / jitter RNG seed")
		msQuiet  = flag.Bool("msquiet", false, "megasim: suppress progress lines")
	)
	flag.Parse()

	printTable := func(t *bench.Table) {
		if *csv {
			fmt.Printf("# %s\n%s", t.Title, t.CSV())
			return
		}
		fmt.Print(t)
	}

	ok := true
	runExp := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", name, err)
			ok = false
		}
	}

	verdict := func(holds bool, what string) {
		status := "HOLDS"
		if !holds {
			status = "DEVIATES"
			ok = false
		}
		fmt.Printf("  shape vs paper: %s (%s)\n\n", status, what)
	}

	runExp("storage", func() error {
		r, err := bench.Storage(*n, *n/bench.PaperAreaSize, *arity)
		if err != nil {
			return err
		}
		for _, t := range r.Tables() {
			printTable(t)
		}
		verdict(r.OrderingHolds(), "member: Iolus < Mykil < LKH; controller: LKH largest")
		return nil
	})

	runExp("cpu", func() error {
		r, err := bench.CPULeave(*n, bench.PaperAreaSize, *arity)
		if err != nil {
			return err
		}
		printTable(r.Table())
		verdict(r.GeometricShapeHolds(), "≈50%/25%/12.5%... geometric update distribution")
		return nil
	})

	fig8rows := func() ([]bench.LeaveBandwidthRow, error) {
		return bench.LeaveBandwidth(*n, bench.PaperAreaCounts, *arity)
	}
	runExp("fig8", func() error {
		rows, err := fig8rows()
		if err != nil {
			return err
		}
		printTable(bench.Fig8Table(rows))
		verdict(bench.Fig8ShapeHolds(rows), "Iolus linear in area size; Mykil ≤ LKH, decreasing")
		return nil
	})
	runExp("fig9", func() error {
		rows, err := fig8rows()
		if err != nil {
			return err
		}
		printTable(bench.Fig9Table(rows))
		verdict(bench.Fig8ShapeHolds(rows), "Mykil under flat LKH curve")
		return nil
	})

	runExp("fig10", func() error {
		rows, err := bench.LeaveAggregation(*n, bench.PaperAreaCounts, 10, *arity)
		if err != nil {
			return err
		}
		printTable(bench.Fig10Table(rows, 10))
		verdict(bench.Fig10ShapeHolds(rows), "best ≤ worst < unaggregated LKH")
		return nil
	})

	runExp("joinlat", func() error {
		r, err := bench.JoinRejoinLatency(bench.LatencyConfig{
			RSABits:     *rsaBits,
			LinkLatency: *latency,
			Iterations:  *iters,
		})
		if err != nil {
			return err
		}
		printTable(r.Table())
		verdict(r.ShapeHolds(), "rejoin ≤ join; no-verify rejoin fastest")
		return nil
	})

	runExp("rc4", func() error {
		r := bench.RC4Throughput(*rc4MB)
		printTable(r.Table())
		verdict(r.Feasible(), "throughput ≫ multimedia bit-rate")
		return nil
	})

	runExp("batching", func() error {
		rows, err := bench.BatchingSavings(bench.PaperAreaSize, 2000, []int{2, 3, 4}, *arity, 1)
		if err != nil {
			return err
		}
		printTable(bench.BatchingTable(rows))
		verdict(bench.BatchingClaimHolds(rows), "40-60% multicast savings reachable")
		return nil
	})

	runExp("arity", func() error {
		rows, err := bench.AblationArity(bench.PaperAreaSize, []int{2, 4, 8, 16})
		if err != nil {
			return err
		}
		printTable(bench.ArityTable(rows, bench.PaperAreaSize))
		fmt.Println()
		return nil
	})

	runExp("protocost", func() error {
		rows, err := bench.ProtocolCosts(*rsaBits)
		if err != nil {
			return err
		}
		printTable(bench.ProtocolCostTable(rows, *rsaBits))
		verdict(bench.RejoinShedsRSLoad(rows), "rejoin bypasses the registration server")
		return nil
	})

	runExp("flush", func() error {
		rows, err := bench.FlushPolicies(bench.PaperAreaSize, 2000, 10, 0.8, 0.3, *arity, 5)
		if err != nil {
			return err
		}
		printTable(bench.FlushPolicyTable(rows))
		verdict(bench.HybridDominates(rows), "hybrid trigger bounds staleness at bounded traffic")
		return nil
	})

	runExp("model", func() error {
		rows, err := bench.ModelCheck(*n, *n/bench.PaperAreaSize, *arity)
		if err != nil {
			return err
		}
		printTable(bench.ModelTable(rows, *n, *n/bench.PaperAreaSize, *arity))
		verdict(bench.ModelMatches(rows), "closed-form §V arithmetic = measured structures")
		return nil
	})

	runExp("fanout", func() error {
		r, err := bench.CryptoFanout(0, 0, 0, 0, nil)
		if err != nil {
			return err
		}
		printTable(r.Table())
		fmt.Println()
		return nil
	})

	runExp("journal", func() error {
		rows, err := bench.JournalThroughput(0, 0)
		if err != nil {
			return err
		}
		printTable(bench.JournalThroughputTable(rows, 0))
		verdict(bench.FsyncOrderingHolds(rows), "relaxing fsync never slows appends")
		r, err := bench.RecoveryVsRejoin(0, *rsaBits)
		if err != nil {
			return err
		}
		printTable(r.Table())
		verdict(r.RecoveryBeatsRejoin(), "journal restart cheaper than whole-area rejoin")
		return nil
	})

	runExp("groupcommit", func() error {
		srows, err := bench.SuiteRekey(0, 0, 0)
		if err != nil {
			return err
		}
		printTable(bench.SuiteRekeyTable(srows))
		verdict(bench.SuiteRekeyPoolingHolds(srows), "pooled rekey construction leaner than allocating, for every suite")
		grows, err := bench.GroupCommitThroughput(0, 0)
		if err != nil {
			return err
		}
		printTable(bench.GroupCommitTable(grows, 0))
		verdict(bench.GroupCommitSpeedupHolds(grows, 10), "group commit ≥10x the fsync=always single-writer baseline at equal durability")
		return nil
	})

	runExp("election", func() error {
		r, err := bench.ElectionFailover(bench.ElectionConfig{})
		if err != nil {
			return err
		}
		printTable(r.Table())
		verdict(r.SegmentCheaper(), "segment replication undercuts full snapshots")
		return nil
	})

	runExp("prune", func() error {
		r, err := bench.AblationPrune(bench.PaperAreaSize, 1000, *arity)
		if err != nil {
			return err
		}
		printTable(r.Table())
		verdict(r.NoPruneCheaperJoins(), "no-prune joins avoid splits")
		return nil
	})

	// The mega-sim runs only when asked for by name: at its default
	// 100k-member scale it is a minutes-long measurement run, not part
	// of the "all" regression sweep.
	if *exp == "megasim" {
		logf := func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "megasim: "+format+"\n", args...)
		}
		if *msQuiet {
			logf = nil
		}
		r, err := bench.MegaSim(bench.MegaSimConfig{
			Members:       *n,
			Areas:         *msAreas,
			Shards:        *msShards,
			RSABits:       *msBits,
			PoolSize:      *msPool,
			Arity:         4,
			Joiners:       *msJoin,
			Deterministic: *msDet,
			Seed:          *msSeed,
			Logf:          logf,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment megasim failed: %v\n", err)
			ok = false
		} else {
			for _, t := range r.Tables() {
				printTable(t)
			}
			verdict(r.ShapeHolds(), "measured structures, alive load, and fan-out match the §V model")
		}
	}

	if !ok {
		return 1
	}
	return 0
}
