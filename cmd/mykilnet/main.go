// Command mykilnet runs a complete Mykil group over real TCP on
// localhost — the transport the paper's prototype used. It stands up the
// registration server, an area-controller tree, and a set of members,
// each on its own TCP listener, then exchanges multicast traffic and
// reports per-member delivery and the measured join latencies.
//
// Usage: mykilnet [-areas N] [-members N] [-messages N] [-rsabits N]
// [-churn N] [-replicas N] [-split-at N] [-merge-at N]
// [-suite legacy|aes-gcm|chacha20-poly1305] [-fsync always|interval|never|group]
// [-metrics-addr HOST:PORT] [-trace FILE] [-linger D]
// [-simnet [-shards N] [-latency D]]
//
// With -replicas each controller gets N election-capable replicas; with
// -split-at / -merge-at the area map resizes itself as membership grows
// and shrinks.
//
// With -simnet the group runs over the in-process simulated network
// (sharded delivery lanes) instead of TCP; the shutdown summary then
// includes per-lane queue depths and drop counters.
//
// With -metrics-addr the process serves a Prometheus text exposition on
// /metrics (every component's counters plus the member join/rejoin
// latency histograms) and the standard net/http/pprof profiles under
// /debug/pprof/. With -trace every protocol event (join steps 1-7,
// rejoin steps 1-6, rekeys, alive rounds, recovery) is appended to FILE
// as one JSON object per line.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"sync/atomic"
	"time"

	"mykil/internal/core"
	"mykil/internal/member"
	"mykil/internal/obs"
	"mykil/internal/simnet"
	"mykil/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mykilnet:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		areas       = flag.Int("areas", 2, "number of areas")
		nMember     = flag.Int("members", 4, "number of members")
		messages    = flag.Int("messages", 5, "multicast messages to send")
		rsaBits     = flag.Int("rsabits", 2048, "RSA key size (paper: 2048)")
		churn       = flag.Int("churn", 0, "leave/rejoin cycles each member performs after the multicast phase")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address (e.g. 127.0.0.1:9190)")
		tracePath   = flag.String("trace", "", "append protocol trace events to this file as JSON lines")
		linger      = flag.Duration("linger", 0, "keep the group (and metrics endpoint) up this long after the run")
		jdir        = flag.String("journal-dir", "", "enable durable journaling under this directory; rerunning with the same directory restarts the group from its journals")
		fsync       = flag.String("fsync", "always", "journal sync policy: always, interval, never, or group (concurrent appends share fsyncs at full durability)")
		suite       = flag.String("suite", "", "cipher suite for key-tree and data-key sealing: legacy (default), aes-gcm, or chacha20-poly1305")
		segBytes    = flag.Int64("segment-bytes", 0, "journal segment rotation threshold (0 = default)")
		replicas    = flag.Int("replicas", 0, "replicas per controller running quorum leader election (0 = none)")
		splitAt     = flag.Int("split-at", 0, "split an area once its live membership exceeds this watermark (0 = never)")
		mergeAt     = flag.Int("merge-at", 0, "merge a non-root area into its parent once membership sinks under this watermark (0 = never)")
		useSimnet   = flag.Bool("simnet", false, "run over the in-process simulated network instead of TCP")
		shards      = flag.Int("shards", 0, "simnet delivery lanes (with -simnet; 0 = one per core)")
		latency     = flag.Duration("latency", 2*time.Millisecond, "simnet one-way link latency (with -simnet)")
	)
	flag.Parse()

	opts := []core.Option{
		core.WithAreas(*areas),
		core.WithRSABits(*rsaBits),
		core.WithOpTimeout(time.Minute),
		core.WithJournal(*jdir, *fsync),
		core.WithSegmentBytes(*segBytes),
		core.WithReplicas(*replicas),
		core.WithAreaWatermarks(*splitAt, *mergeAt),
		core.WithCipherSuite(*suite),
	}
	if *useSimnet {
		opts = append(opts, core.WithNet(simnet.New(simnet.Config{
			DefaultLatency: *latency,
			Shards:         *shards,
		})))
	} else {
		opts = append(opts, core.WithTransportFactory(func(string) (transport.Transport, error) {
			return transport.NewTCP("127.0.0.1:0")
		}))
	}
	if *tracePath != "" {
		f, err := os.OpenFile(*tracePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("open trace file: %w", err)
		}
		defer f.Close()
		sink := obs.NewJSONL(f)
		defer func() {
			if err := sink.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "mykilnet: trace:", err)
			}
		}()
		opts = append(opts, core.WithObserver(sink))
		fmt.Printf("tracing protocol events to %s (JSON lines)\n", *tracePath)
	}

	transportName := "TCP"
	if *useSimnet {
		transportName = "simnet"
	}
	fmt.Printf("starting Mykil over %s: %d areas, %d members, RSA-%d\n",
		transportName, *areas, *nMember, *rsaBits)
	g, err := core.New(opts...)
	if err != nil {
		return err
	}
	defer g.Close()

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			_ = g.WriteMetrics(w)
		})
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		srv := &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "mykilnet: metrics server:", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("metrics on http://%s/metrics, profiles on /debug/pprof/\n", *metricsAddr)
	}

	if *jdir != "" {
		if recovered := g.RecoverySummary(); len(recovered) == 0 {
			fmt.Printf("journaling to %s (fsync=%s); no prior state on disk\n", *jdir, *fsync)
		} else {
			fmt.Printf("journaling to %s (fsync=%s); recovered state:\n", *jdir, *fsync)
			for _, line := range recovered {
				fmt.Printf("  %s\n", line)
			}
		}
	}
	for _, e := range g.Directory() {
		fmt.Printf("  controller %s listening on %s\n", e.ID, e.Addr)
	}
	if err := g.WarmMemberKeys(*nMember); err != nil {
		return err
	}

	var delivered atomic.Int64
	members := make([]*member.Member, 0, *nMember)
	for i := 0; i < *nMember; i++ {
		// IDs are per-process: on a journaled restart the recovered
		// controller still knows the previous run's members (and would
		// deny a duplicate join); those entries age out via the §IV-A
		// silence eviction.
		id := fmt.Sprintf("tcp-member-%d-%d", os.Getpid(), i)
		start := time.Now()
		m, err := g.AddMember(id, core.MemberConfig{
			OnData: func([]byte, string) { delivered.Add(1) },
		})
		if err != nil {
			return fmt.Errorf("join %s: %w", id, err)
		}
		fmt.Printf("  %s joined %s in %v (7-step protocol over TCP)\n",
			id, m.ControllerID(), time.Since(start).Round(time.Microsecond))
		members = append(members, m)
	}

	want := int64(*messages) * int64(*nMember-1)
	for i := 0; i < *messages; i++ {
		sender := members[i%len(members)]
		if err := sender.Send([]byte(fmt.Sprintf("tcp multicast %d", i))); err != nil {
			return err
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for delivered.Load() < want {
		if time.Now().After(deadline) {
			return fmt.Errorf("delivered %d of %d", delivered.Load(), want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("delivered %d encrypted multicasts across %d %s-connected areas\n",
		delivered.Load(), *areas, transportName)

	// Churn: every member leaves and ticket-rejoins (to another area
	// when one exists), exercising the 6-step rejoin and filling the
	// rejoin latency histogram.
	for c := 0; c < *churn; c++ {
		for i, m := range members {
			// A rejoin target must be a controller the member learned —
			// at registration or via a reassignment — and still alive:
			// under dynamic watermarks the group view gains siblings the
			// member never met and loses ones it still remembers.
			live := make(map[string]bool)
			for _, e := range g.Directory() {
				live[e.ID] = true
			}
			target := m.ControllerID()
			for _, e := range m.Directory() {
				if e.ID != target && live[e.ID] {
					target = e.ID
					break
				}
			}
			// Under dynamic topology a watermark split or merge can have
			// this member mid-auto-rejoin (AreaReassign); wait the
			// operation out rather than treating the collision as fatal.
			if err := retryBusy(func() error { return m.Leave() }); err != nil {
				return fmt.Errorf("churn leave #%d: %w", i, err)
			}
			if err := retryBusy(func() error { return m.Rejoin(target) }); err != nil {
				if m.Connected() {
					continue // a topology reassignment re-attached it first
				}
				return fmt.Errorf("churn rejoin #%d: %w", i, err)
			}
		}
		fmt.Printf("churn cycle %d/%d: %d members rejoined\n", c+1, *churn, len(members))
	}

	if *linger > 0 {
		fmt.Printf("lingering %v (metrics stay live)\n", *linger)
		time.Sleep(*linger)
	}

	// Shutdown summary: the member-side protocol latency histograms and
	// every component's drop counters.
	registered := make(map[string]bool)
	for _, n := range g.Metrics().Names() {
		registered[n] = true
	}
	for _, name := range []string{obs.MetricJoinSeconds, obs.MetricRejoinSeconds} {
		if !registered[name] { // no member ever constructed (-members 0)
			continue
		}
		h := g.Metrics().GetHistogram(name)
		if h.Count() == 0 {
			continue
		}
		fmt.Printf("%s: n=%d mean=%.4fs p50=%.4fs p95=%.4fs p99=%.4fs\n",
			name, h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
	}
	fmt.Println("drop summary:")
	for _, line := range g.DropSummary() {
		fmt.Printf("  %s\n", line)
	}
	return nil
}

// retryBusy runs op, waiting out member.ErrBusy: a watermark split or
// merge may hold the member's operation slot with an automatic
// reassignment rejoin for a moment.
func retryBusy(op func() error) error {
	var err error
	for attempt := 0; attempt < 100; attempt++ {
		if err = op(); !errors.Is(err, member.ErrBusy) {
			return err
		}
		time.Sleep(100 * time.Millisecond)
	}
	return err
}
