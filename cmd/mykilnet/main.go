// Command mykilnet runs a complete Mykil group over real TCP on
// localhost — the transport the paper's prototype used. It stands up the
// registration server, an area-controller tree, and a set of members,
// each on its own TCP listener, then exchanges multicast traffic and
// reports per-member delivery and the measured join latencies.
//
// Usage: mykilnet [-areas N] [-members N] [-messages N] [-rsabits N]
package main

import (
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"mykil/internal/core"
	"mykil/internal/member"
	"mykil/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mykilnet:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		areas    = flag.Int("areas", 2, "number of areas")
		nMember  = flag.Int("members", 4, "number of members")
		messages = flag.Int("messages", 5, "multicast messages to send")
		rsaBits  = flag.Int("rsabits", 2048, "RSA key size (paper: 2048)")
		jdir     = flag.String("journal-dir", "", "enable durable journaling under this directory; rerunning with the same directory restarts the group from its journals")
		fsync    = flag.String("fsync", "always", "journal sync policy: always, interval, or never")
		segBytes = flag.Int64("segment-bytes", 0, "journal segment rotation threshold (0 = default)")
	)
	flag.Parse()

	fmt.Printf("starting Mykil over TCP: %d areas, %d members, RSA-%d\n",
		*areas, *nMember, *rsaBits)
	g, err := core.New(core.Config{
		NumAreas: *areas,
		RSABits:  *rsaBits,
		NewTransport: func(string) (transport.Transport, error) {
			return transport.NewTCP("127.0.0.1:0")
		},
		OpTimeout:    time.Minute,
		JournalDir:   *jdir,
		FsyncPolicy:  *fsync,
		SegmentBytes: *segBytes,
	})
	if err != nil {
		return err
	}
	defer g.Close()
	if *jdir != "" {
		if recovered := g.RecoverySummary(); len(recovered) == 0 {
			fmt.Printf("journaling to %s (fsync=%s); no prior state on disk\n", *jdir, *fsync)
		} else {
			fmt.Printf("journaling to %s (fsync=%s); recovered state:\n", *jdir, *fsync)
			for _, line := range recovered {
				fmt.Printf("  %s\n", line)
			}
		}
	}
	for _, e := range g.Directory() {
		fmt.Printf("  controller %s listening on %s\n", e.ID, e.Addr)
	}
	if err := g.WarmMemberKeys(*nMember); err != nil {
		return err
	}

	var delivered atomic.Int64
	members := make([]*member.Member, 0, *nMember)
	for i := 0; i < *nMember; i++ {
		// IDs are per-process: on a journaled restart the recovered
		// controller still knows the previous run's members (and would
		// deny a duplicate join); those entries age out via the §IV-A
		// silence eviction.
		id := fmt.Sprintf("tcp-member-%d-%d", os.Getpid(), i)
		start := time.Now()
		m, err := g.AddMember(id, core.MemberConfig{
			OnData: func([]byte, string) { delivered.Add(1) },
		})
		if err != nil {
			return fmt.Errorf("join %s: %w", id, err)
		}
		fmt.Printf("  %s joined %s in %v (7-step protocol over TCP)\n",
			id, m.ControllerID(), time.Since(start).Round(time.Microsecond))
		members = append(members, m)
	}

	want := int64(*messages) * int64(*nMember-1)
	for i := 0; i < *messages; i++ {
		sender := members[i%len(members)]
		if err := sender.Send([]byte(fmt.Sprintf("tcp multicast %d", i))); err != nil {
			return err
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for delivered.Load() < want {
		if time.Now().After(deadline) {
			return fmt.Errorf("delivered %d of %d", delivered.Load(), want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("delivered %d encrypted multicasts across %d TCP-connected areas\n",
		delivered.Load(), *areas)
	return nil
}
