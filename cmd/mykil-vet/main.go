// Command mykil-vet runs the repo's invariant checks (internal/analysis)
// over Go packages and prints file:line:col diagnostics.
//
// Usage:
//
//	mykil-vet [-checks keyleak,journalorder] [-json] [pattern ...]
//	mykil-vet -list
//
// Patterns follow the go tool's shape: a directory loads one package, a
// directory with a /... suffix loads the whole subtree (skipping testdata
// and vendor). The default pattern is ./... .
//
// -json prints diagnostics as a JSON array of
// {file, line, col, check, message} objects instead of the
// file:line:col text form; the exit-code contract is unchanged.
//
// Exit codes: 0 no diagnostics, 1 diagnostics were reported, 2 usage or
// load error. CI treats any nonzero exit as a failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mykil/internal/analysis"
)

// jsonDiag is the -json wire form of one diagnostic.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("mykil-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checksFlag := fs.String("checks", "", "comma-separated checks to run (default: all)")
	listFlag := fs.Bool("list", false, "list registered checks and exit")
	jsonFlag := fs.Bool("json", false, "print diagnostics as a JSON array")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listFlag {
		for _, c := range analysis.Checks() {
			fmt.Fprintf(stdout, "%s\n", c.Name)
			for _, line := range strings.Split(c.Doc, "\n") {
				fmt.Fprintf(stdout, "    %s\n", line)
			}
		}
		return 0
	}

	checks, err := analysis.Lookup(*checksFlag)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	var pkgs []*analysis.Package
	for _, pat := range patterns {
		if dir, ok := strings.CutSuffix(pat, "/..."); ok {
			if dir == "" {
				dir = "."
			}
			tree, err := loader.LoadTree(dir)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			pkgs = append(pkgs, tree...)
			continue
		}
		pkg, err := loader.Load(pat)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}

	diags := analysis.Run(pkgs, checks)
	if *jsonFlag {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:    d.Pos.Filename,
				Line:    d.Pos.Line,
				Col:     d.Pos.Column,
				Check:   d.Check,
				Message: d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "mykil-vet: %d diagnostic(s)\n", len(diags))
		return 1
	}
	return 0
}
