// Command mykil-demo runs a scripted tour of Mykil on the simulated
// network: registration and join, encrypted multicast across an area
// tree, batched rekeying, ticket-based mobility across a partition, and
// primary-backup controller failover — the paper's §III and §IV machinery
// in one narrative run.
//
// Usage: mykil-demo [-areas N] [-members N] [-rsabits N] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"mykil/internal/area"
	"mykil/internal/core"
	"mykil/internal/member"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mykil-demo:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		areas   = flag.Int("areas", 3, "number of areas (controllers)")
		nMember = flag.Int("members", 6, "number of members")
		rsaBits = flag.Int("rsabits", 1024, "RSA key size")
		verbose = flag.Bool("v", false, "log protocol internals")
	)
	flag.Parse()

	opts := []core.Option{
		core.WithAreas(*areas),
		core.WithRSABits(*rsaBits),
		core.WithBackups(),
		core.WithPolicy(area.AdmitOnPartition),
		core.WithTIdle(40 * time.Millisecond),
		core.WithTActive(80 * time.Millisecond),
		core.WithHeartbeatEvery(40 * time.Millisecond),
		core.WithOpTimeout(time.Minute),
	}
	if *verbose {
		opts = append(opts, core.WithLogf(func(f string, a ...any) { fmt.Printf("    [log] "+f+"\n", a...) }))
	}

	fmt.Printf("== scene 1: deployment (%d areas, %d members, RSA-%d) ==\n",
		*areas, *nMember, *rsaBits)
	g, err := core.New(opts...)
	if err != nil {
		return err
	}
	defer g.Close()
	if err := g.WarmMemberKeys(*nMember); err != nil {
		return err
	}

	var delivered atomic.Int64
	members := make([]*member.Member, 0, *nMember)
	for i := 0; i < *nMember; i++ {
		id := fmt.Sprintf("member-%d", i)
		m, err := g.AddMember(id, core.MemberConfig{
			AutoRejoin: true,
			OnData:     func([]byte, string) { delivered.Add(1) },
		})
		if err != nil {
			return fmt.Errorf("join %s: %w", id, err)
		}
		members = append(members, m)
		fmt.Printf("  %s joined area of %s\n", id, m.ControllerID())
	}

	fmt.Println("\n== scene 2: encrypted multicast across the area tree ==")
	want := int64(*nMember - 1)
	if err := members[0].Send([]byte("opening credits")); err != nil {
		return err
	}
	if err := waitUntil(10*time.Second, func() bool { return delivered.Load() >= want }); err != nil {
		return fmt.Errorf("multicast: %w (delivered %d of %d)", err, delivered.Load(), want)
	}
	fmt.Printf("  1 multicast reached all %d other members, re-encrypted per area boundary\n", want)

	fmt.Println("\n== scene 3: leave and rekey ==")
	leaver := members[len(members)-1]
	leaverAC := leaver.ControllerID()
	if err := leaver.Leave(); err != nil {
		return err
	}
	fmt.Printf("  %s left; controller %s rotated every key on its tree path\n",
		"member-"+fmt.Sprint(*nMember-1), leaverAC)

	fmt.Println("\n== scene 4: ticket mobility across a partition ==")
	// Use a member homed away from ac-0 so scene 5's failover of ac-0 is
	// untouched by this partition.
	roamer := members[1%len(members)]
	home := roamer.ControllerID()
	// Partition the controller together with its backup so the scene
	// shows ticket mobility rather than a local failover.
	homeBackup := "backup-" + home[len("ac-"):]
	g.Net.SetPartitions([]string{home, homeBackup})
	fmt.Printf("  partitioned %s (and its backup) away; %s lost its alive messages\n",
		home, roamer.ControllerID())
	if err := waitUntil(30*time.Second, func() bool {
		return roamer.Connected() && roamer.ControllerID() != home
	}); err != nil {
		return fmt.Errorf("mobility: %w", err)
	}
	fmt.Printf("  the member re-joined via its ticket at %s (no registration server)\n",
		roamer.ControllerID())
	g.Net.Heal()

	fmt.Println("\n== scene 5: controller failover ==")
	// Pick a controller that still serves someone and is not the roamer's
	// new home... the root (ac-0) always exists; crash it.
	if err := waitUntil(10*time.Second, func() bool { return g.Backup(0).HasState() }); err != nil {
		return fmt.Errorf("replication: %w", err)
	}
	g.Net.Crash(core.ACAddr(0))
	fmt.Println("  crashed ac-0; its backup is watching heartbeats ...")
	if err := waitUntil(30*time.Second, func() bool {
		_, err := g.Backup(0).Promoted()
		return err == nil
	}); err != nil {
		return fmt.Errorf("failover: %w", err)
	}
	fmt.Println("  backup promoted itself from the replicated state and announced the takeover")

	fmt.Println("\n== epilogue ==")
	fmt.Printf("  network counters: %s\n", g.Net.Stats())
	fmt.Println("  every phase of the paper's §III/§IV machinery ran in one process")
	return nil
}

func waitUntil(timeout time.Duration, cond func() bool) error {
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out")
		}
		time.Sleep(10 * time.Millisecond)
	}
	return nil
}
