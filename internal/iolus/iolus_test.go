package iolus

import (
	"errors"
	"fmt"
	"testing"

	"mykil/internal/crypt"
)

func join(t *testing.T, s *Subgroup, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := s.Join(fmt.Sprintf("m%d", i)); err != nil {
			t.Fatalf("Join %d: %v", i, err)
		}
	}
}

func TestJoinLeaveLifecycle(t *testing.T) {
	s := New(Config{})
	join(t, s, 5)
	if s.NumMembers() != 5 {
		t.Fatalf("NumMembers = %d", s.NumMembers())
	}
	if !s.HasMember("m2") {
		t.Error("m2 missing")
	}
	if _, err := s.Leave("m2"); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	if s.HasMember("m2") || s.NumMembers() != 4 {
		t.Error("leave did not remove member")
	}
}

func TestErrors(t *testing.T) {
	s := New(Config{})
	join(t, s, 1)
	if _, err := s.Join("m0"); !errors.Is(err, ErrMemberExists) {
		t.Errorf("duplicate join: err=%v", err)
	}
	if _, err := s.Leave("ghost"); !errors.Is(err, ErrMemberUnknown) {
		t.Errorf("unknown leave: err=%v", err)
	}
	if _, err := s.PairwiseKey("ghost"); !errors.Is(err, ErrMemberUnknown) {
		t.Errorf("unknown pairwise: err=%v", err)
	}
}

func TestKeyChangesOnEveryOperation(t *testing.T) {
	s := New(Config{})
	seen := map[crypt.SymKey]bool{s.Key(): true}
	join(t, s, 3)
	if _, err := s.Leave("m1"); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	if seen[s.Key()] {
		t.Error("subgroup key repeated")
	}
	if s.Epoch() != 4 {
		t.Errorf("Epoch = %d, want 4", s.Epoch())
	}
}

func TestLeaveTrafficMatchesPaper(t *testing.T) {
	// §V-C: an area of 5000 members and 128-bit keys costs ~80,000 bytes
	// per leave. We use 500 members (same formula, scaled).
	s := New(Config{Accounting: true})
	join(t, s, 500)
	tr, err := s.Leave("m0")
	if err != nil {
		t.Fatalf("Leave: %v", err)
	}
	if tr.UnicastMessages != 499 {
		t.Errorf("unicast messages = %d, want 499", tr.UnicastMessages)
	}
	if tr.UnicastBytes != 499*crypt.SymKeyLen {
		t.Errorf("unicast bytes = %d, want %d", tr.UnicastBytes, 499*crypt.SymKeyLen)
	}
	if tr.MulticastBytes != 0 {
		t.Errorf("leave produced multicast bytes %d", tr.MulticastBytes)
	}
	if tr.TotalBytes() != tr.UnicastBytes {
		t.Error("TotalBytes mismatch")
	}
}

func TestJoinTrafficIsOneKey(t *testing.T) {
	s := New(Config{})
	join(t, s, 10)
	tr, err := s.Join("late")
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if tr.MulticastMessages != 1 || tr.MulticastBytes != crypt.SymKeyLen {
		t.Errorf("join multicast = %d msgs / %d bytes, want 1 / %d",
			tr.MulticastMessages, tr.MulticastBytes, crypt.SymKeyLen)
	}
}

func TestStorageCountsMatchPaper(t *testing.T) {
	s := New(Config{})
	join(t, s, 100)
	if got := s.ControllerKeyCount(); got != 101 {
		t.Errorf("controller keys = %d, want 101 (m pairwise + 1 subgroup)", got)
	}
	if got := s.MemberKeyCount(); got != 2 {
		t.Errorf("member keys = %d, want 2", got)
	}
}

func TestRekeyMessagesDecryptOnlyWithPairwise(t *testing.T) {
	s := New(Config{})
	join(t, s, 4)
	if _, err := s.Leave("m3"); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	msgs := s.RekeyMessages()
	if len(msgs) != 3 {
		t.Fatalf("rekey messages = %d, want 3", len(msgs))
	}
	for id, ct := range msgs {
		pk, err := s.PairwiseKey(id)
		if err != nil {
			t.Fatalf("PairwiseKey(%s): %v", id, err)
		}
		pt, err := crypt.Open(pk, ct)
		if err != nil {
			t.Fatalf("member %s cannot decrypt its rekey: %v", id, err)
		}
		got, err := crypt.SymKeyFromBytes(pt)
		if err != nil {
			t.Fatalf("bad key bytes: %v", err)
		}
		if !got.Equal(s.Key()) {
			t.Errorf("member %s decrypted the wrong key", id)
		}
		// A random key must not open it.
		if _, err := crypt.Open(crypt.NewSymKey(), ct); err == nil {
			t.Error("random key opened a pairwise rekey message")
		}
	}
}

func TestAccountingCiphertextSize(t *testing.T) {
	s := New(Config{Accounting: true})
	join(t, s, 3)
	for id, ct := range s.RekeyMessages() {
		if len(ct) != crypt.SymKeyLen {
			t.Errorf("accounting ciphertext for %s is %d bytes", id, len(ct))
		}
	}
}
