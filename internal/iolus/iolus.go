// Package iolus implements the Iolus baseline of Mittra [12] the paper
// compares against: a group-based hierarchy where each subgroup has a
// controller (GSA) holding one subgroup key plus a pairwise secret key per
// member. A leave re-keys the subgroup by unicasting the new subgroup key
// to every remaining member under its pairwise key — the O(m) cost that
// dominates the paper's Fig. 8.
package iolus

import (
	"errors"
	"fmt"

	"mykil/internal/crypt"
)

// Errors returned by subgroup operations.
var (
	ErrMemberExists  = errors.New("iolus: member already in subgroup")
	ErrMemberUnknown = errors.New("iolus: member not in subgroup")
)

// Config parameterizes a subgroup controller.
type Config struct {
	// KeyGen supplies fresh keys; nil means crypt.NewSymKey.
	KeyGen func() crypt.SymKey
	// Accounting skips real encryption and emits paper-sized (16-byte)
	// ciphertexts, for bandwidth sweeps at 100,000 members.
	Accounting bool
}

// RekeyTraffic reports the message cost of one membership operation under
// the paper's accounting (key-length bytes per encrypted key).
type RekeyTraffic struct {
	// MulticastMessages/MulticastBytes cover the subgroup-wide rekey
	// multicast (join: one encrypted key).
	MulticastMessages int
	MulticastBytes    int
	// UnicastMessages/UnicastBytes cover per-member unicasts (leave: one
	// per remaining member).
	UnicastMessages int
	UnicastBytes    int
}

// TotalBytes sums multicast and unicast bytes.
func (t RekeyTraffic) TotalBytes() int { return t.MulticastBytes + t.UnicastBytes }

// Subgroup is one Iolus subgroup controller (GSA).
type Subgroup struct {
	cfg      Config
	key      crypt.SymKey
	pairwise map[string]crypt.SymKey
	epoch    uint64
}

// New creates an empty subgroup.
func New(cfg Config) *Subgroup {
	if cfg.KeyGen == nil {
		cfg.KeyGen = crypt.NewSymKey
	}
	return &Subgroup{
		cfg:      cfg,
		key:      cfg.KeyGen(),
		pairwise: make(map[string]crypt.SymKey),
	}
}

// Key returns the current subgroup key.
func (s *Subgroup) Key() crypt.SymKey { return s.key }

// Epoch returns the number of rekey operations performed.
func (s *Subgroup) Epoch() uint64 { return s.epoch }

// NumMembers returns the subgroup size.
func (s *Subgroup) NumMembers() int { return len(s.pairwise) }

// HasMember reports membership.
func (s *Subgroup) HasMember(id string) bool {
	_, ok := s.pairwise[id]
	return ok
}

// PairwiseKey returns a member's pairwise secret, for tests.
func (s *Subgroup) PairwiseKey(id string) (crypt.SymKey, error) {
	k, ok := s.pairwise[id]
	if !ok {
		return crypt.SymKey{}, fmt.Errorf("%w: %q", ErrMemberUnknown, id)
	}
	return k, nil
}

// ControllerKeyCount returns how many keys the controller stores: one
// subgroup key plus one pairwise key per member (§V-A: "one subgroup key
// and m pairwise secret keys").
func (s *Subgroup) ControllerKeyCount() int { return 1 + len(s.pairwise) }

// MemberKeyCount returns how many keys one member stores: the subgroup
// key and its pairwise key (§V-A: "a member in Iolus will need to store 2
// keys").
func (s *Subgroup) MemberKeyCount() int { return 2 }

// Join admits a member: a fresh subgroup key is multicast encrypted under
// the previous one, and the newcomer receives the key under a freshly
// established pairwise secret.
func (s *Subgroup) Join(id string) (RekeyTraffic, error) {
	if _, ok := s.pairwise[id]; ok {
		return RekeyTraffic{}, fmt.Errorf("%w: %q", ErrMemberExists, id)
	}
	s.pairwise[id] = s.cfg.KeyGen()
	s.key = s.cfg.KeyGen()
	s.epoch++
	return RekeyTraffic{
		// One multicast carrying E_oldKey(newKey): the §V-C join cost
		// ("the length of the encrypted new group/area key").
		MulticastMessages: 1,
		MulticastBytes:    crypt.SymKeyLen,
		// One unicast delivering the new subgroup key to the joiner.
		UnicastMessages: 1,
		UnicastBytes:    crypt.SymKeyLen,
	}, nil
}

// Leave evicts a member: the new subgroup key cannot be multicast (the
// leaver knows the old key), so it is unicast to every remaining member
// under its pairwise key — m-1 messages of one key each (§V-C: "for an
// area of 5000 members ... about 80,000 bytes").
func (s *Subgroup) Leave(id string) (RekeyTraffic, error) {
	if _, ok := s.pairwise[id]; !ok {
		return RekeyTraffic{}, fmt.Errorf("%w: %q", ErrMemberUnknown, id)
	}
	delete(s.pairwise, id)
	s.key = s.cfg.KeyGen()
	s.epoch++
	remaining := len(s.pairwise)
	return RekeyTraffic{
		UnicastMessages: remaining,
		UnicastBytes:    remaining * crypt.SymKeyLen,
	}, nil
}

// RekeyMessages materializes the actual per-member rekey ciphertexts for
// the current key — used by tests to check that only pairwise-key holders
// can decrypt. In accounting mode ciphertexts are key-sized placeholders.
func (s *Subgroup) RekeyMessages() map[string][]byte {
	out := make(map[string][]byte, len(s.pairwise))
	for id, pk := range s.pairwise {
		if s.cfg.Accounting {
			buf := make([]byte, crypt.SymKeyLen)
			for i := range buf {
				buf[i] = s.key[i] ^ pk[i]
			}
			out[id] = buf
		} else {
			out[id] = crypt.Seal(pk, s.key[:])
		}
	}
	return out
}
