package ticket

import (
	"testing"
	"time"

	"mykil/internal/crypt"
)

// FuzzOpen hardens ticket parsing: arbitrary blobs must be rejected as
// tampered, never panic, and never yield a ticket under the wrong key.
func FuzzOpen(f *testing.F) {
	k := crypt.NewSymKey()
	tk := &Ticket{
		JoinTime:       time.Unix(1750000000, 0),
		Validity:       time.Unix(1760000000, 0),
		ID:             "mac-addr",
		PublicKeyDER:   []byte{1, 2, 3},
		AreaController: "ac-1",
	}
	sealed, err := tk.Seal(k)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sealed)
	f.Add([]byte{})
	f.Add([]byte("forged"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Open(k, data)
		if err != nil {
			return
		}
		// Anything accepted must survive a reseal/reopen cycle intact.
		blob, err := got.Seal(k)
		if err != nil {
			t.Fatal(err)
		}
		again, err := Open(k, blob)
		if err != nil {
			t.Fatal(err)
		}
		if again.ID != got.ID || again.AreaController != got.AreaController {
			t.Error("reseal round trip changed ticket")
		}
	})
}
