package ticket

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"mykil/internal/crypt"
)

var testEpoch = time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)

func sample() *Ticket {
	return &Ticket{
		JoinTime:       testEpoch,
		Validity:       testEpoch.Add(24 * time.Hour),
		ID:             "00:1a:2b:3c:4d:5e",
		PublicKeyDER:   []byte{1, 2, 3, 4},
		AreaController: "ac-west",
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	k := crypt.NewSymKey()
	want := sample()
	sealed, err := want.Seal(k)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	got, err := Open(k, sealed)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !got.JoinTime.Equal(want.JoinTime) || !got.Validity.Equal(want.Validity) ||
		got.ID != want.ID || got.AreaController != want.AreaController ||
		string(got.PublicKeyDER) != string(want.PublicKeyDER) {
		t.Errorf("round trip mismatch: got %+v", got)
	}
}

func TestOpenRejectsWrongKey(t *testing.T) {
	sealed, err := sample().Seal(crypt.NewSymKey())
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if _, err := Open(crypt.NewSymKey(), sealed); !errors.Is(err, ErrTampered) {
		t.Errorf("Open with wrong K_shared: err=%v, want ErrTampered", err)
	}
}

func TestOpenRejectsEveryBitFlip(t *testing.T) {
	// DESIGN.md property 5: any bit flip in a sealed ticket is rejected.
	k := crypt.NewSymKey()
	sealed, err := sample().Seal(k)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	for i := 0; i < len(sealed); i++ {
		mut := append([]byte(nil), sealed...)
		mut[i] ^= 0x80
		if _, err := Open(k, mut); !errors.Is(err, ErrTampered) {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	k := crypt.NewSymKey()
	for _, blob := range [][]byte{nil, {}, []byte("short"), make([]byte, 200)} {
		if _, err := Open(k, blob); !errors.Is(err, ErrTampered) {
			t.Errorf("garbage blob (%d bytes): err=%v, want ErrTampered", len(blob), err)
		}
	}
}

func TestValidateWindow(t *testing.T) {
	tk := sample()
	cases := []struct {
		name string
		now  time.Time
		want error
	}{
		{"at join", testEpoch, nil},
		{"mid validity", testEpoch.Add(12 * time.Hour), nil},
		{"at expiry", testEpoch.Add(24 * time.Hour), nil},
		{"expired", testEpoch.Add(24*time.Hour + time.Second), ErrExpired},
		{"before join", testEpoch.Add(-time.Second), ErrNotYetValid},
	}
	for _, tc := range cases {
		err := tk.Validate(tc.now)
		if tc.want == nil && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if tc.want != nil && !errors.Is(err, tc.want) {
			t.Errorf("%s: err=%v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestPublicKeyParses(t *testing.T) {
	kp, err := crypt.GenerateKeyPair(512)
	if err != nil {
		t.Fatalf("GenerateKeyPair: %v", err)
	}
	tk := sample()
	tk.PublicKeyDER = kp.Public().Marshal()
	got, err := tk.PublicKey()
	if err != nil {
		t.Fatalf("PublicKey: %v", err)
	}
	if !got.Equal(kp.Public()) {
		t.Error("parsed public key differs")
	}
}

func TestPublicKeyRejectsGarbage(t *testing.T) {
	tk := sample()
	if _, err := tk.PublicKey(); err == nil {
		t.Error("PublicKey parsed garbage DER")
	}
}

func TestWithControllerIsolatedCopy(t *testing.T) {
	orig := sample()
	rehomed := orig.WithController("ac-east")
	if rehomed.AreaController != "ac-east" {
		t.Errorf("AreaController = %q", rehomed.AreaController)
	}
	if orig.AreaController != "ac-west" {
		t.Error("original mutated")
	}
	rehomed.PublicKeyDER[0] = 0xFF
	if orig.PublicKeyDER[0] == 0xFF {
		t.Error("PublicKeyDER shared between copies")
	}
}

func TestSealOpenProperty(t *testing.T) {
	k := crypt.NewSymKey()
	f := func(id, ac string, der []byte, joinOffset, validOffset int16) bool {
		tk := &Ticket{
			JoinTime:       testEpoch.Add(time.Duration(joinOffset) * time.Minute),
			Validity:       testEpoch.Add(time.Duration(validOffset) * time.Hour),
			ID:             id,
			PublicKeyDER:   der,
			AreaController: ac,
		}
		sealed, err := tk.Seal(k)
		if err != nil {
			return false
		}
		got, err := Open(k, sealed)
		if err != nil {
			return false
		}
		return got.ID == tk.ID && got.AreaController == tk.AreaController &&
			got.JoinTime.Equal(tk.JoinTime) && got.Validity.Equal(tk.Validity) &&
			string(got.PublicKeyDER) == string(tk.PublicKeyDER)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
