// Package ticket implements Mykil's Kerberos-style rejoin tickets (§IV-B).
// A ticket is issued to a member at join (step 7) and lets it enter a
// different area after a disconnection without repeating the full
// registration protocol. Tickets are sealed under K_shared, a symmetric
// key known to every area controller, so any controller can verify a
// ticket issued by any other — the paper's "single ski pass valid at five
// resorts".
package ticket

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"mykil/internal/crypt"
	"mykil/internal/wire/codec"
)

// Errors returned when validating tickets.
var (
	// ErrTampered reports a ticket blob that fails authentication: either
	// forged, corrupted, or sealed under a different K_shared.
	ErrTampered = errors.New("ticket: tampered or foreign ticket")
	// ErrExpired reports a ticket past its validity period.
	ErrExpired = errors.New("ticket: validity period over")
	// ErrNotYetValid reports a ticket whose join time is in the future —
	// a sign of clock tampering or a forged replay.
	ErrNotYetValid = errors.New("ticket: join time in the future")
)

// Ticket carries the fields the paper lists in §IV-B. The paper's trailing
// MAC field is subsumed by the authenticated encryption used in Seal: any
// bit flip anywhere in the sealed blob is rejected.
type Ticket struct {
	// JoinTime is when the member first joined the group.
	JoinTime time.Time
	// Validity is the ticket's expiry time ("ski pass validity period").
	Validity time.Time
	// ID uniquely identifies the member; the paper suggests the MAC
	// address of the member's NIC.
	ID string
	// PublicKeyDER is the member's public key (crypt.PublicKey.Marshal
	// form); the rejoin challenge-response proves possession of the
	// corresponding private key.
	PublicKeyDER []byte
	// AreaController names the controller of the last area the member
	// belonged to, so a new controller can run the §IV-B steps 4-5
	// anti-cohort check.
	AreaController string
}

// Seal encrypts and authenticates the ticket under kShared. The
// plaintext uses the compact wire codec: every controller must produce
// the same blob for the same ticket, or re-issued tickets would churn.
func (t *Ticket) Seal(kShared crypt.SymKey) ([]byte, error) {
	b := make([]byte, 0, 64+len(t.PublicKeyDER))
	b = codec.AppendTime(b, t.JoinTime)
	b = codec.AppendTime(b, t.Validity)
	b = codec.AppendString(b, t.ID)
	b = codec.AppendBytes(b, t.PublicKeyDER)
	b = codec.AppendString(b, t.AreaController)
	return crypt.Seal(kShared, b), nil
}

// Open authenticates and decodes a sealed ticket. It performs no validity
// check; call Validate with the current time for that.
func Open(kShared crypt.SymKey, sealed []byte) (*Ticket, error) {
	pt, err := crypt.Open(kShared, sealed)
	if err != nil {
		return nil, ErrTampered
	}
	r := codec.NewReader(pt)
	var t Ticket
	t.JoinTime = r.Time()
	t.Validity = r.Time()
	t.ID = r.String()
	t.PublicKeyDER = r.Bytes()
	t.AreaController = r.String()
	if r.Finish() != nil {
		return nil, ErrTampered
	}
	return &t, nil
}

// Validate checks the ticket's time window against now.
func (t *Ticket) Validate(now time.Time) error {
	if now.Before(t.JoinTime) {
		return fmt.Errorf("%w: join %v, now %v", ErrNotYetValid, t.JoinTime, now)
	}
	if now.After(t.Validity) {
		return fmt.Errorf("%w: expired %v, now %v", ErrExpired, t.Validity, now)
	}
	return nil
}

// PublicKey parses the embedded member public key.
func (t *Ticket) PublicKey() (crypt.PublicKey, error) {
	return crypt.ParsePublicKey(t.PublicKeyDER)
}

// WithController returns a copy re-homed to a new area controller — what a
// controller issues at the end of a successful rejoin (step 6's "updated
// ticket").
func (t *Ticket) WithController(ac string) *Ticket {
	cp := *t
	cp.PublicKeyDER = bytes.Clone(t.PublicKeyDER)
	cp.AreaController = ac
	return &cp
}
