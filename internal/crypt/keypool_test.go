package crypt

import (
	"bytes"
	"testing"
)

func TestKeyPoolDeterministic(t *testing.T) {
	a, err := NewKeyPool(3, 512, 42)
	if err != nil {
		t.Fatalf("NewKeyPool: %v", err)
	}
	b, err := NewKeyPool(3, 512, 42)
	if err != nil {
		t.Fatalf("NewKeyPool: %v", err)
	}
	for i := 0; i < 3; i++ {
		if !bytes.Equal(a.At(i).MarshalPrivate(), b.At(i).MarshalPrivate()) {
			t.Errorf("key %d differs between identically seeded pools", i)
		}
	}
	c, err := NewKeyPool(3, 512, 43)
	if err != nil {
		t.Fatalf("NewKeyPool: %v", err)
	}
	if bytes.Equal(a.At(0).MarshalPrivate(), c.At(0).MarshalPrivate()) {
		t.Error("different seeds produced the same key")
	}
}

func TestKeyPoolRoundRobinShares(t *testing.T) {
	p, err := NewKeyPool(2, 512, 7)
	if err != nil {
		t.Fatalf("NewKeyPool: %v", err)
	}
	k0, k1, k2 := p.Next(), p.Next(), p.Next()
	if k0 == k1 {
		t.Error("consecutive Next calls returned the same pair")
	}
	if k0 != k2 {
		t.Error("round-robin did not wrap: third call should reuse the first pair")
	}
	if p.Size() != 2 {
		t.Errorf("Size = %d, want 2", p.Size())
	}
}

func TestKeyPoolKeysAreUsable(t *testing.T) {
	p, err := NewKeyPool(2, 768, 99)
	if err != nil {
		t.Fatalf("NewKeyPool: %v", err)
	}
	for i := 0; i < p.Size(); i++ {
		kp := p.At(i)
		msg := []byte("megasim handshake payload that exceeds one OAEP block once hybrid framing kicks in, padded out for good measure")
		sig := kp.Sign(msg)
		if err := kp.Public().Verify(msg, sig); err != nil {
			t.Errorf("key %d Verify: %v", i, err)
		}
		ct, err := kp.Public().Encrypt(msg)
		if err != nil {
			t.Fatalf("key %d Encrypt: %v", i, err)
		}
		pt, err := kp.Decrypt(ct)
		if err != nil {
			t.Fatalf("key %d Decrypt: %v", i, err)
		}
		if !bytes.Equal(pt, msg) {
			t.Errorf("key %d roundtrip mismatch", i)
		}
	}
}

func TestKeyPoolRejectsBadSizes(t *testing.T) {
	if _, err := NewKeyPool(0, 512, 1); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := NewKeyPool(1, 128, 1); err == nil {
		t.Error("128-bit modulus accepted")
	}
}

// TestRealKeygenPathStillDistinct pins the non-pooled path: GenerateKeyPair
// (what production principals and crypt.Pool use) must keep producing
// distinct, non-deterministic keys — the KeyPool shortcut is opt-in only.
func TestRealKeygenPathStillDistinct(t *testing.T) {
	a, err := GenerateKeyPair(512)
	if err != nil {
		t.Fatalf("GenerateKeyPair: %v", err)
	}
	b, err := GenerateKeyPair(512)
	if err != nil {
		t.Fatalf("GenerateKeyPair: %v", err)
	}
	if bytes.Equal(a.MarshalPrivate(), b.MarshalPrivate()) {
		t.Fatal("two real keygen calls returned identical keys")
	}
}
