package crypt

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"testing"
)

func TestSuiteRegistry(t *testing.T) {
	for _, s := range Suites() {
		byID, err := SuiteByID(s.ID())
		if err != nil || byID.Name() != s.Name() {
			t.Fatalf("SuiteByID(%d) = %v, %v", s.ID(), byID, err)
		}
		byName, err := SuiteByName(s.Name())
		if err != nil || byName.ID() != s.ID() {
			t.Fatalf("SuiteByName(%q) = %v, %v", s.Name(), byName, err)
		}
	}
	if _, err := SuiteByID(99); err == nil {
		t.Fatal("SuiteByID(99) should fail")
	}
	if _, err := SuiteByName("rot13"); err == nil {
		t.Fatal("SuiteByName(rot13) should fail")
	}
	if s, err := SuiteByName(""); err != nil || s.ID() != SuiteLegacy {
		t.Fatalf("empty suite name should select legacy, got %v, %v", s, err)
	}
	if NormalizeSuiteMask(0) != SuiteLegacy.Mask() {
		t.Fatal("zero mask must normalize to legacy-only")
	}
	if AllSuitesMask()&SuiteChaCha20Poly1305.Mask() == 0 {
		t.Fatal("AllSuitesMask misses chacha20-poly1305")
	}
}

func TestSuiteRoundTrip(t *testing.T) {
	plaintexts := [][]byte{nil, {}, []byte("x"), []byte("the quick brown fox"), bytes.Repeat([]byte{0xAB}, 1000)}
	for _, s := range Suites() {
		k := NewSymKey()
		for _, pt := range plaintexts {
			blob := s.Seal(k, pt)
			if len(blob) != s.Overhead()+len(pt) {
				t.Fatalf("%s: blob %d bytes, want overhead %d + pt %d", s.Name(), len(blob), s.Overhead(), len(pt))
			}
			got, err := s.Open(k, blob)
			if err != nil {
				t.Fatalf("%s: Open: %v", s.Name(), err)
			}
			if !bytes.Equal(got, pt) && !(len(got) == 0 && len(pt) == 0) {
				t.Fatalf("%s: round trip mismatch", s.Name())
			}
			// SealTo appends the same construction.
			prefix := []byte("prefix")
			blob2 := s.SealTo(append([]byte(nil), prefix...), k, pt)
			if !bytes.Equal(blob2[:len(prefix)], prefix) {
				t.Fatalf("%s: SealTo clobbered dst prefix", s.Name())
			}
			if got2, err := s.Open(k, blob2[len(prefix):]); err != nil || (!bytes.Equal(got2, pt) && len(pt) > 0) {
				t.Fatalf("%s: Open(SealTo): %v", s.Name(), err)
			}
			// Tampering any byte must fail.
			if len(blob) > 0 {
				blob[len(blob)/2] ^= 1
				if _, err := s.Open(k, blob); err == nil {
					t.Fatalf("%s: tampered blob opened", s.Name())
				}
			}
			// Wrong key must fail.
			if _, err := s.Open(NewSymKey(), s.Seal(k, pt)); err == nil {
				t.Fatalf("%s: wrong key opened", s.Name())
			}
		}
	}
}

// TestLegacySuiteByteCompatible pins the redesign's central compatibility
// promise: the legacy suite and the package-level Seal/Open are the same
// construction, in both directions, including the scheduled SealTo path.
func TestLegacySuiteByteCompatible(t *testing.T) {
	s, _ := SuiteByName("legacy")
	k := NewSymKey()
	pt := []byte("golden frames stay pinned")
	if got, err := Open(k, s.Seal(k, pt)); err != nil || !bytes.Equal(got, pt) {
		t.Fatalf("crypt.Open(suite.Seal) = %v, %v", got, err)
	}
	if got, err := s.Open(k, Seal(k, pt)); err != nil || !bytes.Equal(got, pt) {
		t.Fatalf("suite.Open(crypt.Seal) = %v, %v", got, err)
	}
	if got, err := Open(k, s.SealTo(nil, k, pt)); err != nil || !bytes.Equal(got, pt) {
		t.Fatalf("crypt.Open(suite.SealTo) = %v, %v", got, err)
	}
	if s.Overhead() != SealOverhead {
		t.Fatalf("legacy overhead %d != SealOverhead %d", s.Overhead(), SealOverhead)
	}
}

func TestSuitesAreMutuallyUnintelligible(t *testing.T) {
	k := NewSymKey()
	pt := []byte("never a garbled frame")
	for _, sealer := range Suites() {
		blob := sealer.Seal(k, pt)
		for _, opener := range Suites() {
			if opener.ID() == sealer.ID() {
				continue
			}
			if got, err := opener.Open(k, blob); err == nil && bytes.Equal(got, pt) {
				t.Fatalf("%s opened a %s blob", opener.Name(), sealer.Name())
			}
		}
	}
}

// TestChaChaQuarterRound pins RFC 8439 §2.1.1's quarter-round vector.
func TestChaChaQuarterRound(t *testing.T) {
	a, b, c, d := quarterRound(0x11111111, 0x01020304, 0x9b8d6f43, 0x01234567)
	if a != 0xea2a92f4 || b != 0xcb1cf8ce || c != 0x4581472e || d != 0x5881c4bb {
		t.Fatalf("quarter round = %08x %08x %08x %08x", a, b, c, d)
	}
}

// TestChaChaBlockVector pins RFC 8439 §2.3.2's block-function vector.
func TestChaChaBlockVector(t *testing.T) {
	var key [8]uint32
	var keyBytes [32]byte
	for i := range keyBytes {
		keyBytes[i] = byte(i)
	}
	for i := range key {
		key[i] = binary.LittleEndian.Uint32(keyBytes[4*i:])
	}
	nonceBytes, _ := hex.DecodeString("000000090000004a00000000")
	var nonce [3]uint32
	for i := range nonce {
		nonce[i] = binary.LittleEndian.Uint32(nonceBytes[4*i:])
	}
	var out [64]byte
	chachaBlock(&key, &nonce, 1, &out)
	want, _ := hex.DecodeString(
		"10f1e7e4d13b5915500fdd1fa32071c4" +
			"c7d1f4c733c068030422aa9ac3d46c4e" +
			"d2826446079faa0914c2d705d98b02a2" +
			"b5129cd1de164eb9cbd083e8a2503c4e")
	if !bytes.Equal(out[:], want) {
		t.Fatalf("chacha block:\n got %x\nwant %x", out[:], want)
	}
}

// TestPoly1305Vector pins RFC 8439 §2.5.2's tag vector.
func TestPoly1305Vector(t *testing.T) {
	keyBytes, _ := hex.DecodeString("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
	var key [32]byte
	copy(key[:], keyBytes)
	msg := []byte("Cryptographic Forum Research Group")

	var p poly1305
	p.init(&key)
	p.update(msg)
	var tag [16]byte
	p.finish(tag[:])

	want, _ := hex.DecodeString("a8061dc1305136c6c22b8baf0c0127a9")
	if !bytes.Equal(tag[:], want) {
		t.Fatalf("poly1305 tag = %x, want %x", tag[:], want)
	}
}

func TestSealToZeroAllocSteadyState(t *testing.T) {
	pt := make([]byte, SymKeyLen)
	for _, s := range Suites() {
		k := NewSymKey()
		dst := make([]byte, 0, 4*(s.Overhead()+len(pt)))
		s.SealTo(dst, k, pt) // warm the schedule cache
		suite := s
		allocs := testing.AllocsPerRun(100, func() {
			suite.SealTo(dst[:0], k, pt)
		})
		if allocs != 0 {
			t.Errorf("%s: SealTo allocates %.1f/op on the pooled path, want 0", suite.Name(), allocs)
		}
	}
}
