package crypt

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

// testBits keeps RSA generation fast in tests. The protocol logic is
// independent of modulus size; 2048-bit keys are exercised once in
// TestPaperSingleBlockLimit.
const testBits = 1024

var (
	testPoolOnce sync.Once
	testPool     *Pool
)

func testKeyPair(t *testing.T) *KeyPair {
	t.Helper()
	testPoolOnce.Do(func() {
		testPool = NewPool(testBits)
		if err := testPool.Warm(8); err != nil {
			t.Fatalf("warming key pool: %v", err)
		}
	})
	kp, err := testPool.Get()
	if err != nil {
		t.Fatalf("generating key pair: %v", err)
	}
	return kp
}

func TestSymKeyRoundTrip(t *testing.T) {
	k := NewSymKey()
	got, err := SymKeyFromBytes(k[:])
	if err != nil {
		t.Fatalf("SymKeyFromBytes: %v", err)
	}
	if !got.Equal(k) {
		t.Fatalf("round-tripped key differs: %v vs %v", got, k)
	}
}

func TestSymKeyFromBytesRejectsWrongLength(t *testing.T) {
	for _, n := range []int{0, 1, 15, 17, 32} {
		if _, err := SymKeyFromBytes(make([]byte, n)); err == nil {
			t.Errorf("SymKeyFromBytes accepted %d bytes", n)
		}
	}
}

func TestNewSymKeyUnique(t *testing.T) {
	seen := make(map[SymKey]bool)
	for i := 0; i < 64; i++ {
		k := NewSymKey()
		if seen[k] {
			t.Fatal("NewSymKey returned a duplicate key")
		}
		seen[k] = true
	}
}

func TestSymKeyIsZero(t *testing.T) {
	var zero SymKey
	if !zero.IsZero() {
		t.Error("zero value not reported as zero")
	}
	if NewSymKey().IsZero() {
		t.Error("fresh key reported as zero")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	k := NewSymKey()
	for _, size := range []int{0, 1, 16, 100, 4096} {
		pt := bytes.Repeat([]byte{0xAB}, size)
		ct := Seal(k, pt)
		if len(ct) != len(pt)+SealOverhead {
			t.Errorf("size %d: sealed length %d, want %d", size, len(ct), len(pt)+SealOverhead)
		}
		got, err := Open(k, ct)
		if err != nil {
			t.Fatalf("size %d: Open: %v", size, err)
		}
		if !bytes.Equal(got, pt) {
			t.Errorf("size %d: round trip mismatch", size)
		}
	}
}

func TestSealNondeterministic(t *testing.T) {
	k := NewSymKey()
	pt := []byte("same plaintext")
	if bytes.Equal(Seal(k, pt), Seal(k, pt)) {
		t.Error("two seals of the same plaintext are identical; nonce not randomized")
	}
}

func TestOpenRejectsWrongKey(t *testing.T) {
	ct := Seal(NewSymKey(), []byte("secret"))
	if _, err := Open(NewSymKey(), ct); !errors.Is(err, ErrDecrypt) {
		t.Errorf("Open with wrong key: err=%v, want ErrDecrypt", err)
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	k := NewSymKey()
	ct := Seal(k, []byte("payload to protect"))
	for i := 0; i < len(ct); i += 7 {
		mut := bytes.Clone(ct)
		mut[i] ^= 0x01
		if _, err := Open(k, mut); err == nil {
			t.Fatalf("bit flip at byte %d not detected", i)
		}
	}
}

func TestOpenRejectsShortInput(t *testing.T) {
	k := NewSymKey()
	for _, n := range []int{0, 1, SealOverhead - 1} {
		if _, err := Open(k, make([]byte, n)); !errors.Is(err, ErrShortCiphertext) {
			t.Errorf("Open(%d bytes): err=%v, want ErrShortCiphertext", n, err)
		}
	}
}

func TestSealOpenProperty(t *testing.T) {
	k := NewSymKey()
	f := func(pt []byte) bool {
		got, err := Open(k, Seal(k, pt))
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMACVerify(t *testing.T) {
	k := NewSymKey()
	data := []byte("message body")
	tag := MAC(k, data)
	if err := VerifyMAC(k, data, tag); err != nil {
		t.Fatalf("VerifyMAC on valid tag: %v", err)
	}
	if err := VerifyMAC(k, []byte("other body"), tag); !errors.Is(err, ErrBadMAC) {
		t.Errorf("VerifyMAC on wrong data: err=%v, want ErrBadMAC", err)
	}
	if err := VerifyMAC(NewSymKey(), data, tag); !errors.Is(err, ErrBadMAC) {
		t.Errorf("VerifyMAC with wrong key: err=%v, want ErrBadMAC", err)
	}
	tag[0] ^= 1
	if err := VerifyMAC(k, data, tag); !errors.Is(err, ErrBadMAC) {
		t.Errorf("VerifyMAC on flipped tag: err=%v, want ErrBadMAC", err)
	}
}

func TestNonceUnique(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 1024; i++ {
		n := Nonce()
		if seen[n] {
			t.Fatal("Nonce returned a duplicate")
		}
		seen[n] = true
	}
}

func TestPublicKeyMarshalRoundTrip(t *testing.T) {
	kp := testKeyPair(t)
	der := kp.Public().Marshal()
	got, err := ParsePublicKey(der)
	if err != nil {
		t.Fatalf("ParsePublicKey: %v", err)
	}
	if !got.Equal(kp.Public()) {
		t.Error("round-tripped public key differs")
	}
}

func TestParsePublicKeyRejectsGarbage(t *testing.T) {
	if _, err := ParsePublicKey([]byte("not a key")); err == nil {
		t.Error("ParsePublicKey accepted garbage")
	}
}

func TestPrivateKeyMarshalRoundTrip(t *testing.T) {
	kp := testKeyPair(t)
	got, err := ParseKeyPair(kp.MarshalPrivate())
	if err != nil {
		t.Fatalf("ParseKeyPair: %v", err)
	}
	// The restored pair must decrypt what the original public key encrypts.
	ct, err := kp.Public().Encrypt([]byte("replica state"))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	pt, err := got.Decrypt(ct)
	if err != nil {
		t.Fatalf("Decrypt with restored pair: %v", err)
	}
	if string(pt) != "replica state" {
		t.Errorf("decrypted %q", pt)
	}
}

func TestOAEPRoundTrip(t *testing.T) {
	kp := testKeyPair(t)
	pt := []byte("small payload")
	ct, err := kp.Public().EncryptOAEP(pt)
	if err != nil {
		t.Fatalf("EncryptOAEP: %v", err)
	}
	got, err := kp.DecryptOAEP(ct)
	if err != nil {
		t.Fatalf("DecryptOAEP: %v", err)
	}
	if !bytes.Equal(got, pt) {
		t.Error("OAEP round trip mismatch")
	}
}

func TestOAEPRejectsOversize(t *testing.T) {
	kp := testKeyPair(t)
	limit := kp.Public().MaxSingleBlock()
	if _, err := kp.Public().EncryptOAEP(make([]byte, limit+1)); err == nil {
		t.Errorf("EncryptOAEP accepted %d bytes over a %d-byte limit", limit+1, limit)
	}
	if _, err := kp.Public().EncryptOAEP(make([]byte, limit)); err != nil {
		t.Errorf("EncryptOAEP rejected exactly-limit payload: %v", err)
	}
}

func TestHybridEncryptSmall(t *testing.T) {
	kp := testKeyPair(t)
	pt := []byte("fits in one block")
	ct, err := kp.Public().Encrypt(pt)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	if ct[0] != hybridModeDirect {
		t.Errorf("small payload used mode %d, want direct", ct[0])
	}
	got, err := kp.Decrypt(ct)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if !bytes.Equal(got, pt) {
		t.Error("hybrid small round trip mismatch")
	}
}

func TestHybridEncryptLarge(t *testing.T) {
	// Reproduces the paper's §V-D scenario: the auxiliary-key path is too
	// large for one OAEP block, so a one-time symmetric key carries it.
	kp := testKeyPair(t)
	pt := bytes.Repeat([]byte("key-path-material."), 64) // ~1.1 KB
	ct, err := kp.Public().Encrypt(pt)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	if ct[0] != hybridModeKeyed {
		t.Errorf("large payload used mode %d, want keyed", ct[0])
	}
	got, err := kp.Decrypt(ct)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if !bytes.Equal(got, pt) {
		t.Error("hybrid large round trip mismatch")
	}
}

func TestHybridBoundary(t *testing.T) {
	kp := testKeyPair(t)
	limit := kp.Public().MaxSingleBlock()
	for _, size := range []int{limit - 1, limit, limit + 1} {
		pt := bytes.Repeat([]byte{0x42}, size)
		ct, err := kp.Public().Encrypt(pt)
		if err != nil {
			t.Fatalf("size %d: Encrypt: %v", size, err)
		}
		got, err := kp.Decrypt(ct)
		if err != nil {
			t.Fatalf("size %d: Decrypt: %v", size, err)
		}
		if !bytes.Equal(got, pt) {
			t.Errorf("size %d: round trip mismatch", size)
		}
	}
}

func TestDecryptRejectsWrongRecipient(t *testing.T) {
	alice, bob := testKeyPair(t), testKeyPair(t)
	ct, err := alice.Public().Encrypt([]byte("for alice"))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	if _, err := bob.Decrypt(ct); err == nil {
		t.Error("Decrypt succeeded with the wrong private key")
	}
}

func TestDecryptRejectsTruncation(t *testing.T) {
	kp := testKeyPair(t)
	ct, err := kp.Public().Encrypt(bytes.Repeat([]byte{1}, 500))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	for _, n := range []int{0, 1, 2, 4, len(ct) / 2} {
		if _, err := kp.Decrypt(ct[:n]); err == nil {
			t.Errorf("Decrypt accepted %d-byte truncation", n)
		}
	}
}

func TestDecryptRejectsUnknownMode(t *testing.T) {
	kp := testKeyPair(t)
	if _, err := kp.Decrypt([]byte{0x7F, 1, 2, 3}); !errors.Is(err, ErrDecrypt) {
		t.Errorf("unknown mode: err=%v, want ErrDecrypt", err)
	}
}

func TestSignVerify(t *testing.T) {
	kp := testKeyPair(t)
	data := []byte("signed message")
	sig := kp.Sign(data)
	if err := kp.Public().Verify(data, sig); err != nil {
		t.Fatalf("Verify on valid signature: %v", err)
	}
	if err := kp.Public().Verify([]byte("altered"), sig); !errors.Is(err, ErrBadSignature) {
		t.Errorf("Verify on altered data: err=%v, want ErrBadSignature", err)
	}
	other := testKeyPair(t)
	if err := other.Public().Verify(data, sig); !errors.Is(err, ErrBadSignature) {
		t.Errorf("Verify under wrong key: err=%v, want ErrBadSignature", err)
	}
}

func TestPublicKeyZeroValue(t *testing.T) {
	var zero PublicKey
	if !zero.IsZero() {
		t.Error("zero PublicKey not reported zero")
	}
	if _, err := zero.Encrypt([]byte("x")); err == nil {
		t.Error("Encrypt with zero key succeeded")
	}
	if err := zero.Verify([]byte("x"), []byte("sig")); err == nil {
		t.Error("Verify with zero key succeeded")
	}
	if zero.Bits() != 0 {
		t.Errorf("zero key Bits() = %d", zero.Bits())
	}
}

func TestPublicKeyEqual(t *testing.T) {
	a, b := testKeyPair(t), testKeyPair(t)
	if !a.Public().Equal(a.Public()) {
		t.Error("key not equal to itself")
	}
	if a.Public().Equal(b.Public()) {
		t.Error("distinct keys reported equal")
	}
	var zero PublicKey
	if a.Public().Equal(zero) || zero.Equal(a.Public()) {
		t.Error("zero key equal to real key")
	}
	if !zero.Equal(PublicKey{}) {
		t.Error("two zero keys not equal")
	}
}

func TestRC4RoundTrip(t *testing.T) {
	k := NewSymKey()
	orig := []byte("multicast media payload")
	buf := bytes.Clone(orig)
	RC4XOR(k, buf)
	if bytes.Equal(buf, orig) {
		t.Fatal("RC4 did not change the data")
	}
	RC4XOR(k, buf)
	if !bytes.Equal(buf, orig) {
		t.Fatal("RC4 double application did not restore the data")
	}
}

func TestPaperSingleBlockLimit(t *testing.T) {
	// §V-D: with 2048-bit keys and OAEP padding, one block carries ~215
	// usable bytes (OpenSSL reports 256-41; Go's SHA-1 OAEP gives 256-42).
	if testing.Short() {
		t.Skip("2048-bit key generation in -short mode")
	}
	kp, err := GenerateKeyPair(2048)
	if err != nil {
		t.Fatalf("GenerateKeyPair(2048): %v", err)
	}
	if got := kp.Public().MaxSingleBlock(); got != 214 {
		t.Errorf("2048-bit single-block limit = %d, want 214 (paper: 215 with OpenSSL padding accounting)", got)
	}
}

func TestPoolWarmAndGet(t *testing.T) {
	p := NewPool(512)
	if err := p.Warm(3); err != nil {
		t.Fatalf("Warm: %v", err)
	}
	if p.Size() != 3 {
		t.Fatalf("Size after Warm(3) = %d", p.Size())
	}
	seen := make(map[*KeyPair]bool)
	for i := 0; i < 4; i++ { // one more than warmed: forces on-demand generation
		kp, err := p.Get()
		if err != nil {
			t.Fatalf("Get #%d: %v", i, err)
		}
		if seen[kp] {
			t.Fatal("pool handed out the same key twice")
		}
		seen[kp] = true
	}
	if p.Size() != 0 {
		t.Errorf("Size after draining = %d", p.Size())
	}
	if p.Bits() != 512 {
		t.Errorf("Bits() = %d", p.Bits())
	}
}
