package crypt

import (
	"sync"
)

// KeySource is where a deployment draws principal key pairs from. Both
// implementations in this package satisfy it — Pool (fresh keygen, the
// production default) and KeyPool (shared deterministic test keys) — so
// call sites program against the interface instead of switching on the
// concrete type. Next panics on generation failure (an entropy failure
// the process must not continue past); Warm pre-generates where the
// source supports it and is a no-op otherwise.
type KeySource interface {
	// Next returns the source's next key pair.
	Next() *KeyPair
	// Warm pre-generates n key pairs where generation is on-demand.
	Warm(n int) error
	// Bits reports the modulus size of the keys produced.
	Bits() int
}

// Pool hands out RSA key pairs, generating them in parallel ahead of
// demand. Protocol experiments stand up hundreds of principals; generating
// each key on the critical path would dominate runtime, so the pool
// amortizes generation across CPUs. Keys from a Pool are never shared
// between principals — Get removes the pair from the pool.
type Pool struct {
	bits int

	mu    sync.Mutex
	ready []*KeyPair
}

// NewPool returns a pool of key pairs with the given modulus size.
func NewPool(bits int) *Pool {
	return &Pool{bits: bits}
}

// Bits returns the modulus size of keys this pool produces.
func (p *Pool) Bits() int { return p.bits }

// Get returns a fresh key pair, generating one if none is pre-warmed.
func (p *Pool) Get() (*KeyPair, error) {
	p.mu.Lock()
	if n := len(p.ready); n > 0 {
		kp := p.ready[n-1]
		p.ready = p.ready[:n-1]
		p.mu.Unlock()
		return kp, nil
	}
	p.mu.Unlock()
	return GenerateKeyPair(p.bits)
}

// Next returns a fresh key pair or panics on generation failure — the
// KeySource form of Get, for callers where keygen failure is
// unrecoverable. (This absorbed the old MustGet; Pool and KeyPool now
// share the one name.)
func (p *Pool) Next() *KeyPair {
	kp, err := p.Get()
	if err != nil {
		panic(err)
	}
	return kp
}

// Warm generates n key pairs concurrently and stores them for later Get
// calls. It returns the first generation error, if any; successfully
// generated keys are kept either way.
func (p *Pool) Warm(n int) error {
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			kp, err := GenerateKeyPair(p.bits)
			if err != nil {
				errOnce.Do(func() { firstErr = err })
				return
			}
			p.mu.Lock()
			p.ready = append(p.ready, kp)
			p.mu.Unlock()
		}()
	}
	wg.Wait()
	return firstErr
}

// Size reports how many pre-generated pairs are available.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.ready)
}
