package crypt

import (
	"sync"
)

// Pool hands out RSA key pairs, generating them in parallel ahead of
// demand. Protocol experiments stand up hundreds of principals; generating
// each key on the critical path would dominate runtime, so the pool
// amortizes generation across CPUs. Keys from a Pool are never shared
// between principals — Get removes the pair from the pool.
type Pool struct {
	bits int

	mu    sync.Mutex
	ready []*KeyPair
}

// NewPool returns a pool of key pairs with the given modulus size.
func NewPool(bits int) *Pool {
	return &Pool{bits: bits}
}

// Bits returns the modulus size of keys this pool produces.
func (p *Pool) Bits() int { return p.bits }

// Get returns a fresh key pair, generating one if none is pre-warmed.
func (p *Pool) Get() (*KeyPair, error) {
	p.mu.Lock()
	if n := len(p.ready); n > 0 {
		kp := p.ready[n-1]
		p.ready = p.ready[:n-1]
		p.mu.Unlock()
		return kp, nil
	}
	p.mu.Unlock()
	return GenerateKeyPair(p.bits)
}

// MustGet returns a fresh key pair or panics. Intended for tests and
// example programs where key generation failure is unrecoverable.
func (p *Pool) MustGet() *KeyPair {
	kp, err := p.Get()
	if err != nil {
		panic(err)
	}
	return kp
}

// Warm generates n key pairs concurrently and stores them for later Get
// calls. It returns the first generation error, if any; successfully
// generated keys are kept either way.
func (p *Pool) Warm(n int) error {
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			kp, err := GenerateKeyPair(p.bits)
			if err != nil {
				errOnce.Do(func() { firstErr = err })
				return
			}
			p.mu.Lock()
			p.ready = append(p.ready, kp)
			p.mu.Unlock()
		}()
	}
	wg.Wait()
	return firstErr
}

// Size reports how many pre-generated pairs are available.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.ready)
}
