package crypt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"encoding"
	"fmt"
	"hash"
	"io"
	"sync"
)

// Suite is one authenticated-encryption construction for symmetric
// sealing. The loose Seal/Open function surface grew into this interface
// so the datapath can negotiate a cipher per area: `legacy` reproduces
// the original AES-128-CTR + HMAC-SHA256 encrypt-then-MAC construction
// byte for byte (golden frames, tickets, and journal replay stay
// pinned), while `aes-gcm` and `chacha20-poly1305` are modern AEADs
// whose sealed blobs carry a one-byte suite ID prefix.
//
// SealTo is the hot-path form: it appends the sealed blob to dst and,
// once the suite's per-key schedule is cached (SealTo caches it on first
// use), performs no heap allocation when dst has capacity — the batch
// rekey constructor builds KeyUpdate ciphertexts into one arena with it.
type Suite interface {
	// ID is the wire identity of the suite (one byte in sealed blobs and
	// negotiation fields).
	ID() SuiteID
	// Name is the stable human name ("legacy", "aes-gcm",
	// "chacha20-poly1305") used by flags and options.
	Name() string
	// Overhead is the fixed byte count Seal adds to a plaintext.
	Overhead() int
	// Seal encrypts and authenticates plaintext under k. The output
	// embeds a random nonce; sealing twice yields different blobs.
	Seal(k SymKey, plaintext []byte) []byte
	// SealTo appends Seal's output to dst and returns the extended
	// slice. Exactly Overhead()+len(plaintext) bytes are appended.
	SealTo(dst []byte, k SymKey, plaintext []byte) []byte
	// Open authenticates and decrypts a Seal output; ErrDecrypt if the
	// blob was not produced under k by this suite or has been modified.
	Open(k SymKey, blob []byte) ([]byte, error)
}

// SuiteID is the one-byte wire identity of a cipher suite.
type SuiteID uint8

// Registered suite IDs. Legacy blobs carry no prefix (their first byte
// is a random nonce byte), so only the negotiation fields ever carry
// SuiteLegacy; AEAD blobs are self-described by their leading ID byte.
const (
	SuiteLegacy           SuiteID = 0
	SuiteAESGCM           SuiteID = 1
	SuiteChaCha20Poly1305 SuiteID = 2

	numSuites = 3
)

// String returns the suite's registered name.
func (id SuiteID) String() string {
	if int(id) < len(registeredSuites) {
		return registeredSuites[id].Name()
	}
	return fmt.Sprintf("suite-%d", uint8(id))
}

// Mask returns the suite's bit in a negotiation bitmask.
func (id SuiteID) Mask() uint64 { return 1 << uint(id) }

// AllSuitesMask is the negotiation bitmask advertising every registered
// suite.
func AllSuitesMask() uint64 { return 1<<numSuites - 1 }

// NormalizeSuiteMask maps the zero bitmask to legacy-only: peers that
// predate suite negotiation encode no mask field, and zero must mean
// "speaks only the original construction", never "speaks nothing".
func NormalizeSuiteMask(mask uint64) uint64 {
	if mask == 0 {
		return SuiteLegacy.Mask()
	}
	return mask
}

var registeredSuites = [numSuites]Suite{
	&legacySuite{},
	&gcmSuite{},
	&chachaSuite{},
}

// SuiteByID returns the registered suite with the given wire ID.
func SuiteByID(id SuiteID) (Suite, error) {
	if int(id) >= len(registeredSuites) {
		return nil, fmt.Errorf("crypt: unknown cipher suite ID %d", uint8(id))
	}
	return registeredSuites[id], nil
}

// SuiteByName returns the registered suite with the given name; the
// empty string selects legacy, the compatibility default.
func SuiteByName(name string) (Suite, error) {
	if name == "" {
		return registeredSuites[SuiteLegacy], nil
	}
	for _, s := range registeredSuites {
		if s.Name() == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("crypt: unknown cipher suite %q (have %v)", name, SuiteNames())
}

// Suites returns every registered suite in ID order.
func Suites() []Suite {
	out := make([]Suite, len(registeredSuites))
	copy(out, registeredSuites[:])
	return out
}

// SuiteNames lists the registered suite names in ID order.
func SuiteNames() []string {
	out := make([]string, len(registeredSuites))
	for i, s := range registeredSuites {
		out[i] = s.Name()
	}
	return out
}

// grow extends b by n bytes and returns the extension writable; it only
// allocates when b lacks capacity.
func grow(b []byte, n int) []byte {
	l := len(b)
	if cap(b)-l >= n {
		return b[: l+n : cap(b)]
	}
	nb := make([]byte, l+n, 2*(l+n))
	copy(nb, b)
	return nb
}

// schedCache memoizes per-key cipher schedules. Keys rotate with epochs,
// so the cache is cleared wholesale past a bound instead of tracking
// recency — the working set is the handful of live tree keys.
type schedCache[T any] struct {
	mu sync.RWMutex
	m  map[SymKey]T
}

const schedCacheMax = 4096

func (c *schedCache[T]) get(k SymKey, build func(SymKey) T) T {
	c.mu.RLock()
	v, ok := c.m[k]
	c.mu.RUnlock()
	if ok {
		return v
	}
	v = build(k)
	c.mu.Lock()
	if c.m == nil || len(c.m) >= schedCacheMax {
		c.m = make(map[SymKey]T)
	}
	c.m[k] = v
	c.mu.Unlock()
	return v
}

// ---- legacy: AES-128-CTR + HMAC-SHA256 (encrypt-then-MAC) ----

// legacySchedule is the precomputed per-key state for the legacy suite:
// the expanded AES block cipher plus the HMAC inner/outer digest states
// (key xor ipad / key xor opad already absorbed), so the hot path runs
// without hmac.New or aes.NewCipher allocations.
type legacySchedule struct {
	block cipher.Block
	inner []byte // marshaled sha256 state after absorbing K xor ipad
	outer []byte // marshaled sha256 state after absorbing K xor opad
}

// marshalableHash is sha256.New's concrete capability set: the digest
// state round-trips through encoding.BinaryMarshaler, which is what lets
// one precomputed HMAC state serve many messages.
type marshalableHash interface {
	hash.Hash
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
}

var sha256Pool = sync.Pool{New: func() any { return sha256.New().(marshalableHash) }}

func newLegacySchedule(k SymKey) *legacySchedule {
	block, err := aes.NewCipher(k[:])
	if err != nil {
		panic(fmt.Sprintf("crypt: aes key setup: %v", err)) // key length fixed
	}
	mk := macKeyFor(k)
	var ipad, opad [sha256.BlockSize]byte
	for i := range ipad {
		ipad[i], opad[i] = 0x36, 0x5c
	}
	for i, b := range mk {
		ipad[i] ^= b
		opad[i] ^= b
	}
	hi := sha256.New().(marshalableHash)
	hi.Write(ipad[:])
	inner, err := hi.MarshalBinary()
	if err != nil {
		panic(fmt.Sprintf("crypt: marshaling sha256 state: %v", err))
	}
	ho := sha256.New().(marshalableHash)
	ho.Write(opad[:])
	outer, err := ho.MarshalBinary()
	if err != nil {
		panic(fmt.Sprintf("crypt: marshaling sha256 state: %v", err))
	}
	return &legacySchedule{block: block, inner: inner, outer: outer}
}

// legacyScratch holds the fixed-size working buffers the legacy hot
// path threads through interface calls (cipher.Block.Encrypt,
// hash.Hash.Sum). Locals passed across an interface boundary escape to
// the heap, so these live in a pool instead of on the stack.
type legacyScratch struct {
	ctr, ks  [aes.BlockSize]byte
	innerSum [sha256.Size]byte
}

var legacyScratchPool = sync.Pool{New: func() any { return new(legacyScratch) }}

// tag writes HMAC-SHA256(data) into dst (exactly symTagLen bytes)
// without allocating: pooled digest, restored precomputed states.
func (s *legacySchedule) tag(dst, data []byte, sc *legacyScratch) {
	d := sha256Pool.Get().(marshalableHash)
	if err := d.UnmarshalBinary(s.inner); err != nil {
		panic(fmt.Sprintf("crypt: restoring sha256 state: %v", err))
	}
	d.Write(data)
	d.Sum(sc.innerSum[:0])
	if err := d.UnmarshalBinary(s.outer); err != nil {
		panic(fmt.Sprintf("crypt: restoring sha256 state: %v", err))
	}
	d.Write(sc.innerSum[:])
	d.Sum(dst[:0])
	sha256Pool.Put(d)
}

// ctrXOR applies AES-CTR keystream (iv as the initial counter block,
// big-endian increment — exactly cipher.NewCTR's discipline) to src into
// dst without the stdlib stream-wrapper allocation.
func ctrXOR(block cipher.Block, iv, dst, src []byte, sc *legacyScratch) {
	copy(sc.ctr[:], iv)
	for len(src) > 0 {
		block.Encrypt(sc.ks[:], sc.ctr[:])
		n := len(src)
		if n > aes.BlockSize {
			n = aes.BlockSize
		}
		for i := 0; i < n; i++ {
			dst[i] = src[i] ^ sc.ks[i]
		}
		dst, src = dst[n:], src[n:]
		for i := aes.BlockSize - 1; i >= 0; i-- {
			sc.ctr[i]++
			if sc.ctr[i] != 0 {
				break
			}
		}
	}
}

type legacySuite struct {
	sched schedCache[*legacySchedule]
}

func (s *legacySuite) ID() SuiteID   { return SuiteLegacy }
func (s *legacySuite) Name() string  { return "legacy" }
func (s *legacySuite) Overhead() int { return SealOverhead }

func (s *legacySuite) Seal(k SymKey, plaintext []byte) []byte {
	return Seal(k, plaintext)
}

func (s *legacySuite) Open(k SymKey, blob []byte) ([]byte, error) {
	return Open(k, blob)
}

func (s *legacySuite) SealTo(dst []byte, k SymKey, plaintext []byte) []byte {
	sched := s.sched.get(k, newLegacySchedule)
	off := len(dst)
	dst = grow(dst, SealOverhead+len(plaintext))
	out := dst[off:]
	nonce := out[:symNonceLen]
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		panic(fmt.Sprintf("crypt: reading randomness: %v", err))
	}
	sc := legacyScratchPool.Get().(*legacyScratch)
	ctrXOR(sched.block, nonce, out[symNonceLen:symNonceLen+len(plaintext)], plaintext, sc)
	sched.tag(out[symNonceLen+len(plaintext):], out[:symNonceLen+len(plaintext)], sc)
	legacyScratchPool.Put(sc)
	return dst
}

// ---- aes-gcm: AES-128-GCM, blob = id(1) || nonce(12) || ct+tag(16) ----

const (
	aeadNonceLen = 12
	aeadTagLen   = 16
	// AEADOverhead is the fixed byte overhead the aes-gcm and
	// chacha20-poly1305 suites add: ID byte, nonce, and tag.
	AEADOverhead = 1 + aeadNonceLen + aeadTagLen
)

type gcmSuite struct {
	sched schedCache[cipher.AEAD]
}

func newGCM(k SymKey) cipher.AEAD {
	block, err := aes.NewCipher(k[:])
	if err != nil {
		panic(fmt.Sprintf("crypt: aes key setup: %v", err))
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		panic(fmt.Sprintf("crypt: gcm setup: %v", err))
	}
	return aead
}

func (s *gcmSuite) ID() SuiteID   { return SuiteAESGCM }
func (s *gcmSuite) Name() string  { return "aes-gcm" }
func (s *gcmSuite) Overhead() int { return AEADOverhead }

func (s *gcmSuite) Seal(k SymKey, plaintext []byte) []byte {
	return s.SealTo(make([]byte, 0, AEADOverhead+len(plaintext)), k, plaintext)
}

func (s *gcmSuite) SealTo(dst []byte, k SymKey, plaintext []byte) []byte {
	aead := s.sched.get(k, newGCM)
	off := len(dst)
	dst = grow(dst, 1+aeadNonceLen)
	dst[off] = byte(SuiteAESGCM)
	nonce := dst[off+1 : off+1+aeadNonceLen]
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		panic(fmt.Sprintf("crypt: reading randomness: %v", err))
	}
	return aead.Seal(dst, nonce, plaintext, nil)
}

func (s *gcmSuite) Open(k SymKey, blob []byte) ([]byte, error) {
	if len(blob) < AEADOverhead {
		return nil, ErrShortCiphertext
	}
	if SuiteID(blob[0]) != SuiteAESGCM {
		return nil, ErrDecrypt
	}
	aead := s.sched.get(k, newGCM)
	pt, err := aead.Open(nil, blob[1:1+aeadNonceLen], blob[1+aeadNonceLen:], nil)
	if err != nil {
		return nil, ErrDecrypt
	}
	return pt, nil
}
