package crypt

import (
	"testing"
)

func benchKeyPair(b *testing.B) *KeyPair {
	b.Helper()
	kp, err := GenerateKeyPair(2048)
	if err != nil {
		b.Fatal(err)
	}
	return kp
}

func BenchmarkSeal1KB(b *testing.B) {
	k := NewSymKey()
	buf := make([]byte, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Seal(k, buf)
	}
}

func BenchmarkOpen1KB(b *testing.B) {
	k := NewSymKey()
	ct := Seal(k, make([]byte, 1024))
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Open(k, ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSealKeyWrap(b *testing.B) {
	// The rekey-entry operation: wrapping one 16-byte key.
	k, payload := NewSymKey(), NewSymKey()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Seal(k, payload[:])
	}
}

func BenchmarkRSAEncryptSmall(b *testing.B) {
	kp := benchKeyPair(b)
	pub := kp.Public()
	msg := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pub.Encrypt(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSADecryptSmall(b *testing.B) {
	kp := benchKeyPair(b)
	ct, err := kp.Public().Encrypt(make([]byte, 64))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kp.Decrypt(ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSAHybridEncrypt1KB(b *testing.B) {
	// The §V-D path: an auxiliary-key payload too large for one OAEP
	// block, carried by a one-time symmetric key.
	kp := benchKeyPair(b)
	pub := kp.Public()
	msg := make([]byte, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pub.Encrypt(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSASign(b *testing.B) {
	kp := benchKeyPair(b)
	msg := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kp.Sign(msg)
	}
}

func BenchmarkRSAVerify(b *testing.B) {
	kp := benchKeyPair(b)
	msg := make([]byte, 256)
	sig := kp.Sign(msg)
	pub := kp.Public()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pub.Verify(msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMAC(b *testing.B) {
	k := NewSymKey()
	msg := make([]byte, 256)
	b.SetBytes(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MAC(k, msg)
	}
}
