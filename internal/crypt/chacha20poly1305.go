package crypt

import (
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"fmt"
	"io"
)

// ChaCha20-Poly1305 AEAD per RFC 8439, implemented from the spec on the
// standard library alone (the module is fully offline, so x/crypto is
// not available). The suite's 256-bit cipher key is derived from the
// protocol's 128-bit SymKey by a domain-separated SHA-256, cached per
// key alongside nothing else — ChaCha20 has no key schedule to expand.
//
// Blob layout matches the aes-gcm suite: id(1) || nonce(12) || ct ||
// tag(16). The Poly1305 one-time key is the first 32 bytes of the
// keystream block at counter 0; ciphertext starts at counter 1; the tag
// covers pad16(AAD=ε) || ct || pad16 || le64(0) || le64(len(ct)).

type chachaSuite struct {
	sched schedCache[*[8]uint32]
}

// chachaKeyWords derives and pre-parses the 256-bit ChaCha20 key.
func chachaKeyWords(k SymKey) *[8]uint32 {
	sum := sha256.Sum256(append([]byte("mykil-chacha20-key-v1"), k[:]...))
	var w [8]uint32
	for i := range w {
		w[i] = binary.LittleEndian.Uint32(sum[4*i:])
	}
	return &w
}

func (s *chachaSuite) ID() SuiteID   { return SuiteChaCha20Poly1305 }
func (s *chachaSuite) Name() string  { return "chacha20-poly1305" }
func (s *chachaSuite) Overhead() int { return AEADOverhead }

func (s *chachaSuite) Seal(k SymKey, plaintext []byte) []byte {
	return s.SealTo(make([]byte, 0, AEADOverhead+len(plaintext)), k, plaintext)
}

func (s *chachaSuite) SealTo(dst []byte, k SymKey, plaintext []byte) []byte {
	key := s.sched.get(k, chachaKeyWords)
	off := len(dst)
	dst = grow(dst, AEADOverhead+len(plaintext))
	out := dst[off:]
	out[0] = byte(SuiteChaCha20Poly1305)
	nonce := out[1 : 1+aeadNonceLen]
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		panic(fmt.Sprintf("crypt: reading randomness: %v", err))
	}
	var n [3]uint32
	n[0] = binary.LittleEndian.Uint32(nonce[0:])
	n[1] = binary.LittleEndian.Uint32(nonce[4:])
	n[2] = binary.LittleEndian.Uint32(nonce[8:])

	var otk [64]byte
	chachaBlock(key, &n, 0, &otk)
	ct := out[1+aeadNonceLen : 1+aeadNonceLen+len(plaintext)]
	chachaXOR(key, &n, 1, ct, plaintext)
	poly1305AEADTag(out[len(out)-aeadTagLen:], ct, (*[32]byte)(otk[:32]))
	return dst
}

func (s *chachaSuite) Open(k SymKey, blob []byte) ([]byte, error) {
	if len(blob) < AEADOverhead {
		return nil, ErrShortCiphertext
	}
	if SuiteID(blob[0]) != SuiteChaCha20Poly1305 {
		return nil, ErrDecrypt
	}
	key := s.sched.get(k, chachaKeyWords)
	nonce := blob[1 : 1+aeadNonceLen]
	ct := blob[1+aeadNonceLen : len(blob)-aeadTagLen]
	tag := blob[len(blob)-aeadTagLen:]

	var n [3]uint32
	n[0] = binary.LittleEndian.Uint32(nonce[0:])
	n[1] = binary.LittleEndian.Uint32(nonce[4:])
	n[2] = binary.LittleEndian.Uint32(nonce[8:])

	var otk [64]byte
	chachaBlock(key, &n, 0, &otk)
	var want [aeadTagLen]byte
	poly1305AEADTag(want[:], ct, (*[32]byte)(otk[:32]))
	if subtle.ConstantTimeCompare(tag, want[:]) != 1 {
		return nil, ErrDecrypt
	}
	pt := make([]byte, len(ct))
	chachaXOR(key, &n, 1, pt, ct)
	return pt, nil
}

// ---- ChaCha20 block function (RFC 8439 §2.3) ----

const (
	chachaConst0 = 0x61707865 // "expa"
	chachaConst1 = 0x3320646e // "nd 3"
	chachaConst2 = 0x79622d32 // "2-by"
	chachaConst3 = 0x6b206574 // "te k"
)

func quarterRound(a, b, c, d uint32) (uint32, uint32, uint32, uint32) {
	a += b
	d ^= a
	d = d<<16 | d>>16
	c += d
	b ^= c
	b = b<<12 | b>>20
	a += b
	d ^= a
	d = d<<8 | d>>24
	c += d
	b ^= c
	b = b<<7 | b>>25
	return a, b, c, d
}

// chachaBlock writes the 64-byte keystream block for (key, nonce,
// counter) into out.
func chachaBlock(key *[8]uint32, nonce *[3]uint32, counter uint32, out *[64]byte) {
	x0, x1, x2, x3 := uint32(chachaConst0), uint32(chachaConst1), uint32(chachaConst2), uint32(chachaConst3)
	x4, x5, x6, x7 := key[0], key[1], key[2], key[3]
	x8, x9, x10, x11 := key[4], key[5], key[6], key[7]
	x12, x13, x14, x15 := counter, nonce[0], nonce[1], nonce[2]

	for i := 0; i < 10; i++ {
		// Column rounds.
		x0, x4, x8, x12 = quarterRound(x0, x4, x8, x12)
		x1, x5, x9, x13 = quarterRound(x1, x5, x9, x13)
		x2, x6, x10, x14 = quarterRound(x2, x6, x10, x14)
		x3, x7, x11, x15 = quarterRound(x3, x7, x11, x15)
		// Diagonal rounds.
		x0, x5, x10, x15 = quarterRound(x0, x5, x10, x15)
		x1, x6, x11, x12 = quarterRound(x1, x6, x11, x12)
		x2, x7, x8, x13 = quarterRound(x2, x7, x8, x13)
		x3, x4, x9, x14 = quarterRound(x3, x4, x9, x14)
	}

	binary.LittleEndian.PutUint32(out[0:], x0+chachaConst0)
	binary.LittleEndian.PutUint32(out[4:], x1+chachaConst1)
	binary.LittleEndian.PutUint32(out[8:], x2+chachaConst2)
	binary.LittleEndian.PutUint32(out[12:], x3+chachaConst3)
	binary.LittleEndian.PutUint32(out[16:], x4+key[0])
	binary.LittleEndian.PutUint32(out[20:], x5+key[1])
	binary.LittleEndian.PutUint32(out[24:], x6+key[2])
	binary.LittleEndian.PutUint32(out[28:], x7+key[3])
	binary.LittleEndian.PutUint32(out[32:], x8+key[4])
	binary.LittleEndian.PutUint32(out[36:], x9+key[5])
	binary.LittleEndian.PutUint32(out[40:], x10+key[6])
	binary.LittleEndian.PutUint32(out[44:], x11+key[7])
	binary.LittleEndian.PutUint32(out[48:], x12+counter)
	binary.LittleEndian.PutUint32(out[52:], x13+nonce[0])
	binary.LittleEndian.PutUint32(out[56:], x14+nonce[1])
	binary.LittleEndian.PutUint32(out[60:], x15+nonce[2])
}

// chachaXOR XORs the keystream starting at the given block counter into
// src, writing dst (dst and src may be the same slice).
func chachaXOR(key *[8]uint32, nonce *[3]uint32, counter uint32, dst, src []byte) {
	var ks [64]byte
	for len(src) > 0 {
		chachaBlock(key, nonce, counter, &ks)
		counter++
		n := len(src)
		if n > len(ks) {
			n = len(ks)
		}
		for i := 0; i < n; i++ {
			dst[i] = src[i] ^ ks[i]
		}
		dst, src = dst[n:], src[n:]
	}
}

// ---- Poly1305 (RFC 8439 §2.5), 26-bit limbs ----

// poly1305AEADTag writes the RFC 8439 AEAD tag for empty AAD and the
// given ciphertext into out (16 bytes) under the one-time key otk.
func poly1305AEADTag(out, ct []byte, otk *[32]byte) {
	var p poly1305
	p.init(otk)
	p.update(ct)
	p.pad16(len(ct))
	var lens [16]byte
	// le64(len(AAD)=0) || le64(len(ct)); AAD contributes no pad block.
	binary.LittleEndian.PutUint64(lens[8:], uint64(len(ct)))
	p.update(lens[:])
	p.finish(out)
}

type poly1305 struct {
	r0, r1, r2, r3, r4 uint32 // clamped r, 26-bit limbs
	s1, s2, s3, s4     uint32 // 5*r_i, for the mod 2^130-5 fold
	h0, h1, h2, h3, h4 uint32 // accumulator, 26-bit limbs
	pad                [16]byte
	buf                [16]byte // partial block
	n                  int      // bytes buffered in buf
}

func (p *poly1305) init(key *[32]byte) {
	// Load and clamp r: the masks zero the bits RFC 8439 §2.5 requires
	// clear (top 4 bits of r[3,7,11,15], bottom 2 of r[4,8,12]).
	p.r0 = binary.LittleEndian.Uint32(key[0:]) & 0x3ffffff
	p.r1 = (binary.LittleEndian.Uint32(key[3:]) >> 2) & 0x3ffff03
	p.r2 = (binary.LittleEndian.Uint32(key[6:]) >> 4) & 0x3ffc0ff
	p.r3 = (binary.LittleEndian.Uint32(key[9:]) >> 6) & 0x3f03fff
	p.r4 = (binary.LittleEndian.Uint32(key[12:]) >> 8) & 0x00fffff
	p.s1, p.s2, p.s3, p.s4 = p.r1*5, p.r2*5, p.r3*5, p.r4*5
	copy(p.pad[:], key[16:])
}

// block absorbs one 16-byte block; hibit is 1<<24 for full blocks and 0
// for the already-0x01-terminated final partial block.
func (p *poly1305) block(m []byte, hibit uint32) {
	h0 := uint64(p.h0 + binary.LittleEndian.Uint32(m[0:])&0x3ffffff)
	h1 := uint64(p.h1 + (binary.LittleEndian.Uint32(m[3:])>>2)&0x3ffffff)
	h2 := uint64(p.h2 + (binary.LittleEndian.Uint32(m[6:])>>4)&0x3ffffff)
	h3 := uint64(p.h3 + (binary.LittleEndian.Uint32(m[9:])>>6)&0x3ffffff)
	h4 := uint64(p.h4 + (binary.LittleEndian.Uint32(m[12:])>>8 | hibit))

	r0, r1, r2, r3, r4 := uint64(p.r0), uint64(p.r1), uint64(p.r2), uint64(p.r3), uint64(p.r4)
	s1, s2, s3, s4 := uint64(p.s1), uint64(p.s2), uint64(p.s3), uint64(p.s4)

	d0 := h0*r0 + h1*s4 + h2*s3 + h3*s2 + h4*s1
	d1 := h0*r1 + h1*r0 + h2*s4 + h3*s3 + h4*s2
	d2 := h0*r2 + h1*r1 + h2*r0 + h3*s4 + h4*s3
	d3 := h0*r3 + h1*r2 + h2*r1 + h3*r0 + h4*s4
	d4 := h0*r4 + h1*r3 + h2*r2 + h3*r1 + h4*r0

	c := d0 >> 26
	d1 += c
	c = d1 >> 26
	d2 += c
	c = d2 >> 26
	d3 += c
	c = d3 >> 26
	d4 += c
	c = d4 >> 26
	h0 = d0&0x3ffffff + c*5
	c = h0 >> 26
	h0 &= 0x3ffffff
	h1 = d1&0x3ffffff + c

	p.h0, p.h1, p.h2, p.h3, p.h4 =
		uint32(h0), uint32(h1), uint32(d2&0x3ffffff), uint32(d3&0x3ffffff), uint32(d4&0x3ffffff)
}

func (p *poly1305) update(m []byte) {
	if p.n > 0 {
		take := copy(p.buf[p.n:], m)
		p.n += take
		m = m[take:]
		if p.n < 16 {
			return
		}
		p.block(p.buf[:], 1<<24)
		p.n = 0
	}
	for len(m) >= 16 {
		p.block(m[:16], 1<<24)
		m = m[16:]
	}
	if len(m) > 0 {
		p.n = copy(p.buf[:], m)
	}
}

// pad16 absorbs the zero padding that aligns an n-byte section to a
// 16-byte boundary (RFC 8439 §2.8's pad16).
func (p *poly1305) pad16(n int) {
	if rem := n % 16; rem != 0 {
		var zeros [16]byte
		p.update(zeros[:16-rem])
	}
}

func (p *poly1305) finish(out []byte) {
	if p.n > 0 {
		p.buf[p.n] = 1
		for i := p.n + 1; i < 16; i++ {
			p.buf[i] = 0
		}
		p.block(p.buf[:], 0)
	}

	h0, h1, h2, h3, h4 := p.h0, p.h1, p.h2, p.h3, p.h4

	// Full carry chain.
	c := h1 >> 26
	h1 &= 0x3ffffff
	h2 += c
	c = h2 >> 26
	h2 &= 0x3ffffff
	h3 += c
	c = h3 >> 26
	h3 &= 0x3ffffff
	h4 += c
	c = h4 >> 26
	h4 &= 0x3ffffff
	h0 += c * 5
	c = h0 >> 26
	h0 &= 0x3ffffff
	h1 += c

	// g = h + 5 - 2^130; select g when h >= p (no borrow out of g4).
	g0 := h0 + 5
	c = g0 >> 26
	g0 &= 0x3ffffff
	g1 := h1 + c
	c = g1 >> 26
	g1 &= 0x3ffffff
	g2 := h2 + c
	c = g2 >> 26
	g2 &= 0x3ffffff
	g3 := h3 + c
	c = g3 >> 26
	g3 &= 0x3ffffff
	g4 := h4 + c - (1 << 26)

	mask := (g4 >> 31) - 1 // all-ones when g4 did not borrow (h >= p)
	h0 = h0&^mask | g0&mask
	h1 = h1&^mask | g1&mask
	h2 = h2&^mask | g2&mask
	h3 = h3&^mask | g3&mask
	h4 = h4&^mask | g4&mask

	// Serialize to 128 bits and add s modulo 2^128.
	t0 := h0 | h1<<26
	t1 := h1>>6 | h2<<20
	t2 := h2>>12 | h3<<14
	t3 := h3>>18 | h4<<8

	f := uint64(t0) + uint64(binary.LittleEndian.Uint32(p.pad[0:]))
	binary.LittleEndian.PutUint32(out[0:], uint32(f))
	f = uint64(t1) + uint64(binary.LittleEndian.Uint32(p.pad[4:])) + f>>32
	binary.LittleEndian.PutUint32(out[4:], uint32(f))
	f = uint64(t2) + uint64(binary.LittleEndian.Uint32(p.pad[8:])) + f>>32
	binary.LittleEndian.PutUint32(out[8:], uint32(f))
	f = uint64(t3) + uint64(binary.LittleEndian.Uint32(p.pad[12:])) + f>>32
	binary.LittleEndian.PutUint32(out[12:], uint32(f))
}
