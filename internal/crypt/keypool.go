package crypt

import (
	"crypto/rsa"
	"fmt"
	"math/big"
	mrand "math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// KeyPool hands out a FIXED set of deterministically generated RSA key
// pairs, round-robin, to many principals at once. It exists for one
// purpose: simulations and tests that stand up 10^5 principals cannot
// afford 10^5 RSA key generations, and the paper's storage/traffic
// numbers do not depend on key distinctness. A 100k-member mega-sim boot
// with a 64-key pool performs 64 generations instead of 100,000.
//
// THIS PROVIDES NO SECURITY WHATSOEVER and must never reach production
// paths: keys are SHARED between principals (anyone holding pool key i
// can decrypt for every other principal assigned key i) and generated
// from a seeded PRNG, so anyone knowing the seed can reproduce every
// private key. Construction is the explicit opt-in; nothing in the stack
// reaches for a KeyPool by default.
//
// Determinism is real, not best-effort: rsa.GenerateKey deliberately
// de-randomizes its consumption of the entropy reader, so the pool runs
// its own textbook prime search over a seeded stream. The same (n, bits,
// seed) always yields byte-identical keys, which keeps seeded mega-sim
// runs reproducible end to end.
type KeyPool struct {
	keys []*KeyPair
	bits int
	next atomic.Uint64
}

// NewKeyPool deterministically generates n shared key pairs of the given
// modulus size from seed. Generation fans out across CPUs; determinism is
// per-index, so parallelism does not perturb the result.
func NewKeyPool(n, bits int, seed int64) (*KeyPool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("crypt: key pool size must be positive, got %d", n)
	}
	if bits < 256 {
		return nil, fmt.Errorf("crypt: key pool modulus %d too small for OAEP framing", bits)
	}
	p := &KeyPool{keys: make([]*KeyPair, n), bits: bits}
	var (
		wg       sync.WaitGroup
		idx      atomic.Int64
		errOnce  sync.Once
		firstErr error
	)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(idx.Add(1)) - 1
				if i >= n {
					return
				}
				// Each index gets its own seeded stream so assignment of
				// indices to workers cannot affect the generated keys.
				kp, err := deterministicKeyPair(bits, mrand.New(mrand.NewSource(seed^int64(i)*0x5851F42D4C957F2D)))
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				p.keys[i] = kp
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return p, nil
}

// Next returns the next key pair in round-robin order. The SAME pair is
// handed to every len(pool)-th caller; see the type comment.
func (p *KeyPool) Next() *KeyPair {
	return p.keys[int(p.next.Add(1)-1)%len(p.keys)]
}

// Warm satisfies KeySource; the pool is fully generated at construction,
// so there is nothing to pre-warm.
func (p *KeyPool) Warm(int) error { return nil }

// At returns pool key i (mod pool size), for callers that want a stable
// principal→key mapping independent of call order.
func (p *KeyPool) At(i int) *KeyPair {
	return p.keys[((i%len(p.keys))+len(p.keys))%len(p.keys)]
}

// Size reports the number of distinct pairs in the pool.
func (p *KeyPool) Size() int { return len(p.keys) }

// Bits returns the modulus size of the pooled keys.
func (p *KeyPool) Bits() int { return p.bits }

var bigOne = big.NewInt(1)

// deterministicKeyPair builds an RSA key pair from a seeded stream: two
// probable primes, e = 65537, CRT precomputation. Test/sim quality only —
// no strong-prime screening, Miller-Rabin rounds sized for test keys.
func deterministicKeyPair(bits int, rnd *mrand.Rand) (*KeyPair, error) {
	e := big.NewInt(65537)
	for attempts := 0; attempts < 1000; attempts++ {
		p := deterministicPrime(bits/2, rnd)
		q := deterministicPrime(bits-bits/2, rnd)
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		phi := new(big.Int).Mul(new(big.Int).Sub(p, bigOne), new(big.Int).Sub(q, bigOne))
		d := new(big.Int).ModInverse(e, phi)
		if d == nil {
			continue // e shares a factor with phi; redraw
		}
		priv := &rsa.PrivateKey{
			PublicKey: rsa.PublicKey{N: n, E: int(e.Int64())},
			D:         d,
			Primes:    []*big.Int{p, q},
		}
		priv.Precompute()
		if err := priv.Validate(); err != nil {
			continue
		}
		return &KeyPair{priv: priv}, nil
	}
	return nil, fmt.Errorf("crypt: deterministic %d-bit keygen did not converge", bits)
}

// deterministicPrime draws candidates of exactly the given bit length from
// the stream until one passes Miller-Rabin.
func deterministicPrime(bits int, rnd *mrand.Rand) *big.Int {
	b := make([]byte, (bits+7)/8)
	top := uint(bits % 8)
	if top == 0 {
		top = 8
	}
	for {
		rnd.Read(b)
		b[0] &= byte(1<<top) - 1
		// Force the top two bits so p*q reaches the full modulus length,
		// and the low bit so the candidate is odd.
		if top >= 2 {
			b[0] |= 3 << (top - 2)
		} else {
			b[0] |= 1
			b[1] |= 0x80
		}
		b[len(b)-1] |= 1
		p := new(big.Int).SetBytes(b)
		if p.ProbablyPrime(20) {
			return p
		}
	}
}
