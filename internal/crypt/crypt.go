// Package crypt is Mykil's cryptographic substrate. It wraps the Go
// standard library primitives behind the small set of operations the
// protocol needs:
//
//   - 128-bit symmetric keys with authenticated encryption (AES-128-CTR +
//     HMAC-SHA256, encrypt-then-MAC) for area keys, auxiliary keys, and
//     ticket sealing;
//   - RSA key pairs with OAEP encryption and PKCS#1 v1.5 signatures for the
//     join/rejoin protocols (the paper used 2048-bit RSA via OpenSSL);
//   - hybrid public-key encryption reproducing the paper's §V-D workaround:
//     payloads larger than one OAEP block are encrypted under a fresh
//     one-time symmetric key which is itself RSA-encrypted;
//   - HMAC-SHA256 message authentication codes;
//   - RC4 for the bulk multicast data path feasibility experiment (§V-E).
package crypt

import (
	"crypto"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/rc4"
	"crypto/rsa"
	"crypto/sha1"
	"crypto/sha256"
	"crypto/x509"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// SymKeyLen is the symmetric key length in bytes. The paper uses 128-bit
// area and auxiliary keys.
const SymKeyLen = 16

// DefaultRSABits is the RSA modulus size the paper's prototype used.
const DefaultRSABits = 2048

// Errors returned by this package. Callers match with errors.Is.
var (
	// ErrDecrypt reports that a ciphertext failed authentication or could
	// not be decrypted. Deliberately coarse: distinguishing MAC failure
	// from padding failure invites oracle attacks.
	ErrDecrypt = errors.New("crypt: decryption failed")
	// ErrBadSignature reports a signature that did not verify.
	ErrBadSignature = errors.New("crypt: bad signature")
	// ErrBadMAC reports a MAC that did not verify.
	ErrBadMAC = errors.New("crypt: bad MAC")
	// ErrShortCiphertext reports a ciphertext too short to contain the
	// framing this package produces.
	ErrShortCiphertext = errors.New("crypt: ciphertext too short")
)

// SymKey is a 128-bit symmetric key.
type SymKey [SymKeyLen]byte

// NewSymKey returns a fresh random symmetric key.
func NewSymKey() SymKey {
	var k SymKey
	if _, err := io.ReadFull(rand.Reader, k[:]); err != nil {
		// crypto/rand never fails on supported platforms; if it does the
		// process must not continue issuing keys.
		panic(fmt.Sprintf("crypt: reading randomness: %v", err))
	}
	return k
}

// SymKeyFromBytes builds a key from exactly SymKeyLen bytes.
func SymKeyFromBytes(b []byte) (SymKey, error) {
	var k SymKey
	if len(b) != SymKeyLen {
		return k, fmt.Errorf("crypt: symmetric key must be %d bytes, got %d", SymKeyLen, len(b))
	}
	copy(k[:], b)
	return k, nil
}

// IsZero reports whether the key is the all-zero value (unset).
func (k SymKey) IsZero() bool {
	var zero SymKey
	return k == zero
}

// Equal reports whether two keys are identical. Keys are compared in tests
// and tree bookkeeping, never as an authentication step, so constant time
// is not required.
func (k SymKey) Equal(other SymKey) bool { return k == other }

// symSeal layout: nonce(16) || ciphertext || tag(32).
const (
	symNonceLen = aes.BlockSize
	symTagLen   = sha256.Size
	// SealOverhead is the fixed byte overhead Seal adds to a plaintext.
	SealOverhead = symNonceLen + symTagLen
)

// Seal encrypts and authenticates plaintext under key k using
// AES-128-CTR + HMAC-SHA256 (encrypt-then-MAC). The output embeds a random
// nonce; sealing the same plaintext twice yields different ciphertexts.
func Seal(k SymKey, plaintext []byte) []byte {
	out := make([]byte, symNonceLen+len(plaintext)+symTagLen)
	nonce := out[:symNonceLen]
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		panic(fmt.Sprintf("crypt: reading randomness: %v", err))
	}
	block, err := aes.NewCipher(k[:])
	if err != nil {
		panic(fmt.Sprintf("crypt: aes key setup: %v", err)) // key length is fixed; unreachable
	}
	ct := out[symNonceLen : symNonceLen+len(plaintext)]
	cipher.NewCTR(block, nonce).XORKeyStream(ct, plaintext)

	mac := hmac.New(sha256.New, macKeyFor(k))
	mac.Write(out[:symNonceLen+len(plaintext)])
	copy(out[symNonceLen+len(plaintext):], mac.Sum(nil))
	return out
}

// Open authenticates and decrypts a Seal output. It returns ErrDecrypt if
// the ciphertext was not produced under k or has been modified.
func Open(k SymKey, sealed []byte) ([]byte, error) {
	if len(sealed) < SealOverhead {
		return nil, ErrShortCiphertext
	}
	body := sealed[:len(sealed)-symTagLen]
	tag := sealed[len(sealed)-symTagLen:]

	mac := hmac.New(sha256.New, macKeyFor(k))
	mac.Write(body)
	if !hmac.Equal(tag, mac.Sum(nil)) {
		return nil, ErrDecrypt
	}
	nonce := body[:symNonceLen]
	ct := body[symNonceLen:]
	block, err := aes.NewCipher(k[:])
	if err != nil {
		panic(fmt.Sprintf("crypt: aes key setup: %v", err))
	}
	pt := make([]byte, len(ct))
	cipher.NewCTR(block, nonce).XORKeyStream(pt, ct)
	return pt, nil
}

// macKeyFor derives the HMAC key from the encryption key so Seal/Open need
// only one 128-bit key, as in the paper's key inventory.
func macKeyFor(k SymKey) []byte {
	sum := sha256.Sum256(append([]byte("mykil-mac-v1"), k[:]...))
	return sum[:]
}

// MAC computes an HMAC-SHA256 tag over data under key k.
func MAC(k SymKey, data []byte) []byte {
	mac := hmac.New(sha256.New, k[:])
	mac.Write(data)
	return mac.Sum(nil)
}

// VerifyMAC checks tag against MAC(k, data) in constant time.
func VerifyMAC(k SymKey, data, tag []byte) error {
	if !hmac.Equal(tag, MAC(k, data)) {
		return ErrBadMAC
	}
	return nil
}

// Nonce returns a fresh 64-bit random nonce for challenge–response steps.
func Nonce() uint64 {
	var b [8]byte
	if _, err := io.ReadFull(rand.Reader, b[:]); err != nil {
		panic(fmt.Sprintf("crypt: reading randomness: %v", err))
	}
	return binary.BigEndian.Uint64(b[:])
}

// KeyPair is an RSA key pair belonging to one protocol principal (client,
// registration server, or area controller).
type KeyPair struct {
	priv *rsa.PrivateKey
}

// PublicKey is the shareable half of a KeyPair.
type PublicKey struct {
	pub *rsa.PublicKey
}

// GenerateKeyPair creates an RSA key pair with the given modulus size in
// bits. The paper used 2048; tests use smaller keys for speed.
func GenerateKeyPair(bits int) (*KeyPair, error) {
	priv, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("crypt: generating %d-bit RSA key: %w", bits, err)
	}
	return &KeyPair{priv: priv}, nil
}

// Public returns the public half of the pair.
func (kp *KeyPair) Public() PublicKey { return PublicKey{pub: &kp.priv.PublicKey} }

// Bits returns the modulus size in bits.
func (kp *KeyPair) Bits() int { return kp.priv.N.BitLen() }

// Bits returns the modulus size in bits.
func (p PublicKey) Bits() int {
	if p.pub == nil {
		return 0
	}
	return p.pub.N.BitLen()
}

// IsZero reports whether the public key is unset.
func (p PublicKey) IsZero() bool { return p.pub == nil }

// Equal reports whether two public keys are the same key.
func (p PublicKey) Equal(other PublicKey) bool {
	if p.pub == nil || other.pub == nil {
		return p.pub == other.pub
	}
	return p.pub.N.Cmp(other.pub.N) == 0 && p.pub.E == other.pub.E
}

// Marshal encodes the public key in PKIX/DER form for embedding in wire
// messages and tickets.
func (p PublicKey) Marshal() []byte {
	if p.pub == nil {
		return nil
	}
	der, err := x509.MarshalPKIXPublicKey(p.pub)
	if err != nil {
		panic(fmt.Sprintf("crypt: marshaling RSA public key: %v", err)) // rsa keys always marshal
	}
	return der
}

// ParsePublicKey decodes a key produced by Marshal.
func ParsePublicKey(der []byte) (PublicKey, error) {
	k, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return PublicKey{}, fmt.Errorf("crypt: parsing public key: %w", err)
	}
	pub, ok := k.(*rsa.PublicKey)
	if !ok {
		return PublicKey{}, fmt.Errorf("crypt: public key is %T, want *rsa.PublicKey", k)
	}
	return PublicKey{pub: pub}, nil
}

// MarshalPrivate encodes the full key pair in PKCS#1/DER form, used only by
// the replica-state snapshot between an area controller and its backup.
func (kp *KeyPair) MarshalPrivate() []byte {
	return x509.MarshalPKCS1PrivateKey(kp.priv)
}

// ParseKeyPair decodes a key pair produced by MarshalPrivate.
func ParseKeyPair(der []byte) (*KeyPair, error) {
	priv, err := x509.ParsePKCS1PrivateKey(der)
	if err != nil {
		return nil, fmt.Errorf("crypt: parsing private key: %w", err)
	}
	return &KeyPair{priv: priv}, nil
}

// maxOAEPPlaintext returns the largest plaintext one OAEP block can carry
// for the given public key: modulusLen - 2*hashLen - 2. OAEP uses SHA-1 to
// match the paper's OpenSSL RSA_PKCS1_OAEP_PADDING, whose ~41-byte overhead
// yields the 215-byte single-block limit §V-D reports for 2048-bit keys.
func maxOAEPPlaintext(pub *rsa.PublicKey) int {
	return pub.Size() - 2*sha1.Size - 2
}

// MaxSingleBlock reports the largest payload EncryptOAEP accepts for this
// key (the paper's "215 bytes" for 2048-bit keys, modulo hash choice).
func (p PublicKey) MaxSingleBlock() int {
	if p.pub == nil {
		return 0
	}
	return maxOAEPPlaintext(p.pub)
}

// EncryptOAEP encrypts a payload that must fit in a single OAEP block.
func (p PublicKey) EncryptOAEP(plaintext []byte) ([]byte, error) {
	if p.pub == nil {
		return nil, errors.New("crypt: encrypt with zero public key")
	}
	if len(plaintext) > maxOAEPPlaintext(p.pub) {
		return nil, fmt.Errorf("crypt: payload %d bytes exceeds single OAEP block (%d bytes)",
			len(plaintext), maxOAEPPlaintext(p.pub))
	}
	ct, err := rsa.EncryptOAEP(sha1.New(), rand.Reader, p.pub, plaintext, nil)
	if err != nil {
		return nil, fmt.Errorf("crypt: RSA-OAEP encrypt: %w", err)
	}
	return ct, nil
}

// DecryptOAEP reverses EncryptOAEP.
func (kp *KeyPair) DecryptOAEP(ciphertext []byte) ([]byte, error) {
	pt, err := rsa.DecryptOAEP(sha1.New(), rand.Reader, kp.priv, ciphertext, nil)
	if err != nil {
		return nil, ErrDecrypt
	}
	return pt, nil
}

// Hybrid ciphertext layout: mode(1) || body.
//
//	mode 0: body is one OAEP block.
//	mode 1: body is keyBlockLen(2, big endian) || OAEP(one-time key) ||
//	        Seal(one-time key, plaintext) — the paper's §V-D workaround
//	        for payloads over the single-block limit.
const (
	hybridModeDirect = 0
	hybridModeKeyed  = 1
)

// Encrypt encrypts an arbitrary-length payload to this public key. Payloads
// within one OAEP block are encrypted directly; larger ones use the paper's
// one-time-symmetric-key scheme.
func (p PublicKey) Encrypt(plaintext []byte) ([]byte, error) {
	if p.pub == nil {
		return nil, errors.New("crypt: encrypt with zero public key")
	}
	if len(plaintext) <= maxOAEPPlaintext(p.pub) {
		block, err := p.EncryptOAEP(plaintext)
		if err != nil {
			return nil, err
		}
		return append([]byte{hybridModeDirect}, block...), nil
	}
	oneTime := NewSymKey()
	keyBlock, err := p.EncryptOAEP(oneTime[:])
	if err != nil {
		return nil, err
	}
	sealed := Seal(oneTime, plaintext)
	out := make([]byte, 0, 3+len(keyBlock)+len(sealed))
	out = append(out, hybridModeKeyed)
	var lenBuf [2]byte
	binary.BigEndian.PutUint16(lenBuf[:], uint16(len(keyBlock)))
	out = append(out, lenBuf[:]...)
	out = append(out, keyBlock...)
	out = append(out, sealed...)
	return out, nil
}

// Decrypt reverses Encrypt.
func (kp *KeyPair) Decrypt(ciphertext []byte) ([]byte, error) {
	if len(ciphertext) < 1 {
		return nil, ErrShortCiphertext
	}
	mode, body := ciphertext[0], ciphertext[1:]
	switch mode {
	case hybridModeDirect:
		return kp.DecryptOAEP(body)
	case hybridModeKeyed:
		if len(body) < 2 {
			return nil, ErrShortCiphertext
		}
		keyLen := int(binary.BigEndian.Uint16(body[:2]))
		body = body[2:]
		if len(body) < keyLen {
			return nil, ErrShortCiphertext
		}
		keyBytes, err := kp.DecryptOAEP(body[:keyLen])
		if err != nil {
			return nil, err
		}
		oneTime, err := SymKeyFromBytes(keyBytes)
		if err != nil {
			return nil, ErrDecrypt
		}
		return Open(oneTime, body[keyLen:])
	default:
		return nil, fmt.Errorf("crypt: unknown hybrid mode %d: %w", mode, ErrDecrypt)
	}
}

// Sign produces an RSA PKCS#1 v1.5 signature over SHA-256(data).
func (kp *KeyPair) Sign(data []byte) []byte {
	digest := sha256.Sum256(data)
	sig, err := rsa.SignPKCS1v15(rand.Reader, kp.priv, crypto.SHA256, digest[:])
	if err != nil {
		panic(fmt.Sprintf("crypt: signing: %v", err)) // fails only on malformed keys
	}
	return sig
}

// Verify checks sig against data under this public key.
func (p PublicKey) Verify(data, sig []byte) error {
	if p.pub == nil {
		return errors.New("crypt: verify with zero public key")
	}
	digest := sha256.Sum256(data)
	if err := rsa.VerifyPKCS1v15(p.pub, crypto.SHA256, digest[:], sig); err != nil {
		return ErrBadSignature
	}
	return nil
}

// RC4XOR applies the RC4 keystream for key k to data in place and returns
// data. RC4 is long broken for confidentiality; it exists here solely to
// reproduce the paper's §V-E hand-held throughput experiment.
func RC4XOR(k SymKey, data []byte) []byte {
	c, err := rc4.NewCipher(k[:])
	if err != nil {
		panic(fmt.Sprintf("crypt: rc4 key setup: %v", err)) // key length fixed
	}
	c.XORKeyStream(data, data)
	return data
}
