package crypt

import (
	"bytes"
	"testing"
)

// FuzzOpen hardens the authenticated-decryption path: arbitrary
// ciphertexts must fail cleanly or round-trip, never panic.
func FuzzOpen(f *testing.F) {
	k := NewSymKey()
	f.Add(Seal(k, []byte("seed plaintext")))
	f.Add([]byte{})
	f.Add(make([]byte, SealOverhead))
	f.Add(make([]byte, SealOverhead-1))
	f.Fuzz(func(t *testing.T, data []byte) {
		pt, err := Open(k, data)
		if err != nil {
			return
		}
		// Anything that opens must re-seal and re-open to the same bytes.
		again, err := Open(k, Seal(k, pt))
		if err != nil || !bytes.Equal(again, pt) {
			t.Error("seal/open not a round trip for opened plaintext")
		}
	})
}

// FuzzSealOpenRoundTrip asserts the core property over arbitrary
// plaintexts and key bytes.
func FuzzSealOpenRoundTrip(f *testing.F) {
	f.Add([]byte("hello"), []byte("0123456789abcdef"))
	f.Add([]byte{}, []byte("ffffffffffffffff"))
	f.Fuzz(func(t *testing.T, pt, keyBytes []byte) {
		if len(keyBytes) < SymKeyLen {
			return
		}
		k, err := SymKeyFromBytes(keyBytes[:SymKeyLen])
		if err != nil {
			t.Fatal(err)
		}
		got, err := Open(k, Seal(k, pt))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !bytes.Equal(got, pt) {
			t.Fatal("round trip changed plaintext")
		}
	})
}
