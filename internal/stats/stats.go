// Package stats provides lightweight, concurrency-safe counters and
// sample-based histograms for offline experiment analysis (exact
// min/max/quantiles over retained samples).
//
// For live runtime metrics — node, simnet, and controller counters, and
// the protocol latency histograms — use internal/obs instead: its
// handles are typed and pre-registered (misspelled names fail loudly),
// its histograms are fixed-bucket and allocation-free on the observe
// path, and its registries export Prometheus text. Registry here is
// kept one release for external callers and will then be removed.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing, concurrency-safe counter.
// The zero value is ready to use. It is a lock-free atomic: the counter
// is bumped on every simulated-network delivery, so under parallel
// load a mutex here serializes the whole data plane.
type Counter struct {
	v atomic.Int64
}

// Add increases the counter by delta. Negative deltas are ignored so that a
// Counter remains monotonic even under buggy callers.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		return
	}
	c.v.Add(delta)
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.v.Store(0) }

// Deprecated: use obs.Registry, whose typed, pre-registered handles
// turn a misspelled metric name into a construction-time panic instead
// of a silently fresh series.
//
// Registry is a named collection of counters, keyed by category string
// (e.g. "keyupdate.multicast.bytes"). The zero value is ready to use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Add is shorthand for Counter(name).Add(delta).
func (r *Registry) Add(name string, delta int64) { r.Counter(name).Add(delta) }

// Value returns the current value of the named counter (zero if absent).
func (r *Registry) Value(name string) int64 {
	r.mu.Lock()
	c, ok := r.counters[name]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	return c.Value()
}

// Names returns all registered counter names in sorted order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Reset zeroes every registered counter.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.Reset()
	}
}

// Snapshot returns a copy of all counter values.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// String renders the registry as "name=value" pairs, sorted by name.
func (r *Registry) String() string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", name, snap[name]))
	}
	return strings.Join(parts, " ")
}

// Histogram accumulates float64 samples and reports summary statistics.
// The zero value is ready to use.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sorted  bool
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.samples = append(h.samples, v)
	h.sorted = false
	h.mu.Unlock()
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean returns the arithmetic mean of the samples, or zero if empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range h.samples {
		sum += v
	}
	return sum / float64(len(h.samples))
}

// Min returns the smallest sample, or zero if empty.
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	m := h.samples[0]
	for _, v := range h.samples[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest sample, or zero if empty.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	m := h.samples[0]
	for _, v := range h.samples[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Quantile returns the q-th quantile (0 <= q <= 1) using nearest-rank on the
// sorted samples, or zero if empty.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[len(h.samples)-1]
	}
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return h.samples[idx]
}

// Stddev returns the population standard deviation of the samples.
func (h *Histogram) Stddev() float64 {
	mean := h.Mean()
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var ss float64
	for _, v := range h.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(h.samples)))
}

// Summary renders count/mean/min/median/p99/max on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%.3f min=%.3f p50=%.3f p99=%.3f max=%.3f",
		h.Count(), h.Mean(), h.Min(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}

// Distribution counts integer-valued observations, used for "how many
// members updated k keys" style tables from the paper's CPU analysis.
// The zero value is ready to use.
type Distribution struct {
	mu     sync.Mutex
	counts map[int]int64
}

// Observe records one occurrence of value k.
func (d *Distribution) Observe(k int) { d.ObserveN(k, 1) }

// ObserveN records n occurrences of value k.
func (d *Distribution) ObserveN(k int, n int64) {
	d.mu.Lock()
	if d.counts == nil {
		d.counts = make(map[int]int64)
	}
	d.counts[k] += n
	d.mu.Unlock()
}

// Count returns how many observations of value k were recorded.
func (d *Distribution) Count(k int) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.counts[k]
}

// Total returns the total number of observations.
func (d *Distribution) Total() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var t int64
	for _, n := range d.counts {
		t += n
	}
	return t
}

// Keys returns the observed values in ascending order.
func (d *Distribution) Keys() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	keys := make([]int, 0, len(d.counts))
	for k := range d.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// WeightedSum returns sum(k * count(k)), e.g. total key updates across all
// members.
func (d *Distribution) WeightedSum() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var t int64
	for k, n := range d.counts {
		t += int64(k) * n
	}
	return t
}

// String renders the distribution as "k:count" pairs in ascending key order.
func (d *Distribution) String() string {
	keys := d.Keys()
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%d:%d", k, d.Count(k)))
	}
	return strings.Join(parts, " ")
}
