package stats

import (
	"sync"
	"testing"
)

// mutexCounter is the pre-atomic implementation, kept here as the
// benchmark baseline so the win from atomic.Int64 stays measurable.
type mutexCounter struct {
	mu sync.Mutex
	v  int64
}

func (c *mutexCounter) Inc() {
	c.mu.Lock()
	c.v++
	c.mu.Unlock()
}

func (c *mutexCounter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Value() != int64(b.N) {
		b.Fatalf("count = %d, want %d", c.Value(), b.N)
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	if c.Value() != int64(b.N) {
		b.Fatalf("count = %d, want %d", c.Value(), b.N)
	}
}

func BenchmarkMutexCounterIncParallel(b *testing.B) {
	var c mutexCounter
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	if c.Value() != int64(b.N) {
		b.Fatalf("count = %d, want %d", c.Value(), b.N)
	}
}
