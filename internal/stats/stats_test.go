package stats

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter value = %d", c.Value())
	}
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("Value = %d, want 42", got)
	}
	c.Reset()
	if c.Value() != 0 {
		t.Errorf("Value after Reset = %d", c.Value())
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(10)
	c.Add(-5)
	if got := c.Value(); got != 10 {
		t.Errorf("Value = %d, want 10 (negative add ignored)", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers, perWorker = 16, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("Value = %d, want %d", got, workers*perWorker)
	}
}

func TestRegistry(t *testing.T) {
	var r Registry
	r.Add("a.bytes", 100)
	r.Add("b.msgs", 3)
	r.Counter("a.bytes").Add(50)
	if got := r.Value("a.bytes"); got != 150 {
		t.Errorf("a.bytes = %d, want 150", got)
	}
	if got := r.Value("missing"); got != 0 {
		t.Errorf("missing = %d, want 0", got)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a.bytes" || names[1] != "b.msgs" {
		t.Errorf("Names = %v", names)
	}
	snap := r.Snapshot()
	if snap["a.bytes"] != 150 || snap["b.msgs"] != 3 {
		t.Errorf("Snapshot = %v", snap)
	}
	if s := r.String(); s != "a.bytes=150 b.msgs=3" {
		t.Errorf("String = %q", s)
	}
	r.Reset()
	if r.Value("a.bytes") != 0 {
		t.Error("Reset did not zero counters")
	}
}

func TestRegistryConcurrentCounterCreation(t *testing.T) {
	var r Registry
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Add("shared", 1)
		}()
	}
	wg.Wait()
	if got := r.Value("shared"); got != 32 {
		t.Errorf("shared = %d, want 32", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 ||
		h.Quantile(0.5) != 0 || h.Stddev() != 0 {
		t.Error("empty histogram returned nonzero statistics")
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for _, v := range []float64{4, 2, 8, 6} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("Count = %d", h.Count())
	}
	if got := h.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := h.Min(); got != 2 {
		t.Errorf("Min = %v, want 2", got)
	}
	if got := h.Max(); got != 8 {
		t.Errorf("Max = %v, want 8", got)
	}
	if got := h.Quantile(0.5); got != 4 {
		t.Errorf("p50 = %v, want 4", got)
	}
	if got := h.Quantile(0); got != 2 {
		t.Errorf("p0 = %v, want 2", got)
	}
	if got := h.Quantile(1); got != 8 {
		t.Errorf("p100 = %v, want 8", got)
	}
	want := math.Sqrt(5) // population stddev of {2,4,6,8}
	if got := h.Stddev(); math.Abs(got-want) > 1e-9 {
		t.Errorf("Stddev = %v, want %v", got, want)
	}
	if h.Summary() == "" {
		t.Error("Summary empty")
	}
}

func TestHistogramObserveAfterQuantile(t *testing.T) {
	var h Histogram
	h.Observe(10)
	_ = h.Quantile(0.5)
	h.Observe(1) // must re-sort lazily
	if got := h.Quantile(0); got != 1 {
		t.Errorf("p0 after late observe = %v, want 1", got)
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	f := func(vals []float64) bool {
		var h Histogram
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Observe(v)
		}
		if h.Count() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistribution(t *testing.T) {
	var d Distribution
	d.Observe(1)
	d.ObserveN(1, 2)
	d.ObserveN(3, 5)
	if got := d.Count(1); got != 3 {
		t.Errorf("Count(1) = %d, want 3", got)
	}
	if got := d.Count(2); got != 0 {
		t.Errorf("Count(2) = %d, want 0", got)
	}
	if got := d.Total(); got != 8 {
		t.Errorf("Total = %d, want 8", got)
	}
	if got := d.WeightedSum(); got != 1*3+3*5 {
		t.Errorf("WeightedSum = %d, want 18", got)
	}
	keys := d.Keys()
	if len(keys) != 2 || keys[0] != 1 || keys[1] != 3 {
		t.Errorf("Keys = %v", keys)
	}
	if s := d.String(); s != "1:3 3:5" {
		t.Errorf("String = %q", s)
	}
}

func TestDistributionConcurrent(t *testing.T) {
	var d Distribution
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				d.Observe(k % 3)
			}
		}(i)
	}
	wg.Wait()
	if got := d.Total(); got != 800 {
		t.Errorf("Total = %d, want 800", got)
	}
}
