package node

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mykil/internal/clock"
	"mykil/internal/wire"
)

// chanTransport is a minimal in-memory transport for exercising the loop.
type chanTransport struct {
	recv     chan *wire.Frame
	done     chan struct{}
	doneOnce sync.Once
}

func newChanTransport() *chanTransport {
	return &chanTransport{
		recv: make(chan *wire.Frame, 16),
		done: make(chan struct{}),
	}
}

func (t *chanTransport) Addr() string                   { return "test" }
func (t *chanTransport) Send(string, *wire.Frame) error { return nil }
func (t *chanTransport) Recv() <-chan *wire.Frame       { return t.recv }
func (t *chanTransport) Done() <-chan struct{}          { return t.done }
func (t *chanTransport) Close() error {
	t.doneOnce.Do(func() { close(t.done) })
	return nil
}

func TestLoopDispatchesFramesAndCommands(t *testing.T) {
	tr := newChanTransport()
	var frames []wire.Kind
	l := New(Config{
		Name:      "t",
		Transport: tr,
		OnFrame:   func(f *wire.Frame) { frames = append(frames, f.Kind) },
	})
	l.Start()
	defer l.Close()

	tr.recv <- &wire.Frame{Kind: 1}
	tr.recv <- &wire.Frame{Kind: 2}

	var got []wire.Kind
	deadline := time.Now().Add(5 * time.Second)
	for len(got) < 2 && time.Now().Before(deadline) {
		if err := l.Call(func() { got = append([]wire.Kind(nil), frames...) }); err != nil {
			t.Fatalf("Call: %v", err)
		}
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("frames = %v, want [1 2]", got)
	}
	if n := l.Stats().Value(StatFrames); n != 2 {
		t.Errorf("%s = %d, want 2", StatFrames, n)
	}
}

func TestLoopEnqueueAfterCloseCountsDrops(t *testing.T) {
	tr := newChanTransport()
	l := New(Config{Name: "t", Transport: tr, OnFrame: func(*wire.Frame) {}})
	l.Start()
	l.Close()

	if err := l.Enqueue(func() {}); !errors.Is(err, ErrStopped) {
		t.Fatalf("Enqueue after Close = %v, want ErrStopped", err)
	}
	if err := l.Call(func() {}); !errors.Is(err, ErrStopped) {
		t.Fatalf("Call after Close = %v, want ErrStopped", err)
	}
	if n := l.Stats().Value(StatDrops); n != 2 {
		t.Errorf("%s = %d, want 2", StatDrops, n)
	}
}

func TestLoopStopsOnTransportDone(t *testing.T) {
	tr := newChanTransport()
	exited := make(chan struct{})
	l := New(Config{
		Name:      "t",
		Transport: tr,
		OnFrame:   func(*wire.Frame) {},
		OnExit:    func() { close(exited) },
	})
	l.Start()
	tr.Close()

	select {
	case <-l.Stopped():
	case <-time.After(5 * time.Second):
		t.Fatal("loop did not stop after transport done")
	}
	select {
	case <-exited:
	default:
		t.Fatal("OnExit did not run")
	}
	// Enqueue must not hang even though Close was never called.
	if err := l.Enqueue(func() {}); !errors.Is(err, ErrStopped) {
		t.Fatalf("Enqueue after transport done = %v, want ErrStopped", err)
	}
	l.Close()
}

func TestLoopTicks(t *testing.T) {
	tr := newChanTransport()
	clk := clock.NewFake(time.Unix(0, 0))
	ticked := make(chan struct{}, 8)
	l := New(Config{
		Name:      "t",
		Transport: tr,
		Clock:     clk,
		TickEvery: time.Second,
		OnFrame:   func(*wire.Frame) {},
		OnTick:    func() { ticked <- struct{}{} },
	})
	l.Start()
	defer l.Close()

	// The loop registers its ticker asynchronously; wait for it.
	for i := 0; clk.PendingWaiters() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 3; i++ {
		clk.Advance(time.Second)
		select {
		case <-ticked:
		case <-time.After(5 * time.Second):
			t.Fatalf("tick %d never fired", i)
		}
	}
}

func TestLoopExitFromCallback(t *testing.T) {
	tr := newChanTransport()
	l := New(Config{Name: "t", Transport: tr, OnFrame: func(*wire.Frame) {}})
	l.Start()
	if err := l.Enqueue(func() { l.Exit() }); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	select {
	case <-l.Stopped():
	case <-time.After(5 * time.Second):
		t.Fatal("loop did not stop after Exit")
	}
	l.Close()
}

func TestPoolMapCoversAllIndices(t *testing.T) {
	for _, size := range []int{1, 2, 8} {
		p := NewPool(size)
		const n = 100
		var hits [n]atomic.Int64
		p.Map(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if v := hits[i].Load(); v != 1 {
				t.Errorf("size %d: index %d ran %d times, want 1", size, i, v)
			}
		}
		p.Close()
	}
}

func TestPoolMapUnderSaturation(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	// Park every worker so Map's helpers cannot be scheduled.
	block := make(chan struct{})
	var parked sync.WaitGroup
	for i := 0; i < 2; i++ {
		parked.Add(1)
		p.Submit(func() { parked.Done(); <-block })
	}
	parked.Wait()

	var sum atomic.Int64
	done := make(chan struct{})
	go func() {
		p.Map(10, func(i int) { sum.Add(int64(i)) })
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Map deadlocked on a saturated pool")
	}
	close(block)
	if sum.Load() != 45 {
		t.Fatalf("sum = %d, want 45", sum.Load())
	}
}

func TestPipelinePreservesSubmissionOrder(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var got []int
	pipe := NewPipeline(p, 0, func(v int) { got = append(got, v) })
	const n = 50
	for i := 0; i < n; i++ {
		i := i
		pipe.Submit(func() int {
			// Earlier jobs sleep longer so out-of-order completion is the
			// norm, not the exception.
			time.Sleep(time.Duration((n-i)%7) * time.Millisecond)
			return i
		})
	}
	pipe.Close()
	if len(got) != n {
		t.Fatalf("emitted %d results, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("result %d = %d; order not preserved: %v", i, v, got)
		}
	}
}

func TestPipelineBarrierDrainsInFlightJobs(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var emitted atomic.Int64
	pipe := NewPipeline(p, 0, func(int) { emitted.Add(1) })
	defer pipe.Close()
	for i := 0; i < 20; i++ {
		pipe.Submit(func() int {
			time.Sleep(time.Millisecond)
			return 0
		})
	}
	pipe.Barrier()
	if v := emitted.Load(); v != 20 {
		t.Fatalf("after Barrier: emitted = %d, want 20", v)
	}
}
