// Package node provides the shared single-goroutine runtime every Mykil
// node type (area controller, member, registration server, replica
// backup) runs on: one event loop that owns all node state, fed by the
// transport's receive channel, a command channel for external callers, a
// clock-driven housekeeping tick, and a stop/wait lifecycle. It also
// provides the data-plane building blocks — a bounded worker pool and an
// order-preserving pipeline — that let a node fan CPU-heavy work (crypto,
// encoding) out across cores while the loop keeps sole ownership of
// protocol state and per-destination wire ordering is preserved.
package node

import (
	"errors"
	"sync"
	"time"

	"mykil/internal/clock"
	"mykil/internal/obs"
	"mykil/internal/transport"
	"mykil/internal/wire"
)

// ErrStopped reports that the loop has stopped and can no longer accept
// commands.
var ErrStopped = errors.New("node: loop stopped")

// Counter names every Loop maintains in its stats registry.
const (
	StatFrames   = "node.frames"   // transport frames dispatched to OnFrame
	StatCommands = "node.commands" // commands executed on the loop
	StatTicks    = "node.ticks"    // housekeeping ticks fired
	StatDrops    = "node.drops"    // commands dropped because the loop had stopped
)

// Config parameterizes a Loop.
type Config struct {
	// Name identifies the node in logs and diagnostics.
	Name string
	// Transport feeds the loop's frame channel. Required.
	Transport transport.Transport
	// Clock drives the housekeeping ticker; nil means clock.Real.
	Clock clock.Clock
	// TickEvery spaces OnTick callbacks; zero disables the ticker.
	TickEvery time.Duration
	// OnFrame handles one received frame (loop context). Required.
	OnFrame func(*wire.Frame)
	// OnTick runs periodic housekeeping (loop context).
	OnTick func()
	// OnExit runs on the loop goroutine just before it returns, however
	// the loop stopped (Close, transport done, or Exit). Nodes use it to
	// fail pending blocking operations.
	OnExit func()
	// Stats receives the loop's counters; nil means a loop-owned registry.
	Stats *obs.Registry
	// CommandBuffer sizes the command channel; zero means 16.
	CommandBuffer int
	// Logf, if set, receives debug logging.
	Logf func(format string, args ...any)
}

// Loop is the single-goroutine event loop at the heart of every node. All
// node state is owned by the loop goroutine; external callers reach it
// through Enqueue and Call.
type Loop struct {
	cfg Config
	st  *obs.Registry

	// Typed handles into st, registered at construction so a misspelled
	// counter name cannot silently mint a new series.
	cFrames   *obs.Counter
	cCommands *obs.Counter
	cTicks    *obs.Counter
	cDrops    *obs.Counter

	commands chan func()
	stopReq  chan struct{} // closed by Close to request shutdown
	stopped  chan struct{} // closed when the loop goroutine has returned
	stopOnce sync.Once
	wg       sync.WaitGroup

	// exit is loop-context state: set by Exit to unwind after the current
	// callback returns. Only the loop goroutine touches it.
	exit bool
}

// New builds a loop. Call Start to begin serving.
func New(cfg Config) *Loop {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.CommandBuffer == 0 {
		cfg.CommandBuffer = 16
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	l := &Loop{
		cfg:      cfg,
		st:       cfg.Stats,
		commands: make(chan func(), cfg.CommandBuffer),
		stopReq:  make(chan struct{}),
		stopped:  make(chan struct{}),
	}
	if l.st == nil {
		l.st = obs.NewRegistry()
	}
	l.cFrames = l.st.Counter(StatFrames, "Transport frames dispatched to OnFrame.")
	l.cCommands = l.st.Counter(StatCommands, "Commands executed on the loop.")
	l.cTicks = l.st.Counter(StatTicks, "Housekeeping ticks fired.")
	l.cDrops = l.st.Counter(StatDrops, "Commands dropped because the loop had stopped.")
	return l
}

// Start launches the loop goroutine.
func (l *Loop) Start() {
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		l.run()
	}()
}

// Close asks the loop to stop and waits until it has. Safe to call more
// than once and concurrently.
func (l *Loop) Close() {
	l.stopOnce.Do(func() { close(l.stopReq) })
	l.wg.Wait()
}

// Stopped returns a channel closed once the loop goroutine has returned —
// whether via Close, the transport finishing, or Exit.
func (l *Loop) Stopped() <-chan struct{} { return l.stopped }

// Exit requests that the loop return after the current callback finishes.
// It must be called from loop context (inside OnFrame, OnTick, or a
// command); a replica uses it to stop consuming a shared transport the
// moment it promotes a replacement controller.
func (l *Loop) Exit() { l.exit = true }

// Stats exposes the loop's counter registry (concurrency-safe).
func (l *Loop) Stats() *obs.Registry { return l.st }

// Enqueue hands fn to the loop without waiting for it to run. Once the
// loop has stopped the command is counted under StatDrops, logged, and
// ErrStopped is returned so lost protocol steps are diagnosable instead
// of vanishing silently.
func (l *Loop) Enqueue(fn func()) error {
	if l.hasStopped() {
		return l.dropped()
	}
	select {
	case l.commands <- fn:
		return nil
	case <-l.stopReq:
	case <-l.stopped:
	}
	return l.dropped()
}

// hasStopped reports whether the loop has stopped or been asked to; a
// buffered command channel could otherwise still accept (and lose) work.
func (l *Loop) hasStopped() bool {
	select {
	case <-l.stopReq:
		return true
	case <-l.stopped:
		return true
	default:
		return false
	}
}

// Call runs fn on the loop and waits for it to complete, or returns
// ErrStopped if the loop stops first.
func (l *Loop) Call(fn func()) error {
	if l.hasStopped() {
		return l.dropped()
	}
	done := make(chan struct{})
	select {
	case l.commands <- func() { fn(); close(done) }:
	case <-l.stopReq:
		return l.dropped()
	case <-l.stopped:
		return l.dropped()
	}
	select {
	case <-done:
		return nil
	case <-l.stopped:
		return ErrStopped
	}
}

func (l *Loop) dropped() error {
	l.cDrops.Inc()
	l.cfg.Logf("%s: command dropped: loop stopped", l.cfg.Name)
	return ErrStopped
}

// run is the event loop. It exits when Close is called, the transport
// reports done, or a callback calls Exit.
func (l *Loop) run() {
	defer close(l.stopped)
	if l.cfg.OnExit != nil {
		defer l.cfg.OnExit()
	}
	var tickC <-chan time.Time
	if l.cfg.TickEvery > 0 {
		tick := l.cfg.Clock.NewTicker(l.cfg.TickEvery)
		defer tick.Stop()
		tickC = tick.C()
	}
	for {
		select {
		case f := <-l.cfg.Transport.Recv():
			l.cFrames.Inc()
			l.cfg.OnFrame(f)
		case fn := <-l.commands:
			l.cCommands.Inc()
			fn()
		case <-tickC:
			l.cTicks.Inc()
			if l.cfg.OnTick != nil {
				l.cfg.OnTick()
			}
		case <-l.cfg.Transport.Done():
			return
		case <-l.stopReq:
			return
		}
		if l.exit {
			return
		}
	}
}
