package node

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded set of worker goroutines for CPU-heavy data-plane
// work (crypto, encoding). Submitted tasks run in any order; use a
// Pipeline to sequence results back.
type Pool struct {
	size    int
	tasks   chan func()
	wg      sync.WaitGroup
	closeMu sync.Once
}

// NewPool starts size workers; size <= 0 means runtime.GOMAXPROCS(0).
func NewPool(size int) *Pool {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		size:  size,
		tasks: make(chan func(), size*2),
	}
	for i := 0; i < size; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for fn := range p.tasks {
				fn()
			}
		}()
	}
	return p
}

// Size reports the worker count.
func (p *Pool) Size() int { return p.size }

// Submit hands one task to the pool, blocking when the task queue is
// full. Must not be called after Close.
func (p *Pool) Submit(fn func()) { p.tasks <- fn }

// Close stops accepting tasks and waits for the workers to finish the
// queue.
func (p *Pool) Close() {
	p.closeMu.Do(func() { close(p.tasks) })
	p.wg.Wait()
}

// Map runs task(0..n-1) with up to Size concurrent executions — the
// caller participates, so a 1-worker pool runs everything serially on
// the caller with no goroutine switches — and returns when all n have
// completed. Helpers that cannot be scheduled immediately (queue full of
// other work) are simply skipped: Map makes progress on the caller alone
// and can never deadlock, even when called while the pool is saturated.
func (p *Pool) Map(n int, task func(i int)) {
	if n <= 0 {
		return
	}
	helpers := p.size - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	if helpers <= 0 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(n)
	claim := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			task(i)
			wg.Done()
		}
	}
	for i := 0; i < helpers; i++ {
		select {
		case p.tasks <- claim:
		default:
			// Pool saturated; the caller covers the remaining indices.
		}
	}
	claim()
	wg.Wait()
}
