package node

// Pipeline runs jobs on a Pool but delivers their results to a single
// emit callback in exact submission order — the mechanism that lets a
// node parallelize per-packet crypto while keeping per-destination wire
// ordering intact. Submit and Barrier are single-producer: only the
// owning loop goroutine may call them. The emit callback runs on the
// pipeline's drain goroutine, so it must only touch concurrency-safe
// state (a transport, a stats registry).
type Pipeline[R any] struct {
	pool  *Pool
	items chan pipeItem[R]
	emit  func(R)
	done  chan struct{}
}

// pipeItem is one sequenced slot: either a pending job result or a
// barrier marker.
type pipeItem[R any] struct {
	result  chan R
	barrier chan struct{}
}

// NewPipeline builds a pipeline over pool. depth bounds how many results
// may be in flight (<= 0 means 4x the pool size); emit receives each
// result in submission order.
func NewPipeline[R any](pool *Pool, depth int, emit func(R)) *Pipeline[R] {
	if depth <= 0 {
		depth = pool.Size() * 4
	}
	p := &Pipeline[R]{
		pool:  pool,
		items: make(chan pipeItem[R], depth),
		emit:  emit,
		done:  make(chan struct{}),
	}
	go p.drain()
	return p
}

// Submit schedules job on the pool. Its result is emitted after every
// earlier submission's and before every later one's, regardless of which
// finishes computing first.
func (p *Pipeline[R]) Submit(job func() R) {
	ch := make(chan R, 1)
	p.items <- pipeItem[R]{result: ch}
	p.pool.Submit(func() { ch <- job() })
}

// Barrier blocks until every previously submitted job has been emitted.
// The loop calls this before publishing state changes (a rekey) that
// must not overtake in-flight data on the wire.
func (p *Pipeline[R]) Barrier() {
	b := make(chan struct{})
	p.items <- pipeItem[R]{barrier: b}
	<-b
}

// Close drains all outstanding jobs and stops the pipeline. No Submit or
// Barrier may follow. The pool must still be open.
func (p *Pipeline[R]) Close() {
	close(p.items)
	<-p.done
}

// drain sequences results: it waits on each slot in submission order and
// hands the value to emit.
func (p *Pipeline[R]) drain() {
	defer close(p.done)
	for it := range p.items {
		if it.barrier != nil {
			close(it.barrier)
			continue
		}
		p.emit(<-it.result)
	}
}
