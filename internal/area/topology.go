package area

import (
	"sort"

	"mykil/internal/obs"
	"mykil/internal/wire"
)

// This file is the dynamic-topology layer: watermark-triggered area
// split and merge. The paper fixes the area map at deployment time; here
// a controller crossing its high watermark sheds the upper half of its
// sorted membership to a freshly spawned sibling, and one sinking under
// the low watermark folds its members into a survivor. Members move via
// the existing rejoin machinery — the old controller signs an
// AreaReassign pointing at the target, the member rejoins there with its
// ticket, and the target skips the §IV-B verify steps because the old
// controller prevouched the migration set. Both sides rekey: the source
// when the batch of leaves flushes, the target as the rejoins land, so
// migrated members decrypt post-split updates and stragglers cannot.

// topologyHousekeeping fires the split/merge callbacks on watermark
// crossings. Each watermark latches until the membership recrosses it,
// so a slow orchestration is not re-triggered every tick. Runs on the
// loop.
func (c *Controller) topologyHousekeeping() {
	n := c.tree.NumMembers()
	if c.cfg.SplitAbove > 0 && c.cfg.OnSplit != nil {
		if n > c.cfg.SplitAbove && !c.splitFired {
			c.splitFired = true
			ids := c.splitCandidates()
			c.trace.Event(obs.ProtoSplit, c.cfg.AreaID, "watermark-high",
				obs.Int("members", int64(n)), obs.Int("migrate", int64(len(ids))))
			go c.cfg.OnSplit(ids)
		} else if n <= c.cfg.SplitAbove {
			c.splitFired = false
		}
	}
	if c.cfg.MergeBelow > 0 && c.cfg.OnMerge != nil {
		if n > 0 && n < c.cfg.MergeBelow && !c.mergeFired {
			c.mergeFired = true
			c.trace.Event(obs.ProtoSplit, c.cfg.AreaID, "watermark-low",
				obs.Int("members", int64(n)))
			go c.cfg.OnMerge()
		} else if n >= c.cfg.MergeBelow {
			c.mergeFired = false
		}
	}
}

// armMergeLatch re-arms the merge watermark once membership has climbed
// to it. Called from the membership mutation points (loop context), not
// just the housekeeping sampler: a sibling that fills up and drains
// again between two housekeeping ticks must still become merge-eligible.
func (c *Controller) armMergeLatch() {
	if c.cfg.MergeBelow > 0 && c.tree.NumMembers() >= c.cfg.MergeBelow {
		c.mergeFired = false
	}
}

// splitCandidates returns the deterministic migration set: the upper
// half of the sorted member IDs. Child controllers and members already
// queued to leave stay put — the partition must be reproducible from
// membership alone, and child ACs anchor subtrees that do not move.
func (c *Controller) splitCandidates() []string {
	ids := c.migratableIDs()
	return ids[len(ids)/2+len(ids)%2:]
}

// migratableIDs lists the sorted member IDs eligible to move areas.
func (c *Controller) migratableIDs() []string {
	ids := make([]string, 0, len(c.members))
	for id, e := range c.members {
		if e.isChildAC || e.lastSeen.IsZero() {
			continue
		}
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// MemberIDs reports the sorted IDs of the current members, child
// controllers excluded — the set a merge orchestrator prevouches at the
// surviving controller before draining this one.
func (c *Controller) MemberIDs() []string {
	var ids []string
	_ = c.call(func() { ids = c.migratableIDs() })
	return ids
}

// Prevouch marks member IDs whose next rejoin skips the §IV-B steps 4-5
// verification once. A migration orchestrator calls it on the TARGET
// controller before the source reassigns: the source is about to remove
// those members, so a verify round-trip would race the removal and
// wrongly report them as still held (the cohort signal) or already gone.
// The vouch stands in for that verification — the source's operator
// asserts the move is legitimate.
func (c *Controller) Prevouch(ids []string) {
	_ = c.call(func() {
		for _, id := range ids {
			c.prevouched[id] = true
		}
	})
}

// UpsertDirectory installs or refreshes one controller entry in this
// controller's directory view. A split must introduce the new sibling to
// every controller that predates it, or the sibling's area-join toward
// its parent would be refused as coming from an unknown controller. The
// backing slice may be shared across controllers, so it is replaced,
// never mutated in place.
func (c *Controller) UpsertDirectory(info wire.ACInfo) {
	c.enqueue(func() {
		for i, e := range c.cfg.Directory {
			if e.ID == info.ID {
				nd := append([]wire.ACInfo(nil), c.cfg.Directory...)
				nd[i] = info
				c.cfg.Directory = nd
				return
			}
		}
		c.cfg.Directory = append(append([]wire.ACInfo(nil), c.cfg.Directory...), info)
	})
}

// RemoveDirectory drops one controller entry — a merged-away sibling —
// from this controller's directory view.
func (c *Controller) RemoveDirectory(id string) {
	c.enqueue(func() {
		nd := make([]wire.ACInfo, 0, len(c.cfg.Directory))
		for _, e := range c.cfg.Directory {
			if e.ID != id {
				nd = append(nd, e)
			}
		}
		c.cfg.Directory = nd
	})
}

// Reassign migrates the given members to the target controller: each
// receives a signed AreaReassign naming the target, then all of them are
// removed in one journaled batch rekey, so the remaining members roll to
// an area key the migrants no longer hold. Reason is "split" or "merge"
// (trace/metrics only). Unknown or child-AC IDs are skipped; the count
// actually reassigned is returned.
func (c *Controller) Reassign(ids []string, target PeerInfo, reason string) (int, error) {
	var n int
	err := c.call(func() { n = c.reassign(ids, target, reason) })
	return n, err
}

// reassign implements Reassign on the loop.
func (c *Controller) reassign(ids []string, target PeerInfo, reason string) int {
	body := wire.AreaReassign{
		AreaID:     c.cfg.AreaID,
		TargetID:   target.ID,
		TargetAddr: target.Addr,
		TargetPub:  target.Pub.Marshal(),
		Reason:     reason,
	}
	moved := make([]string, 0, len(ids))
	for _, id := range ids {
		e, ok := c.members[id]
		if !ok || e.isChildAC || e.lastSeen.IsZero() {
			continue
		}
		c.sendPlain(e.addr, wire.KindAreaReassign, body, true)
		moved = append(moved, id)
	}
	if len(moved) == 0 {
		return 0
	}
	// One immediate batch removal — journaled inside applyBatch — rather
	// than the idle-batched leave path: the migrants were just told to
	// go, and the survivors' rekey must not wait an interval.
	c.applyBatch(nil, moved)
	c.cAreaSplits.Inc()
	c.trace.Event(obs.ProtoSplit, c.cfg.AreaID, "reassigned",
		obs.String("reason", reason), obs.String("target", target.ID),
		obs.Int("members", int64(len(moved))))
	return len(moved)
}
