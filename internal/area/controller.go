// Package area implements Mykil's area controller (AC): the node that
// manages one area's cryptographic keys (§III), forwards multicast data
// between areas (Fig. 2), runs the member-side join step (Fig. 3, steps
// 4/6/7) and the rejoin protocol (Fig. 7), batches rekey operations
// (§III-E), detects member and parent failures (§IV-A), re-parents after
// a parent controller failure (§IV-C), and ships its minimal replicated
// state to a primary-backup replica (§IV-C).
package area

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mykil/internal/clock"
	"mykil/internal/crypt"
	"mykil/internal/journal"
	"mykil/internal/keytree"
	"mykil/internal/node"
	"mykil/internal/obs"
	"mykil/internal/ticket"
	"mykil/internal/transport"
	"mykil/internal/wire"
)

// PartitionPolicy selects the §IV-B behaviour when the previous area
// controller cannot be reached during a rejoin.
type PartitionPolicy int

const (
	// DenyOnPartition refuses the rejoin (option 1: safe against
	// ticket-sharing cohorts, unfair to legitimate mobile members).
	DenyOnPartition PartitionPolicy = iota + 1
	// AdmitOnPartition admits without verification after checking the
	// ticket's embedded NIC identity (option 2: keeps service available
	// across partitions).
	AdmitOnPartition
)

// Default protocol timing. These mirror the paper's relationships:
// T_active >> T_idle, disconnection declared after five silent periods.
const (
	DefaultTIdle          = 2 * time.Second
	DefaultTActive        = 10 * time.Second
	DefaultSilenceFactor  = 5
	DefaultRekeyInterval  = 30 * time.Second
	DefaultVerifyTimeout  = 5 * time.Second
	DefaultReplayWindow   = 5 * time.Minute
	DefaultTicketValidity = 24 * time.Hour
)

// Errors returned by controller operations.
var (
	ErrStopped = errors.New("area: controller stopped")
)

// PeerInfo identifies another controller: its ID, address, and public
// key.
type PeerInfo struct {
	ID   string
	Addr string
	Pub  crypt.PublicKey
}

// Config parameterizes an area controller.
type Config struct {
	// ID is the controller's identity; AreaID names its area. Required.
	ID     string
	AreaID string
	// Transport carries frames; Keys is the controller's key pair; both
	// required.
	Transport transport.Transport
	Keys      *crypt.KeyPair
	// Clock drives all timers; nil means clock.Real.
	Clock clock.Clock
	// KShared is the ticket-sealing key every controller holds (§IV-B).
	KShared crypt.SymKey
	// RSPub authenticates join referrals from the registration server.
	RSPub crypt.PublicKey
	// Directory lists other controllers, for rejoin verification and
	// re-parenting.
	Directory []wire.ACInfo
	// PreferredParents orders candidate parent controller IDs for §IV-C
	// re-parenting.
	PreferredParents []string
	// Parent, if set, is joined (as an area member) at startup.
	Parent *PeerInfo
	// Backup, if set, receives state syncs and heartbeats. It is the
	// legacy single-replica spelling of Replicas; when Replicas is empty
	// it becomes the sole entry.
	Backup *PeerInfo
	// Replicas lists the replica set: every entry receives heartbeats
	// and journal segments (or, unjournaled, full state syncs). The
	// FIRST entry is the announcer — the replica whose address and key
	// are advertised to members in welcomes, and the one that vouches
	// for an election winner's takeover notice.
	Replicas []PeerInfo
	// SplitAbove, when positive, fires OnSplit (once per crossing) when
	// the membership exceeds it — the dynamic-topology high watermark.
	SplitAbove int
	// MergeBelow, when positive, fires OnMerge (once per crossing) when
	// the membership sinks under it while non-empty.
	MergeBelow int
	// OnSplit receives the deterministic migration set (the upper half
	// of the sorted member IDs, child ACs excluded) when SplitAbove is
	// crossed. Called from its own goroutine, so it may call back into
	// the controller (Prevouch on a sibling, Reassign here).
	OnSplit func(migrate []string)
	// OnMerge fires when MergeBelow is crossed; same goroutine contract.
	OnMerge func()
	// Batching enables §III-E aggregation of join/leave events.
	Batching bool
	// TreeArity sets the auxiliary-key tree fan-out (0 = paper's 4).
	TreeArity int
	// Suite names the cipher suite sealing this area's key-tree
	// ciphertexts and data-key hops ("" = "legacy"). Joining members
	// advertise a suite mask; a member that cannot speak the area's
	// suite is denied at join/rejoin rather than handed frames it would
	// garble.
	Suite string
	// Policy selects rejoin behaviour under partition; zero means
	// DenyOnPartition.
	Policy PartitionPolicy
	// SkipRejoinVerify omits rejoin steps 4-5 entirely — the §IV-B
	// option-2 variant whose latency §V-D reports as 0.28s vs 0.4s.
	SkipRejoinVerify bool
	// Timing. Zero values take the defaults above.
	TIdle          time.Duration
	TActive        time.Duration
	RekeyInterval  time.Duration
	VerifyTimeout  time.Duration
	ReplayWindow   time.Duration
	TicketValidity time.Duration
	// HeartbeatEvery spaces replica heartbeats; zero means TIdle.
	HeartbeatEvery time.Duration
	// FreshnessInterval forces an area-key rotation when this long has
	// passed since the last rekey even with no membership events —
	// §III-E's second rekeying condition ("preserves the freshness of
	// the area key"). Zero disables unconditional rotation.
	FreshnessInterval time.Duration
	// DataWorkers sizes the data-plane worker pool that fans per-packet
	// re-encryption and per-member rekey/welcome crypto out across cores;
	// zero means runtime.GOMAXPROCS(0). The control plane (protocol
	// state) stays single-threaded regardless.
	DataWorkers int
	// Journal, if set, makes the controller durable: every state
	// mutation is appended as a record and periodically snapshotted, and
	// NewFromJournal rebuilds the identical controller after a crash.
	Journal *journal.Journal
	// SnapshotEvery spaces journal snapshots in records; zero means
	// DefaultSnapshotEvery. Only meaningful with Journal set.
	SnapshotEvery int
	// Observer, if set, receives structured protocol trace events
	// (handshake steps, rekeys, reseals, alive rounds, re-parenting).
	Observer obs.Sink
	// Logf, if set, receives debug logging.
	Logf func(format string, args ...any)
}

func (cfg *Config) fillDefaults() error {
	if cfg.ID == "" || cfg.AreaID == "" || cfg.Transport == nil || cfg.Keys == nil {
		return fmt.Errorf("area: ID, AreaID, Transport, and Keys are required")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Policy == 0 {
		cfg.Policy = DenyOnPartition
	}
	if cfg.TIdle == 0 {
		cfg.TIdle = DefaultTIdle
	}
	if cfg.TActive == 0 {
		cfg.TActive = DefaultTActive
	}
	if cfg.RekeyInterval == 0 {
		cfg.RekeyInterval = DefaultRekeyInterval
	}
	if cfg.VerifyTimeout == 0 {
		cfg.VerifyTimeout = DefaultVerifyTimeout
	}
	if cfg.ReplayWindow == 0 {
		cfg.ReplayWindow = DefaultReplayWindow
	}
	if cfg.TicketValidity == 0 {
		cfg.TicketValidity = DefaultTicketValidity
	}
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = cfg.TIdle
	}
	if len(cfg.Replicas) == 0 && cfg.Backup != nil {
		cfg.Replicas = []PeerInfo{*cfg.Backup}
	}
	for _, r := range cfg.Replicas {
		if r.ID == "" || r.Addr == "" || r.Pub.IsZero() {
			return fmt.Errorf("area: replica %q needs ID, Addr, and Pub", r.ID)
		}
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = DefaultSnapshotEvery
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return nil
}

// memberEntry is the controller's record of one area member.
type memberEntry struct {
	id         string
	addr       string
	pubDER     []byte
	pub        crypt.PublicKey
	lastSeen   time.Time
	ticketBlob []byte
	isChildAC  bool
}

// joinSession is a pending referral: step 4 arrived, step 6 awaited.
type joinSession struct {
	nonceAC   uint64
	clientID  string
	duration  time.Duration
	created   time.Time
	clientDER []byte
	clientPub crypt.PublicKey
}

// rejoinSession tracks one rejoin handshake at the new controller.
type rejoinSession struct {
	clientID   string
	clientAddr string
	clientPub  crypt.PublicKey
	clientDER  []byte
	nonceBC    uint64
	tk         *ticket.Ticket
	tkBlob     []byte
	// authenticated flips after step 3's challenge response verifies.
	authenticated bool
	// awaitingVerify is set while steps 4-5 are in flight to the old AC.
	awaitingVerify bool
	verifyDeadline time.Time
	created        time.Time
}

// parentState is the controller's membership in its parent area.
type parentState struct {
	info   PeerInfo
	areaID string
	view   *keytree.MemberView
	// suite is the parent area's negotiated cipher suite: it opens
	// parent-relayed EncKeys and seals up-forwarded ones.
	suite    crypt.Suite
	lastRecv time.Time
	lastSent time.Time
}

// Controller is one Mykil area controller. All state is owned by the run
// loop; external accessors go through the command channel.
type Controller struct {
	cfg Config
	clk clock.Clock
	// suite is cfg.Suite resolved; it seals key-tree ciphertexts,
	// welcomes' tickets stay legacy (K_shared interop), and data-key
	// hops within the area.
	suite crypt.Suite

	tree    *keytree.Tree
	members map[string]*memberEntry

	joinSessions   map[string]*joinSession
	rejoinSessions map[string]*rejoinSession
	parkedStep6    map[string]*parkedJoin

	// Batching state (§III-E).
	pendingJoins  []pendingAdmission
	pendingLeaves []string
	updateNeeded  bool
	lastRekey     time.Time

	parent *parentState
	// reparenting holds the candidate being tried, empty when not
	// re-parenting.
	reparentTarget   string
	reparentDeadline time.Time
	orphanRetryAt    time.Time

	lastAreaSend time.Time

	// areaKeyHistory holds recently rotated-out area keys (newest
	// first). Data sealed under a key a sender had not yet replaced is
	// recovered and re-sealed to the current key instead of dropped.
	areaKeyHistory []crypt.SymKey

	// Data dedup: highest sequence seen per origin.
	seenSeq map[string]uint64

	// Replication.
	stateSeq      uint64
	lastSyncSeq   uint64
	backupDirty   bool
	lastHeartbeat time.Time

	// Dynamic topology: members vouched-for ahead of a migration rejoin
	// (steps 4-5 skipped once), and the watermark edge latches. The merge
	// latch starts fired: a controller born under the low watermark (a
	// split sibling whose migrants are still in flight) must first climb
	// to MergeBelow before a later dip can retire it.
	prevouched map[string]bool
	splitFired bool
	mergeFired bool

	// Durability: the seeded key generator active during a journaled
	// rekey (live or replayed), and the snapshot cadence counter.
	detKG         replayKeyGen
	recsSinceSnap int

	metrics *obs.Registry
	trace   *obs.Tracer

	// Typed handles into metrics, registered at construction.
	cJoins         *obs.Counter
	cRejoins       *obs.Counter
	cLeaves        *obs.Counter
	cEvictions     *obs.Counter
	cRekeys        *obs.Counter
	cRekeyEntries  *obs.Counter
	cDataRelayed   *obs.Counter
	cDataForwarded *obs.Counter
	cRejoinDenied  *obs.Counter
	cVerifyReqs    *obs.Counter
	cAreaSplits    *obs.Counter
	cReplBytes     *obs.Counter
	hRekeySeconds  *obs.Histogram

	// Control plane: the event loop that owns all state above.
	loop *node.Loop
	// Data plane: bounded workers for packet re-encryption and rekey
	// crypto, with an ordered pipeline sequencing sends back to the wire.
	pool      *node.Pool
	dp        *node.Pipeline[[]outbound]
	closeOnce sync.Once
}

// Counter names in a controller's stats registry.
const (
	StatJoins         = "ac.joins"          // members admitted via the join protocol
	StatRejoins       = "ac.rejoins"        // members admitted via tickets
	StatLeaves        = "ac.leaves"         // voluntary departures processed
	StatEvictions     = "ac.evictions"      // silent members terminated (§IV-A)
	StatRekeys        = "ac.rekeys"         // rekey operations performed
	StatRekeyEntries  = "ac.rekey.entries"  // encrypted keys across all rekeys
	StatDataRelayed   = "ac.data.relayed"   // data frames relayed within the area
	StatDataForwarded = "ac.data.forwarded" // data frames forwarded to the parent
	StatRejoinDenied  = "ac.rejoin.denied"  // rejoins refused
	StatVerifyReqs    = "ac.verify.reqs"    // §IV-B steps 4-5 checks answered
)

// pendingAdmission is a join or rejoin waiting for the next batch flush.
type pendingAdmission struct {
	entry   *memberEntry
	rejoin  bool
	nonceCA uint64 // join protocol: NonceCA to echo +1 in step 7
}

// New builds a controller. Call Start to begin serving.
func New(cfg Config) (*Controller, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	suite, err := crypt.SuiteByName(cfg.Suite)
	if err != nil {
		return nil, fmt.Errorf("area: %w", err)
	}
	c := &Controller{
		cfg:            cfg,
		clk:            cfg.Clock,
		suite:          suite,
		members:        make(map[string]*memberEntry),
		joinSessions:   make(map[string]*joinSession),
		rejoinSessions: make(map[string]*rejoinSession),
		parkedStep6:    make(map[string]*parkedJoin),
		seenSeq:        make(map[string]uint64),
		prevouched:     make(map[string]bool),
		mergeFired:     true,
		metrics:        obs.NewRegistry(obs.L("node", cfg.ID)),
	}
	c.trace = obs.NewTracer(cfg.ID, cfg.Clock, cfg.Observer)
	c.cJoins = c.metrics.Counter(StatJoins, "Members admitted via the 7-step join protocol.")
	c.cRejoins = c.metrics.Counter(StatRejoins, "Members admitted via ticket rejoin.")
	c.cLeaves = c.metrics.Counter(StatLeaves, "Voluntary departures processed.")
	c.cEvictions = c.metrics.Counter(StatEvictions, "Silent members terminated (T_idle policy).")
	c.cRekeys = c.metrics.Counter(StatRekeys, "Rekey operations performed.")
	c.cRekeyEntries = c.metrics.Counter(StatRekeyEntries, "Encrypted key entries across all rekeys.")
	c.cDataRelayed = c.metrics.Counter(StatDataRelayed, "Data frames relayed within the area.")
	c.cDataForwarded = c.metrics.Counter(StatDataForwarded, "Data frames forwarded to the parent area.")
	c.cRejoinDenied = c.metrics.Counter(StatRejoinDenied, "Rejoins refused.")
	c.cVerifyReqs = c.metrics.Counter(StatVerifyReqs, "Anti-cohort verification checks answered.")
	c.cAreaSplits = c.metrics.Counter(obs.MetricAreaSplits, obs.HelpAreaSplits)
	c.cReplBytes = c.metrics.Counter(obs.MetricReplBytes, obs.HelpReplBytes)
	c.hRekeySeconds = c.metrics.Histogram(obs.MetricRekeySeconds, obs.HelpRekeySeconds, nil)
	c.pool = node.NewPool(cfg.DataWorkers)
	c.dp = node.NewPipeline(c.pool, 0, c.deliver)
	c.tree = keytree.New(c.treeConfig())
	c.loop = node.New(node.Config{
		Name:          cfg.ID,
		Transport:     cfg.Transport,
		Clock:         c.clk,
		TickEvery:     c.minTick(),
		OnFrame:       c.handleFrame,
		OnTick:        c.housekeeping,
		Stats:         c.metrics,
		CommandBuffer: 64,
		Logf:          cfg.Logf,
	})
	now := c.clk.Now()
	c.lastAreaSend = now
	c.lastRekey = now
	return c, nil
}

// suiteSupported reports whether a peer advertising the given suite
// bitmask can speak this area's configured suite. A zero mask means a
// pre-negotiation peer that only speaks legacy.
func (c *Controller) suiteSupported(mask uint64) bool {
	return crypt.NormalizeSuiteMask(mask)&c.suite.ID().Mask() != 0
}

// Start launches the controller loop and, if a parent is configured,
// initiates the area join toward it. A controller restored with a live
// parent link (NewFromJournal replayed a recParentSet) skips the request:
// it is already a member of the parent area under the same identity.
func (c *Controller) Start() {
	c.loop.Start()
	if c.cfg.Parent != nil {
		parent := *c.cfg.Parent
		c.enqueue(func() {
			if c.parent == nil {
				c.requestParent(parent)
			}
		})
	}
}

// Close stops the controller loop, then drains and stops the data plane.
// The transport is the caller's to close.
func (c *Controller) Close() {
	c.loop.Close()
	c.closeOnce.Do(func() {
		c.dp.Close()
		c.pool.Close()
	})
}

// enqueue hands fn to the run loop. Commands lost because the controller
// has stopped are counted under node.StatDrops and logged.
func (c *Controller) enqueue(fn func()) {
	_ = c.loop.Enqueue(fn)
}

// call runs fn on the loop and waits for completion.
func (c *Controller) call(fn func()) error {
	if err := c.loop.Call(fn); err != nil {
		return ErrStopped
	}
	return nil
}

// NumMembers reports the current area membership count.
func (c *Controller) NumMembers() int {
	var n int
	if err := c.call(func() { n = c.tree.NumMembers() }); err != nil {
		return 0
	}
	return n
}

// Epoch reports the current key epoch of the area.
func (c *Controller) Epoch() uint64 {
	var e uint64
	if err := c.call(func() { e = c.tree.Epoch() }); err != nil {
		return 0
	}
	return e
}

// TreeNodes reports the auxiliary key tree's node count — the
// controller-side storage figure of §V-A.
func (c *Controller) TreeNodes() int {
	var n int
	if err := c.call(func() { n = c.tree.NumNodes() }); err != nil {
		return 0
	}
	return n
}

// ParentID reports the current parent controller ID ("" when the area is
// the root or orphaned).
func (c *Controller) ParentID() string {
	var id string
	if err := c.call(func() {
		if c.parent != nil {
			id = c.parent.info.ID
		}
	}); err != nil {
		return ""
	}
	return id
}

// HasMember reports whether the given client is currently in the area.
func (c *Controller) HasMember(id string) bool {
	var ok bool
	if err := c.call(func() { _, ok = c.members[id] }); err != nil {
		return false
	}
	return ok
}

// FlushBatch forces an immediate rekey flush of pending join/leave events.
func (c *Controller) FlushBatch() {
	_ = c.call(func() { c.flush() })
}

// PendingEvents reports how many join/leave events await the next flush.
func (c *Controller) PendingEvents() int {
	var n int
	_ = c.call(func() { n = len(c.pendingJoins) + len(c.pendingLeaves) })
	return n
}

// Stats exposes the controller's operation counters (concurrency-safe).
// Besides the ac.* protocol counters it carries the node.* loop counters,
// including node.drops: commands lost because the controller had stopped.
func (c *Controller) Stats() *obs.Registry { return c.metrics }

// minTick picks the housekeeping granularity: fine enough to honor the
// shortest configured period.
func (c *Controller) minTick() time.Duration {
	d := c.cfg.TIdle
	if c.cfg.HeartbeatEvery < d {
		d = c.cfg.HeartbeatEvery
	}
	if d > time.Second {
		return d / 2
	}
	return d
}

func (c *Controller) handleFrame(f *wire.Frame) {
	switch f.Kind {
	case wire.KindJoinRefer:
		c.handleJoinRefer(f)
	case wire.KindJoinToAC:
		c.handleJoinToAC(f)
	case wire.KindRejoinRequest:
		c.handleRejoinRequest(f)
	case wire.KindRejoinResponse:
		c.handleRejoinResponse(f)
	case wire.KindRejoinVerifyReq:
		c.handleRejoinVerifyReq(f)
	case wire.KindRejoinVerifyResp:
		c.handleRejoinVerifyResp(f)
	case wire.KindData:
		c.handleData(f)
	case wire.KindKeyUpdate:
		c.handleParentKeyUpdate(f)
	case wire.KindPathUpdate:
		c.handleParentPathUpdate(f)
	case wire.KindMemberAlive:
		c.handleMemberAlive(f)
	case wire.KindLeaveNotice:
		c.handleLeaveNotice(f)
	case wire.KindPathRequest:
		c.handlePathRequest(f)
	case wire.KindACAlive:
		c.handleACAlive(f)
	case wire.KindAreaJoinReq:
		c.handleAreaJoinReq(f)
	case wire.KindAreaJoinAck:
		c.handleAreaJoinAck(f)
	case wire.KindAreaJoinDenied:
		c.handleAreaJoinDenied(f)
	case wire.KindSegmentPull:
		c.handleSegmentPull(f)
	default:
		c.cfg.Logf("%s: ignoring frame kind %v from %s", c.cfg.ID, f.Kind, f.From)
	}
}

// housekeeping runs the periodic §IV-A and §III-E duties.
func (c *Controller) housekeeping() {
	now := c.clk.Now()

	// §IV-A: multicast an alive message after an idle period.
	if now.Sub(c.lastAreaSend) >= c.cfg.TIdle && c.tree.NumMembers() > 0 {
		c.multicastAlive()
	}

	// §IV-A: evict members silent for 5×T_active.
	c.evictSilentMembers(now)

	// §III-E: rekey if the interval elapsed with a pending batch.
	if c.updateNeeded && now.Sub(c.lastRekey) >= c.cfg.RekeyInterval {
		c.flush()
	}

	// §III-E condition 2: rotate the area key unconditionally when the
	// freshness interval elapses.
	if c.cfg.FreshnessInterval > 0 && now.Sub(c.lastRekey) >= c.cfg.FreshnessInterval &&
		c.tree.NumMembers() > 0 {
		c.freshnessRekey()
	}

	// Expire stale handshake sessions and verify timeouts.
	c.expireSessions(now)

	// §IV-A: send an alive to the parent if we have been quiet, and
	// detect parent silence.
	c.parentHousekeeping(now)

	// §IV-C: replica heartbeat and state sync.
	c.replicaHousekeeping(now)

	// Dynamic topology: fire split/merge watermark callbacks.
	c.topologyHousekeeping()
}

// send transmits a frame, logging failures; protocol recovery happens via
// timeouts, not send errors.
func (c *Controller) send(addr string, f *wire.Frame) {
	if err := c.cfg.Transport.Send(addr, f); err != nil {
		c.cfg.Logf("%s: send %v to %s: %v", c.cfg.ID, f.Kind, addr, err)
	}
}

// sendSealed seals body to a recipient key and sends, optionally signing.
func (c *Controller) sendSealed(addr string, to crypt.PublicKey, kind wire.Kind, body wire.Marshaler, sign bool) {
	switch kind {
	case wire.KindRejoinDenied:
		c.cRejoinDenied.Inc()
	case wire.KindRejoinVerifyResp:
		c.cVerifyReqs.Inc()
	default:
		// Only the rejoin kinds are counted; everything else passes
		// through unstatted.
	}
	blob, err := wire.SealBody(to, body)
	if err != nil {
		c.cfg.Logf("%s: sealing %v: %v", c.cfg.ID, kind, err)
		return
	}
	f := &wire.Frame{Kind: kind, From: c.cfg.Transport.Addr(), Body: blob}
	if sign {
		f.Sig = c.cfg.Keys.Sign(blob)
	}
	c.send(addr, f)
}

// sendPlain sends an unencrypted body, optionally signed.
func (c *Controller) sendPlain(addr string, kind wire.Kind, body wire.Marshaler, sign bool) {
	blob, err := wire.PlainBody(body)
	if err != nil {
		c.cfg.Logf("%s: encoding %v: %v", c.cfg.ID, kind, err)
		return
	}
	f := &wire.Frame{Kind: kind, From: c.cfg.Transport.Addr(), Body: blob}
	if sign {
		f.Sig = c.cfg.Keys.Sign(blob)
	}
	c.send(addr, f)
}

// directoryByID finds a controller's directory entry.
func (c *Controller) directoryByID(id string) (wire.ACInfo, bool) {
	for _, e := range c.cfg.Directory {
		if e.ID == id {
			return e, true
		}
	}
	return wire.ACInfo{}, false
}

// directoryByAddr finds a controller's directory entry by address.
func (c *Controller) directoryByAddr(addr string) (wire.ACInfo, bool) {
	for _, e := range c.cfg.Directory {
		if e.Addr == addr {
			return e, true
		}
	}
	return wire.ACInfo{}, false
}

// peerPub parses a directory entry's public key.
func peerPub(e wire.ACInfo) (crypt.PublicKey, error) {
	return crypt.ParsePublicKey(e.PubDER)
}
