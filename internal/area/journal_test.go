package area

import (
	"bytes"
	"testing"
	"time"

	"mykil/internal/journal"
	"mykil/internal/wire"
)

// TestJournalReplayDeterministic is the byte-level replay check: a
// controller journaling under FsyncPolicy=always admits members, sheds
// one, and crashes without a clean shutdown. Rebuilding from the journal
// must reproduce the exact replicated state — keytree node keys
// included, because each rekey's random seed is journaled and the tree
// re-derives keys in a pinned order. Epoch equality alone would not
// prove members can still decrypt; byte equality of the canonical state
// encoding does.
func TestJournalReplayDeterministic(t *testing.T) {
	dir := t.TempDir()
	j, rec, err := journal.Open(journal.Options{Dir: dir, Fsync: journal.FsyncAlways})
	if err != nil {
		t.Fatalf("journal.Open: %v", err)
	}
	if !rec.Empty() {
		t.Fatalf("fresh journal not empty: %+v", rec)
	}
	var cfgCopy Config
	r := newRig(t, func(c *Config) {
		c.Journal = j
		cfgCopy = *c
	})

	for _, id := range []string{"c1", "c2", "c3"} {
		r.join(id)
	}
	body, err := wire.PlainBody(wire.LeaveNotice{MemberID: "c2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.cli.Send("ac-0", &wire.Frame{Kind: wire.KindLeaveNotice, From: "cli", Body: body}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for r.ctrl.HasMember("c2") {
		if time.Now().After(deadline) {
			t.Fatal("member not removed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	var pre *State
	if err := r.ctrl.call(func() { pre = r.ctrl.exportState() }); err != nil {
		t.Fatalf("exportState: %v", err)
	}

	// Crash: stop the loop, abandon the journal descriptors un-synced.
	r.ctrl.Close()
	j.Abandon()

	j2, rec2, err := journal.Open(journal.Options{Dir: dir, Fsync: journal.FsyncAlways})
	if err != nil {
		t.Fatalf("reopening journal: %v", err)
	}
	defer func() { _ = j2.Close() }()
	cfg2 := cfgCopy
	cfg2.Journal = j2
	restored, err := NewFromJournal(cfg2, rec2)
	if err != nil {
		t.Fatalf("NewFromJournal: %v", err)
	}
	defer restored.Close()
	post := restored.BootState()

	// The backup-sync sequence number advances on a different cadence
	// than journal records; everything else must match to the byte.
	pre.Seq, post.Seq = 0, 0
	preBytes, err := EncodeState(pre)
	if err != nil {
		t.Fatalf("encoding pre-crash state: %v", err)
	}
	postBytes, err := EncodeState(post)
	if err != nil {
		t.Fatalf("encoding recovered state: %v", err)
	}
	if !bytes.Equal(preBytes, postBytes) {
		t.Fatalf("recovered state differs from pre-crash state:\npre:  %x\npost: %x", preBytes, postBytes)
	}
	if pre.Tree.Epoch != post.Tree.Epoch {
		t.Fatalf("epoch: pre %d, post %d", pre.Tree.Epoch, post.Tree.Epoch)
	}
}
