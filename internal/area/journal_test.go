package area

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mykil/internal/journal"
	"mykil/internal/wire"
)

// TestJournalReplayDeterministic is the byte-level replay check: a
// controller journaling under FsyncPolicy=always admits members, sheds
// one, and crashes without a clean shutdown. Rebuilding from the journal
// must reproduce the exact replicated state — keytree node keys
// included, because each rekey's random seed is journaled and the tree
// re-derives keys in a pinned order. Epoch equality alone would not
// prove members can still decrypt; byte equality of the canonical state
// encoding does.
func TestJournalReplayDeterministic(t *testing.T) {
	dir := t.TempDir()
	j, rec, err := journal.Open(journal.Options{Dir: dir, Fsync: journal.FsyncAlways})
	if err != nil {
		t.Fatalf("journal.Open: %v", err)
	}
	if !rec.Empty() {
		t.Fatalf("fresh journal not empty: %+v", rec)
	}
	var cfgCopy Config
	r := newRig(t, func(c *Config) {
		c.Journal = j
		cfgCopy = *c
	})

	for _, id := range []string{"c1", "c2", "c3"} {
		r.join(id)
	}
	body, err := wire.PlainBody(wire.LeaveNotice{MemberID: "c2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.cli.Send("ac-0", &wire.Frame{Kind: wire.KindLeaveNotice, From: "cli", Body: body}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for r.ctrl.HasMember("c2") {
		if time.Now().After(deadline) {
			t.Fatal("member not removed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	var pre *State
	if err := r.ctrl.call(func() { pre = r.ctrl.exportState() }); err != nil {
		t.Fatalf("exportState: %v", err)
	}

	// Crash: stop the loop, abandon the journal descriptors un-synced.
	r.ctrl.Close()
	j.Abandon()

	j2, rec2, err := journal.Open(journal.Options{Dir: dir, Fsync: journal.FsyncAlways})
	if err != nil {
		t.Fatalf("reopening journal: %v", err)
	}
	defer func() { _ = j2.Close() }()
	cfg2 := cfgCopy
	cfg2.Journal = j2
	restored, err := NewFromJournal(cfg2, rec2)
	if err != nil {
		t.Fatalf("NewFromJournal: %v", err)
	}
	defer restored.Close()
	post := restored.BootState()

	// The backup-sync sequence number advances on a different cadence
	// than journal records; everything else must match to the byte.
	pre.Seq, post.Seq = 0, 0
	preBytes, err := EncodeState(pre)
	if err != nil {
		t.Fatalf("encoding pre-crash state: %v", err)
	}
	postBytes, err := EncodeState(post)
	if err != nil {
		t.Fatalf("encoding recovered state: %v", err)
	}
	if !bytes.Equal(preBytes, postBytes) {
		t.Fatalf("recovered state differs from pre-crash state:\npre:  %x\npost: %x", preBytes, postBytes)
	}
	if pre.Tree.Epoch != post.Tree.Epoch {
		t.Fatalf("epoch: pre %d, post %d", pre.Tree.Epoch, post.Tree.Epoch)
	}
}

// TestCrashDuringSplitReplay kills the old controller at every possible
// byte of a torn journal tail while a split migration is in flight: six
// members join, the upper half is reassigned away, and the segment is
// then cut at EVERY offset. Recovery must never fail, must always yield
// a state replayed from a valid record prefix, and must be
// deterministic — two cuts recovering the same prefix produce
// byte-identical states, and the full-length cut converges on the exact
// pre-crash state, migration applied.
func TestCrashDuringSplitReplay(t *testing.T) {
	dir := t.TempDir()
	j, rec, err := journal.Open(journal.Options{Dir: dir, Fsync: journal.FsyncAlways})
	if err != nil {
		t.Fatalf("journal.Open: %v", err)
	}
	if !rec.Empty() {
		t.Fatalf("fresh journal not empty: %+v", rec)
	}
	var cfgCopy Config
	r := newRig(t, func(c *Config) {
		c.Journal = j
		cfgCopy = *c
	})

	ids := []string{"c1", "c2", "c3", "c4", "c5", "c6"}
	for _, id := range ids {
		r.join(id)
	}
	// Mid-split crash point: the reassignment batch (the journaled
	// removal of the migrating upper half) is the last thing written.
	target := PeerInfo{ID: "ac-peer", Addr: "ac-peer", Pub: r.peerKeys.Public()}
	moved, err := r.ctrl.Reassign([]string{"c4", "c5", "c6"}, target, "split")
	if err != nil {
		t.Fatalf("Reassign: %v", err)
	}
	if moved != 3 {
		t.Fatalf("reassigned %d members, want 3", moved)
	}

	var pre *State
	if err := r.ctrl.call(func() { pre = r.ctrl.exportState() }); err != nil {
		t.Fatalf("exportState: %v", err)
	}
	pre.Seq = 0
	preBytes, err := EncodeState(pre)
	if err != nil {
		t.Fatalf("encoding pre-crash state: %v", err)
	}

	// Crash without a clean shutdown.
	r.ctrl.Close()
	j.Abandon()

	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want 1 segment, got %v (%v)", segs, err)
	}
	full, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	segBase := filepath.Base(segs[0])

	// stateByPrefix pins determinism across the sweep: every cut that
	// recovers the same record prefix must replay to the same bytes. The
	// zero-record prefix is exempt — with nothing journaled, recovery is
	// a fresh boot whose initial key material is random, and no member
	// holds keys that replay would need to reproduce.
	stateByPrefix := map[int][]byte{}
	maxPrefix := -1
	for cut := 0; cut <= len(full); cut++ {
		cutDir := filepath.Join(t.TempDir(), fmt.Sprintf("cut-%d", cut))
		if err := os.MkdirAll(cutDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(cutDir, segBase), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, rec2, err := journal.Open(journal.Options{Dir: cutDir, Fsync: journal.FsyncAlways, Logf: func(string, ...any) {}})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		cfg2 := cfgCopy
		cfg2.Journal = j2
		restored, err := NewFromJournal(cfg2, rec2)
		if err != nil {
			t.Fatalf("cut=%d: NewFromJournal after %d records: %v", cut, len(rec2.Records), err)
		}
		st := restored.BootState()
		st.Seq = 0
		stBytes, err := EncodeState(st)
		if err != nil {
			t.Fatalf("cut=%d: encoding recovered state: %v", cut, err)
		}
		if n := len(rec2.Records); n > 0 {
			if prev, ok := stateByPrefix[n]; ok {
				if !bytes.Equal(prev, stBytes) {
					t.Fatalf("cut=%d: replay of a %d-record prefix diverged from an earlier replay of the same prefix", cut, n)
				}
			} else {
				stateByPrefix[n] = stBytes
			}
			if n > maxPrefix {
				maxPrefix = n
			}
		}
		restored.Close()
		_ = j2.Close()
	}

	// The untorn journal must converge on the pre-crash state: the three
	// migrants gone, the three stayers keyed exactly as before the kill.
	if maxPrefix < 1 {
		t.Fatal("cut sweep never recovered a non-empty prefix")
	}
	if !bytes.Equal(stateByPrefix[maxPrefix], preBytes) {
		t.Fatalf("full-journal replay does not match the pre-crash state")
	}
}
