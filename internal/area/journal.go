package area

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"

	"mykil/internal/crypt"
	"mykil/internal/intern"
	"mykil/internal/journal"
	"mykil/internal/keytree"
	"mykil/internal/wire/codec"
)

// This file is the controller's durability layer: every state mutation the
// command loop performs is journaled as one compact record, and recovery
// replays those records over the newest snapshot to rebuild the identical
// controller — same member set, same ticket blobs, and (critically) the
// same tree KEYS, so surviving members keep decrypting rekeys after a
// restart with zero rejoins.
//
// Key determinism: tree keys are random, so a naive replay would draw
// different keys than the live run and strand every member. Instead, each
// rekey operation journals a random 32-byte subseed; keys for that
// operation are derived as SHA-256(subseed ‖ counter), and keytree draws
// them in a deterministic order (joins in slice order, splits child-by-
// child, changed nodes in sorted ID order). Replaying the record with the
// recorded subseed therefore regenerates byte-identical keys. Fresh
// subseeds keep live keys unpredictable; the journal file is as sensitive
// as the key material it implies and inherits the same trust boundary as
// the controller host.
//
// Write ordering: a record is appended AFTER the in-memory mutation
// succeeds but BEFORE any frame goes to members. A crash before the
// append loses a mutation no member observed (the joiner's handshake
// times out and retries); a crash after it restores state the members
// already act on.

// Journal record kinds. One byte leads every record.
const (
	// recBatch covers every membership rekey: joins, rejoins, leaves,
	// evictions, and child-AC adoptions (tree.Join ≡ Batch of one).
	recBatch byte = 1
	// recFreshness is a §III-E condition-2 area-key rotation.
	recFreshness byte = 2
	// recParentSet records the parent link and our current member view of
	// the parent area (set on adoption, refreshed on parent rekeys).
	recParentSet byte = 3
	// recParentClear records losing the parent (silence or failover).
	recParentClear byte = 4
	// recTouch refreshes one member's address/ticket in place (the
	// own-area rejoin fast path, which rekeys nothing).
	recTouch byte = 5
)

// rekeySeedLen is the journaled per-operation subseed length.
const rekeySeedLen = 32

// DefaultSnapshotEvery is the record cadence between journal snapshots.
const DefaultSnapshotEvery = 256

// replayKeyGen derives tree keys from a journaled subseed. While armed,
// draw i yields SHA-256(seed ‖ LE64(i)) truncated to the symmetric key
// length; disarmed, the controller falls back to crypt.NewSymKey.
type replayKeyGen struct {
	armed bool
	seed  [rekeySeedLen]byte
	ctr   uint64
}

func (g *replayKeyGen) arm(seed [rekeySeedLen]byte) {
	g.armed, g.seed, g.ctr = true, seed, 0
}

func (g *replayKeyGen) disarm() { g.armed = false }

func (g *replayKeyGen) next() crypt.SymKey {
	var buf [rekeySeedLen + 8]byte
	copy(buf[:rekeySeedLen], g.seed[:])
	binary.LittleEndian.PutUint64(buf[rekeySeedLen:], g.ctr)
	g.ctr++
	sum := sha256.Sum256(buf[:])
	var k crypt.SymKey
	copy(k[:], sum[:crypt.SymKeyLen])
	return k
}

// treeKeyGen is the KeyGen every controller tree uses: seeded while a
// journaled rekey (live or replayed) is in progress, random otherwise.
func (c *Controller) treeKeyGen() crypt.SymKey {
	if c.detKG.armed {
		return c.detKG.next()
	}
	return crypt.NewSymKey()
}

// treeConfig centralizes the keytree configuration so New and the two
// restore paths (replica state, journal) build identically-behaving trees.
func (c *Controller) treeConfig() keytree.Config {
	return keytree.Config{
		Arity:     c.cfg.TreeArity,
		KeyGen:    c.treeKeyGen,
		Parallel:  c.treeParallel,
		Encryptor: keytree.NewSuiteEncryptor(c.suite),
		// The controller consumes each BatchResult synchronously (the
		// update is wire-encoded inside applyBatch before any further
		// tree operation), so the zero-alloc scratch-reusing path is safe.
		ReuseUpdates: true,
	}
}

// armRekeySeed draws and arms a fresh subseed for one rekey operation
// when journaling is on. Runs on the loop; the caller must disarm after
// the tree operation completes.
func (c *Controller) armRekeySeed() (seed [rekeySeedLen]byte) {
	if c.cfg.Journal == nil {
		return
	}
	if _, err := io.ReadFull(rand.Reader, seed[:]); err != nil {
		panic(fmt.Sprintf("area: reading randomness: %v", err))
	}
	c.detKG.arm(seed)
	return seed
}

// journalAppend writes one record and snapshots at the configured
// cadence. An append failure is loud but non-fatal: the controller keeps
// serving (availability over durability), and the error marks the journal
// suspect in the log.
func (c *Controller) journalAppend(payload []byte) {
	if c.cfg.Journal == nil {
		return
	}
	if _, err := c.cfg.Journal.Append(payload); err != nil {
		c.cfg.Logf("%s: JOURNAL APPEND FAILED (restart durability degraded): %v", c.cfg.ID, err)
		return
	}
	c.recsSinceSnap++
	if c.recsSinceSnap >= c.cfg.SnapshotEvery {
		c.journalSnapshot()
	}
}

// journalSnapshot writes the full controller state as a journal snapshot,
// letting older segments compact away.
func (c *Controller) journalSnapshot() {
	if c.cfg.Journal == nil {
		return
	}
	blob, err := EncodeState(c.exportState())
	if err != nil {
		c.cfg.Logf("%s: encoding journal snapshot: %v", c.cfg.ID, err)
		return
	}
	if err := c.cfg.Journal.Snapshot(blob); err != nil {
		c.cfg.Logf("%s: writing journal snapshot: %v", c.cfg.ID, err)
		return
	}
	c.recsSinceSnap = 0
}

// journalBatch records one membership rekey (the applyBatch and child-AC
// adoption paths).
func (c *Controller) journalBatch(seed [rekeySeedLen]byte, joins []pendingAdmission, leaves []string) {
	if c.cfg.Journal == nil {
		return
	}
	b := []byte{recBatch}
	b = codec.AppendRaw(b, seed[:])
	b = codec.AppendUvarint(b, uint64(len(joins)))
	for _, p := range joins {
		b = codec.AppendString(b, p.entry.id)
		b = codec.AppendString(b, p.entry.addr)
		b = codec.AppendBytes(b, p.entry.pubDER)
		b = codec.AppendBytes(b, p.entry.ticketBlob)
		b = codec.AppendBool(b, p.entry.isChildAC)
		b = codec.AppendBool(b, p.rejoin)
	}
	b = codec.AppendUvarint(b, uint64(len(leaves)))
	for _, id := range leaves {
		b = codec.AppendString(b, id)
	}
	c.journalAppend(b)
}

// journalFreshness records a no-membership area-key rotation.
func (c *Controller) journalFreshness(seed [rekeySeedLen]byte) {
	if c.cfg.Journal == nil {
		return
	}
	b := []byte{recFreshness}
	b = codec.AppendRaw(b, seed[:])
	c.journalAppend(b)
}

// journalParentSet records the current parent link and view. Called on
// adoption and whenever the view's key material changes (parent rekeys
// and rebases), so a restart resumes with the freshest parent-area keys
// it held.
func (c *Controller) journalParentSet() {
	if c.cfg.Journal == nil || c.parent == nil {
		return
	}
	pse := ParentStateExport{
		ID:     c.parent.info.ID,
		Addr:   c.parent.info.Addr,
		PubDER: c.parent.info.Pub.Marshal(),
		AreaID: c.parent.areaID,
		Path:   c.parent.view.PathKeys(),
		Epoch:  c.parent.view.Epoch(),
	}
	c.journalAppend(pse.AppendWire([]byte{recParentSet}))
}

// journalParentClear records the loss of the parent link.
func (c *Controller) journalParentClear() {
	if c.cfg.Journal == nil {
		return
	}
	c.journalAppend([]byte{recParentClear})
}

// journalTouch records an in-place member refresh (address and ticket).
func (c *Controller) journalTouch(e *memberEntry) {
	if c.cfg.Journal == nil {
		return
	}
	b := []byte{recTouch}
	b = codec.AppendString(b, e.id)
	b = codec.AppendString(b, e.addr)
	b = codec.AppendBytes(b, e.ticketBlob)
	c.journalAppend(b)
}

// NewFromJournal builds a controller from a journal recovery: decode the
// snapshot (if any) into a state restore, then replay the record tail.
// The result is ready for Start; it serves the identical member set and
// keytree — epoch and keys included — that the crashed controller last
// journaled, so members notice nothing beyond the outage itself.
func NewFromJournal(cfg Config, rec *journal.Recovery) (*Controller, error) {
	var c *Controller
	var err error
	if rec != nil && rec.Snapshot != nil {
		st, derr := DecodeState(rec.Snapshot)
		if derr != nil {
			return nil, fmt.Errorf("area: journal snapshot: %w", derr)
		}
		c, err = NewFromState(cfg, st)
	} else {
		c, err = New(cfg)
	}
	if err != nil {
		return nil, err
	}
	if rec != nil {
		for i, p := range rec.Records {
			if err := c.replayRecord(p); err != nil {
				c.Close()
				return nil, fmt.Errorf("area: replaying journal record %d/%d: %w", i+1, len(rec.Records), err)
			}
		}
	}
	// The on-disk state is already current; restart the snapshot cadence.
	c.recsSinceSnap = 0
	c.reconcileDirectory()
	return c, nil
}

// reconcileDirectory refreshes recovered controller-peer endpoints —
// the parent and child-AC member entries — from the boot-time
// directory. The journal captures where peers lived when the record was
// written; after a whole-deployment restart those controllers may be
// back on new addresses (and, in deployments that do not persist key
// pairs, new keys), while the directory handed to this boot is current
// truth. A no-op when identities are stable across the restart. Regular
// members are not in the directory; their stale entries age out through
// the §IV-A silence eviction.
func (c *Controller) reconcileDirectory() {
	for id, e := range c.members {
		if !e.isChildAC {
			continue
		}
		info, ok := c.directoryByID(id)
		if !ok {
			continue
		}
		pub, err := peerPub(info)
		if err != nil {
			continue
		}
		e.addr = info.Addr
		e.pubDER = info.PubDER
		e.pub = pub
	}
	if c.parent == nil {
		return
	}
	info, ok := c.directoryByID(c.parent.info.ID)
	if !ok {
		return
	}
	pub, err := peerPub(info)
	if err != nil {
		return
	}
	c.parent.info.Addr = info.Addr
	c.parent.info.Pub = pub
}

// replayRecord applies one journal record to a freshly restored
// controller. Replay mutates state only — no frames are sent; members
// already hold the results of these operations.
func (c *Controller) replayRecord(p []byte) error {
	r := codec.NewReader(p)
	switch kind := r.Byte(); kind {
	case recBatch:
		var seed [rekeySeedLen]byte
		copy(seed[:], r.Raw(rekeySeedLen))
		// Minimum encoded join: four empty length prefixes + two bools.
		n := r.Count(6)
		joins := make([]pendingAdmission, 0, n)
		now := c.clk.Now()
		for i := 0; i < n; i++ {
			e := &memberEntry{
				id:         intern.ID(r.String()),
				addr:       intern.ID(r.String()),
				pubDER:     intern.DER(r.Bytes()),
				ticketBlob: r.Bytes(),
				isChildAC:  r.Bool(),
				lastSeen:   now,
			}
			rejoin := r.Bool()
			if r.Err() != nil {
				return r.Err()
			}
			pub, err := crypt.ParsePublicKey(e.pubDER)
			if err != nil {
				return fmt.Errorf("member %s key: %w", e.id, err)
			}
			e.pub = pub
			joins = append(joins, pendingAdmission{entry: e, rejoin: rejoin})
		}
		ln := r.Count(1)
		leaves := make([]string, ln)
		for i := range leaves {
			leaves[i] = r.String()
		}
		if err := r.Finish(); err != nil {
			return err
		}
		joinIDs := make([]keytree.MemberID, len(joins))
		for i, p := range joins {
			joinIDs[i] = keytree.MemberID(p.entry.id)
		}
		leaveIDs := make([]keytree.MemberID, len(leaves))
		for i, id := range leaves {
			leaveIDs[i] = keytree.MemberID(id)
		}
		c.detKG.arm(seed)
		_, err := c.tree.Batch(joinIDs, leaveIDs)
		c.detKG.disarm()
		if err != nil {
			return err
		}
		for _, id := range leaves {
			delete(c.members, id)
		}
		for _, p := range joins {
			c.members[p.entry.id] = p.entry
		}
	case recFreshness:
		var seed [rekeySeedLen]byte
		copy(seed[:], r.Raw(rekeySeedLen))
		if err := r.Finish(); err != nil {
			return err
		}
		c.detKG.arm(seed)
		c.tree.RefreshAreaKey()
		c.detKG.disarm()
	case recParentSet:
		var pse ParentStateExport
		if err := pse.ReadWire(r); err != nil {
			return err
		}
		if err := r.Finish(); err != nil {
			return err
		}
		pub, err := crypt.ParsePublicKey(pse.PubDER)
		if err != nil {
			return fmt.Errorf("parent key: %w", err)
		}
		now := c.clk.Now()
		// The parent-set record predates per-link suite bytes; restored
		// links assume the uniform-deployment suite (our own) until the
		// next AreaJoinAck re-negotiates.
		c.parent = &parentState{
			info:     PeerInfo{ID: pse.ID, Addr: pse.Addr, Pub: pub},
			areaID:   pse.AreaID,
			view:     keytree.NewMemberView(pse.Path, pse.Epoch, keytree.NewSuiteEncryptor(c.suite)),
			suite:    c.suite,
			lastRecv: now,
			lastSent: now,
		}
	case recParentClear:
		if err := r.Finish(); err != nil {
			return err
		}
		c.parent = nil
	case recTouch:
		id := r.String()
		addr := r.String()
		blob := r.Bytes()
		if err := r.Finish(); err != nil {
			return err
		}
		if e, ok := c.members[id]; ok {
			e.addr = addr
			e.ticketBlob = blob
			e.lastSeen = c.clk.Now()
		}
	default:
		return fmt.Errorf("unknown record kind %d", kind)
	}
	c.stateSeq++
	return nil
}
