package area

import (
	"time"

	"mykil/internal/crypt"
	"mykil/internal/intern"
	"mykil/internal/keytree"
	"mykil/internal/obs"
	"mykil/internal/wire"
)

// requestParent sends an area-join request to a candidate parent
// controller (§IV-C): {identity; ts; MAC}_Pub_parent, signed.
func (c *Controller) requestParent(candidate PeerInfo) {
	c.reparentTarget = candidate.ID
	c.reparentDeadline = c.clk.Now().Add(c.cfg.VerifyTimeout)
	c.trace.Event(obs.ProtoReparent, candidate.ID, "AreaJoinReq")
	c.sendSealed(candidate.Addr, candidate.Pub, wire.KindAreaJoinReq, wire.AreaJoinReq{
		ACID:      c.cfg.ID,
		ACAddr:    c.cfg.Transport.Addr(),
		AreaID:    c.cfg.AreaID,
		Timestamp: c.clk.Now(),
		// A controller links code for every registered suite, so it can
		// join a parent running any of them.
		SuiteMask: crypt.AllSuitesMask(),
	}, true)
}

// handleAreaJoinReq admits another controller's area as a child: the
// requesting controller becomes a regular member of our area.
func (c *Controller) handleAreaJoinReq(f *wire.Frame) {
	var req wire.AreaJoinReq
	// The request is sealed to our key and signed by the requester; we
	// must decrypt first to learn who signed, then verify.
	if err := wire.OpenBody(c.cfg.Keys, f.Body, &req); err != nil {
		c.cfg.Logf("%s: area-join request: %v", c.cfg.ID, err)
		return
	}
	entry, ok := c.directoryByID(req.ACID)
	if !ok {
		c.cfg.Logf("%s: area-join from unknown controller %q", c.cfg.ID, req.ACID)
		return
	}
	pub, err := peerPub(entry)
	if err != nil {
		return
	}
	if err := pub.Verify(f.Body, f.Sig); err != nil {
		c.cfg.Logf("%s: area-join from %s: bad signature", c.cfg.ID, req.ACID)
		return
	}
	if c.staleTimestamp(req.Timestamp) {
		c.cfg.Logf("%s: area-join from %s outside replay window", c.cfg.ID, req.ACID)
		return
	}
	if req.ACID == c.cfg.ID {
		return // refuse self-adoption
	}
	// Cycle prevention. Adopting our own parent would loop the tree
	// immediately; refuse.
	if c.parent != nil && c.parent.info.ID == req.ACID {
		c.sendSealed(req.ACAddr, pub, wire.KindAreaJoinDenied, wire.AreaJoinDenied{
			ACID: req.ACID, Reason: "requester is this area's parent",
		}, true)
		return
	}
	// Symmetric-orphan race: both of us are asking the other to become
	// our parent. Deterministic tie-break: the lower ID stays root and
	// adopts; the higher ID's request is denied.
	if c.reparentTarget == req.ACID {
		if c.cfg.ID < req.ACID {
			c.reparentTarget = "" // we adopt them instead
		} else {
			c.sendSealed(req.ACAddr, pub, wire.KindAreaJoinDenied, wire.AreaJoinDenied{
				ACID: req.ACID, Reason: "concurrent adoption; lower ID becomes the parent",
			}, true)
			return
		}
	}
	if _, already := c.members[req.ACID]; already {
		// Re-adoption after a transient failure: refresh its path.
		c.resendPath(req.ACID)
		return
	}
	if !c.suiteSupported(req.SuiteMask) {
		c.sendSealed(req.ACAddr, pub, wire.KindAreaJoinDenied, wire.AreaJoinDenied{
			ACID: req.ACID, Reason: "cipher suite not supported: area requires " + c.suite.Name(),
		}, true)
		return
	}

	seed := c.armRekeySeed()
	oldAreaKey := c.tree.AreaKey()
	res, err := c.tree.Join(keytree.MemberID(req.ACID))
	c.detKG.disarm()
	if err != nil {
		c.sendSealed(req.ACAddr, pub, wire.KindAreaJoinDenied, wire.AreaJoinDenied{
			ACID: req.ACID, Reason: err.Error(),
		}, true)
		return
	}
	c.rememberAreaKey(oldAreaKey)
	c.lastRekey = c.clk.Now()
	c.members[intern.ID(req.ACID)] = &memberEntry{
		id:        intern.ID(req.ACID),
		addr:      intern.ID(req.ACAddr),
		pubDER:    intern.DER(entry.PubDER),
		pub:       pub,
		lastSeen:  c.clk.Now(),
		isChildAC: true,
	}
	c.armMergeLatch()
	// tree.Join is Batch of one: journaled as a recBatch so replay takes
	// the identical code path.
	c.journalBatch(seed, []pendingAdmission{{entry: c.members[req.ACID]}}, nil)
	c.trace.Event(obs.ProtoReparent, req.ACID, "adopt-child",
		obs.String("child_area", req.AreaID), obs.Uint("epoch", uint64(res.Epoch)))
	c.sendSealed(req.ACAddr, pub, wire.KindAreaJoinAck, wire.AreaJoinAck{
		ParentID:     c.cfg.ID,
		ParentAreaID: c.cfg.AreaID,
		Path:         res.Joined[keytree.MemberID(req.ACID)],
		Epoch:        res.Epoch,
		Timestamp:    c.clk.Now(),
		Suite:        c.suite.ID(),
	}, true)
	c.multicastKeyUpdate(res, []pendingAdmission{{entry: c.members[req.ACID]}})
	c.sendDisplaced(res)
	c.markBackupDirty()
}

// sendDisplaced unicasts fresh paths produced by a tree operation.
func (c *Controller) sendDisplaced(res *keytree.BatchResult) {
	for m, path := range res.Displaced {
		entry, ok := c.members[string(m)]
		if !ok {
			continue
		}
		c.sendSealed(entry.addr, entry.pub, wire.KindPathUpdate, wire.PathUpdate{
			AreaID: c.cfg.AreaID,
			Epoch:  res.Epoch,
			Path:   path,
		}, true)
	}
}

// handleAreaJoinAck installs a new parent after a successful area join.
func (c *Controller) handleAreaJoinAck(f *wire.Frame) {
	sender, ok := c.directoryByAddr(f.From)
	if !ok {
		return
	}
	pub, err := peerPub(sender)
	if err != nil {
		return
	}
	if err := pub.Verify(f.Body, f.Sig); err != nil {
		c.cfg.Logf("%s: area-join ack with bad signature from %s", c.cfg.ID, sender.ID)
		return
	}
	var ack wire.AreaJoinAck
	if err := wire.OpenBody(c.cfg.Keys, f.Body, &ack); err != nil {
		return
	}
	if ack.ParentID != c.reparentTarget {
		c.cfg.Logf("%s: unsolicited area-join ack from %s", c.cfg.ID, ack.ParentID)
		return
	}
	psuite, err := crypt.SuiteByID(ack.Suite)
	if err != nil {
		// A parent demanding a suite we do not link cannot relay for us;
		// treat the ack as a denial and try the next candidate.
		c.cfg.Logf("%s: parent %s negotiated unknown cipher suite %d; trying next candidate",
			c.cfg.ID, ack.ParentID, uint8(ack.Suite))
		c.tryNextParent()
		return
	}
	c.reparentTarget = ""
	now := c.clk.Now()
	c.parent = &parentState{
		info:     PeerInfo{ID: ack.ParentID, Addr: f.From, Pub: pub},
		areaID:   ack.ParentAreaID,
		view:     keytree.NewMemberView(ack.Path, ack.Epoch, keytree.NewSuiteEncryptor(psuite)),
		suite:    psuite,
		lastRecv: now,
		lastSent: now,
	}
	c.cfg.Logf("%s: parent is now %s (area %s)", c.cfg.ID, ack.ParentID, ack.ParentAreaID)
	c.trace.Event(obs.ProtoReparent, ack.ParentID, "parent-set",
		obs.String("parent_area", ack.ParentAreaID), obs.Uint("epoch", uint64(ack.Epoch)))
	c.journalParentSet()
	c.markBackupDirty()
}

// handleAreaJoinDenied abandons the current candidate and tries the next
// preferred parent.
func (c *Controller) handleAreaJoinDenied(f *wire.Frame) {
	var d wire.AreaJoinDenied
	if err := wire.DecodePlain(f.Body, &d); err != nil {
		return
	}
	if c.reparentTarget == "" {
		return
	}
	c.cfg.Logf("%s: area-join denied by candidate: %s", c.cfg.ID, d.Reason)
	c.tryNextParent()
}

// handleParentKeyUpdate applies a rekey of the parent's area to our
// member view of it.
func (c *Controller) handleParentKeyUpdate(f *wire.Frame) {
	if c.parent == nil || f.From != c.parent.info.Addr {
		return
	}
	if err := c.parent.info.Pub.Verify(f.Body, f.Sig); err != nil {
		c.cfg.Logf("%s: parent key update with bad signature", c.cfg.ID)
		return
	}
	var u wire.KeyUpdate
	if err := wire.DecodePlain(f.Body, &u); err != nil {
		return
	}
	c.parent.lastRecv = c.clk.Now()
	if _, err := c.parent.view.Apply(&keytree.KeyUpdate{Epoch: u.Epoch, Entries: u.Entries}); err != nil {
		c.cfg.Logf("%s: applying parent key update: %v", c.cfg.ID, err)
		// Recover the parent-area path.
		c.sendPlain(c.parent.info.Addr, wire.KindPathRequest, wire.PathRequest{
			MemberID: c.cfg.ID,
			Epoch:    c.parent.view.Epoch(),
		}, false)
		return
	}
	// Keep the journaled parent view current so a restart can keep
	// forwarding upward without waiting for a path recovery.
	c.journalParentSet()
}

// handleParentPathUpdate rebases our view of the parent area.
func (c *Controller) handleParentPathUpdate(f *wire.Frame) {
	if c.parent == nil || f.From != c.parent.info.Addr {
		return
	}
	if err := c.parent.info.Pub.Verify(f.Body, f.Sig); err != nil {
		return
	}
	var pu wire.PathUpdate
	if err := wire.OpenBody(c.cfg.Keys, f.Body, &pu); err != nil {
		return
	}
	c.parent.lastRecv = c.clk.Now()
	c.parent.view.Rebase(pu.Path, pu.Epoch)
	c.journalParentSet()
}

// handleACAlive refreshes parent liveness (§IV-A).
func (c *Controller) handleACAlive(f *wire.Frame) {
	if c.parent != nil && f.From == c.parent.info.Addr {
		c.parent.lastRecv = c.clk.Now()
	}
}

// parentHousekeeping sends member-side alive messages to the parent and
// detects parent silence (§IV-A, §IV-C).
func (c *Controller) parentHousekeeping(now time.Time) {
	// Retry/advance a pending re-parent attempt.
	if c.reparentTarget != "" && now.After(c.reparentDeadline) {
		c.tryNextParent()
		return
	}
	if c.parent == nil {
		// Orphaned with candidates configured: retry the list from the
		// top periodically, so a healed partition restores the tree.
		if c.reparentTarget == "" && len(c.cfg.PreferredParents) > 0 && now.After(c.orphanRetryAt) {
			c.orphanRetryAt = now.Add(time.Duration(DefaultSilenceFactor) * c.cfg.TIdle)
			c.tryNextParent()
		}
		return
	}
	if now.Sub(c.parent.lastSent) >= c.cfg.TActive {
		//lint:ignore journalorder the alive heartbeat carries no new state, so there is nothing to journal before it; the parent-clear journaled below is an independent transition on the silence path
		c.sendPlain(c.parent.info.Addr, wire.KindMemberAlive, wire.MemberAlive{MemberID: c.cfg.ID}, false)
		c.parent.lastSent = now
	}
	silence := now.Sub(c.parent.lastRecv)
	if silence > time.Duration(DefaultSilenceFactor)*c.cfg.TIdle {
		c.cfg.Logf("%s: parent %s silent for %v; re-parenting", c.cfg.ID, c.parent.info.ID, silence)
		c.trace.Event(obs.ProtoReparent, c.parent.info.ID, "parent-silent", obs.Dur("silence", silence))
		c.parent = nil
		c.journalParentClear()
		c.tryNextParent()
		c.markBackupDirty()
	}
}

// tryNextParent walks the preferred-parent list (§IV-C) and sends an
// area-join request to the first candidate that is not the failed parent
// and not already tried in this round.
func (c *Controller) tryNextParent() {
	start := 0
	if c.reparentTarget != "" {
		// Move past the candidate that just failed.
		for i, id := range c.cfg.PreferredParents {
			if id == c.reparentTarget {
				start = i + 1
				break
			}
		}
		c.reparentTarget = ""
	}
	for _, id := range c.cfg.PreferredParents[min(start, len(c.cfg.PreferredParents)):] {
		if id == c.cfg.ID {
			continue
		}
		if c.parent != nil && id == c.parent.info.ID {
			continue
		}
		entry, ok := c.directoryByID(id)
		if !ok {
			continue
		}
		pub, err := peerPub(entry)
		if err != nil {
			continue
		}
		c.requestParent(PeerInfo{ID: entry.ID, Addr: entry.Addr, Pub: pub})
		return
	}
	c.cfg.Logf("%s: no remaining parent candidates; operating as root", c.cfg.ID)
}

// parentAreaID returns the parent's area ID or "".
func (c *Controller) parentAreaID() string {
	if c.parent == nil {
		return ""
	}
	return c.parent.areaID
}
