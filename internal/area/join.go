package area

import (
	"time"

	"mykil/internal/crypt"
	"mykil/internal/intern"
	"mykil/internal/keytree"
	"mykil/internal/obs"
	"mykil/internal/ticket"
	"mykil/internal/wire"
)

// sessionTTL bounds half-completed join/rejoin handshakes.
const sessionTTL = time.Minute

// handleJoinRefer processes join step 4: the registration server's signed
// referral of an authenticated client.
func (c *Controller) handleJoinRefer(f *wire.Frame) {
	if c.cfg.RSPub.IsZero() {
		c.cfg.Logf("%s: join referral but no registration server key configured", c.cfg.ID)
		return
	}
	if err := c.cfg.RSPub.Verify(f.Body, f.Sig); err != nil {
		c.cfg.Logf("%s: join referral with bad signature from %s", c.cfg.ID, f.From)
		return
	}
	var refer wire.JoinRefer
	if err := wire.OpenBody(c.cfg.Keys, f.Body, &refer); err != nil {
		c.cfg.Logf("%s: join referral body: %v", c.cfg.ID, err)
		return
	}
	// §III-B: the timestamp catches replayed step-4 messages.
	if c.staleTimestamp(refer.Timestamp) {
		c.cfg.Logf("%s: join referral for %s outside replay window", c.cfg.ID, refer.ClientID)
		return
	}
	clientPub, err := crypt.ParsePublicKey(refer.ClientPub)
	if err != nil {
		c.cfg.Logf("%s: join referral for %s: bad client key: %v", c.cfg.ID, refer.ClientID, err)
		return
	}
	c.joinSessions[refer.ClientID] = &joinSession{
		nonceAC:   refer.NonceAC,
		clientID:  refer.ClientID,
		duration:  refer.Duration,
		created:   c.clk.Now(),
		clientDER: refer.ClientPub,
		clientPub: clientPub,
	}
	// The client's step 6 may have raced ahead of this referral (it
	// travels client->AC while the referral travels RS->AC); replay it.
	if parked, ok := c.parkedStep6[refer.ClientID]; ok {
		delete(c.parkedStep6, refer.ClientID)
		c.processJoinToAC(parked)
	}
}

// handleJoinToAC processes join step 6 and admits the client (step 7),
// immediately or at the next batch flush.
func (c *Controller) handleJoinToAC(f *wire.Frame) {
	var msg wire.JoinToAC
	if err := wire.OpenBody(c.cfg.Keys, f.Body, &msg); err != nil {
		c.cfg.Logf("%s: join step 6: %v", c.cfg.ID, err)
		return
	}
	c.processJoinToAC(&parkedJoin{msg: msg, arrived: c.clk.Now()})
}

// parkedJoin is a step-6 message, possibly held until its referral lands.
type parkedJoin struct {
	msg     wire.JoinToAC
	arrived time.Time
}

func (c *Controller) processJoinToAC(p *parkedJoin) {
	msg := p.msg
	sess, ok := c.joinSessions[msg.ClientID]
	if !ok {
		// No referral yet: park briefly in case step 4 is still in
		// flight from the registration server.
		c.parkedStep6[msg.ClientID] = p
		return
	}
	// Authenticate the client against the RS-relayed nonce (§III-B).
	if msg.NonceACPlus2 != sess.nonceAC+2 {
		delete(c.joinSessions, msg.ClientID)
		c.sendSealed(msg.ClientAddr, sess.clientPub, wire.KindJoinDenied, wire.JoinDenied{
			ClientID: msg.ClientID, Reason: "nonce check failed",
		}, true)
		return
	}
	if _, already := c.members[msg.ClientID]; already {
		delete(c.joinSessions, msg.ClientID)
		c.sendSealed(msg.ClientAddr, sess.clientPub, wire.KindJoinDenied, wire.JoinDenied{
			ClientID: msg.ClientID, Reason: "already a member",
		}, true)
		return
	}
	// Suite negotiation: the area runs one suite; a client that cannot
	// speak it would only receive frames it garbles, so deny up front.
	if !c.suiteSupported(msg.SuiteMask) {
		delete(c.joinSessions, msg.ClientID)
		c.sendSealed(msg.ClientAddr, sess.clientPub, wire.KindJoinDenied, wire.JoinDenied{
			ClientID: msg.ClientID, Reason: "cipher suite not supported: area requires " + c.suite.Name(),
		}, true)
		return
	}
	delete(c.joinSessions, msg.ClientID)

	now := c.clk.Now()
	validity := c.cfg.TicketValidity
	if sess.duration > 0 {
		validity = sess.duration
	}
	tk := &ticket.Ticket{
		JoinTime:       now,
		Validity:       now.Add(validity),
		ID:             msg.ClientID,
		PublicKeyDER:   sess.clientDER,
		AreaController: c.cfg.ID,
	}
	tkBlob, err := tk.Seal(c.cfg.KShared)
	if err != nil {
		c.cfg.Logf("%s: sealing ticket for %s: %v", c.cfg.ID, msg.ClientID, err)
		return
	}
	entry := &memberEntry{
		id:         intern.ID(msg.ClientID),
		addr:       intern.ID(msg.ClientAddr),
		pubDER:     intern.DER(sess.clientDER),
		pub:        sess.clientPub,
		lastSeen:   now,
		ticketBlob: tkBlob,
	}
	c.admit(pendingAdmission{entry: entry, nonceCA: msg.NonceCA})
}

// admit queues or immediately applies a membership admission.
func (c *Controller) admit(p pendingAdmission) {
	if c.cfg.Batching {
		// §III-E: record the join, set the update-needed flag; the rekey
		// (and the new member's key delivery) happens at the next data
		// packet or rekey-interval expiry.
		c.pendingJoins = append(c.pendingJoins, p)
		c.updateNeeded = true
		return
	}
	c.applyBatch([]pendingAdmission{p}, nil)
}

// handleLeaveNotice processes a voluntary leave.
func (c *Controller) handleLeaveNotice(f *wire.Frame) {
	var msg wire.LeaveNotice
	if err := wire.DecodePlain(f.Body, &msg); err != nil {
		return
	}
	c.removeMember(msg.MemberID)
}

// removeMember queues or applies a leave for a current member.
func (c *Controller) removeMember(id string) {
	if _, ok := c.members[id]; !ok {
		// Possibly a pending (batched) joiner changing its mind: flush
		// the batch so state converges, then retry once.
		if c.hasPendingJoin(id) {
			c.flush()
			if _, ok := c.members[id]; ok {
				c.removeMember(id)
			}
		}
		return
	}
	if c.cfg.Batching {
		if c.members[id].lastSeen.IsZero() {
			return // already queued to leave in this batch
		}
		c.pendingLeaves = append(c.pendingLeaves, id)
		c.updateNeeded = true
		// The entry stays in c.members until the flush so rejoin
		// verification still sees it; mark it gone for data relay.
		c.members[id].lastSeen = time.Time{}
		return
	}
	c.applyBatch(nil, []string{id})
}

func (c *Controller) hasPendingJoin(id string) bool {
	for _, p := range c.pendingJoins {
		if p.entry.id == id {
			return true
		}
	}
	return false
}

// ---- Rejoin protocol (Fig. 7) ----

// handleRejoinRequest processes rejoin step 1: ticket presentation.
func (c *Controller) handleRejoinRequest(f *wire.Frame) {
	var req wire.RejoinRequest
	if err := wire.OpenBody(c.cfg.Keys, f.Body, &req); err != nil {
		c.cfg.Logf("%s: rejoin step 1: %v", c.cfg.ID, err)
		return
	}
	tk, err := ticket.Open(c.cfg.KShared, req.TicketBlob)
	if err != nil {
		c.cfg.Logf("%s: rejoin ticket from %s rejected: %v", c.cfg.ID, req.ClientID, err)
		return
	}
	clientPub, perr := tk.PublicKey()
	if perr != nil {
		c.cfg.Logf("%s: rejoin ticket has bad public key: %v", c.cfg.ID, perr)
		return
	}
	if err := tk.Validate(c.clk.Now()); err != nil {
		c.sendSealed(req.ClientAddr, clientPub, wire.KindRejoinDenied, wire.RejoinDenied{
			ClientID: req.ClientID, Reason: "ticket invalid: " + err.Error(),
		}, true)
		return
	}
	// §IV-B NIC check: the claimed identity must match the ticket's
	// embedded ID.
	if tk.ID != req.ClientID {
		c.sendSealed(req.ClientAddr, clientPub, wire.KindRejoinDenied, wire.RejoinDenied{
			ClientID: req.ClientID, Reason: "identity does not match ticket",
		}, true)
		return
	}
	// Suite negotiation mirrors the join path: deny before the handshake
	// spends a challenge round trip on a member we cannot serve.
	if !c.suiteSupported(req.SuiteMask) {
		c.sendSealed(req.ClientAddr, clientPub, wire.KindRejoinDenied, wire.RejoinDenied{
			ClientID: req.ClientID, Reason: "cipher suite not supported: area requires " + c.suite.Name(),
		}, true)
		return
	}
	sess := &rejoinSession{
		clientID:   req.ClientID,
		clientAddr: req.ClientAddr,
		clientPub:  clientPub,
		clientDER:  tk.PublicKeyDER,
		nonceBC:    crypt.Nonce(),
		tk:         tk,
		tkBlob:     req.TicketBlob,
		created:    c.clk.Now(),
	}
	c.rejoinSessions[req.ClientID] = sess
	// Step 2: challenge the client to prove possession of the ticket's
	// private key.
	c.trace.Step(obs.ProtoRejoin, req.ClientID, 2, "RejoinChallenge",
		obs.String("prev_ac", sess.tk.AreaController))
	c.sendSealed(req.ClientAddr, clientPub, wire.KindRejoinChallenge, wire.RejoinChallenge{
		NonceCBPlus1: req.NonceCB + 1,
		NonceBC:      sess.nonceBC,
	}, false)
}

// handleRejoinResponse processes rejoin step 3 and either starts the
// steps 4-5 verification with the previous controller or admits directly.
func (c *Controller) handleRejoinResponse(f *wire.Frame) {
	var resp wire.RejoinResponse
	if err := wire.OpenBody(c.cfg.Keys, f.Body, &resp); err != nil {
		c.cfg.Logf("%s: rejoin step 3: %v", c.cfg.ID, err)
		return
	}
	sess, ok := c.rejoinSessions[resp.ClientID]
	if !ok {
		return
	}
	if resp.NonceBCPlus1 != sess.nonceBC+1 {
		delete(c.rejoinSessions, resp.ClientID)
		c.sendSealed(sess.clientAddr, sess.clientPub, wire.KindRejoinDenied, wire.RejoinDenied{
			ClientID: resp.ClientID, Reason: "challenge failed",
		}, true)
		return
	}
	sess.authenticated = true

	if entry, already := c.members[sess.clientID]; already {
		// Rejoining its own area (e.g. after missing rekeys while we
		// never evicted it): refresh it in place with a proper welcome so
		// the client's pending rejoin completes.
		delete(c.rejoinSessions, sess.clientID)
		entry.addr = sess.clientAddr
		entry.lastSeen = c.clk.Now()
		c.journalTouch(entry)
		pks, err := c.tree.PathKeys(keytree.MemberID(sess.clientID))
		if err != nil {
			return
		}
		c.trace.Step(obs.ProtoRejoin, sess.clientID, 6, "RejoinWelcome",
			obs.String("refresh", "in-place"), obs.Uint("epoch", uint64(c.tree.Epoch())))
		c.sendSealed(entry.addr, entry.pub, wire.KindRejoinWelcome, wire.RejoinWelcome{
			TicketBlob: entry.ticketBlob,
			Path:       pks,
			Epoch:      c.tree.Epoch(),
			AreaID:     c.cfg.AreaID,
			BackupAddr: c.backupAddr(),
			BackupPub:  c.backupPubDER(),
			Suite:      c.suite.ID(),
		}, true)
		return
	}

	// §IV-B steps 4-5: verify with the previous controller, unless the
	// ticket was issued by this controller itself, the previous
	// controller is unknown, the member was prevouched by a migration
	// orchestrator (its old controller is removing it right now — a
	// verify would race that removal), or verification is configured off
	// (§V-D's faster option-2 variant).
	prev, inDirectory := c.directoryByID(sess.tk.AreaController)
	if c.cfg.SkipRejoinVerify || c.prevouched[sess.clientID] ||
		sess.tk.AreaController == c.cfg.ID || !inDirectory {
		delete(c.prevouched, sess.clientID)
		c.admitRejoin(sess)
		return
	}
	prevPub, err := peerPub(prev)
	if err != nil {
		c.cfg.Logf("%s: previous controller %s key unparsable: %v", c.cfg.ID, prev.ID, err)
		c.admitRejoin(sess)
		return
	}
	sess.awaitingVerify = true
	sess.verifyDeadline = c.clk.Now().Add(c.cfg.VerifyTimeout)
	c.trace.Step(obs.ProtoRejoin, sess.clientID, 4, "RejoinVerifyReq",
		obs.String("prev_ac", prev.ID))
	c.sendSealed(prev.Addr, prevPub, wire.KindRejoinVerifyReq, wire.RejoinVerifyReq{
		ClientID:  sess.clientID,
		Timestamp: c.clk.Now(),
	}, true)
}

// handleRejoinVerifyReq is the previous controller's side of step 4: is
// the client still one of ours?
func (c *Controller) handleRejoinVerifyReq(f *wire.Frame) {
	sender, ok := c.directoryByAddr(f.From)
	if !ok {
		c.cfg.Logf("%s: verify request from unknown controller %s", c.cfg.ID, f.From)
		return
	}
	senderPub, err := peerPub(sender)
	if err != nil {
		return
	}
	if err := senderPub.Verify(f.Body, f.Sig); err != nil {
		c.cfg.Logf("%s: verify request with bad signature from %s", c.cfg.ID, sender.ID)
		return
	}
	var req wire.RejoinVerifyReq
	if err := wire.OpenBody(c.cfg.Keys, f.Body, &req); err != nil {
		return
	}
	// §IV-B: the timestamp prevents replay of sniffed verify requests.
	if c.staleTimestamp(req.Timestamp) {
		c.cfg.Logf("%s: verify request for %s outside replay window", c.cfg.ID, req.ClientID)
		return
	}

	entry, present := c.members[req.ClientID]
	stillMember := false
	var tkBlob []byte
	if present {
		tkBlob = entry.ticketBlob
		// A member we have heard from recently is genuinely still here —
		// the malicious-cohort case. A silent one has moved or been
		// partitioned away; §IV-A entitles us to terminate it, which is
		// exactly what a controller does when it "can no longer
		// communicate with one of its area members".
		silence := c.clk.Now().Sub(entry.lastSeen)
		if silence <= time.Duration(DefaultSilenceFactor)*c.cfg.TActive {
			stillMember = true
		} else {
			c.removeMember(req.ClientID)
		}
	}
	c.trace.Step(obs.ProtoRejoin, req.ClientID, 5, "RejoinVerifyResp",
		obs.Bool("still_member", stillMember))
	c.sendSealed(f.From, senderPub, wire.KindRejoinVerifyResp, wire.RejoinVerifyResp{
		ClientID:    req.ClientID,
		StillMember: stillMember,
		TicketBlob:  tkBlob,
		Timestamp:   c.clk.Now(),
	}, true)
}

// handleRejoinVerifyResp completes step 5 at the new controller.
func (c *Controller) handleRejoinVerifyResp(f *wire.Frame) {
	sender, ok := c.directoryByAddr(f.From)
	if !ok {
		return
	}
	senderPub, err := peerPub(sender)
	if err != nil {
		return
	}
	if err := senderPub.Verify(f.Body, f.Sig); err != nil {
		c.cfg.Logf("%s: verify response with bad signature from %s", c.cfg.ID, sender.ID)
		return
	}
	var resp wire.RejoinVerifyResp
	if err := wire.OpenBody(c.cfg.Keys, f.Body, &resp); err != nil {
		return
	}
	sess, ok := c.rejoinSessions[resp.ClientID]
	if !ok || !sess.awaitingVerify {
		return
	}
	sess.awaitingVerify = false
	if resp.StillMember {
		delete(c.rejoinSessions, resp.ClientID)
		c.sendSealed(sess.clientAddr, sess.clientPub, wire.KindRejoinDenied, wire.RejoinDenied{
			ClientID: resp.ClientID,
			Reason:   "still a member of previous area (possible shared ticket)",
		}, true)
		return
	}
	c.admitRejoin(sess)
}

// admitRejoin finalizes a rejoin: place in the tree, issue an updated
// ticket, send step 6.
func (c *Controller) admitRejoin(sess *rejoinSession) {
	delete(c.rejoinSessions, sess.clientID)
	now := c.clk.Now()
	newTk := sess.tk.WithController(c.cfg.ID)
	tkBlob, err := newTk.Seal(c.cfg.KShared)
	if err != nil {
		c.cfg.Logf("%s: resealing ticket for %s: %v", c.cfg.ID, sess.clientID, err)
		return
	}
	entry := &memberEntry{
		id:         intern.ID(sess.clientID),
		addr:       intern.ID(sess.clientAddr),
		pubDER:     intern.DER(sess.clientDER),
		pub:        sess.clientPub,
		lastSeen:   now,
		ticketBlob: tkBlob,
	}
	c.admit(pendingAdmission{entry: entry, rejoin: true})
}

// handlePathRequest resends a member's path keys after it detected a
// missed rekey.
func (c *Controller) handlePathRequest(f *wire.Frame) {
	var req wire.PathRequest
	if err := wire.DecodePlain(f.Body, &req); err != nil {
		return
	}
	if entry, ok := c.members[req.MemberID]; ok {
		entry.lastSeen = c.clk.Now()
	}
	c.resendPath(req.MemberID)
}

// resendPath unicasts a member's current path keys sealed to its public
// key.
func (c *Controller) resendPath(id string) {
	entry, ok := c.members[id]
	if !ok {
		return
	}
	pks, err := c.tree.PathKeys(keytree.MemberID(id))
	if err != nil {
		return
	}
	c.sendSealed(entry.addr, entry.pub, wire.KindPathUpdate, wire.PathUpdate{
		AreaID: c.cfg.AreaID,
		Epoch:  c.tree.Epoch(),
		Path:   pks,
	}, true)
}

// staleTimestamp applies the replay window to a protocol timestamp.
func (c *Controller) staleTimestamp(ts time.Time) bool {
	d := c.clk.Now().Sub(ts)
	if d < 0 {
		d = -d
	}
	return d > c.cfg.ReplayWindow
}

// expireSessions drops stale handshakes and applies the §IV-B partition
// policy to verification timeouts.
func (c *Controller) expireSessions(now time.Time) {
	cutoff := now.Add(-sessionTTL)
	for id, s := range c.joinSessions {
		if s.created.Before(cutoff) {
			delete(c.joinSessions, id)
		}
	}
	for id, p := range c.parkedStep6 {
		if p.arrived.Before(cutoff) {
			delete(c.parkedStep6, id)
		}
	}
	for id, s := range c.rejoinSessions {
		if s.awaitingVerify && now.After(s.verifyDeadline) {
			// The previous controller is unreachable: partition case.
			s.awaitingVerify = false
			switch c.cfg.Policy {
			case AdmitOnPartition:
				// The NIC identity was already checked in step 1.
				c.cfg.Logf("%s: admitting %s without verification (partition policy)", c.cfg.ID, id)
				c.admitRejoin(s)
			default:
				delete(c.rejoinSessions, id)
				c.sendSealed(s.clientAddr, s.clientPub, wire.KindRejoinDenied, wire.RejoinDenied{
					ClientID: id,
					Reason:   "previous controller unreachable",
				}, true)
			}
			continue
		}
		if s.created.Before(cutoff) {
			delete(c.rejoinSessions, id)
		}
	}
}
