package area

import (
	"testing"
	"time"

	"mykil/internal/clock"
	"mykil/internal/wire"
)

// These tests pin the §IV-A timer semantics to the clock, not the wall:
// with hour-scale periods on a fake clock, nothing may happen until the
// clock is advanced, and everything must happen once it is.

var fakeEpoch = time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)

// advanceUntil steps the fake clock until cond holds, giving the
// controller loop real time to consume each tick.
func advanceUntil(t *testing.T, fake *clock.Fake, step time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held under fake-clock advancement")
		}
		fake.Advance(step)
		time.Sleep(2 * time.Millisecond)
	}
}

func TestFakeClockAliveOnlyAfterIdlePeriod(t *testing.T) {
	fake := clock.NewFake(fakeEpoch)
	r := newRig(t, func(c *Config) {
		c.Clock = fake
		c.TIdle = time.Hour
		c.TActive = 4 * time.Hour
		c.RekeyInterval = 8 * time.Hour
	})
	r.joinAt("c1", fake.Now())

	// Real time passes, fake time does not: no alive message may appear.
	expectNoKind(t, r.cli, wire.KindACAlive, 150*time.Millisecond)

	// One idle period on the clock: the alive multicast must follow.
	got := make(chan struct{}, 1)
	go func() {
		recvKind(t, r.cli, wire.KindACAlive)
		got <- struct{}{}
	}()
	advanceUntil(t, fake, 30*time.Minute, func() bool {
		select {
		case <-got:
			return true
		default:
			return false
		}
	})
}

func TestFakeClockEvictionAfterSilence(t *testing.T) {
	fake := clock.NewFake(fakeEpoch)
	r := newRig(t, func(c *Config) {
		c.Clock = fake
		c.TIdle = time.Hour
		c.TActive = 2 * time.Hour
		c.RekeyInterval = time.Hour
	})
	r.joinAt("c1", fake.Now())
	if !r.ctrl.HasMember("c1") {
		t.Fatal("member missing after join")
	}

	// 5×T_active = 10h of client silence evicts; before that, nothing.
	fake.Advance(9 * time.Hour)
	time.Sleep(20 * time.Millisecond)
	if !r.ctrl.HasMember("c1") {
		t.Fatal("member evicted before the silence threshold")
	}
	advanceUntil(t, fake, time.Hour, func() bool { return !r.ctrl.HasMember("c1") })
	if got := r.ctrl.Stats().Value(StatEvictions); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
}

func TestFakeClockFreshnessRekey(t *testing.T) {
	fake := clock.NewFake(fakeEpoch)
	r := newRig(t, func(c *Config) {
		c.Clock = fake
		c.TIdle = time.Hour
		c.TActive = 4 * time.Hour
		c.RekeyInterval = time.Hour
		c.FreshnessInterval = 6 * time.Hour
	})
	r.joinAt("c1", fake.Now())
	epoch := r.ctrl.Epoch()

	// No events, clock stopped: the key must not rotate.
	time.Sleep(100 * time.Millisecond)
	if r.ctrl.Epoch() != epoch {
		t.Fatal("area key rotated without clock advancement")
	}

	// Crossing the freshness interval rotates the key and multicasts
	// E_old(new) — one entry — to the members.
	got := make(chan struct{}, 1)
	go func() {
		f := recvKind(t, r.cli, wire.KindKeyUpdate)
		var u wire.KeyUpdate
		if err := wire.DecodePlain(f.Body, &u); err == nil && len(u.Entries) == 1 {
			got <- struct{}{}
		}
	}()
	advanceUntil(t, fake, 2*time.Hour, func() bool {
		select {
		case <-got:
			return true
		default:
			return false
		}
	})
	if r.ctrl.Epoch() <= epoch {
		t.Errorf("epoch %d not advanced past %d by freshness rekey", r.ctrl.Epoch(), epoch)
	}
}

func TestFakeClockBatchFlushOnRekeyInterval(t *testing.T) {
	fake := clock.NewFake(fakeEpoch)
	r := newRig(t, func(c *Config) {
		c.Clock = fake
		c.Batching = true
		c.TIdle = time.Hour
		c.TActive = 4 * time.Hour
		c.RekeyInterval = 3 * time.Hour
	})
	nonce := uint64(1000)
	r.refer("c1", nonce, fake.Now())
	r.step6("c1", nonce+2, 7)

	// The admission must stay queued while the clock is stopped.
	expectNoKind(t, r.cli, wire.KindJoinWelcome, 150*time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for r.ctrl.PendingEvents() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("admission never queued")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Crossing the rekey interval flushes it.
	got := make(chan struct{}, 1)
	go func() {
		recvKind(t, r.cli, wire.KindJoinWelcome)
		got <- struct{}{}
	}()
	advanceUntil(t, fake, time.Hour, func() bool {
		select {
		case <-got:
			return true
		default:
			return false
		}
	})
	if !r.ctrl.HasMember("c1") {
		t.Error("member missing after interval flush")
	}
}
