package area

import (
	"sync"
	"testing"
	"time"

	"mykil/internal/clock"
	"mykil/internal/crypt"
	"mykil/internal/keytree"
	"mykil/internal/simnet"
	"mykil/internal/ticket"
	"mykil/internal/transport"
	"mykil/internal/wire"
)

var (
	testPoolOnce sync.Once
	testPool     *crypt.Pool
)

func keyPair(t *testing.T) *crypt.KeyPair {
	t.Helper()
	testPoolOnce.Do(func() {
		testPool = crypt.NewPool(512)
		if err := testPool.Warm(12); err != nil {
			t.Fatalf("warming pool: %v", err)
		}
	})
	kp, err := testPool.Get()
	if err != nil {
		t.Fatalf("key pair: %v", err)
	}
	return kp
}

// rig hosts one controller plus hand-driven RS, client, and peer-AC
// endpoints, so tests can forge arbitrary protocol frames.
type rig struct {
	t       *testing.T
	net     *simnet.Network
	ctrl    *Controller
	kShared crypt.SymKey

	rsKeys   *crypt.KeyPair
	acKeys   *crypt.KeyPair
	peerKeys *crypt.KeyPair
	cliKeys  *crypt.KeyPair

	rs   transport.Transport
	cli  transport.Transport
	peer transport.Transport
}

func newRig(t *testing.T, mutate func(*Config)) *rig {
	t.Helper()
	r := &rig{
		t:        t,
		net:      simnet.New(simnet.Config{}),
		kShared:  crypt.NewSymKey(),
		rsKeys:   keyPair(t),
		acKeys:   keyPair(t),
		peerKeys: keyPair(t),
		cliKeys:  keyPair(t),
	}
	mk := func(addr string) transport.Transport {
		tr, err := transport.NewSim(r.net, addr)
		if err != nil {
			t.Fatalf("transport %s: %v", addr, err)
		}
		return tr
	}
	acTr := mk("ac-0")
	r.rs = mk("rs")
	r.cli = mk("cli")
	r.peer = mk("ac-peer")

	cfg := Config{
		ID:        "ac-0",
		AreaID:    "area-0",
		Transport: acTr,
		Keys:      r.acKeys,
		Clock:     clock.Real{},
		KShared:   r.kShared,
		RSPub:     r.rsKeys.Public(),
		Directory: []wire.ACInfo{
			{ID: "ac-0", Addr: "ac-0", PubDER: r.acKeys.Public().Marshal()},
			{ID: "ac-peer", Addr: "ac-peer", PubDER: r.peerKeys.Public().Marshal()},
		},
		TIdle:         50 * time.Millisecond,
		TActive:       100 * time.Millisecond,
		RekeyInterval: 80 * time.Millisecond,
		VerifyTimeout: 200 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	ctrl, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	r.ctrl = ctrl
	ctrl.Start()
	t.Cleanup(func() {
		ctrl.Close()
		_ = acTr.Close()
		_ = r.rs.Close()
		_ = r.cli.Close()
		_ = r.peer.Close()
		r.net.Close()
	})
	return r
}

func recvFrame(t *testing.T, tr transport.Transport) *wire.Frame {
	t.Helper()
	select {
	case f := <-tr.Recv():
		return f
	case <-time.After(5 * time.Second):
		t.Fatal("no frame within timeout")
		return nil
	}
}

// recvKind drains frames until one of the wanted kind appears (alive
// messages and rekeys may interleave).
func recvKind(t *testing.T, tr transport.Transport, kind wire.Kind) *wire.Frame {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case f := <-tr.Recv():
			if f.Kind == kind {
				return f
			}
		case <-deadline:
			t.Fatalf("no %v frame within timeout", kind)
			return nil
		}
	}
}

func expectNoKind(t *testing.T, tr transport.Transport, kind wire.Kind, window time.Duration) {
	t.Helper()
	deadline := time.After(window)
	for {
		select {
		case f := <-tr.Recv():
			if f.Kind == kind {
				t.Fatalf("unexpected %v frame", kind)
			}
		case <-deadline:
			return
		}
	}
}

// refer injects a signed step-4 referral for the test client.
func (r *rig) refer(clientID string, nonceAC uint64, ts time.Time) {
	r.t.Helper()
	blob, err := wire.SealBody(r.acKeys.Public(), wire.JoinRefer{
		NonceAC:    nonceAC,
		ClientID:   clientID,
		ClientAddr: "cli",
		Timestamp:  ts,
		ClientPub:  r.cliKeys.Public().Marshal(),
		Duration:   time.Hour,
	})
	if err != nil {
		r.t.Fatalf("SealBody: %v", err)
	}
	f := &wire.Frame{Kind: wire.KindJoinRefer, From: "rs", Body: blob, Sig: r.rsKeys.Sign(blob)}
	if err := r.rs.Send("ac-0", f); err != nil {
		r.t.Fatalf("Send: %v", err)
	}
}

// step6 sends the client's step-6 message.
func (r *rig) step6(clientID string, nonceACPlus2, nonceCA uint64) {
	r.t.Helper()
	blob, err := wire.SealBody(r.acKeys.Public(), wire.JoinToAC{
		ClientID:     clientID,
		ClientAddr:   "cli",
		NonceACPlus2: nonceACPlus2,
		NonceCA:      nonceCA,
	})
	if err != nil {
		r.t.Fatalf("SealBody: %v", err)
	}
	if err := r.cli.Send("ac-0", &wire.Frame{Kind: wire.KindJoinToAC, From: "cli", Body: blob}); err != nil {
		r.t.Fatalf("Send: %v", err)
	}
}

// join admits the test client through steps 4+6/7 and returns the
// welcome.
func (r *rig) join(clientID string) *wire.JoinWelcome {
	return r.joinAt(clientID, time.Now())
}

// joinAt is join with an explicit referral timestamp, for fake-clock rigs
// whose replay window is anchored to the fake now.
func (r *rig) joinAt(clientID string, ts time.Time) *wire.JoinWelcome {
	r.t.Helper()
	nonce := crypt.Nonce()
	r.refer(clientID, nonce, ts)
	r.step6(clientID, nonce+2, 77)
	f := recvKind(r.t, r.cli, wire.KindJoinWelcome)
	var w wire.JoinWelcome
	if err := wire.OpenBody(r.cliKeys, f.Body, &w); err != nil {
		r.t.Fatalf("welcome body: %v", err)
	}
	if w.NonceCAPlus1 != 78 {
		r.t.Fatalf("NonceCA echo = %d", w.NonceCAPlus1)
	}
	return &w
}

func TestJoinAdmitsClient(t *testing.T) {
	r := newRig(t, nil)
	w := r.join("c1")
	if r.ctrl.NumMembers() != 1 || !r.ctrl.HasMember("c1") {
		t.Error("client not admitted")
	}
	if len(w.Path) == 0 || w.AreaID != "area-0" {
		t.Errorf("welcome = %+v", w)
	}
	// The ticket must open under K_shared and carry our controller ID
	// and the RS-granted validity.
	tk, err := ticket.Open(r.kShared, w.TicketBlob)
	if err != nil {
		t.Fatalf("ticket: %v", err)
	}
	if tk.AreaController != "ac-0" || tk.ID != "c1" {
		t.Errorf("ticket = %+v", tk)
	}
	if got := tk.Validity.Sub(tk.JoinTime); got != time.Hour {
		t.Errorf("ticket validity = %v, want 1h", got)
	}
}

func TestJoinReferBadSignatureDropped(t *testing.T) {
	r := newRig(t, nil)
	blob, err := wire.SealBody(r.acKeys.Public(), wire.JoinRefer{
		NonceAC: 1, ClientID: "evil", ClientAddr: "cli",
		Timestamp: time.Now(), ClientPub: r.cliKeys.Public().Marshal(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Signed by the client, not the RS.
	f := &wire.Frame{Kind: wire.KindJoinRefer, From: "rs", Body: blob, Sig: r.cliKeys.Sign(blob)}
	if err := r.rs.Send("ac-0", f); err != nil {
		t.Fatal(err)
	}
	r.step6("evil", 3, 9)
	expectNoKind(t, r.cli, wire.KindJoinWelcome, 100*time.Millisecond)
	if r.ctrl.HasMember("evil") {
		t.Error("forged referral admitted a member")
	}
}

func TestJoinReferReplayRejected(t *testing.T) {
	// §III-B: a referral replayed outside the window must be rejected.
	r := newRig(t, func(c *Config) { c.ReplayWindow = time.Minute })
	nonce := crypt.Nonce()
	r.refer("replayed", nonce, time.Now().Add(-2*time.Minute))
	r.step6("replayed", nonce+2, 9)
	expectNoKind(t, r.cli, wire.KindJoinWelcome, 100*time.Millisecond)
	if r.ctrl.HasMember("replayed") {
		t.Error("replayed referral admitted a member")
	}
}

func TestJoinWrongNonceDenied(t *testing.T) {
	r := newRig(t, nil)
	nonce := crypt.Nonce()
	r.refer("c1", nonce, time.Now())
	r.step6("c1", nonce+3, 9) // wrong: must be nonce+2
	f := recvKind(t, r.cli, wire.KindJoinDenied)
	var d wire.JoinDenied
	if err := wire.OpenBody(r.cliKeys, f.Body, &d); err != nil {
		t.Fatalf("denied body: %v", err)
	}
	if r.ctrl.HasMember("c1") {
		t.Error("client admitted despite failed challenge")
	}
}

func TestStep6BeforeReferralParksAndCompletes(t *testing.T) {
	r := newRig(t, nil)
	nonce := crypt.Nonce()
	r.step6("c1", nonce+2, 9) // step 6 first
	time.Sleep(20 * time.Millisecond)
	r.refer("c1", nonce, time.Now()) // referral second
	recvKind(t, r.cli, wire.KindJoinWelcome)
	if !r.ctrl.HasMember("c1") {
		t.Error("parked step 6 not replayed")
	}
}

func TestLeaveNoticeRemovesMember(t *testing.T) {
	r := newRig(t, nil)
	r.join("c1")
	body, err := wire.PlainBody(wire.LeaveNotice{MemberID: "c1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.cli.Send("ac-0", &wire.Frame{Kind: wire.KindLeaveNotice, From: "cli", Body: body}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for r.ctrl.HasMember("c1") {
		if time.Now().After(deadline) {
			t.Fatal("member not removed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// rejoinTicket builds a sealed ticket for the test client.
func (r *rig) rejoinTicket(id, issuer string, validFor time.Duration) []byte {
	r.t.Helper()
	now := time.Now()
	tk := &ticket.Ticket{
		JoinTime:       now.Add(-time.Minute),
		Validity:       now.Add(validFor),
		ID:             id,
		PublicKeyDER:   r.cliKeys.Public().Marshal(),
		AreaController: issuer,
	}
	blob, err := tk.Seal(r.kShared)
	if err != nil {
		r.t.Fatalf("Seal: %v", err)
	}
	return blob
}

// rejoinSteps13 drives rejoin steps 1-3 and returns after step 3 is sent.
func (r *rig) rejoinSteps13(id string, tkBlob []byte) {
	r.t.Helper()
	blob, err := wire.SealBody(r.acKeys.Public(), wire.RejoinRequest{
		ClientID: id, ClientAddr: "cli", NonceCB: 41, TicketBlob: tkBlob,
	})
	if err != nil {
		r.t.Fatal(err)
	}
	if err := r.cli.Send("ac-0", &wire.Frame{Kind: wire.KindRejoinRequest, From: "cli", Body: blob}); err != nil {
		r.t.Fatal(err)
	}
	f := recvKind(r.t, r.cli, wire.KindRejoinChallenge)
	var ch wire.RejoinChallenge
	if err := wire.OpenBody(r.cliKeys, f.Body, &ch); err != nil {
		r.t.Fatalf("challenge body: %v", err)
	}
	if ch.NonceCBPlus1 != 42 {
		r.t.Fatalf("NonceCB echo = %d", ch.NonceCBPlus1)
	}
	blob, err = wire.SealBody(r.acKeys.Public(), wire.RejoinResponse{
		ClientID: id, NonceBCPlus1: ch.NonceBC + 1,
	})
	if err != nil {
		r.t.Fatal(err)
	}
	if err := r.cli.Send("ac-0", &wire.Frame{Kind: wire.KindRejoinResponse, From: "cli", Body: blob}); err != nil {
		r.t.Fatal(err)
	}
}

func TestRejoinWithVerification(t *testing.T) {
	r := newRig(t, nil)
	tkBlob := r.rejoinTicket("c1", "ac-peer", time.Hour)
	r.rejoinSteps13("c1", tkBlob)

	// The controller must consult the previous controller (step 4).
	f4 := recvKind(t, r.peer, wire.KindRejoinVerifyReq)
	if err := r.acKeys.Public().Verify(f4.Body, f4.Sig); err != nil {
		t.Fatalf("verify request signature: %v", err)
	}
	var req wire.RejoinVerifyReq
	if err := wire.OpenBody(r.peerKeys, f4.Body, &req); err != nil {
		t.Fatalf("verify request body: %v", err)
	}
	if req.ClientID != "c1" {
		t.Errorf("verify request = %+v", req)
	}

	// Step 5: the previous controller confirms departure.
	blob, err := wire.SealBody(r.acKeys.Public(), wire.RejoinVerifyResp{
		ClientID: "c1", StillMember: false, Timestamp: time.Now(),
	})
	if err != nil {
		t.Fatal(err)
	}
	f := &wire.Frame{Kind: wire.KindRejoinVerifyResp, From: "ac-peer", Body: blob, Sig: r.peerKeys.Sign(blob)}
	if err := r.peer.Send("ac-0", f); err != nil {
		t.Fatal(err)
	}

	// Step 6 reaches the client, signed.
	f6 := recvKind(t, r.cli, wire.KindRejoinWelcome)
	if err := r.acKeys.Public().Verify(f6.Body, f6.Sig); err != nil {
		t.Fatalf("welcome signature: %v", err)
	}
	var w wire.RejoinWelcome
	if err := wire.OpenBody(r.cliKeys, f6.Body, &w); err != nil {
		t.Fatalf("welcome body: %v", err)
	}
	// The reissued ticket must be re-homed to this controller.
	tk, err := ticket.Open(r.kShared, w.TicketBlob)
	if err != nil {
		t.Fatalf("reissued ticket: %v", err)
	}
	if tk.AreaController != "ac-0" {
		t.Errorf("reissued ticket controller = %s", tk.AreaController)
	}
	if !r.ctrl.HasMember("c1") {
		t.Error("rejoined client not a member")
	}
}

func TestRejoinToOwnAreaRewelcomes(t *testing.T) {
	// A member that lost touch and rejoins the SAME controller (it was
	// never evicted) must receive a full RejoinWelcome with its current
	// path, not be left hanging.
	r := newRig(t, nil)
	w := r.join("c1")
	tkBlob := w.TicketBlob
	r.rejoinSteps13("c1", tkBlob)
	f := recvKind(t, r.cli, wire.KindRejoinWelcome)
	if err := r.acKeys.Public().Verify(f.Body, f.Sig); err != nil {
		t.Fatalf("welcome signature: %v", err)
	}
	var rw wire.RejoinWelcome
	if err := wire.OpenBody(r.cliKeys, f.Body, &rw); err != nil {
		t.Fatalf("welcome body: %v", err)
	}
	if len(rw.Path) == 0 || rw.AreaID != "area-0" {
		t.Errorf("re-welcome = %+v", rw)
	}
	if r.ctrl.NumMembers() != 1 {
		t.Errorf("NumMembers = %d, want 1 (no double placement)", r.ctrl.NumMembers())
	}
}

func TestRejoinDeniedWhenStillMember(t *testing.T) {
	r := newRig(t, nil)
	tkBlob := r.rejoinTicket("c1", "ac-peer", time.Hour)
	r.rejoinSteps13("c1", tkBlob)
	recvKind(t, r.peer, wire.KindRejoinVerifyReq)
	blob, err := wire.SealBody(r.acKeys.Public(), wire.RejoinVerifyResp{
		ClientID: "c1", StillMember: true, Timestamp: time.Now(),
	})
	if err != nil {
		t.Fatal(err)
	}
	f := &wire.Frame{Kind: wire.KindRejoinVerifyResp, From: "ac-peer", Body: blob, Sig: r.peerKeys.Sign(blob)}
	if err := r.peer.Send("ac-0", f); err != nil {
		t.Fatal(err)
	}
	recvKind(t, r.cli, wire.KindRejoinDenied)
	if r.ctrl.HasMember("c1") {
		t.Error("cohort admitted despite StillMember")
	}
}

func TestRejoinVerifyTimeoutDenyPolicy(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.Policy = DenyOnPartition
		c.VerifyTimeout = 80 * time.Millisecond
	})
	tkBlob := r.rejoinTicket("c1", "ac-peer", time.Hour)
	r.net.Crash("ac-peer") // previous controller unreachable
	r.rejoinSteps13("c1", tkBlob)
	recvKind(t, r.cli, wire.KindRejoinDenied)
	if r.ctrl.HasMember("c1") {
		t.Error("admitted under deny policy")
	}
}

func TestRejoinVerifyTimeoutAdmitPolicy(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.Policy = AdmitOnPartition
		c.VerifyTimeout = 80 * time.Millisecond
	})
	tkBlob := r.rejoinTicket("c1", "ac-peer", time.Hour)
	r.net.Crash("ac-peer")
	r.rejoinSteps13("c1", tkBlob)
	recvKind(t, r.cli, wire.KindRejoinWelcome)
	if !r.ctrl.HasMember("c1") {
		t.Error("not admitted under admit policy")
	}
}

func TestRejoinExpiredTicketDenied(t *testing.T) {
	r := newRig(t, nil)
	tkBlob := r.rejoinTicket("c1", "ac-peer", -time.Minute) // expired
	blob, err := wire.SealBody(r.acKeys.Public(), wire.RejoinRequest{
		ClientID: "c1", ClientAddr: "cli", NonceCB: 41, TicketBlob: tkBlob,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.cli.Send("ac-0", &wire.Frame{Kind: wire.KindRejoinRequest, From: "cli", Body: blob}); err != nil {
		t.Fatal(err)
	}
	recvKind(t, r.cli, wire.KindRejoinDenied)
}

func TestRejoinForgedTicketDropped(t *testing.T) {
	r := newRig(t, nil)
	// Sealed under the wrong K_shared: an outsider's forgery.
	wrong := crypt.NewSymKey()
	tk := &ticket.Ticket{
		JoinTime: time.Now(), Validity: time.Now().Add(time.Hour),
		ID: "c1", PublicKeyDER: r.cliKeys.Public().Marshal(), AreaController: "ac-peer",
	}
	blob, err := tk.Seal(wrong)
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := wire.SealBody(r.acKeys.Public(), wire.RejoinRequest{
		ClientID: "c1", ClientAddr: "cli", NonceCB: 41, TicketBlob: blob,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.cli.Send("ac-0", &wire.Frame{Kind: wire.KindRejoinRequest, From: "cli", Body: sealed}); err != nil {
		t.Fatal(err)
	}
	expectNoKind(t, r.cli, wire.KindRejoinChallenge, 100*time.Millisecond)
}

func TestRejoinTicketIdentityMismatchDenied(t *testing.T) {
	r := newRig(t, nil)
	tkBlob := r.rejoinTicket("the-real-holder", "ac-peer", time.Hour)
	blob, err := wire.SealBody(r.acKeys.Public(), wire.RejoinRequest{
		ClientID: "somebody-else", ClientAddr: "cli", NonceCB: 41, TicketBlob: tkBlob,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.cli.Send("ac-0", &wire.Frame{Kind: wire.KindRejoinRequest, From: "cli", Body: blob}); err != nil {
		t.Fatal(err)
	}
	recvKind(t, r.cli, wire.KindRejoinDenied)
}

func TestVerifyReqAnswersStillMember(t *testing.T) {
	r := newRig(t, nil)
	r.join("c1") // c1 is an active member here
	blob, err := wire.SealBody(r.acKeys.Public(), wire.RejoinVerifyReq{
		ClientID: "c1", Timestamp: time.Now(),
	})
	if err != nil {
		t.Fatal(err)
	}
	f := &wire.Frame{Kind: wire.KindRejoinVerifyReq, From: "ac-peer", Body: blob, Sig: r.peerKeys.Sign(blob)}
	if err := r.peer.Send("ac-0", f); err != nil {
		t.Fatal(err)
	}
	resp := recvKind(t, r.peer, wire.KindRejoinVerifyResp)
	var vr wire.RejoinVerifyResp
	if err := wire.OpenBody(r.peerKeys, resp.Body, &vr); err != nil {
		t.Fatalf("verify response body: %v", err)
	}
	if !vr.StillMember {
		t.Error("active member reported as departed")
	}
	if len(vr.TicketBlob) == 0 {
		t.Error("stored ticket not returned")
	}
}

func TestVerifyReqReplayRejected(t *testing.T) {
	r := newRig(t, func(c *Config) { c.ReplayWindow = time.Minute })
	blob, err := wire.SealBody(r.acKeys.Public(), wire.RejoinVerifyReq{
		ClientID: "c1", Timestamp: time.Now().Add(-time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	f := &wire.Frame{Kind: wire.KindRejoinVerifyReq, From: "ac-peer", Body: blob, Sig: r.peerKeys.Sign(blob)}
	if err := r.peer.Send("ac-0", f); err != nil {
		t.Fatal(err)
	}
	expectNoKind(t, r.peer, wire.KindRejoinVerifyResp, 100*time.Millisecond)
}

func TestKeyUpdateSignedAndAppliesToMembers(t *testing.T) {
	r := newRig(t, nil)
	w1 := r.join("c1")
	view := keytree.NewMemberView(w1.Path, w1.Epoch, keytree.SealingEncryptor{})

	// Second member joins; c1 must receive a signed rekey it can apply.
	cli2Keys := keyPair(t)
	tr2, err := transport.NewSim(r.net, "cli2")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr2.Close() }()
	nonce := crypt.Nonce()
	blob, err := wire.SealBody(r.acKeys.Public(), wire.JoinRefer{
		NonceAC: nonce, ClientID: "c2", ClientAddr: "cli2",
		Timestamp: time.Now(), ClientPub: cli2Keys.Public().Marshal(),
	})
	if err != nil {
		t.Fatal(err)
	}
	f := &wire.Frame{Kind: wire.KindJoinRefer, From: "rs", Body: blob, Sig: r.rsKeys.Sign(blob)}
	if err := r.rs.Send("ac-0", f); err != nil {
		t.Fatal(err)
	}
	blob, err = wire.SealBody(r.acKeys.Public(), wire.JoinToAC{
		ClientID: "c2", ClientAddr: "cli2", NonceACPlus2: nonce + 2, NonceCA: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.Send("ac-0", &wire.Frame{Kind: wire.KindJoinToAC, From: "cli2", Body: blob}); err != nil {
		t.Fatal(err)
	}

	// c1 receives either a signed KeyUpdate or a signed PathUpdate
	// (displacement), depending on tree shape; with a single prior member
	// at the root it is a displacement.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case f := <-r.cli.Recv():
			switch f.Kind {
			case wire.KindKeyUpdate:
				if err := r.acKeys.Public().Verify(f.Body, f.Sig); err != nil {
					t.Fatalf("key update signature: %v", err)
				}
				var u wire.KeyUpdate
				if err := wire.DecodePlain(f.Body, &u); err != nil {
					t.Fatal(err)
				}
				if _, err := view.Apply(&keytree.KeyUpdate{Epoch: u.Epoch, Entries: u.Entries}); err != nil {
					t.Fatalf("apply: %v", err)
				}
				return
			case wire.KindPathUpdate:
				if err := r.acKeys.Public().Verify(f.Body, f.Sig); err != nil {
					t.Fatalf("path update signature: %v", err)
				}
				var pu wire.PathUpdate
				if err := wire.OpenBody(r.cliKeys, f.Body, &pu); err != nil {
					t.Fatal(err)
				}
				view.Rebase(pu.Path, pu.Epoch)
				return
			}
		case <-deadline:
			t.Fatal("no rekey reached the existing member")
		}
	}
}

func TestAliveMulticastOnIdle(t *testing.T) {
	r := newRig(t, func(c *Config) { c.TIdle = 30 * time.Millisecond })
	r.join("c1")
	recvKind(t, r.cli, wire.KindACAlive)
}

func TestPathRequestAnswered(t *testing.T) {
	r := newRig(t, nil)
	w := r.join("c1")
	body, err := wire.PlainBody(wire.PathRequest{MemberID: "c1", Epoch: w.Epoch})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.cli.Send("ac-0", &wire.Frame{Kind: wire.KindPathRequest, From: "cli", Body: body}); err != nil {
		t.Fatal(err)
	}
	f := recvKind(t, r.cli, wire.KindPathUpdate)
	var pu wire.PathUpdate
	if err := wire.OpenBody(r.cliKeys, f.Body, &pu); err != nil {
		t.Fatalf("path update: %v", err)
	}
	if len(pu.Path) == 0 {
		t.Error("empty path")
	}
}

func TestAreaJoinAdmitsChildController(t *testing.T) {
	r := newRig(t, nil)
	blob, err := wire.SealBody(r.acKeys.Public(), wire.AreaJoinReq{
		ACID: "ac-peer", ACAddr: "ac-peer", AreaID: "area-peer", Timestamp: time.Now(),
	})
	if err != nil {
		t.Fatal(err)
	}
	f := &wire.Frame{Kind: wire.KindAreaJoinReq, From: "ac-peer", Body: blob, Sig: r.peerKeys.Sign(blob)}
	if err := r.peer.Send("ac-0", f); err != nil {
		t.Fatal(err)
	}
	ack := recvKind(t, r.peer, wire.KindAreaJoinAck)
	if err := r.acKeys.Public().Verify(ack.Body, ack.Sig); err != nil {
		t.Fatalf("ack signature: %v", err)
	}
	var a wire.AreaJoinAck
	if err := wire.OpenBody(r.peerKeys, ack.Body, &a); err != nil {
		t.Fatalf("ack body: %v", err)
	}
	if a.ParentID != "ac-0" || a.ParentAreaID != "area-0" || len(a.Path) == 0 {
		t.Errorf("ack = %+v", a)
	}
	if !r.ctrl.HasMember("ac-peer") {
		t.Error("child controller not a member")
	}
}

func TestAreaJoinUnknownControllerIgnored(t *testing.T) {
	r := newRig(t, nil)
	strangerKeys := keyPair(t)
	tr, err := transport.NewSim(r.net, "stranger")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	blob, err := wire.SealBody(r.acKeys.Public(), wire.AreaJoinReq{
		ACID: "stranger", ACAddr: "stranger", AreaID: "x", Timestamp: time.Now(),
	})
	if err != nil {
		t.Fatal(err)
	}
	f := &wire.Frame{Kind: wire.KindAreaJoinReq, From: "stranger", Body: blob, Sig: strangerKeys.Sign(blob)}
	if err := tr.Send("ac-0", f); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if r.ctrl.HasMember("stranger") {
		t.Error("unknown controller adopted")
	}
}

func TestStateExportImportRoundTrip(t *testing.T) {
	r := newRig(t, nil)
	r.join("c1")

	var st *State
	if err := r.ctrl.call(func() { st = r.ctrl.exportState() }); err != nil {
		t.Fatalf("exportState: %v", err)
	}
	blob, err := EncodeState(st)
	if err != nil {
		t.Fatalf("EncodeState: %v", err)
	}
	got, err := DecodeState(blob)
	if err != nil {
		t.Fatalf("DecodeState: %v", err)
	}
	if got.AreaID != "area-0" || len(got.Members) != 1 || got.Members[0].ID != "c1" {
		t.Errorf("state = %+v", got)
	}

	// A controller restored from the state serves the same member set.
	tr, err := transport.NewSim(r.net, "backup")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	restored, err := NewFromState(Config{
		ID:        "backup",
		AreaID:    "ignored-overridden",
		Transport: tr,
		Keys:      keyPair(t),
		KShared:   r.kShared,
		RSPub:     r.rsKeys.Public(),
	}, got)
	if err != nil {
		t.Fatalf("NewFromState: %v", err)
	}
	restored.Start()
	defer restored.Close()
	if !restored.HasMember("c1") || restored.NumMembers() != 1 {
		t.Error("restored controller lost the member")
	}
	if restored.Epoch() != r.ctrl.Epoch() {
		t.Errorf("restored epoch %d vs %d", restored.Epoch(), r.ctrl.Epoch())
	}
}

func TestBatchingDuplicateLeaveNotices(t *testing.T) {
	// A member's LeaveNotice delivered twice (retry, or racing with
	// eviction) must not poison the pending batch.
	r := newRig(t, func(c *Config) {
		c.Batching = true
		c.RekeyInterval = time.Hour
	})
	nonce := crypt.Nonce()
	r.refer("c1", nonce, time.Now())
	r.step6("c1", nonce+2, 7)
	deadline := time.Now().Add(5 * time.Second)
	for r.ctrl.PendingEvents() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("join never queued")
		}
		time.Sleep(5 * time.Millisecond)
	}
	r.ctrl.FlushBatch()
	recvKind(t, r.cli, wire.KindJoinWelcome)

	body, err := wire.PlainBody(wire.LeaveNotice{MemberID: "c1"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := r.cli.Send("ac-0", &wire.Frame{Kind: wire.KindLeaveNotice, From: "cli", Body: body}); err != nil {
			t.Fatal(err)
		}
	}
	deadline = time.Now().Add(5 * time.Second)
	for r.ctrl.PendingEvents() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("PendingEvents = %d, want 1 (duplicates collapsed)", r.ctrl.PendingEvents())
		}
		time.Sleep(5 * time.Millisecond)
	}
	r.ctrl.FlushBatch()
	if r.ctrl.HasMember("c1") {
		t.Error("member still present after flush")
	}
	if r.ctrl.NumMembers() != 0 {
		t.Errorf("NumMembers = %d", r.ctrl.NumMembers())
	}
}

func TestStatsCounters(t *testing.T) {
	r := newRig(t, nil)
	r.join("c1")
	if got := r.ctrl.Stats().Value(StatJoins); got != 1 {
		t.Errorf("joins = %d, want 1", got)
	}
	if got := r.ctrl.Stats().Value(StatRekeys); got != 1 {
		t.Errorf("rekeys = %d, want 1", got)
	}
	body, err := wire.PlainBody(wire.LeaveNotice{MemberID: "c1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.cli.Send("ac-0", &wire.Frame{Kind: wire.KindLeaveNotice, From: "cli", Body: body}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for r.ctrl.Stats().Value(StatLeaves) != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("leaves counter never moved: %s", r.ctrl.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestConfigValidationController(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestBatchingDefersAdmission(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.Batching = true
		c.RekeyInterval = time.Hour
	})
	nonce := crypt.Nonce()
	r.refer("c1", nonce, time.Now())
	r.step6("c1", nonce+2, 7)
	// No welcome until a flush.
	expectNoKind(t, r.cli, wire.KindJoinWelcome, 100*time.Millisecond)
	if got := r.ctrl.PendingEvents(); got != 1 {
		t.Fatalf("PendingEvents = %d", got)
	}
	r.ctrl.FlushBatch()
	recvKind(t, r.cli, wire.KindJoinWelcome)
	if !r.ctrl.HasMember("c1") {
		t.Error("member missing after flush")
	}
}
