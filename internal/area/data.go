package area

import (
	"time"

	"mykil/internal/crypt"
	"mykil/internal/intern"
	"mykil/internal/keytree"
	"mykil/internal/obs"
	"mykil/internal/wire"
)

// flush applies all pending join/leave events in one rekey operation
// (§III-E) and distributes the results.
func (c *Controller) flush() {
	joins := c.pendingJoins
	leaves := c.pendingLeaves
	c.pendingJoins = nil
	c.pendingLeaves = nil
	c.updateNeeded = false
	if len(joins) == 0 && len(leaves) == 0 {
		return
	}
	c.applyBatch(joins, leaves)
}

// applyBatch performs one tree operation covering the given admissions and
// leaves, then sends: step-7/step-6 welcomes to joiners, fresh paths to
// displaced members, and the signed rekey multicast to everyone else.
func (c *Controller) applyBatch(joins []pendingAdmission, leaves []string) {
	// Drain in-flight data-plane jobs first: data sealed under the
	// outgoing area key must reach the wire before the key update does.
	c.dataBarrier()

	joinIDs := make([]keytree.MemberID, 0, len(joins))
	for _, p := range joins {
		joinIDs = append(joinIDs, keytree.MemberID(p.entry.id))
	}
	leaveIDs := make([]keytree.MemberID, 0, len(leaves))
	for _, id := range leaves {
		leaveIDs = append(leaveIDs, keytree.MemberID(id))
	}

	seed := c.armRekeySeed()
	oldAreaKey := c.tree.AreaKey()
	rekeyStart := c.clk.Now()
	res, err := c.tree.Batch(joinIDs, leaveIDs)
	c.detKG.disarm()
	if err != nil {
		c.cfg.Logf("%s: rekey batch failed: %v", c.cfg.ID, err)
		return
	}
	c.rememberAreaKey(oldAreaKey)
	c.lastRekey = c.clk.Now()
	c.hRekeySeconds.Observe(c.lastRekey.Sub(rekeyStart).Seconds())
	c.cRekeys.Inc()
	c.cRekeyEntries.Add(int64(res.Update.NumKeys()))
	var nJoins, nRejoins int64
	for _, p := range joins {
		if p.rejoin {
			nRejoins++
		} else {
			nJoins++
		}
	}
	c.cRejoins.Add(nRejoins)
	c.cJoins.Add(nJoins)
	c.cLeaves.Add(int64(len(leaves)))
	c.trace.Event(obs.ProtoRekey, c.cfg.AreaID, "batch-rekey",
		obs.Int("joins", nJoins), obs.Int("rejoins", nRejoins),
		obs.Int("leaves", int64(len(leaves))),
		obs.Int("entries", int64(res.Update.NumKeys())),
		obs.Uint("epoch", uint64(res.Epoch)))

	for _, id := range leaves {
		delete(c.members, id)
	}
	for _, p := range joins {
		c.members[p.entry.id] = p.entry
	}
	c.armMergeLatch()

	// Durability point: the mutation is journaled before any member sees
	// its effects, so a crash from here on replays to this exact state.
	c.journalBatch(seed, joins, leaves)

	// Unicast welcomes to joiners (join step 7 / rejoin step 6) and fresh
	// paths to members displaced by splits (§III-C). The per-member RSA
	// sealing — the dominant cost of a large batch — fans out across the
	// worker pool; sends happen in order afterwards.
	jobs := make([]sealJob, 0, len(joins)+len(res.Displaced))
	for _, p := range joins {
		path := res.Joined[keytree.MemberID(p.entry.id)]
		if p.rejoin {
			c.trace.Step(obs.ProtoRejoin, p.entry.id, 6, "RejoinWelcome",
				obs.Uint("epoch", uint64(res.Epoch)))
			jobs = append(jobs, sealJob{
				addr: p.entry.addr, to: p.entry.pub, kind: wire.KindRejoinWelcome,
				body: wire.RejoinWelcome{
					TicketBlob: p.entry.ticketBlob,
					Path:       path,
					Epoch:      res.Epoch,
					AreaID:     c.cfg.AreaID,
					BackupAddr: c.backupAddr(),
					BackupPub:  c.backupPubDER(),
					Suite:      c.suite.ID(),
				},
				sign: true,
			})
		} else {
			c.trace.Step(obs.ProtoJoin, p.entry.id, 7, "JoinWelcome",
				obs.Uint("epoch", uint64(res.Epoch)))
			jobs = append(jobs, sealJob{
				addr: p.entry.addr, to: p.entry.pub, kind: wire.KindJoinWelcome,
				body: wire.JoinWelcome{
					NonceCAPlus1: p.nonceCA + 1,
					TicketBlob:   p.entry.ticketBlob,
					Path:         path,
					Epoch:        res.Epoch,
					AreaID:       c.cfg.AreaID,
					BackupAddr:   c.backupAddr(),
					BackupPub:    c.backupPubDER(),
					Suite:        c.suite.ID(),
				},
			})
		}
	}
	for m, path := range res.Displaced {
		entry, ok := c.members[string(m)]
		if !ok {
			continue
		}
		jobs = append(jobs, sealJob{
			addr: entry.addr, to: entry.pub, kind: wire.KindPathUpdate,
			body: wire.PathUpdate{
				AreaID: c.cfg.AreaID,
				Epoch:  res.Epoch,
				Path:   path,
			},
			sign: true,
		})
	}
	c.sealSends(jobs)

	// Multicast the signed rekey message to remaining members (§III-E:
	// "each key update message is signed using the private key of the
	// area controller").
	c.multicastKeyUpdate(res, joins)
	c.markBackupDirty()
}

// multicastKeyUpdate distributes a rekey message to every member that did
// not already receive fresh keys by unicast.
func (c *Controller) multicastKeyUpdate(res *keytree.BatchResult, joins []pendingAdmission) {
	if res.Update == nil || len(res.Update.Entries) == 0 {
		return
	}
	skip := make(map[string]bool, len(joins)+len(res.Displaced))
	for _, p := range joins {
		skip[p.entry.id] = true
	}
	for m := range res.Displaced {
		skip[string(m)] = true
	}
	body, err := wire.PlainBody(wire.KeyUpdate{
		AreaID:  c.cfg.AreaID,
		Epoch:   res.Epoch,
		Entries: res.Update.Entries,
	})
	if err != nil {
		c.cfg.Logf("%s: encoding key update: %v", c.cfg.ID, err)
		return
	}
	f := &wire.Frame{
		Kind: wire.KindKeyUpdate,
		From: c.cfg.Transport.Addr(),
		Body: body,
		Sig:  c.cfg.Keys.Sign(body),
	}
	for id, entry := range c.members {
		if skip[id] {
			continue
		}
		c.send(entry.addr, f)
	}
	c.lastAreaSend = c.clk.Now()
}

// freshnessRekey rotates the area key with no membership change (§III-E
// condition 2).
func (c *Controller) freshnessRekey() {
	c.dataBarrier()
	seed := c.armRekeySeed()
	oldAreaKey := c.tree.AreaKey()
	rekeyStart := c.clk.Now()
	res := c.tree.RefreshAreaKey()
	c.detKG.disarm()
	c.journalFreshness(seed)
	c.rememberAreaKey(oldAreaKey)
	c.lastRekey = c.clk.Now()
	c.hRekeySeconds.Observe(c.lastRekey.Sub(rekeyStart).Seconds())
	c.cRekeys.Inc()
	c.cRekeyEntries.Add(int64(res.Update.NumKeys()))
	c.trace.Event(obs.ProtoRekey, c.cfg.AreaID, "freshness-rekey",
		obs.Int("entries", int64(res.Update.NumKeys())),
		obs.Uint("epoch", uint64(res.Epoch)))
	c.multicastKeyUpdate(res, nil)
	c.markBackupDirty()
}

// handleData forwards one multicast data packet per the Iolus-style rules
// of Fig. 2. A §III-E batching flush, if pending, happens first so members
// hold current keys when the data arrives.
func (c *Controller) handleData(f *wire.Frame) {
	var d wire.Data
	if err := wire.DecodePlain(f.Body, &d); err != nil {
		return
	}
	// Dedup per origin. Sequences start at 1.
	if d.Seq <= c.seenSeq[d.Origin] {
		return
	}
	c.seenSeq[intern.ID(d.Origin)] = d.Seq

	if entry, ok := c.members[d.Origin]; ok && entry.addr == f.From {
		entry.lastSeen = c.clk.Now()
	}

	// §III-E: "The keys are updated just before the multicast data is
	// forwarded."
	if c.updateNeeded {
		c.flush()
	}

	switch d.FromArea {
	case c.cfg.AreaID:
		c.relayOwnAreaData(d, f.From)
	case c.parentAreaID():
		if c.parent != nil {
			c.parent.lastRecv = c.clk.Now()
		}
		c.relayParentData(d, f.From)
	default:
		c.cfg.Logf("%s: data for foreign area %q dropped", c.cfg.ID, d.FromArea)
	}
}

// relayOwnAreaData handles a packet from one of our members (or a child
// controller injecting into our area): relay within the area and forward
// up (Fig. 2). The loop snapshots key material and destinations; the
// crypto and encoding run as one ordered data-plane job.
func (c *Controller) relayOwnAreaData(d wire.Data, from string) {
	suite := c.suite
	areaKey := c.tree.AreaKey()
	history := append([]crypt.SymKey(nil), c.areaKeyHistory...)
	dests := c.memberAddrsExcept(from)
	var parentAddr, parentArea string
	var parentKey crypt.SymKey
	var parentSuite crypt.Suite
	if c.parent != nil {
		parentAddr = c.parent.info.Addr
		parentArea = c.parent.areaID
		parentKey = c.parent.view.AreaKey()
		parentSuite = c.parent.suite
		c.parent.lastSent = c.clk.Now()
	}
	c.lastAreaSend = c.clk.Now()
	id, self, origin := c.cfg.ID, c.cfg.Transport.Addr(), d.Origin

	c.submitData(func() []outbound {
		// If the sender sealed with an area key we have since rotated
		// (its rekey was still in flight), recover and re-seal under the
		// current key.
		dataKey, stale, err := openAreaDataKey(suite, areaKey, history, d.EncKey)
		if err != nil {
			c.cfg.Logf("%s: undecipherable data from %s dropped", id, origin)
			return nil
		}
		if stale {
			d.EncKey = suite.Seal(areaKey, dataKey[:])
			c.trace.Event(obs.ProtoReseal, origin, "reseal-stale-key")
		}
		var out []outbound
		if body, err := wire.PlainBody(d); err == nil {
			relay := &wire.Frame{Kind: wire.KindData, From: self, Body: body}
			for _, addr := range dests {
				out = append(out, outbound{addr, relay})
			}
			c.cDataRelayed.Inc()
		}
		if parentAddr != "" {
			// The Iolus-style hop re-seal crosses the suite boundary too:
			// the parent link's negotiated suite seals the upward copy.
			up := d
			up.FromArea = parentArea
			up.EncKey = parentSuite.Seal(parentKey, dataKey[:])
			if body, err := wire.PlainBody(up); err == nil {
				out = append(out, outbound{parentAddr, &wire.Frame{Kind: wire.KindData, From: self, Body: body}})
				c.cDataForwarded.Inc()
				c.trace.Event(obs.ProtoReseal, origin, "reseal-up", obs.String("to_area", parentArea))
			}
		}
		return out
	})
}

// relayParentData handles a packet arriving from the parent's area:
// re-seal the data key under our own area key and relay down (Fig. 2).
func (c *Controller) relayParentData(d wire.Data, from string) {
	if c.parent == nil {
		return
	}
	parentKey := c.parent.view.AreaKey()
	parentSuite := c.parent.suite
	suite := c.suite
	areaKey := c.tree.AreaKey()
	areaID := c.cfg.AreaID
	dests := c.memberAddrsExcept(from)
	c.lastAreaSend = c.clk.Now()
	id, self := c.cfg.ID, c.cfg.Transport.Addr()

	c.submitData(func() []outbound {
		raw, err := parentSuite.Open(parentKey, d.EncKey)
		if err == nil {
			var dataKey crypt.SymKey
			if dataKey, err = crypt.SymKeyFromBytes(raw); err == nil {
				d.FromArea = areaID
				d.EncKey = suite.Seal(areaKey, dataKey[:])
			}
		}
		if err != nil {
			c.cfg.Logf("%s: resealing data from parent area: %v", id, err)
			return nil
		}
		body, err := wire.PlainBody(d)
		if err != nil {
			return nil
		}
		relay := &wire.Frame{Kind: wire.KindData, From: self, Body: body}
		out := make([]outbound, 0, len(dests))
		for _, addr := range dests {
			out = append(out, outbound{addr, relay})
		}
		c.cDataRelayed.Inc()
		c.trace.Event(obs.ProtoReseal, d.Origin, "reseal-down", obs.String("to_area", areaID))
		return out
	})
}

// memberAddrsExcept snapshots every member address except the frame's
// sender — the relay destinations for one data packet.
func (c *Controller) memberAddrsExcept(exceptAddr string) []string {
	out := make([]string, 0, len(c.members))
	for _, entry := range c.members {
		if entry.addr == exceptAddr {
			continue
		}
		out = append(out, entry.addr)
	}
	return out
}

// areaKeyHistoryCap bounds how many rotated-out area keys are kept for
// in-flight data recovery.
const areaKeyHistoryCap = 8

// rememberAreaKey pushes a rotated-out area key onto the history.
func (c *Controller) rememberAreaKey(k crypt.SymKey) {
	c.areaKeyHistory = append([]crypt.SymKey{k}, c.areaKeyHistory...)
	if len(c.areaKeyHistory) > areaKeyHistoryCap {
		c.areaKeyHistory = c.areaKeyHistory[:areaKeyHistoryCap]
	}
}

// openAreaDataKey recovers K_d from an own-area data packet, trying the
// current area key first and then recent predecessors, all under the
// area's cipher suite. stale reports whether an old key was needed. A
// pure function so data-plane workers can run it on loop-snapshotted
// key material.
func openAreaDataKey(s crypt.Suite, current crypt.SymKey, history []crypt.SymKey, encKey []byte) (key crypt.SymKey, stale bool, err error) {
	if raw, err := s.Open(current, encKey); err == nil {
		k, kerr := crypt.SymKeyFromBytes(raw)
		return k, false, kerr
	}
	for _, old := range history {
		if raw, err := s.Open(old, encKey); err == nil {
			k, kerr := crypt.SymKeyFromBytes(raw)
			return k, true, kerr
		}
	}
	return crypt.SymKey{}, false, crypt.ErrDecrypt
}

// handleMemberAlive refreshes a member's liveness (§IV-A).
func (c *Controller) handleMemberAlive(f *wire.Frame) {
	var msg wire.MemberAlive
	if err := wire.DecodePlain(f.Body, &msg); err != nil {
		return
	}
	if entry, ok := c.members[msg.MemberID]; ok && entry.addr == f.From {
		entry.lastSeen = c.clk.Now()
	}
}

// multicastAlive sends the §IV-A alive message within the area.
func (c *Controller) multicastAlive() {
	body, err := wire.PlainBody(wire.ACAlive{AreaID: c.cfg.AreaID, Epoch: c.tree.Epoch()})
	if err != nil {
		return
	}
	f := &wire.Frame{Kind: wire.KindACAlive, From: c.cfg.Transport.Addr(), Body: body}
	for _, entry := range c.members {
		c.send(entry.addr, f)
	}
	c.trace.Event(obs.ProtoAlive, c.cfg.AreaID, "ACAlive",
		obs.Int("members", int64(len(c.members))), obs.Uint("epoch", uint64(c.tree.Epoch())))
	c.lastAreaSend = c.clk.Now()
}

// evictSilentMembers terminates membership of members silent for
// 5×T_active (§IV-A/§IV-C).
func (c *Controller) evictSilentMembers(now time.Time) {
	threshold := time.Duration(DefaultSilenceFactor) * c.cfg.TActive
	var gone []string
	for id, entry := range c.members {
		if entry.lastSeen.IsZero() {
			continue // already queued to leave in the pending batch
		}
		if now.Sub(entry.lastSeen) > threshold {
			gone = append(gone, id)
		}
	}
	for _, id := range gone {
		c.cfg.Logf("%s: terminating silent member %s", c.cfg.ID, id)
		c.cEvictions.Inc()
		c.trace.Event(obs.ProtoAlive, id, "evict-silent")
		c.removeMember(id)
	}
}
