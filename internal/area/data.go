package area

import (
	"time"

	"mykil/internal/crypt"
	"mykil/internal/keytree"
	"mykil/internal/wire"
)

// flush applies all pending join/leave events in one rekey operation
// (§III-E) and distributes the results.
func (c *Controller) flush() {
	joins := c.pendingJoins
	leaves := c.pendingLeaves
	c.pendingJoins = nil
	c.pendingLeaves = nil
	c.updateNeeded = false
	if len(joins) == 0 && len(leaves) == 0 {
		return
	}
	c.applyBatch(joins, leaves)
}

// applyBatch performs one tree operation covering the given admissions and
// leaves, then sends: step-7/step-6 welcomes to joiners, fresh paths to
// displaced members, and the signed rekey multicast to everyone else.
func (c *Controller) applyBatch(joins []pendingAdmission, leaves []string) {
	joinIDs := make([]keytree.MemberID, 0, len(joins))
	for _, p := range joins {
		joinIDs = append(joinIDs, keytree.MemberID(p.entry.id))
	}
	leaveIDs := make([]keytree.MemberID, 0, len(leaves))
	for _, id := range leaves {
		leaveIDs = append(leaveIDs, keytree.MemberID(id))
	}

	oldAreaKey := c.tree.AreaKey()
	res, err := c.tree.Batch(joinIDs, leaveIDs)
	if err != nil {
		c.cfg.Logf("%s: rekey batch failed: %v", c.cfg.ID, err)
		return
	}
	c.rememberAreaKey(oldAreaKey)
	c.lastRekey = c.clk.Now()
	c.stats.Add(StatRekeys, 1)
	c.stats.Add(StatRekeyEntries, int64(res.Update.NumKeys()))
	for _, p := range joins {
		if p.rejoin {
			c.stats.Add(StatRejoins, 1)
		} else {
			c.stats.Add(StatJoins, 1)
		}
	}
	c.stats.Add(StatLeaves, int64(len(leaves)))

	for _, id := range leaves {
		delete(c.members, id)
	}
	for _, p := range joins {
		c.members[p.entry.id] = p.entry
	}

	// Unicast welcomes to joiners (join step 7 / rejoin step 6).
	for _, p := range joins {
		path := res.Joined[keytree.MemberID(p.entry.id)]
		if p.rejoin {
			c.sendSealed(p.entry.addr, p.entry.pub, wire.KindRejoinWelcome, wire.RejoinWelcome{
				TicketBlob: p.entry.ticketBlob,
				Path:       path,
				Epoch:      res.Epoch,
				AreaID:     c.cfg.AreaID,
				BackupAddr: c.backupAddr(),
				BackupPub:  c.backupPubDER(),
			}, true)
		} else {
			c.sendSealed(p.entry.addr, p.entry.pub, wire.KindJoinWelcome, wire.JoinWelcome{
				NonceCAPlus1: p.nonceCA + 1,
				TicketBlob:   p.entry.ticketBlob,
				Path:         path,
				Epoch:        res.Epoch,
				AreaID:       c.cfg.AreaID,
				BackupAddr:   c.backupAddr(),
				BackupPub:    c.backupPubDER(),
			}, false)
		}
	}

	// Unicast fresh paths to members displaced by splits (§III-C).
	for m, path := range res.Displaced {
		entry, ok := c.members[string(m)]
		if !ok {
			continue
		}
		c.sendSealed(entry.addr, entry.pub, wire.KindPathUpdate, wire.PathUpdate{
			AreaID: c.cfg.AreaID,
			Epoch:  res.Epoch,
			Path:   path,
		}, true)
	}

	// Multicast the signed rekey message to remaining members (§III-E:
	// "each key update message is signed using the private key of the
	// area controller").
	c.multicastKeyUpdate(res, joins)
	c.markBackupDirty()
}

// multicastKeyUpdate distributes a rekey message to every member that did
// not already receive fresh keys by unicast.
func (c *Controller) multicastKeyUpdate(res *keytree.BatchResult, joins []pendingAdmission) {
	if res.Update == nil || len(res.Update.Entries) == 0 {
		return
	}
	skip := make(map[string]bool, len(joins)+len(res.Displaced))
	for _, p := range joins {
		skip[p.entry.id] = true
	}
	for m := range res.Displaced {
		skip[string(m)] = true
	}
	body, err := wire.PlainBody(wire.KeyUpdate{
		AreaID:  c.cfg.AreaID,
		Epoch:   res.Epoch,
		Entries: res.Update.Entries,
	})
	if err != nil {
		c.cfg.Logf("%s: encoding key update: %v", c.cfg.ID, err)
		return
	}
	f := &wire.Frame{
		Kind: wire.KindKeyUpdate,
		From: c.cfg.Transport.Addr(),
		Body: body,
		Sig:  c.cfg.Keys.Sign(body),
	}
	for id, entry := range c.members {
		if skip[id] {
			continue
		}
		c.send(entry.addr, f)
	}
	c.lastAreaSend = c.clk.Now()
}

// freshnessRekey rotates the area key with no membership change (§III-E
// condition 2).
func (c *Controller) freshnessRekey() {
	oldAreaKey := c.tree.AreaKey()
	res := c.tree.RefreshAreaKey()
	c.rememberAreaKey(oldAreaKey)
	c.lastRekey = c.clk.Now()
	c.stats.Add(StatRekeys, 1)
	c.stats.Add(StatRekeyEntries, int64(res.Update.NumKeys()))
	c.multicastKeyUpdate(res, nil)
	c.markBackupDirty()
}

// handleData forwards one multicast data packet per the Iolus-style rules
// of Fig. 2. A §III-E batching flush, if pending, happens first so members
// hold current keys when the data arrives.
func (c *Controller) handleData(f *wire.Frame) {
	var d wire.Data
	if err := wire.DecodePlain(f.Body, &d); err != nil {
		return
	}
	// Dedup per origin. Sequences start at 1.
	if d.Seq <= c.seenSeq[d.Origin] {
		return
	}
	c.seenSeq[d.Origin] = d.Seq

	if entry, ok := c.members[d.Origin]; ok && entry.addr == f.From {
		entry.lastSeen = c.clk.Now()
	}

	// §III-E: "The keys are updated just before the multicast data is
	// forwarded."
	if c.updateNeeded {
		c.flush()
	}

	switch d.FromArea {
	case c.cfg.AreaID:
		// From one of our members (or a child controller injecting into
		// our area): relay within the area and forward up. If the sender
		// sealed with an area key we have since rotated (its rekey was
		// still in flight), recover and re-seal under the current key.
		dataKey, stale, err := c.openAreaDataKey(d.EncKey)
		if err != nil {
			c.cfg.Logf("%s: undecipherable data from %s dropped", c.cfg.ID, d.Origin)
			return
		}
		if stale {
			d.EncKey = crypt.Seal(c.tree.AreaKey(), dataKey[:])
		}
		c.relayToMembers(&d, f.From)
		c.forwardUp(&d, dataKey)
	case c.parentAreaID():
		// From our parent's area: re-seal under our area key and relay
		// down into our area.
		if c.parent != nil {
			c.parent.lastRecv = c.clk.Now()
		}
		reseal, err := c.resealData(&d)
		if err != nil {
			c.cfg.Logf("%s: resealing data from parent area: %v", c.cfg.ID, err)
			return
		}
		c.relayToMembers(reseal, f.From)
	default:
		c.cfg.Logf("%s: data for foreign area %q dropped", c.cfg.ID, d.FromArea)
	}
}

// relayToMembers sends the data frame to every area member except the one
// it arrived from.
func (c *Controller) relayToMembers(d *wire.Data, exceptAddr string) {
	body, err := wire.PlainBody(*d)
	if err != nil {
		return
	}
	f := &wire.Frame{Kind: wire.KindData, From: c.cfg.Transport.Addr(), Body: body}
	for _, entry := range c.members {
		if entry.addr == exceptAddr {
			continue
		}
		c.send(entry.addr, f)
	}
	c.stats.Add(StatDataRelayed, 1)
	c.lastAreaSend = c.clk.Now()
}

// forwardUp re-seals the data key under the parent's area key and sends
// it to the parent controller.
func (c *Controller) forwardUp(d *wire.Data, dataKey crypt.SymKey) {
	if c.parent == nil {
		return
	}
	up := *d
	up.FromArea = c.parent.areaID
	up.EncKey = crypt.Seal(c.parent.view.AreaKey(), dataKey[:])
	body, err := wire.PlainBody(up)
	if err != nil {
		return
	}
	c.send(c.parent.info.Addr, &wire.Frame{
		Kind: wire.KindData,
		From: c.cfg.Transport.Addr(),
		Body: body,
	})
	c.stats.Add(StatDataForwarded, 1)
	c.parent.lastSent = c.clk.Now()
}

// resealData rewraps a parent-area data packet for our own area.
func (c *Controller) resealData(d *wire.Data) (*wire.Data, error) {
	if c.parent == nil {
		return nil, crypt.ErrDecrypt
	}
	raw, err := crypt.Open(c.parent.view.AreaKey(), d.EncKey)
	if err != nil {
		return nil, err
	}
	dataKey, err := crypt.SymKeyFromBytes(raw)
	if err != nil {
		return nil, err
	}
	down := *d
	down.FromArea = c.cfg.AreaID
	down.EncKey = crypt.Seal(c.tree.AreaKey(), dataKey[:])
	return &down, nil
}

// areaKeyHistoryCap bounds how many rotated-out area keys are kept for
// in-flight data recovery.
const areaKeyHistoryCap = 8

// rememberAreaKey pushes a rotated-out area key onto the history.
func (c *Controller) rememberAreaKey(k crypt.SymKey) {
	c.areaKeyHistory = append([]crypt.SymKey{k}, c.areaKeyHistory...)
	if len(c.areaKeyHistory) > areaKeyHistoryCap {
		c.areaKeyHistory = c.areaKeyHistory[:areaKeyHistoryCap]
	}
}

// openAreaDataKey recovers K_d from an own-area data packet, trying the
// current area key first and then recent predecessors. stale reports
// whether an old key was needed.
func (c *Controller) openAreaDataKey(encKey []byte) (key crypt.SymKey, stale bool, err error) {
	if raw, err := crypt.Open(c.tree.AreaKey(), encKey); err == nil {
		k, kerr := crypt.SymKeyFromBytes(raw)
		return k, false, kerr
	}
	for _, old := range c.areaKeyHistory {
		if raw, err := crypt.Open(old, encKey); err == nil {
			k, kerr := crypt.SymKeyFromBytes(raw)
			return k, true, kerr
		}
	}
	return crypt.SymKey{}, false, crypt.ErrDecrypt
}

// handleMemberAlive refreshes a member's liveness (§IV-A).
func (c *Controller) handleMemberAlive(f *wire.Frame) {
	var msg wire.MemberAlive
	if err := wire.DecodePlain(f.Body, &msg); err != nil {
		return
	}
	if entry, ok := c.members[msg.MemberID]; ok && entry.addr == f.From {
		entry.lastSeen = c.clk.Now()
	}
}

// multicastAlive sends the §IV-A alive message within the area.
func (c *Controller) multicastAlive() {
	body, err := wire.PlainBody(wire.ACAlive{AreaID: c.cfg.AreaID, Epoch: c.tree.Epoch()})
	if err != nil {
		return
	}
	f := &wire.Frame{Kind: wire.KindACAlive, From: c.cfg.Transport.Addr(), Body: body}
	for _, entry := range c.members {
		c.send(entry.addr, f)
	}
	c.lastAreaSend = c.clk.Now()
}

// evictSilentMembers terminates membership of members silent for
// 5×T_active (§IV-A/§IV-C).
func (c *Controller) evictSilentMembers(now time.Time) {
	threshold := time.Duration(DefaultSilenceFactor) * c.cfg.TActive
	var gone []string
	for id, entry := range c.members {
		if entry.lastSeen.IsZero() {
			continue // already queued to leave in the pending batch
		}
		if now.Sub(entry.lastSeen) > threshold {
			gone = append(gone, id)
		}
	}
	for _, id := range gone {
		c.cfg.Logf("%s: terminating silent member %s", c.cfg.ID, id)
		c.stats.Add(StatEvictions, 1)
		c.removeMember(id)
	}
}
