package area

import (
	"mykil/internal/crypt"
	"mykil/internal/wire"
)

// This file is the controller's data plane: CPU-heavy crypto and
// encoding (Iolus-style data re-encryption, per-member RSA sealing,
// keytree entry encryption) runs on a bounded worker pool, while the
// control plane — the event loop — keeps sole ownership of protocol
// state. The loop snapshots whatever key material and destination
// addresses a job needs, submits the job, and the pipeline's drain
// goroutine performs the sends in submission order, so per-destination
// wire ordering is exactly what a serial controller would produce.

// outbound is one frame the data plane wants on the wire.
type outbound struct {
	addr  string
	frame *wire.Frame
}

// deliver sends one job's frames. Runs on the pipeline drain goroutine;
// it may only touch the transport, stats, and Logf — all concurrency-safe.
func (c *Controller) deliver(batch []outbound) {
	for _, o := range batch {
		c.send(o.addr, o.frame)
	}
}

// submitData schedules one data-plane job (loop context). Its sends
// happen after every earlier job's and before every later one's.
func (c *Controller) submitData(job func() []outbound) {
	c.dp.Submit(job)
}

// dataBarrier blocks the loop until every in-flight data-plane job has
// been sent (loop context). Called before a rekey is applied so data
// sealed under the outgoing area key cannot overtake the key update on
// the wire — members would otherwise receive undecipherable packets.
func (c *Controller) dataBarrier() {
	c.dp.Barrier()
}

// treeParallel adapts the worker pool to keytree.Config.Parallel, fanning
// per-entry key encryption of large rekey updates across cores.
func (c *Controller) treeParallel(n int, task func(i int)) {
	c.pool.Map(n, task)
}

// sealJob is one sealed unicast to produce: welcome, path update, or any
// other per-member RSA-sealed body.
type sealJob struct {
	addr string
	to   crypt.PublicKey
	kind wire.Kind
	body wire.Marshaler
	sign bool
}

// sealSends seals (and optionally signs) each job on the worker pool —
// RSA encrypt and sign are the dominant per-member batch cost — and
// sends each frame, in job order, as soon as it and its predecessors
// are sealed (loop context). Streaming the sends keeps the first
// welcome on the wire within one seal's latency instead of a whole
// batch's: a large flush no longer leaves the network silent while
// hundreds of seals grind, which both overlaps crypto with delivery
// and gives virtual-time drivers a live traffic signal to pace by.
func (c *Controller) sealSends(jobs []sealJob) {
	if len(jobs) == 0 {
		return
	}
	frames := make([]*wire.Frame, len(jobs))
	errs := make([]error, len(jobs))
	ready := make([]chan struct{}, len(jobs))
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	self := c.cfg.Transport.Addr()
	go c.pool.Map(len(jobs), func(i int) {
		defer close(ready[i])
		j := jobs[i]
		blob, err := wire.SealBody(j.to, j.body)
		if err != nil {
			errs[i] = err
			return
		}
		f := &wire.Frame{Kind: j.kind, From: self, Body: blob}
		if j.sign {
			f.Sig = c.cfg.Keys.Sign(blob)
		}
		frames[i] = f
	})
	for i := range jobs {
		<-ready[i]
		if frames[i] == nil {
			c.cfg.Logf("%s: sealing %v: %v", c.cfg.ID, jobs[i].kind, errs[i])
			continue
		}
		c.send(jobs[i].addr, frames[i])
	}
}
