package area

import (
	"bytes"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mykil/internal/crypt"
	"mykil/internal/keytree"
)

// The golden-state test extends wire-format pinning to the State blob:
// the same bytes travel in ReplicaSync frames and rest in journal
// snapshots, so a silent encoding change would make old journals
// unreadable and mixed-version primary/backup pairs diverge. After an
// INTENTIONAL format change (bump stateFormatV1), regenerate with:
//
//	go test ./internal/area -run TestGoldenState -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_state.txt from the current codec")

const goldenStateFile = "testdata/golden_state.txt"

func goldenSymKey(seed byte) crypt.SymKey {
	var k crypt.SymKey
	for i := range k {
		k[i] = seed + byte(i)
	}
	return k
}

// goldenStates returns deterministic fixtures: every field populated so a
// dropped field cannot hide behind a zero encoding, plus minimal
// variants exercising the optional parent and empty member list.
func goldenStates() map[string]*State {
	tree := &keytree.Snapshot{
		Arity: 4,
		Epoch: 9,
		Nodes: []keytree.SnapshotNode{
			{ID: 0, Parent: -1, Key: goldenSymKey(0x01)},
			{ID: 1, Parent: 0, Key: goldenSymKey(0x11), Member: "m1"},
			{ID: 2, Parent: 0, Key: goldenSymKey(0x21), Member: "m2"},
		},
	}
	full := &State{
		AreaID: "area-0",
		Tree:   tree,
		Members: []MemberState{
			{ID: "m1", Addr: "10.0.0.9:1", PubDER: []byte{1, 2, 3}, TicketBlob: []byte{0x54, 0x4B}, IsChildAC: false},
			{ID: "m2", Addr: "10.0.0.9:2", PubDER: []byte{4, 5}, TicketBlob: []byte{0x54}, IsChildAC: true},
		},
		Parent: &ParentStateExport{
			ID: "ac-p", Addr: "10.0.0.1:7000", PubDER: []byte{0xA1, 0xA2},
			AreaID: "area-p",
			Path: []keytree.PathKey{
				{Node: 7, Key: goldenSymKey(0x31)},
				{Node: 0, Key: goldenSymKey(0x41)},
			},
			Epoch: 18,
		},
		Seq: 42,
	}
	rootOnly := &State{
		AreaID: "area-empty",
		Tree:   &keytree.Snapshot{Arity: 4, Epoch: 1, Nodes: []keytree.SnapshotNode{{ID: 0, Parent: -1, Key: goldenSymKey(0x51)}}},
		Seq:    1,
	}
	return map[string]*State{"full": full, "root-only": rootOnly}
}

func TestGoldenState(t *testing.T) {
	states := goldenStates()
	names := []string{"full", "root-only"}

	if *updateGolden {
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "# Golden State encodings: <name> <hex(EncodeState)>.\n")
		fmt.Fprintf(&buf, "# The same bytes travel in ReplicaSync and rest in journal snapshots.\n")
		fmt.Fprintf(&buf, "# Regenerate ONLY on an intentional format change:\n")
		fmt.Fprintf(&buf, "#   go test ./internal/area -run TestGoldenState -update-golden\n")
		for _, name := range names {
			enc, err := EncodeState(states[name])
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			fmt.Fprintf(&buf, "%s %s\n", name, hex.EncodeToString(enc))
		}
		if err := os.MkdirAll(filepath.Dir(goldenStateFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenStateFile, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenStateFile)
		return
	}

	raw, err := os.ReadFile(goldenStateFile)
	if err != nil {
		t.Fatalf("reading goldens (run with -update-golden to generate): %v", err)
	}
	goldens := make(map[string]string)
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, hexBytes, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed golden line: %q", line)
		}
		goldens[name] = hexBytes
	}

	for _, name := range names {
		st := states[name]
		enc, err := EncodeState(st)
		if err != nil {
			t.Fatalf("%s: EncodeState: %v", name, err)
		}
		want, ok := goldens[name]
		if !ok {
			t.Errorf("%s: missing from %s (regenerate with -update-golden)", name, goldenStateFile)
			continue
		}
		if got := hex.EncodeToString(enc); got != want {
			t.Errorf("%s: state bytes changed\n got: %s\nwant: %s\n(an intentional format change must regenerate the goldens)", name, got, want)
		}

		// Round trip: the decode must reproduce the full structure and
		// re-encode to the identical bytes — the codec is canonical.
		dec, err := DecodeState(enc)
		if err != nil {
			t.Errorf("%s: DecodeState: %v", name, err)
			continue
		}
		if !reflect.DeepEqual(dec, st) {
			t.Errorf("%s: decoded state differs:\n got: %+v\nwant: %+v", name, dec, st)
		}
		re, err := EncodeState(dec)
		if err != nil {
			t.Errorf("%s: re-encode: %v", name, err)
			continue
		}
		if !bytes.Equal(re, enc) {
			t.Errorf("%s: re-encoded state differs from original", name)
		}
	}
}

// TestDecodeStateRejects hardens the state decoder the same way the frame
// fuzzers harden the wire codec: hostile or truncated input must error,
// never panic or over-allocate.
func TestDecodeStateRejects(t *testing.T) {
	enc, err := EncodeState(goldenStates()["full"])
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation of a valid encoding must be rejected.
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeState(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage must be rejected (canonical framing).
	if _, err := DecodeState(append(append([]byte{}, enc...), 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Unknown version byte.
	bad := append([]byte{}, enc...)
	bad[0] = 99
	if _, err := DecodeState(bad); err == nil {
		t.Fatal("unknown version accepted")
	}
	// A member count far exceeding the input must not allocate.
	if _, err := DecodeState([]byte{stateFormatV1, 0x01, 'a', 0x00, 0x04, 0x01, 0x00, 0xFF, 0xFF, 0xFF, 0x7F}); err == nil {
		t.Fatal("hostile member count accepted")
	}
}
