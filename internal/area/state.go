package area

import (
	"fmt"
	"sort"
	"time"

	"mykil/internal/crypt"
	"mykil/internal/intern"
	"mykil/internal/keytree"
	"mykil/internal/wire"
	"mykil/internal/wire/codec"
)

// State is the minimal replicated state of §IV-C: "the complete auxiliary
// tree, public keys of the area members, area controllers and the
// registration server, and the identities of the parent area controller
// and all child area controllers". Multicast data in flight is expressly
// NOT replicated.
type State struct {
	AreaID string
	Tree   *keytree.Snapshot
	// Members carries each member's identity, address, public key,
	// sealed ticket, and child-controller flag.
	Members []MemberState
	// Parent identifies the parent controller and our view of its area.
	Parent *ParentStateExport
	Seq    uint64
}

// MemberState is one member's replicated record.
type MemberState struct {
	ID         string
	Addr       string
	PubDER     []byte
	TicketBlob []byte
	IsChildAC  bool
}

// ParentStateExport captures the parent link. The member view of the
// parent area cannot be reconstructed from the parent's epoch alone, so
// the path keys are included.
type ParentStateExport struct {
	ID     string
	Addr   string
	PubDER []byte
	AreaID string
	Path   []keytree.PathKey
	Epoch  uint64
}

// exportState captures the controller's replicated state. Runs on the
// loop.
func (c *Controller) exportState() *State {
	st := &State{
		AreaID: c.cfg.AreaID,
		Tree:   c.tree.Export(),
		Seq:    c.stateSeq,
	}
	// Members in sorted ID order: identical membership must encode to
	// identical bytes (journal snapshots and replay checks compare them).
	st.Members = make([]MemberState, 0, len(c.members))
	for _, e := range c.members {
		st.Members = append(st.Members, MemberState{
			ID:         e.id,
			Addr:       e.addr,
			PubDER:     e.pubDER,
			TicketBlob: e.ticketBlob,
			IsChildAC:  e.isChildAC,
		})
	}
	sort.Slice(st.Members, func(i, j int) bool { return st.Members[i].ID < st.Members[j].ID })
	if c.parent != nil {
		st.Parent = &ParentStateExport{
			ID:     c.parent.info.ID,
			Addr:   c.parent.info.Addr,
			PubDER: c.parent.info.Pub.Marshal(),
			AreaID: c.parent.areaID,
			Path:   c.parent.view.PathKeys(),
			Epoch:  c.parent.view.Epoch(),
		}
	}
	return st
}

// BootState exports the controller's replicated state before Start,
// while the builder still owns the controller single-threadedly. It is
// how a journal-recovered controller seeds a backup's cold-restore
// state; once the loop is running, use the replica sync protocol
// instead.
func (c *Controller) BootState() *State { return c.exportState() }

// BootMemberAddrs returns the member addresses before Start, while the
// builder still owns the controller single-threadedly. An election
// winner collects them for its Coordinator broadcast, so the advertised
// backup can relay the failover announcement.
func (c *Controller) BootMemberAddrs() []string {
	addrs := make([]string, 0, len(c.members))
	for _, e := range c.members {
		addrs = append(addrs, e.addr)
	}
	sort.Strings(addrs)
	return addrs
}

// BootEpoch returns the key-tree epoch before Start, under the same
// single-threaded ownership contract as BootState.
func (c *Controller) BootEpoch() uint64 { return c.tree.Epoch() }

// stateFormatV1 is the leading version byte of the encoded State. The
// same blob travels inside ReplicaSync frames and rests in journal
// snapshots, so the format is pinned by golden bytes
// (testdata/golden_state.txt) and versioned for forward evolution.
const stateFormatV1 = 1

// memberStateMinWire is the smallest encoded MemberState: four empty
// length prefixes plus the child-AC flag.
const memberStateMinWire = 5

// AppendWire appends the member record's compact encoding.
func (m MemberState) AppendWire(b []byte) []byte {
	b = codec.AppendString(b, m.ID)
	b = codec.AppendString(b, m.Addr)
	b = codec.AppendBytes(b, m.PubDER)
	b = codec.AppendBytes(b, m.TicketBlob)
	return codec.AppendBool(b, m.IsChildAC)
}

// ReadWire decodes a MemberState written by AppendWire.
func (m *MemberState) ReadWire(r *codec.Reader) error {
	m.ID = r.String()
	m.Addr = r.String()
	m.PubDER = r.Bytes()
	m.TicketBlob = r.Bytes()
	m.IsChildAC = r.Bool()
	return r.Err()
}

// AppendWire appends the parent link's compact encoding.
func (p ParentStateExport) AppendWire(b []byte) []byte {
	b = codec.AppendString(b, p.ID)
	b = codec.AppendString(b, p.Addr)
	b = codec.AppendBytes(b, p.PubDER)
	b = codec.AppendString(b, p.AreaID)
	b = keytree.AppendPathKeys(b, p.Path)
	return codec.AppendUvarint(b, p.Epoch)
}

// ReadWire decodes a ParentStateExport written by AppendWire.
func (p *ParentStateExport) ReadWire(r *codec.Reader) error {
	p.ID = r.String()
	p.Addr = r.String()
	p.PubDER = r.Bytes()
	p.AreaID = r.String()
	var err error
	if p.Path, err = keytree.ReadPathKeys(r); err != nil {
		return err
	}
	p.Epoch = r.Uvarint()
	return r.Err()
}

// EncodeState serializes a State with the deterministic wire codec. The
// encoding is canonical — one byte sequence per state — so replica blobs
// diff cleanly and journal snapshots can be golden-pinned. (This replaced
// the last gob fallback; gob now survives only as a comparison baseline
// in _test files.)
func EncodeState(st *State) ([]byte, error) {
	if st.Tree == nil {
		return nil, fmt.Errorf("area: encoding state: nil tree snapshot")
	}
	b := []byte{stateFormatV1}
	b = codec.AppendString(b, st.AreaID)
	b = codec.AppendUvarint(b, st.Seq)
	b = st.Tree.AppendWire(b)
	b = codec.AppendUvarint(b, uint64(len(st.Members)))
	for _, m := range st.Members {
		b = m.AppendWire(b)
	}
	if st.Parent != nil {
		b = codec.AppendBool(b, true)
		b = st.Parent.AppendWire(b)
	} else {
		b = codec.AppendBool(b, false)
	}
	return b, nil
}

// DecodeState reverses EncodeState. Structural validity of the tree is
// checked later by keytree.Import; this layer only guarantees the bytes
// parse canonically and no length prefix out-allocates the input.
func DecodeState(b []byte) (*State, error) {
	r := codec.NewReader(b)
	if v := r.Byte(); r.Err() == nil && v != stateFormatV1 {
		return nil, fmt.Errorf("area: decoding state: unknown format version %d", v)
	}
	st := &State{
		AreaID: r.String(),
		Seq:    r.Uvarint(),
	}
	var err error
	if st.Tree, err = keytree.ReadSnapshot(r); err != nil {
		return nil, fmt.Errorf("area: decoding state tree: %w", err)
	}
	if n := r.Count(memberStateMinWire); n > 0 {
		st.Members = make([]MemberState, n)
		for i := range st.Members {
			if err := st.Members[i].ReadWire(r); err != nil {
				return nil, fmt.Errorf("area: decoding member state: %w", err)
			}
		}
	}
	if r.Bool() {
		st.Parent = &ParentStateExport{}
		if err := st.Parent.ReadWire(r); err != nil {
			return nil, fmt.Errorf("area: decoding parent state: %w", err)
		}
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("area: decoding state: %w", err)
	}
	return st, nil
}

// NewFromState builds a controller whose area state (tree, members,
// parent link) is restored from a replica snapshot — the §IV-C backup
// takeover path. The new controller serves under its own transport,
// identity, and key pair.
func NewFromState(cfg Config, st *State) (*Controller, error) {
	cfg.AreaID = st.AreaID
	c, err := New(cfg)
	if err != nil {
		return nil, err
	}
	tree, err := keytree.Import(st.Tree, c.treeConfig())
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("area: restoring tree: %w", err)
	}
	c.tree = tree
	now := c.clk.Now()
	for _, m := range st.Members {
		pub, err := crypt.ParsePublicKey(m.PubDER)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("area: member %s key: %w", m.ID, err)
		}
		c.members[intern.ID(m.ID)] = &memberEntry{
			id:         intern.ID(m.ID),
			addr:       intern.ID(m.Addr),
			pubDER:     intern.DER(m.PubDER),
			pub:        pub,
			lastSeen:   now,
			ticketBlob: m.TicketBlob,
			isChildAC:  m.IsChildAC,
		}
	}
	if st.Parent != nil {
		pub, err := crypt.ParsePublicKey(st.Parent.PubDER)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("area: parent key: %w", err)
		}
		// Snapshots predate per-link suite bytes; assume the
		// uniform-deployment suite (our own) until re-negotiated.
		c.parent = &parentState{
			info:     PeerInfo{ID: st.Parent.ID, Addr: st.Parent.Addr, Pub: pub},
			areaID:   st.Parent.AreaID,
			view:     keytree.NewMemberView(st.Parent.Path, st.Parent.Epoch, keytree.NewSuiteEncryptor(c.suite)),
			suite:    c.suite,
			lastRecv: now,
			lastSent: now,
		}
	}
	c.stateSeq = st.Seq
	return c, nil
}

// AnnounceFailover multicasts a signed takeover notice to every member of
// the restored area and re-announces to the parent. Call after Start on a
// controller built with NewFromState.
func (c *Controller) AnnounceFailover() {
	c.enqueue(func() {
		body, err := wire.PlainBody(wire.ACFailover{
			AreaID:  c.cfg.AreaID,
			NewAddr: c.cfg.Transport.Addr(),
			NewPub:  c.cfg.Keys.Public().Marshal(),
			Epoch:   c.tree.Epoch(),
		})
		if err != nil {
			return
		}
		f := &wire.Frame{
			Kind: wire.KindACFailover,
			From: c.cfg.Transport.Addr(),
			Body: body,
			Sig:  c.cfg.Keys.Sign(body),
		}
		for _, entry := range c.members {
			c.send(entry.addr, f)
		}
		c.lastAreaSend = c.clk.Now()
		// Resume the member role in the parent area from the new address
		// by re-joining it.
		if c.parent != nil {
			parent := c.parent.info
			c.parent = nil
			c.requestParent(parent)
		}
	})
}

// markBackupDirty schedules a state sync at the next replica tick.
func (c *Controller) markBackupDirty() {
	c.stateSeq++
	if len(c.cfg.Replicas) > 0 && c.cfg.Journal == nil {
		// Journaled controllers replicate pull-based segments instead of
		// pushing full snapshots; only the legacy path marks dirty.
		c.backupDirty = true
	}
}

// replicaPosition is the durability position heartbeats advertise: the
// last journal LSN when journaled, the state sequence otherwise. A
// replica pulls when the advertised position passes what it holds.
func (c *Controller) replicaPosition() uint64 {
	if c.cfg.Journal != nil {
		return c.cfg.Journal.NextLSN() - 1
	}
	return c.stateSeq
}

// replicaHousekeeping ships heartbeats and, when dirty, state snapshots
// to every replica (§IV-C: "Primary and backup servers are synchronized
// during any key updates, and whenever there is a change in the
// parent/child area controllers"). Journaled controllers never push
// snapshots here: replicas notice the heartbeat position advancing and
// pull the journal tail as SegmentPush frames instead.
func (c *Controller) replicaHousekeeping(now time.Time) {
	if len(c.cfg.Replicas) == 0 {
		return
	}
	if c.backupDirty {
		c.backupDirty = false
		st := c.exportState()
		blob, err := EncodeState(st)
		if err != nil {
			c.cfg.Logf("%s: encoding replica state: %v", c.cfg.ID, err)
			return
		}
		for _, rep := range c.cfg.Replicas {
			c.sendSealed(rep.Addr, rep.Pub, wire.KindReplicaSync, wire.ReplicaSync{
				AreaID: c.cfg.AreaID,
				Seq:    st.Seq,
				State:  blob,
			}, true)
			c.cReplBytes.Add(int64(len(blob)))
		}
		c.lastSyncSeq = st.Seq
	}
	if now.Sub(c.lastHeartbeat) >= c.cfg.HeartbeatEvery {
		c.lastHeartbeat = now
		hb := wire.ReplicaHeartbeat{AreaID: c.cfg.AreaID, Seq: c.replicaPosition()}
		for _, rep := range c.cfg.Replicas {
			c.sendPlain(rep.Addr, wire.KindReplicaHeartbeat, hb, true)
		}
	}
}

// replicaBySig finds the configured replica whose key signed the frame.
func (c *Controller) replicaBySig(f *wire.Frame) (PeerInfo, bool) {
	for _, rep := range c.cfg.Replicas {
		if rep.Pub.Verify(f.Body, f.Sig) == nil {
			return rep, true
		}
	}
	return PeerInfo{}, false
}

// handleSegmentPull answers a replica's catch-up request: the journal
// tail from the requested LSN (with a snapshot baseline when the tail
// was compacted away), or — on an unjournaled controller — a full state
// sync, which doubles as lost-sync repair.
func (c *Controller) handleSegmentPull(f *wire.Frame) {
	rep, ok := c.replicaBySig(f)
	if !ok {
		c.cfg.Logf("%s: segment pull from unrecognized replica %s", c.cfg.ID, f.From)
		return
	}
	var req wire.SegmentPull
	if err := wire.DecodePlain(f.Body, &req); err != nil {
		return
	}
	if req.AreaID != "" && req.AreaID != c.cfg.AreaID {
		return
	}
	if c.cfg.Journal == nil {
		st := c.exportState()
		blob, err := EncodeState(st)
		if err != nil {
			c.cfg.Logf("%s: encoding replica state: %v", c.cfg.ID, err)
			return
		}
		c.sendSealed(f.From, rep.Pub, wire.KindReplicaSync, wire.ReplicaSync{
			AreaID: c.cfg.AreaID,
			Seq:    st.Seq,
			State:  blob,
		}, true)
		c.cReplBytes.Add(int64(len(blob)))
		return
	}
	ex, err := c.cfg.Journal.ExportFrom(req.FromLSN)
	if err != nil {
		c.cfg.Logf("%s: exporting journal from LSN %d: %v", c.cfg.ID, req.FromLSN, err)
		return
	}
	c.sendSealed(f.From, rep.Pub, wire.KindSegmentPush, wire.SegmentPush{
		AreaID:         c.cfg.AreaID,
		FromLSN:        ex.FromLSN,
		NextLSN:        ex.NextLSN,
		SnapshotLSN:    ex.SnapshotLSN,
		Snapshot:       ex.Snapshot,
		Records:        ex.Records,
		HeartbeatEvery: c.cfg.HeartbeatEvery,
	}, true)
	n := len(ex.Snapshot)
	for _, r := range ex.Records {
		n += len(r)
	}
	c.cReplBytes.Add(int64(n))
}

// backupAddr returns the advertised replica's address or "".
func (c *Controller) backupAddr() string {
	if len(c.cfg.Replicas) == 0 {
		return ""
	}
	return c.cfg.Replicas[0].Addr
}

// backupPubDER returns the advertised replica's public key or nil.
func (c *Controller) backupPubDER() []byte {
	if len(c.cfg.Replicas) == 0 {
		return nil
	}
	return c.cfg.Replicas[0].Pub.Marshal()
}
