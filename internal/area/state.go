package area

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"mykil/internal/crypt"
	"mykil/internal/keytree"
	"mykil/internal/wire"
)

// State is the minimal replicated state of §IV-C: "the complete auxiliary
// tree, public keys of the area members, area controllers and the
// registration server, and the identities of the parent area controller
// and all child area controllers". Multicast data in flight is expressly
// NOT replicated.
type State struct {
	AreaID string
	Tree   *keytree.Snapshot
	// Members carries each member's identity, address, public key,
	// sealed ticket, and child-controller flag.
	Members []MemberState
	// Parent identifies the parent controller and our view of its area.
	Parent *ParentStateExport
	Seq    uint64
}

// MemberState is one member's replicated record.
type MemberState struct {
	ID         string
	Addr       string
	PubDER     []byte
	TicketBlob []byte
	IsChildAC  bool
}

// ParentStateExport captures the parent link. The member view of the
// parent area cannot be reconstructed from the parent's epoch alone, so
// the path keys are included.
type ParentStateExport struct {
	ID     string
	Addr   string
	PubDER []byte
	AreaID string
	Path   []keytree.PathKey
	Epoch  uint64
}

// exportState captures the controller's replicated state. Runs on the
// loop.
func (c *Controller) exportState() *State {
	st := &State{
		AreaID: c.cfg.AreaID,
		Tree:   c.tree.Export(),
		Seq:    c.stateSeq,
	}
	st.Members = make([]MemberState, 0, len(c.members))
	for _, e := range c.members {
		st.Members = append(st.Members, MemberState{
			ID:         e.id,
			Addr:       e.addr,
			PubDER:     e.pubDER,
			TicketBlob: e.ticketBlob,
			IsChildAC:  e.isChildAC,
		})
	}
	if c.parent != nil {
		st.Parent = &ParentStateExport{
			ID:     c.parent.info.ID,
			Addr:   c.parent.info.Addr,
			PubDER: c.parent.info.Pub.Marshal(),
			AreaID: c.parent.areaID,
			Path:   c.parent.view.PathKeys(),
			Epoch:  c.parent.view.Epoch(),
		}
	}
	return st
}

// EncodeState serializes a State for transmission.
//
// GOB FALLBACK: this is the one deliberate gob user left in the stack.
// The state snapshot is a large, infrequent blob carried opaquely inside
// ReplicaSync.State — it is not on the per-frame hot path (frame
// envelope, plain bodies, sealed bodies, key-update entries all use
// internal/wire/codec), and its nested tree structure is not worth a
// hand-rolled encoding. Its gob type descriptors are amortized over a
// whole area's state rather than paid per frame.
func EncodeState(st *State) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("area: encoding state: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeState reverses EncodeState.
func DecodeState(b []byte) (*State, error) {
	var st State
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return nil, fmt.Errorf("area: decoding state: %w", err)
	}
	return &st, nil
}

// NewFromState builds a controller whose area state (tree, members,
// parent link) is restored from a replica snapshot — the §IV-C backup
// takeover path. The new controller serves under its own transport,
// identity, and key pair.
func NewFromState(cfg Config, st *State) (*Controller, error) {
	cfg.AreaID = st.AreaID
	c, err := New(cfg)
	if err != nil {
		return nil, err
	}
	tree, err := keytree.Import(st.Tree, keytree.Config{Parallel: c.treeParallel})
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("area: restoring tree: %w", err)
	}
	c.tree = tree
	now := c.clk.Now()
	for _, m := range st.Members {
		pub, err := crypt.ParsePublicKey(m.PubDER)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("area: member %s key: %w", m.ID, err)
		}
		c.members[m.ID] = &memberEntry{
			id:         m.ID,
			addr:       m.Addr,
			pubDER:     m.PubDER,
			pub:        pub,
			lastSeen:   now,
			ticketBlob: m.TicketBlob,
			isChildAC:  m.IsChildAC,
		}
	}
	if st.Parent != nil {
		pub, err := crypt.ParsePublicKey(st.Parent.PubDER)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("area: parent key: %w", err)
		}
		c.parent = &parentState{
			info:     PeerInfo{ID: st.Parent.ID, Addr: st.Parent.Addr, Pub: pub},
			areaID:   st.Parent.AreaID,
			view:     keytree.NewMemberView(st.Parent.Path, st.Parent.Epoch, keytree.SealingEncryptor{}),
			lastRecv: now,
			lastSent: now,
		}
	}
	c.stateSeq = st.Seq
	return c, nil
}

// AnnounceFailover multicasts a signed takeover notice to every member of
// the restored area and re-announces to the parent. Call after Start on a
// controller built with NewFromState.
func (c *Controller) AnnounceFailover() {
	c.enqueue(func() {
		body, err := wire.PlainBody(wire.ACFailover{
			AreaID:  c.cfg.AreaID,
			NewAddr: c.cfg.Transport.Addr(),
			NewPub:  c.cfg.Keys.Public().Marshal(),
			Epoch:   c.tree.Epoch(),
		})
		if err != nil {
			return
		}
		f := &wire.Frame{
			Kind: wire.KindACFailover,
			From: c.cfg.Transport.Addr(),
			Body: body,
			Sig:  c.cfg.Keys.Sign(body),
		}
		for _, entry := range c.members {
			c.send(entry.addr, f)
		}
		c.lastAreaSend = c.clk.Now()
		// Resume the member role in the parent area from the new address
		// by re-joining it.
		if c.parent != nil {
			parent := c.parent.info
			c.parent = nil
			c.requestParent(parent)
		}
	})
}

// markBackupDirty schedules a state sync at the next replica tick.
func (c *Controller) markBackupDirty() {
	c.stateSeq++
	if c.cfg.Backup != nil {
		c.backupDirty = true
	}
}

// replicaHousekeeping ships heartbeats and, when dirty, state snapshots
// to the backup (§IV-C: "Primary and backup servers are synchronized
// during any key updates, and whenever there is a change in the
// parent/child area controllers").
func (c *Controller) replicaHousekeeping(now time.Time) {
	if c.cfg.Backup == nil {
		return
	}
	if c.backupDirty {
		c.backupDirty = false
		st := c.exportState()
		blob, err := EncodeState(st)
		if err != nil {
			c.cfg.Logf("%s: encoding replica state: %v", c.cfg.ID, err)
			return
		}
		c.sendSealed(c.cfg.Backup.Addr, c.cfg.Backup.Pub, wire.KindReplicaSync, wire.ReplicaSync{
			AreaID: c.cfg.AreaID,
			Seq:    st.Seq,
			State:  blob,
		}, true)
		c.lastSyncSeq = st.Seq
	}
	if now.Sub(c.lastHeartbeat) >= c.cfg.HeartbeatEvery {
		c.lastHeartbeat = now
		c.sendPlain(c.cfg.Backup.Addr, wire.KindReplicaHeartbeat, wire.ReplicaHeartbeat{
			AreaID: c.cfg.AreaID,
			Seq:    c.stateSeq,
		}, true)
	}
}

// backupAddr returns the configured backup address or "".
func (c *Controller) backupAddr() string {
	if c.cfg.Backup == nil {
		return ""
	}
	return c.cfg.Backup.Addr
}

// backupPubDER returns the configured backup public key or nil.
func (c *Controller) backupPubDER() []byte {
	if c.cfg.Backup == nil {
		return nil
	}
	return c.cfg.Backup.Pub.Marshal()
}
