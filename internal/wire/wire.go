// Package wire defines Mykil's message formats: the seven join-protocol
// steps (paper Fig. 3), the six rejoin steps (Fig. 7), multicast data and
// rekey messages, failure-detection alive messages, area-tree maintenance,
// and primary-backup replication traffic.
//
// Every transport payload is a Frame: a message kind, the sender address,
// a body, and an optional RSA signature over the body. Bodies are encoded
// with the compact deterministic codec in internal/wire/codec — every
// message struct implements Marshaler/Unmarshaler by hand, so no
// reflection runs and no type descriptors ride along on the wire (the
// paper's bandwidth results count bytes; gob's self-describing streams
// would inflate them). Confidential bodies are produced with SealBody
// (public-key hybrid encryption over the encoding plus an integrity
// digest — the paper's "MAC computed over the first N pieces of
// information"); non-confidential bodies use PlainBody.
package wire

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"mykil/internal/crypt"
	"mykil/internal/keytree"
	"mykil/internal/wire/codec"
)

// Marshaler is the encoding half of the Body interface: it appends the
// message's compact wire form. Implemented with value receivers, so
// both values and pointers marshal.
type Marshaler interface {
	AppendWire(b []byte) []byte
}

// Unmarshaler is the decoding half of the Body interface. Implemented
// with pointer receivers; pass &msg.
type Unmarshaler interface {
	ReadWire(r *codec.Reader) error
}

// Body is implemented by (a pointer to) every message struct in this
// package. NewBody builds an empty Body for a Kind, replacing gob's
// reflective type dispatch with an explicit registry.
type Body interface {
	Marshaler
	Unmarshaler
}

// Kind discriminates frame payload types.
type Kind uint8

// Frame kinds. Values are wire-stable; append only.
const (
	// Join protocol, paper Fig. 3.
	KindJoinRequest   Kind = iota + 1 // step 1, client -> registration server
	KindJoinChallenge                 // step 2, RS -> client
	KindJoinResponse                  // step 3, client -> RS
	KindJoinRefer                     // step 4, RS -> area controller
	KindJoinGrant                     // step 5, RS -> client
	KindJoinToAC                      // step 6, client -> AC
	KindJoinWelcome                   // step 7, AC -> client
	KindJoinDenied                    // refusal at any step

	// Rejoin protocol, paper Fig. 7.
	KindRejoinRequest    // step 1, client -> new AC
	KindRejoinChallenge  // step 2, AC -> client
	KindRejoinResponse   // step 3, client -> AC
	KindRejoinVerifyReq  // step 4, new AC -> old AC
	KindRejoinVerifyResp // step 5, old AC -> new AC
	KindRejoinWelcome    // step 6, AC -> client
	KindRejoinDenied     // refusal

	// Data and key management, §III.
	KindData       // encrypted multicast data
	KindKeyUpdate  // multicast rekey message (signed by the AC)
	KindPathUpdate // unicast fresh path keys (displacement/recovery)

	// Failure detection, §IV-A.
	KindACAlive     // AC -> area members on idle
	KindMemberAlive // member -> AC on inactivity
	KindLeaveNotice // member -> AC voluntary leave
	KindPathRequest // member -> AC: resend my path keys (epoch gap recovery)

	// Area-tree maintenance, §IV-C.
	KindAreaJoinReq    // orphaned AC -> candidate parent AC
	KindAreaJoinAck    // parent AC -> child AC
	KindAreaJoinDenied // refusal

	// Primary-backup replication, §IV-C.
	KindReplicaSync      // primary -> backup state snapshot
	KindReplicaHeartbeat // primary -> backup liveness
	KindACFailover       // backup -> area on takeover

	// Quorum leader election and segment replication.
	KindElection    // candidate replica -> replica set
	KindElectionOK  // voter -> candidate acknowledgement
	KindCoordinator // winner -> replica set
	KindSegmentPull // replica -> primary: journal records wanted
	KindSegmentPush // primary -> replica: journal segment records

	// Dynamic area topology (split/merge).
	KindAreaReassign // AC -> member: rejoin this sibling controller
)

var kindNames = map[Kind]string{
	KindJoinRequest:      "JoinRequest",
	KindJoinChallenge:    "JoinChallenge",
	KindJoinResponse:     "JoinResponse",
	KindJoinRefer:        "JoinRefer",
	KindJoinGrant:        "JoinGrant",
	KindJoinToAC:         "JoinToAC",
	KindJoinWelcome:      "JoinWelcome",
	KindJoinDenied:       "JoinDenied",
	KindRejoinRequest:    "RejoinRequest",
	KindRejoinChallenge:  "RejoinChallenge",
	KindRejoinResponse:   "RejoinResponse",
	KindRejoinVerifyReq:  "RejoinVerifyReq",
	KindRejoinVerifyResp: "RejoinVerifyResp",
	KindRejoinWelcome:    "RejoinWelcome",
	KindRejoinDenied:     "RejoinDenied",
	KindData:             "Data",
	KindKeyUpdate:        "KeyUpdate",
	KindPathUpdate:       "PathUpdate",
	KindACAlive:          "ACAlive",
	KindMemberAlive:      "MemberAlive",
	KindLeaveNotice:      "LeaveNotice",
	KindPathRequest:      "PathRequest",
	KindAreaJoinReq:      "AreaJoinReq",
	KindAreaJoinAck:      "AreaJoinAck",
	KindAreaJoinDenied:   "AreaJoinDenied",
	KindReplicaSync:      "ReplicaSync",
	KindReplicaHeartbeat: "ReplicaHeartbeat",
	KindACFailover:       "ACFailover",
	KindElection:         "Election",
	KindElectionOK:       "ElectionOK",
	KindCoordinator:      "Coordinator",
	KindSegmentPull:      "SegmentPull",
	KindSegmentPush:      "SegmentPush",
	KindAreaReassign:     "AreaReassign",
}

// String returns the kind's protocol name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Errors returned by this package.
var (
	ErrBadFrame  = errors.New("wire: malformed frame")
	ErrBadBody   = errors.New("wire: body does not decode")
	ErrBadDigest = errors.New("wire: body integrity digest mismatch")
)

// Frame is the unit handed to the transport.
type Frame struct {
	Kind Kind
	From string // sender's transport address
	Body []byte
	Sig  []byte // optional RSA signature over Body
}

// Encode serializes the frame: one kind byte, then the length-prefixed
// sender address, body, and signature. The error return is kept for
// transport compatibility; encoding itself cannot fail.
func (f *Frame) Encode() ([]byte, error) {
	b := make([]byte, 0, 1+3*binary.MaxVarintLen32+len(f.From)+len(f.Body)+len(f.Sig))
	b = codec.AppendByte(b, byte(f.Kind))
	b = codec.AppendString(b, f.From)
	b = codec.AppendBytes(b, f.Body)
	b = codec.AppendBytes(b, f.Sig)
	return b, nil
}

// DecodeFrame reverses Frame.Encode. The whole input must be consumed;
// trailing bytes are an error, so every frame has exactly one encoding.
func DecodeFrame(b []byte) (*Frame, error) {
	r := codec.NewReader(b)
	f := &Frame{
		Kind: Kind(r.Byte()),
		From: r.String(),
		Body: r.Bytes(),
		Sig:  r.Bytes(),
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	if f.Kind == 0 {
		return nil, fmt.Errorf("%w: zero kind", ErrBadFrame)
	}
	return f, nil
}

// PlainBody encodes a message struct for use as an unencrypted frame
// body. The error return is kept for call-site compatibility; the codec
// cannot fail on encode.
func PlainBody(v Marshaler) ([]byte, error) {
	return v.AppendWire(make([]byte, 0, 64)), nil
}

// DecodePlain reverses PlainBody, requiring the input to be fully
// consumed.
func DecodePlain(b []byte, v Unmarshaler) error {
	r := codec.NewReader(b)
	if err := v.ReadWire(r); err != nil {
		return fmt.Errorf("%w: %v", ErrBadBody, err)
	}
	if err := r.Finish(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadBody, err)
	}
	return nil
}

// SealBody encrypts a message struct to a recipient public key, prefixing
// the plaintext with a SHA-256 digest — the paper's in-message MAC. Large
// bodies automatically use the one-time-key hybrid path (§V-D).
func SealBody(to crypt.PublicKey, v Marshaler) ([]byte, error) {
	payload, err := PlainBody(v)
	if err != nil {
		return nil, err
	}
	digest := sha256.Sum256(payload)
	blob := make([]byte, 0, len(digest)+len(payload))
	blob = append(blob, digest[:]...)
	blob = append(blob, payload...)
	return to.Encrypt(blob)
}

// OpenBody decrypts and integrity-checks a SealBody blob into v.
func OpenBody(kp *crypt.KeyPair, blob []byte, v Unmarshaler) error {
	pt, err := kp.Decrypt(blob)
	if err != nil {
		return err
	}
	if len(pt) < sha256.Size {
		return ErrBadDigest
	}
	digest := sha256.Sum256(pt[sha256.Size:])
	if !bytes.Equal(digest[:], pt[:sha256.Size]) {
		return ErrBadDigest
	}
	return DecodePlain(pt[sha256.Size:], v)
}

// ACInfo describes one area controller: the directory entry members use
// to find rejoin targets while mobile (§IV-B: "the registration server
// provide[s] a list of all area controllers' addresses and public keys").
type ACInfo struct {
	ID     string
	Addr   string
	PubDER []byte
}

// ---- Join protocol (Fig. 3) ----

// JoinRequest is step 1: {auth-info; Pub_k; Nonce_CW; MAC}_Pub_rs.
type JoinRequest struct {
	AuthInfo   string
	ClientID   string
	ClientAddr string
	ClientPub  []byte // DER
	NonceCW    uint64
}

// JoinChallenge is step 2: {Nonce_CW+1; Nonce_WC; MAC}_Pub_k.
type JoinChallenge struct {
	NonceCWPlus1 uint64
	NonceWC      uint64
}

// JoinResponse is step 3: {Nonce_WC+1; MAC}_Pub_rs.
type JoinResponse struct {
	ClientID     string
	NonceWCPlus1 uint64
}

// JoinRefer is step 4, RS to AC: {Nonce_AC; K_id; ts; Pub_k; MAC}_Pub_ac,
// signed Prv_rs.
type JoinRefer struct {
	NonceAC    uint64
	ClientID   string
	ClientAddr string
	Timestamp  time.Time
	ClientPub  []byte // DER
	// Duration is the membership period the registration server granted;
	// the AC stamps it into the ticket's validity window.
	Duration time.Duration
}

// JoinGrant is step 5, RS to client: {Nonce_AC+1; Pub_AC; MAC}_Pub_k,
// signed Prv_rs. Directory carries all controllers for later rejoins.
type JoinGrant struct {
	NonceACPlus1 uint64
	AC           ACInfo
	Directory    []ACInfo
}

// JoinToAC is step 6, client to AC: {Nonce_AC+2; Nonce_CA; MAC}_Pub_ac.
type JoinToAC struct {
	ClientID     string
	ClientAddr   string
	NonceACPlus2 uint64
	NonceCA      uint64
	// SuiteMask advertises the cipher suites the client speaks
	// (bit 1<<SuiteID). Zero — including every pre-negotiation frame —
	// means legacy-only.
	SuiteMask uint64
}

// JoinWelcome is step 7, AC to client:
// {Nonce_CA+1; ticket; [aux-keys]; MAC}_Pub_k.
type JoinWelcome struct {
	NonceCAPlus1 uint64
	TicketBlob   []byte
	Path         []keytree.PathKey
	Epoch        uint64
	AreaID       string
	// Backup lets members recognize a legitimate failover (§IV-C).
	BackupAddr string
	BackupPub  []byte // DER
	// Suite is the cipher suite the area runs; all subsequent rekey and
	// EncKey sealing between this member and the AC uses it. Zero
	// (SuiteLegacy) is the compatibility default.
	Suite crypt.SuiteID
}

// JoinDenied refuses a join at any step.
type JoinDenied struct {
	ClientID string
	Reason   string
}

// ---- Rejoin protocol (Fig. 7) ----

// RejoinRequest is step 1: {Nonce_CB; ticket; MAC}_Pub_ac_b.
type RejoinRequest struct {
	ClientID   string
	ClientAddr string
	NonceCB    uint64
	TicketBlob []byte
	// SuiteMask advertises the client's cipher suites, as in JoinToAC.
	SuiteMask uint64
}

// RejoinChallenge is step 2: {Nonce_CB+1; Nonce_BC; MAC}_Pub_k.
type RejoinChallenge struct {
	NonceCBPlus1 uint64
	NonceBC      uint64
}

// RejoinResponse is step 3: {Nonce_BC+1; MAC}_Pub_ac_b.
type RejoinResponse struct {
	ClientID     string
	NonceBCPlus1 uint64
}

// RejoinVerifyReq is step 4, new AC to old AC: {K_id; ts; MAC}_Pub_ac_a,
// signed Prv_ac_b — the anti-cohort check.
type RejoinVerifyReq struct {
	ClientID  string
	Timestamp time.Time
}

// RejoinVerifyResp is step 5, old AC to new AC:
// {ticket; ts; MAC}_Pub_ac_b, signed Prv_ac_a.
type RejoinVerifyResp struct {
	ClientID string
	// StillMember is true when the client has not left the old area —
	// the malicious-cohort signal; the new AC must deny the rejoin.
	StillMember bool
	TicketBlob  []byte
	Timestamp   time.Time
}

// RejoinWelcome is step 6: {ticket; [aux-keys]; MAC}_Pub_k, signed
// Prv_ac_b.
type RejoinWelcome struct {
	TicketBlob []byte
	Path       []keytree.PathKey
	Epoch      uint64
	AreaID     string
	BackupAddr string
	BackupPub  []byte
	// Suite is the cipher suite of the area being rejoined.
	Suite crypt.SuiteID
}

// RejoinDenied refuses a rejoin.
type RejoinDenied struct {
	ClientID string
	Reason   string
}

// ---- Data and key management (§III) ----

// DataCipher selects the bulk cipher protecting a Data payload.
type DataCipher uint8

const (
	// CipherAES is authenticated AES-CTR+HMAC (crypt.Seal), the default.
	CipherAES DataCipher = iota + 1
	// CipherRC4 is the paper's §V-E hand-held data path: RC4 keystream,
	// no per-payload authenticator. Confidentiality-only, kept for
	// fidelity with the prototype's PDA experiments.
	CipherRC4
	// CipherGCM protects the payload with the aes-gcm cipher suite
	// (crypt.SuiteAESGCM sealed blob).
	CipherGCM
	// CipherChaCha protects the payload with the chacha20-poly1305
	// cipher suite (crypt.SuiteChaCha20Poly1305 sealed blob).
	CipherChaCha
)

// Data is one multicast data packet: payload encrypted under a random key
// K_d, and K_d sealed under the area key of the area it is traversing. An
// AC crossing an area boundary re-seals only EncKey (Iolus-style, Fig. 2),
// so the cipher choice is end-to-end between members.
type Data struct {
	Origin     string // originating member
	OriginArea string
	Seq        uint64 // per-origin sequence, for dedup across forwarding
	FromArea   string // area the frame is currently traversing
	Cipher     DataCipher
	EncKey     []byte // Seal(areaKey, K_d)
	Payload    []byte // Cipher(K_d, data)
}

// KeyUpdate is the multicast rekey message. The frame carrying it is
// signed with the area controller's private key (§III-E: "each key update
// message is signed using the private key of the area controller").
type KeyUpdate struct {
	AreaID  string
	Epoch   uint64
	Entries []keytree.Entry
}

// PathUpdate delivers fresh path keys to a single member, sealed to its
// public key: displacement during a split, or recovery after missed
// epochs.
type PathUpdate struct {
	AreaID string
	Epoch  uint64
	Path   []keytree.PathKey
}

// ---- Failure detection (§IV-A) ----

// ACAlive is multicast by an area controller within its area whenever it
// has sent nothing for T_idle.
type ACAlive struct {
	AreaID string
	Epoch  uint64
}

// MemberAlive is unicast by a member to its AC whenever it has sent
// nothing for T_active.
type MemberAlive struct {
	MemberID string
}

// LeaveNotice is a voluntary departure announcement.
type LeaveNotice struct {
	MemberID string
}

// PathRequest asks the member's own AC to resend its path keys after the
// member detected an epoch gap (e.g. a transiently lost rekey message).
// The response is a PathUpdate sealed to the member's public key.
type PathRequest struct {
	MemberID string
	Epoch    uint64 // the member's current (stale) epoch
}

// ---- Area-tree maintenance (§IV-C) ----

// AreaJoinReq asks a candidate parent AC to adopt the sender's area:
// {A_c identity; ts; MAC}_Pub_acp, signed by the orphan's private key.
type AreaJoinReq struct {
	ACID      string
	ACAddr    string
	AreaID    string
	Timestamp time.Time
	// SuiteMask advertises the orphan AC's cipher suites; zero means
	// legacy-only.
	SuiteMask uint64
}

// AreaJoinAck admits the orphan AC as a member of the parent area,
// delivering its leaf path in the parent's auxiliary tree.
type AreaJoinAck struct {
	ParentID     string
	ParentAreaID string
	Path         []keytree.PathKey
	Epoch        uint64
	Timestamp    time.Time
	// Suite is the parent area's cipher suite: the child applies parent
	// KeyUpdates and re-seals up-forwarded EncKeys with it.
	Suite crypt.SuiteID
}

// AreaJoinDenied refuses an area join.
type AreaJoinDenied struct {
	ACID   string
	Reason string
}

// ---- Replication (§IV-C) ----

// ReplicaSync carries the primary's minimal replicated state: the
// auxiliary tree, member public keys, and the parent/child controller
// identities. State is pre-encoded by the area package.
type ReplicaSync struct {
	AreaID string
	Seq    uint64
	State  []byte
}

// ReplicaHeartbeat is the primary's periodic liveness signal to its
// backup.
type ReplicaHeartbeat struct {
	AreaID string
	Seq    uint64
}

// ACFailover announces that the backup has taken over the area. Members
// verify the frame signature against the backup public key learned at
// join.
type ACFailover struct {
	AreaID  string
	NewAddr string
	NewPub  []byte // DER
	Epoch   uint64
}

// ---- Quorum leader election and segment replication ----

// Election opens a Bully-style election among an area's replica set
// after the primary falls silent. Candidates are totally ordered by
// (LSN, CandidateID): a voter acknowledges only candidates at least as
// durable as itself, so the winner always holds the longest journal.
type Election struct {
	AreaID      string
	CandidateID string
	LSN         uint64 // next journal LSN the candidate has applied up to
}

// ElectionOK is a voter's acknowledgement that the candidate may lead.
type ElectionOK struct {
	AreaID  string
	VoterID string
	LSN     uint64 // the voter's own applied LSN, for observability
}

// Coordinator announces the election winner to the replica set. Losers
// re-point their monitoring at the new leader. MemberAddrs carries the
// recovered area's member addresses: members only trust ACFailover
// frames signed by the replica they learned at join, so when a different
// replica wins, that advertised replica relays the announcement to these
// addresses on the winner's behalf.
type Coordinator struct {
	AreaID      string
	LeaderID    string
	Addr        string
	PubDER      []byte // DER
	Epoch       uint64 // key-tree epoch the winner recovered at
	MemberAddrs []string
}

// SegmentPull asks the primary for journal records from FromLSN up. Sent
// by a replica whose applied LSN trails the LSN advertised in the
// primary's heartbeat.
type SegmentPull struct {
	AreaID  string
	FromLSN uint64
}

// SegmentPush ships journal records [FromLSN, NextLSN) to a lagging
// replica. When FromLSN predates the primary's oldest retained segment, a
// baseline state snapshot (as of SnapshotLSN) rides along and Records
// resume from there. HeartbeatEvery carries the primary's configured
// heartbeat cadence so replicas derive their timers from the stream
// instead of duplicating the value in their own config.
type SegmentPush struct {
	AreaID         string
	FromLSN        uint64
	NextLSN        uint64
	SnapshotLSN    uint64
	Snapshot       []byte
	Records        [][]byte
	HeartbeatEvery time.Duration
}

// ---- Dynamic area topology ----

// AreaReassign directs a member to rejoin a sibling controller during an
// area split or merge. The frame is signed by the member's current AC,
// which has pre-vouched the member with the target, so the rejoin skips
// the steps 4-5 verification round-trip.
type AreaReassign struct {
	AreaID     string // the member's current area
	TargetID   string
	TargetAddr string
	TargetPub  []byte // DER
	Reason     string // "split" or "merge"
}
