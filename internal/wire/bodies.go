package wire

import (
	"time"

	"mykil/internal/crypt"
	"mykil/internal/keytree"
	"mykil/internal/wire/codec"
)

// This file implements the Body interface — AppendWire (value receiver)
// and ReadWire (pointer receiver) — for every message struct, plus the
// kind→constructor registry that replaces gob's reflective type
// dispatch. Field order on the wire is declaration order; changing it,
// or a field's encoding, changes the wire format and must trip the
// golden-bytes test.
//
// Encoding conventions:
//   - strings and variable byte fields: uvarint length prefix + raw bytes
//   - nonces: 8 fixed little-endian bytes (uniformly random values would
//     cost 9–10 bytes as varints)
//   - epochs, sequence numbers, counts: uvarint
//   - node IDs: zig-zag varint (see internal/keytree/codec.go)
//   - timestamps: wall-clock seconds (varint) + nanoseconds (uvarint)
//   - durations: zig-zag varint nanoseconds

// bodyFactories maps every Kind to a constructor for its empty body.
// Append-only, like the Kind values themselves.
var bodyFactories = map[Kind]func() Body{
	KindJoinRequest:      func() Body { return new(JoinRequest) },
	KindJoinChallenge:    func() Body { return new(JoinChallenge) },
	KindJoinResponse:     func() Body { return new(JoinResponse) },
	KindJoinRefer:        func() Body { return new(JoinRefer) },
	KindJoinGrant:        func() Body { return new(JoinGrant) },
	KindJoinToAC:         func() Body { return new(JoinToAC) },
	KindJoinWelcome:      func() Body { return new(JoinWelcome) },
	KindJoinDenied:       func() Body { return new(JoinDenied) },
	KindRejoinRequest:    func() Body { return new(RejoinRequest) },
	KindRejoinChallenge:  func() Body { return new(RejoinChallenge) },
	KindRejoinResponse:   func() Body { return new(RejoinResponse) },
	KindRejoinVerifyReq:  func() Body { return new(RejoinVerifyReq) },
	KindRejoinVerifyResp: func() Body { return new(RejoinVerifyResp) },
	KindRejoinWelcome:    func() Body { return new(RejoinWelcome) },
	KindRejoinDenied:     func() Body { return new(RejoinDenied) },
	KindData:             func() Body { return new(Data) },
	KindKeyUpdate:        func() Body { return new(KeyUpdate) },
	KindPathUpdate:       func() Body { return new(PathUpdate) },
	KindACAlive:          func() Body { return new(ACAlive) },
	KindMemberAlive:      func() Body { return new(MemberAlive) },
	KindLeaveNotice:      func() Body { return new(LeaveNotice) },
	KindPathRequest:      func() Body { return new(PathRequest) },
	KindAreaJoinReq:      func() Body { return new(AreaJoinReq) },
	KindAreaJoinAck:      func() Body { return new(AreaJoinAck) },
	KindAreaJoinDenied:   func() Body { return new(AreaJoinDenied) },
	KindReplicaSync:      func() Body { return new(ReplicaSync) },
	KindReplicaHeartbeat: func() Body { return new(ReplicaHeartbeat) },
	KindACFailover:       func() Body { return new(ACFailover) },
	KindElection:         func() Body { return new(Election) },
	KindElectionOK:       func() Body { return new(ElectionOK) },
	KindCoordinator:      func() Body { return new(Coordinator) },
	KindSegmentPull:      func() Body { return new(SegmentPull) },
	KindSegmentPush:      func() Body { return new(SegmentPush) },
	KindAreaReassign:     func() Body { return new(AreaReassign) },
}

// NewBody returns an empty body value for the given kind, or false for
// kinds this build does not know (a newer peer's frame: the dispatch
// layer drops it, the transport does not).
func NewBody(k Kind) (Body, bool) {
	f, ok := bodyFactories[k]
	if !ok {
		return nil, false
	}
	return f(), true
}

// ---- shared helpers ----

func appendACInfo(b []byte, a ACInfo) []byte {
	b = codec.AppendString(b, a.ID)
	b = codec.AppendString(b, a.Addr)
	return codec.AppendBytes(b, a.PubDER)
}

func readACInfo(r *codec.Reader, a *ACInfo) {
	a.ID = r.String()
	a.Addr = r.String()
	a.PubDER = r.Bytes()
}

// acInfoMinWire bounds a directory entry count claim: two length
// prefixes and one byte-field prefix.
const acInfoMinWire = 3

// ---- Join protocol (Fig. 3) ----

// AppendWire implements Marshaler.
func (m JoinRequest) AppendWire(b []byte) []byte {
	b = codec.AppendString(b, m.AuthInfo)
	b = codec.AppendString(b, m.ClientID)
	b = codec.AppendString(b, m.ClientAddr)
	b = codec.AppendBytes(b, m.ClientPub)
	return codec.AppendUint64(b, m.NonceCW)
}

// ReadWire implements Unmarshaler.
func (m *JoinRequest) ReadWire(r *codec.Reader) error {
	m.AuthInfo = r.String()
	m.ClientID = r.String()
	m.ClientAddr = r.String()
	m.ClientPub = r.Bytes()
	m.NonceCW = r.Uint64()
	return r.Err()
}

// AppendWire implements Marshaler.
func (m JoinChallenge) AppendWire(b []byte) []byte {
	b = codec.AppendUint64(b, m.NonceCWPlus1)
	return codec.AppendUint64(b, m.NonceWC)
}

// ReadWire implements Unmarshaler.
func (m *JoinChallenge) ReadWire(r *codec.Reader) error {
	m.NonceCWPlus1 = r.Uint64()
	m.NonceWC = r.Uint64()
	return r.Err()
}

// AppendWire implements Marshaler.
func (m JoinResponse) AppendWire(b []byte) []byte {
	b = codec.AppendString(b, m.ClientID)
	return codec.AppendUint64(b, m.NonceWCPlus1)
}

// ReadWire implements Unmarshaler.
func (m *JoinResponse) ReadWire(r *codec.Reader) error {
	m.ClientID = r.String()
	m.NonceWCPlus1 = r.Uint64()
	return r.Err()
}

// AppendWire implements Marshaler.
func (m JoinRefer) AppendWire(b []byte) []byte {
	b = codec.AppendUint64(b, m.NonceAC)
	b = codec.AppendString(b, m.ClientID)
	b = codec.AppendString(b, m.ClientAddr)
	b = codec.AppendTime(b, m.Timestamp)
	b = codec.AppendBytes(b, m.ClientPub)
	return codec.AppendVarint(b, int64(m.Duration))
}

// ReadWire implements Unmarshaler.
func (m *JoinRefer) ReadWire(r *codec.Reader) error {
	m.NonceAC = r.Uint64()
	m.ClientID = r.String()
	m.ClientAddr = r.String()
	m.Timestamp = r.Time()
	m.ClientPub = r.Bytes()
	m.Duration = time.Duration(r.Varint())
	return r.Err()
}

// AppendWire implements Marshaler.
func (m JoinGrant) AppendWire(b []byte) []byte {
	b = codec.AppendUint64(b, m.NonceACPlus1)
	b = appendACInfo(b, m.AC)
	b = codec.AppendUvarint(b, uint64(len(m.Directory)))
	for _, e := range m.Directory {
		b = appendACInfo(b, e)
	}
	return b
}

// ReadWire implements Unmarshaler.
func (m *JoinGrant) ReadWire(r *codec.Reader) error {
	m.NonceACPlus1 = r.Uint64()
	readACInfo(r, &m.AC)
	if n := r.Count(acInfoMinWire); n > 0 {
		m.Directory = make([]ACInfo, n)
		for i := range m.Directory {
			readACInfo(r, &m.Directory[i])
		}
	} else {
		m.Directory = nil
	}
	return r.Err()
}

// AppendWire implements Marshaler.
func (m JoinToAC) AppendWire(b []byte) []byte {
	b = codec.AppendString(b, m.ClientID)
	b = codec.AppendString(b, m.ClientAddr)
	b = codec.AppendUint64(b, m.NonceACPlus2)
	b = codec.AppendUint64(b, m.NonceCA)
	return codec.AppendUvarint(b, m.SuiteMask)
}

// ReadWire implements Unmarshaler.
func (m *JoinToAC) ReadWire(r *codec.Reader) error {
	m.ClientID = r.String()
	m.ClientAddr = r.String()
	m.NonceACPlus2 = r.Uint64()
	m.NonceCA = r.Uint64()
	m.SuiteMask = r.Uvarint()
	return r.Err()
}

// AppendWire implements Marshaler.
func (m JoinWelcome) AppendWire(b []byte) []byte {
	b = codec.AppendUint64(b, m.NonceCAPlus1)
	b = codec.AppendBytes(b, m.TicketBlob)
	b = keytree.AppendPathKeys(b, m.Path)
	b = codec.AppendUvarint(b, m.Epoch)
	b = codec.AppendString(b, m.AreaID)
	b = codec.AppendString(b, m.BackupAddr)
	b = codec.AppendBytes(b, m.BackupPub)
	return codec.AppendUvarint(b, uint64(m.Suite))
}

// ReadWire implements Unmarshaler.
func (m *JoinWelcome) ReadWire(r *codec.Reader) error {
	m.NonceCAPlus1 = r.Uint64()
	m.TicketBlob = r.Bytes()
	var err error
	if m.Path, err = keytree.ReadPathKeys(r); err != nil {
		return err
	}
	m.Epoch = r.Uvarint()
	m.AreaID = r.String()
	m.BackupAddr = r.String()
	m.BackupPub = r.Bytes()
	m.Suite = crypt.SuiteID(r.Uvarint())
	return r.Err()
}

// AppendWire implements Marshaler.
func (m JoinDenied) AppendWire(b []byte) []byte {
	b = codec.AppendString(b, m.ClientID)
	return codec.AppendString(b, m.Reason)
}

// ReadWire implements Unmarshaler.
func (m *JoinDenied) ReadWire(r *codec.Reader) error {
	m.ClientID = r.String()
	m.Reason = r.String()
	return r.Err()
}

// ---- Rejoin protocol (Fig. 7) ----

// AppendWire implements Marshaler.
func (m RejoinRequest) AppendWire(b []byte) []byte {
	b = codec.AppendString(b, m.ClientID)
	b = codec.AppendString(b, m.ClientAddr)
	b = codec.AppendUint64(b, m.NonceCB)
	b = codec.AppendBytes(b, m.TicketBlob)
	return codec.AppendUvarint(b, m.SuiteMask)
}

// ReadWire implements Unmarshaler.
func (m *RejoinRequest) ReadWire(r *codec.Reader) error {
	m.ClientID = r.String()
	m.ClientAddr = r.String()
	m.NonceCB = r.Uint64()
	m.TicketBlob = r.Bytes()
	m.SuiteMask = r.Uvarint()
	return r.Err()
}

// AppendWire implements Marshaler.
func (m RejoinChallenge) AppendWire(b []byte) []byte {
	b = codec.AppendUint64(b, m.NonceCBPlus1)
	return codec.AppendUint64(b, m.NonceBC)
}

// ReadWire implements Unmarshaler.
func (m *RejoinChallenge) ReadWire(r *codec.Reader) error {
	m.NonceCBPlus1 = r.Uint64()
	m.NonceBC = r.Uint64()
	return r.Err()
}

// AppendWire implements Marshaler.
func (m RejoinResponse) AppendWire(b []byte) []byte {
	b = codec.AppendString(b, m.ClientID)
	return codec.AppendUint64(b, m.NonceBCPlus1)
}

// ReadWire implements Unmarshaler.
func (m *RejoinResponse) ReadWire(r *codec.Reader) error {
	m.ClientID = r.String()
	m.NonceBCPlus1 = r.Uint64()
	return r.Err()
}

// AppendWire implements Marshaler.
func (m RejoinVerifyReq) AppendWire(b []byte) []byte {
	b = codec.AppendString(b, m.ClientID)
	return codec.AppendTime(b, m.Timestamp)
}

// ReadWire implements Unmarshaler.
func (m *RejoinVerifyReq) ReadWire(r *codec.Reader) error {
	m.ClientID = r.String()
	m.Timestamp = r.Time()
	return r.Err()
}

// AppendWire implements Marshaler.
func (m RejoinVerifyResp) AppendWire(b []byte) []byte {
	b = codec.AppendString(b, m.ClientID)
	b = codec.AppendBool(b, m.StillMember)
	b = codec.AppendBytes(b, m.TicketBlob)
	return codec.AppendTime(b, m.Timestamp)
}

// ReadWire implements Unmarshaler.
func (m *RejoinVerifyResp) ReadWire(r *codec.Reader) error {
	m.ClientID = r.String()
	m.StillMember = r.Bool()
	m.TicketBlob = r.Bytes()
	m.Timestamp = r.Time()
	return r.Err()
}

// AppendWire implements Marshaler.
func (m RejoinWelcome) AppendWire(b []byte) []byte {
	b = codec.AppendBytes(b, m.TicketBlob)
	b = keytree.AppendPathKeys(b, m.Path)
	b = codec.AppendUvarint(b, m.Epoch)
	b = codec.AppendString(b, m.AreaID)
	b = codec.AppendString(b, m.BackupAddr)
	b = codec.AppendBytes(b, m.BackupPub)
	return codec.AppendUvarint(b, uint64(m.Suite))
}

// ReadWire implements Unmarshaler.
func (m *RejoinWelcome) ReadWire(r *codec.Reader) error {
	m.TicketBlob = r.Bytes()
	var err error
	if m.Path, err = keytree.ReadPathKeys(r); err != nil {
		return err
	}
	m.Epoch = r.Uvarint()
	m.AreaID = r.String()
	m.BackupAddr = r.String()
	m.BackupPub = r.Bytes()
	m.Suite = crypt.SuiteID(r.Uvarint())
	return r.Err()
}

// AppendWire implements Marshaler.
func (m RejoinDenied) AppendWire(b []byte) []byte {
	b = codec.AppendString(b, m.ClientID)
	return codec.AppendString(b, m.Reason)
}

// ReadWire implements Unmarshaler.
func (m *RejoinDenied) ReadWire(r *codec.Reader) error {
	m.ClientID = r.String()
	m.Reason = r.String()
	return r.Err()
}

// ---- Data and key management (§III) ----

// AppendWire implements Marshaler.
func (m Data) AppendWire(b []byte) []byte {
	b = codec.AppendString(b, m.Origin)
	b = codec.AppendString(b, m.OriginArea)
	b = codec.AppendUvarint(b, m.Seq)
	b = codec.AppendString(b, m.FromArea)
	b = codec.AppendByte(b, byte(m.Cipher))
	b = codec.AppendBytes(b, m.EncKey)
	return codec.AppendBytes(b, m.Payload)
}

// ReadWire implements Unmarshaler.
func (m *Data) ReadWire(r *codec.Reader) error {
	m.Origin = r.String()
	m.OriginArea = r.String()
	m.Seq = r.Uvarint()
	m.FromArea = r.String()
	m.Cipher = DataCipher(r.Byte())
	m.EncKey = r.Bytes()
	m.Payload = r.Bytes()
	return r.Err()
}

// AppendWire implements Marshaler.
func (m KeyUpdate) AppendWire(b []byte) []byte {
	b = codec.AppendString(b, m.AreaID)
	b = codec.AppendUvarint(b, m.Epoch)
	return keytree.AppendEntries(b, m.Entries)
}

// ReadWire implements Unmarshaler.
func (m *KeyUpdate) ReadWire(r *codec.Reader) error {
	m.AreaID = r.String()
	m.Epoch = r.Uvarint()
	var err error
	m.Entries, err = keytree.ReadEntries(r)
	return err
}

// AppendWire implements Marshaler.
func (m PathUpdate) AppendWire(b []byte) []byte {
	b = codec.AppendString(b, m.AreaID)
	b = codec.AppendUvarint(b, m.Epoch)
	return keytree.AppendPathKeys(b, m.Path)
}

// ReadWire implements Unmarshaler.
func (m *PathUpdate) ReadWire(r *codec.Reader) error {
	m.AreaID = r.String()
	m.Epoch = r.Uvarint()
	var err error
	m.Path, err = keytree.ReadPathKeys(r)
	return err
}

// ---- Failure detection (§IV-A) ----

// AppendWire implements Marshaler.
func (m ACAlive) AppendWire(b []byte) []byte {
	b = codec.AppendString(b, m.AreaID)
	return codec.AppendUvarint(b, m.Epoch)
}

// ReadWire implements Unmarshaler.
func (m *ACAlive) ReadWire(r *codec.Reader) error {
	m.AreaID = r.String()
	m.Epoch = r.Uvarint()
	return r.Err()
}

// AppendWire implements Marshaler.
func (m MemberAlive) AppendWire(b []byte) []byte {
	return codec.AppendString(b, m.MemberID)
}

// ReadWire implements Unmarshaler.
func (m *MemberAlive) ReadWire(r *codec.Reader) error {
	m.MemberID = r.String()
	return r.Err()
}

// AppendWire implements Marshaler.
func (m LeaveNotice) AppendWire(b []byte) []byte {
	return codec.AppendString(b, m.MemberID)
}

// ReadWire implements Unmarshaler.
func (m *LeaveNotice) ReadWire(r *codec.Reader) error {
	m.MemberID = r.String()
	return r.Err()
}

// AppendWire implements Marshaler.
func (m PathRequest) AppendWire(b []byte) []byte {
	b = codec.AppendString(b, m.MemberID)
	return codec.AppendUvarint(b, m.Epoch)
}

// ReadWire implements Unmarshaler.
func (m *PathRequest) ReadWire(r *codec.Reader) error {
	m.MemberID = r.String()
	m.Epoch = r.Uvarint()
	return r.Err()
}

// ---- Area-tree maintenance (§IV-C) ----

// AppendWire implements Marshaler.
func (m AreaJoinReq) AppendWire(b []byte) []byte {
	b = codec.AppendString(b, m.ACID)
	b = codec.AppendString(b, m.ACAddr)
	b = codec.AppendString(b, m.AreaID)
	b = codec.AppendTime(b, m.Timestamp)
	return codec.AppendUvarint(b, m.SuiteMask)
}

// ReadWire implements Unmarshaler.
func (m *AreaJoinReq) ReadWire(r *codec.Reader) error {
	m.ACID = r.String()
	m.ACAddr = r.String()
	m.AreaID = r.String()
	m.Timestamp = r.Time()
	m.SuiteMask = r.Uvarint()
	return r.Err()
}

// AppendWire implements Marshaler.
func (m AreaJoinAck) AppendWire(b []byte) []byte {
	b = codec.AppendString(b, m.ParentID)
	b = codec.AppendString(b, m.ParentAreaID)
	b = keytree.AppendPathKeys(b, m.Path)
	b = codec.AppendUvarint(b, m.Epoch)
	b = codec.AppendTime(b, m.Timestamp)
	return codec.AppendUvarint(b, uint64(m.Suite))
}

// ReadWire implements Unmarshaler.
func (m *AreaJoinAck) ReadWire(r *codec.Reader) error {
	m.ParentID = r.String()
	m.ParentAreaID = r.String()
	var err error
	if m.Path, err = keytree.ReadPathKeys(r); err != nil {
		return err
	}
	m.Epoch = r.Uvarint()
	m.Timestamp = r.Time()
	m.Suite = crypt.SuiteID(r.Uvarint())
	return r.Err()
}

// AppendWire implements Marshaler.
func (m AreaJoinDenied) AppendWire(b []byte) []byte {
	b = codec.AppendString(b, m.ACID)
	return codec.AppendString(b, m.Reason)
}

// ReadWire implements Unmarshaler.
func (m *AreaJoinDenied) ReadWire(r *codec.Reader) error {
	m.ACID = r.String()
	m.Reason = r.String()
	return r.Err()
}

// ---- Replication (§IV-C) ----

// AppendWire implements Marshaler.
func (m ReplicaSync) AppendWire(b []byte) []byte {
	b = codec.AppendString(b, m.AreaID)
	b = codec.AppendUvarint(b, m.Seq)
	return codec.AppendBytes(b, m.State)
}

// ReadWire implements Unmarshaler.
func (m *ReplicaSync) ReadWire(r *codec.Reader) error {
	m.AreaID = r.String()
	m.Seq = r.Uvarint()
	m.State = r.Bytes()
	return r.Err()
}

// AppendWire implements Marshaler.
func (m ReplicaHeartbeat) AppendWire(b []byte) []byte {
	b = codec.AppendString(b, m.AreaID)
	return codec.AppendUvarint(b, m.Seq)
}

// ReadWire implements Unmarshaler.
func (m *ReplicaHeartbeat) ReadWire(r *codec.Reader) error {
	m.AreaID = r.String()
	m.Seq = r.Uvarint()
	return r.Err()
}

// AppendWire implements Marshaler.
func (m ACFailover) AppendWire(b []byte) []byte {
	b = codec.AppendString(b, m.AreaID)
	b = codec.AppendString(b, m.NewAddr)
	b = codec.AppendBytes(b, m.NewPub)
	return codec.AppendUvarint(b, m.Epoch)
}

// ReadWire implements Unmarshaler.
func (m *ACFailover) ReadWire(r *codec.Reader) error {
	m.AreaID = r.String()
	m.NewAddr = r.String()
	m.NewPub = r.Bytes()
	m.Epoch = r.Uvarint()
	return r.Err()
}

// ---- Quorum leader election and segment replication ----

// AppendWire implements Marshaler.
func (m Election) AppendWire(b []byte) []byte {
	b = codec.AppendString(b, m.AreaID)
	b = codec.AppendString(b, m.CandidateID)
	return codec.AppendUvarint(b, m.LSN)
}

// ReadWire implements Unmarshaler.
func (m *Election) ReadWire(r *codec.Reader) error {
	m.AreaID = r.String()
	m.CandidateID = r.String()
	m.LSN = r.Uvarint()
	return r.Err()
}

// AppendWire implements Marshaler.
func (m ElectionOK) AppendWire(b []byte) []byte {
	b = codec.AppendString(b, m.AreaID)
	b = codec.AppendString(b, m.VoterID)
	return codec.AppendUvarint(b, m.LSN)
}

// ReadWire implements Unmarshaler.
func (m *ElectionOK) ReadWire(r *codec.Reader) error {
	m.AreaID = r.String()
	m.VoterID = r.String()
	m.LSN = r.Uvarint()
	return r.Err()
}

// AppendWire implements Marshaler.
func (m Coordinator) AppendWire(b []byte) []byte {
	b = codec.AppendString(b, m.AreaID)
	b = codec.AppendString(b, m.LeaderID)
	b = codec.AppendString(b, m.Addr)
	b = codec.AppendBytes(b, m.PubDER)
	b = codec.AppendUvarint(b, m.Epoch)
	b = codec.AppendUvarint(b, uint64(len(m.MemberAddrs)))
	for _, a := range m.MemberAddrs {
		b = codec.AppendString(b, a)
	}
	return b
}

// ReadWire implements Unmarshaler.
func (m *Coordinator) ReadWire(r *codec.Reader) error {
	m.AreaID = r.String()
	m.LeaderID = r.String()
	m.Addr = r.String()
	m.PubDER = r.Bytes()
	m.Epoch = r.Uvarint()
	// An address is at minimum its own length prefix.
	if n := r.Count(1); n > 0 {
		m.MemberAddrs = make([]string, n)
		for i := range m.MemberAddrs {
			m.MemberAddrs[i] = r.String()
		}
	} else {
		m.MemberAddrs = nil
	}
	return r.Err()
}

// AppendWire implements Marshaler.
func (m SegmentPull) AppendWire(b []byte) []byte {
	b = codec.AppendString(b, m.AreaID)
	return codec.AppendUvarint(b, m.FromLSN)
}

// ReadWire implements Unmarshaler.
func (m *SegmentPull) ReadWire(r *codec.Reader) error {
	m.AreaID = r.String()
	m.FromLSN = r.Uvarint()
	return r.Err()
}

// AppendWire implements Marshaler.
func (m SegmentPush) AppendWire(b []byte) []byte {
	b = codec.AppendString(b, m.AreaID)
	b = codec.AppendUvarint(b, m.FromLSN)
	b = codec.AppendUvarint(b, m.NextLSN)
	b = codec.AppendUvarint(b, m.SnapshotLSN)
	b = codec.AppendBytes(b, m.Snapshot)
	b = codec.AppendUvarint(b, uint64(len(m.Records)))
	for _, rec := range m.Records {
		b = codec.AppendBytes(b, rec)
	}
	return codec.AppendVarint(b, int64(m.HeartbeatEvery))
}

// ReadWire implements Unmarshaler.
func (m *SegmentPush) ReadWire(r *codec.Reader) error {
	m.AreaID = r.String()
	m.FromLSN = r.Uvarint()
	m.NextLSN = r.Uvarint()
	m.SnapshotLSN = r.Uvarint()
	m.Snapshot = r.Bytes()
	// A record is at minimum its own length prefix.
	if n := r.Count(1); n > 0 {
		m.Records = make([][]byte, n)
		for i := range m.Records {
			m.Records[i] = r.Bytes()
		}
	} else {
		m.Records = nil
	}
	m.HeartbeatEvery = time.Duration(r.Varint())
	return r.Err()
}

// ---- Dynamic area topology ----

// AppendWire implements Marshaler.
func (m AreaReassign) AppendWire(b []byte) []byte {
	b = codec.AppendString(b, m.AreaID)
	b = codec.AppendString(b, m.TargetID)
	b = codec.AppendString(b, m.TargetAddr)
	b = codec.AppendBytes(b, m.TargetPub)
	return codec.AppendString(b, m.Reason)
}

// ReadWire implements Unmarshaler.
func (m *AreaReassign) ReadWire(r *codec.Reader) error {
	m.AreaID = r.String()
	m.TargetID = r.String()
	m.TargetAddr = r.String()
	m.TargetPub = r.Bytes()
	m.Reason = r.String()
	return r.Err()
}
