package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"

	"mykil/internal/keytree"
)

// This file is the E12 harness: it compares the codec against the gob
// wire format it replaced, on the message that dominates Mykil's
// bandwidth results — the multicast KeyUpdate. gob is imported here
// deliberately; _test files are the only place outside the replica
// snapshot fallback where it is still allowed.
//
// The gob baseline reproduces the pre-refactor path faithfully: one
// fresh encoder per body and per frame, because each frame must be
// independently decodable by a receiver that has seen no prior traffic
// (a long-lived gob stream would amortize type descriptors but breaks
// exactly that property).

// e12KeyUpdate builds a KeyUpdate with n entries whose ciphertexts are
// ctLen bytes. ctLen 16 matches the paper's accounting mode (AES block
// per key, the mode behind the bandwidth tables); ctLen 64 matches
// crypt.Seal's nonce+tag framing.
func e12KeyUpdate(n, ctLen int) KeyUpdate {
	entries := make([]keytree.Entry, n)
	for i := range entries {
		ct := make([]byte, ctLen)
		for j := range ct {
			ct[j] = byte(i + j)
		}
		entries[i] = keytree.Entry{
			Node:       keytree.NodeID(2*i + 1),
			Under:      keytree.NodeID(4*i + 3),
			Ciphertext: ct,
		}
	}
	return KeyUpdate{AreaID: "area-0", Epoch: 42, Entries: entries}
}

// gobFrame mirrors the old Frame layout for the baseline encoder.
type gobFrame struct {
	Kind Kind
	From string
	Body []byte
	Sig  []byte
}

func gobEncodeFrame(u KeyUpdate, from string, sig []byte) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(u); err != nil {
		return nil, err
	}
	var frame bytes.Buffer
	err := gob.NewEncoder(&frame).Encode(gobFrame{
		Kind: KindKeyUpdate, From: from, Body: body.Bytes(), Sig: sig,
	})
	return frame.Bytes(), err
}

func gobDecodeFrame(b []byte) (KeyUpdate, error) {
	var f gobFrame
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&f); err != nil {
		return KeyUpdate{}, err
	}
	var u KeyUpdate
	err := gob.NewDecoder(bytes.NewReader(f.Body)).Decode(&u)
	return u, err
}

func codecEncodeFrame(u KeyUpdate, from string, sig []byte) ([]byte, error) {
	body, err := PlainBody(u)
	if err != nil {
		return nil, err
	}
	return (&Frame{Kind: KindKeyUpdate, From: from, Body: body, Sig: sig}).Encode()
}

func codecDecodeFrame(b []byte) (KeyUpdate, error) {
	f, err := DecodeFrame(b)
	if err != nil {
		return KeyUpdate{}, err
	}
	var u KeyUpdate
	err = DecodePlain(f.Body, &u)
	return u, err
}

const e12From = "10.0.0.1:7000"

// TestCodecBeatsGobOnSize is E12's size acceptance gate: the codec
// KeyUpdate frame must be at least 30% smaller than the gob frame for
// the representative accounting-mode fixture (15 entries, the steady
// state of a 16-member area), and smaller at every other point we
// report.
func TestCodecBeatsGobOnSize(t *testing.T) {
	sig := make([]byte, 0)
	for _, tc := range []struct {
		entries, ctLen int
		want30         bool
	}{
		{5, 16, true},   // join-mode update, accounting ciphertexts
		{15, 16, true},  // leave-mode update, accounting ciphertexts
		{5, 64, true},   // join-mode update, crypt.Seal ciphertexts
		{15, 64, false}, // leave-mode: gob's per-entry overhead amortizes
	} {
		u := e12KeyUpdate(tc.entries, tc.ctLen)
		gb, err := gobEncodeFrame(u, e12From, sig)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := codecEncodeFrame(u, e12From, sig)
		if err != nil {
			t.Fatal(err)
		}
		saving := 1 - float64(len(cb))/float64(len(gb))
		t.Logf("entries=%d ctLen=%d: gob=%d codec=%d saving=%.1f%%",
			tc.entries, tc.ctLen, len(gb), len(cb), 100*saving)
		if len(cb) >= len(gb) {
			t.Errorf("entries=%d ctLen=%d: codec (%d B) not smaller than gob (%d B)",
				tc.entries, tc.ctLen, len(cb), len(gb))
		}
		if tc.want30 && saving < 0.30 {
			t.Errorf("entries=%d ctLen=%d: saving %.1f%% < 30%%",
				tc.entries, tc.ctLen, 100*saving)
		}
	}
}

func benchSizes() []struct{ entries, ctLen int } {
	return []struct{ entries, ctLen int }{
		{5, 16},
		{15, 16},
		{15, 64},
	}
}

func BenchmarkKeyUpdateEncodeCodec(b *testing.B) {
	for _, s := range benchSizes() {
		b.Run(fmt.Sprintf("entries=%d/ct=%d", s.entries, s.ctLen), func(b *testing.B) {
			u := e12KeyUpdate(s.entries, s.ctLen)
			sig := make([]byte, 128)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := codecEncodeFrame(u, e12From, sig); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkKeyUpdateEncodeGob(b *testing.B) {
	for _, s := range benchSizes() {
		b.Run(fmt.Sprintf("entries=%d/ct=%d", s.entries, s.ctLen), func(b *testing.B) {
			u := e12KeyUpdate(s.entries, s.ctLen)
			sig := make([]byte, 128)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gobEncodeFrame(u, e12From, sig); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkKeyUpdateDecodeCodec(b *testing.B) {
	for _, s := range benchSizes() {
		b.Run(fmt.Sprintf("entries=%d/ct=%d", s.entries, s.ctLen), func(b *testing.B) {
			enc, err := codecEncodeFrame(e12KeyUpdate(s.entries, s.ctLen), e12From, make([]byte, 128))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := codecDecodeFrame(enc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkKeyUpdateDecodeGob(b *testing.B) {
	for _, s := range benchSizes() {
		b.Run(fmt.Sprintf("entries=%d/ct=%d", s.entries, s.ctLen), func(b *testing.B) {
			enc, err := gobEncodeFrame(e12KeyUpdate(s.entries, s.ctLen), e12From, make([]byte, 128))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gobDecodeFrame(enc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
