package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"mykil/internal/crypt"
	"mykil/internal/keytree"
)

var (
	testKP     *crypt.KeyPair
	testKPErr  error
	testKPInit bool
)

func keyPair(t *testing.T) *crypt.KeyPair {
	t.Helper()
	if !testKPInit {
		testKP, testKPErr = crypt.GenerateKeyPair(1024)
		testKPInit = true
	}
	if testKPErr != nil {
		t.Fatalf("generating key pair: %v", testKPErr)
	}
	return testKP
}

func TestFrameRoundTrip(t *testing.T) {
	f := &Frame{
		Kind: KindKeyUpdate,
		From: "ac-1",
		Body: []byte{1, 2, 3},
		Sig:  []byte{9, 8},
	}
	enc, err := f.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeFrame(enc)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if got.Kind != f.Kind || got.From != f.From ||
		!bytes.Equal(got.Body, f.Body) || !bytes.Equal(got.Sig, f.Sig) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestDecodeFrameRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {}, []byte("garbage"), make([]byte, 100)} {
		if _, err := DecodeFrame(b); !errors.Is(err, ErrBadFrame) {
			t.Errorf("DecodeFrame(%d bytes): err=%v, want ErrBadFrame", len(b), err)
		}
	}
}

func TestDecodeFrameRejectsZeroKind(t *testing.T) {
	f := &Frame{Kind: 0, From: "x"}
	enc, err := f.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if _, err := DecodeFrame(enc); !errors.Is(err, ErrBadFrame) {
		t.Errorf("zero kind: err=%v, want ErrBadFrame", err)
	}
}

func TestPlainBodyRoundTrip(t *testing.T) {
	want := ACAlive{AreaID: "area-3", Epoch: 17}
	b, err := PlainBody(want)
	if err != nil {
		t.Fatalf("PlainBody: %v", err)
	}
	var got ACAlive
	if err := DecodePlain(b, &got); err != nil {
		t.Fatalf("DecodePlain: %v", err)
	}
	if got != want {
		t.Errorf("got %+v, want %+v", got, want)
	}
}

func TestDecodePlainRejectsGarbage(t *testing.T) {
	var v ACAlive
	if err := DecodePlain([]byte("junk"), &v); !errors.Is(err, ErrBadBody) {
		t.Errorf("err=%v, want ErrBadBody", err)
	}
}

func TestSealOpenBodySmall(t *testing.T) {
	kp := keyPair(t)
	want := JoinChallenge{NonceCWPlus1: 41, NonceWC: 77}
	blob, err := SealBody(kp.Public(), want)
	if err != nil {
		t.Fatalf("SealBody: %v", err)
	}
	var got JoinChallenge
	if err := OpenBody(kp, blob, &got); err != nil {
		t.Fatalf("OpenBody: %v", err)
	}
	if got != want {
		t.Errorf("got %+v, want %+v", got, want)
	}
}

func TestSealOpenBodyLargePath(t *testing.T) {
	// A JoinWelcome with a deep path exceeds one OAEP block, exercising
	// the paper's §V-D hybrid workaround end to end.
	kp := keyPair(t)
	want := JoinWelcome{
		NonceCAPlus1: 5,
		TicketBlob:   bytes.Repeat([]byte{0x54}, 200),
		Epoch:        12,
		AreaID:       "area-1",
	}
	for i := 0; i < 17; i++ {
		want.Path = append(want.Path, keytree.PathKey{
			Node: keytree.NodeID(i),
			Key:  crypt.NewSymKey(),
		})
	}
	blob, err := SealBody(kp.Public(), want)
	if err != nil {
		t.Fatalf("SealBody: %v", err)
	}
	var got JoinWelcome
	if err := OpenBody(kp, blob, &got); err != nil {
		t.Fatalf("OpenBody: %v", err)
	}
	if got.AreaID != want.AreaID || got.Epoch != want.Epoch || len(got.Path) != len(want.Path) {
		t.Errorf("got %+v", got)
	}
	for i := range want.Path {
		if got.Path[i] != want.Path[i] {
			t.Errorf("path entry %d differs", i)
		}
	}
}

func TestOpenBodyRejectsWrongRecipient(t *testing.T) {
	kp := keyPair(t)
	other, err := crypt.GenerateKeyPair(1024)
	if err != nil {
		t.Fatalf("GenerateKeyPair: %v", err)
	}
	blob, err := SealBody(kp.Public(), MemberAlive{MemberID: "m1"})
	if err != nil {
		t.Fatalf("SealBody: %v", err)
	}
	var got MemberAlive
	if err := OpenBody(other, blob, &got); err == nil {
		t.Error("OpenBody succeeded with the wrong private key")
	}
}

func TestOpenBodyDetectsTamper(t *testing.T) {
	kp := keyPair(t)
	// Large body: the symmetric layer carries the payload, so flipping
	// late bytes tests the digest/auth path rather than RSA.
	msg := PathUpdate{AreaID: "a", Epoch: 3}
	for i := 0; i < 20; i++ {
		msg.Path = append(msg.Path, keytree.PathKey{Node: keytree.NodeID(i), Key: crypt.NewSymKey()})
	}
	blob, err := SealBody(kp.Public(), msg)
	if err != nil {
		t.Fatalf("SealBody: %v", err)
	}
	for _, idx := range []int{len(blob) - 1, len(blob) / 2, 5} {
		mut := bytes.Clone(blob)
		mut[idx] ^= 0x01
		var got PathUpdate
		if err := OpenBody(kp, mut, &got); err == nil {
			t.Errorf("tamper at byte %d accepted", idx)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range kindNames {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(200).String(); got != "Kind(200)" {
		t.Errorf("unknown kind String() = %q", got)
	}
}

func TestAllKindsNamed(t *testing.T) {
	for k := KindJoinRequest; k <= KindACFailover; k++ {
		if _, ok := kindNames[k]; !ok {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestSignedFrameFlow(t *testing.T) {
	// The KeyUpdate path: body signed by the AC, verified by members.
	kp := keyPair(t)
	body, err := PlainBody(KeyUpdate{AreaID: "a1", Epoch: 4})
	if err != nil {
		t.Fatalf("PlainBody: %v", err)
	}
	f := &Frame{Kind: KindKeyUpdate, From: "ac-1", Body: body, Sig: kp.Sign(body)}
	enc, err := f.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeFrame(enc)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if err := kp.Public().Verify(got.Body, got.Sig); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	got.Body[0] ^= 1
	if err := kp.Public().Verify(got.Body, got.Sig); err == nil {
		t.Error("signature verified over altered body")
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(kind uint8, from string, body, sig []byte) bool {
		if kind == 0 {
			kind = 1
		}
		orig := &Frame{Kind: Kind(kind), From: from, Body: body, Sig: sig}
		enc, err := orig.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeFrame(enc)
		if err != nil {
			return false
		}
		return got.Kind == orig.Kind && got.From == orig.From &&
			bytes.Equal(got.Body, orig.Body) && bytes.Equal(got.Sig, orig.Sig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSealedBodyProperty(t *testing.T) {
	kp := keyPair(t)
	f := func(areaID string, epoch uint64, entries []byte) bool {
		want := PathUpdate{AreaID: areaID, Epoch: epoch}
		// Derive a pseudo-random path length from the generated bytes.
		for i := 0; i < len(entries)%20; i++ {
			want.Path = append(want.Path, keytree.PathKey{
				Node: keytree.NodeID(i),
				Key:  crypt.NewSymKey(),
			})
		}
		blob, err := SealBody(kp.Public(), want)
		if err != nil {
			return false
		}
		var got PathUpdate
		if err := OpenBody(kp, blob, &got); err != nil {
			return false
		}
		if got.AreaID != want.AreaID || got.Epoch != want.Epoch || len(got.Path) != len(want.Path) {
			return false
		}
		for i := range want.Path {
			if got.Path[i] != want.Path[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20} // RSA ops per case
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTimestampSurvivesGob(t *testing.T) {
	now := time.Date(2026, 7, 6, 10, 30, 0, 123456789, time.UTC)
	b, err := PlainBody(RejoinVerifyReq{ClientID: "c1", Timestamp: now})
	if err != nil {
		t.Fatalf("PlainBody: %v", err)
	}
	var got RejoinVerifyReq
	if err := DecodePlain(b, &got); err != nil {
		t.Fatalf("DecodePlain: %v", err)
	}
	if !got.Timestamp.Equal(now) {
		t.Errorf("timestamp %v, want %v", got.Timestamp, now)
	}
}
