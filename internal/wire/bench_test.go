package wire

import (
	"testing"
)

// benchFrame is a realistic mid-sized frame: a sealed rejoin-welcome-ish
// body plus an RSA signature.
func benchFrame() *Frame {
	body := make([]byte, 1024)
	for i := range body {
		body[i] = byte(i)
	}
	sig := make([]byte, 256)
	return &Frame{Kind: KindData, From: "ac-0", Body: body, Sig: sig}
}

// BenchmarkFrameEncode measures the hot serialization path every send
// goes through; the single sized allocation is what keeps allocs/op flat.
func BenchmarkFrameEncode(b *testing.B) {
	f := benchFrame()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlainBody measures body encoding, the other per-message
// serialization cost (shared by SealBody).
func BenchmarkPlainBody(b *testing.B) {
	d := Data{
		Origin:   "m1",
		FromArea: "area-0",
		Seq:      42,
		Cipher:   CipherAES,
		EncKey:   make([]byte, 80),
		Payload:  make([]byte, 1024),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlainBody(d); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRepeatedEncodeDeterministic pins the wire format: repeated encodes
// of the same value must be byte-identical (a reused gob encoder would
// drop type descriptors between calls and break this; the codec is
// stateless so every encode stands alone).
func TestRepeatedEncodeDeterministic(t *testing.T) {
	f := benchFrame()
	first, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		again, err := f.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(first) {
			t.Fatalf("encode %d differs from first encode", i)
		}
	}
	got, err := DecodeFrame(first)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != f.Kind || got.From != f.From || string(got.Body) != string(f.Body) {
		t.Fatal("round trip mismatch")
	}
}
