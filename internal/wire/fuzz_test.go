package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame hardens the transport-facing decoder: arbitrary bytes
// must produce an error or a valid frame, never a panic and never an
// allocation larger than the input (length prefixes are capped against
// the bytes actually present). A successful decode must also re-encode
// to the identical bytes — the codec is canonical, so there is exactly
// one encoding per frame.
func FuzzDecodeFrame(f *testing.F) {
	valid, err := (&Frame{Kind: KindData, From: "x", Body: []byte("b"), Sig: []byte("s")}).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Add(make([]byte, 1024))
	// A frame claiming a body far larger than the input.
	f.Add([]byte{byte(KindData), 0x01, 'x', 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if frame.Kind == 0 {
			t.Error("decoded frame with zero kind")
		}
		if len(frame.From)+len(frame.Body)+len(frame.Sig) > len(data) {
			t.Errorf("decoded fields exceed input: %d bytes from %d", len(frame.From)+len(frame.Body)+len(frame.Sig), len(data))
		}
		re, err := frame.Encode()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Errorf("decode/encode not canonical:\n in: %x\nout: %x", data, re)
		}
		// The body must be independently decodable or rejected, never a
		// panic, for every registered kind.
		if body, ok := NewBody(frame.Kind); ok {
			_ = DecodePlain(frame.Body, body)
		}
	})
}

// FuzzDecodePlain hardens every registered body decoder against hostile
// payloads: arbitrary bytes must return an error or a value that
// re-encodes without panicking, and claimed element counts must never
// out-allocate the input.
func FuzzDecodePlain(f *testing.F) {
	for _, m := range []Marshaler{
		KeyUpdate{AreaID: "a", Epoch: 3},
		ACAlive{AreaID: "a", Epoch: 1},
		JoinWelcome{AreaID: "a", TicketBlob: []byte{1}},
	} {
		b, err := PlainBody(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte("x"))
	// A KeyUpdate-shaped prefix claiming 2^32 entries.
	f.Add(append([]byte{0x01, 'a', 0x01}, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F))
	f.Fuzz(func(t *testing.T, data []byte) {
		for k := KindJoinRequest; k <= KindACFailover; k++ {
			body, ok := NewBody(k)
			if !ok {
				t.Fatalf("no registry entry for %v", k)
			}
			if err := DecodePlain(data, body); err != nil {
				continue
			}
			// Accepted payloads must re-encode to the same canonical bytes.
			re, err := PlainBody(body)
			if err != nil {
				t.Fatalf("%v: re-encode: %v", k, err)
			}
			if !bytes.Equal(re, data) {
				t.Errorf("%v: decode/encode not canonical:\n in: %x\nout: %x", k, data, re)
			}
		}
	})
}
