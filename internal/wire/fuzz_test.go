package wire

import (
	"testing"
)

// FuzzDecodeFrame hardens the transport-facing decoder: arbitrary bytes
// must produce an error or a valid frame, never a panic.
func FuzzDecodeFrame(f *testing.F) {
	valid, err := (&Frame{Kind: KindData, From: "x", Body: []byte("b"), Sig: []byte("s")}).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Add(make([]byte, 1024))
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := DecodeFrame(data)
		if err == nil && frame.Kind == 0 {
			t.Error("decoded frame with zero kind")
		}
	})
}

// FuzzDecodePlain hardens the body decoder against hostile payloads.
func FuzzDecodePlain(f *testing.F) {
	valid, err := PlainBody(KeyUpdate{AreaID: "a", Epoch: 3})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte("x"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var u KeyUpdate
		_ = DecodePlain(data, &u) // must not panic
	})
}
