package codec

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"time"
)

func TestScalarRoundTrip(t *testing.T) {
	var b []byte
	now := time.Date(2026, 8, 5, 12, 30, 45, 987654321, time.UTC)
	b = AppendUvarint(b, 300)
	b = AppendVarint(b, -7)
	b = AppendUint64(b, math.MaxUint64)
	b = AppendByte(b, 0x42)
	b = AppendBool(b, true)
	b = AppendBool(b, false)
	b = AppendBytes(b, []byte{1, 2, 3})
	b = AppendString(b, "héllo")
	b = AppendRaw(b, []byte{9, 9})
	b = AppendTime(b, now)

	r := NewReader(b)
	if v := r.Uvarint(); v != 300 {
		t.Errorf("Uvarint = %d", v)
	}
	if v := r.Varint(); v != -7 {
		t.Errorf("Varint = %d", v)
	}
	if v := r.Uint64(); v != math.MaxUint64 {
		t.Errorf("Uint64 = %d", v)
	}
	if v := r.Byte(); v != 0x42 {
		t.Errorf("Byte = %x", v)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if v := r.Bytes(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", v)
	}
	if v := r.String(); v != "héllo" {
		t.Errorf("String = %q", v)
	}
	if v := r.Raw(2); !bytes.Equal(v, []byte{9, 9}) {
		t.Errorf("Raw = %v", v)
	}
	if v := r.Time(); !v.Equal(now) {
		t.Errorf("Time = %v, want %v", v, now)
	}
	if err := r.Finish(); err != nil {
		t.Errorf("Finish: %v", err)
	}
}

func TestEmptyBytesDecodeNil(t *testing.T) {
	b := AppendBytes(nil, nil)
	b = AppendString(b, "")
	r := NewReader(b)
	if v := r.Bytes(); v != nil {
		t.Errorf("Bytes = %v, want nil", v)
	}
	if v := r.String(); v != "" {
		t.Errorf("String = %q", v)
	}
	if err := r.Finish(); err != nil {
		t.Errorf("Finish: %v", err)
	}
}

func TestReaderTruncation(t *testing.T) {
	r := NewReader([]byte{0x05, 0x01}) // claims 5 bytes, has 1
	if v := r.Bytes(); v != nil {
		t.Errorf("Bytes on truncated input = %v", v)
	}
	if !errors.Is(r.Err(), ErrLength) {
		t.Errorf("Err = %v, want ErrLength", r.Err())
	}
	// Sticky: further reads fail quietly.
	if v := r.Uint64(); v != 0 {
		t.Errorf("post-error Uint64 = %d", v)
	}
}

func TestReaderTrailing(t *testing.T) {
	r := NewReader([]byte{1, 2})
	r.Byte()
	if err := r.Finish(); !errors.Is(err, ErrTrailing) {
		t.Errorf("Finish = %v, want ErrTrailing", err)
	}
}

func TestBoolRejectsNonCanonical(t *testing.T) {
	r := NewReader([]byte{2})
	r.Bool()
	if !errors.Is(r.Err(), ErrValue) {
		t.Errorf("Err = %v, want ErrValue", r.Err())
	}
}

func TestCountRejectsHugeClaims(t *testing.T) {
	// Claims 2^60 elements of at least 17 bytes each on a 3-byte input.
	b := AppendUvarint(nil, 1<<60)
	r := NewReader(b)
	if n := r.Count(17); n != 0 {
		t.Errorf("Count = %d, want 0", n)
	}
	if !errors.Is(r.Err(), ErrLength) {
		t.Errorf("Err = %v, want ErrLength", r.Err())
	}
}

func TestUvarintRejectsNonMinimal(t *testing.T) {
	cases := [][]byte{
		{0x80, 0x00},                   // 0 in two bytes
		{0xFF, 0x00},                   // 127 in two bytes
		{0x80, 0x80, 0x80, 0x80, 0x00}, // 0 in five bytes
	}
	for _, in := range cases {
		r := NewReader(in)
		r.Uvarint()
		if !errors.Is(r.Err(), ErrValue) {
			t.Errorf("Uvarint(% x): err = %v, want ErrValue", in, r.Err())
		}
	}
	// The minimal forms still decode.
	r := NewReader([]byte{0x00, 0x7F})
	if v := r.Uvarint(); v != 0 {
		t.Errorf("Uvarint = %d, want 0", v)
	}
	if v := r.Uvarint(); v != 127 {
		t.Errorf("Uvarint = %d, want 127", v)
	}
	if err := r.Finish(); err != nil {
		t.Errorf("Finish: %v", err)
	}
}

func TestUvarintRejectsOverflow(t *testing.T) {
	// Eleven continuation bytes: exceeds 64 bits.
	in := bytes.Repeat([]byte{0xFF}, 10)
	in = append(in, 0x7F)
	r := NewReader(in)
	r.Uvarint()
	if !errors.Is(r.Err(), ErrValue) {
		t.Errorf("err = %v, want ErrValue", r.Err())
	}
}

func TestVarintRoundTripExtremes(t *testing.T) {
	for _, v := range []int64{0, 1, -1, math.MaxInt64, math.MinInt64} {
		b := AppendVarint(nil, v)
		r := NewReader(b)
		if got := r.Varint(); got != v {
			t.Errorf("Varint(%d) = %d", v, got)
		}
		if err := r.Finish(); err != nil {
			t.Errorf("Varint(%d) Finish: %v", v, err)
		}
	}
}

func TestTimeRejectsOverflowNanos(t *testing.T) {
	b := AppendVarint(nil, 0)
	b = AppendUvarint(b, 2e9)
	r := NewReader(b)
	r.Time()
	if !errors.Is(r.Err(), ErrValue) {
		t.Errorf("Err = %v, want ErrValue", r.Err())
	}
}

func TestReaderDoesNotAliasInput(t *testing.T) {
	src := AppendBytes(nil, []byte{7, 7, 7})
	r := NewReader(src)
	got := r.Bytes()
	src[1] = 0xFF
	if !bytes.Equal(got, []byte{7, 7, 7}) {
		t.Errorf("decoded bytes alias the input buffer: %v", got)
	}
}
