// Package codec implements the primitive layer of Mykil's compact wire
// format: varint and fixed-width integers, length-prefixed byte strings,
// timestamps, and a bounds-checked reader. Every encoding is
// deterministic — the same value always produces the same bytes — and
// reflection-free, so per-frame serialization carries no type
// descriptors (unlike encoding/gob, which re-emits them on every fresh
// encoder).
//
// Writers are append-style (`b = codec.AppendString(b, s)`) so callers
// can size a buffer once and build a message with zero intermediate
// allocations. The Reader is sticky-error: after the first malformed
// field every subsequent read returns a zero value, and the error is
// reported by Err/Finish. Length prefixes are validated against the
// bytes actually remaining, so a hostile input can never make a decoder
// over-allocate.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"time"
)

// Errors reported by Reader. They are wrapped with positional context;
// match with errors.Is.
var (
	// ErrTruncated reports an input that ended before the field did.
	ErrTruncated = errors.New("codec: truncated input")
	// ErrLength reports a length prefix exceeding the remaining input.
	ErrLength = errors.New("codec: length prefix exceeds input")
	// ErrTrailing reports leftover bytes after a complete decode.
	ErrTrailing = errors.New("codec: trailing bytes")
	// ErrValue reports a field whose bytes decode to an invalid value
	// (e.g. a bool that is neither 0 nor 1, keeping encodings canonical).
	ErrValue = errors.New("codec: invalid value")
)

// ---- Writers ----

// AppendUvarint appends v in unsigned LEB128 form.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendVarint appends v in zig-zag LEB128 form.
func AppendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// AppendUint64 appends v as 8 fixed little-endian bytes — used for
// nonces, whose uniformly random values would cost 9–10 bytes as
// varints.
func AppendUint64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// AppendByte appends one raw byte.
func AppendByte(b []byte, v byte) []byte { return append(b, v) }

// AppendBool appends 1 for true, 0 for false.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendBytes appends a uvarint length prefix followed by p.
func AppendBytes(b, p []byte) []byte {
	b = AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// AppendString appends a uvarint length prefix followed by the raw
// bytes of s.
func AppendString(b []byte, s string) []byte {
	b = AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendRaw appends p with no length prefix — for fixed-width fields
// whose size both sides know (e.g. symmetric keys).
func AppendRaw(b, p []byte) []byte { return append(b, p...) }

// AppendTime appends t as wall-clock seconds (varint) and nanoseconds
// (uvarint) since the Unix epoch. Monotonic readings and time zones are
// not transmitted; Reader.Time yields the same instant in UTC.
func AppendTime(b []byte, t time.Time) []byte {
	b = AppendVarint(b, t.Unix())
	return AppendUvarint(b, uint64(t.Nanosecond()))
}

// ---- Reader ----

// Reader decodes a buffer written with the Append functions. The zero
// value is an empty reader; construct with NewReader. Errors are
// sticky: after a failure all reads return zero values.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a Reader over b. The Reader copies any
// variable-length field it returns, so b may be reused once decoding
// completes.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.b) - r.off }

// Finish returns the first decoding error, or ErrTrailing if the input
// was not fully consumed.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d byte(s) after message", ErrTrailing, len(r.b)-r.off)
	}
	return nil
}

// fail records the first error.
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = fmt.Errorf("%w at offset %d", err, r.off)
	}
}

// Byte reads one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail(ErrTruncated)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// Bool reads a Byte and requires it to be exactly 0 or 1.
func (r *Reader) Bool() bool {
	switch r.Byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(ErrValue)
		return false
	}
}

// uvarintLen returns the minimal LEB128 encoding length of v.
func uvarintLen(v uint64) int { return (bits.Len64(v|1) + 6) / 7 }

// Uvarint reads an unsigned LEB128 integer. Non-minimal encodings
// (trailing zero continuation groups, e.g. 0x80 0x00 for zero) are
// rejected so every value has exactly one wire form.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	switch {
	case n == 0:
		r.fail(ErrTruncated)
		return 0
	case n < 0:
		r.fail(ErrValue) // 64-bit overflow
		return 0
	case n != uvarintLen(v):
		r.fail(ErrValue) // non-minimal encoding
		return 0
	}
	r.off += n
	return v
}

// Varint reads a zig-zag LEB128 integer with the same canonical-form
// requirement as Uvarint.
func (r *Reader) Varint() int64 {
	ux := r.Uvarint()
	x := int64(ux >> 1)
	if ux&1 != 0 {
		x = ^x
	}
	return x
}

// Uint64 reads 8 fixed little-endian bytes.
func (r *Reader) Uint64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.Len() < 8 {
		r.fail(ErrTruncated)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// Bytes reads a length-prefixed byte string into a fresh slice. A zero
// length yields nil.
func (r *Reader) Bytes() []byte {
	n := r.length()
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:r.off+n])
	r.off += n
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.length()
	if n == 0 {
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

// Raw reads n unprefixed bytes into a fresh slice.
func (r *Reader) Raw(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.Len() < n {
		r.fail(ErrTruncated)
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:r.off+n])
	r.off += n
	return out
}

// Time reads an AppendTime value as a UTC instant.
func (r *Reader) Time() time.Time {
	sec := r.Varint()
	nsec := r.Uvarint()
	if r.err != nil {
		return time.Time{}
	}
	if nsec >= 1e9 {
		r.fail(ErrValue)
		return time.Time{}
	}
	return time.Unix(sec, int64(nsec)).UTC()
}

// Count reads a uvarint element count for a slice whose elements each
// occupy at least elemMin encoded bytes, rejecting counts that the
// remaining input cannot possibly hold. This is what keeps a hostile
// 10-byte message from demanding a 2^60-element allocation.
func (r *Reader) Count(elemMin int) int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if elemMin < 1 {
		elemMin = 1
	}
	if n > uint64(r.Len()/elemMin) {
		r.fail(ErrLength)
		return 0
	}
	return int(n)
}

// length reads and bounds-checks a uvarint length prefix.
func (r *Reader) length() int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(r.Len()) {
		r.fail(ErrLength)
		return 0
	}
	return int(n)
}
