package wire

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mykil/internal/crypt"
	"mykil/internal/keytree"
)

// The golden-bytes test pins the wire format: one deterministic fixture
// frame per Kind, hex-encoded and checked into testdata/golden_frames.txt.
// Any codec edit that silently changes the bytes on the wire — reordered
// fields, a different integer encoding, a new length prefix — fails here
// before it fails in a mixed-version deployment. After an INTENTIONAL
// format change, regenerate with:
//
//	go test ./internal/wire -run TestGoldenFrames -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_frames.txt from the current codec")

// goldenTime is a fixed instant; fixtures must not read the clock.
var goldenTime = time.Unix(1754300000, 123456789).UTC()

// goldenKey returns a deterministic symmetric key.
func goldenKey(seed byte) crypt.SymKey {
	var k crypt.SymKey
	for i := range k {
		k[i] = seed + byte(i)
	}
	return k
}

func goldenPath() []keytree.PathKey {
	return []keytree.PathKey{
		{Node: 7, Key: goldenKey(0x10)},
		{Node: 3, Key: goldenKey(0x20)},
		{Node: 0, Key: goldenKey(0x30)},
	}
}

// goldenBodies holds one fully populated fixture per kind. Every field
// is set to a non-zero value so a dropped field cannot hide behind a
// zero encoding.
func goldenBodies() map[Kind]Marshaler {
	acA := ACInfo{ID: "ac-a", Addr: "10.0.0.1:7000", PubDER: []byte{0xA1, 0xA2, 0xA3}}
	acB := ACInfo{ID: "ac-b", Addr: "10.0.0.2:7000", PubDER: []byte{0xB1, 0xB2}}
	return map[Kind]Marshaler{
		KindJoinRequest: JoinRequest{AuthInfo: "secret", ClientID: "c1",
			ClientAddr: "10.0.0.9:1", ClientPub: []byte{1, 2, 3}, NonceCW: 0x1122334455667788},
		KindJoinChallenge: JoinChallenge{NonceCWPlus1: 0x1122334455667789, NonceWC: 42},
		KindJoinResponse:  JoinResponse{ClientID: "c1", NonceWCPlus1: 43},
		KindJoinRefer: JoinRefer{NonceAC: 99, ClientID: "c1", ClientAddr: "10.0.0.9:1",
			Timestamp: goldenTime, ClientPub: []byte{1, 2, 3}, Duration: 90 * time.Minute},
		KindJoinGrant: JoinGrant{NonceACPlus1: 100, AC: acA, Directory: []ACInfo{acA, acB}},
		KindJoinToAC: JoinToAC{ClientID: "c1", ClientAddr: "10.0.0.9:1", NonceACPlus2: 101, NonceCA: 7,
			SuiteMask: 0x7},
		KindJoinWelcome: JoinWelcome{NonceCAPlus1: 8, TicketBlob: []byte{0x54, 0x4B},
			Path: goldenPath(), Epoch: 12, AreaID: "area-0",
			BackupAddr: "10.0.0.3:7000", BackupPub: []byte{0xC1}, Suite: crypt.SuiteAESGCM},
		KindJoinDenied: JoinDenied{ClientID: "c1", Reason: "no"},
		KindRejoinRequest: RejoinRequest{ClientID: "c1", ClientAddr: "10.0.0.9:2",
			NonceCB: 200, TicketBlob: []byte{0x54, 0x4B}, SuiteMask: 0x7},
		KindRejoinChallenge: RejoinChallenge{NonceCBPlus1: 201, NonceBC: 77},
		KindRejoinResponse:  RejoinResponse{ClientID: "c1", NonceBCPlus1: 78},
		KindRejoinVerifyReq: RejoinVerifyReq{ClientID: "c1", Timestamp: goldenTime},
		KindRejoinVerifyResp: RejoinVerifyResp{ClientID: "c1", StillMember: true,
			TicketBlob: []byte{0x54}, Timestamp: goldenTime},
		KindRejoinWelcome: RejoinWelcome{TicketBlob: []byte{0x54, 0x4B}, Path: goldenPath(),
			Epoch: 13, AreaID: "area-1", BackupAddr: "10.0.0.4:7000", BackupPub: []byte{0xC2},
			Suite: crypt.SuiteChaCha20Poly1305},
		KindRejoinDenied: RejoinDenied{ClientID: "c1", Reason: "cohort"},
		KindData: Data{Origin: "m1", OriginArea: "area-0", Seq: 5, FromArea: "area-1",
			Cipher: CipherAES, EncKey: []byte{9, 9, 9}, Payload: []byte("payload")},
		KindKeyUpdate: KeyUpdate{AreaID: "area-0", Epoch: 14, Entries: []keytree.Entry{
			{Node: 7, Under: 9, Ciphertext: []byte{0xE1, 0xE2}},
			{Node: 3, Under: 3, Ciphertext: []byte{0xE3}},
		}},
		KindPathUpdate:  PathUpdate{AreaID: "area-0", Epoch: 15, Path: goldenPath()},
		KindACAlive:     ACAlive{AreaID: "area-0", Epoch: 16},
		KindMemberAlive: MemberAlive{MemberID: "m1"},
		KindLeaveNotice: LeaveNotice{MemberID: "m1"},
		KindPathRequest: PathRequest{MemberID: "m1", Epoch: 17},
		KindAreaJoinReq: AreaJoinReq{ACID: "ac-b", ACAddr: "10.0.0.2:7000",
			AreaID: "area-1", Timestamp: goldenTime, SuiteMask: 0x7},
		KindAreaJoinAck: AreaJoinAck{ParentID: "ac-a", ParentAreaID: "area-0",
			Path: goldenPath(), Epoch: 18, Timestamp: goldenTime, Suite: crypt.SuiteAESGCM},
		KindAreaJoinDenied:   AreaJoinDenied{ACID: "ac-b", Reason: "full"},
		KindReplicaSync:      ReplicaSync{AreaID: "area-0", Seq: 19, State: []byte{0x5A, 0x5B, 0x5C}},
		KindReplicaHeartbeat: ReplicaHeartbeat{AreaID: "area-0", Seq: 20},
		KindACFailover: ACFailover{AreaID: "area-0", NewAddr: "10.0.0.5:7000",
			NewPub: []byte{0xC3, 0xC4}, Epoch: 21},
		KindElection:   Election{AreaID: "area-0", CandidateID: "backup-0-1", LSN: 22},
		KindElectionOK: ElectionOK{AreaID: "area-0", VoterID: "backup-0-2", LSN: 23},
		KindCoordinator: Coordinator{AreaID: "area-0", LeaderID: "backup-0-1",
			Addr: "10.0.0.6:7000", PubDER: []byte{0xC5, 0xC6}, Epoch: 24,
			MemberAddrs: []string{"10.0.0.9:1", "10.0.0.9:2"}},
		KindSegmentPull: SegmentPull{AreaID: "area-0", FromLSN: 25},
		KindSegmentPush: SegmentPush{AreaID: "area-0", FromLSN: 26, NextLSN: 29,
			SnapshotLSN: 25, Snapshot: []byte{0x5D, 0x5E},
			Records:        [][]byte{{0x01, 0x02}, {0x03}},
			HeartbeatEvery: 250 * time.Millisecond},
		KindAreaReassign: AreaReassign{AreaID: "area-0", TargetID: "ac-1s",
			TargetAddr: "10.0.0.7:7000", TargetPub: []byte{0xC7}, Reason: "split"},
	}
}

// goldenFrame wraps a fixture body in a frame with fixed envelope fields.
func goldenFrame(k Kind, body Marshaler) (*Frame, error) {
	b, err := PlainBody(body)
	if err != nil {
		return nil, err
	}
	return &Frame{Kind: k, From: "10.0.0.1:7000", Body: b, Sig: []byte{0xF0, 0xF1, 0xF2}}, nil
}

const goldenFile = "testdata/golden_frames.txt"

func readGoldens(t *testing.T) map[string]string {
	t.Helper()
	f, err := os.Open(goldenFile)
	if err != nil {
		t.Fatalf("reading goldens (run with -update-golden to generate): %v", err)
	}
	defer f.Close()
	out := make(map[string]string)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, hexBytes, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed golden line: %q", line)
		}
		out[name] = hexBytes
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scanning goldens: %v", err)
	}
	return out
}

func TestGoldenFrames(t *testing.T) {
	bodies := goldenBodies()
	// Every kind must have a fixture; a new kind without one fails here.
	for k := KindJoinRequest; k <= KindAreaReassign; k++ {
		if _, ok := bodies[k]; !ok {
			t.Errorf("kind %v has no golden fixture", k)
		}
	}

	if *updateGolden {
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "# Golden wire encodings, one frame per kind: <KindName> <hex(Frame.Encode)>.\n")
		fmt.Fprintf(&buf, "# Regenerate ONLY on an intentional format change:\n")
		fmt.Fprintf(&buf, "#   go test ./internal/wire -run TestGoldenFrames -update-golden\n")
		for k := KindJoinRequest; k <= KindAreaReassign; k++ {
			f, err := goldenFrame(k, bodies[k])
			if err != nil {
				t.Fatalf("%v: %v", k, err)
			}
			enc, err := f.Encode()
			if err != nil {
				t.Fatalf("%v: %v", k, err)
			}
			fmt.Fprintf(&buf, "%s %s\n", k, hex.EncodeToString(enc))
		}
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenFile)
		return
	}

	goldens := readGoldens(t)
	for k := KindJoinRequest; k <= KindAreaReassign; k++ {
		body := bodies[k]
		f, err := goldenFrame(k, body)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		enc, err := f.Encode()
		if err != nil {
			t.Fatalf("%v: Encode: %v", k, err)
		}
		want, ok := goldens[k.String()]
		if !ok {
			t.Errorf("%v: missing from %s (regenerate with -update-golden)", k, goldenFile)
			continue
		}
		if got := hex.EncodeToString(enc); got != want {
			t.Errorf("%v: wire bytes changed\n got: %s\nwant: %s\n(an intentional format change must regenerate the goldens)", k, got, want)
		}

		// Round trip through the registry: decode the envelope, decode the
		// body by kind, and require re-encoding to reproduce the identical
		// bytes — the codec is canonical.
		df, err := DecodeFrame(enc)
		if err != nil {
			t.Errorf("%v: DecodeFrame: %v", k, err)
			continue
		}
		decoded, ok := NewBody(df.Kind)
		if !ok {
			t.Errorf("%v: no registry entry", k)
			continue
		}
		if err := DecodePlain(df.Body, decoded); err != nil {
			t.Errorf("%v: DecodePlain: %v", k, err)
			continue
		}
		re, err := PlainBody(decoded)
		if err != nil {
			t.Errorf("%v: re-encode: %v", k, err)
			continue
		}
		if !bytes.Equal(re, df.Body) {
			t.Errorf("%v: re-encoded body differs from original", k)
		}
	}
}
