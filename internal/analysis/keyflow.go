package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// keyflow upgrades keyleak from call-site-only to interprocedural: it
// taints values *derived* from key material — a key copied into a plain
// []byte, converted to string, sliced, appended, concatenated, or passed
// through one level of calls — and reports when a derived value reaches
// the same logging/error sinks keyleak guards. keyleak sees `log(key)`;
// keyflow sees `k := string(key[:]); log(k)` and `logBuf(key[:])` where
// logBuf prints its argument.
//
// Mechanics: a flow-insensitive-across-branches, source-order walk per
// function keeps a taint map from objects to origins. Sources are
// keyleak's bearers (secret crypt types, Key/Seed/KShared/Nonce names);
// assignment, conversion, slicing, indexing, append, copy, and string
// concatenation propagate; len/cap and non-bytes results kill. Each
// function also gets a call summary — which byte-like parameters reach a
// sink inside it, which parameters flow to its results, and whether it
// returns secret-derived bytes — consulted exactly one call level deep
// at reporting time (summaries themselves are purely intraprocedural,
// so their content cannot depend on computation order).
//
// Known holes, accepted for precision: struct-field stores, closures,
// channel transport, and chains deeper than one call are not tracked.
// Diagnostics keyleak already reports (a direct bearer at a sink) are
// skipped here, so the two checks never double-fire on one expression.

func init() {
	Register(&Check{
		Name: "keyflow",
		Doc: "values derived from key material (copies, conversions, slices, one call\n" +
			"level of returns and parameters) must not reach logging or error sinks;\n" +
			"catches the leaks keyleak's direct-bearer scan cannot see (§III secrecy)",
		Run: runKeyFlow,
	})
}

func runKeyFlow(p *Pass) {
	prog := p.Prog
	if prog == nil {
		return
	}
	sums := prog.taintSummaries()
	for _, pf := range prog.funcsIn(p.Path) {
		fd, ok := pf.decl.(*ast.FuncDecl)
		if !ok {
			continue // literals: separate timelines, out of scope
		}
		computeTaint(p, prog, fd, sums, p.Reportf)
	}
}

// taintSummaries computes every function's intraprocedural summary once
// per Program.
func (prog *Program) taintSummaries() map[string]*taintSummary {
	if prog.taint != nil {
		return prog.taint
	}
	prog.taint = map[string]*taintSummary{}
	for key, pf := range prog.funcs {
		fd, ok := pf.decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		prog.taint[key] = computeTaint(&Pass{Package: pf.pkg}, prog, fd, nil, nil)
	}
	return prog.taint
}

// taintOrigin says where a tainted value's key material came from.
type taintOrigin struct {
	desc  string
	pos   token.Pos
	param int // -1 for a real source; else the parameter index coloring
}

// taintSummary is one function's interprocedural interface.
type taintSummary struct {
	sinkParams    map[int]string // parameter index -> sink it reaches inside
	returnTaint   map[int]bool   // parameter index -> flows to a result
	returnsSecret bool           // some result derives from a real source
	secretDesc    string
}

// taintWalker threads the per-function taint state.
type taintWalker struct {
	p    *Pass
	prog *Program
	sums map[string]*taintSummary // nil while summaries are being built
	tt   map[types.Object]taintOrigin
	sum  *taintSummary
	rep  func(pos token.Pos, format string, args ...any) // nil when summarizing
}

// computeTaint walks one declaration. With sums/rep nil it only builds
// the summary; with both set it also consults callee summaries and
// reports derived leaks.
func computeTaint(p *Pass, prog *Program, fd *ast.FuncDecl, sums map[string]*taintSummary, rep func(token.Pos, string, ...any)) *taintSummary {
	tw := &taintWalker{
		p:    p,
		prog: prog,
		sums: sums,
		tt:   map[types.Object]taintOrigin{},
		sum: &taintSummary{
			sinkParams:  map[int]string{},
			returnTaint: map[int]bool{},
		},
		rep: rep,
	}
	idx := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if len(field.Names) == 0 {
				idx++
				continue
			}
			for _, name := range field.Names {
				if obj := p.Info.Defs[name]; obj != nil && bytesLike(obj.Type()) {
					tw.tt[obj] = taintOrigin{desc: "parameter " + name.Name, pos: name.Pos(), param: idx}
				}
				idx++
			}
		}
	}
	tw.stmts(fd.Body.List)
	return tw.sum
}

// stmts walks statements in source order. Branch bodies share one taint
// map (a taint set in any branch survives; a strong untaint in one
// branch is optimistic — documented in DESIGN §14).
func (tw *taintWalker) stmts(list []ast.Stmt) {
	for _, stmt := range list {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			tw.checkCalls(s)
			tw.assign(s)
		case *ast.DeclStmt:
			tw.checkCalls(s)
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						tw.valueSpec(vs)
					}
				}
			}
		case *ast.ReturnStmt:
			tw.checkCalls(s)
			tw.returns(s)
		case *ast.IfStmt:
			if s.Init != nil {
				tw.stmts([]ast.Stmt{s.Init})
			}
			tw.checkCalls(s.Cond)
			tw.stmts(s.Body.List)
			if s.Else != nil {
				tw.stmts([]ast.Stmt{s.Else})
			}
		case *ast.ForStmt:
			if s.Init != nil {
				tw.stmts([]ast.Stmt{s.Init})
			}
			tw.checkCalls(s.Cond)
			tw.stmts(s.Body.List)
			if s.Post != nil {
				tw.stmts([]ast.Stmt{s.Post})
			}
		case *ast.RangeStmt:
			tw.checkCalls(s.X)
			if o, ok := tw.exprTaint(s.X); ok {
				tw.setLHS(s.Key, o, true, true)
				tw.setLHS(s.Value, o, true, true)
			}
			tw.stmts(s.Body.List)
		case *ast.SwitchStmt:
			if s.Init != nil {
				tw.stmts([]ast.Stmt{s.Init})
			}
			tw.checkCalls(s.Tag)
			for _, cs := range s.Body.List {
				if cc, ok := cs.(*ast.CaseClause); ok {
					tw.stmts(cc.Body)
				}
			}
		case *ast.TypeSwitchStmt:
			if s.Init != nil {
				tw.stmts([]ast.Stmt{s.Init})
			}
			for _, cs := range s.Body.List {
				if cc, ok := cs.(*ast.CaseClause); ok {
					tw.stmts(cc.Body)
				}
			}
		case *ast.SelectStmt:
			for _, cs := range s.Body.List {
				if cc, ok := cs.(*ast.CommClause); ok {
					if cc.Comm != nil {
						tw.stmts([]ast.Stmt{cc.Comm})
					}
					tw.stmts(cc.Body)
				}
			}
		case *ast.BlockStmt:
			tw.stmts(s.List)
		case *ast.LabeledStmt:
			tw.stmts([]ast.Stmt{s.Stmt})
		case *ast.ExprStmt:
			tw.checkCalls(s)
			tw.builtinCopy(s)
		default:
			tw.checkCalls(stmt)
		}
	}
}

// assign propagates through `lhs = rhs` with strong updates for plain
// assignment and additive updates for op-assign (s += derived).
func (tw *taintWalker) assign(s *ast.AssignStmt) {
	strong := s.Tok == token.ASSIGN || s.Tok == token.DEFINE
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			o, ok := tw.exprTaint(s.Rhs[i])
			tw.setLHS(s.Lhs[i], o, ok, strong)
		}
		return
	}
	if len(s.Rhs) == 1 {
		o, ok := tw.exprTaint(s.Rhs[0])
		for _, l := range s.Lhs {
			tw.setLHS(l, o, ok, strong)
		}
	}
}

func (tw *taintWalker) valueSpec(vs *ast.ValueSpec) {
	for i, name := range vs.Names {
		var rhs ast.Expr
		switch {
		case len(vs.Values) == len(vs.Names):
			rhs = vs.Values[i]
		case len(vs.Values) == 1:
			rhs = vs.Values[0]
		}
		if rhs == nil {
			continue
		}
		o, ok := tw.exprTaint(rhs)
		tw.setLHS(name, o, ok, true)
	}
}

// setLHS applies one assignment target: taint on a tainted source,
// untaint on a clean strong update. Only plain identifiers are tracked,
// and only values whose type can actually hold the bytes (keyleak's
// bytesLike rule) ever carry taint — an integer fingerprint or a length
// derived from a key is the recommended remedy, not a leak.
func (tw *taintWalker) setLHS(l ast.Expr, o taintOrigin, tainted, strong bool) {
	id, isID := l.(*ast.Ident)
	if !isID || id.Name == "_" {
		return
	}
	obj := tw.objOf(id)
	if obj == nil {
		return
	}
	switch {
	case tainted && (bytesLike(obj.Type()) || isSecretType(obj.Type())):
		tw.tt[obj] = o
	case strong:
		delete(tw.tt, obj)
	}
}

// builtinCopy handles `copy(dst, src)` as an assignment edge.
func (tw *taintWalker) builtinCopy(s *ast.ExprStmt) {
	call, ok := s.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "copy" {
		return
	}
	if o, ok := tw.exprTaint(call.Args[1]); ok {
		tw.setLHS(call.Args[0], o, true, false)
	}
}

// returns records summary facts at a return statement; derived (taint
// map) origins win over name-based bearers so `return key` on a
// parameter records a parameter flow, not a fresh secret.
func (tw *taintWalker) returns(s *ast.ReturnStmt) {
	for _, res := range s.Results {
		o, ok := tw.derivedTaint(res)
		if !ok {
			if b, name := keyBearer(tw.p, res); b != nil {
				o, ok = taintOrigin{desc: name, pos: b.Pos(), param: -1}, true
			}
		}
		if !ok {
			continue
		}
		if o.param >= 0 {
			tw.sum.returnTaint[o.param] = true
		} else if !tw.sum.returnsSecret {
			tw.sum.returnsSecret = true
			tw.sum.secretDesc = o.desc
		}
	}
}

// checkCalls inspects a subtree for sink calls and summary-known callees.
func (tw *taintWalker) checkCalls(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := node.(*ast.CallExpr); ok {
			tw.checkCall(call)
		}
		return true
	})
}

// checkCall reports derived taint reaching a direct sink, records
// parameter-colored taint on the summary, and applies callee summaries
// one level deep.
func (tw *taintWalker) checkCall(call *ast.CallExpr) {
	if sink := leakSink(tw.p, call); sink != "" {
		for _, arg := range call.Args {
			if b, _ := keyBearer(tw.p, arg); b != nil {
				continue // keyleak's diagnostic, not ours
			}
			o, ok := tw.derivedTaint(arg)
			if !ok {
				continue
			}
			if o.param >= 0 {
				if _, dup := tw.sum.sinkParams[o.param]; !dup {
					tw.sum.sinkParams[o.param] = sink
				}
				continue
			}
			if tw.rep != nil {
				tw.rep(arg.Pos(), "%s carries key material copied from %s into %s; log a length or fingerprint instead (§III join/rejoin secrecy)",
					exprString(arg), o.desc, sink)
			}
		}
		return
	}
	if tw.sums == nil || tw.rep == nil {
		return
	}
	key := calleeKey(tw.p, call)
	if key == "" {
		return
	}
	cs := tw.sums[key]
	if cs == nil || len(cs.sinkParams) == 0 {
		return
	}
	callee := tw.prog.funcs[key]
	if callee == nil {
		return
	}
	for i, arg := range call.Args {
		sink, hot := cs.sinkParams[i]
		if !hot {
			continue
		}
		if b, name := keyBearer(tw.p, arg); b != nil {
			tw.rep(arg.Pos(), "%s flows into %s, whose parameter reaches %s; log a length or fingerprint instead (§III join/rejoin secrecy)",
				name, callee.display, sink)
			continue
		}
		if o, ok := tw.derivedTaint(arg); ok && o.param < 0 {
			tw.rep(arg.Pos(), "value derived from %s flows into %s, whose parameter reaches %s; log a length or fingerprint instead (§III join/rejoin secrecy)",
				o.desc, callee.display, sink)
		}
	}
}

// exprTaint reports whether e carries key material: a direct bearer
// (keyleak's definition) or a derived value from the taint map.
func (tw *taintWalker) exprTaint(e ast.Expr) (taintOrigin, bool) {
	if b, name := keyBearer(tw.p, e); b != nil {
		return taintOrigin{desc: name, pos: b.Pos(), param: -1}, true
	}
	return tw.derivedTaint(e)
}

// derivedTaint finds taint through the propagation grammar only.
func (tw *taintWalker) derivedTaint(e ast.Expr) (taintOrigin, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		if obj := tw.objOf(x); obj != nil {
			if o, ok := tw.tt[obj]; ok {
				return o, true
			}
		}
	case *ast.ParenExpr:
		return tw.derivedTaint(x.X)
	case *ast.StarExpr:
		return tw.derivedTaint(x.X)
	case *ast.UnaryExpr:
		return tw.derivedTaint(x.X)
	case *ast.SliceExpr:
		return tw.derivedTaint(x.X)
	case *ast.IndexExpr:
		return tw.derivedTaint(x.X)
	case *ast.BinaryExpr:
		// Only byte-carrying results (string concatenation) propagate;
		// comparisons and arithmetic reveal no key bytes.
		if !bytesLike(tw.p.TypeOf(e)) {
			return taintOrigin{}, false
		}
		if o, ok := tw.derivedTaint(x.X); ok {
			return o, true
		}
		return tw.derivedTaint(x.Y)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if o, ok := tw.derivedTaint(el); ok {
				return o, true
			}
		}
	case *ast.CallExpr:
		return tw.callTaint(x)
	}
	return taintOrigin{}, false
}

// callTaint handles conversions, append, and one level of callee return
// summaries.
func (tw *taintWalker) callTaint(call *ast.CallExpr) (taintOrigin, bool) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "len", "cap", "make", "new":
			return taintOrigin{}, false
		case "append":
			for _, a := range call.Args {
				if o, ok := tw.exprTaint(a); ok {
					return o, true
				}
			}
			return taintOrigin{}, false
		}
	}
	if tv, ok := tw.p.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return tw.exprTaint(call.Args[0])
		}
		return taintOrigin{}, false
	}
	// The crypt.Suite datapath (calleeKey sees only "" for its interface
	// calls, so the summary machinery is blind here): Open returns the
	// decrypted plaintext — in this codebase a key-tree node key or a
	// data key, so the result is a fresh source. Seal returns
	// ciphertext, public by construction, so its result kills taint even
	// when the plaintext argument was a key. SealTo appends ciphertext
	// to dst, so its result carries exactly dst's prior taint.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isSuiteValue(tw.p.TypeOf(sel.X)) {
		switch sel.Sel.Name {
		case "Open":
			return taintOrigin{desc: exprString(call.Fun) + " (suite-decrypted bytes)", pos: call.Pos(), param: -1}, true
		case "Seal":
			return taintOrigin{}, false
		case "SealTo":
			if len(call.Args) > 0 {
				return tw.exprTaint(call.Args[0])
			}
			return taintOrigin{}, false
		}
	}
	if tw.sums == nil {
		return taintOrigin{}, false
	}
	key := calleeKey(tw.p, call)
	if key == "" {
		return taintOrigin{}, false
	}
	cs := tw.sums[key]
	if cs == nil {
		return taintOrigin{}, false
	}
	if cs.returnsSecret {
		callee := tw.prog.funcs[key]
		disp := key
		if callee != nil {
			disp = callee.display
		}
		return taintOrigin{desc: disp + " (returns bytes of " + cs.secretDesc + ")", pos: call.Pos(), param: -1}, true
	}
	for i, a := range call.Args {
		if i < len(call.Args) && cs.returnTaint[i] {
			if o, ok := tw.exprTaint(a); ok {
				return o, true
			}
		}
	}
	return taintOrigin{}, false
}

func (tw *taintWalker) objOf(id *ast.Ident) types.Object {
	if obj := tw.p.Info.Uses[id]; obj != nil {
		return obj
	}
	return tw.p.Info.Defs[id]
}

// isSuiteValue reports whether t is the crypt.Suite cipher-suite
// interface, or any type whose method set carries the suite triple
// (Seal, SealTo, Open). The shape test lets the check recognize the
// concrete suites and fixture stand-ins without importing crypt;
// requiring all three names keeps cipher.AEAD (Seal/Open, no SealTo)
// out.
func isSuiteValue(t types.Type) bool {
	if t == nil {
		return false
	}
	d := deref(t)
	if named, ok := d.(*types.Named); ok {
		if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Name() == "crypt" && obj.Name() == "Suite" {
			return true
		}
	}
	mt := t
	if _, isIface := d.Underlying().(*types.Interface); !isIface {
		if _, isPtr := t.(*types.Pointer); !isPtr {
			mt = types.NewPointer(t) // include pointer-receiver methods
		}
	}
	found := 0
	ms := types.NewMethodSet(mt)
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "Seal", "SealTo", "Open":
			found++
		}
	}
	return found == 3
}
