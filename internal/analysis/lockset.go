package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the lock-set walker shared by the concurrency checks
// (lockorder, sendlocked, guardedby). It linearizes a function body the
// same way journalorder does — statements in source order along the
// "main path", with branches that always terminate analyzed as diverted
// sub-paths — while threading a set of currently-held sync.Mutex /
// sync.RWMutex locks through the walk.
//
// Lock identity is the *declaration site* of the mutex, not the runtime
// instance: a field `mu` of struct T is the lock "pkg.T.mu" wherever it
// is locked, a package-level mutex is "pkg.mu", and a local is unique to
// its declaration. Two instances of the same struct therefore share an
// identity; the checks compensate by also carrying the source text of
// the locked expression (base) and its leading identifier (root), so a
// same-identity re-acquire is only called a self-deadlock when the base
// expressions match.
//
// Approximations (documented in DESIGN §14):
//   - Branches that do not terminate mutate the shared lock set in
//     source order, so `if a { mu.Unlock() } else { mu.Unlock() }`
//     converges correctly but a branch that leaks a lock on only one arm
//     is averaged, not forked.
//   - switch/select cases are alternatives: each case runs on a copy of
//     the entry set and the walk continues from the entry set.
//   - defer mu.Unlock() keeps the lock held for the rest of the body
//     (true at every subsequent statement) and suppresses leak concerns.
//   - Function literals are separate timelines: they are handed to the
//     visitor for independent analysis with an empty lock set.

// lockID identifies one mutex.
type lockID struct {
	key  string // stable declaration identity, e.g. "mykil/internal/replica.Replica.mu"
	base string // source text of the locked expression, e.g. "r.mu"
	root string // leading identifier of base, e.g. "r"
	read bool   // acquired via RLock
}

// short renders the identity for diagnostics: base plus the declaration
// key with the module path trimmed to its last segment.
func (id lockID) short() string {
	return id.base + " (" + trimKey(id.key) + ")"
}

// trimKey shortens "mykil/internal/replica.Replica.mu" to
// "replica.Replica.mu".
func trimKey(key string) string {
	slash := -1
	for i := 0; i < len(key); i++ {
		if key[i] == '/' {
			slash = i
		}
	}
	return key[slash+1:]
}

// heldLock is one acquired lock with its acquire site.
type heldLock struct {
	id  lockID
	pos token.Pos
}

// lockVisitor receives the walk's events. Any callback may be nil.
type lockVisitor struct {
	// acquire fires when a lock is taken, with the set held before it.
	acquire func(l heldLock, heldBefore []heldLock)
	// call fires for every call that is not a lock/unlock, with the
	// current held set.
	call func(call *ast.CallExpr, held []heldLock)
	// chanop fires for blocking channel operations (send statements,
	// receives, selects without a default, ranging over a channel).
	chanop func(pos token.Pos, what string, held []heldLock)
	// write fires for assignments and inc/dec statements, once per
	// written expression.
	write func(lhs ast.Expr, pos token.Pos, held []heldLock)
	// funclit collects nested function literals for independent analysis.
	funclit func(lit *ast.FuncLit)
}

// lockMethods maps the sync methods the walker interprets.
var lockMethods = map[string]int{
	"Lock":    +1,
	"RLock":   +1,
	"Unlock":  -1,
	"RUnlock": -1,
}

// lockCall classifies a call as a mutex acquire/release, returning the
// identity and +1/-1, or ok=false for every other call.
func lockCall(p *Pass, call *ast.CallExpr) (id lockID, dir int, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return lockID{}, 0, false
	}
	dir, known := lockMethods[sel.Sel.Name]
	if !known {
		return lockID{}, 0, false
	}
	obj, _ := p.Info.Uses[sel.Sel].(*types.Func)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return lockID{}, 0, false
	}
	id, ok = lockIdentity(p, sel.X)
	if !ok {
		return lockID{}, 0, false
	}
	id.read = sel.Sel.Name == "RLock" || sel.Sel.Name == "RUnlock"
	return id, dir, true
}

// lockIdentity derives the declaration identity of the locked expression.
func lockIdentity(p *Pass, e ast.Expr) (lockID, bool) {
	base := exprString(e)
	root := rootIdent(e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		// Field selection r.mu: identity is the field's owner struct.
		if sel, ok := p.Info.Selections[x]; ok {
			if v, ok := sel.Obj().(*types.Var); ok && v.IsField() {
				if owner := fieldOwner(p, x, v); owner != "" {
					return lockID{key: owner + "." + v.Name(), base: base, root: root}, true
				}
			}
		}
		// Qualified package-level var pkg.mu.
		if obj, ok := p.Info.Uses[x.Sel].(*types.Var); ok && obj.Pkg() != nil {
			return lockID{key: obj.Pkg().Path() + "." + obj.Name(), base: base, root: root}, true
		}
	case *ast.Ident:
		obj := p.Info.Uses[x]
		if obj == nil {
			break
		}
		if v, ok := obj.(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				// Package-level mutex.
				return lockID{key: v.Pkg().Path() + "." + v.Name(), base: base, root: root}, true
			}
			// Local or parameter: unique to its declaration.
			return lockID{key: "local:" + p.Fset.Position(v.Pos()).String(), base: base, root: root}, true
		}
	}
	// Embedded mutex (r.Lock() with X = the struct itself) or anything
	// else addressable: key on the receiver's type when named.
	if named, ok := deref(p.TypeOf(e)).(*types.Named); ok && named.Obj().Pkg() != nil {
		return lockID{key: named.Obj().Pkg().Path() + "." + named.Obj().Name(), base: base, root: root}, true
	}
	return lockID{key: "expr:" + base, base: base, root: root}, true
}

// fieldOwner resolves the named struct type a selected field belongs to,
// as "pkgpath.Type". The selection's receiver — not the field's scope —
// carries the type the checks should key on.
func fieldOwner(p *Pass, sel *ast.SelectorExpr, v *types.Var) string {
	if s, ok := p.Info.Selections[sel]; ok {
		if named, ok := deref(s.Recv()).(*types.Named); ok && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name()
		}
	}
	if v.Pkg() != nil {
		return v.Pkg().Path()
	}
	return ""
}

// rootIdent returns the leading identifier of a selector chain.
func rootIdent(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x.Name
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return ""
		}
	}
}

// walkLockPath traverses stmts in source order, maintaining held.
func walkLockPath(p *Pass, stmts []ast.Stmt, held *[]heldLock, v *lockVisitor) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.IfStmt:
			scanLockNode(p, s.Init, held, v)
			scanLockNode(p, s.Cond, held, v)
			if terminates(s.Body.List) {
				forked := cloneHeld(*held)
				walkLockPath(p, s.Body.List, &forked, v)
			} else {
				walkLockPath(p, s.Body.List, held, v)
			}
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				if terminates(e.List) {
					forked := cloneHeld(*held)
					walkLockPath(p, e.List, &forked, v)
				} else {
					walkLockPath(p, e.List, held, v)
				}
			case *ast.IfStmt:
				walkLockPath(p, []ast.Stmt{e}, held, v)
			}
		case *ast.ForStmt:
			scanLockNode(p, s.Init, held, v)
			scanLockNode(p, s.Cond, held, v)
			walkLockPath(p, s.Body.List, held, v)
			scanLockNode(p, s.Post, held, v)
		case *ast.RangeStmt:
			scanLockNode(p, s.X, held, v)
			if t := p.TypeOf(s.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan && v.chanop != nil {
					v.chanop(s.Pos(), "range over channel", *held)
				}
			}
			walkLockPath(p, s.Body.List, held, v)
		case *ast.SwitchStmt:
			scanLockNode(p, s.Init, held, v)
			scanLockNode(p, s.Tag, held, v)
			for _, cs := range s.Body.List {
				if cc, ok := cs.(*ast.CaseClause); ok {
					forked := cloneHeld(*held)
					walkLockPath(p, cc.Body, &forked, v)
				}
			}
		case *ast.TypeSwitchStmt:
			scanLockNode(p, s.Init, held, v)
			for _, cs := range s.Body.List {
				if cc, ok := cs.(*ast.CaseClause); ok {
					forked := cloneHeld(*held)
					walkLockPath(p, cc.Body, &forked, v)
				}
			}
		case *ast.SelectStmt:
			if !selectHasDefault(s) && v.chanop != nil {
				v.chanop(s.Pos(), "blocking select", *held)
			}
			for _, cs := range s.Body.List {
				if cc, ok := cs.(*ast.CommClause); ok {
					forked := cloneHeld(*held)
					walkLockPath(p, cc.Body, &forked, v)
				}
			}
		case *ast.BlockStmt:
			walkLockPath(p, s.List, held, v)
		case *ast.LabeledStmt:
			walkLockPath(p, []ast.Stmt{s.Stmt}, held, v)
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held for the remainder of
			// the body; other deferred work runs at exit, outside the
			// walked timeline. Literals inside still get their own walk.
			if _, dir, ok := lockCall(p, s.Call); !ok || dir != -1 {
				collectFuncLits(s.Call, v)
			}
		case *ast.GoStmt:
			// A goroutine is its own timeline.
			collectFuncLits(s.Call, v)
		default:
			scanLockNode(p, stmt, held, v)
		}
	}
}

// selectHasDefault reports whether a select statement has a default
// clause (making every comm op non-blocking).
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cs := range s.Body.List {
		if cc, ok := cs.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// cloneHeld copies a held set for a diverted branch.
func cloneHeld(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

// scanLockNode processes one simple statement or expression: lock
// transitions are applied to held, everything else is reported to the
// visitor, in source order. Function literals are not descended into.
func scanLockNode(p *Pass, n ast.Node, held *[]heldLock, v *lockVisitor) {
	if n == nil {
		return
	}
	switch s := n.(type) {
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			scanLockNode(p, rhs, held, v)
		}
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			if v.write != nil {
				v.write(lhs, lhs.Pos(), *held)
			}
			scanLockNode(p, lhs, held, v)
		}
		return
	case *ast.IncDecStmt:
		if v.write != nil {
			v.write(s.X, s.X.Pos(), *held)
		}
		scanLockNode(p, s.X, held, v)
		return
	case *ast.SendStmt:
		scanLockNode(p, s.Value, held, v)
		if v.chanop != nil {
			v.chanop(s.Pos(), "channel send", *held)
		}
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			if v.funclit != nil {
				v.funclit(x)
			}
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && v.chanop != nil {
				v.chanop(x.Pos(), "channel receive", *held)
			}
		case *ast.CallExpr:
			if id, dir, ok := lockCall(p, x); ok {
				if dir > 0 {
					if v.acquire != nil {
						v.acquire(heldLock{id: id, pos: x.Pos()}, *held)
					}
					*held = append(*held, heldLock{id: id, pos: x.Pos()})
				} else {
					releaseLock(held, id)
				}
				return false
			}
			// Visit the arguments first so nested calls report before
			// the enclosing one, matching source evaluation order.
			for _, arg := range x.Args {
				scanLockNode(p, arg, held, v)
			}
			if v.call != nil {
				v.call(x, *held)
			}
			return false
		}
		return true
	})
}

// collectFuncLits reports nested literals inside a deferred or go call.
func collectFuncLits(n ast.Node, v *lockVisitor) {
	if v.funclit == nil || n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok {
			v.funclit(lit)
			return false
		}
		return true
	})
}

// releaseLock removes the most recent matching lock: exact base match
// first, then identity-only.
func releaseLock(held *[]heldLock, id lockID) {
	hs := *held
	for i := len(hs) - 1; i >= 0; i-- {
		if hs[i].id.key == id.key && hs[i].id.base == id.base {
			*held = append(hs[:i], hs[i+1:]...)
			return
		}
	}
	for i := len(hs) - 1; i >= 0; i-- {
		if hs[i].id.key == id.key {
			*held = append(hs[:i], hs[i+1:]...)
			return
		}
	}
}
