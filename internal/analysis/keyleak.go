package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// keyleak finds key material flowing into logging and error-string sinks.
// The paper's join and rejoin secrecy (§III) collapses if an area key, an
// auxiliary-tree key, a rekey seed, or K_shared ever reaches a log line
// or an error message: logs outlive the rekey epoch and travel to places
// the group key must never go (LKH and Iolus both inherit this — one
// leaked node key opens every descendant key).
//
// A value "carries key material" when
//   - its static type is a secret type from a package named crypt
//     (SymKey, KeyPair — PublicKey is public by definition), or
//   - it is an identifier or field whose name matches
//     Key|Seed|KShared|Nonce and whose type can actually hold the bytes
//     (string, []byte, [N]byte, or an integer for Nonce counters).
//
// Sinks are the fmt print/error family, the log package (functions and
// Logger methods), errors.New, and any Logf callee — the repo's injected
// logger convention. len() and cap() of a key are allowed: a length
// reveals nothing.

var keyNameRE = regexp.MustCompile(`Key|Seed|KShared|Nonce`)

// fmtSinks are the fmt functions whose arguments end up in human-readable
// output.
var fmtSinks = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Errorf": true, "Appendf": true, "Append": true, "Appendln": true,
}

func init() {
	Register(&Check{
		Name: "keyleak",
		Doc: "key material (crypt.SymKey/KeyPair values, fields named Key/Seed/KShared/Nonce)\n" +
			"must not flow into fmt print functions, the log package, errors.New, or Logf\n" +
			"callees — logs and error strings outlive the rekey epoch (§III join secrecy)",
		Run: runKeyLeak,
	})
}

func runKeyLeak(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sink := leakSink(p, call)
			if sink == "" {
				return true
			}
			for _, arg := range call.Args {
				if expr, name := keyBearer(p, arg); expr != nil {
					p.Reportf(expr.Pos(), "%s carries key material into %s; log a length or fingerprint instead (§III join/rejoin secrecy)", name, sink)
				}
			}
			return true
		})
	}
}

// leakSink classifies a call as a logging/error sink, returning a
// human-readable sink name or "".
func leakSink(p *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	if id, ok := sel.X.(*ast.Ident); ok {
		switch p.PkgNameOf(id) {
		case "fmt":
			if fmtSinks[name] {
				return "fmt." + name
			}
			return ""
		case "log":
			return "log." + name
		case "errors":
			if name == "New" {
				return "errors.New"
			}
			return ""
		}
	}
	// The repo's injected-logger convention: any Logf field or method.
	if name == "Logf" || name == "logf" {
		return name
	}
	// Methods on a *log.Logger value.
	if t := p.TypeOf(sel.X); t != nil {
		if named, ok := deref(t).(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "log" && obj.Name() == "Logger" {
				return "log.Logger." + name
			}
		}
	}
	return ""
}

// keyBearer walks an argument expression looking for a sub-expression
// that carries key material. It does not descend into len/cap (lengths
// are safe) or into non-conversion calls (only the call's result can
// reach the sink).
func keyBearer(p *Pass, arg ast.Expr) (found ast.Expr, name string) {
	ast.Inspect(arg, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
				return false
			}
			// Conversions like string(key) still carry the bytes; real
			// calls contribute only their result, checked as a node below.
			if tv, ok := p.Info.Types[call.Fun]; ok && !tv.IsType() {
				if isSecretType(p.TypeOf(call)) {
					found, name = call, exprString(call.Fun)+"(...)"
				}
				return false
			}
		}
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if isSecretType(p.TypeOf(expr)) {
			found, name = expr, exprString(expr)
			return false
		}
		if id := bearerName(expr); id != "" && keyNameRE.MatchString(id) {
			t := p.TypeOf(expr)
			if bytesLike(t) || (strings.Contains(id, "Nonce") && integerLike(t)) {
				found, name = expr, id
				return false
			}
		}
		return true
	})
	return found, name
}

// isSecretType reports whether t is (a pointer to) a secret crypt type.
func isSecretType(t types.Type) bool {
	named, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "crypt" {
		return false
	}
	switch obj.Name() {
	case "SymKey", "KeyPair":
		return true
	}
	return false
}

// bearerName extracts the name of an identifier or field selector.
func bearerName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// bytesLike reports whether t can hold raw key bytes: string, []byte, or
// [N]byte, through named types.
func bytesLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Slice:
		return isByte(u.Elem())
	case *types.Array:
		return isByte(u.Elem())
	}
	return false
}

func isByte(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func integerLike(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func deref(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// exprString renders a short source form of simple expressions for
// diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.SliceExpr:
		return exprString(e.X) + "[:]"
	case *ast.UnaryExpr:
		return e.Op.String() + exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	}
	return "expression"
}
