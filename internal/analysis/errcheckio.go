package analysis

import (
	"go/ast"
	"go/types"
)

// errcheck-io finds discarded errors on the durability paths. The journal
// and snapshot machinery (§IV recovery) is only as strong as its weakest
// ignored return value: a swallowed Sync error means the WAL record may
// not be on disk when the send goes out; a swallowed Close on a file
// opened for writing can hide the final flush failing; a swallowed
// journal Append turns the write-ahead log into a write-sometimes log.
//
// Flagged: an expression statement that calls Write/WriteString/Sync/
// Close/Truncate on an *os.File, or Append/Snapshot/Sync/Close on a
// journal.Journal, and drops the error. `defer f.Close()` is not flagged
// (the idiom for read-side cleanup); a deliberate discard on a write path
// takes `_ = f.Close()` plus a //lint:ignore with the reason.

// errcheckFileMethods are the *os.File methods whose error return guards
// durability.
var errcheckFileMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"Sync":        true,
	"Close":       true,
	"Truncate":    true,
}

// errcheckJournalMethods are the journal.Journal methods that must not
// have their error discarded.
var errcheckJournalMethods = map[string]bool{
	"Append":   true,
	"Snapshot": true,
	"Sync":     true,
	"Close":    true,
}

func init() {
	Register(&Check{
		Name: "errcheck-io",
		Doc: "unchecked errors from Write/Sync/Close/Truncate on *os.File and from\n" +
			"Append/Snapshot/Sync/Close on journal.Journal; a swallowed fsync or close\n" +
			"error silently weakens the §IV durability guarantee",
		Run: runErrCheckIO,
	})
}

func runErrCheckIO(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			recvType := p.TypeOf(sel.X)
			switch {
			case errcheckFileMethods[name] && isOSFile(recvType):
				p.Reportf(call.Pos(), "error from (*os.File).%s is discarded on a durability path; check it or assign to _ with a //lint:ignore reason", name)
			case errcheckJournalMethods[name] && isNamedType(recvType, "journal", "Journal"):
				p.Reportf(call.Pos(), "error from (journal.Journal).%s is discarded; the write-ahead guarantee (§IV) depends on it", name)
			}
			return true
		})
	}
}

// isOSFile reports whether t is *os.File (or os.File).
func isOSFile(t types.Type) bool {
	named, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "File" && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}
