package analysis

import (
	"go/ast"
	"go/types"
)

// obsdiscipline guards the observability layer's two invariants. First,
// span timestamps and durations must come from the injected clock.Clock:
// clockdiscipline already bans time.Now in protocol components, but it
// exempts package main, and a daemon hand-rolling a trace attribute from
// time.Since would silently produce spans on a different timeline than
// the clock-driven ones around it. Second, trace attributes must carry
// key *identifiers* — IDs, epochs, LSNs — never key material: trace
// files outlive the rekey epoch and travel further than logs (§III join
// secrecy, same rationale as keyleak, but the sink here is the obs
// package rather than fmt/log).
//
// A call is "into obs" when its callee is a function or method declared
// in a package named obs (the trace attr constructors, Tracer.Step and
// .Event, sink Emits). Unlike clockdiscipline, package main is NOT
// exempt — daemons build spans too.

// obsTimeFuncs are the wall-clock reads that must not appear in span
// construction arguments.
var obsTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
}

func init() {
	Register(&Check{
		Name: "obsdiscipline",
		Doc: "trace/span construction must not read the wall clock (time.Now/time.Since in\n" +
			"arguments to the obs package — use the injected clock.Clock, package main\n" +
			"included) and must not pass key material to trace attributes (record a key ID\n" +
			"or epoch instead; trace files outlive the rekey epoch)",
		Run: runObsDiscipline,
	})
}

func runObsDiscipline(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := obsCallee(p, call)
			if callee == "" {
				return true
			}
			for _, arg := range call.Args {
				checkObsArg(p, callee, arg)
			}
			return true
		})
	}
}

// obsCallee names the callee when the call targets the obs package —
// a package-level function (attr constructors, NewTracer) or a method on
// an obs-declared type (Tracer.Step, Ring.Emit) — and returns "" for
// every other call.
func obsCallee(p *Pass, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		// Unqualified call: only possible inside the obs package itself.
		if obj, ok := p.Info.Uses[fun].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Name() == "obs" {
			return fun.Name
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
				if pn.Imported().Name() == "obs" {
					return "obs." + fun.Sel.Name
				}
				return ""
			}
		}
		if t := p.TypeOf(fun.X); t != nil {
			if named, ok := deref(t).(*types.Named); ok {
				obj := named.Obj()
				if obj.Pkg() != nil && obj.Pkg().Name() == "obs" {
					return obj.Name() + "." + fun.Sel.Name
				}
			}
		}
	}
	return ""
}

// checkObsArg reports wall-clock reads and key material inside one
// argument to an obs call. Nested obs calls (an attr constructor inside
// Tracer.Step's variadic list) are skipped here — the outer Inspect
// visits them on their own, so each violation is reported exactly once,
// against the innermost callee.
func checkObsArg(p *Pass, callee string, arg ast.Expr) {
	ast.Inspect(arg, func(n ast.Node) bool {
		if inner, ok := n.(*ast.CallExpr); ok && obsCallee(p, inner) != "" {
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && p.PkgNameOf(id) == "time" && obsTimeFuncs[sel.Sel.Name] {
				p.Reportf(sel.Pos(), "time.%s in an argument to %s: span timestamps must come from the injected clock.Clock", sel.Sel.Name, callee)
			}
		}
		return true
	})
	if isObsCall(p, arg) {
		return
	}
	if expr, name := keyBearer(p, arg); expr != nil {
		p.Reportf(expr.Pos(), "%s carries key material into trace attribute via %s; record a key ID or epoch instead (trace files outlive the rekey epoch)", name, callee)
	}
}

// isObsCall reports whether the expression is itself a call into obs.
func isObsCall(p *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	return ok && obsCallee(p, call) != ""
}
