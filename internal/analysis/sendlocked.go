package analysis

// sendlocked finds potentially-blocking operations reachable while a
// mutex is held: transport sends (the send/multicast/sealSend helper
// families and Transport.Send), journal durability calls (Append,
// Snapshot, Sync, Close — each can fsync), channel sends and receives,
// selects without a default, and ranging over a channel. A send that
// stalls under a lock holds up every other goroutine contending for it;
// on the election heartbeat path that turns one slow peer into a stalled
// quorum (§IV — the failure detector must never share a lock with the
// network).
//
// Direct occurrences are found by the lock-set walk; transitive ones use
// the Program's fixpoint blocking summaries, so a helper that merely
// *can* reach a blocking select is flagged at the lock-held call site
// with the full via chain. Inside internal/journal the durability
// methods are the implementation being guarded, not a caller hazard, so
// they are exempt there.

func init() {
	Register(&Check{
		Name: "sendlocked",
		Doc: "transport sends, journal fsyncs, and blocking channel operations must not\n" +
			"be reachable while a sync.Mutex/RWMutex is held — compute under the lock,\n" +
			"release it, then transmit; a stalled peer must not freeze lock holders",
		Run:             runSendLocked,
		NoSuppressPaths: []string{"internal/replica"},
	})
}

func runSendLocked(p *Pass) {
	prog := p.Prog
	if prog == nil {
		return
	}
	for _, pf := range prog.funcsIn(p.Path) {
		for _, b := range pf.blocks {
			if len(b.held) == 0 {
				continue
			}
			h := b.held[len(b.held)-1]
			p.Reportf(b.pos, "%s while %s is held (locked at %s); release the lock before blocking",
				b.desc, h.id.short(), prog.posString(h.pos))
		}
		for _, c := range pf.calls {
			if len(c.held) == 0 {
				continue
			}
			callee := prog.funcs[c.callee]
			if callee == nil || callee == pf || callee.blockVia == nil {
				continue
			}
			bv := callee.blockVia
			via := callee.display
			if bv.via != "" {
				via += " → " + bv.via
			}
			h := c.held[len(c.held)-1]
			p.Reportf(c.pos, "call can block while %s is held (locked at %s): %s reaches %s at %s; release the lock before calling",
				h.id.short(), prog.posString(h.pos), via, bv.desc, prog.posString(bv.pos))
		}
	}
}
