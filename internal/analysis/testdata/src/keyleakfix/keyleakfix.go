// Package keyleakfix exercises keyleak's name-based rule: bytes-like
// values named Key/Seed/KShared/Nonce must not reach logging sinks, while
// lengths and unrelated integers stay allowed.
package keyleakfix

import (
	"errors"
	"fmt"
	"log"
)

// Session holds key material under the names the check knows.
type Session struct {
	GroupKey []byte
	Seed     [16]byte
	Nonce    uint64
	Addr     string
}

// Leak sends key bytes into every sink family.
func Leak(s *Session, groupKey []byte, sessionKShared string) {
	fmt.Printf("key=%x\n", groupKey)      // want "groupKey carries key material into fmt.Printf"
	log.Printf("seed=%v", s.Seed)         // want "Seed carries key material into log.Printf"
	fmt.Println("shared", sessionKShared) // want "sessionKShared carries key material into fmt.Println"
	log.Println("nonce", s.Nonce)         // want "Nonce carries key material into log.Println"
	err := errors.New(string(groupKey))   // want "groupKey carries key material into errors.New"
	_ = err
	_ = fmt.Errorf("bad key %x", s.GroupKey) // want "GroupKey carries key material into fmt.Errorf"
}

// Logf mimics the repo's injected-logger convention.
type logger struct{}

func (logger) Logf(format string, args ...any) {}

// LeakViaLogf sends a key through a Logf callee.
func LeakViaLogf(l logger, rekeySeed []byte) {
	l.Logf("seed %x", rekeySeed) // want "rekeySeed carries key material into Logf"
}

// Allowed logs lengths, fingerprint-ish metadata, and non-bytes values
// whose names merely contain Key: no diagnostics.
func Allowed(s *Session, groupKey []byte) {
	fmt.Printf("key len=%d\n", len(groupKey))
	log.Printf("addr=%s members=%d", s.Addr, cap(groupKey))
	keyLen := 16
	fmt.Println("keyLen", keyLen)
	keyCount := len(s.GroupKey)
	log.Println("count", keyCount)
}
