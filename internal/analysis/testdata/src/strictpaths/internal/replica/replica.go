// Package replica exercises NoSuppressPaths for the concurrency checks:
// the import path ends in internal/replica, where sendlocked, lockorder,
// and guardedby refuse //lint directives — a deadlock or a blocked
// election heartbeat is exactly the failure the paper's fault-tolerance
// story cannot survive, so election safety must not be silenceable.
package replica

import "sync"

// R mimics a replica with a lock and a send helper.
type R struct {
	mu sync.Mutex
	ch chan int
}

func (r *R) sendPlain(v int) {}

// Heartbeat tries to silence a send under the lock; the suppression is
// refused and the diagnostic survives with the refusal note.
func (r *R) Heartbeat() {
	r.mu.Lock()
	defer r.mu.Unlock()
	//lint:ignore sendlocked trying to silence the election heartbeat
	r.sendPlain(1) // want "suppression refused"
}

// Pair inverts lock order across two methods; the directive on the
// first witness is refused too.
type Pair struct {
	a sync.Mutex
	b sync.Mutex
	n int
}

func (p *Pair) AB() {
	p.a.Lock()
	//lint:ignore lockorder claiming the inversion is benign
	p.b.Lock() // want "suppression refused"
	p.n++
	p.b.Unlock()
	p.a.Unlock()
}

func (p *Pair) BA() {
	p.b.Lock()
	p.a.Lock() // want "opposite order"
	p.n++
	p.a.Unlock()
	p.b.Unlock()
}
