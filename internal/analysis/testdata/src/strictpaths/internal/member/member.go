// Package member exercises NoSuppressPaths: its import path ends in
// internal/member, where clockdiscipline refuses //lint directives, so
// both the file-ignore and the line ignore below are overridden and the
// diagnostics survive with a refusal note.
package member

//lint:file-ignore clockdiscipline attempting to silence the virtual-time invariant

import "time"

// Wait sleeps on the wall clock; the file-wide ignore must be refused.
func Wait() {
	time.Sleep(time.Millisecond) // want "suppression refused"
}

// Tick builds a raw ticker; the line ignore must be refused too.
func Tick() {
	//lint:ignore clockdiscipline trying the line form as well
	t := time.NewTicker(time.Second) // want "suppression refused"
	t.Stop()
}
