// Package wire exercises wireexhaustive's switch rule: a switch over the
// wire Kind type with no default clause must list every kind.
package wire

// Kind mirrors the real wire.Kind message discriminator.
type Kind uint8

// The message kinds of this miniature protocol.
const (
	KindJoin Kind = iota + 1
	KindLeave
	KindRekey
	KindAlive
)

// DispatchPartial drops KindRekey and KindAlive on the floor.
func DispatchPartial(k Kind) string {
	switch k { // want "switch over wire.Kind silently drops 2 kind"
	case KindJoin:
		return "join"
	case KindLeave:
		return "leave"
	}
	return ""
}

// DispatchFull lists every kind: no diagnostic.
func DispatchFull(k Kind) string {
	switch k {
	case KindJoin:
		return "join"
	case KindLeave:
		return "leave"
	case KindRekey:
		return "rekey"
	case KindAlive:
		return "alive"
	}
	return ""
}

// DispatchDefaulted logs unknown kinds: no diagnostic.
func DispatchDefaulted(k Kind) string {
	switch k {
	case KindJoin:
		return "join"
	default:
		return "other"
	}
}
