// Package journalorderfix exercises journalorder: a transport send on the
// main path ahead of the journal append is flagged; denial sends in
// branches that return early are not.
package journalorderfix

// controller mimics the repo's journal/send helper conventions.
type controller struct {
	admitted map[string]bool
}

func (c *controller) journalAppend(record string)    {}
func (c *controller) sendSealed(addr, body string)   {}
func (c *controller) sendPlain(addr, body string)    {}
func (c *controller) multicastKeyUpdate(body string) {}

// AckBeforeJournal is the §IV bug: the ack is on the wire before the
// admission hits the journal.
func (c *controller) AckBeforeJournal(addr string) {
	c.admitted[addr] = true
	c.sendSealed(addr, "ack") // want "sendSealed transmits before journalAppend journals"
	c.journalAppend("admit " + addr)
}

// MulticastBeforeJournal flags the fan-out helper too.
func (c *controller) MulticastBeforeJournal() {
	c.multicastKeyUpdate("rekey") // want "multicastKeyUpdate transmits before journalAppend journals"
	c.journalAppend("rekey")
}

// JournalFirst is the correct ordering: no diagnostic.
func (c *controller) JournalFirst(addr string) {
	c.admitted[addr] = true
	c.journalAppend("admit " + addr)
	c.sendSealed(addr, "ack")
}

// DeniedEarly sends a denial inside a branch that returns: the denial
// never reaches the journal call below, so it is not flagged.
func (c *controller) DeniedEarly(addr string, ok bool) {
	if !ok {
		c.sendPlain(addr, "denied")
		return
	}
	c.journalAppend("admit " + addr)
	c.sendSealed(addr, "ack")
}

// SendOnly never journals: nothing to order against, no diagnostic.
func (c *controller) SendOnly(addr string) {
	c.sendPlain(addr, "alive")
}

// DeferredSend runs after the body, hence after the journal call: no
// diagnostic.
func (c *controller) DeferredSend(addr string) {
	defer c.sendSealed(addr, "ack")
	c.journalAppend("admit " + addr)
}
