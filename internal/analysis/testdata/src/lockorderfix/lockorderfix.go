// Package lockorderfix exercises lockorder: mutexes acquired in both
// orders (directly and through one call level) are flagged at each
// witness, re-acquiring a held mutex is a self-deadlock, stacked read
// locks are legal, and a consistent order stays silent.
package lockorderfix

import "sync"

// Pair holds two mutexes the methods below acquire in both orders.
type Pair struct {
	a sync.Mutex
	b sync.Mutex
	n int
}

// AB acquires a then b.
func (p *Pair) AB() {
	p.a.Lock()
	p.b.Lock() // want "Pair.b acquired while lockorderfix.Pair.a is held"
	p.n++
	p.b.Unlock()
	p.a.Unlock()
}

// BA acquires b then a: the inversion's other witness.
func (p *Pair) BA() {
	p.b.Lock()
	p.a.Lock() // want "Pair.a acquired while lockorderfix.Pair.b is held"
	p.n++
	p.a.Unlock()
	p.b.Unlock()
}

// Again re-locks a mutex it already holds.
func (p *Pair) Again() {
	p.a.Lock()
	p.a.Lock() // want "already held here; re-acquiring"
	p.n = 0
	p.a.Unlock()
	p.a.Unlock()
}

// Duo's inversion crosses a call: CD reaches d through a helper.
type Duo struct {
	c sync.Mutex
	d sync.Mutex
	m int
}

func (q *Duo) lockD() {
	q.d.Lock()
	q.m++
	q.d.Unlock()
}

// CD holds c and acquires d via lockD.
func (q *Duo) CD() {
	q.c.Lock()
	q.lockD() // want "Duo.d acquired via (*Duo).lockD while"
	q.c.Unlock()
}

// DC takes d then c directly.
func (q *Duo) DC() {
	q.d.Lock()
	q.c.Lock() // want "Duo.c acquired while lockorderfix.Duo.d is held"
	q.m++
	q.c.Unlock()
	q.d.Unlock()
}

// Ordered always takes its locks in one order: no diagnostics.
type Ordered struct {
	a sync.Mutex
	b sync.Mutex
	k int
}

func (o *Ordered) One() {
	o.a.Lock()
	o.b.Lock()
	o.k++
	o.b.Unlock()
	o.a.Unlock()
}

func (o *Ordered) Two() {
	o.a.Lock()
	o.b.Lock()
	o.k = 2
	o.b.Unlock()
	o.a.Unlock()
}

// RW stacks read locks, which Go permits: no self-deadlock report.
type RW struct {
	mu sync.RWMutex
	v  int
}

func (r *RW) DoubleRead() int {
	r.mu.RLock()
	r.mu.RLock()
	x := r.v
	r.mu.RUnlock()
	r.mu.RUnlock()
	return x
}
