// Package crypt exercises keyleak's type-based rule: values of the secret
// crypt types are flagged regardless of variable name, while PublicKey is
// public by definition.
package crypt

import (
	"fmt"
	"log"
)

// SymKey mirrors the real crypt.SymKey secret type.
type SymKey [16]byte

// KeyPair mirrors the real crypt.KeyPair secret type.
type KeyPair struct{ priv [32]byte }

// PublicKey is not a secret.
type PublicKey struct{ der []byte }

// Leak prints secret-typed values held under innocuous names.
func Leak(k SymKey, pair *KeyPair) {
	fmt.Printf("material=%v\n", k) // want "k carries key material into fmt.Printf"
	log.Println(pair)              // want "pair carries key material into log.Println"
	s := string(k[:])              // conversions keep the bytes secret: keyflow tracks the copy
	fmt.Print(s)                   // want "s carries key material copied from k into fmt.Print"
}

// Allowed prints public keys and lengths: no diagnostics.
func Allowed(pub PublicKey, k SymKey) {
	fmt.Printf("pub=%v len=%d\n", pub, len(k))
}
