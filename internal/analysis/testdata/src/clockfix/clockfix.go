// Package clockfix exercises the clockdiscipline check: every wall-clock
// entry point must be flagged, while Duration arithmetic stays allowed.
package clockfix

import "time"

// Deadline is a protocol component reading the clock directly.
func Deadline() time.Time {
	return time.Now().Add(5 * time.Second) // want "direct time.Now bypasses the injected clock.Clock"
}

// Wait blocks directly on the wall clock.
func Wait() {
	time.Sleep(time.Second)         // want "direct time.Sleep"
	<-time.After(time.Second)       // want "direct time.After"
	t := time.NewTimer(time.Second) // want "direct time.NewTimer"
	t.Stop()
	tk := time.NewTicker(time.Second) // want "direct time.NewTicker"
	tk.Stop()
}

// Age measures elapsed time against the wall clock.
func Age(start time.Time) time.Duration {
	return time.Since(start) // want "direct time.Since"
}

// Allowed uses only pure time helpers: no diagnostics.
func Allowed() time.Duration {
	d := 3 * time.Millisecond
	u := time.Unix(0, 0)
	_ = u
	return d.Round(time.Millisecond)
}
