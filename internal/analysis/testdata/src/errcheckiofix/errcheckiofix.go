// Package errcheckiofix exercises errcheck-io: durability-path errors
// dropped in expression statements are flagged; checked, blank-assigned,
// and deferred calls are not.
package errcheckiofix

import "os"

// Flush drops every error the durability path produces.
func Flush(f *os.File, buf []byte) {
	f.Write(buf)       // want "error from (*os.File).Write is discarded"
	f.WriteString("x") // want "error from (*os.File).WriteString is discarded"
	f.Sync()           // want "error from (*os.File).Sync is discarded"
	f.Truncate(0)      // want "error from (*os.File).Truncate is discarded"
	f.Close()          // want "error from (*os.File).Close is discarded"
}

// Checked handles or deliberately discards every error: no diagnostics.
func Checked(f *os.File, buf []byte) error {
	if _, err := f.Write(buf); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// ReadSide uses the deferred-close idiom: no diagnostic.
func ReadSide(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	return buf[:n], err
}
