// Package suppressfix exercises the //lint:ignore machinery: a
// well-formed directive silences the flagged line below it or its own
// line, a wrong check name does not, and unsuppressed sites still
// surface.
package suppressfix

import "time"

// OwnLine is suppressed by the directive on the preceding line.
func OwnLine() time.Time {
	//lint:ignore clockdiscipline the harness pins this to the wall clock on purpose
	return time.Now()
}

// Trailing is suppressed by the directive at the end of the line.
func Trailing() {
	time.Sleep(time.Millisecond) //lint:ignore clockdiscipline settling delay outside the protocol path
}

// Unsuppressed has no directive and is flagged.
func Unsuppressed() time.Time {
	return time.Now() // want "direct time.Now"
}

// WrongCheck names a real check that does not match the diagnostic, so
// the violation still surfaces — and the directive itself, having
// suppressed nothing, is reported as unused.
func WrongCheck() time.Time {
	//lint:ignore keyleak wrong check name for this site // want "suppresses nothing"
	return time.Now() // want "direct time.Now"
}
