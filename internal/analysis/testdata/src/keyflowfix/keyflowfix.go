// Package keyflowfix exercises keyflow's derived-taint rules: key
// material copied, converted, appended, or passed through one call level
// (parameters into printing helpers, returns out of exporters) is still
// caught at the sink, while lengths, fingerprints, and cleanly
// reassigned buffers stay silent. Direct bearers at sinks belong to
// keyleak and are not re-reported here.
package keyflowfix

import (
	"fmt"
	"log"
)

// Session holds key material under a recognized name.
type Session struct {
	GroupKey []byte
}

// CopyThenLog copies the key into an innocuously-named buffer first.
func CopyThenLog(s *Session) {
	buf := append([]byte(nil), s.GroupKey...)
	fmt.Printf("%x\n", buf) // want "buf carries key material copied from GroupKey into fmt.Printf"
}

// ConvertThenLog launders the key through a string conversion.
func ConvertThenLog(groupKey []byte) {
	text := string(groupKey)
	log.Println(text) // want "text carries key material copied from groupKey into log.Println"
}

// dump prints its buffer: an innocent-looking helper.
func dump(buf []byte) {
	fmt.Printf("%x\n", buf)
}

// LeakViaHelper passes the key to a helper that prints it.
func LeakViaHelper(s *Session) {
	dump(s.GroupKey) // want "GroupKey flows into dump, whose parameter reaches fmt.Printf"
}

// export returns the raw key bytes.
func export(s *Session) []byte {
	return s.GroupKey
}

// LeakViaReturn logs the exported copy.
func LeakViaReturn(s *Session) {
	raw := export(s)
	log.Printf("%x", raw) // want "raw carries key material copied from export"
}

// pad returns its input with a framing byte.
func pad(b []byte) []byte {
	out := append([]byte{0x01}, b...)
	return out
}

// LeakViaPad launders the key through pad before logging.
func LeakViaPad(groupKey []byte) {
	framed := pad(groupKey)
	fmt.Println(framed) // want "framed carries key material copied from groupKey"
}

// Suppressed documents an accepted leak; keyflow has no no-suppress
// paths, so the directive holds.
func Suppressed(s *Session) {
	buf := append([]byte(nil), s.GroupKey...)
	//lint:ignore keyflow the test-vector dump below is compiled out of release builds
	fmt.Printf("%x\n", buf)
}

// Suite mirrors the crypt.Suite cipher-suite shape (Seal, SealTo,
// Open); keyflow recognizes the triple structurally.
type Suite interface {
	Seal(k, plaintext []byte) []byte
	SealTo(dst, k, plaintext []byte) []byte
	Open(k, blob []byte) ([]byte, error)
}

// OpenThenLog decrypts a sealed key-tree blob and logs the plaintext:
// a Suite Open result is key-grade material, a taint source.
func OpenThenLog(s Suite, k, blob []byte) {
	pt, err := s.Open(k, blob)
	if err != nil {
		return
	}
	log.Printf("recovered %x", pt) // want "pt carries key material copied from s.Open"
}

// exportNode wraps the suite Open one call level down; the summary
// carries the source out through the return.
func exportNode(s Suite, k, blob []byte) []byte {
	pt, _ := s.Open(k, blob)
	return pt
}

// LeakViaOpenReturn logs a helper's decrypted return.
func LeakViaOpenReturn(s Suite, k, blob []byte) {
	node := exportNode(s, k, blob)
	fmt.Printf("%x\n", node) // want "node carries key material copied from exportNode"
}

// SealIsClean proves the sanitizer direction: ciphertext out of Seal is
// public even when the plaintext was the key itself, and a SealTo onto
// a fresh buffer is equally clean. No diagnostics.
func SealIsClean(s Suite, groupKey []byte) {
	blob := s.Seal(groupKey, groupKey)
	fmt.Printf("sealed %x\n", blob)
	out := s.SealTo(nil, groupKey, groupKey)
	log.Println(len(out), out)
}

// SealToDirtyDst appends ciphertext onto a buffer that already holds
// raw key bytes: SealTo's result inherits the dst taint.
func SealToDirtyDst(s Suite, groupKey []byte) {
	buf := append([]byte(nil), groupKey...)
	buf = s.SealTo(buf, groupKey, []byte("payload"))
	fmt.Printf("%x\n", buf) // want "buf carries key material copied from groupKey"
}

// fingerprint folds the key into a short integer tag: the recommended
// remedy, and integer results never carry taint.
func fingerprint(b []byte) int {
	n := 0
	for _, x := range b {
		n += int(x)
	}
	return n
}

// Allowed derives only safe values: lengths kill taint, clean
// reassignment untaints, and fingerprints are integers.
func Allowed(s *Session, groupKey []byte) {
	n := len(s.GroupKey)
	fmt.Println(n)
	buf := append([]byte(nil), groupKey...)
	buf = []byte("public")
	fmt.Printf("%s\n", buf)
	fp := fingerprint(groupKey)
	log.Println(fp)
}
