// Package wire exercises wireexhaustive's inventory census: this
// miniature wire package deliberately leaves KindRekey out of the
// bodyFactories registry and the kindNames table, and KindAlive out of
// the golden-frames fixture.
package wire

// Kind discriminates message bodies.
type Kind uint8

// The message kinds.
const (
	KindJoin Kind = iota + 1
	KindLeave
	KindRekey
	KindAlive // want "KindAlive has no golden frame fixture"
)

// Body is a decodable message body.
type Body interface{ Reset() }

type join struct{}
type leave struct{}
type alive struct{}

func (*join) Reset()  {}
func (*leave) Reset() {}
func (*alive) Reset() {}

// bodyFactories is the kind→decoder registry; KindRekey is missing.
var bodyFactories = map[Kind]func() Body{ // want "KindRekey is missing from the bodyFactories registry"
	KindJoin:  func() Body { return new(join) },
	KindLeave: func() Body { return new(leave) },
	KindAlive: func() Body { return new(alive) },
}

// kindNames maps kinds to their protocol spellings; KindRekey is missing.
var kindNames = map[Kind]string{ // want "KindRekey is missing from the kindNames table"
	KindJoin:  "Join",
	KindLeave: "Leave",
	KindAlive: "Alive",
}

// NewBody keeps the registry and names reachable.
func NewBody(k Kind) (Body, bool) {
	f, ok := bodyFactories[k]
	if !ok {
		return nil, false
	}
	_ = kindNames[k]
	return f(), true
}
