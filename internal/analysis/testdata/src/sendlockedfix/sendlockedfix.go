// Package sendlockedfix exercises sendlocked: transport sends, channel
// operations, and blocking selects reachable under a mutex are flagged —
// directly and through one call level — while unlock-before-send,
// selects with a default, and goroutine bodies (their own timeline) stay
// silent.
package sendlockedfix

import "sync"

// Node mimics a protocol node: a mutex, a channel, and a send helper the
// checks recognize by the send* naming convention.
type Node struct {
	mu    sync.Mutex
	ch    chan int
	state int
}

func (n *Node) sendPlain(v int) {}

// Transport mimics the transport API by type name.
type Transport struct{}

func (Transport) Send(v int) {}

// BadDirect transmits while holding the lock.
func (n *Node) BadDirect() {
	n.mu.Lock()
	n.state++
	n.sendPlain(n.state) // want "sendPlain (transport send) while n.mu"
	n.mu.Unlock()
}

// BadChan sends on a channel while holding the lock.
func (n *Node) BadChan(v int) {
	n.mu.Lock()
	n.ch <- v // want "channel send while n.mu"
	n.mu.Unlock()
}

// BadSelect blocks in a select while the deferred unlock keeps the lock
// held.
func (n *Node) BadSelect() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	select { // want "blocking select while n.mu"
	case v := <-n.ch:
		return v
	}
}

// BadTransport sends on the transport under the lock.
func (n *Node) BadTransport(t Transport) {
	n.mu.Lock()
	defer n.mu.Unlock()
	t.Send(1) // want "Transport.Send while n.mu"
}

// flush reaches a blocking channel send.
func (n *Node) flush(v int) {
	n.ch <- v
}

// BadTransitive holds the lock across a call that can block.
func (n *Node) BadTransitive() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.flush(n.state) // want "call can block while n.mu"
}

// OkTrySend uses a default case: non-blocking, no diagnostic.
func (n *Node) OkTrySend(v int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	select {
	case n.ch <- v:
	default:
	}
}

// OkUnlockFirst computes under the lock and transmits after releasing.
func (n *Node) OkUnlockFirst() {
	n.mu.Lock()
	v := n.state
	n.mu.Unlock()
	n.sendPlain(v)
	n.ch <- v
}

// OkGoroutine spawns the send; the goroutine's timeline starts with no
// locks held, and spawning itself does not block.
func (n *Node) OkGoroutine() {
	n.mu.Lock()
	defer n.mu.Unlock()
	go func() {
		n.sendPlain(1)
	}()
}
