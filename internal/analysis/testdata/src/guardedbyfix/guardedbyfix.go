// Package guardedbyfix exercises guardedby's majority-vote inference: a
// field written under the struct's mutex at most sites and bare at a
// minority site flags the bare write; 50/50 fields, all-guarded fields,
// mutex-free structs, and constructors stay silent.
package guardedbyfix

import "sync"

// Counter's n is written under mu at two sites and bare at one.
type Counter struct {
	mu sync.Mutex
	n  int
	m  int
}

func (c *Counter) IncA() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *Counter) IncB() {
	c.mu.Lock()
	c.n = c.n + 1
	c.m++
	c.mu.Unlock()
}

// Reset writes n bare: the minority site.
func (c *Counter) Reset() {
	c.n = 0 // want "Counter.n is written under the struct's mutex at 2 other site"
}

// NewCounter initializes bare in a constructor: plain functions are
// never counted, so this does not tip the vote.
func NewCounter() *Counter {
	c := &Counter{}
	c.n = 5
	return c
}

// Half is written once guarded, once bare: no strict majority, no
// diagnostic — a 50/50 field is a design question, not a race verdict.
type Half struct {
	mu sync.Mutex
	v  int
}

func (h *Half) Guarded() {
	h.mu.Lock()
	h.v = 1
	h.mu.Unlock()
}

func (h *Half) Bare() {
	h.v = 2
}

// Plain has no mutex; its writes are never judged.
type Plain struct{ v int }

func (p *Plain) Set(v int) { p.v = v }
