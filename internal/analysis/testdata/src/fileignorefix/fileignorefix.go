// Package fileignorefix exercises //lint:file-ignore: the named check is
// silenced for the whole file, every other check still runs.
package fileignorefix

//lint:file-ignore clockdiscipline this harness measures wall-clock time by design

import (
	"fmt"
	"time"
)

// Measure reads the wall clock freely under the file-wide ignore.
func Measure() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(start)
}

// StillChecked shows other checks are unaffected by the file-ignore.
func StillChecked(groupKey []byte) {
	fmt.Printf("key=%x\n", groupKey) // want "groupKey carries key material into fmt.Printf"
}
