// Package journal exercises sendlocked's journal-fsync rule. The package
// is *named* journal so its Journal type matches the repo convention the
// check keys on, but its import path is not internal/journal — the real
// journal package is exempt from this rule (its own mutex guards the
// file descriptor; there the durability calls are the implementation,
// not a caller hazard).
package journal

import "sync"

// Journal mimics the durability API.
type Journal struct{}

func (*Journal) Append(b []byte) error { return nil }

func (*Journal) Sync() error { return nil }

// Store owns a journal behind a mutex.
type Store struct {
	mu sync.Mutex
	j  *Journal
	n  int
}

// BadAppend fsyncs while holding the lock.
func (s *Store) BadAppend(b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	_ = s.j.Append(b) // want "journal Append (fsync) while s.mu"
}

// OkAppend releases the lock before the fsync.
func (s *Store) OkAppend(b []byte) error {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	return s.j.Sync()
}
