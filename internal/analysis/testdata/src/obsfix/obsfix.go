// Package obs exercises the obsdiscipline check. The fixture declares a
// miniature copy of the real obs API under the package name the check
// keys on, so span-construction calls here look exactly like calls into
// the real tracer. Note clockdiscipline also fires on the wall-clock
// lines (this package is neither main nor internal/clock), so those
// lines carry two want strings.
package obs

import "time"

// Attr mirrors the real trace attribute.
type Attr struct{ Key, Value string }

// String mirrors the string attr constructor.
func String(key, value string) Attr { return Attr{key, value} }

// Dur mirrors the duration attr constructor.
func Dur(key string, d time.Duration) Attr { return Attr{key, d.String()} }

// Tracer mirrors the real tracer.
type Tracer struct{}

// Step mirrors the real span emitter.
func (t *Tracer) Step(proto, subject string, step int, name string, attrs ...Attr) {}

// BadClock hand-rolls span timing from the wall clock.
func BadClock(tr *Tracer, start time.Time) {
	tr.Step("join", "m1", 1, "JoinRequest",
		Dur("elapsed", time.Since(start)), // want "time.Since in an argument to Dur" "direct time.Since"
		String("at", time.Now().String())) // want "time.Now in an argument to String" "direct time.Now"
}

// BadKey passes key material where a key ID belongs.
func BadKey(tr *Tracer, groupKey []byte, s struct{ Seed [16]byte }) {
	tr.Step("rekey", "area-0", 0, "batch-rekey",
		String("key", string(groupKey)), // want "groupKey carries key material into trace attribute via String"
		Dur("window", 5*time.Second))
	_ = String("seed", string(s.Seed[:])) // want "Seed carries key material into trace attribute via String"
}

// Good records identifiers, epochs, and clock-free durations only.
func Good(tr *Tracer, keyID string, epoch uint64, silence time.Duration) {
	tr.Step("rejoin", "m2", 6, "RejoinWelcome",
		String("key_id", keyID),
		Dur("silence", silence))
	_ = epoch
}
