// Package baddirectives holds deliberately malformed //lint directives.
// The test asserts each one is reported under the unsuppressible
// lint-directive pseudo-check (expectations live in the test, not in
// want comments, because a trailing comment would parse as the
// directive's reason).
package baddirectives

import "time"

//lint:ignore clockdiscipline

//lint:ignore nosuchcheck it does not exist

//lint:ignore

// Flagged shows that a malformed directive suppresses nothing.
func Flagged() time.Time {
	return time.Now()
}
