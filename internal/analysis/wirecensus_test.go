package analysis_test

import (
	"testing"

	"mykil/internal/analysis"
	"mykil/internal/wire"
)

// kindInventory is the pinned census of wire kinds, in wire-value order.
// Adding a kind to internal/wire means extending this list in the same
// change — the analyzer, the runtime registry, and this test must agree.
var kindInventory = []string{
	"JoinRequest", "JoinChallenge", "JoinResponse", "JoinRefer",
	"JoinGrant", "JoinToAC", "JoinWelcome", "JoinDenied",
	"RejoinRequest", "RejoinChallenge", "RejoinResponse",
	"RejoinVerifyReq", "RejoinVerifyResp", "RejoinWelcome", "RejoinDenied",
	"Data", "KeyUpdate", "PathUpdate",
	"ACAlive", "MemberAlive", "LeaveNotice", "PathRequest",
	"AreaJoinReq", "AreaJoinAck", "AreaJoinDenied",
	"ReplicaSync", "ReplicaHeartbeat", "ACFailover",
	"Election", "ElectionOK", "Coordinator", "SegmentPull", "SegmentPush",
	"AreaReassign",
}

// TestWireKindCensus pins the analyzer's view of the wire package to the
// runtime registry: every Kind constant wireexhaustive counts must have a
// body factory, a protocol name, and a spot in the pinned inventory, with
// dense values starting at 1.
func TestWireKindCensus(t *testing.T) {
	pkg, err := getLoader(t).Load(wireDir)
	if err != nil {
		t.Fatalf("loading internal/wire: %v", err)
	}
	census := analysis.WireKindCensus(pkg)

	if len(census) != len(kindInventory) {
		t.Fatalf("census found %d Kind constants, want %d", len(census), len(kindInventory))
	}
	for i, k := range census {
		if k.Value != uint64(i+1) {
			t.Errorf("%s has value %d, want %d (kind values must stay dense from 1)", k.Name, k.Value, i+1)
		}
		if k.WireName != kindInventory[i] {
			t.Errorf("census[%d] = %s (%q), want %q", i, k.Name, k.WireName, kindInventory[i])
		}
		rt := wire.Kind(k.Value)
		if got := rt.String(); got != k.WireName {
			t.Errorf("%s: runtime String() = %q, analyzer census = %q", k.Name, got, k.WireName)
		}
		if _, ok := wire.NewBody(rt); !ok {
			t.Errorf("%s: wire.NewBody has no factory for value %d", k.Name, k.Value)
		}
	}
	// The registry must be exactly the census: one past the end decodes
	// as unknown.
	if _, ok := wire.NewBody(wire.Kind(len(census) + 1)); ok {
		t.Errorf("wire.NewBody accepts kind %d beyond the census", len(census)+1)
	}
}

// wireDir locates the real wire package relative to this test.
const wireDir = "../wire"
