// Package analysis is mykil-vet's pass framework: a registry of named
// invariant checks that run over type-checked packages and report
// file:line diagnostics. It is built purely on the standard library
// (go/parser, go/ast, go/types with the source importer) so the repo
// needs no external analysis dependencies.
//
// The checks encode invariants the compiler cannot see but the paper's
// guarantees depend on:
//
//	keyleak         key material must not reach logs or error strings (§III)
//	keyflow         interprocedural upgrade: derived copies of key material (§III)
//	clockdiscipline timers must go through the injected clock.Clock (§IV)
//	wireexhaustive  every wire.Kind is registered, pinned, and dispatched
//	journalorder    mutate → journal → send ordering (§IV crash recovery)
//	errcheck-io     fsync/close/write errors on durability paths are checked
//	obsdiscipline   metrics/tracing follow the repo's observability rules
//	lockorder       no inconsistent mutex acquisition order in the call graph
//	sendlocked      no sends, fsyncs, or blocking channel ops under a mutex
//	guardedby       fields mostly written under a struct's mutex never bare
//
// The last three and keyflow run on a shared module-wide dataflow
// substrate (call graph + per-function lock sets; see program.go).
//
// Diagnostics are suppressed with staticcheck-style directives:
//
//	//lint:ignore <check>[,<check>...] <reason>       (that line or the next)
//	//lint:file-ignore <check>[,<check>...] <reason>  (whole file)
//
// A directive without a reason, or naming an unknown check, is itself a
// diagnostic: suppressions must stay auditable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Check)
}

// Package is one loaded, type-checked package as seen by every check.
type Package struct {
	Fset  *token.FileSet
	Dir   string // absolute directory the package was loaded from
	Path  string // import path within the module
	Name  string // package name
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// TypeOf returns the static type of an expression, or nil.
func (p *Package) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := p.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// PkgNameOf resolves an identifier to the import path of the package it
// names, or "" when the identifier is not a package name.
func (p *Package) PkgNameOf(id *ast.Ident) string {
	if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// Pass is the per-(check, package) reporting context handed to Check.Run.
type Pass struct {
	*Package
	// Prog is the module-wide dataflow substrate (call graph, lock sets,
	// taint summaries). It is non-nil only when Run built one — i.e. when
	// an interprocedural check is in the selected set.
	Prog  *Program
	check *Check
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.check.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Check is one registered invariant checker.
type Check struct {
	// Name is the check's registry key, used in -checks and //lint:ignore.
	Name string
	// Doc is a one-paragraph description, shown by mykil-vet -list.
	Doc string
	// Run inspects one package and reports diagnostics through the pass.
	Run func(*Pass)
	// NoSuppressPaths lists import-path suffixes where //lint directives
	// cannot silence this check. Use it for packages where the invariant
	// is load-bearing enough that an inline escape hatch would defeat
	// the point — the diagnostic is reported anyway, annotated with the
	// refusal.
	NoSuppressPaths []string
}

// noSuppressAt reports whether suppressions of this check are refused in
// the package at the given import path.
func (c *Check) noSuppressAt(path string) bool {
	for _, p := range c.NoSuppressPaths {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

var (
	regMu    sync.Mutex
	registry = map[string]*Check{}
)

// Register adds a check to the registry. Duplicate names panic: they are
// programmer error, not input error.
func Register(c *Check) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[c.Name]; dup {
		panic("analysis: duplicate check " + c.Name)
	}
	registry[c.Name] = c
}

// Checks returns every registered check sorted by name.
func Checks() []*Check {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]*Check, 0, len(registry))
	for _, c := range registry {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup resolves a comma-separated check list ("" means all).
func Lookup(names string) ([]*Check, error) {
	if strings.TrimSpace(names) == "" {
		return Checks(), nil
	}
	regMu.Lock()
	defer regMu.Unlock()
	var out []*Check
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		c, ok := registry[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown check %q", n)
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// knownCheck reports whether name is registered; used to validate
// //lint directives.
func knownCheck(name string) bool {
	regMu.Lock()
	defer regMu.Unlock()
	_, ok := registry[name]
	return ok
}

// Run executes the checks over the packages, applies //lint suppressions,
// and returns the surviving diagnostics sorted by position. A directive
// that suppresses nothing is itself reported — suppressions must stay
// live, not fossilize — provided every check it names was in this run's
// set (a narrowed -checks run cannot judge a directive it didn't
// exercise). A directive that matched a diagnostic counts as used even
// when the suppression was refused on a no-suppress path.
func Run(pkgs []*Package, checks []*Check) []Diagnostic {
	byName := make(map[string]*Check, len(checks))
	for _, c := range checks {
		byName[c.Name] = c
	}
	var prog *Program
	if needsProgram(checks) {
		prog = buildProgram(pkgs)
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		dirs, dirDiags := collectDirectives(pkg)
		all = append(all, dirDiags...)
		var pkgDiags []Diagnostic
		for _, c := range checks {
			pass := &Pass{Package: pkg, Prog: prog, check: c, diags: &pkgDiags}
			c.Run(pass)
		}
		for _, d := range pkgDiags {
			if dirs.suppressed(d) {
				c := byName[d.Check]
				if c == nil || !c.noSuppressAt(pkg.Path) {
					continue
				}
				d.Message += fmt.Sprintf(" (//lint suppression refused: %s is a no-suppress path for %s)", pkg.Path, d.Check)
			}
			all = append(all, d)
		}
		all = append(all, dirs.unusedDiags(pkg, byName)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return all
}
