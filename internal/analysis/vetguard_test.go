package analysis_test

import (
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"mykil/internal/analysis"
)

// TestFullModuleClean runs every registered check — including the
// interprocedural lockorder/sendlocked/guardedby/keyflow set — over the
// entire module and pins zero diagnostics, so the tree can never merge
// dirty: a new violation anywhere fails this test before CI's vet step
// even runs.
func TestFullModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	l := getLoader(t)
	pkgs, err := l.LoadTree(l.ModuleDir)
	if err != nil {
		t.Fatalf("LoadTree(%s): %v", l.ModuleDir, err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded from the module root: %d", len(pkgs))
	}
	diags := analysis.Run(pkgs, analysis.Checks())
	for _, d := range diags {
		t.Errorf("module is not vet-clean: %s", d)
	}
}

// TestSeededFixtureTrips guards the guard: if the analyzer ever stops
// seeing the deliberately-seeded fixture violations, this fails before a
// quiet CI run can be mistaken for a clean one.
func TestSeededFixtureTrips(t *testing.T) {
	pkg := loadFixture(t, "clockfix")
	diags := analysis.Run([]*analysis.Package{pkg}, analysis.Checks())
	if len(diags) == 0 {
		t.Fatal("analyzer reported no diagnostics on the seeded clockfix fixture; the CI vet step is running blind")
	}
	for _, d := range diags {
		if d.Check != "clockdiscipline" {
			t.Errorf("unexpected check %q on clockfix: %s", d.Check, d)
		}
	}
}

// TestVetCommandExitCodes exercises the mykil-vet binary's exit-code
// contract end to end: 1 with file:line diagnostics on a seeded fixture,
// 0 on a clean package, 2 on a bogus -checks value.
func TestVetCommandExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	// go run collapses any nonzero child exit to 1, so build the real
	// binary and invoke it directly.
	vet := filepath.Join(t.TempDir(), "mykil-vet")
	if out, err := exec.Command("go", "build", "-o", vet, "mykil/cmd/mykil-vet").CombinedOutput(); err != nil {
		t.Fatalf("building mykil-vet: %v\n%s", err, out)
	}
	run := func(args ...string) (string, int) {
		t.Helper()
		cmd := exec.Command(vet, args...)
		out, err := cmd.CombinedOutput()
		if err == nil {
			return string(out), 0
		}
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running mykil-vet %v: %v\n%s", args, err, out)
		}
		return string(out), ee.ExitCode()
	}

	out, code := run("testdata/src/clockfix")
	if code != 1 {
		t.Fatalf("seeded fixture: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "clockfix.go:") || !strings.Contains(out, "[clockdiscipline]") {
		t.Errorf("seeded fixture output lacks file:line diagnostics:\n%s", out)
	}

	out, code = run("../clock")
	if code != 0 {
		t.Fatalf("clean package: exit %d, want 0\n%s", code, out)
	}

	out, code = run("-checks", "bogus", "../clock")
	if code != 2 {
		t.Fatalf("unknown check: exit %d, want 2\n%s", code, out)
	}

	// -json: diagnostics as a machine-readable array on stdout (the
	// summary still goes to stderr), same exit-code contract.
	cmd := exec.Command(vet, "-json", "testdata/src/clockfix")
	stdout, err := cmd.Output()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("-json on seeded fixture: err %v, want exit 1\n%s", err, stdout)
	}
	var jd []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(stdout, &jd); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, stdout)
	}
	if len(jd) == 0 {
		t.Fatal("-json output is empty on the seeded fixture")
	}
	for _, d := range jd {
		if !strings.HasSuffix(d.File, "clockfix.go") || d.Line == 0 || d.Col == 0 ||
			d.Check != "clockdiscipline" || !strings.Contains(d.Message, "clock.Clock") {
			t.Errorf("-json diagnostic has unexpected fields: %+v", d)
		}
	}
}
