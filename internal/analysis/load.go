package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages from source. One Loader shares a
// FileSet and a source importer, so dependency packages (including the
// standard library) are type-checked once and cached across Load calls.
type Loader struct {
	Fset       *token.FileSet
	ModuleDir  string // directory containing go.mod
	ModulePath string // module path declared in go.mod
	imp        types.Importer
}

// ErrNoGoFiles reports a directory with no buildable non-test Go files.
var ErrNoGoFiles = errors.New("analysis: no buildable Go files")

// NewLoader creates a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleDir:  modDir,
		ModulePath: modPath,
		imp:        importer.ForCompiler(fset, "source", nil),
	}, nil
}

// findModule walks upward from dir to the enclosing go.mod and parses the
// module path out of it.
func findModule(dir string) (modDir, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		d = parent
	}
}

// ImportPath maps a directory inside the module to its import path.
func (l *Loader) ImportPath(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModulePath)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return path.Join(l.ModulePath, filepath.ToSlash(rel)), nil
}

// Load parses and type-checks the single package in dir (non-test files,
// honoring build constraints). Returns ErrNoGoFiles for file-less dirs.
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	bp, err := build.ImportDir(abs, 0)
	if err != nil {
		var noGo *build.NoGoError
		if errors.As(err, &noGo) {
			return nil, ErrNoGoFiles
		}
		return nil, fmt.Errorf("analysis: scanning %s: %w", dir, err)
	}
	importPath, err := l.ImportPath(abs)
	if err != nil {
		return nil, err
	}
	names := append([]string(nil), bp.GoFiles...)
	names = append(names, bp.CgoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErr error
	conf := types.Config{
		Importer: l.imp,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if typeErr != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, typeErr)
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	return &Package{
		Fset:  l.Fset,
		Dir:   abs,
		Path:  importPath,
		Name:  tpkg.Name(),
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// LoadTree loads every package under root, applying the go tool's pattern
// rules: directories named testdata or vendor, and directories whose name
// starts with "." or "_", are skipped along with everything below them.
func (l *Loader) LoadTree(root string) ([]*Package, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(abs, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != abs && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, d := range dirs {
		pkg, err := l.Load(d)
		if errors.Is(err, ErrNoGoFiles) {
			continue
		}
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
