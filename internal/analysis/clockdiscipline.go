package analysis

import (
	"go/ast"
	"strings"
)

// clockdiscipline forbids reading or waiting on the wall clock directly.
// Journal replay determinism and the §IV-A failure detectors (T_idle,
// T_active, 5× silence windows) all assume every timer flows through the
// injected clock.Clock, so tests can drive them with a fake clock and
// recovery replays the exact timeline the live run journaled. A single
// raw time.Now in a protocol component silently re-couples it to the
// wall clock.
//
// Exempt: the clock package itself (it wraps the real clock), package
// main (drivers and examples are wall-clock programs by nature), and
// test files (not analyzed at all). Measurement harnesses opt out with
// //lint:file-ignore clockdiscipline <reason>.

// bannedTimeFuncs are the time package entry points that read or wait on
// the wall clock. Pure data helpers (Duration arithmetic, Date, Parse,
// Unix) stay allowed.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

func init() {
	Register(&Check{
		Name: "clockdiscipline",
		Doc: "direct time.Now/Sleep/After/Since/Until/NewTimer/NewTicker outside internal/clock;\n" +
			"protocol components must use the injected clock.Clock so journal replay and the\n" +
			"§IV failure detectors stay deterministic (package main and tests exempt).\n" +
			"In internal/member and internal/simnet even //lint directives cannot silence it:\n" +
			"one raw sleep or ticker there would couple every virtual-time mega-sim run back\n" +
			"to the wall clock",
		Run: runClockDiscipline,
		// The mega-sim's whole premise — 100k members advancing under
		// Fake.Advance with zero real waiting — dies silently if member
		// or simnet code regrows a raw time.Sleep/time.NewTicker, so no
		// inline escape hatch exists there.
		NoSuppressPaths: []string{"internal/member", "internal/simnet"},
	})
}

func runClockDiscipline(p *Pass) {
	if p.Name == "main" || strings.HasSuffix(p.Path, "internal/clock") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || p.PkgNameOf(id) != "time" || !bannedTimeFuncs[sel.Sel.Name] {
				return true
			}
			p.Reportf(sel.Pos(), "direct time.%s bypasses the injected clock.Clock; thread a clock through the config (replay determinism, §IV timers)", sel.Sel.Name)
			return true
		})
	}
}
