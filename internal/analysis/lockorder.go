package analysis

import "sort"

// lockorder finds lock-order inversions and self-deadlocks over the
// module-wide lock-order graph the Program builds: an edge A→B means
// lock B was acquired (directly or through a callee) while A was held.
// If both A→B and B→A exist anywhere in the module, two goroutines can
// each take one lock and wait forever for the other — the classic
// failover hang the paper's fault-tolerance story cannot afford (§IV: a
// deadlocked backup is indistinguishable from a failed one, and a
// deadlocked controller takes the whole area down with it).
//
// Soundness: edges through interface calls and function values are
// invisible (no static callee), so a clean report is not a proof; but
// every reported inversion cites two concrete witnesses, so reports are
// actionable, not statistical.

func init() {
	Register(&Check{
		Name: "lockorder",
		Doc: "two mutexes acquired in inconsistent order anywhere in the call graph\n" +
			"(A held while taking B in one place, B held while taking A in another) can\n" +
			"deadlock; also flags re-acquiring a mutex already held through the same\n" +
			"expression, which self-deadlocks on Go's non-reentrant sync.Mutex",
		Run:             runLockOrder,
		NoSuppressPaths: []string{"internal/replica", "internal/area"},
	})
}

func runLockOrder(p *Pass) {
	prog := p.Prog
	if prog == nil {
		return
	}
	for _, pf := range prog.funcsIn(p.Path) {
		for _, sd := range pf.selfDL {
			p.Reportf(sd.pos, "%s is already held here; re-acquiring a non-reentrant sync mutex deadlocks immediately", sd.id.short())
		}
	}
	froms := make([]string, 0, len(prog.edges))
	for a := range prog.edges {
		froms = append(froms, a)
	}
	sort.Strings(froms)
	for _, a := range froms {
		tos := make([]string, 0, len(prog.edges[a]))
		for b := range prog.edges[a] {
			tos = append(tos, b)
		}
		sort.Strings(tos)
		for _, b := range tos {
			e := prog.edges[a][b]
			if e.pkgPath != p.Path {
				continue
			}
			rev, ok := prog.edges[b]
			if !ok {
				continue
			}
			re, ok := rev[a]
			if !ok {
				continue
			}
			how := "acquired"
			if e.via != "" {
				how = "acquired via " + e.via
			}
			p.Reportf(e.pos, "%s %s while %s is held in %s, but %s takes them in the opposite order (%s); pick one order",
				trimKey(b), how, trimKey(a), e.fn, re.fn, prog.posString(re.pos))
		}
	}
}
