package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Suppression directives, staticcheck-compatible in spelling:
//
//	//lint:ignore check1,check2 reason       — suppresses matching
//	    diagnostics on the directive's own line (trailing comment) or on
//	    the line immediately below it (directive on its own line).
//	//lint:file-ignore check1,check2 reason  — suppresses matching
//	    diagnostics anywhere in the file; conventionally placed at the top.
//
// The reason is mandatory and the check names must exist, so every
// suppression in the tree says what it silences and why. A well-formed
// directive that matches no diagnostic is reported as unused (when every
// check it names actually ran): a suppression that outlives its
// diagnostic is a stale claim about the code and hides the day the
// diagnostic comes back.

const (
	dirIgnore     = "//lint:ignore"
	dirFileIgnore = "//lint:file-ignore"
	// dirCheckName is the pseudo-check under which malformed and unused
	// directives are reported. It is not registered and cannot be
	// suppressed.
	dirCheckName = "lint-directive"
)

// directive is one parsed //lint:ignore or //lint:file-ignore.
type directive struct {
	pos      token.Pos
	line     int // directive's own line (line-scoped only)
	fileWide bool
	names    string // the comma-joined check list as written
	checks   map[string]bool
	used     bool
}

// directiveSet indexes a package's suppressions by file.
type directiveSet struct {
	fset   *token.FileSet
	byFile map[string][]*directive
}

// suppressed reports whether the diagnostic is covered by a directive,
// marking every matching directive as used. Directive-syntax diagnostics
// are never suppressible.
func (ds *directiveSet) suppressed(d Diagnostic) bool {
	if d.Check == dirCheckName {
		return false
	}
	hit := false
	for _, dir := range ds.byFile[d.Pos.Filename] {
		if !dir.checks[d.Check] {
			continue
		}
		if dir.fileWide || d.Pos.Line == dir.line || d.Pos.Line == dir.line+1 {
			dir.used = true
			hit = true
		}
	}
	return hit
}

// unusedDiags reports every directive that matched nothing, provided all
// checks it names were in the run set — a directive for a check that
// didn't run may well be load-bearing.
func (ds *directiveSet) unusedDiags(pkg *Package, ran map[string]*Check) []Diagnostic {
	var out []Diagnostic
	files := make([]string, 0, len(ds.byFile))
	for f := range ds.byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		for _, dir := range ds.byFile[f] {
			if dir.used {
				continue
			}
			judgeable := true
			for name := range dir.checks {
				if ran[name] == nil {
					judgeable = false
					break
				}
			}
			if !judgeable {
				continue
			}
			out = append(out, Diagnostic{
				Pos:     pkg.Fset.Position(dir.pos),
				Check:   dirCheckName,
				Message: fmt.Sprintf("//lint directive for %q suppresses nothing; remove it", dir.names),
			})
		}
	}
	return out
}

// collectDirectives parses every //lint directive in the package and
// returns the suppression index plus diagnostics for malformed ones.
func collectDirectives(pkg *Package) (*directiveSet, []Diagnostic) {
	ds := &directiveSet{
		fset:   pkg.Fset,
		byFile: map[string][]*directive{},
	}
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:     pkg.Fset.Position(pos),
			Check:   dirCheckName,
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				var fileWide bool
				var rest string
				switch {
				case strings.HasPrefix(text, dirFileIgnore):
					fileWide, rest = true, text[len(dirFileIgnore):]
				case strings.HasPrefix(text, dirIgnore):
					rest = text[len(dirIgnore):]
				default:
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(c.Pos(), "//lint directive names no check")
					continue
				}
				if len(fields) < 2 {
					report(c.Pos(), "//lint directive for %q is missing a reason", fields[0])
					continue
				}
				checks := map[string]bool{}
				bad := false
				for _, name := range strings.Split(fields[0], ",") {
					if !knownCheck(name) {
						report(c.Pos(), "//lint directive names unknown check %q", name)
						bad = true
						break
					}
					checks[name] = true
				}
				if bad {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ds.byFile[pos.Filename] = append(ds.byFile[pos.Filename], &directive{
					pos:      c.Pos(),
					line:     pos.Line,
					fileWide: fileWide,
					names:    fields[0],
					checks:   checks,
				})
			}
		}
	}
	return ds, diags
}
