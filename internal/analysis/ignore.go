package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// Suppression directives, staticcheck-compatible in spelling:
//
//	//lint:ignore check1,check2 reason       — suppresses matching
//	    diagnostics on the directive's own line (trailing comment) or on
//	    the line immediately below it (directive on its own line).
//	//lint:file-ignore check1,check2 reason  — suppresses matching
//	    diagnostics anywhere in the file; conventionally placed at the top.
//
// The reason is mandatory and the check names must exist, so every
// suppression in the tree says what it silences and why.

const (
	dirIgnore     = "//lint:ignore"
	dirFileIgnore = "//lint:file-ignore"
	// dirCheckName is the pseudo-check under which malformed directives
	// are reported. It is not registered and cannot be suppressed.
	dirCheckName = "lint-directive"
)

// lineIgnore is one parsed //lint:ignore directive.
type lineIgnore struct {
	line   int
	checks map[string]bool
}

// directiveSet indexes a package's suppressions by file.
type directiveSet struct {
	byFile map[string][]lineIgnore
	whole  map[string]map[string]bool // file -> suppressed checks
}

// suppressed reports whether the diagnostic is covered by a directive.
// Directive-syntax diagnostics are never suppressible.
func (ds *directiveSet) suppressed(d Diagnostic) bool {
	if d.Check == dirCheckName {
		return false
	}
	if checks, ok := ds.whole[d.Pos.Filename]; ok && checks[d.Check] {
		return true
	}
	for _, ig := range ds.byFile[d.Pos.Filename] {
		if ig.checks[d.Check] && (d.Pos.Line == ig.line || d.Pos.Line == ig.line+1) {
			return true
		}
	}
	return false
}

// collectDirectives parses every //lint directive in the package and
// returns the suppression index plus diagnostics for malformed ones.
func collectDirectives(pkg *Package) (*directiveSet, []Diagnostic) {
	ds := &directiveSet{
		byFile: map[string][]lineIgnore{},
		whole:  map[string]map[string]bool{},
	}
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:     pkg.Fset.Position(pos),
			Check:   dirCheckName,
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				var fileWide bool
				var rest string
				switch {
				case strings.HasPrefix(text, dirFileIgnore):
					fileWide, rest = true, text[len(dirFileIgnore):]
				case strings.HasPrefix(text, dirIgnore):
					rest = text[len(dirIgnore):]
				default:
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(c.Pos(), "//lint directive names no check")
					continue
				}
				if len(fields) < 2 {
					report(c.Pos(), "//lint directive for %q is missing a reason", fields[0])
					continue
				}
				checks := map[string]bool{}
				bad := false
				for _, name := range strings.Split(fields[0], ",") {
					if !knownCheck(name) {
						report(c.Pos(), "//lint directive names unknown check %q", name)
						bad = true
						break
					}
					checks[name] = true
				}
				if bad {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if fileWide {
					m := ds.whole[pos.Filename]
					if m == nil {
						m = map[string]bool{}
						ds.whole[pos.Filename] = m
					}
					for name := range checks {
						m[name] = true
					}
				} else {
					ds.byFile[pos.Filename] = append(ds.byFile[pos.Filename], lineIgnore{line: pos.Line, checks: checks})
				}
			}
		}
	}
	return ds, diags
}
