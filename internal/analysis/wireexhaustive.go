package analysis

import (
	"bufio"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// wireexhaustive pins the wire-kind inventory. A message kind that exists
// as a constant but is missing from the kind→decoder registry decodes as
// "unknown" and is silently dropped; one missing from the golden-frames
// fixture can change encoding without failing a test; a dispatch switch
// that neither lists every kind nor has a default clause drops new kinds
// on the floor with no log line. All three have the same failure shape:
// a protocol message the paper's state machines depend on disappears
// without a trace (PROTOCOL.md kinds table).
//
// Inside internal/wire it checks that every Kind constant appears in the
// bodyFactories registry, in the kindNames table, and in
// testdata/golden_frames.txt. In every package it checks that a switch
// over wire.Kind either covers all kinds or carries a default clause.

func init() {
	Register(&Check{
		Name: "wireexhaustive",
		Doc: "every wire.Kind constant must appear in the bodyFactories registry, the\n" +
			"kindNames table, and the golden-frames fixture; switches over wire.Kind must\n" +
			"cover every kind or carry a default clause (no silent message drop)",
		Run: runWireExhaustive,
	})
}

// KindConst is one wire message kind constant, as seen by the analyzer.
// Exported so tests can assert the census matches the runtime registry.
type KindConst struct {
	Name     string // constant name, e.g. KindJoinRequest
	Value    uint64
	WireName string // protocol name from kindNames, "" if absent
}

// WireKindCensus lists the Kind constants declared in a loaded
// internal/wire package, sorted by value, with protocol names filled in
// from the kindNames literal.
func WireKindCensus(pkg *Package) []KindConst {
	census := kindConstsOf(pkg.Types)
	names := mapLitStrings(pkg, "kindNames")
	for i := range census {
		census[i].WireName = names[census[i].Name]
	}
	return census
}

// kindConstsOf collects package-scope constants whose type is that
// package's own Kind type, sorted by value.
func kindConstsOf(tpkg *types.Package) []KindConst {
	var out []KindConst
	scope := tpkg.Scope()
	for _, name := range scope.Names() {
		cst, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		named, ok := cst.Type().(*types.Named)
		if !ok || named.Obj().Name() != "Kind" || named.Obj().Pkg() != tpkg {
			continue
		}
		v, ok := constant.Uint64Val(cst.Val())
		if !ok {
			continue
		}
		out = append(out, KindConst{Name: name, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}

func runWireExhaustive(p *Pass) {
	if p.Name == "wire" && strings.HasSuffix(p.Path, "internal/wire") {
		checkWireInventory(p)
	}
	checkKindSwitches(p)
}

// checkWireInventory runs the registry, name-table, and golden-fixture
// census inside the wire package itself.
func checkWireInventory(p *Pass) {
	census := kindConstsOf(p.Types)
	if len(census) == 0 {
		return
	}

	factories, facPos := mapLitKeys(p.Package, "bodyFactories")
	if factories == nil {
		p.Reportf(p.Files[0].Package, "package %s has no bodyFactories map literal; the kind→decoder registry is gone", p.Path)
	}
	names := mapLitStrings(p.Package, "kindNames")
	namesKeys, namePos := mapLitKeys(p.Package, "kindNames")
	if namesKeys == nil {
		p.Reportf(p.Files[0].Package, "package %s has no kindNames map literal", p.Path)
	}

	golden, goldenErr := goldenFrameNames(filepath.Join(p.Dir, "testdata", "golden_frames.txt"))

	for _, k := range census {
		if factories != nil && !factories[k.Name] {
			p.Reportf(facPos, "%s is missing from the bodyFactories registry; frames of that kind decode as unknown and are dropped", k.Name)
		}
		if namesKeys != nil && !namesKeys[k.Name] {
			p.Reportf(namePos, "%s is missing from the kindNames table", k.Name)
		}
		if goldenErr == nil {
			wireName := names[k.Name]
			if wireName == "" {
				wireName = strings.TrimPrefix(k.Name, "Kind")
			}
			if !golden[wireName] {
				p.Reportf(constPos(p, k.Name), "%s has no golden frame fixture (%q not in testdata/golden_frames.txt); its encoding is unpinned", k.Name, wireName)
			}
		}
	}
	if goldenErr != nil {
		p.Reportf(p.Files[0].Package, "cannot read golden-frames fixture: %v", goldenErr)
	}
}

// constPos finds the declaration position of a package-scope name.
func constPos(p *Pass, name string) token.Pos {
	if obj := p.Types.Scope().Lookup(name); obj != nil {
		return obj.Pos()
	}
	return p.Files[0].Package
}

// mapLitKeys finds the package-level composite literal initializing a
// variable called varName and returns its key identifier names plus the
// variable's position. Returns nil when the literal does not exist.
func mapLitKeys(p *Package, varName string) (map[string]bool, token.Pos) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, ident := range vs.Names {
					if ident.Name != varName || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					keys := map[string]bool{}
					for _, elt := range lit.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if id, ok := kv.Key.(*ast.Ident); ok {
							keys[id.Name] = true
						}
					}
					return keys, ident.Pos()
				}
			}
		}
	}
	return nil, 0
}

// mapLitStrings returns key-ident → string-literal-value pairs of the
// named package-level map literal (used for kindNames).
func mapLitStrings(p *Package, varName string) map[string]string {
	out := map[string]string{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for i, ident := range vs.Names {
				if ident.Name != varName || i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*ast.CompositeLit)
				if !ok {
					continue
				}
				for _, elt := range lit.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					id, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					if tv, ok := p.Info.Types[kv.Value]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
						out[id.Name] = constant.StringVal(tv.Value)
					}
				}
			}
			return true
		})
	}
	return out
}

// goldenFrameNames reads the first column of every non-comment line of
// the golden-frames fixture.
func goldenFrameNames(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]bool{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out[strings.Fields(line)[0]] = true
	}
	return out, sc.Err()
}

// checkKindSwitches enforces switch coverage over wire.Kind in any
// package: no default clause means every kind must be listed.
func checkKindSwitches(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			named, ok := p.TypeOf(sw.Tag).(*types.Named)
			if !ok {
				return true
			}
			obj := named.Obj()
			if obj.Name() != "Kind" || obj.Pkg() == nil || obj.Pkg().Name() != "wire" {
				return true
			}
			full := kindConstsOf(obj.Pkg())
			if len(full) == 0 {
				return true
			}
			covered := map[uint64]bool{}
			hasDefault := false
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					hasDefault = true
					continue
				}
				for _, e := range cc.List {
					if tv, ok := p.Info.Types[e]; ok && tv.Value != nil {
						if v, ok := constant.Uint64Val(tv.Value); ok {
							covered[v] = true
						}
					}
				}
			}
			if hasDefault {
				return true
			}
			var missing []string
			for _, k := range full {
				if !covered[k.Value] {
					missing = append(missing, k.Name)
				}
			}
			if len(missing) > 0 {
				show := missing
				if len(show) > 4 {
					show = append(append([]string(nil), show[:4]...), "...")
				}
				p.Reportf(sw.Pos(), "switch over wire.Kind silently drops %d kind(s) (%s); list every kind or add a default clause", len(missing), strings.Join(show, ", "))
			}
			return true
		})
	}
}
