package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Program is the module-wide dataflow substrate shared by the
// interprocedural checks (lockorder, sendlocked, guardedby, keyflow).
// Run builds one Program per invocation from every loaded package: a
// call graph keyed by qualified symbol strings (object identity does not
// survive the per-root type-checks, symbol strings do), per-function
// facts gathered in a single lock-set walk, and fixpoint summaries on
// top — which locks a function may transitively acquire, and whether it
// can transitively reach a blocking operation (a transport send, a
// journal fsync, or a channel op without a default).
//
// Soundness boundaries, by construction: calls through interface values
// and function-typed fields produce no edge (the symbol resolves to no
// declaration), goroutine bodies and deferred work are separate
// timelines, and branch effects merge in source order (see lockset.go).
// These trade recall for a zero-false-positive bar the CI gate can pin.
type Program struct {
	fset *token.FileSet
	// funcs indexes analyzed declarations by qualified symbol — the call
	// graph's nodes. all additionally holds anonymous function literals,
	// which have no symbol and so can contribute facts (lock edges,
	// unguarded writes, blocking ops) but never act as a resolved callee.
	funcs map[string]*progFunc
	all   []*progFunc
	// edges is the global lock-order graph: edges[a][b] is the first
	// witness of lock b acquired while a was held.
	edges map[string]map[string]*lockEdge
	// fields aggregates struct-field writes for guardedby.
	fields map[string]*fieldFacts

	// keyflow's lazily-built per-function taint summaries.
	taint map[string]*taintSummary
}

// progFunc is one analyzed function or function literal.
type progFunc struct {
	key     string // qualified symbol; "" for literals
	display string // human name for diagnostics, e.g. "(*Replica).win"
	pkgPath string
	decl    ast.Node // *ast.FuncDecl or *ast.FuncLit
	pkg     *Package

	// Facts from the lock-set walk.
	blocks   []blockFact
	calls    []callFact
	acquires []acqFact
	selfDL   []selfDeadlock

	// Summaries.
	blockVia *blockSummary
	lockSet  map[string]lockWitness
}

// blockFact is one potentially-blocking operation: a send helper, a
// Transport.Send, a journal durability call, or a channel op.
type blockFact struct {
	pos  token.Pos
	desc string
	held []heldLock
}

// callFact is one resolved or unresolved call site.
type callFact struct {
	callee string // qualified symbol, "" when unresolvable
	pos    token.Pos
	held   []heldLock
}

// acqFact is one lock acquisition with the set held before it.
type acqFact struct {
	lock heldLock
	held []heldLock
}

// selfDeadlock is a re-acquire of a lock already held through the same
// expression: an immediate deadlock on Go's non-reentrant mutexes.
type selfDeadlock struct {
	pos token.Pos
	id  lockID
}

// blockSummary says a function can reach a blocking op.
type blockSummary struct {
	desc string
	pos  token.Pos
	via  string // callee display chain, "" when direct
}

// lockWitness records where a transitively-acquired lock is taken.
type lockWitness struct {
	pos token.Pos
	via string // callee display, "" when acquired directly
}

// lockEdge is one witness of an ordered pair of lock acquisitions.
type lockEdge struct {
	pos     token.Pos
	pkgPath string
	fn      string // display name of the function holding the witness
	via     string // callee display for interprocedural edges
}

// fieldFacts aggregates writes to one struct field across the module.
type fieldFacts struct {
	structKey string // "pkgpath.Type"
	field     string
	guarded   []token.Pos
	unguarded []unguardedWrite
}

type unguardedWrite struct {
	pos     token.Pos
	pkgPath string
	fn      string
}

// needsProgram reports whether any selected check consumes the Program.
func needsProgram(checks []*Check) bool {
	for _, c := range checks {
		switch c.Name {
		case "lockorder", "sendlocked", "guardedby", "keyflow":
			return true
		}
	}
	return false
}

// buildProgram walks every function in every package once and computes
// the summaries.
func buildProgram(pkgs []*Package) *Program {
	prog := &Program{
		funcs:  map[string]*progFunc{},
		edges:  map[string]map[string]*lockEdge{},
		fields: map[string]*fieldFacts{},
	}
	if len(pkgs) == 0 {
		return prog
	}
	prog.fset = pkgs[0].Fset
	for _, pkg := range pkgs {
		pass := &Pass{Package: pkg}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				pf := &progFunc{
					key:     declKey(pkg, fd),
					display: declDisplay(fd),
					pkgPath: pkg.Path,
					decl:    fd,
					pkg:     pkg,
				}
				prog.walkFunc(pass, pf, fd.Recv, fd.Body)
				if pf.key != "" {
					prog.funcs[pf.key] = pf
				}
			}
		}
	}
	prog.summarize(prog.all)
	prog.recordEdges(prog.all)
	return prog
}

// walkFunc runs the lock-set walk over one body, recording facts on pf.
// Nested function literals become their own anonymous units with empty
// entry lock sets: a goroutine's blocking op must not make its *parent*
// look blocking, but lock edges and unguarded writes inside it are still
// real module-wide facts.
func (prog *Program) walkFunc(pass *Pass, pf *progFunc, recv *ast.FieldList, body *ast.BlockStmt) {
	prog.all = append(prog.all, pf)
	v := &lockVisitor{
		acquire: func(l heldLock, before []heldLock) {
			for _, h := range before {
				if h.id.key == l.id.key && h.id.base == l.id.base && !h.id.read && !l.id.read {
					pf.selfDL = append(pf.selfDL, selfDeadlock{pos: l.pos, id: l.id})
					return
				}
			}
			pf.acquires = append(pf.acquires, acqFact{lock: l, held: cloneHeld(before)})
		},
		call: func(call *ast.CallExpr, held []heldLock) {
			if desc := blockingCallDesc(pass, call); desc != "" {
				pf.blocks = append(pf.blocks, blockFact{pos: call.Pos(), desc: desc, held: cloneHeld(held)})
				return
			}
			pf.calls = append(pf.calls, callFact{callee: calleeKey(pass, call), pos: call.Pos(), held: cloneHeld(held)})
		},
		chanop: func(pos token.Pos, what string, held []heldLock) {
			pf.blocks = append(pf.blocks, blockFact{pos: pos, desc: what, held: cloneHeld(held)})
		},
		write: func(lhs ast.Expr, pos token.Pos, held []heldLock) {
			prog.recordFieldWrite(pass, pf, recv, lhs, pos, held)
		},
		funclit: func(lit *ast.FuncLit) {
			anon := &progFunc{
				display: pf.display + " (func literal)",
				pkgPath: pf.pkgPath,
				decl:    lit,
				pkg:     pf.pkg,
			}
			prog.walkFunc(pass, anon, recv, lit.Body)
		},
	}
	var held []heldLock
	walkLockPath(pass, body.List, &held, v)
}

// blockingCallDesc classifies a call site as an inherently blocking or
// transmitting operation, mirroring journalorder's conventions: the
// send/multicast/sealSend helper families, Send on a Transport, and the
// journal durability methods (whose fsync can stall the caller for as
// long as the disk pleases). Inside internal/journal itself the
// durability methods are the implementation, not a caller's hazard.
func blockingCallDesc(p *Pass, call *ast.CallExpr) string {
	var name string
	var recv ast.Expr
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		recv = fun.X
	default:
		return ""
	}
	switch {
	case sendCallRE.MatchString(name):
		return name + " (transport send)"
	case recv != nil && name == "Send" && isNamedType(p.TypeOf(recv), "", "Transport"):
		return "Transport.Send"
	case recv != nil && errcheckJournalMethods[name] && isNamedType(p.TypeOf(recv), "journal", "Journal") &&
		!strings.HasSuffix(p.Path, "internal/journal"):
		return "journal " + name + " (fsync)"
	}
	return ""
}

// calleeKey resolves a call to the qualified symbol of its static
// callee, or "" for interface calls, function values, and builtins.
func calleeKey(p *Pass, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if f, ok := p.Info.Uses[fun].(*types.Func); ok {
			return funcObjKey(f)
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				if _, isIface := deref(sel.Recv()).Underlying().(*types.Interface); isIface {
					return ""
				}
				return funcObjKey(f)
			}
			return ""
		}
		if f, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return funcObjKey(f)
		}
	}
	return ""
}

// funcObjKey renders a *types.Func as "pkgpath.Name" or
// "pkgpath.Recv.Name".
func funcObjKey(f *types.Func) string {
	pkg := f.Pkg()
	if pkg == nil {
		return ""
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named, ok := deref(sig.Recv().Type()).(*types.Named); ok {
			return pkg.Path() + "." + named.Obj().Name() + "." + f.Name()
		}
		return ""
	}
	return pkg.Path() + "." + f.Name()
}

// declKey renders a FuncDecl's qualified symbol with the same shape as
// funcObjKey, so call sites and declarations meet.
func declKey(pkg *Package, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return pkg.Path + "." + fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
			continue
		case *ast.IndexExpr: // generic receiver T[P]
			t = x.X
			continue
		case *ast.Ident:
			return pkg.Path + "." + x.Name + "." + fd.Name.Name
		default:
			return ""
		}
	}
}

// declDisplay renders a short human name: "win" or "(*Replica).win".
func declDisplay(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	star := ""
	if se, ok := t.(*ast.StarExpr); ok {
		star, t = "*", se.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return "(" + star + id.Name + ")." + fd.Name.Name
	}
	return fd.Name.Name
}

// recordFieldWrite classifies an assignment for guardedby: only direct
// writes to fields of the method's own receiver count, and a write is
// guarded when a mutex belonging to the same receiver is held.
func (prog *Program) recordFieldWrite(p *Pass, pf *progFunc, recv *ast.FieldList, lhs ast.Expr, pos token.Pos, held []heldLock) {
	if recv == nil || len(recv.List) == 0 || len(recv.List[0].Names) == 0 {
		return
	}
	recvName := recv.List[0].Names[0].Name
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	base, ok := sel.X.(*ast.Ident)
	if !ok || base.Name != recvName {
		return
	}
	s, ok := p.Info.Selections[sel]
	if !ok {
		return
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() || isMutexType(v.Type()) {
		return
	}
	named, ok := deref(s.Recv()).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok || !structHasMutex(st) {
		return
	}
	structKey := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	fk := structKey + "." + v.Name()
	ff := prog.fields[fk]
	if ff == nil {
		ff = &fieldFacts{structKey: structKey, field: v.Name()}
		prog.fields[fk] = ff
	}
	guarded := false
	for _, h := range held {
		if h.id.root == recvName && strings.HasPrefix(h.id.key, structKey+".") {
			guarded = true
			break
		}
	}
	if guarded {
		ff.guarded = append(ff.guarded, pos)
	} else {
		ff.unguarded = append(ff.unguarded, unguardedWrite{pos: pos, pkgPath: pf.pkgPath, fn: pf.display})
	}
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// structHasMutex reports whether the struct declares (or embeds) a mutex
// field — the precondition for guardedby to reason about it.
func structHasMutex(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		if isMutexType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// summarize computes the transitive blocking and lock-set summaries by
// fixpoint over the call graph.
func (prog *Program) summarize(order []*progFunc) {
	for _, pf := range order {
		if len(pf.blocks) > 0 {
			b := pf.blocks[0]
			pf.blockVia = &blockSummary{desc: b.desc, pos: b.pos}
		}
		pf.lockSet = map[string]lockWitness{}
		for _, a := range pf.acquires {
			if _, seen := pf.lockSet[a.lock.id.key]; !seen {
				pf.lockSet[a.lock.id.key] = lockWitness{pos: a.lock.pos}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, pf := range order {
			for _, c := range pf.calls {
				callee := prog.funcs[c.callee]
				if callee == nil || callee == pf {
					continue
				}
				if pf.blockVia == nil && callee.blockVia != nil {
					pf.blockVia = &blockSummary{desc: callee.blockVia.desc, pos: callee.blockVia.pos, via: callee.display}
					changed = true
				}
				for key, w := range callee.lockSet {
					if _, seen := pf.lockSet[key]; !seen {
						via := callee.display
						if w.via != "" {
							via = w.via
						}
						pf.lockSet[key] = lockWitness{pos: w.pos, via: via}
						changed = true
					}
				}
			}
		}
	}
}

// recordEdges populates the global lock-order graph: a direct edge for
// every acquire under a held lock, and an interprocedural edge for every
// lock a callee may take while the caller holds one.
func (prog *Program) recordEdges(order []*progFunc) {
	add := func(a, b string, e *lockEdge) {
		if a == b {
			return // same declaration: instance identity is ambiguous
		}
		m := prog.edges[a]
		if m == nil {
			m = map[string]*lockEdge{}
			prog.edges[a] = m
		}
		if _, dup := m[b]; !dup {
			m[b] = e
		}
	}
	for _, pf := range order {
		for _, a := range pf.acquires {
			for _, h := range a.held {
				add(h.id.key, a.lock.id.key, &lockEdge{pos: a.lock.pos, pkgPath: pf.pkgPath, fn: pf.display})
			}
		}
		for _, c := range pf.calls {
			callee := prog.funcs[c.callee]
			if callee == nil || len(c.held) == 0 {
				continue
			}
			keys := make([]string, 0, len(callee.lockSet))
			for key := range callee.lockSet {
				keys = append(keys, key)
			}
			sort.Strings(keys)
			for _, h := range c.held {
				for _, key := range keys {
					via := callee.display
					if w := callee.lockSet[key]; w.via != "" {
						via = callee.display + " → " + w.via
					}
					add(h.id.key, key, &lockEdge{pos: c.pos, pkgPath: pf.pkgPath, fn: pf.display, via: via})
				}
			}
		}
	}
}

// funcsIn returns the package's analyzed units (declarations and
// literals) in source order.
func (prog *Program) funcsIn(path string) []*progFunc {
	var out []*progFunc
	for _, pf := range prog.all {
		if pf.pkgPath == path {
			out = append(out, pf)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].decl.Pos() < out[j].decl.Pos() })
	return out
}

// posString formats a position against the program's shared FileSet.
func (prog *Program) posString(pos token.Pos) string {
	p := prog.fset.Position(pos)
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}
