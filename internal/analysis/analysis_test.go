package analysis_test

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"mykil/internal/analysis"
)

// sharedLoader caches one Loader across every test in the package, so the
// standard library is type-checked from source once, not per fixture.
var (
	loaderOnce sync.Once
	loader     *analysis.Loader
	loaderErr  error
)

func getLoader(t *testing.T) *analysis.Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loader, loaderErr = analysis.NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loader
}

func loadFixture(t *testing.T, rel string) *analysis.Package {
	t.Helper()
	pkg, err := getLoader(t).Load(filepath.Join("testdata", "src", rel))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", rel, err)
	}
	return pkg
}

// expectation is one `// want "substring"` comment from a fixture.
type expectation struct {
	file    string
	line    int
	substr  string
	matched bool
}

var (
	wantRE   = regexp.MustCompile(`//\s*want\s+(".*)$`)
	quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
)

// collectWants extracts expectations from a fixture package's comments.
func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
					s, err := strconv.Unquote(`"` + q[1] + `"`)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %q: %v", pos.Filename, pos.Line, q[1], err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, substr: s})
				}
			}
		}
	}
	return wants
}

// checkFixture runs every registered check over the fixture and compares
// the surviving diagnostics against its want comments, both directions.
func checkFixture(t *testing.T, rel string) {
	t.Helper()
	pkg := loadFixture(t, rel)
	wants := collectWants(t, pkg)
	diags := analysis.Run([]*analysis.Package{pkg}, analysis.Checks())

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && strings.Contains(d.Message, w.substr) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: want %q, got no matching diagnostic", w.file, w.line, w.substr)
		}
	}
}

// TestFixtures drives the want-comment harness over one fixture package
// per check, plus the suppression fixtures.
func TestFixtures(t *testing.T) {
	fixtures := []string{
		"clockfix",
		"keyleakfix",
		"obsfix",
		"cryptfix",
		"wireswitch",
		"regress/internal/wire",
		"journalorderfix",
		"errcheckiofix",
		"lockorderfix",
		"sendlockedfix",
		"guardedbyfix",
		"keyflowfix",
		"jfsyncfix",
		"suppressfix",
		"fileignorefix",
		"strictpaths/internal/member",
		"strictpaths/internal/replica",
	}
	for _, rel := range fixtures {
		t.Run(strings.ReplaceAll(rel, "/", "_"), func(t *testing.T) {
			checkFixture(t, rel)
		})
	}
}

// TestMalformedDirectives asserts the lint-directive pseudo-check: a
// directive missing its reason, naming an unknown check, or naming no
// check at all is reported, and none of them suppress anything. The
// expectations live here rather than in want comments because a trailing
// comment on a directive line would parse as its reason.
func TestMalformedDirectives(t *testing.T) {
	pkg := loadFixture(t, "baddirectives")
	diags := analysis.Run([]*analysis.Package{pkg}, analysis.Checks())

	wantSubstrs := []string{
		`missing a reason`,
		`unknown check "nosuchcheck"`,
		`names no check`,
		`direct time.Now`, // the malformed directives suppress nothing
	}
	for _, substr := range wantSubstrs {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic containing %q; got %d diagnostics:\n%s", substr, len(diags), diagList(diags))
		}
	}
	if len(diags) != len(wantSubstrs) {
		t.Errorf("got %d diagnostics, want %d:\n%s", len(diags), len(wantSubstrs), diagList(diags))
	}
	for _, d := range diags {
		if d.Check == "lint-directive" || d.Check == "clockdiscipline" {
			continue
		}
		t.Errorf("diagnostic under unexpected check %q: %s", d.Check, d)
	}
}

// TestLookup covers the -checks flag resolution.
func TestLookup(t *testing.T) {
	all, err := analysis.Lookup("")
	if err != nil {
		t.Fatalf("Lookup(\"\"): %v", err)
	}
	if len(all) != 10 {
		t.Fatalf("Lookup(\"\") returned %d checks, want 10", len(all))
	}
	two, err := analysis.Lookup("keyleak, clockdiscipline")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if len(two) != 2 || two[0].Name != "clockdiscipline" || two[1].Name != "keyleak" {
		t.Fatalf("Lookup returned %v, want [clockdiscipline keyleak]", checkNames(two))
	}
	if _, err := analysis.Lookup("bogus"); err == nil {
		t.Fatal("Lookup(\"bogus\") did not fail")
	}
}

// TestSelectedChecksOnly verifies Run honors the check subset: with only
// errcheck-io selected, clockfix's violations go unreported.
func TestSelectedChecksOnly(t *testing.T) {
	pkg := loadFixture(t, "clockfix")
	only, err := analysis.Lookup("errcheck-io")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if diags := analysis.Run([]*analysis.Package{pkg}, only); len(diags) != 0 {
		t.Errorf("errcheck-io reported %d diagnostics on clockfix:\n%s", len(diags), diagList(diags))
	}
}

func checkNames(cs []*analysis.Check) []string {
	var out []string
	for _, c := range cs {
		out = append(out, c.Name)
	}
	return out
}

func diagList(diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}
