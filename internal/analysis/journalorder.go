package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// journalorder enforces the crash-consistency ordering from §IV: mutate →
// journal → send. A handler that transmits an acknowledgement (or any
// protocol frame derived from new state) before appending that state to
// the journal can crash in the window between the two; after recovery the
// peer holds an ack for state the journal never saw, and replay
// reconstructs a world that disagrees with what was promised on the wire.
//
// The check is a reachability approximation, not full dominance analysis:
// within one function body it collects journal events and transport sends
// in source order along the "main path". Branches that always terminate
// (end in return or panic) are diverted — an early denial send inside
// `if bad { send; return }` never reaches the journal call below it and
// is not flagged. A send that is followed later on the main path by a
// journal event is flagged: the journal write must move above it.
//
// Journal events: calls to journalXxx helpers, or Append/Snapshot methods
// on a journal.Journal. Sends: send*/multicast*/sealSend* helpers, or a
// Send method on a Transport. Function literals are analyzed as their own
// units (they run at a different time than the enclosing body).

var (
	journalCallRE = regexp.MustCompile(`^journal[A-Z]`)
	sendCallRE    = regexp.MustCompile(`^(send|multicast|sealSend)`)
)

func init() {
	Register(&Check{
		Name: "journalorder",
		Doc: "journal Append must precede the corresponding transport send in the same\n" +
			"function (mutate → journal → send); a crash between send and append leaves\n" +
			"peers holding acks for state recovery cannot replay (§IV)",
		Run: runJournalOrder,
	})
}

type joKind int

const (
	joJournal joKind = iota
	joSend
)

type joEvent struct {
	kind joKind
	pos  token.Pos
	name string
}

func runJournalOrder(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkOrdering(p, fn.Body.List)
				}
			case *ast.FuncLit:
				checkOrdering(p, fn.Body.List)
			}
			return true
		})
	}
}

// checkOrdering flags every main-path send that a later main-path journal
// event should have preceded.
func checkOrdering(p *Pass, stmts []ast.Stmt) {
	var events []joEvent
	mainPathEvents(p, stmts, &events)
	for i, e := range events {
		if e.kind != joSend {
			continue
		}
		for _, later := range events[i+1:] {
			if later.kind == joJournal {
				p.Reportf(e.pos, "%s transmits before %s journals; a crash in between acks state that recovery cannot replay — journal first (§IV)", e.name, later.name)
				break
			}
		}
	}
}

// mainPathEvents appends the journal/send events reachable on the fallthrough
// path of stmts, in source order. Branches that always terminate are
// diverted and contribute nothing.
func mainPathEvents(p *Pass, stmts []ast.Stmt, out *[]joEvent) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.IfStmt:
			scanStmtCalls(p, s.Init, out)
			scanExprCalls(p, s.Cond, out)
			if !terminates(s.Body.List) {
				mainPathEvents(p, s.Body.List, out)
			}
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				if !terminates(e.List) {
					mainPathEvents(p, e.List, out)
				}
			case *ast.IfStmt:
				mainPathEvents(p, []ast.Stmt{e}, out)
			}
		case *ast.ForStmt:
			scanStmtCalls(p, s.Init, out)
			scanExprCalls(p, s.Cond, out)
			mainPathEvents(p, s.Body.List, out)
			scanStmtCalls(p, s.Post, out)
		case *ast.RangeStmt:
			scanExprCalls(p, s.X, out)
			mainPathEvents(p, s.Body.List, out)
		case *ast.SwitchStmt:
			scanStmtCalls(p, s.Init, out)
			scanExprCalls(p, s.Tag, out)
			for _, cs := range s.Body.List {
				if cc, ok := cs.(*ast.CaseClause); ok && !terminates(cc.Body) {
					mainPathEvents(p, cc.Body, out)
				}
			}
		case *ast.TypeSwitchStmt:
			scanStmtCalls(p, s.Init, out)
			for _, cs := range s.Body.List {
				if cc, ok := cs.(*ast.CaseClause); ok && !terminates(cc.Body) {
					mainPathEvents(p, cc.Body, out)
				}
			}
		case *ast.SelectStmt:
			for _, cs := range s.Body.List {
				if cc, ok := cs.(*ast.CommClause); ok && !terminates(cc.Body) {
					mainPathEvents(p, cc.Body, out)
				}
			}
		case *ast.BlockStmt:
			mainPathEvents(p, s.List, out)
		case *ast.LabeledStmt:
			mainPathEvents(p, []ast.Stmt{s.Stmt}, out)
		case *ast.DeferStmt, *ast.GoStmt:
			// Deferred sends run after every journal call in the body;
			// goroutine bodies are separate timelines. Neither is ordered
			// against the main path.
		default:
			scanStmtCalls(p, stmt, out)
		}
	}
}

// terminates reports whether a statement list always leaves the function
// (approximation: ends in return or panic).
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(last.List)
	case *ast.IfStmt:
		elseBlock, ok := last.Else.(*ast.BlockStmt)
		return ok && terminates(last.Body.List) && terminates(elseBlock.List)
	}
	return false
}

// scanStmtCalls classifies the event calls inside one simple statement,
// without crossing into nested function literals.
func scanStmtCalls(p *Pass, stmt ast.Stmt, out *[]joEvent) {
	if stmt == nil {
		return
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			classifyCall(p, call, out)
		}
		return true
	})
}

func scanExprCalls(p *Pass, e ast.Expr, out *[]joEvent) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			classifyCall(p, call, out)
		}
		return true
	})
}

// classifyCall appends a journal or send event when the call matches the
// repo's conventions.
func classifyCall(p *Pass, call *ast.CallExpr, out *[]joEvent) {
	var name string
	var recv ast.Expr
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		recv = fun.X
	default:
		return
	}
	switch {
	case journalCallRE.MatchString(name):
		*out = append(*out, joEvent{joJournal, call.Pos(), name})
	case recv != nil && (name == "Append" || name == "Snapshot") && isNamedType(p.TypeOf(recv), "journal", "Journal"):
		*out = append(*out, joEvent{joJournal, call.Pos(), "Journal." + name})
	case sendCallRE.MatchString(name):
		*out = append(*out, joEvent{joSend, call.Pos(), name})
	case recv != nil && name == "Send" && isNamedType(p.TypeOf(recv), "", "Transport"):
		*out = append(*out, joEvent{joSend, call.Pos(), "Transport.Send"})
	}
}

// isNamedType reports whether t is (a pointer to) a named type with the
// given name, from a package with the given name ("" matches any package).
func isNamedType(t types.Type, pkgName, typeName string) bool {
	named, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != typeName {
		return false
	}
	if pkgName == "" {
		return true
	}
	return obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}
