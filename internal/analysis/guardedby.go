package analysis

import "sort"

// guardedby infers, per struct field, whether the field is meant to be
// guarded by its struct's mutex — by majority vote over every write the
// module makes to it — and flags the minority sites. A field written
// under the lock at five sites and bare at one is almost certainly a
// data race at the bare site; the replica's pledge/LSN state and the
// topology watermarks are exactly the fields where a torn write during
// failover corrupts the recovery the paper promises (§IV).
//
// Scope is deliberately narrow to keep the verdict trustworthy:
//   - only structs that declare a sync.Mutex/RWMutex field participate;
//   - only writes of the form recv.field inside methods count (plain
//     functions and constructors initialize freely);
//   - a write is "guarded" when a mutex rooted at the same receiver is
//     held at the write, per the lock-set walk;
//   - only a strict majority of guarded writes flags the bare ones —
//     a 50/50 field is a design question, not a diagnostic.

func init() {
	Register(&Check{
		Name: "guardedby",
		Doc: "a struct field written mostly under the struct's own mutex must not also\n" +
			"be written bare: the minority sites are flagged as likely data races\n" +
			"(majority-vote inference over every receiver-field write in the module)",
		Run:             runGuardedBy,
		NoSuppressPaths: []string{"internal/replica"},
	})
}

func runGuardedBy(p *Pass) {
	prog := p.Prog
	if prog == nil {
		return
	}
	keys := make([]string, 0, len(prog.fields))
	for k := range prog.fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ff := prog.fields[k]
		if len(ff.unguarded) == 0 || len(ff.guarded) <= len(ff.unguarded) {
			continue
		}
		for _, w := range ff.unguarded {
			if w.pkgPath != p.Path {
				continue
			}
			p.Reportf(w.pos, "%s.%s is written under the struct's mutex at %d other site(s) but bare here in %s; hold the mutex or document the field as unshared",
				trimKey(ff.structKey), ff.field, len(ff.guarded), w.fn)
		}
	}
}
