// Package model encodes the closed-form cost arithmetic of the paper's
// §V analysis: tree depths, per-event rekey bytes, per-member storage,
// and aggregate CPU cost for Mykil, LKH, and Iolus. The experiment
// harness measures the real data structures; this package predicts them,
// and the tests in model_test.go pin the two against each other — the
// same cross-check the paper performs informally between its formulas
// and its prototype.
package model

import (
	"mykil/internal/crypt"
)

// KeyLen is the symmetric key length the paper's byte counts use.
const KeyLen = crypt.SymKeyLen

// TreeDepth returns the depth of a balanced arity-ary tree with n leaves
// (root depth 0): ceil(log_arity n), computed in integers — floating
// point rounds log(a^k)/log(a) past the integer boundary for some bases.
func TreeDepth(n, arity int) int {
	d, leaves := 0, 1
	for leaves < n {
		leaves *= arity
		d++
	}
	return d
}

// TreeNodes returns the node count of the balanced tree our engine
// builds over n leaves: n leaves plus the internal nodes of an evenly
// divided arity-ary hierarchy, approximately n·arity/(arity-1). The
// exact count is computed recursively, mirroring keytree.fillBalanced.
func TreeNodes(n, arity int) int {
	if n <= 1 {
		return 1
	}
	parts := arity
	if n < parts {
		parts = n
	}
	total := 1
	base, rem := n/parts, n%parts
	for i := 0; i < parts; i++ {
		size := base
		if i < rem {
			size++
		}
		total += TreeNodes(size, arity)
	}
	return total
}

// MemberKeys returns how many symmetric keys one member stores: one per
// path level (depth+1). §V-A's "11 keys" for a 5,000-member area rounds
// the binary depth down; this returns the exact balanced-tree value.
func MemberKeys(n, arity int) int { return TreeDepth(n, arity) + 1 }

// LeaveEntries returns the number of encrypted keys in a single-leave
// rekey multicast: each of the d changed ancestors re-encrypts under all
// its children, minus the vacated leaf, which no current member holds.
// The paper's formula (2·d for binary trees) keeps the vacated leaf;
// ours is arity·d − 1.
func LeaveEntries(n, arity int) int {
	d := TreeDepth(n, arity)
	if d == 0 {
		return 0
	}
	return arity*d - 1
}

// LeaveBytes returns the §V-C leave rekey size in bytes.
func LeaveBytes(n, arity int) int { return LeaveEntries(n, arity) * KeyLen }

// PaperLKHLeaveBytes is the paper's own figure-8 formula: 2 keys per
// level of a binary tree, vacated leaf included (2·d·16).
func PaperLKHLeaveBytes(n int) int { return 2 * TreeDepth(n, 2) * KeyLen }

// JoinEntries returns the number of encrypted keys multicast on a join:
// one self-encrypted entry per changed ancestor (the new leaf itself is
// unicast).
func JoinEntries(n, arity int) int { return TreeDepth(n, arity) }

// JoinBytes returns the join rekey multicast size.
func JoinBytes(n, arity int) int { return JoinEntries(n, arity) * KeyLen }

// IolusLeaveBytes returns Iolus's leave cost for a subgroup of m members:
// the new subgroup key unicast to each remaining member (§V-C: "about
// 80,000 bytes" for 5,000 members).
func IolusLeaveBytes(m int) int { return (m - 1) * KeyLen }

// IolusJoinBytes returns Iolus's join multicast cost: one encrypted key.
func IolusJoinBytes() int { return KeyLen }

// MykilLeaveBytes returns Mykil's leave cost with the group split into
// `areas` areas: a leave rekeys only the member's own area tree.
func MykilLeaveBytes(n, areas, arity int) int {
	return LeaveBytes(n/areas, arity)
}

// LKHLeaveCPU returns the total key updates across all members for one
// leave in a full-group LKH tree: members whose path diverges from the
// leaver's k levels below the root update exactly k keys. The buckets
// follow the leaver's subtree chain through the evenly divided tree the
// engine builds — the leftmost child of an n-member node holds
// ceil(n/parts) members.
func LKHLeaveCPU(n, arity int) int {
	total, k := 0, 1
	population := n
	for population > 1 {
		parts := arity
		if population < parts {
			parts = population
		}
		leaverSide := population / parts
		if population%parts > 0 {
			leaverSide++
		}
		total += k * (population - leaverSide)
		population = leaverSide
		k++
	}
	return total
}

// MykilLeaveCPU confines the LKH computation to one area.
func MykilLeaveCPU(n, areas, arity int) int { return LKHLeaveCPU(n/areas, arity) }

// IolusLeaveCPU is one key update per remaining subgroup member.
func IolusLeaveCPU(m int) int { return m - 1 }

// BatchedLeaveEntriesBestCase returns the rekey entries when k leavers
// occupy one subtree of a balanced arity-ary tree with n leaves: the
// shared ancestors are updated once. With the k leavers filling whole
// sibling sets, the changed set is the cohort subtree's ancestor path
// plus the cohort-internal nodes; entry count is dominated by
// arity·(d − log_arity k) for the shared path.
func BatchedLeaveEntriesBestCase(n, k, arity int) int {
	d := TreeDepth(n, arity)
	kd := TreeDepth(k, arity)
	if d <= kd {
		return arity*d - 1
	}
	// Shared path above the cohort: (d-kd) levels, arity entries each,
	// minus the one vacated branch at the cohort root; inside the cohort
	// every node is vacated (no entries).
	return arity*(d-kd) - 1
}

// BatchSavingsPct returns the §III-E message savings for flushing b
// events at once instead of rekeying per event: 1 − 1/b.
func BatchSavingsPct(eventsPerFlush int) float64 {
	if eventsPerFlush <= 0 {
		return 0
	}
	return 100 * (1 - 1/float64(eventsPerFlush))
}

// StorageMemberBytes returns §V-A member symmetric-key storage for the
// three protocols.
func StorageMemberBytes(n, areas, arity int) (iolus, lkh, mykil int) {
	iolus = 2 * KeyLen
	lkh = MemberKeys(n, arity) * KeyLen
	mykil = MemberKeys(n/areas, arity) * KeyLen
	return iolus, lkh, mykil
}

// StorageControllerBytes returns §V-A controller storage for the three
// protocols.
func StorageControllerBytes(n, areas, arity int) (iolus, lkh, mykil int) {
	m := n / areas
	iolus = (m + 1) * KeyLen
	lkh = TreeNodes(n, arity) * KeyLen
	mykil = TreeNodes(m, arity) * KeyLen
	return iolus, lkh, mykil
}
