package model_test

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"mykil/internal/bench"
	"mykil/internal/keytree"
	"mykil/internal/model"
)

func TestTreeDepth(t *testing.T) {
	cases := []struct{ n, arity, want int }{
		{1, 2, 0},
		{2, 2, 1},
		{4, 2, 2},
		{5, 2, 3},
		{1024, 2, 10},
		{100000, 2, 17},
		{5000, 2, 13},
		{64, 4, 3},
		{100000, 4, 9},
		{5000, 4, 7},
	}
	for _, tc := range cases {
		if got := model.TreeDepth(tc.n, tc.arity); got != tc.want {
			t.Errorf("model.TreeDepth(%d, %d) = %d, want %d", tc.n, tc.arity, got, tc.want)
		}
	}
}

func TestPaperConstants(t *testing.T) {
	// §V-A/§V-C headline numbers, from the closed forms alone.
	if got := model.PaperLKHLeaveBytes(100000); got != 544 {
		t.Errorf("paper LKH leave bytes = %d, want 544 (2*17*16)", got)
	}
	if got := model.IolusLeaveBytes(5000); got != 79984 {
		t.Errorf("Iolus leave bytes = %d, want ~80000", got)
	}
	if got := model.IolusLeaveBytes(100000); got != 1599984 {
		t.Errorf("Iolus 1-area leave bytes = %d, want ~1.6MB", got)
	}
	iolus, lkh, mykil := model.StorageMemberBytes(100000, 20, 2)
	if iolus != 32 {
		t.Errorf("Iolus member storage = %d, want 32", iolus)
	}
	if lkh != 288 { // paper says 272 with its rounded depth
		t.Errorf("LKH member storage = %d, want 288", lkh)
	}
	if mykil != 224 { // paper says 176 with its rounded depth
		t.Errorf("Mykil member storage = %d, want 224", mykil)
	}
	if got := model.BatchSavingsPct(2); got != 50 {
		t.Errorf("model.BatchSavingsPct(2) = %v", got)
	}
}

// buildTree mirrors the bench harness: balanced accounting tree.
func buildTree(t *testing.T, n, arity int) *keytree.Tree {
	t.Helper()
	tr := keytree.New(keytree.Config{
		Arity:     arity,
		Encryptor: keytree.AccountingEncryptor{},
		KeyGen:    bench.FastKeyGen(1),
	})
	ms := make([]keytree.MemberID, n)
	for i := range ms {
		ms[i] = keytree.MemberID(fmt.Sprintf("m%d", i))
	}
	if err := tr.Preload(ms); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestModelMatchesRealTreeDepth(t *testing.T) {
	for _, tc := range []struct{ n, arity int }{
		{100, 2}, {5000, 2}, {100000, 2}, {100, 4}, {5000, 4}, {4096, 4},
	} {
		tr := buildTree(t, tc.n, tc.arity)
		if got, want := tr.Depth(), model.TreeDepth(tc.n, tc.arity); got != want {
			t.Errorf("n=%d arity=%d: real depth %d, model %d", tc.n, tc.arity, got, want)
		}
		if got, want := tr.NumNodes(), model.TreeNodes(tc.n, tc.arity); got != want {
			t.Errorf("n=%d arity=%d: real nodes %d, model %d", tc.n, tc.arity, got, want)
		}
	}
}

func TestModelMatchesRealLeaveBytes(t *testing.T) {
	// The model predicts the leave rekey size for the deepest member of
	// a balanced tree; members at exactly depth d match it.
	for _, tc := range []struct{ n, arity int }{
		{1024, 2}, {5000, 2}, {100000, 2}, {4096, 4},
	} {
		tr := buildTree(t, tc.n, tc.arity)
		res, err := tr.Leave("m0") // leftmost member sits at max depth
		if err != nil {
			t.Fatal(err)
		}
		if got, want := res.Update.PaperBytes(), model.LeaveBytes(tc.n, tc.arity); got != want {
			t.Errorf("n=%d arity=%d: real leave bytes %d, model %d", tc.n, tc.arity, got, want)
		}
	}
}

func TestModelMatchesRealJoinBytes(t *testing.T) {
	for _, tc := range []struct{ n, arity int }{
		{1024, 2}, {4096, 4},
	} {
		tr := buildTree(t, tc.n, tc.arity)
		// Vacate one leaf so the join reuses it at max depth.
		if _, err := tr.Leave("m0"); err != nil {
			t.Fatal(err)
		}
		res, err := tr.Join("fresh")
		if err != nil {
			t.Fatal(err)
		}
		if got, want := res.Update.PaperBytes(), model.JoinBytes(tc.n, tc.arity); got != want {
			t.Errorf("n=%d arity=%d: real join bytes %d, model %d", tc.n, tc.arity, got, want)
		}
	}
}

func TestModelMatchesRealCPUTotal(t *testing.T) {
	for _, tc := range []struct{ n, arity int }{
		{1024, 2}, {4096, 2}, {4096, 4},
	} {
		tr := buildTree(t, tc.n, tc.arity)
		res, err := tr.Leave("m0")
		if err != nil {
			t.Fatal(err)
		}
		counts := keytree.UpdateCountsPerMember(tr, res.Update)
		total := 0
		for k, c := range counts {
			total += k * c
		}
		if want := model.LKHLeaveCPU(tc.n, tc.arity); total != want {
			t.Errorf("n=%d arity=%d: real CPU total %d, model %d", tc.n, tc.arity, total, want)
		}
	}
}

func TestModelMatchesBenchRows(t *testing.T) {
	rows, err := bench.LeaveBandwidth(8192, []int{1, 2, 4, 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.IolusBytes != model.IolusLeaveBytes(row.AreaSize) {
			t.Errorf("areas=%d: Iolus measured %d, model %d",
				row.Areas, row.IolusBytes, model.IolusLeaveBytes(row.AreaSize))
		}
		if row.MykilBytes != model.MykilLeaveBytes(8192, row.Areas, 2) {
			t.Errorf("areas=%d: Mykil measured %d, model %d",
				row.Areas, row.MykilBytes, model.MykilLeaveBytes(8192, row.Areas, 2))
		}
	}
}

func TestBestCaseAggregationModel(t *testing.T) {
	// A cohort of arity^j siblings leaving a complete tree produces the
	// predicted shared-path entry count.
	tr := buildTree(t, 4096, 2)
	cohort, err := tr.CohortOf("m0", 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.BatchLeave(cohort)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Update.NumKeys(), model.BatchedLeaveEntriesBestCase(4096, 8, 2); got != want {
		t.Errorf("best-case batch entries = %d, model %d", got, want)
	}
}

func TestDepthMonotonicProperty(t *testing.T) {
	f := func(nRaw, arityRaw uint8) bool {
		n := int(nRaw)%2000 + 1
		arity := int(arityRaw)%7 + 2
		d := model.TreeDepth(n, arity)
		// Depth bounds: arity^d >= n > arity^(d-1).
		if math.Pow(float64(arity), float64(d)) < float64(n) {
			return false
		}
		if d > 0 && math.Pow(float64(arity), float64(d-1)) >= float64(n) {
			return false
		}
		// More members never shrink the model costs.
		return model.LeaveBytes(2*n, arity) >= model.LeaveBytes(n, arity) &&
			model.MemberKeys(2*n, arity) >= model.MemberKeys(n, arity)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
