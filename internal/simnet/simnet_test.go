package simnet

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// recv waits up to five seconds for one envelope.
func recv(t *testing.T, ep *Endpoint) Envelope {
	t.Helper()
	select {
	case env := <-ep.Inbox():
		return env
	case <-time.After(5 * time.Second):
		t.Fatalf("endpoint %s: no delivery within timeout", ep.Addr())
		return Envelope{}
	}
}

// expectSilence asserts nothing arrives within the window.
func expectSilence(t *testing.T, ep *Endpoint, window time.Duration) {
	t.Helper()
	select {
	case env := <-ep.Inbox():
		t.Fatalf("endpoint %s: unexpected delivery from %s", ep.Addr(), env.From)
	case <-time.After(window):
	}
}

func TestBasicDelivery(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a := n.MustEndpoint("a")
	b := n.MustEndpoint("b")

	if err := a.Send("b", []byte("hello")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	env := recv(t, b)
	if env.From != "a" || env.To != "b" || string(env.Payload) != "hello" {
		t.Errorf("got envelope %+v", env)
	}
}

func TestPayloadCopied(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a := n.MustEndpoint("a")
	b := n.MustEndpoint("b")

	buf := []byte("original")
	if err := a.Send("b", buf); err != nil {
		t.Fatalf("Send: %v", err)
	}
	copy(buf, "CLOBBER!")
	if got := string(recv(t, b).Payload); got != "original" {
		t.Errorf("payload = %q; sender mutation leaked through", got)
	}
}

func TestFIFOPerLink(t *testing.T) {
	n := New(Config{DefaultLatency: time.Millisecond})
	defer n.Close()
	a := n.MustEndpoint("a")
	b := n.MustEndpoint("b")

	const count = 100
	for i := 0; i < count; i++ {
		if err := a.Send("b", []byte{byte(i)}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	for i := 0; i < count; i++ {
		env := recv(t, b)
		if env.Payload[0] != byte(i) {
			t.Fatalf("delivery %d carried sequence %d: FIFO violated", i, env.Payload[0])
		}
	}
}

func TestUnknownDestination(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a := n.MustEndpoint("a")
	if err := a.Send("ghost", []byte("x")); !errors.Is(err, ErrNodeUnknown) {
		t.Errorf("Send to unknown: err=%v, want ErrNodeUnknown", err)
	}
}

func TestSelfDeliveryRejected(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a := n.MustEndpoint("a")
	if err := a.Send("a", []byte("x")); !errors.Is(err, ErrSelfDelivery) {
		t.Errorf("self send: err=%v, want ErrSelfDelivery", err)
	}
}

func TestDuplicateRegistration(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	n.MustEndpoint("a")
	if _, err := n.Endpoint("a"); !errors.Is(err, ErrNodeExists) {
		t.Errorf("duplicate register: err=%v, want ErrNodeExists", err)
	}
}

func TestPartitionBlocksAndHealRestores(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a := n.MustEndpoint("a")
	b := n.MustEndpoint("b")

	n.SetPartitions([]string{"a"}, []string{"b"})
	if !n.Partitioned("a", "b") {
		t.Fatal("Partitioned(a,b) = false after SetPartitions")
	}
	if err := a.Send("b", []byte("lost")); err != nil {
		t.Fatalf("Send during partition returned error: %v", err)
	}
	expectSilence(t, b, 50*time.Millisecond)
	if got := n.Stats().Value(StatDroppedPartition); got != 1 {
		t.Errorf("dropped.partition = %d, want 1", got)
	}

	n.Heal()
	if n.Partitioned("a", "b") {
		t.Fatal("still partitioned after Heal")
	}
	if err := a.Send("b", []byte("through")); err != nil {
		t.Fatalf("Send after heal: %v", err)
	}
	if got := string(recv(t, b).Payload); got != "through" {
		t.Errorf("post-heal payload = %q", got)
	}
}

func TestPartitionImplicitGroup(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a := n.MustEndpoint("a")
	b := n.MustEndpoint("b")
	n.MustEndpoint("c")

	// Only c is named: a and b share the implicit group.
	n.SetPartitions([]string{"c"})
	if n.Partitioned("a", "b") {
		t.Error("a and b separated despite sharing the implicit group")
	}
	if !n.Partitioned("a", "c") {
		t.Error("a and c not separated")
	}
	if err := a.Send("b", []byte("ok")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	recv(t, b)
}

func TestCrashStopsSendsAndDeliveries(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a := n.MustEndpoint("a")
	b := n.MustEndpoint("b")

	n.Crash("b")
	if !n.Crashed("b") {
		t.Fatal("Crashed(b) = false")
	}
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatalf("Send to crashed node should drop silently, got err=%v", err)
	}
	expectSilence(t, b, 50*time.Millisecond)

	if err := b.Send("a", []byte("x")); !errors.Is(err, ErrNodeCrashed) {
		t.Errorf("send from crashed node: err=%v, want ErrNodeCrashed", err)
	}

	n.Restart("b")
	if n.Crashed("b") {
		t.Fatal("Crashed(b) = true after Restart")
	}
	if err := a.Send("b", []byte("back")); err != nil {
		t.Fatalf("Send after restart: %v", err)
	}
	if got := string(recv(t, b).Payload); got != "back" {
		t.Errorf("post-restart payload = %q", got)
	}
}

func TestDropRate(t *testing.T) {
	n := New(Config{DropRate: 1.0})
	defer n.Close()
	a := n.MustEndpoint("a")
	b := n.MustEndpoint("b")

	for i := 0; i < 10; i++ {
		if err := a.Send("b", []byte("x")); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	expectSilence(t, b, 50*time.Millisecond)
	if got := n.Stats().Value(StatDroppedRate); got != 10 {
		t.Errorf("dropped.rate = %d, want 10", got)
	}

	n.SetDropRate(0)
	if err := a.Send("b", []byte("ok")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	recv(t, b)
}

func TestLatencyDelaysDelivery(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a := n.MustEndpoint("a")
	b := n.MustEndpoint("b")
	n.SetLinkLatency("a", "b", 60*time.Millisecond)

	start := time.Now()
	if err := a.Send("b", []byte("delayed")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	recv(t, b)
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("delivery took %v, want >= ~60ms", elapsed)
	}
}

func TestDefaultLatencyOverride(t *testing.T) {
	n := New(Config{DefaultLatency: 60 * time.Millisecond})
	defer n.Close()
	a := n.MustEndpoint("a")
	b := n.MustEndpoint("b")
	n.SetLinkLatency("a", "b", 0) // override back to instant

	start := time.Now()
	if err := a.Send("b", []byte("fast")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	recv(t, b)
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Errorf("overridden link took %v, want near-instant", elapsed)
	}
}

func TestByteAccounting(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a := n.MustEndpoint("a")
	b := n.MustEndpoint("b")

	payloads := [][]byte{make([]byte, 10), make([]byte, 90)}
	for _, p := range payloads {
		if err := a.Send("b", p); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	recv(t, b)
	recv(t, b)
	if got := n.Stats().Value(StatSentBytes); got != 100 {
		t.Errorf("sent.bytes = %d, want 100", got)
	}
	if got := n.Stats().Value(StatSentMsgs); got != 2 {
		t.Errorf("sent.msgs = %d, want 2", got)
	}
	if got := n.Stats().Value(StatDeliveredMsgs); got != 2 {
		t.Errorf("delivered.msgs = %d, want 2", got)
	}
}

func TestEndpointClose(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a := n.MustEndpoint("a")
	b := n.MustEndpoint("b")

	b.Close()
	select {
	case <-b.Done():
	default:
		t.Fatal("Done not closed after Close")
	}
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatalf("Send to closed endpoint should drop silently: %v", err)
	}
	if err := b.Send("a", []byte("x")); !errors.Is(err, ErrNetClosed) {
		t.Errorf("send from closed endpoint: err=%v, want ErrNetClosed", err)
	}
}

func TestNetworkCloseIdempotentAndRejectsUse(t *testing.T) {
	n := New(Config{})
	a := n.MustEndpoint("a")
	n.MustEndpoint("b")
	n.Close()
	n.Close() // must not panic or hang
	if err := a.Send("b", []byte("x")); err == nil {
		t.Error("Send after network close succeeded")
	}
	if _, err := n.Endpoint("c"); !errors.Is(err, ErrNetClosed) {
		t.Errorf("Endpoint after close: err=%v, want ErrNetClosed", err)
	}
}

func TestConcurrentSenders(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	sink := n.MustEndpoint("sink")

	const senders, each = 8, 50
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		ep := n.MustEndpoint(fmt.Sprintf("s%d", i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				if err := ep.Send("sink", []byte{byte(j)}); err != nil {
					t.Errorf("Send: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for i := 0; i < senders*each; i++ {
		recv(t, sink)
	}
}

func TestInboxOverflowDrops(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a := n.MustEndpoint("a")
	n.MustEndpoint("b") // never reads

	for i := 0; i < inboxCapacity+10; i++ {
		if err := a.Send("b", []byte("x")); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	// Deliveries are async; wait for the drop counter to move.
	deadline := time.Now().Add(5 * time.Second)
	for n.Stats().Value(StatDroppedOverflow) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no overflow drops recorded")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestJitterStillDeliversInOrder(t *testing.T) {
	n := New(Config{DefaultLatency: time.Millisecond, Jitter: 3 * time.Millisecond, Seed: 9})
	defer n.Close()
	a := n.MustEndpoint("a")
	b := n.MustEndpoint("b")
	const count = 50
	for i := 0; i < count; i++ {
		if err := a.Send("b", []byte{byte(i)}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	// Per-link FIFO must survive jitter: the link goroutine delivers in
	// queue order even when later messages drew smaller jitter.
	for i := 0; i < count; i++ {
		env := recv(t, b)
		if env.Payload[0] != byte(i) {
			t.Fatalf("delivery %d carried %d: jitter broke FIFO", i, env.Payload[0])
		}
	}
}

func TestSeededRunsReproducible(t *testing.T) {
	run := func() int64 {
		n := New(Config{DropRate: 0.5, Seed: 1234})
		defer n.Close()
		a := n.MustEndpoint("a")
		n.MustEndpoint("b")
		for i := 0; i < 200; i++ {
			if err := a.Send("b", []byte{1}); err != nil {
				t.Fatalf("Send: %v", err)
			}
		}
		return n.Stats().Value(StatDroppedRate)
	}
	if d1, d2 := run(), run(); d1 != d2 {
		t.Errorf("same seed dropped %d then %d messages", d1, d2)
	}
}

func TestPartitionAsymmetryImpossible(t *testing.T) {
	// Partition groups are symmetric by construction: if a cannot reach b,
	// b cannot reach a.
	n := New(Config{})
	defer n.Close()
	n.MustEndpoint("a")
	n.MustEndpoint("b")
	n.SetPartitions([]string{"a"}, []string{"b"})
	if n.Partitioned("a", "b") != n.Partitioned("b", "a") {
		t.Error("partition check asymmetric")
	}
}
