// Package simnet is an in-memory message network used to run the full
// Mykil protocol stack — registration server, area controllers, members —
// inside one process. It models exactly the failure phenomena the paper's
// fault-tolerance machinery must survive:
//
//   - network partitions (§IV): disjoint node groups that cannot exchange
//     messages until healed;
//   - node crashes (§IV-C crash failure model): a crashed node neither
//     sends nor receives;
//   - message loss and per-link latency, for the join/rejoin latency
//     experiment (§V-D).
//
// Delivery is FIFO per (sender, receiver) link. All byte and message
// counts are recorded in a typed obs.Registry so experiments can report
// bandwidth.
package simnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"mykil/internal/clock"
	"mykil/internal/obs"
)

// Counter names recorded in the network's stats registry.
const (
	StatSentMsgs         = "sim.sent.msgs"
	StatSentBytes        = "sim.sent.bytes"
	StatDeliveredMsgs    = "sim.delivered.msgs"
	StatDroppedPartition = "sim.dropped.partition"
	StatDroppedCrashed   = "sim.dropped.crashed"
	StatDroppedRate      = "sim.dropped.rate"
	StatDroppedOverflow  = "sim.dropped.overflow"
	StatDroppedClosed    = "sim.dropped.closed"
)

// inboxCapacity bounds each endpoint's mailbox. Rekey bursts in the
// largest experiments stay well under this.
const inboxCapacity = 8192

// Errors returned by this package.
var (
	ErrNodeExists   = errors.New("simnet: node already registered")
	ErrNodeUnknown  = errors.New("simnet: node not registered")
	ErrNodeCrashed  = errors.New("simnet: node is crashed")
	ErrNetClosed    = errors.New("simnet: network closed")
	ErrSelfDelivery = errors.New("simnet: message addressed to sender")
)

// Envelope is one delivered message.
type Envelope struct {
	From    string
	To      string
	Payload []byte
}

// Config controls latency and loss. The zero value means instant, lossless
// delivery.
type Config struct {
	// DefaultLatency applies to every link without an override.
	DefaultLatency time.Duration
	// Jitter adds a uniformly random extra delay in [0, Jitter).
	Jitter time.Duration
	// DropRate drops each message independently with this probability.
	DropRate float64
	// Seed seeds the drop/jitter RNG; zero selects a fixed default so
	// runs are reproducible unless the caller opts out.
	Seed int64
	// Clock schedules deliveries; nil means the wall clock. Latency
	// experiments inject a fake clock to compress simulated time.
	Clock clock.Clock
}

// Network is the hub all endpoints attach to.
type Network struct {
	mu        sync.Mutex
	cfg       Config
	rng       *rand.Rand
	nodes     map[string]*Endpoint
	crashed   map[string]bool
	partition map[string]int // node -> group id; absent means group 0
	partEpoch int            // bumped on every partition change
	latency   map[linkKey]time.Duration
	links     map[linkKey]*link
	closed    bool
	wg        sync.WaitGroup
	clk       clock.Clock

	reg *obs.Registry

	// Typed counter handles, registered at construction.
	cSentMsgs      *obs.Counter
	cSentBytes     *obs.Counter
	cDeliveredMsgs *obs.Counter
	cDropPartition *obs.Counter
	cDropCrashed   *obs.Counter
	cDropRate      *obs.Counter
	cDropOverflow  *obs.Counter
	cDropClosed    *obs.Counter
}

type linkKey struct{ from, to string }

// New creates a network with the given config.
func New(cfg Config) *Network {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	n := &Network{
		cfg:       cfg,
		clk:       clk,
		rng:       rand.New(rand.NewSource(seed)),
		nodes:     make(map[string]*Endpoint),
		crashed:   make(map[string]bool),
		partition: make(map[string]int),
		latency:   make(map[linkKey]time.Duration),
		links:     make(map[linkKey]*link),
		reg:       obs.NewRegistry(),
	}
	n.cSentMsgs = n.reg.Counter(StatSentMsgs, "Messages submitted to the network.")
	n.cSentBytes = n.reg.Counter(StatSentBytes, "Payload bytes submitted to the network.")
	n.cDeliveredMsgs = n.reg.Counter(StatDeliveredMsgs, "Messages delivered to an inbox.")
	n.cDropPartition = n.reg.Counter(StatDroppedPartition, "Messages dropped crossing a partition boundary.")
	n.cDropCrashed = n.reg.Counter(StatDroppedCrashed, "Messages dropped because the destination had crashed.")
	n.cDropRate = n.reg.Counter(StatDroppedRate, "Messages dropped by random loss injection.")
	n.cDropOverflow = n.reg.Counter(StatDroppedOverflow, "Messages dropped because the destination inbox was full.")
	n.cDropClosed = n.reg.Counter(StatDroppedClosed, "Messages dropped because the endpoint or network had closed.")
	return n
}

// Stats returns the network's counter registry.
func (n *Network) Stats() *obs.Registry { return n.reg }

// Endpoint registers a new node and returns its endpoint.
func (n *Network) Endpoint(addr string) (*Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrNetClosed
	}
	if _, ok := n.nodes[addr]; ok {
		return nil, fmt.Errorf("%w: %q", ErrNodeExists, addr)
	}
	ep := &Endpoint{
		addr:  addr,
		net:   n,
		inbox: make(chan Envelope, inboxCapacity),
		done:  make(chan struct{}),
	}
	n.nodes[addr] = ep
	return ep, nil
}

// MustEndpoint is Endpoint but panics on error; for tests and examples.
func (n *Network) MustEndpoint(addr string) *Endpoint {
	ep, err := n.Endpoint(addr)
	if err != nil {
		panic(err)
	}
	return ep
}

// SetLinkLatency overrides the latency for messages from one node to
// another (one direction).
func (n *Network) SetLinkLatency(from, to string, d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency[linkKey{from, to}] = d
}

// SetDefaultLatency changes the latency applied to links without an
// override.
func (n *Network) SetDefaultLatency(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.DefaultLatency = d
}

// SetDropRate changes the independent per-message drop probability.
func (n *Network) SetDropRate(rate float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.DropRate = rate
}

// SetPartitions divides the network. Nodes in the same group communicate;
// nodes in different groups do not. Nodes not named in any group form one
// implicit extra group together. Calling with no arguments heals the
// network.
func (n *Network) SetPartitions(groups ...[]string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[string]int)
	n.partEpoch++
	for i, group := range groups {
		for _, node := range group {
			n.partition[node] = i + 1 // 0 is the implicit group
		}
	}
}

// Heal removes all partitions.
func (n *Network) Heal() { n.SetPartitions() }

// Partitioned reports whether two nodes are currently separated.
func (n *Network) Partitioned(a, b string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.partition[a] != n.partition[b]
}

// Crash marks a node as crashed: its sends fail and deliveries to it are
// dropped. Pending queued messages to it are discarded on delivery.
func (n *Network) Crash(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[addr] = true
}

// Restart clears a node's crashed state. Messages dropped while crashed
// are not replayed, matching a real reboot.
func (n *Network) Restart(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.crashed, addr)
}

// Crashed reports whether the node is currently crashed.
func (n *Network) Crashed(addr string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed[addr]
}

// Close shuts the network down and waits for link goroutines to exit.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	links := make([]*link, 0, len(n.links))
	for _, l := range n.links {
		links = append(links, l)
	}
	eps := make([]*Endpoint, 0, len(n.nodes))
	for _, ep := range n.nodes {
		eps = append(eps, ep)
	}
	n.mu.Unlock()

	for _, l := range links {
		l.stop()
	}
	for _, ep := range eps {
		ep.closeOnce.Do(func() { close(ep.done) })
	}
	n.wg.Wait()
}

// send validates, accounts, and schedules one message. Called by Endpoint.
func (n *Network) send(from, to string, payload []byte) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrNetClosed
	}
	if from == to {
		n.mu.Unlock()
		return ErrSelfDelivery
	}
	if _, ok := n.nodes[to]; !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNodeUnknown, to)
	}
	if n.crashed[from] {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNodeCrashed, from)
	}

	n.cSentMsgs.Inc()
	n.cSentBytes.Add(int64(len(payload)))

	// Loss and partition checks happen at send time; a partition that
	// forms after a message is in flight does not retroactively drop it.
	if n.partition[from] != n.partition[to] {
		n.mu.Unlock()
		n.cDropPartition.Inc()
		return nil // silent loss: senders learn via timeouts, like UDP/IP multicast
	}
	if n.cfg.DropRate > 0 && n.rng.Float64() < n.cfg.DropRate {
		n.mu.Unlock()
		n.cDropRate.Inc()
		return nil
	}

	delay := n.cfg.DefaultLatency
	if d, ok := n.latency[linkKey{from, to}]; ok {
		delay = d
	}
	if n.cfg.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(n.cfg.Jitter)))
	}

	l := n.linkLocked(from, to)
	n.mu.Unlock()

	l.enqueue(queuedMsg{
		env:       Envelope{From: from, To: to, Payload: payload},
		deliverAt: n.clk.Now().Add(delay),
	})
	return nil
}

// linkLocked returns (creating if needed) the link goroutine for a pair.
// Caller holds n.mu.
func (n *Network) linkLocked(from, to string) *link {
	key := linkKey{from, to}
	l, ok := n.links[key]
	if !ok {
		l = newLink(n)
		n.links[key] = l
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			l.run()
		}()
	}
	return l
}

// deliver hands a message to its destination endpoint, applying crash and
// close checks at delivery time.
func (n *Network) deliver(env Envelope) {
	n.mu.Lock()
	ep, ok := n.nodes[env.To]
	crashed := n.crashed[env.To]
	n.mu.Unlock()
	if !ok || crashed {
		n.cDropCrashed.Inc()
		return
	}
	select {
	case <-ep.done:
		n.cDropClosed.Inc()
		return
	default:
	}
	select {
	case ep.inbox <- env:
		n.cDeliveredMsgs.Inc()
	case <-ep.done:
		n.cDropClosed.Inc()
	default:
		n.cDropOverflow.Inc()
	}
}

type queuedMsg struct {
	env       Envelope
	deliverAt time.Time
}

// link delivers messages for one (from, to) pair in FIFO order, sleeping
// until each message's delivery time.
type link struct {
	net     *Network
	mu      sync.Mutex
	queue   []queuedMsg
	wake    chan struct{}
	stopped chan struct{}
	once    sync.Once
}

func newLink(n *Network) *link {
	return &link{
		net:     n,
		wake:    make(chan struct{}, 1),
		stopped: make(chan struct{}),
	}
}

func (l *link) enqueue(m queuedMsg) {
	l.mu.Lock()
	l.queue = append(l.queue, m)
	l.mu.Unlock()
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

func (l *link) stop() { l.once.Do(func() { close(l.stopped) }) }

func (l *link) run() {
	for {
		l.mu.Lock()
		var head *queuedMsg
		if len(l.queue) > 0 {
			head = &l.queue[0]
		}
		l.mu.Unlock()

		if head == nil {
			select {
			case <-l.wake:
				continue
			case <-l.stopped:
				return
			}
		}

		if wait := head.deliverAt.Sub(l.net.clk.Now()); wait > 0 {
			select {
			case <-l.net.clk.After(wait):
			case <-l.stopped:
				return
			}
		}

		l.mu.Lock()
		m := l.queue[0]
		l.queue = l.queue[1:]
		l.mu.Unlock()
		l.net.deliver(m.env)
	}
}

// Endpoint is one node's attachment to the network.
type Endpoint struct {
	addr      string
	net       *Network
	inbox     chan Envelope
	done      chan struct{}
	closeOnce sync.Once
}

// Addr returns the endpoint's network address.
func (e *Endpoint) Addr() string { return e.addr }

// Send transmits payload to another node. A nil error means the message
// was accepted, not that it will arrive: partitions and loss drop silently,
// as on a real best-effort network. Payload is copied; the caller may
// reuse the slice.
func (e *Endpoint) Send(to string, payload []byte) error {
	select {
	case <-e.done:
		return ErrNetClosed
	default:
	}
	buf := make([]byte, len(payload))
	copy(buf, payload)
	return e.net.send(e.addr, to, buf)
}

// Inbox returns the delivery channel. The channel is never closed; use
// Done to detect shutdown in selects.
func (e *Endpoint) Inbox() <-chan Envelope { return e.inbox }

// Done is closed when the endpoint (or the network) shuts down.
func (e *Endpoint) Done() <-chan struct{} { return e.done }

// Close detaches the endpoint; subsequent deliveries to it are dropped.
func (e *Endpoint) Close() {
	e.closeOnce.Do(func() { close(e.done) })
}
