// Package simnet is an in-memory message network used to run the full
// Mykil protocol stack — registration server, area controllers, members —
// inside one process. It models exactly the failure phenomena the paper's
// fault-tolerance machinery must survive:
//
//   - network partitions (§IV): disjoint node groups that cannot exchange
//     messages until healed;
//   - node crashes (§IV-C crash failure model): a crashed node neither
//     sends nor receives;
//   - message loss and per-link latency, for the join/rejoin latency
//     experiment (§V-D).
//
// Delivery is FIFO per (sender, receiver) link. All byte and message
// counts are recorded in a typed obs.Registry so experiments can report
// bandwidth.
//
// # Delivery engine
//
// Messages are delivered by a fixed pool of worker lanes (shards), not by
// per-link goroutines: every (from, to) link hashes to exactly one lane,
// and each lane drains its own priority queue in (delivery time, send
// sequence) order. A link's messages therefore always serialize through
// one lane, and because a link's delivery times are clamped to be
// non-decreasing (jitter never reorders a link, matching real FIFO
// transports), per-link FIFO holds by construction. The lane count is
// Config.Shards; per-lane queue depth gauges and per-lane drop counters
// are published through the stats registry.
//
// With Config.Virtual the engine collapses to a single lane, which makes
// the global delivery order deterministic: strictly ascending (timestamp,
// send sequence). Combined with a clock.Fake this is the mega-sim mode —
// the whole network advances under Fake.Advance with no wall-clock waits.
package simnet

import (
	"errors"
	"fmt"
	"hash/maphash"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"mykil/internal/clock"
	"mykil/internal/obs"
)

// Counter names recorded in the network's stats registry. The per-shard
// variants append ".shard<NN>" to the base name (e.g.
// "sim.dropped.overflow.shard03"); shard queue depths are gauges named
// "sim.shard<NN>.depth".
const (
	StatSentMsgs         = "sim.sent.msgs"
	StatSentBytes        = "sim.sent.bytes"
	StatDeliveredMsgs    = "sim.delivered.msgs"
	StatDroppedPartition = "sim.dropped.partition"
	StatDroppedCrashed   = "sim.dropped.crashed"
	StatDroppedRate      = "sim.dropped.rate"
	StatDroppedOverflow  = "sim.dropped.overflow"
	StatDroppedClosed    = "sim.dropped.closed"
)

// inboxCapacity is the default bound on each endpoint's mailbox. Rekey
// bursts in the largest experiments stay well under this; mega-sim runs
// shrink it via Config.InboxCapacity to keep 100k mailboxes affordable.
const inboxCapacity = 8192

// maxDefaultShards caps the default lane count so small test networks do
// not burn goroutines on parallelism they cannot use.
const maxDefaultShards = 8

// Errors returned by this package.
var (
	ErrNodeExists   = errors.New("simnet: node already registered")
	ErrNodeUnknown  = errors.New("simnet: node not registered")
	ErrNodeCrashed  = errors.New("simnet: node is crashed")
	ErrNetClosed    = errors.New("simnet: network closed")
	ErrSelfDelivery = errors.New("simnet: message addressed to sender")
)

// Envelope is one delivered message.
type Envelope struct {
	From    string
	To      string
	Payload []byte
}

// Config controls latency, loss, and the delivery engine. The zero value
// means instant, lossless delivery over min(GOMAXPROCS, 8) lanes.
type Config struct {
	// DefaultLatency applies to every link without an override.
	DefaultLatency time.Duration
	// Jitter adds a uniformly random extra delay in [0, Jitter).
	Jitter time.Duration
	// DropRate drops each message independently with this probability.
	DropRate float64
	// Seed seeds the drop/jitter RNG; zero selects a fixed default so
	// runs are reproducible unless the caller opts out.
	Seed int64
	// Clock schedules deliveries; nil means the wall clock. Latency
	// experiments inject a fake clock to compress simulated time.
	Clock clock.Clock
	// Shards is the number of delivery lanes. Zero picks
	// min(GOMAXPROCS, 8). Each (from, to) link is pinned to one lane, so
	// per-link FIFO is independent of the lane count.
	Shards int
	// InboxCapacity bounds each endpoint's mailbox; zero means the
	// 8192-slot default. Mega-sims with 100k endpoints set this to a few
	// dozen to keep idle mailbox memory linear-small.
	InboxCapacity int
	// InboxCapacityFor, if set, overrides InboxCapacity per endpoint
	// (return <= 0 to fall back). Mega-sims use it to give the few
	// controller/server endpoints deep mailboxes while the 10^5 member
	// mailboxes stay shallow.
	InboxCapacityFor func(addr string) int
	// Virtual selects the deterministic virtual-time scheduler: a single
	// delivery lane draining strictly in (timestamp, send order). Use
	// with a clock.Fake to run whole scenarios under Advance with zero
	// wall-clock waiting. Overrides Shards.
	Virtual bool
}

// Network is the hub all endpoints attach to.
type Network struct {
	mu        sync.Mutex
	cfg       Config
	rng       *rand.Rand
	seq       uint64 // total order over accepted sends
	nodes     map[string]*Endpoint
	crashed   map[string]bool
	partition map[string]int // node -> group id; absent means group 0
	partEpoch int            // bumped on every partition change
	latency   map[linkKey]time.Duration
	closed    bool
	stopped   chan struct{}
	wg        sync.WaitGroup
	clk       clock.Clock
	hashSeed  maphash.Seed

	shards []*shard

	reg *obs.Registry

	// Typed counter handles, registered at construction.
	cSentMsgs      *obs.Counter
	cSentBytes     *obs.Counter
	cDeliveredMsgs *obs.Counter
	cDropPartition *obs.Counter
	cDropCrashed   *obs.Counter
	cDropRate      *obs.Counter
	cDropOverflow  *obs.Counter
	cDropClosed    *obs.Counter
}

type linkKey struct{ from, to string }

// New creates a network with the given config.
func New(cfg Config) *Network {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
		if shards > maxDefaultShards {
			shards = maxDefaultShards
		}
	}
	if cfg.Virtual {
		shards = 1
	}
	n := &Network{
		cfg:       cfg,
		clk:       clk,
		rng:       rand.New(rand.NewSource(seed)),
		nodes:     make(map[string]*Endpoint),
		crashed:   make(map[string]bool),
		partition: make(map[string]int),
		latency:   make(map[linkKey]time.Duration),
		stopped:   make(chan struct{}),
		hashSeed:  maphash.MakeSeed(),
		reg:       obs.NewRegistry(),
	}
	n.cSentMsgs = n.reg.Counter(StatSentMsgs, "Messages submitted to the network.")
	n.cSentBytes = n.reg.Counter(StatSentBytes, "Payload bytes submitted to the network.")
	n.cDeliveredMsgs = n.reg.Counter(StatDeliveredMsgs, "Messages delivered to an inbox.")
	n.cDropPartition = n.reg.Counter(StatDroppedPartition, "Messages dropped crossing a partition boundary.")
	n.cDropCrashed = n.reg.Counter(StatDroppedCrashed, "Messages dropped because the destination had crashed.")
	n.cDropRate = n.reg.Counter(StatDroppedRate, "Messages dropped by random loss injection.")
	n.cDropOverflow = n.reg.Counter(StatDroppedOverflow, "Messages dropped because the destination inbox was full.")
	n.cDropClosed = n.reg.Counter(StatDroppedClosed, "Messages dropped because the endpoint or network had closed.")

	n.shards = make([]*shard, shards)
	for i := range n.shards {
		s := &shard{
			id:      i,
			net:     n,
			lastDue: make(map[linkKey]time.Time),
			wake:    make(chan struct{}, 1),
		}
		s.depth = n.reg.Gauge(fmt.Sprintf("sim.shard%02d.depth", i),
			fmt.Sprintf("Messages queued on delivery lane %d.", i))
		s.cDropPartition = n.reg.Counter(fmt.Sprintf("%s.shard%02d", StatDroppedPartition, i),
			fmt.Sprintf("Partition drops on links pinned to lane %d.", i))
		s.cDropCrashed = n.reg.Counter(fmt.Sprintf("%s.shard%02d", StatDroppedCrashed, i),
			fmt.Sprintf("Crash drops on links pinned to lane %d.", i))
		s.cDropRate = n.reg.Counter(fmt.Sprintf("%s.shard%02d", StatDroppedRate, i),
			fmt.Sprintf("Loss-injection drops on links pinned to lane %d.", i))
		s.cDropOverflow = n.reg.Counter(fmt.Sprintf("%s.shard%02d", StatDroppedOverflow, i),
			fmt.Sprintf("Inbox-overflow drops on links pinned to lane %d.", i))
		s.cDropClosed = n.reg.Counter(fmt.Sprintf("%s.shard%02d", StatDroppedClosed, i),
			fmt.Sprintf("Closed-endpoint drops on links pinned to lane %d.", i))
		n.shards[i] = s
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			s.run()
		}()
	}
	return n
}

// Stats returns the network's counter registry.
func (n *Network) Stats() *obs.Registry { return n.reg }

// NumShards returns the number of delivery lanes.
func (n *Network) NumShards() int { return len(n.shards) }

// shardFor pins a link to a lane.
func (n *Network) shardFor(k linkKey) *shard {
	if len(n.shards) == 1 {
		return n.shards[0]
	}
	var h maphash.Hash
	h.SetSeed(n.hashSeed)
	h.WriteString(k.from)
	h.WriteByte(0)
	h.WriteString(k.to)
	return n.shards[h.Sum64()%uint64(len(n.shards))]
}

// Endpoint registers a new node and returns its endpoint.
func (n *Network) Endpoint(addr string) (*Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrNetClosed
	}
	if _, ok := n.nodes[addr]; ok {
		return nil, fmt.Errorf("%w: %q", ErrNodeExists, addr)
	}
	capacity := 0
	if n.cfg.InboxCapacityFor != nil {
		capacity = n.cfg.InboxCapacityFor(addr)
	}
	if capacity <= 0 {
		capacity = n.cfg.InboxCapacity
	}
	if capacity <= 0 {
		capacity = inboxCapacity
	}
	ep := &Endpoint{
		addr:  addr,
		net:   n,
		inbox: make(chan Envelope, capacity),
		done:  make(chan struct{}),
	}
	n.nodes[addr] = ep
	return ep, nil
}

// MustEndpoint is Endpoint but panics on error; for tests and examples.
func (n *Network) MustEndpoint(addr string) *Endpoint {
	ep, err := n.Endpoint(addr)
	if err != nil {
		panic(err)
	}
	return ep
}

// SetLinkLatency overrides the latency for messages from one node to
// another (one direction).
func (n *Network) SetLinkLatency(from, to string, d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency[linkKey{from, to}] = d
}

// SetDefaultLatency changes the latency applied to links without an
// override.
func (n *Network) SetDefaultLatency(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.DefaultLatency = d
}

// SetDropRate changes the independent per-message drop probability.
func (n *Network) SetDropRate(rate float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.DropRate = rate
}

// SetPartitions divides the network. Nodes in the same group communicate;
// nodes in different groups do not. Nodes not named in any group form one
// implicit extra group together. Calling with no arguments heals the
// network.
func (n *Network) SetPartitions(groups ...[]string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[string]int)
	n.partEpoch++
	for i, group := range groups {
		for _, node := range group {
			n.partition[node] = i + 1 // 0 is the implicit group
		}
	}
}

// Heal removes all partitions.
func (n *Network) Heal() { n.SetPartitions() }

// Partitioned reports whether two nodes are currently separated.
func (n *Network) Partitioned(a, b string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.partition[a] != n.partition[b]
}

// Crash marks a node as crashed: its sends fail and deliveries to it are
// dropped. Pending queued messages to it are discarded on delivery.
func (n *Network) Crash(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[addr] = true
}

// Restart clears a node's crashed state. Messages dropped while crashed
// are not replayed, matching a real reboot.
func (n *Network) Restart(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.crashed, addr)
}

// Crashed reports whether the node is currently crashed.
func (n *Network) Crashed(addr string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed[addr]
}

// Pending reports how many accepted messages are still queued on delivery
// lanes. Mega-sim drivers combine this with NextDue to decide how far to
// advance a fake clock.
func (n *Network) Pending() int {
	total := 0
	for _, s := range n.shards {
		s.mu.Lock()
		total += s.pq.Len()
		s.mu.Unlock()
	}
	return total
}

// QueuedInboxes reports how many delivered envelopes are sitting in
// endpoint mailboxes, not yet consumed by their transports. Mega-sim
// drivers treat zero here (together with Pending() == 0) as the network
// half of a quiescence check before advancing virtual time.
func (n *Network) QueuedInboxes() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	total := 0
	for _, ep := range n.nodes {
		total += len(ep.inbox)
	}
	return total
}

// NextDue returns the earliest delivery deadline across all lanes, or
// ok=false when nothing is queued.
func (n *Network) NextDue() (t time.Time, ok bool) {
	for _, s := range n.shards {
		s.mu.Lock()
		if s.pq.Len() > 0 {
			due := s.pq[0].due
			if !ok || due.Before(t) {
				t, ok = due, true
			}
		}
		s.mu.Unlock()
	}
	return t, ok
}

// Close shuts the network down and waits for the delivery lanes to exit.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	eps := make([]*Endpoint, 0, len(n.nodes))
	for _, ep := range n.nodes {
		eps = append(eps, ep)
	}
	n.mu.Unlock()

	close(n.stopped)
	for _, ep := range eps {
		ep.closeOnce.Do(func() { close(ep.done) })
	}
	n.wg.Wait()
}

// send validates, accounts, and schedules one message. Called by Endpoint.
func (n *Network) send(from, to string, payload []byte) error {
	key := linkKey{from, to}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrNetClosed
	}
	if from == to {
		n.mu.Unlock()
		return ErrSelfDelivery
	}
	if _, ok := n.nodes[to]; !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNodeUnknown, to)
	}
	if n.crashed[from] {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNodeCrashed, from)
	}

	n.cSentMsgs.Inc()
	n.cSentBytes.Add(int64(len(payload)))
	sh := n.shardFor(key)

	// Loss and partition checks happen at send time; a partition that
	// forms after a message is in flight does not retroactively drop it.
	if n.partition[from] != n.partition[to] {
		n.mu.Unlock()
		n.cDropPartition.Inc()
		sh.cDropPartition.Inc()
		return nil // silent loss: senders learn via timeouts, like UDP/IP multicast
	}
	if n.cfg.DropRate > 0 && n.rng.Float64() < n.cfg.DropRate {
		n.mu.Unlock()
		n.cDropRate.Inc()
		sh.cDropRate.Inc()
		return nil
	}

	delay := n.cfg.DefaultLatency
	if d, ok := n.latency[key]; ok {
		delay = d
	}
	if n.cfg.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(n.cfg.Jitter)))
	}
	seq := n.seq
	n.seq++
	n.mu.Unlock()

	sh.enqueue(queuedMsg{
		env: Envelope{From: from, To: to, Payload: payload},
		due: n.clk.Now().Add(delay),
		seq: seq,
	}, key)
	return nil
}

// deliver hands a message to its destination endpoint, applying crash and
// close checks at delivery time.
func (n *Network) deliver(env Envelope, sh *shard) {
	n.mu.Lock()
	ep, ok := n.nodes[env.To]
	crashed := n.crashed[env.To]
	n.mu.Unlock()
	if !ok || crashed {
		n.cDropCrashed.Inc()
		sh.cDropCrashed.Inc()
		return
	}
	select {
	case <-ep.done:
		n.cDropClosed.Inc()
		sh.cDropClosed.Inc()
		return
	default:
	}
	select {
	case ep.inbox <- env:
		n.cDeliveredMsgs.Inc()
	case <-ep.done:
		n.cDropClosed.Inc()
		sh.cDropClosed.Inc()
	default:
		n.cDropOverflow.Inc()
		sh.cDropOverflow.Inc()
	}
}

type queuedMsg struct {
	env Envelope
	due time.Time
	seq uint64
}

// shard is one delivery lane: a priority queue of scheduled messages
// drained by a single goroutine in (due, seq) order.
type shard struct {
	id  int
	net *Network

	mu      sync.Mutex
	pq      msgHeap
	lastDue map[linkKey]time.Time // per-link monotonic clamp

	wake chan struct{}

	depth          *obs.Gauge
	cDropPartition *obs.Counter
	cDropCrashed   *obs.Counter
	cDropRate      *obs.Counter
	cDropOverflow  *obs.Counter
	cDropClosed    *obs.Counter
}

// enqueue schedules a message on this lane. Delivery times are clamped to
// be non-decreasing per link: jitter may stretch a link's spacing but
// never reorders it, which is what keeps per-link FIFO true under the
// (due, seq) drain order.
func (s *shard) enqueue(m queuedMsg, key linkKey) {
	s.mu.Lock()
	if last, ok := s.lastDue[key]; ok && m.due.Before(last) {
		m.due = last
	}
	s.lastDue[key] = m.due
	s.pq.push(m)
	s.depth.Set(int64(s.pq.Len()))
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// run drains the lane: pop the earliest-due message, waiting on the
// injected clock until its deadline. A wake signal re-evaluates the head
// (a newly enqueued message may be due earlier than the current wait).
func (s *shard) run() {
	for {
		s.mu.Lock()
		var due time.Time
		have := s.pq.Len() > 0
		if have {
			due = s.pq[0].due
		}
		s.mu.Unlock()

		if !have {
			select {
			case <-s.wake:
				continue
			case <-s.net.stopped:
				return
			}
		}

		if wait := due.Sub(s.net.clk.Now()); wait > 0 {
			select {
			case <-s.net.clk.After(wait):
			case <-s.wake:
			case <-s.net.stopped:
				return
			}
			continue // re-evaluate the head either way
		}

		s.mu.Lock()
		if s.pq.Len() == 0 {
			s.mu.Unlock()
			continue
		}
		m := s.pq.pop()
		s.depth.Set(int64(s.pq.Len()))
		s.mu.Unlock()
		s.net.deliver(m.env, s)
	}
}

// msgHeap is a binary min-heap of queuedMsg by (due, seq). Hand-rolled
// rather than container/heap to avoid the per-operation interface
// allocations on the mega-sim hot path.
type msgHeap []queuedMsg

func (h msgHeap) Len() int { return len(h) }

func (h msgHeap) less(i, j int) bool {
	if !h[i].due.Equal(h[j].due) {
		return h[i].due.Before(h[j].due)
	}
	return h[i].seq < h[j].seq
}

func (h *msgHeap) push(m queuedMsg) {
	*h = append(*h, m)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h).less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *msgHeap) pop() queuedMsg {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	old[last] = queuedMsg{}
	*h = old[:last]
	i, n := 0, last
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && (*h).less(l, smallest) {
			smallest = l
		}
		if r < n && (*h).less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}

// Endpoint is one node's attachment to the network.
type Endpoint struct {
	addr      string
	net       *Network
	inbox     chan Envelope
	done      chan struct{}
	closeOnce sync.Once
}

// Addr returns the endpoint's network address.
func (e *Endpoint) Addr() string { return e.addr }

// Send transmits payload to another node. A nil error means the message
// was accepted, not that it will arrive: partitions and loss drop silently,
// as on a real best-effort network. Payload is copied; the caller may
// reuse the slice.
func (e *Endpoint) Send(to string, payload []byte) error {
	select {
	case <-e.done:
		return ErrNetClosed
	default:
	}
	buf := make([]byte, len(payload))
	copy(buf, payload)
	return e.net.send(e.addr, to, buf)
}

// Inbox returns the delivery channel. The channel is never closed; use
// Done to detect shutdown in selects.
func (e *Endpoint) Inbox() <-chan Envelope { return e.inbox }

// Done is closed when the endpoint (or the network) shuts down.
func (e *Endpoint) Done() <-chan struct{} { return e.done }

// Close detaches the endpoint; subsequent deliveries to it are dropped.
func (e *Endpoint) Close() {
	e.closeOnce.Do(func() { close(e.done) })
}
