package simnet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mykil/internal/clock"
)

var simEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestShardCountOption(t *testing.T) {
	n := New(Config{Shards: 3})
	defer n.Close()
	if got := n.NumShards(); got != 3 {
		t.Errorf("NumShards = %d, want 3", got)
	}

	v := New(Config{Shards: 6, Virtual: true})
	defer v.Close()
	if got := v.NumShards(); got != 1 {
		t.Errorf("Virtual NumShards = %d, want 1 (single deterministic lane)", got)
	}
}

func TestInboxCapacityOption(t *testing.T) {
	n := New(Config{InboxCapacity: 4})
	defer n.Close()
	a := n.MustEndpoint("a")
	n.MustEndpoint("b") // never reads

	for i := 0; i < 20; i++ {
		if err := a.Send("b", []byte("x")); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for n.Stats().Value(StatDroppedOverflow) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no overflow drops with a 4-slot inbox")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFIFOPerLinkManyLinksSharded stresses the lane engine: many links with
// jitter, concurrent senders, every link individually FIFO.
func TestFIFOPerLinkManyLinksSharded(t *testing.T) {
	n := New(Config{DefaultLatency: time.Millisecond, Jitter: 2 * time.Millisecond, Shards: 4, Seed: 7})
	defer n.Close()

	const links, each = 16, 40
	sink := make([]*Endpoint, links)
	for i := range sink {
		sink[i] = n.MustEndpoint(fmt.Sprintf("dst%d", i))
	}
	var wg sync.WaitGroup
	for i := 0; i < links; i++ {
		src := n.MustEndpoint(fmt.Sprintf("src%d", i))
		wg.Add(1)
		go func(i int, src *Endpoint) {
			defer wg.Done()
			for j := 0; j < each; j++ {
				if err := src.Send(fmt.Sprintf("dst%d", i), []byte{byte(j)}); err != nil {
					t.Errorf("Send: %v", err)
					return
				}
			}
		}(i, src)
	}
	wg.Wait()
	for i := 0; i < links; i++ {
		for j := 0; j < each; j++ {
			env := recv(t, sink[i])
			if env.Payload[0] != byte(j) {
				t.Fatalf("link %d delivery %d carried %d: FIFO violated across shards", i, j, env.Payload[0])
			}
		}
	}
}

// TestPerShardDropCountersSumToGlobal overflows one unread inbox and checks
// the per-shard overflow counters account for every global drop.
func TestPerShardDropCountersSumToGlobal(t *testing.T) {
	n := New(Config{Shards: 4})
	defer n.Close()
	a := n.MustEndpoint("a")
	n.MustEndpoint("b") // never reads

	for i := 0; i < inboxCapacity+50; i++ {
		if err := a.Send("b", []byte("x")); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		global := n.Stats().Value(StatDroppedOverflow)
		var perShard int64
		for i := 0; i < n.NumShards(); i++ {
			perShard += n.Stats().Value(fmt.Sprintf("%s.shard%02d", StatDroppedOverflow, i))
		}
		if global > 0 && perShard == global {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("per-shard overflow drops = %d, global = %d", perShard, global)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestVirtualModeDeliversUnderFakeAdvance pins the mega-sim contract: with
// Virtual and a fake clock, a delayed message sits queued until Advance
// crosses its deadline — no wall-clock waiting anywhere.
func TestVirtualModeDeliversUnderFakeAdvance(t *testing.T) {
	clk := clock.NewFake(simEpoch)
	n := New(Config{DefaultLatency: 50 * time.Millisecond, Clock: clk, Virtual: true})
	defer n.Close()
	a := n.MustEndpoint("a")
	b := n.MustEndpoint("b")

	if err := a.Send("b", []byte("later")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if got := n.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
	due, ok := n.NextDue()
	if !ok || !due.Equal(simEpoch.Add(50*time.Millisecond)) {
		t.Fatalf("NextDue = %v, %v; want %v", due, ok, simEpoch.Add(50*time.Millisecond))
	}
	expectSilence(t, b, 20*time.Millisecond) // real time passes, virtual time does not

	clk.Advance(50 * time.Millisecond)
	if got := string(recv(t, b).Payload); got != "later" {
		t.Errorf("payload = %q", got)
	}
	if got := n.Pending(); got != 0 {
		t.Errorf("Pending = %d after delivery, want 0", got)
	}
}

// TestVirtualModeTimestampOrderAcrossLinks pins the deterministic global
// order: messages from different senders interleave strictly by delivery
// timestamp, ties broken by send order.
func TestVirtualModeTimestampOrderAcrossLinks(t *testing.T) {
	clk := clock.NewFake(simEpoch)
	n := New(Config{Clock: clk, Virtual: true})
	defer n.Close()
	a := n.MustEndpoint("a")
	b := n.MustEndpoint("b")
	sink := n.MustEndpoint("sink")

	n.SetLinkLatency("a", "sink", 30*time.Millisecond)
	n.SetLinkLatency("b", "sink", 10*time.Millisecond)

	if err := a.Send("sink", []byte("slow")); err != nil { // sent first, due later
		t.Fatalf("Send: %v", err)
	}
	if err := b.Send("sink", []byte("fast")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	clk.Advance(time.Second)
	if got := string(recv(t, sink).Payload); got != "fast" {
		t.Fatalf("first delivery = %q, want %q (timestamp order)", got, "fast")
	}
	if got := string(recv(t, sink).Payload); got != "slow" {
		t.Fatalf("second delivery = %q, want %q", got, "slow")
	}
}
