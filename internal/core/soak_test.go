package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mykil/internal/area"
	"mykil/internal/member"
)

// TestSoakFiveAreasFortyMembers is the long-haul integration test: a
// five-area tree, forty members, sustained churn, roaming, and traffic.
// It verifies the steady-state properties the paper promises for large
// dynamic groups: membership stays consistent, every attached member
// tracks its controller's epoch, and multicast reaches all areas.
func TestSoakFiveAreasFortyMembers(t *testing.T) {
	if testing.Short() {
		t.Skip("soak in -short mode")
	}
	const population = 40
	g, err := New(append(fastTiming(5), WithPolicy(area.AdmitOnPartition))...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()
	if err := g.WarmMemberKeys(population + 20); err != nil {
		t.Fatalf("WarmMemberKeys: %v", err)
	}
	waitFor(t, "area tree assembly", 10*time.Second, func() bool {
		for i := 1; i < 5; i++ {
			if g.Controller(i).ParentID() == "" {
				return false
			}
		}
		return true
	})

	recv := make([]*collector, population)
	members := make([]*member.Member, population)
	for i := 0; i < population; i++ {
		recv[i] = &collector{}
		m, err := g.AddMember(fmt.Sprintf("s%d", i), MemberConfig{
			AutoRejoin: true,
			OnData:     recv[i].onData,
		})
		if err != nil {
			t.Fatalf("AddMember %d: %v", i, err)
		}
		members[i] = m
	}

	// Sustained churn: leaves, re-registrations, ticket moves, traffic.
	rng := rand.New(rand.NewSource(11))
	next := population
	for round := 0; round < 15; round++ {
		switch rng.Intn(3) {
		case 0: // a member leaves for good; a new subscriber registers
			idx := rng.Intn(len(members))
			if err := members[idx].Leave(); err != nil {
				t.Fatalf("round %d leave: %v", round, err)
			}
			members[idx].Close()
			recv[idx] = &collector{}
			m, err := g.AddMember(fmt.Sprintf("s%d", next), MemberConfig{
				AutoRejoin: true,
				OnData:     recv[idx].onData,
			})
			if err != nil {
				t.Fatalf("round %d join: %v", round, err)
			}
			next++
			members[idx] = m
		case 1: // a member roams to another area by ticket
			idx := rng.Intn(len(members))
			m := members[idx]
			home := m.ControllerID()
			var target string
			for _, e := range g.Directory() {
				if e.ID != home {
					target = e.ID
					break
				}
			}
			if err := m.Leave(); err != nil {
				t.Fatalf("round %d roam-leave: %v", round, err)
			}
			if err := m.Rejoin(target); err != nil {
				t.Fatalf("round %d rejoin: %v", round, err)
			}
		case 2: // traffic burst
			for b := 0; b < 3; b++ {
				idx := rng.Intn(len(members))
				_ = members[idx].Send([]byte(fmt.Sprintf("r%d-%d", round, b)))
			}
		}
	}

	// Steady state: everyone attached, epochs converged per controller.
	waitFor(t, "all members attached", 30*time.Second, func() bool {
		for _, m := range members {
			if !m.Connected() {
				return false
			}
		}
		return true
	})
	waitFor(t, "epochs converged", 30*time.Second, func() bool {
		for _, m := range members {
			var ctl = -1
			for i := 0; i < g.NumAreas(); i++ {
				if ACID(i) == m.ControllerID() {
					ctl = i
				}
			}
			if ctl < 0 || m.Epoch() != g.Controller(ctl).Epoch() {
				return false
			}
		}
		return true
	})

	// A final multicast from one member must reach every other member,
	// across all five areas.
	before := make([]int64, len(members))
	for i, m := range members {
		before[i] = m.Received()
	}
	waitFor(t, "full-group delivery", 30*time.Second, func() bool {
		_ = members[0].Send([]byte("final"))
		for i, m := range members[1:] {
			if m.Received() == before[i+1] {
				return false
			}
		}
		return true
	})

	// Sanity on the books: total membership across controllers equals
	// the population plus the four child-controller entries.
	total := 0
	for i := 0; i < g.NumAreas(); i++ {
		total += g.Controller(i).NumMembers()
	}
	if want := len(members) + countChildACs(g); total != want {
		t.Errorf("controllers account for %d members, want %d", total, want)
	}
}
