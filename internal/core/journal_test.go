package core

import (
	"fmt"
	"testing"
	"time"

	"mykil/internal/area"
	"mykil/internal/member"
)

// journalTiming keeps the idle window comfortably wider than a restart,
// so a transparent recovery never trips member-side failure detection,
// and pushes freshness rekeys out of the way so both runs see a purely
// operation-driven epoch sequence.
func journalTiming(dir string) []Option {
	return []Option{
		WithAreas(1),
		WithRSABits(512),
		WithTIdle(150 * time.Millisecond),
		WithTActive(50 * time.Millisecond),
		WithRekeyInterval(time.Hour),
		WithVerifyTimeout(500 * time.Millisecond),
		WithHeartbeatEvery(50 * time.Millisecond),
		WithOpTimeout(10 * time.Second),
		WithJournal(dir, "always"),
	}
}

// churn joins m0..m5 (collecting deliveries) and has m4 and m5 leave.
func churn(t *testing.T, g *Group, recv []*collector) []*member.Member {
	t.Helper()
	members := make([]*member.Member, 6)
	for i := range members {
		m, err := g.AddMember(fmt.Sprintf("m%d", i), MemberConfig{
			OnData:     recv[i].onData,
			AutoRejoin: true,
		})
		if err != nil {
			t.Fatalf("AddMember m%d: %v", i, err)
		}
		members[i] = m
	}
	for _, id := range []int{4, 5} {
		if err := members[id].Leave(); err != nil {
			t.Fatalf("m%d leave: %v", id, err)
		}
	}
	waitFor(t, "leaves processed", 5*time.Second, func() bool {
		return g.Controller(0).NumMembers() == 4
	})
	return members
}

// TestControllerCrashRestart is the acceptance scenario for the journal
// subsystem: a controller journaling under FsyncPolicy=always is killed
// after a batch of joins and leaves and rebuilt from disk. The restarted
// controller must carry the identical keytree epoch and member set as a
// never-crashed control run of the same script, admit zero rejoins, and
// keep rekeying a group whose members never noticed the crash.
func TestControllerCrashRestart(t *testing.T) {
	crashRecv := make([]*collector, 7)
	ctrlRecv := make([]*collector, 7)
	for i := range crashRecv {
		crashRecv[i] = &collector{}
		ctrlRecv[i] = &collector{}
	}

	crashGrp, err := New(journalTiming(t.TempDir())...)
	if err != nil {
		t.Fatalf("New (crash group): %v", err)
	}
	defer crashGrp.Close()
	control, err := New(journalTiming(t.TempDir())...)
	if err != nil {
		t.Fatalf("New (control group): %v", err)
	}
	defer control.Close()

	crashMembers := churn(t, crashGrp, crashRecv[:6])
	churn(t, control, ctrlRecv[:6])

	epochBefore := crashGrp.Controller(0).Epoch()

	// Kill and restart: the journal's descriptors are abandoned without
	// a final sync, then a fresh controller recovers from disk.
	if err := crashGrp.RestartController(0); err != nil {
		t.Fatalf("RestartController: %v", err)
	}
	if len(crashGrp.RecoverySummary()) == 0 {
		t.Error("RecoverySummary empty after a restart")
	}

	// Identical epoch and member set, against both the pre-crash value
	// and the never-crashed control run.
	restarted := crashGrp.Controller(0)
	if got := restarted.Epoch(); got != epochBefore {
		t.Fatalf("epoch after restart = %d, want %d", got, epochBefore)
	}
	if got, want := restarted.Epoch(), control.Controller(0).Epoch(); got != want {
		t.Fatalf("epoch after restart = %d, control run = %d", got, want)
	}
	if got, want := restarted.NumMembers(), control.Controller(0).NumMembers(); got != want {
		t.Fatalf("members after restart = %d, control run = %d", got, want)
	}
	for i := 0; i < 4; i++ {
		if !restarted.HasMember(fmt.Sprintf("m%d", i)) {
			t.Fatalf("member m%d lost across restart", i)
		}
	}
	for _, id := range []string{"m4", "m5"} {
		if restarted.HasMember(id) {
			t.Fatalf("departed member %s resurrected by restart", id)
		}
	}

	// A post-restart join must rekey the whole area: recovery replayed
	// the journaled per-operation key seeds, so the restarted tree holds
	// byte-identical keys and surviving members can decrypt the new
	// epoch's key update without rejoining.
	for grp, recv := range map[*Group][]*collector{crashGrp: crashRecv, control: ctrlRecv} {
		if _, err := grp.AddMember("m6", MemberConfig{OnData: recv[6].onData, AutoRejoin: true}); err != nil {
			t.Fatalf("AddMember m6: %v", err)
		}
	}
	if got, want := restarted.Epoch(), control.Controller(0).Epoch(); got != want {
		t.Fatalf("post-restart rekey epoch = %d, control run = %d", got, want)
	}
	if err := crashGrp.Member("m0").Send([]byte("post-crash")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	for _, i := range []int{1, 2, 3, 6} {
		waitFor(t, fmt.Sprintf("delivery to m%d", i), 5*time.Second, func() bool {
			return crashRecv[i].has("m0:post-crash")
		})
	}

	// Zero rejoins: members kept their keys and sessions; nothing in
	// the recovery path forced a ticket readmission.
	if got := restarted.Stats().Value(area.StatRejoins); got != 0 {
		t.Errorf("restarted controller admitted %d rejoins, want 0", got)
	}
	for i, m := range crashMembers[:4] {
		if !m.Connected() || m.ControllerID() != ACID(0) {
			t.Errorf("member m%d lost its session across the restart", i)
		}
	}
}
