package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mykil/internal/area"
	"mykil/internal/crypt"
	"mykil/internal/member"
	"mykil/internal/obs"
)

// promotedReplicas lists the replicas of area i that promoted a
// controller.
func promotedReplicas(g *Group, i int) []*area.Controller {
	var out []*area.Controller
	for r := 0; r < g.ReplicasPerArea(); r++ {
		if ctrl, err := g.Replica(i, r).Promoted(); err == nil {
			out = append(out, ctrl)
		}
	}
	return out
}

// TestQuorumElectionAfterLeaderKill: three replicas follow a journaled
// primary via segment replication; killing the primary must elect
// exactly one of them, which restores the area from its replicated
// journal — byte-identical tree keys, so the members re-attach through
// the failover announcement without a single ticket rejoin.
func TestQuorumElectionAfterLeaderKill(t *testing.T) {
	g, err := New(append(journalTiming(t.TempDir()), WithReplicas(3))...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()
	if got := g.ReplicasPerArea(); got != 3 {
		t.Fatalf("ReplicasPerArea = %d, want 3", got)
	}

	var recvB collector
	ma, err := g.AddMember("ma", MemberConfig{AutoRejoin: true})
	if err != nil {
		t.Fatalf("AddMember: %v", err)
	}
	mb, err := g.AddMember("mb", MemberConfig{OnData: recvB.onData, AutoRejoin: true})
	if err != nil {
		t.Fatalf("AddMember: %v", err)
	}

	// Every replica must hold the full journal prefix before the kill,
	// or the test races the segment pulls.
	waitFor(t, "replicas to absorb the journal", 10*time.Second, func() bool {
		lsn := g.Replica(0, 0).AppliedLSN()
		if lsn == 0 {
			return false
		}
		for r := 1; r < 3; r++ {
			if g.Replica(0, r).AppliedLSN() != lsn {
				return false
			}
		}
		return true
	})

	g.Net.Crash(ACAddr(0))
	waitFor(t, "quorum promotion", 10*time.Second, func() bool {
		return len(promotedReplicas(g, 0)) >= 1
	})
	// Let any racing second candidacy play out, then demand a single
	// winner.
	time.Sleep(300 * time.Millisecond)
	winners := promotedReplicas(g, 0)
	if len(winners) != 1 {
		t.Fatalf("%d replicas promoted, want exactly 1", len(winners))
	}
	promoted := winners[0]

	waitFor(t, "members to follow the failover", 10*time.Second, func() bool {
		return ma.ControllerID() != ACID(0) && mb.ControllerID() != ACID(0) &&
			ma.Connected() && mb.Connected()
	})
	waitFor(t, "data to flow through the new leader", 10*time.Second, func() bool {
		if err := ma.Send([]byte("post-election")); err != nil {
			return false
		}
		return recvB.has("ma:post-election")
	})

	// The journal replay regenerated the tree keys byte-for-byte: the
	// members' cached views still decrypt, so nobody had to rejoin.
	if got := promoted.Stats().Value(area.StatRejoins); got != 0 {
		t.Errorf("promoted controller counted %d rejoins, want 0", got)
	}
	var elections int64
	for r := 0; r < 3; r++ {
		elections += g.Replica(0, r).Stats().Value(obs.MetricElections)
	}
	if elections != 1 {
		t.Errorf("replica set counted %d elections won, want 1", elections)
	}
}

// TestAreaSplitOnWatermark: the seventh member pushes area-0 over the
// split watermark; the upper half of the sorted membership must migrate
// to an automatically spawned sibling and the multicast group must stay
// whole across the new area boundary.
func TestAreaSplitOnWatermark(t *testing.T) {
	g, err := New(append(fastTiming(1), WithAreaWatermarks(6, 0))...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()

	const n = 7
	recv := make([]*collector, n)
	members := make([]*member.Member, n)
	for i := 0; i < n; i++ {
		recv[i] = &collector{}
		m, err := g.AddMember(fmt.Sprintf("m%d", i), MemberConfig{OnData: recv[i].onData})
		if err != nil {
			t.Fatalf("AddMember %d: %v", i, err)
		}
		members[i] = m
	}

	waitFor(t, "watermark split to spawn a sibling", 10*time.Second, func() bool {
		return len(g.Directory()) == 2
	})
	// Upper half of the sorted IDs m0..m6: m4, m5, m6.
	waitFor(t, "migration of the upper half", 15*time.Second, func() bool {
		for i := 4; i < n; i++ {
			if members[i].ControllerID() != ACID(1) || !members[i].Connected() {
				return false
			}
		}
		return true
	})
	for i := 0; i < 4; i++ {
		if got := members[i].ControllerID(); got != ACID(0) {
			t.Errorf("m%d moved to %s, want to stay on %s", i, got, ACID(0))
		}
	}

	// A migrated member multicasts; everyone — old area and new — must
	// decrypt it with their post-split keys.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if err := members[4].Send([]byte("post-split")); err != nil {
			t.Logf("send: %v", err)
		}
		ok := true
		for i := 0; i < n; i++ {
			if i != 4 && !recv[i].has("m4:post-split") {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			for i := 0; i < n; i++ {
				t.Logf("m%d: ctrl=%s area=%s connected=%v got=%v", i,
					members[i].ControllerID(), members[i].AreaID(), members[i].Connected(), recv[i].has("m4:post-split"))
			}
			t.Fatal("timed out waiting for post-split multicast delivery")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestAreaMergeOnWatermark: after a watermark split, enough migrants
// leave that the sibling sinks under the merge watermark; it must drain
// its remnant back into its parent and retire, restoring the single-area
// topology.
func TestAreaMergeOnWatermark(t *testing.T) {
	g, err := New(append(fastTiming(1), WithAreaWatermarks(6, 3))...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()

	const n = 7
	recv := make([]*collector, n)
	members := make([]*member.Member, n)
	for i := 0; i < n; i++ {
		recv[i] = &collector{}
		m, err := g.AddMember(fmt.Sprintf("m%d", i), MemberConfig{OnData: recv[i].onData})
		if err != nil {
			t.Fatalf("AddMember %d: %v", i, err)
		}
		members[i] = m
	}
	waitFor(t, "watermark split", 10*time.Second, func() bool {
		return len(g.Directory()) == 2
	})
	waitFor(t, "migration to the sibling", 15*time.Second, func() bool {
		for i := 4; i < n; i++ {
			if members[i].ControllerID() != ACID(1) || !members[i].Connected() {
				return false
			}
		}
		return true
	})

	// Two of the three migrants leave: the sibling dips under the merge
	// watermark and folds its last member back into the parent.
	if err := members[4].Leave(); err != nil {
		t.Fatalf("Leave m4: %v", err)
	}
	if err := members[5].Leave(); err != nil {
		t.Fatalf("Leave m5: %v", err)
	}
	waitFor(t, "sibling retirement", 15*time.Second, func() bool {
		return len(g.Directory()) == 1
	})
	waitFor(t, "remnant back on the parent", 15*time.Second, func() bool {
		return members[6].ControllerID() == ACID(0) && members[6].Connected()
	})
	waitFor(t, "post-merge multicast delivery", 15*time.Second, func() bool {
		if err := members[6].Send([]byte("post-merge")); err != nil {
			return false
		}
		for i := 0; i < 4; i++ {
			if !recv[i].has("m6:post-merge") {
				return false
			}
		}
		return true
	})
}

// TestSplitTwoThousandMembers is the acceptance-scale split: a
// 2000-member area crosses the watermark, exactly the upper thousand
// migrate to the sibling, and multicasts from both sides of the new
// boundary reach the whole group — every migrated member decrypts the
// post-split rekeys.
func TestSplitTwoThousandMembers(t *testing.T) {
	if testing.Short() {
		t.Skip("2k-member split soak; skipped with -short")
	}
	const population = 2000
	pool, err := crypt.NewKeyPool(32, 512, 7)
	if err != nil {
		t.Fatalf("NewKeyPool: %v", err)
	}
	g, err := New(
		WithAreas(1),
		WithRSABits(512),
		WithTestKeyPool(pool),
		WithBatching(),
		WithTIdle(2*time.Second),
		WithTActive(time.Second),
		WithRekeyInterval(time.Second),
		WithVerifyTimeout(5*time.Second),
		WithHeartbeatEvery(250*time.Millisecond),
		WithOpTimeout(3*time.Minute),
		WithAreaWatermarks(population-1, 0),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()

	var delivered atomic.Int64
	members := make([]*member.Member, population)
	var (
		mu   sync.Mutex
		errs []error
		wg   sync.WaitGroup
	)
	sem := make(chan struct{}, 32)
	for i := 0; i < population; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			m, err := g.AddMember(fmt.Sprintf("m%04d", i), MemberConfig{
				OnData: func([]byte, string) { delivered.Add(1) },
			})
			if err != nil {
				mu.Lock()
				errs = append(errs, fmt.Errorf("m%04d: %w", i, err))
				mu.Unlock()
				return
			}
			members[i] = m
		}(i)
	}
	wg.Wait()
	if len(errs) > 0 {
		t.Fatalf("%d joins failed; first: %v", len(errs), errs[0])
	}

	waitFor(t, "watermark split at 2000 members", 60*time.Second, func() bool {
		return len(g.Directory()) == 2
	})
	// The deterministic partition moves exactly the upper half of the
	// sorted IDs: m1000..m1999.
	waitFor(t, "migration of the upper thousand", 120*time.Second, func() bool {
		for i := population / 2; i < population; i++ {
			if members[i].ControllerID() != ACID(1) || !members[i].Connected() {
				return false
			}
		}
		return true
	})
	for i := 0; i < population/2; i++ {
		if got := members[i].ControllerID(); got != ACID(0) {
			t.Fatalf("m%04d moved to %s, want to stay on %s", i, got, ACID(0))
		}
	}

	// One multicast from each side of the split boundary: 2×1999
	// deliveries proves every member — migrated or not — holds working
	// post-split keys.
	base := delivered.Load()
	if err := members[1500].Send([]byte("from the new area")); err != nil {
		t.Fatalf("Send from migrant: %v", err)
	}
	if err := members[1].Send([]byte("from the old area")); err != nil {
		t.Fatalf("Send from remainer: %v", err)
	}
	want := base + 2*(population-1)
	waitFor(t, "full-group delivery across the split", 120*time.Second, func() bool {
		return delivered.Load() >= want
	})
}
