package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"mykil/internal/crypt"
	"mykil/internal/member"
)

// TestCrossSuiteNegotiationMatrix drives every (member suite mask ×
// area suite) cell through the real join protocol: the outcome must be
// either an agreed suite with intact end-to-end delivery or an explicit
// deny naming the area's suite — never a garbled frame or a hang.
func TestCrossSuiteNegotiationMatrix(t *testing.T) {
	masks := []struct {
		name string
		mask uint64
	}{
		{"zero(=all)", 0},
		{"legacy-only", crypt.SuiteLegacy.Mask()},
		{"gcm-only", crypt.SuiteAESGCM.Mask()},
		{"chacha-only", crypt.SuiteChaCha20Poly1305.Mask()},
		{"all", crypt.AllSuitesMask()},
	}
	for _, s := range crypt.Suites() {
		s := s
		t.Run("area="+s.Name(), func(t *testing.T) {
			opts := append(fastTiming(1), WithCipherSuite(s.Name()))
			g, err := New(opts...)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			defer g.Close()

			// The reference member speaks everything; it witnesses that
			// admitted probes share its area key stream.
			witness := &collector{}
			ref, err := g.AddMember("ref", MemberConfig{OnData: witness.onData})
			if err != nil {
				t.Fatalf("reference member join: %v", err)
			}

			for i, mc := range masks {
				admit := mc.mask == 0 || mc.mask&s.ID().Mask() != 0
				id := fmt.Sprintf("probe-%d", i)
				m, err := g.NewMember(id, MemberConfig{Suites: mc.mask, OnData: (&collector{}).onData})
				if err != nil {
					t.Fatalf("%s: NewMember: %v", mc.name, err)
				}
				err = m.Join()
				if !admit {
					if err == nil {
						t.Fatalf("%s: joined an area running %s without advertising it", mc.name, s.Name())
					}
					if !errors.Is(err, member.ErrDenied) {
						t.Fatalf("%s: want explicit ErrDenied, got: %v", mc.name, err)
					}
					if !strings.Contains(err.Error(), s.Name()) {
						t.Fatalf("%s: deny reason should name the area suite %s: %v", mc.name, s.Name(), err)
					}
					m.Close()
					continue
				}
				if err != nil {
					t.Fatalf("%s: join should agree on %s: %v", mc.name, s.Name(), err)
				}
				// Prove the agreed suite produces intelligible frames both
				// ways: the probe multicasts and the reference must decrypt
				// the exact payload.
				msg := fmt.Sprintf("hello-from-%s", id)
				if err := m.Send([]byte(msg)); err != nil {
					t.Fatalf("%s: send: %v", mc.name, err)
				}
				waitFor(t, mc.name+" delivery", 5*time.Second, func() bool {
					return witness.has(id + ":" + msg)
				})
				if err := m.Leave(); err != nil {
					t.Fatalf("%s: leave: %v", mc.name, err)
				}
				m.Close()
			}
			_ = ref
		})
	}
}
