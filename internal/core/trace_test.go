package core

import (
	"fmt"
	"strings"
	"testing"

	"mykil/internal/obs"
)

// steps extracts the numbered handshake steps (oldest first) for one
// protocol+subject from a ring sink, ignoring un-numbered events.
func steps(ring *obs.Ring, proto obs.Protocol, subject string) []int {
	var out []int
	for _, e := range ring.Filter(proto, subject) {
		if e.Step != 0 {
			out = append(out, e.Step)
		}
	}
	return out
}

func stepsEqual(got []int, want ...int) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// TestJoinTraceShape pins the paper's §III-B message flow: on a lossless
// network a join is exactly steps 1..7, in order, across the member, the
// registration server, and the admitting controller.
func TestJoinTraceShape(t *testing.T) {
	ring := obs.NewRing(4096)
	g, err := New(append(fastTiming(1), WithObserver(ring))...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()

	if _, err := g.AddMember("m1", MemberConfig{}); err != nil {
		t.Fatalf("AddMember: %v", err)
	}
	got := steps(ring, obs.ProtoJoin, "m1")
	if !stepsEqual(got, 1, 2, 3, 4, 5, 6, 7) {
		t.Errorf("join steps = %v, want [1 2 3 4 5 6 7]", got)
	}
}

// TestRejoinTraceShape pins the §III-D ticket rejoin: six steps with the
// anti-cohort verification round 4-5 to the previous controller, and
// steps [1 2 3 6] when SkipRejoinVerify truncates it (§V-D option 2).
func TestRejoinTraceShape(t *testing.T) {
	run := func(skipVerify bool) []int {
		t.Helper()
		ring := obs.NewRing(4096)
		opts := append(fastTiming(2), WithObserver(ring))
		if skipVerify {
			opts = append(opts, WithSkipRejoinVerify())
		}
		g, err := New(opts...)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer g.Close()

		m, err := g.AddMember("mob", MemberConfig{})
		if err != nil {
			t.Fatalf("AddMember: %v", err)
		}
		first := m.ControllerID()
		var target string
		for _, e := range g.Directory() {
			if e.ID != first {
				target = e.ID
			}
		}
		if err := m.Leave(); err != nil {
			t.Fatalf("Leave: %v", err)
		}
		if err := m.Rejoin(target); err != nil {
			t.Fatalf("Rejoin: %v", err)
		}
		return steps(ring, obs.ProtoRejoin, "mob")
	}

	if got := run(false); !stepsEqual(got, 1, 2, 3, 4, 5, 6) {
		t.Errorf("rejoin steps = %v, want [1 2 3 4 5 6]", got)
	}
	if got := run(true); !stepsEqual(got, 1, 2, 3, 6) {
		t.Errorf("skip-verify rejoin steps = %v, want [1 2 3 6]", got)
	}
}

// TestRecoveryTraceShape crashes and restarts a journaled controller and
// checks the recovery span's replayed-record count against the
// human-readable RecoverySummary.
func TestRecoveryTraceShape(t *testing.T) {
	ring := obs.NewRing(4096)
	g, err := New(append(journalTiming(t.TempDir()), WithObserver(ring))...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()

	for i := 0; i < 3; i++ {
		if _, err := g.AddMember(fmt.Sprintf("m%d", i), MemberConfig{}); err != nil {
			t.Fatalf("AddMember: %v", err)
		}
	}
	if err := g.RestartController(0); err != nil {
		t.Fatalf("RestartController: %v", err)
	}

	evs := ring.Filter(obs.ProtoRecovery, "ac-0")
	if len(evs) == 0 {
		t.Fatal("no recovery trace event for ac-0")
	}
	var records int
	for _, a := range evs[len(evs)-1].Attrs {
		if a.K == "records" {
			fmt.Sscanf(a.V, "%d", &records)
		}
	}

	var summary string
	for _, line := range g.RecoverySummary() {
		if strings.HasPrefix(line, "ac-0:") {
			summary = line
		}
	}
	if summary == "" {
		t.Fatalf("no ac-0 line in RecoverySummary %v", g.RecoverySummary())
	}
	var lsn, wantRecords, torn int
	if _, err := fmt.Sscanf(summary, "ac-0: recovered snapshot@%d + %d records (truncated %d torn bytes)",
		&lsn, &wantRecords, &torn); err != nil {
		t.Fatalf("unparseable summary %q: %v", summary, err)
	}
	if records != wantRecords || wantRecords == 0 {
		t.Errorf("recovery span records=%d, RecoverySummary says %d (want equal, nonzero)", records, wantRecords)
	}
}
