package core

import (
	"testing"
	"time"

	"mykil/internal/transport"
)

// TestGroupOverTCP runs the full protocol stack over real TCP loopback —
// the transport the paper's prototype used.
func TestGroupOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP stack in -short mode")
	}
	g, err := New(append(fastTiming(2),
		WithTransportFactory(func(string) (transport.Transport, error) {
			return transport.NewTCP("127.0.0.1:0")
		}))...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()

	var recvB collector
	ma, err := g.AddMember("tcp-a", MemberConfig{})
	if err != nil {
		t.Fatalf("AddMember a: %v", err)
	}
	mb, err := g.AddMember("tcp-b", MemberConfig{OnData: recvB.onData})
	if err != nil {
		t.Fatalf("AddMember b: %v", err)
	}
	if !ma.Connected() || !mb.Connected() {
		t.Fatal("members not connected over TCP")
	}

	if err := ma.Send([]byte("over tcp")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	waitFor(t, "TCP delivery", 10*time.Second, func() bool {
		return recvB.has("tcp-a:over tcp")
	})

	// Ticket mobility over TCP as well.
	firstAC := ma.ControllerID()
	var target string
	for _, e := range g.Directory() {
		if e.ID != firstAC {
			target = e.ID
		}
	}
	if err := ma.Leave(); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	if err := ma.Rejoin(target); err != nil {
		t.Fatalf("Rejoin over TCP: %v", err)
	}
}
