package core

import (
	"time"

	"mykil/internal/area"
	"mykil/internal/clock"
	"mykil/internal/crypt"
	"mykil/internal/obs"
	"mykil/internal/simnet"
	"mykil/internal/transport"
)

// Option mutates the deployment Config that New assembles. Options are
// applied in order, so later options win.
type Option func(*Config)

// New builds and starts a deployment from functional options:
//
//	g, err := core.New(core.WithAreas(8), core.WithBackups(), core.WithObserver(sink))
//
// With no options it builds the single-area default deployment.
func New(opts ...Option) (*Group, error) {
	var cfg Config
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	return build(cfg)
}

// WithConfig seeds the whole Config struct at once, for callers mid-way
// through migrating to per-field options. Later options still override.
//
// Deprecated: use per-field options.
func WithConfig(cfg Config) Option {
	return func(c *Config) { *c = cfg }
}

// WithAreas sets the number of areas (and controllers).
func WithAreas(n int) Option { return func(c *Config) { c.NumAreas = n } }

// WithAreaFanout shapes the controller tree.
func WithAreaFanout(n int) Option { return func(c *Config) { c.AreaFanout = n } }

// WithRSABits sets every principal's key size.
func WithRSABits(bits int) Option { return func(c *Config) { c.RSABits = bits } }

// WithBatching enables §III-E rekey aggregation at every controller.
func WithBatching() Option { return func(c *Config) { c.Batching = true } }

// WithTreeArity sets auxiliary-key-tree fan-out.
func WithTreeArity(n int) Option { return func(c *Config) { c.TreeArity = n } }

// WithCipherSuite selects the symmetric suite every controller seals
// key-tree ciphertexts and data-key hops with: "legacy" (the default),
// "aes-gcm", or "chacha20-poly1305".
func WithCipherSuite(name string) Option { return func(c *Config) { c.CipherSuite = name } }

// WithBackups gives every controller a §IV-C primary-backup replica.
// Equivalent to WithReplicas(1).
func WithBackups() Option { return func(c *Config) { c.WithBackups = true } }

// WithReplicas gives every controller n replicas running quorum leader
// election over journal-segment replication: on primary failure the
// replicas elect the best-caught-up candidate, which rebuilds the
// controller from replicated journal segments and announces the failover
// through the first replica (whose key members learned at join).
func WithReplicas(n int) Option { return func(c *Config) { c.NumReplicas = n } }

// WithAreaWatermarks turns on dynamic area split and merge: a controller
// whose live membership exceeds splitAbove sheds the upper half of its
// sorted member set to a freshly spawned sibling, and a non-root
// controller sinking under mergeBelow (but above zero) folds its members
// into its parent and retires. Zero disables either watermark.
func WithAreaWatermarks(splitAbove, mergeBelow int) Option {
	return func(c *Config) {
		c.SplitAbove = splitAbove
		c.MergeBelow = mergeBelow
	}
}

// WithPolicy selects rejoin behaviour under partition.
func WithPolicy(p area.PartitionPolicy) Option { return func(c *Config) { c.Policy = p } }

// WithSkipRejoinVerify omits rejoin steps 4-5 at every controller
// (§V-D's option-2 latency variant).
func WithSkipRejoinVerify() Option { return func(c *Config) { c.SkipRejoinVerify = true } }

// WithDataWorkers sizes each controller's data-plane worker pool.
func WithDataWorkers(n int) Option { return func(c *Config) { c.DataWorkers = n } }

// WithClock injects the clock driving all timers.
func WithClock(clk clock.Clock) Option { return func(c *Config) { c.Clock = clk } }

// WithNet reuses an existing simulated network instead of a fresh
// lossless one.
func WithNet(net *simnet.Network) Option { return func(c *Config) { c.Net = net } }

// WithTransportFactory overrides how component transports are created
// (e.g. transport.NewTCP for a real-network deployment).
func WithTransportFactory(f func(name string) (transport.Transport, error)) Option {
	return func(c *Config) { c.NewTransport = f }
}

// WithAuthDB maps acceptable auth-info strings to membership durations.
func WithAuthDB(db map[string]time.Duration) Option { return func(c *Config) { c.AuthDB = db } }

// WithTIdle sets the idle alive-message period (§IV-A).
func WithTIdle(d time.Duration) Option { return func(c *Config) { c.TIdle = d } }

// WithTActive sets the active alive-message period (§IV-A).
func WithTActive(d time.Duration) Option { return func(c *Config) { c.TActive = d } }

// WithRekeyInterval sets the §III-E batch rekey period.
func WithRekeyInterval(d time.Duration) Option { return func(c *Config) { c.RekeyInterval = d } }

// WithVerifyTimeout bounds the rejoin anti-cohort verification round.
func WithVerifyTimeout(d time.Duration) Option { return func(c *Config) { c.VerifyTimeout = d } }

// WithHeartbeatEvery sets the controller heartbeat period.
func WithHeartbeatEvery(d time.Duration) Option { return func(c *Config) { c.HeartbeatEvery = d } }

// WithOpTimeout bounds member join/rejoin operations.
func WithOpTimeout(d time.Duration) Option { return func(c *Config) { c.OpTimeout = d } }

// WithJournal makes controllers and the registration server durable
// under dir with the given fsync policy ("" means always). See
// Config.JournalDir.
func WithJournal(dir, fsyncPolicy string) Option {
	return func(c *Config) {
		c.JournalDir = dir
		c.FsyncPolicy = fsyncPolicy
	}
}

// WithSegmentBytes overrides the journal segment rotation threshold.
func WithSegmentBytes(n int64) Option { return func(c *Config) { c.SegmentBytes = n } }

// WithTestKeyPool draws every principal's key pair from a shared
// deterministic pool instead of fresh keygen. SIMULATION AND TEST
// ONLY — see Config.KeyPool and crypt.NewKeyPool for the security
// caveats; calling this is the explicit opt-in.
func WithTestKeyPool(p *crypt.KeyPool) Option { return func(c *Config) { c.KeyPool = p } }

// WithObserver installs the sink receiving structured protocol trace
// events from every component. See internal/obs.
func WithObserver(sink obs.Sink) Option { return func(c *Config) { c.Observer = sink } }

// WithLogf installs a debug logger for every component.
func WithLogf(logf func(format string, args ...any)) Option {
	return func(c *Config) { c.Logf = logf }
}
