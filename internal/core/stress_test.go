package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mykil/internal/member"
)

// TestConcurrentAccessDuringChurn hammers the controller's blocking
// accessors from many goroutines while members join, leave, and send —
// exercising the node runtime's command path and the data-plane worker
// pool under the race detector. The loop owns all protocol state, so any
// unsynchronized escape (a worker touching loop state, a drain-goroutine
// send racing an accessor) shows up here.
func TestConcurrentAccessDuringChurn(t *testing.T) {
	const (
		population = 8
		readers    = 4
		churnIters = 6
	)
	g, err := New(fastTiming(2)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()
	if err := g.WarmMemberKeys(population + churnIters + 2); err != nil {
		t.Fatalf("WarmMemberKeys: %v", err)
	}

	members := make([]*member.Member, population)
	for i := range members {
		m, err := g.AddMember(fmt.Sprintf("s%d", i), MemberConfig{})
		if err != nil {
			t.Fatalf("AddMember %d: %v", i, err)
		}
		members[i] = m
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Readers: hit every cross-thread accessor as fast as they can.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := 0; i < g.NumAreas(); i++ {
					c := g.Controller(i)
					_ = c.NumMembers()
					_ = c.Epoch()
					_ = c.PendingEvents()
					_ = c.HasMember(fmt.Sprintf("s%d", r))
					c.FlushBatch()
				}
				m := members[r%len(members)]
				_ = m.Epoch()
				_ = m.Connected()
			}
		}(r)
	}

	// Traffic: a member multicasts while readers poll.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = members[0].Send([]byte(fmt.Sprintf("burst-%d", i)))
			time.Sleep(time.Millisecond)
		}
	}()

	// Churn on the main goroutine: join a fresh member, roam an existing
	// one. Readers share the fixed initial slice, so churn-added members
	// are tracked separately.
	var added []*member.Member
	for iter := 0; iter < churnIters; iter++ {
		m, err := g.AddMember(fmt.Sprintf("s%d", population+iter), MemberConfig{})
		if err != nil {
			t.Fatalf("churn join %d: %v", iter, err)
		}
		added = append(added, m)
		victim := members[1+iter%(population-1)]
		if err := victim.Leave(); err != nil {
			t.Fatalf("churn leave %d: %v", iter, err)
		}
		target := g.Directory()[iter%g.NumAreas()].ID
		if err := victim.Rejoin(target); err != nil {
			t.Fatalf("churn rejoin %d: %v", iter, err)
		}
	}

	close(stop)
	wg.Wait()

	// Accessors still answer after the churn settles.
	waitFor(t, "books to balance", 10*time.Second, func() bool {
		total := 0
		for i := 0; i < g.NumAreas(); i++ {
			total += g.Controller(i).NumMembers()
		}
		return total == len(members)+len(added)+countChildACs(g)
	})
}
