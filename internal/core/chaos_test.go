package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mykil/internal/area"
	"mykil/internal/member"
)

// TestChaosChurnWithFailures is the failure-injection soak: members join
// and leave while the network randomly partitions, heals, and crashes and
// restarts controllers. After the dust settles and the network heals, the
// invariant is the paper's availability claim: every member still
// attached to a live controller converges to its controller's epoch and
// multicast data flows again.
func TestChaosChurnWithFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak in -short mode")
	}
	// Rejoin attempts toward crashed controllers must fail fast or a
	// member spends the whole soak stuck in one timed-out operation.
	g, err := New(append(fastTiming(3),
		WithPolicy(area.AdmitOnPartition),
		WithOpTimeout(500*time.Millisecond))...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()
	const population = 12
	if err := g.WarmMemberKeys(population + 4); err != nil {
		t.Fatalf("WarmMemberKeys: %v", err)
	}

	var members []*member.Member
	var collectors []*collector
	for i := 0; i < population; i++ {
		c := &collector{}
		m, err := g.AddMember(fmt.Sprintf("c%d", i), MemberConfig{
			AutoRejoin: true,
			OnData:     c.onData,
		})
		if err != nil {
			t.Fatalf("AddMember %d: %v", i, err)
		}
		members = append(members, m)
		collectors = append(collectors, c)
	}

	rng := rand.New(rand.NewSource(42))
	crashed := map[string]bool{}
	for round := 0; round < 12; round++ {
		switch rng.Intn(4) {
		case 0: // partition one controller (and nothing else) away
			victim := ACAddr(rng.Intn(g.NumAreas()))
			g.Net.SetPartitions([]string{victim})
		case 1: // heal
			g.Net.Heal()
		case 2: // crash a controller
			victim := ACAddr(rng.Intn(g.NumAreas()))
			if len(crashed) < 2 { // keep at least one controller alive
				g.Net.Crash(victim)
				crashed[victim] = true
			}
		case 3: // restart a crashed controller
			for v := range crashed {
				g.Net.Restart(v)
				delete(crashed, v)
				break
			}
		}
		// Churn and traffic during the failure.
		sender := members[rng.Intn(len(members))]
		_ = sender.Send([]byte(fmt.Sprintf("chaos round %d", round)))
		time.Sleep(60 * time.Millisecond)
	}

	// Settle: heal everything and restart every crashed controller.
	g.Net.Heal()
	for v := range crashed {
		g.Net.Restart(v)
	}

	// Every member must end attached to a live controller with a
	// converged epoch (auto-rejoin handles those orphaned by crashes).
	waitFor(t, "all members to reconnect and converge", 60*time.Second, func() bool {
		for _, m := range members {
			if !m.Connected() {
				return false
			}
		}
		return true
	})

	// The paper's availability guarantee: members sharing a controller
	// keep communicating. The area tree may have re-formed into more
	// than one component (a restarted root legitimately serves its own
	// partition), so the invariant is checked per controller group.
	groups := make(map[string][]*member.Member)
	for _, m := range members {
		groups[m.ControllerID()] = append(groups[m.ControllerID()], m)
	}
	for ac, group := range groups {
		if len(group) < 2 {
			continue
		}
		sender, receiver := group[0], group[1]
		before := receiver.Received()
		waitFor(t, fmt.Sprintf("post-chaos delivery within %s's area", ac),
			30*time.Second, func() bool {
				_ = sender.Send([]byte("all clear " + ac))
				return receiver.Received() > before
			})
	}
}

// TestCrashedControllerRestartKeepsServing exercises crash+restart of a
// node (not a clean failover): the restarted controller process has lost
// its in-memory state in reality, but in our simulation the process
// survives and only the network blinked — the members must re-converge
// via alive-epoch path recovery.
func TestCrashedControllerRestartKeepsServing(t *testing.T) {
	g, err := New(fastTiming(1)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()

	var recvB collector
	ma, err := g.AddMember("ra", MemberConfig{})
	if err != nil {
		t.Fatalf("AddMember: %v", err)
	}
	if _, err := g.AddMember("rb", MemberConfig{OnData: recvB.onData}); err != nil {
		t.Fatalf("AddMember: %v", err)
	}

	g.Net.Crash(ACAddr(0))
	time.Sleep(100 * time.Millisecond) // a blink, shorter than eviction
	g.Net.Restart(ACAddr(0))

	waitFor(t, "delivery after controller blink", 15*time.Second, func() bool {
		_ = ma.Send([]byte("post-blink"))
		return recvB.has("ra:post-blink")
	})
}
