// Package core assembles complete Mykil deployments: a registration
// server, a tree of area controllers (optionally each with a primary-
// backup replica), and any number of members, all wired over the
// simulated network. It is the facade the examples, integration tests,
// and benchmarks use; the underlying pieces live in internal/regserver,
// internal/area, internal/member, and internal/replica.
package core

import (
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"time"

	"mykil/internal/area"
	"mykil/internal/clock"
	"mykil/internal/crypt"
	"mykil/internal/journal"
	"mykil/internal/member"
	"mykil/internal/node"
	"mykil/internal/obs"
	"mykil/internal/regserver"
	"mykil/internal/replica"
	"mykil/internal/simnet"
	"mykil/internal/transport"
	"mykil/internal/wire"
)

// DefaultRSABits keeps in-process experiments fast; the paper's 2048-bit
// keys are selected by raising Config.RSABits.
const DefaultRSABits = 1024

// Config describes a deployment. Build one with the functional-options
// form core.New(core.WithAreas(2), ...) — the struct is the option
// functions' target (WithConfig seeds it wholesale for tests that want
// a literal).
type Config struct {
	// NumAreas is the number of areas (and controllers). Controllers
	// form a tree: controller i's parent is controller (i-1)/AreaFanout.
	NumAreas int
	// AreaFanout shapes the controller tree; 0 means 2.
	AreaFanout int
	// RSABits sets every principal's key size; 0 means DefaultRSABits.
	RSABits int
	// Batching enables §III-E aggregation at every controller.
	Batching bool
	// TreeArity sets auxiliary-key-tree fan-out (0 = paper's 4).
	TreeArity int
	// CipherSuite names the symmetric suite every controller runs for
	// key-tree ciphertexts and hop-by-hop data-key sealing: "legacy"
	// (the default, and the paper's HMAC+stream construction), "aes-gcm",
	// or "chacha20-poly1305". Members advertise what they speak at
	// join/rejoin and controllers deny joiners that cannot follow the
	// area's suite.
	CipherSuite string
	// WithBackups gives every controller a §IV-C primary-backup replica.
	// Equivalent to NumReplicas=1; kept for compatibility.
	WithBackups bool
	// NumReplicas gives every controller n replicas running quorum leader
	// election over journal-segment replication (internal/replica). The
	// first replica of each controller is the announcer whose key members
	// learn at join; it relays the election winner's failover announcement.
	// Zero with WithBackups set means 1.
	NumReplicas int
	// SplitAbove, when > 0, makes every controller shed the upper half of
	// its sorted membership to a freshly spawned sibling once its live
	// membership exceeds the watermark (dynamic area split). The group
	// orchestrates the spawn, registers the sibling with the registration
	// server, and migrates members via prevouched ticket rejoins.
	SplitAbove int
	// MergeBelow, when > 0, makes a controller whose live membership sinks
	// under the watermark (but stays above zero) fold its members into its
	// parent area and retire. The root controller never auto-merges.
	MergeBelow int
	// Policy selects rejoin behaviour under partition.
	Policy area.PartitionPolicy
	// SkipRejoinVerify omits rejoin steps 4-5 at every controller
	// (§V-D's option-2 latency variant).
	SkipRejoinVerify bool
	// DataWorkers sizes each controller's data-plane worker pool (rekey
	// entry encryption, welcome sealing, Iolus-style data re-encryption);
	// zero means one worker per CPU, 1 is effectively serial.
	DataWorkers int
	// Clock drives all timers; nil means clock.Real. Use a clock.Fake
	// to step failure detection deterministically.
	Clock clock.Clock
	// Net, if set, is used instead of a fresh lossless network.
	Net *simnet.Network
	// NewTransport, if set, overrides how component transports are
	// created (e.g. transport.NewTCP for a real-network deployment); the
	// name parameter is the component's identity ("rs", "ac-0", member
	// ID). When nil, simnet transports named after the identity are
	// used. Addresses always come from Transport.Addr().
	NewTransport func(name string) (transport.Transport, error)
	// AuthDB maps acceptable auth-info strings to membership durations.
	// Nil installs {"valid": 24h}.
	AuthDB map[string]time.Duration
	// Timing overrides passed to every controller and member.
	TIdle          time.Duration
	TActive        time.Duration
	RekeyInterval  time.Duration
	VerifyTimeout  time.Duration
	HeartbeatEvery time.Duration
	OpTimeout      time.Duration
	// JournalDir, if non-empty, makes controllers and the registration
	// server durable: each controller journals under
	// <JournalDir>/<acID>, the registration server under
	// <JournalDir>/rs. On New, any state those journals hold is
	// recovered first, so building a group over an existing JournalDir
	// is a restart, not a fresh deployment.
	JournalDir string
	// FsyncPolicy is the journal sync discipline: "always", "interval",
	// or "never" ("" means always). Only meaningful with JournalDir.
	FsyncPolicy string
	// SegmentBytes overrides the journal segment rotation threshold;
	// zero means the journal default.
	SegmentBytes int64
	// KeyPool, if set, supplies every principal's key pair from a shared
	// deterministic pool instead of per-principal keygen. SIMULATION AND
	// TEST ONLY: pool keys are shared and reproducible (crypt.NewKeyPool),
	// which destroys all security properties but makes 10^5-member runs
	// affordable. Production deployments must leave this nil.
	KeyPool *crypt.KeyPool
	// Observer, if set, receives structured protocol trace events from
	// every component (handshake steps, rekeys, alive rounds,
	// re-parenting, journal recovery). See internal/obs.
	Observer obs.Sink
	// Logf, if set, receives debug logging from every component.
	Logf func(format string, args ...any)
}

// Group is a running deployment.
type Group struct {
	Net   *simnet.Network
	Clock clock.Clock
	RS    *regserver.Server

	cfg         Config
	ownsNet     bool
	rsTransport transport.Transport
	controllers []*area.Controller
	ctrlInfo    []wire.ACInfo
	backups     []*replica.Backup
	pool        crypt.KeySource
	rsKeys      *crypt.KeyPair
	kShared     crypt.SymKey
	metrics     *obs.Registry
	trace       *obs.Tracer

	// Durability (only populated when cfg.JournalDir is set).
	acCfgs     []area.Config
	acJournals []*journal.Journal
	rsJournal  *journal.Journal
	recovered  []string

	mu         sync.Mutex
	members    map[string]*member.Member
	transports []transport.Transport
	closed     bool
}

// ACAddr returns controller i's transport address.
func ACAddr(i int) string { return fmt.Sprintf("ac-%d", i) }

// ACID returns controller i's identity.
func ACID(i int) string { return ACAddr(i) }

// BackupAddr returns controller i's first replica address.
func BackupAddr(i int) string { return fmt.Sprintf("backup-%d", i) }

// ReplicaAddr returns the address of controller i's r-th replica. Replica
// 0 keeps the historical "backup-i" name; later replicas append their
// index.
func ReplicaAddr(i, r int) string {
	if r == 0 {
		return BackupAddr(i)
	}
	return fmt.Sprintf("backup-%d-%d", i, r)
}

// RSAddr is the registration server's address.
const RSAddr = "rs"

// build constructs and starts a deployment from an assembled Config.
// It is the single construction path behind New; the exported
// NewFromConfig shim that used to wrap it is gone (deprecated for one
// release by PR 5) — external callers assemble the same Config through
// functional options.
func build(cfg Config) (*Group, error) {
	if cfg.NumAreas <= 0 {
		cfg.NumAreas = 1
	}
	if cfg.AreaFanout <= 0 {
		cfg.AreaFanout = 2
	}
	if cfg.RSABits == 0 {
		cfg.RSABits = DefaultRSABits
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.AuthDB == nil {
		cfg.AuthDB = map[string]time.Duration{"valid": 24 * time.Hour}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.NumReplicas == 0 && cfg.WithBackups {
		cfg.NumReplicas = 1
	}
	if cfg.NumReplicas > 0 {
		cfg.WithBackups = true
	}

	g := &Group{
		Clock:   cfg.Clock,
		cfg:     cfg,
		kShared: crypt.NewSymKey(),
		members: make(map[string]*member.Member),
		metrics: obs.NewRegistry(),
	}
	if cfg.KeyPool != nil {
		g.pool = cfg.KeyPool
	} else {
		g.pool = crypt.NewPool(cfg.RSABits)
	}
	g.trace = obs.NewTracer("core", cfg.Clock, cfg.Observer)
	if cfg.NewTransport == nil {
		if cfg.Net != nil {
			g.Net = cfg.Net
		} else {
			g.Net = simnet.New(simnet.Config{})
			g.ownsNet = true
		}
		net := g.Net
		cfg.NewTransport = func(name string) (transport.Transport, error) {
			return transport.NewSim(net, name)
		}
		g.cfg.NewTransport = cfg.NewTransport
	}

	// Pre-generate every controller-side key pair in parallel.
	nKeys := 1 + cfg.NumAreas + cfg.NumAreas*cfg.NumReplicas
	if err := g.pool.Warm(nKeys); err != nil {
		return nil, fmt.Errorf("core: warming key pool: %w", err)
	}

	g.rsKeys = g.pool.Next()

	// All component transports first: with a real-network factory the
	// directory must carry listener-assigned addresses.
	var err error
	acTrs := make([]transport.Transport, cfg.NumAreas)
	for i := range acTrs {
		if acTrs[i], err = cfg.NewTransport(ACAddr(i)); err != nil {
			return nil, err
		}
		g.transports = append(g.transports, acTrs[i])
	}
	repTrs := make([][]transport.Transport, cfg.NumAreas)
	for i := range repTrs {
		repTrs[i] = make([]transport.Transport, cfg.NumReplicas)
		for r := range repTrs[i] {
			if repTrs[i][r], err = cfg.NewTransport(ReplicaAddr(i, r)); err != nil {
				return nil, err
			}
			g.transports = append(g.transports, repTrs[i][r])
		}
	}
	rsTr, err := cfg.NewTransport(RSAddr)
	if err != nil {
		return nil, err
	}
	g.rsTransport = rsTr
	g.transports = append(g.transports, rsTr)

	// Controller key pairs and the directory.
	ctrlKeys := make([]*crypt.KeyPair, cfg.NumAreas)
	g.ctrlInfo = make([]wire.ACInfo, cfg.NumAreas)
	for i := 0; i < cfg.NumAreas; i++ {
		ctrlKeys[i] = g.pool.Next()
		g.ctrlInfo[i] = wire.ACInfo{
			ID:     ACID(i),
			Addr:   acTrs[i].Addr(),
			PubDER: ctrlKeys[i].Public().Marshal(),
		}
	}

	// Replica key pairs.
	repKeys := make([][]*crypt.KeyPair, cfg.NumAreas)
	for i := range repKeys {
		repKeys[i] = make([]*crypt.KeyPair, cfg.NumReplicas)
		for r := range repKeys[i] {
			repKeys[i][r] = g.pool.Next()
		}
	}

	// Journal sync discipline and cipher suite, validated once up front.
	if _, err := journal.ParseFsyncPolicy(cfg.FsyncPolicy); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if _, err := crypt.SuiteByName(cfg.CipherSuite); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// Controllers, root first so parents exist before children join.
	for i := 0; i < cfg.NumAreas; i++ {
		acCfg := area.Config{
			ID:               ACID(i),
			AreaID:           fmt.Sprintf("area-%d", i),
			Transport:        acTrs[i],
			Keys:             ctrlKeys[i],
			Clock:            cfg.Clock,
			KShared:          g.kShared,
			RSPub:            g.rsKeys.Public(),
			Directory:        g.ctrlInfo,
			Batching:         cfg.Batching,
			TreeArity:        cfg.TreeArity,
			Suite:            cfg.CipherSuite,
			Policy:           cfg.Policy,
			SkipRejoinVerify: cfg.SkipRejoinVerify,
			DataWorkers:      cfg.DataWorkers,
			TIdle:            cfg.TIdle,
			TActive:          cfg.TActive,
			RekeyInterval:    cfg.RekeyInterval,
			VerifyTimeout:    cfg.VerifyTimeout,
			HeartbeatEvery:   cfg.HeartbeatEvery,
			Observer:         cfg.Observer,
			Logf:             cfg.Logf,
		}
		if i > 0 {
			parentIdx := (i - 1) / cfg.AreaFanout
			acCfg.Parent = &area.PeerInfo{
				ID:   ACID(parentIdx),
				Addr: acTrs[parentIdx].Addr(),
				Pub:  ctrlKeys[parentIdx].Public(),
			}
			// Preferred fallback parents: every other controller,
			// nearest indices first.
			for j := 0; j < cfg.NumAreas; j++ {
				if j != i && j != parentIdx {
					acCfg.PreferredParents = append(acCfg.PreferredParents, ACID(j))
				}
			}
		}
		if cfg.NumReplicas > 0 {
			reps := make([]area.PeerInfo, cfg.NumReplicas)
			for r := range reps {
				reps[r] = area.PeerInfo{
					ID:   ReplicaAddr(i, r),
					Addr: repTrs[i][r].Addr(),
					Pub:  repKeys[i][r].Public(),
				}
			}
			acCfg.Replicas = reps
		}
		acCfg.SplitAbove = cfg.SplitAbove
		acCfg.MergeBelow = cfg.MergeBelow
		if cfg.SplitAbove > 0 {
			idx := i
			acCfg.OnSplit = func(ids []string) { g.autoSplit(idx, ids) }
		}
		if cfg.MergeBelow > 0 && i > 0 {
			idx := i
			acCfg.OnMerge = func() { g.autoMerge(idx) }
		}
		var ctrl *area.Controller
		if cfg.JournalDir != "" {
			j, rec, jerr := g.openJournal(ACID(i))
			if jerr != nil {
				return nil, jerr
			}
			acCfg.Journal = j
			g.acJournals = append(g.acJournals, j)
			ctrl, err = area.NewFromJournal(acCfg, rec)
		} else {
			ctrl, err = area.New(acCfg)
		}
		if err != nil {
			return nil, err
		}
		g.acCfgs = append(g.acCfgs, acCfg)
		g.controllers = append(g.controllers, ctrl)
	}

	// Replicas watch their primaries and, with more than one per area,
	// each other: on primary silence they hold a quorum leader election
	// and the winner rebuilds the controller from replicated journal
	// segments (or the last full-state sync).
	for i := 0; i < cfg.NumAreas; i++ {
		if cfg.NumReplicas == 0 {
			break
		}
		hb := cfg.HeartbeatEvery
		if hb == 0 {
			hb = cfg.TIdle
		}
		if hb == 0 {
			hb = area.DefaultTIdle
		}
		// With journaling on, seed each replica with the primary's boot
		// state: if the primary dies before a single hot sync, the
		// election winner can still cold-restore from what disk held.
		var cold *area.State
		if cfg.JournalDir != "" {
			cold = g.controllers[i].BootState()
		}
		peers := make([]replica.Peer, cfg.NumReplicas)
		for r := range peers {
			peers[r] = replica.Peer{
				ID:   ReplicaAddr(i, r),
				Addr: repTrs[i][r].Addr(),
				Pub:  repKeys[i][r].Public(),
			}
		}
		for r := 0; r < cfg.NumReplicas; r++ {
			others := make([]replica.Peer, 0, cfg.NumReplicas-1)
			var survivors []area.PeerInfo
			for o := range peers {
				if o == r {
					continue
				}
				others = append(others, peers[o])
				survivors = append(survivors, area.PeerInfo{
					ID: peers[o].ID, Addr: peers[o].Addr, Pub: peers[o].Pub,
				})
			}
			b, err := replica.New(replica.Config{
				ID:         ReplicaAddr(i, r),
				Transport:  repTrs[i][r],
				Keys:       repKeys[i][r],
				Clock:      cfg.Clock,
				PrimaryID:  ACID(i),
				PrimaryPub: ctrlKeys[i].Public(),
				// Bootstrap cadence only: every SegmentPush carries the
				// primary's authoritative HeartbeatEvery, which overrides
				// this on adoption.
				HeartbeatEvery: hb,
				Peers:          others,
				Announcer:      r == 0,
				ColdState:      cold,
				ControllerConfig: area.Config{
					AreaID:  fmt.Sprintf("area-%d", i),
					KShared: g.kShared,
					RSPub:   g.rsKeys.Public(),
					// A promoted winner keeps replicating to the
					// surviving replicas of its area.
					Replicas:         survivors,
					Directory:        g.ctrlInfo,
					Batching:         cfg.Batching,
					TreeArity:        cfg.TreeArity,
					Suite:            cfg.CipherSuite,
					Policy:           cfg.Policy,
					SkipRejoinVerify: cfg.SkipRejoinVerify,
					DataWorkers:      cfg.DataWorkers,
					TIdle:            cfg.TIdle,
					TActive:          cfg.TActive,
					RekeyInterval:    cfg.RekeyInterval,
					VerifyTimeout:    cfg.VerifyTimeout,
				},
				Observer: cfg.Observer,
				Logf:     cfg.Logf,
			})
			if err != nil {
				return nil, err
			}
			g.backups = append(g.backups, b)
		}
	}
	rsCfg := regserver.Config{
		Transport:   rsTr,
		Keys:        g.rsKeys,
		Clock:       cfg.Clock,
		Auth:        regserver.StaticAuthorizer(cfg.AuthDB),
		Controllers: g.ctrlInfo,
		Observer:    cfg.Observer,
		Logf:        cfg.Logf,
	}
	if cfg.JournalDir != "" {
		j, rec, jerr := g.openJournal("rs")
		if jerr != nil {
			return nil, jerr
		}
		g.rsJournal = j
		rsCfg.Journal = j
		rsCfg.Recovery = rec
	}
	rs, err := regserver.New(rsCfg)
	if err != nil {
		return nil, err
	}
	g.RS = rs

	// Start everything: controllers root-first, then replicas, then RS.
	for _, c := range g.controllers {
		c.Start()
	}
	for _, b := range g.backups {
		b.Start()
	}
	rs.Start()
	return g, nil
}

// openJournal opens (or recovers) the journal for one named component
// under Config.JournalDir, recording anything it restored.
func (g *Group) openJournal(name string) (*journal.Journal, *journal.Recovery, error) {
	fsync, err := journal.ParseFsyncPolicy(g.cfg.FsyncPolicy)
	if err != nil {
		return nil, nil, err
	}
	j, rec, err := journal.Open(journal.Options{
		Dir:          filepath.Join(g.cfg.JournalDir, name),
		Fsync:        fsync,
		SegmentBytes: g.cfg.SegmentBytes,
		Logf:         g.cfg.Logf,
		Clock:        g.cfg.Clock,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("core: opening journal for %s: %w", name, err)
	}
	if !rec.Empty() {
		g.mu.Lock()
		g.recovered = append(g.recovered, fmt.Sprintf(
			"%s: recovered snapshot@%d + %d records (truncated %d torn bytes)",
			name, rec.SnapshotLSN, len(rec.Records), rec.TruncatedBytes))
		g.mu.Unlock()
		g.trace.Event(obs.ProtoRecovery, name, "recovered",
			obs.Int("records", int64(len(rec.Records))),
			obs.Uint("snapshot_lsn", uint64(rec.SnapshotLSN)),
			obs.Int("truncated_bytes", int64(rec.TruncatedBytes)))
	}
	return j, rec, nil
}

// Controller returns controller i.
func (g *Group) Controller(i int) *area.Controller {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.controllers[i]
}

// RestartController kills controller i without a clean shutdown and
// rebuilds it from its journal: the loop stops, the journal's file
// descriptors are abandoned un-synced (a crash, as far as disk state is
// concerned), and a fresh controller recovers from whatever the chosen
// FsyncPolicy made durable. The restarted controller reuses the same
// transport, so members keep talking to the same address. Requires
// Config.JournalDir.
func (g *Group) RestartController(i int) error {
	if g.cfg.JournalDir == "" {
		return fmt.Errorf("core: RestartController requires JournalDir")
	}
	g.mu.Lock()
	old := g.controllers[i]
	g.mu.Unlock()

	old.Close()
	g.acJournals[i].Abandon()

	j, rec, err := g.openJournal(ACID(i))
	if err != nil {
		return err
	}
	acCfg := g.acCfgs[i]
	acCfg.Journal = j
	ctrl, err := area.NewFromJournal(acCfg, rec)
	if err != nil {
		_ = j.Close()
		return fmt.Errorf("core: recovering %s: %w", ACID(i), err)
	}
	g.mu.Lock()
	g.acJournals[i] = j
	g.controllers[i] = ctrl
	g.mu.Unlock()
	ctrl.Start()
	return nil
}

// RecoverySummary reports, one line per component, what was restored
// from journals — both at New over an existing JournalDir and by
// RestartController calls since.
func (g *Group) RecoverySummary() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.recovered...)
}

// NumAreas returns the configured number of areas.
func (g *Group) NumAreas() int { return len(g.controllers) }

// Backup returns controller i's first replica (nil when replication is
// disabled).
func (g *Group) Backup(i int) *replica.Backup { return g.Replica(i, 0) }

// Replica returns controller i's r-th replica, or nil when out of range.
// Only the controllers present at New have replicas; siblings spawned by
// an area split run unreplicated until restarted into a replicated
// deployment.
func (g *Group) Replica(i, r int) *replica.Replica {
	n := g.cfg.NumReplicas
	if n == 0 || i < 0 || r < 0 || r >= n || i >= g.cfg.NumAreas {
		return nil
	}
	return g.backups[i*n+r]
}

// ReplicasPerArea reports the configured replica count per controller.
func (g *Group) ReplicasPerArea() int { return g.cfg.NumReplicas }

// Directory returns the live controller directory (splits append to it,
// merges remove from it).
func (g *Group) Directory() []wire.ACInfo {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]wire.ACInfo(nil), g.ctrlInfo...)
}

// SplitArea splits controller i by hand: the upper half of its sorted
// live membership migrates to a freshly spawned sibling controller, which
// is registered with the registration server and parented under the
// source so data keeps routing. Returns the new controller's ID and the
// number of members actually reassigned. With Config.SplitAbove set the
// same machinery runs automatically on the watermark crossing.
func (g *Group) SplitArea(i int) (string, int, error) {
	g.mu.Lock()
	if i < 0 || i >= len(g.controllers) {
		g.mu.Unlock()
		return "", 0, fmt.Errorf("core: SplitArea(%d): no such controller", i)
	}
	src := g.controllers[i]
	g.mu.Unlock()
	ids := src.MemberIDs()
	return g.splitFrom(i, ids[len(ids)/2+len(ids)%2:])
}

// splitFrom spawns a sibling for controller i and migrates the given
// members into it. The spawn order matters: the sibling must be running
// and registered (directory, registration server, prevouch) before the
// source reassigns anyone, so a migrant's ticket rejoin cannot arrive
// ahead of the controller that must admit it.
func (g *Group) splitFrom(i int, migrate []string) (string, int, error) {
	if len(migrate) == 0 {
		return "", 0, fmt.Errorf("core: split of %s: no migratable members", ACID(i))
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return "", 0, fmt.Errorf("core: split of %s: group closed", ACID(i))
	}
	src := g.controllers[i]
	srcCfg := g.acCfgs[i]
	newIdx := len(g.controllers)
	g.mu.Unlock()
	newID := ACID(newIdx)

	tr, err := g.cfg.NewTransport(newID)
	if err != nil {
		return "", 0, fmt.Errorf("core: split of %s: %w", ACID(i), err)
	}
	keys := g.pool.Next()
	info := wire.ACInfo{ID: newID, Addr: tr.Addr(), PubDER: keys.Public().Marshal()}

	acCfg := area.Config{
		ID:        newID,
		AreaID:    fmt.Sprintf("area-%d", newIdx),
		Transport: tr,
		Keys:      keys,
		Clock:     g.cfg.Clock,
		KShared:   g.kShared,
		RSPub:     g.rsKeys.Public(),
		// The sibling hangs under the source controller, so its area's
		// data still routes through the tree it split from.
		Parent: &area.PeerInfo{
			ID:   srcCfg.ID,
			Addr: srcCfg.Transport.Addr(),
			Pub:  srcCfg.Keys.Public(),
		},
		Directory:        append(g.Directory(), info),
		Batching:         g.cfg.Batching,
		TreeArity:        g.cfg.TreeArity,
		Suite:            g.cfg.CipherSuite,
		Policy:           g.cfg.Policy,
		SkipRejoinVerify: g.cfg.SkipRejoinVerify,
		DataWorkers:      g.cfg.DataWorkers,
		TIdle:            g.cfg.TIdle,
		TActive:          g.cfg.TActive,
		RekeyInterval:    g.cfg.RekeyInterval,
		VerifyTimeout:    g.cfg.VerifyTimeout,
		HeartbeatEvery:   g.cfg.HeartbeatEvery,
		SplitAbove:       g.cfg.SplitAbove,
		MergeBelow:       g.cfg.MergeBelow,
		Observer:         g.cfg.Observer,
		Logf:             g.cfg.Logf,
	}
	if g.cfg.SplitAbove > 0 {
		acCfg.OnSplit = func(ids []string) { g.autoSplit(newIdx, ids) }
	}
	if g.cfg.MergeBelow > 0 {
		acCfg.OnMerge = func() { g.autoMerge(newIdx) }
	}
	var ctrl *area.Controller
	var j *journal.Journal
	if g.cfg.JournalDir != "" {
		var rec *journal.Recovery
		j, rec, err = g.openJournal(newID)
		if err != nil {
			_ = tr.Close()
			return "", 0, err
		}
		acCfg.Journal = j
		ctrl, err = area.NewFromJournal(acCfg, rec)
	} else {
		ctrl, err = area.New(acCfg)
	}
	if err != nil {
		if j != nil {
			_ = j.Close()
		}
		_ = tr.Close()
		return "", 0, fmt.Errorf("core: split of %s: spawning %s: %w", ACID(i), newID, err)
	}

	g.mu.Lock()
	g.controllers = append(g.controllers, ctrl)
	g.acCfgs = append(g.acCfgs, acCfg)
	if j != nil {
		g.acJournals = append(g.acJournals, j)
	}
	g.transports = append(g.transports, tr)
	g.ctrlInfo = append(g.ctrlInfo, info)
	peers := make([]*area.Controller, 0, len(g.controllers)-1)
	for k, c := range g.controllers {
		if k != newIdx {
			peers = append(peers, c)
		}
	}
	g.mu.Unlock()

	// Introduce the sibling to the controllers that predate it — above
	// all its parent, which would otherwise refuse the area-join request
	// of an unknown controller.
	for _, c := range peers {
		c.UpsertDirectory(info)
	}
	ctrl.Start()
	if err := g.RS.AddController(info); err != nil {
		return newID, 0, fmt.Errorf("core: split of %s: registering %s: %w", ACID(i), newID, err)
	}
	ctrl.Prevouch(migrate)
	n, err := src.Reassign(migrate, area.PeerInfo{ID: newID, Addr: tr.Addr(), Pub: keys.Public()}, "split")
	if err != nil {
		return newID, n, fmt.Errorf("core: split of %s: reassigning to %s: %w", ACID(i), newID, err)
	}
	g.trace.Event(obs.ProtoSplit, ACID(i), "split",
		obs.String("sibling", newID), obs.Int("migrated", int64(n)))
	return newID, n, nil
}

// autoSplit is the Config.SplitAbove watermark callback for controller i.
func (g *Group) autoSplit(i int, migrate []string) {
	newID, n, err := g.splitFrom(i, migrate)
	if err != nil {
		g.cfg.Logf("core: auto split of %s: %v", ACID(i), err)
		return
	}
	g.cfg.Logf("core: split %s: %d members migrated to %s", ACID(i), n, newID)
}

// MergeArea drains controller i into controller `into` and retires it:
// the registration server drops it from the directory first (no new
// joins land on it), the survivor prevouches the migration set, every
// member is reassigned, and the drained controller shuts down. Its slot
// in the controller list remains (indices stay stable) but it serves
// nothing. With Config.MergeBelow set, an underpopulated non-root
// controller merges into its parent automatically.
func (g *Group) MergeArea(i, into int) (int, error) {
	g.mu.Lock()
	if i < 0 || i >= len(g.controllers) || into < 0 || into >= len(g.controllers) || i == into {
		g.mu.Unlock()
		return 0, fmt.Errorf("core: MergeArea(%d, %d): bad controller pair", i, into)
	}
	live := false
	for _, ac := range g.ctrlInfo {
		if ac.ID == ACID(i) {
			live = true
		}
	}
	if !live {
		g.mu.Unlock()
		return 0, fmt.Errorf("core: MergeArea: %s already retired", ACID(i))
	}
	dying := g.controllers[i]
	survivor := g.controllers[into]
	survivorCfg := g.acCfgs[into]
	g.mu.Unlock()

	if err := g.RS.RemoveController(ACID(i)); err != nil {
		return 0, fmt.Errorf("core: merge of %s: %w", ACID(i), err)
	}
	ids := dying.MemberIDs()
	survivor.Prevouch(ids)
	target := area.PeerInfo{
		ID:   survivorCfg.ID,
		Addr: survivorCfg.Transport.Addr(),
		Pub:  survivorCfg.Keys.Public(),
	}
	n, err := dying.Reassign(ids, target, "merge")
	if err != nil {
		return n, fmt.Errorf("core: merge of %s: %w", ACID(i), err)
	}

	g.mu.Lock()
	for k := range g.ctrlInfo {
		if g.ctrlInfo[k].ID == ACID(i) {
			g.ctrlInfo = append(g.ctrlInfo[:k], g.ctrlInfo[k+1:]...)
			break
		}
	}
	survivors := make([]*area.Controller, 0, len(g.controllers)-1)
	for k, c := range g.controllers {
		if k != i {
			survivors = append(survivors, c)
		}
	}
	g.mu.Unlock()
	for _, c := range survivors {
		c.RemoveDirectory(ACID(i))
	}
	dying.Close()
	if g.cfg.JournalDir != "" {
		_ = g.acJournals[i].Close()
	}
	g.trace.Event(obs.ProtoSplit, ACID(i), "merged",
		obs.String("survivor", ACID(into)), obs.Int("migrated", int64(n)))
	return n, nil
}

// autoMerge is the Config.MergeBelow watermark callback for controller i:
// it folds the controller into its (still live) parent.
func (g *Group) autoMerge(i int) {
	g.mu.Lock()
	into := -1
	if parent := g.acCfgs[i].Parent; parent != nil {
		for k := range g.acCfgs {
			if g.acCfgs[k].ID != parent.ID {
				continue
			}
			for _, ac := range g.ctrlInfo {
				if ac.ID == parent.ID {
					into = k
				}
			}
			break
		}
	}
	g.mu.Unlock()
	if into < 0 {
		g.cfg.Logf("core: auto merge of %s: no live parent to merge into", ACID(i))
		return
	}
	n, err := g.MergeArea(i, into)
	if err != nil {
		g.cfg.Logf("core: auto merge of %s: %v", ACID(i), err)
		return
	}
	g.cfg.Logf("core: merge %s: %d members folded into %s", ACID(i), n, ACID(into))
}

// KShared exposes the shared ticket key, for tests that forge tickets.
func (g *Group) KShared() crypt.SymKey { return g.kShared }

// MemberConfig tweaks one member.
type MemberConfig struct {
	// AuthInfo defaults to "valid".
	AuthInfo string
	// OnData receives decrypted payloads.
	OnData func(payload []byte, origin string)
	// AutoRejoin enables §IV-B automatic recovery.
	AutoRejoin bool
	// DataCipher selects the bulk data cipher (zero = AES;
	// wire.CipherRC4 = the paper's §V-E hand-held path).
	DataCipher wire.DataCipher
	// Suites is the cipher-suite bitmask (1<<crypt.SuiteID) the member
	// advertises at join/rejoin; zero means every registered suite. A
	// controller whose area suite falls outside the mask denies the
	// join explicitly.
	Suites uint64
}

// NewMember creates (but does not join) a member with the given ID. On
// the default simnet factory the member's transport address equals its
// ID.
func (g *Group) NewMember(id string, mc MemberConfig) (*member.Member, error) {
	if mc.AuthInfo == "" {
		mc.AuthInfo = "valid"
	}
	tr, err := g.cfg.NewTransport(id)
	if err != nil {
		return nil, err
	}
	keys := g.pool.Next()
	m, err := member.New(member.Config{
		ID:         id,
		Transport:  tr,
		Keys:       keys,
		Clock:      g.cfg.Clock,
		RSAddr:     g.rsTransport.Addr(),
		RSPub:      g.rsKeys.Public(),
		AuthInfo:   mc.AuthInfo,
		OnData:     mc.OnData,
		AutoRejoin: mc.AutoRejoin,
		DataCipher: mc.DataCipher,
		Suites:     mc.Suites,
		TActive:    g.cfg.TActive,
		TIdle:      g.cfg.TIdle,
		OpTimeout:  g.cfg.OpTimeout,
		Observer:   g.cfg.Observer,
		Metrics:    g.metrics,
		Logf:       g.cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	m.Start()
	g.mu.Lock()
	g.members[id] = m
	g.transports = append(g.transports, tr)
	g.mu.Unlock()
	return m, nil
}

// AddMember creates a member and runs the full join protocol.
func (g *Group) AddMember(id string, mc MemberConfig) (*member.Member, error) {
	m, err := g.NewMember(id, mc)
	if err != nil {
		return nil, err
	}
	if err := m.Join(); err != nil {
		return nil, fmt.Errorf("core: member %s join: %w", id, err)
	}
	return m, nil
}

// Member returns the member with the given ID, or nil.
func (g *Group) Member(id string) *member.Member {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.members[id]
}

// WarmMemberKeys pre-generates n member key pairs in parallel.
func (g *Group) WarmMemberKeys(n int) error { return g.pool.Warm(n) }

// Metrics returns the group-level registry holding the member join and
// rejoin latency histograms (shared across all members of the group).
func (g *Group) Metrics() *obs.Registry { return g.metrics }

// metricRegistries snapshots every registry in the deployment: the
// group-level histograms, each controller, the registration server,
// every member's loop counters, and the simulated network (when owned).
func (g *Group) metricRegistries() []*obs.Registry {
	regs := []*obs.Registry{g.metrics}
	g.mu.Lock()
	for _, c := range g.controllers {
		regs = append(regs, c.Stats())
	}
	for _, m := range g.members {
		regs = append(regs, m.Stats())
	}
	g.mu.Unlock()
	if g.RS != nil {
		regs = append(regs, g.RS.Stats())
	}
	if g.Net != nil {
		regs = append(regs, g.Net.Stats())
	}
	return regs
}

// WriteMetrics writes every component's metrics as one merged
// Prometheus text exposition — the body mykilnet serves on /metrics.
func (g *Group) WriteMetrics(w io.Writer) error {
	return obs.WriteAll(w, g.metricRegistries()...)
}

// DropSummary reports, one line per component, the commands each node
// loop dropped after stopping (node.drops) plus the simulated network's
// five sim.dropped.* counters — the loss surface a shutdown summary
// should always show.
func (g *Group) DropSummary() []string {
	var out []string
	g.mu.Lock()
	controllers := append([]*area.Controller(nil), g.controllers...)
	var memberDrops int64
	nMembers := len(g.members)
	for _, m := range g.members {
		memberDrops += m.Stats().Value(node.StatDrops)
	}
	g.mu.Unlock()
	for i, c := range controllers {
		out = append(out, fmt.Sprintf("%s %s=%d", ACID(i), node.StatDrops, c.Stats().Value(node.StatDrops)))
	}
	if g.RS != nil {
		out = append(out, fmt.Sprintf("regserver %s=%d", node.StatDrops, g.RS.Stats().Value(node.StatDrops)))
	}
	out = append(out, fmt.Sprintf("members(%d) %s=%d", nMembers, node.StatDrops, memberDrops))
	if g.Net != nil {
		st := g.Net.Stats()
		for _, name := range []string{
			simnet.StatDroppedPartition, simnet.StatDroppedCrashed,
			simnet.StatDroppedRate, simnet.StatDroppedOverflow,
			simnet.StatDroppedClosed,
		} {
			out = append(out, fmt.Sprintf("net %s=%d", name, st.Value(name)))
		}
		// Per-lane breakdown: queued depth plus each lane's share of the
		// drops, so a hot or lossy delivery lane is visible at shutdown.
		for i := 0; i < g.Net.NumShards(); i++ {
			var dropped int64
			for _, name := range []string{
				simnet.StatDroppedPartition, simnet.StatDroppedCrashed,
				simnet.StatDroppedRate, simnet.StatDroppedOverflow,
				simnet.StatDroppedClosed,
			} {
				dropped += st.Value(fmt.Sprintf("%s.shard%02d", name, i))
			}
			out = append(out, fmt.Sprintf("net sim.shard%02d depth=%d dropped=%d",
				i, st.Value(fmt.Sprintf("sim.shard%02d.depth", i)), dropped))
		}
	}
	return out
}

// Close stops every component and, if the group owns it, the network.
func (g *Group) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	members := make([]*member.Member, 0, len(g.members))
	for _, m := range g.members {
		members = append(members, m)
	}
	transports := g.transports
	g.mu.Unlock()

	for _, m := range members {
		m.Close()
	}
	g.RS.Close()
	for _, b := range g.backups {
		b.Close()
	}
	for _, c := range g.controllers {
		c.Close()
	}
	// Journals close after their owners stop appending.
	for _, j := range g.acJournals {
		_ = j.Close()
	}
	if g.rsJournal != nil {
		_ = g.rsJournal.Close()
	}
	for _, tr := range transports {
		_ = tr.Close()
	}
	if g.ownsNet {
		g.Net.Close()
	}
}
