// Package core assembles complete Mykil deployments: a registration
// server, a tree of area controllers (optionally each with a primary-
// backup replica), and any number of members, all wired over the
// simulated network. It is the facade the examples, integration tests,
// and benchmarks use; the underlying pieces live in internal/regserver,
// internal/area, internal/member, and internal/replica.
package core

import (
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"time"

	"mykil/internal/area"
	"mykil/internal/clock"
	"mykil/internal/crypt"
	"mykil/internal/journal"
	"mykil/internal/member"
	"mykil/internal/node"
	"mykil/internal/obs"
	"mykil/internal/regserver"
	"mykil/internal/replica"
	"mykil/internal/simnet"
	"mykil/internal/transport"
	"mykil/internal/wire"
)

// DefaultRSABits keeps in-process experiments fast; the paper's 2048-bit
// keys are selected by raising Config.RSABits.
const DefaultRSABits = 1024

// Config describes a deployment. Prefer the functional-options form
// core.New(core.WithAreas(2), ...); the struct remains for one release
// as the NewFromConfig shim and as the option functions' target.
type Config struct {
	// NumAreas is the number of areas (and controllers). Controllers
	// form a tree: controller i's parent is controller (i-1)/AreaFanout.
	NumAreas int
	// AreaFanout shapes the controller tree; 0 means 2.
	AreaFanout int
	// RSABits sets every principal's key size; 0 means DefaultRSABits.
	RSABits int
	// Batching enables §III-E aggregation at every controller.
	Batching bool
	// TreeArity sets auxiliary-key-tree fan-out (0 = paper's 4).
	TreeArity int
	// WithBackups gives every controller a §IV-C primary-backup replica.
	WithBackups bool
	// Policy selects rejoin behaviour under partition.
	Policy area.PartitionPolicy
	// SkipRejoinVerify omits rejoin steps 4-5 at every controller
	// (§V-D's option-2 latency variant).
	SkipRejoinVerify bool
	// DataWorkers sizes each controller's data-plane worker pool (rekey
	// entry encryption, welcome sealing, Iolus-style data re-encryption);
	// zero means one worker per CPU, 1 is effectively serial.
	DataWorkers int
	// Clock drives all timers; nil means clock.Real. Use a clock.Fake
	// to step failure detection deterministically.
	Clock clock.Clock
	// Net, if set, is used instead of a fresh lossless network.
	Net *simnet.Network
	// NewTransport, if set, overrides how component transports are
	// created (e.g. transport.NewTCP for a real-network deployment); the
	// name parameter is the component's identity ("rs", "ac-0", member
	// ID). When nil, simnet transports named after the identity are
	// used. Addresses always come from Transport.Addr().
	NewTransport func(name string) (transport.Transport, error)
	// AuthDB maps acceptable auth-info strings to membership durations.
	// Nil installs {"valid": 24h}.
	AuthDB map[string]time.Duration
	// Timing overrides passed to every controller and member.
	TIdle          time.Duration
	TActive        time.Duration
	RekeyInterval  time.Duration
	VerifyTimeout  time.Duration
	HeartbeatEvery time.Duration
	OpTimeout      time.Duration
	// JournalDir, if non-empty, makes controllers and the registration
	// server durable: each controller journals under
	// <JournalDir>/<acID>, the registration server under
	// <JournalDir>/rs. On New, any state those journals hold is
	// recovered first, so building a group over an existing JournalDir
	// is a restart, not a fresh deployment.
	JournalDir string
	// FsyncPolicy is the journal sync discipline: "always", "interval",
	// or "never" ("" means always). Only meaningful with JournalDir.
	FsyncPolicy string
	// SegmentBytes overrides the journal segment rotation threshold;
	// zero means the journal default.
	SegmentBytes int64
	// KeyPool, if set, supplies every principal's key pair from a shared
	// deterministic pool instead of per-principal keygen. SIMULATION AND
	// TEST ONLY: pool keys are shared and reproducible (crypt.NewKeyPool),
	// which destroys all security properties but makes 10^5-member runs
	// affordable. Production deployments must leave this nil.
	KeyPool *crypt.KeyPool
	// Observer, if set, receives structured protocol trace events from
	// every component (handshake steps, rekeys, alive rounds,
	// re-parenting, journal recovery). See internal/obs.
	Observer obs.Sink
	// Logf, if set, receives debug logging from every component.
	Logf func(format string, args ...any)
}

// Group is a running deployment.
type Group struct {
	Net   *simnet.Network
	Clock clock.Clock
	RS    *regserver.Server

	cfg         Config
	ownsNet     bool
	rsTransport transport.Transport
	controllers []*area.Controller
	ctrlInfo    []wire.ACInfo
	backups     []*replica.Backup
	pool        keySource
	rsKeys      *crypt.KeyPair
	kShared     crypt.SymKey
	metrics     *obs.Registry
	trace       *obs.Tracer

	// Durability (only populated when cfg.JournalDir is set).
	acCfgs     []area.Config
	acJournals []*journal.Journal
	rsJournal  *journal.Journal
	recovered  []string

	mu         sync.Mutex
	members    map[string]*member.Member
	transports []transport.Transport
	closed     bool
}

// keySource is where the deployment draws principal key pairs from:
// crypt.Pool (fresh keygen, the default) or a shared deterministic
// crypt.KeyPool opted into with WithTestKeyPool.
type keySource interface {
	Warm(n int) error
	Get() (*crypt.KeyPair, error)
}

// sharedKeySource adapts crypt.KeyPool; Warm is a no-op because the
// pool is fully generated at construction.
type sharedKeySource struct{ p *crypt.KeyPool }

func (s sharedKeySource) Warm(int) error               { return nil }
func (s sharedKeySource) Get() (*crypt.KeyPair, error) { return s.p.Next(), nil }

// ACAddr returns controller i's transport address.
func ACAddr(i int) string { return fmt.Sprintf("ac-%d", i) }

// ACID returns controller i's identity.
func ACID(i int) string { return ACAddr(i) }

// BackupAddr returns controller i's backup address.
func BackupAddr(i int) string { return fmt.Sprintf("backup-%d", i) }

// RSAddr is the registration server's address.
const RSAddr = "rs"

// NewFromConfig builds and starts a deployment from a Config struct.
//
// Deprecated: use New with functional options. This shim remains for
// one release.
func NewFromConfig(cfg Config) (*Group, error) {
	if cfg.NumAreas <= 0 {
		cfg.NumAreas = 1
	}
	if cfg.AreaFanout <= 0 {
		cfg.AreaFanout = 2
	}
	if cfg.RSABits == 0 {
		cfg.RSABits = DefaultRSABits
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.AuthDB == nil {
		cfg.AuthDB = map[string]time.Duration{"valid": 24 * time.Hour}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}

	g := &Group{
		Clock:   cfg.Clock,
		cfg:     cfg,
		kShared: crypt.NewSymKey(),
		members: make(map[string]*member.Member),
		metrics: obs.NewRegistry(),
	}
	if cfg.KeyPool != nil {
		g.pool = sharedKeySource{cfg.KeyPool}
	} else {
		g.pool = crypt.NewPool(cfg.RSABits)
	}
	g.trace = obs.NewTracer("core", cfg.Clock, cfg.Observer)
	if cfg.NewTransport == nil {
		if cfg.Net != nil {
			g.Net = cfg.Net
		} else {
			g.Net = simnet.New(simnet.Config{})
			g.ownsNet = true
		}
		net := g.Net
		cfg.NewTransport = func(name string) (transport.Transport, error) {
			return transport.NewSim(net, name)
		}
		g.cfg.NewTransport = cfg.NewTransport
	}

	// Pre-generate every controller-side key pair in parallel.
	nKeys := 1 + cfg.NumAreas
	if cfg.WithBackups {
		nKeys += cfg.NumAreas
	}
	if err := g.pool.Warm(nKeys); err != nil {
		return nil, fmt.Errorf("core: warming key pool: %w", err)
	}

	var err error
	g.rsKeys, err = g.pool.Get()
	if err != nil {
		return nil, err
	}

	// All component transports first: with a real-network factory the
	// directory must carry listener-assigned addresses.
	acTrs := make([]transport.Transport, cfg.NumAreas)
	for i := range acTrs {
		if acTrs[i], err = cfg.NewTransport(ACAddr(i)); err != nil {
			return nil, err
		}
		g.transports = append(g.transports, acTrs[i])
	}
	backupTrs := make([]transport.Transport, cfg.NumAreas)
	if cfg.WithBackups {
		for i := range backupTrs {
			if backupTrs[i], err = cfg.NewTransport(BackupAddr(i)); err != nil {
				return nil, err
			}
			g.transports = append(g.transports, backupTrs[i])
		}
	}
	rsTr, err := cfg.NewTransport(RSAddr)
	if err != nil {
		return nil, err
	}
	g.rsTransport = rsTr
	g.transports = append(g.transports, rsTr)

	// Controller key pairs and the directory.
	ctrlKeys := make([]*crypt.KeyPair, cfg.NumAreas)
	g.ctrlInfo = make([]wire.ACInfo, cfg.NumAreas)
	for i := 0; i < cfg.NumAreas; i++ {
		ctrlKeys[i], err = g.pool.Get()
		if err != nil {
			return nil, err
		}
		g.ctrlInfo[i] = wire.ACInfo{
			ID:     ACID(i),
			Addr:   acTrs[i].Addr(),
			PubDER: ctrlKeys[i].Public().Marshal(),
		}
	}

	// Backups.
	backupKeys := make([]*crypt.KeyPair, cfg.NumAreas)
	if cfg.WithBackups {
		for i := range backupKeys {
			backupKeys[i], err = g.pool.Get()
			if err != nil {
				return nil, err
			}
		}
	}

	// Journal sync discipline, validated once up front.
	fsync, err := journal.ParseFsyncPolicy(cfg.FsyncPolicy)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	openJournal := func(name string) (*journal.Journal, *journal.Recovery, error) {
		j, rec, err := journal.Open(journal.Options{
			Dir:          filepath.Join(cfg.JournalDir, name),
			Fsync:        fsync,
			SegmentBytes: cfg.SegmentBytes,
			Logf:         cfg.Logf,
			Clock:        cfg.Clock,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("core: opening journal for %s: %w", name, err)
		}
		if !rec.Empty() {
			g.recovered = append(g.recovered, fmt.Sprintf(
				"%s: recovered snapshot@%d + %d records (truncated %d torn bytes)",
				name, rec.SnapshotLSN, len(rec.Records), rec.TruncatedBytes))
			g.trace.Event(obs.ProtoRecovery, name, "recovered",
				obs.Int("records", int64(len(rec.Records))),
				obs.Uint("snapshot_lsn", uint64(rec.SnapshotLSN)),
				obs.Int("truncated_bytes", int64(rec.TruncatedBytes)))
		}
		return j, rec, nil
	}

	// Controllers, root first so parents exist before children join.
	for i := 0; i < cfg.NumAreas; i++ {
		acCfg := area.Config{
			ID:               ACID(i),
			AreaID:           fmt.Sprintf("area-%d", i),
			Transport:        acTrs[i],
			Keys:             ctrlKeys[i],
			Clock:            cfg.Clock,
			KShared:          g.kShared,
			RSPub:            g.rsKeys.Public(),
			Directory:        g.ctrlInfo,
			Batching:         cfg.Batching,
			TreeArity:        cfg.TreeArity,
			Policy:           cfg.Policy,
			SkipRejoinVerify: cfg.SkipRejoinVerify,
			DataWorkers:      cfg.DataWorkers,
			TIdle:            cfg.TIdle,
			TActive:          cfg.TActive,
			RekeyInterval:    cfg.RekeyInterval,
			VerifyTimeout:    cfg.VerifyTimeout,
			HeartbeatEvery:   cfg.HeartbeatEvery,
			Observer:         cfg.Observer,
			Logf:             cfg.Logf,
		}
		if i > 0 {
			parentIdx := (i - 1) / cfg.AreaFanout
			acCfg.Parent = &area.PeerInfo{
				ID:   ACID(parentIdx),
				Addr: acTrs[parentIdx].Addr(),
				Pub:  ctrlKeys[parentIdx].Public(),
			}
			// Preferred fallback parents: every other controller,
			// nearest indices first.
			for j := 0; j < cfg.NumAreas; j++ {
				if j != i && j != parentIdx {
					acCfg.PreferredParents = append(acCfg.PreferredParents, ACID(j))
				}
			}
		}
		if cfg.WithBackups {
			acCfg.Backup = &area.PeerInfo{
				ID:   fmt.Sprintf("backup-%d", i),
				Addr: backupTrs[i].Addr(),
				Pub:  backupKeys[i].Public(),
			}
		}
		var ctrl *area.Controller
		if cfg.JournalDir != "" {
			j, rec, jerr := openJournal(ACID(i))
			if jerr != nil {
				return nil, jerr
			}
			acCfg.Journal = j
			g.acJournals = append(g.acJournals, j)
			ctrl, err = area.NewFromJournal(acCfg, rec)
		} else {
			ctrl, err = area.New(acCfg)
		}
		if err != nil {
			return nil, err
		}
		g.acCfgs = append(g.acCfgs, acCfg)
		g.controllers = append(g.controllers, ctrl)
	}

	// Backups watch their primaries.
	if cfg.WithBackups {
		for i := 0; i < cfg.NumAreas; i++ {
			hb := cfg.HeartbeatEvery
			if hb == 0 {
				hb = cfg.TIdle
			}
			if hb == 0 {
				hb = area.DefaultTIdle
			}
			// With journaling on, seed the backup with the primary's
			// boot state: if the primary dies before a single hot sync,
			// the backup can still cold-restore from what disk held.
			var cold *area.State
			if cfg.JournalDir != "" {
				cold = g.controllers[i].BootState()
			}
			b, err := replica.New(replica.Config{
				ID:             fmt.Sprintf("backup-%d", i),
				Transport:      backupTrs[i],
				Keys:           backupKeys[i],
				Clock:          cfg.Clock,
				PrimaryID:      ACID(i),
				PrimaryPub:     ctrlKeys[i].Public(),
				HeartbeatEvery: hb,
				ColdState:      cold,
				ControllerConfig: area.Config{
					KShared:       g.kShared,
					RSPub:         g.rsKeys.Public(),
					Directory:     g.ctrlInfo,
					Batching:      cfg.Batching,
					TreeArity:     cfg.TreeArity,
					Policy:        cfg.Policy,
					DataWorkers:   cfg.DataWorkers,
					TIdle:         cfg.TIdle,
					TActive:       cfg.TActive,
					RekeyInterval: cfg.RekeyInterval,
					VerifyTimeout: cfg.VerifyTimeout,
				},
				Observer: cfg.Observer,
				Logf:     cfg.Logf,
			})
			if err != nil {
				return nil, err
			}
			g.backups = append(g.backups, b)
		}
	}
	rsCfg := regserver.Config{
		Transport:   rsTr,
		Keys:        g.rsKeys,
		Clock:       cfg.Clock,
		Auth:        regserver.StaticAuthorizer(cfg.AuthDB),
		Controllers: g.ctrlInfo,
		Observer:    cfg.Observer,
		Logf:        cfg.Logf,
	}
	if cfg.JournalDir != "" {
		j, rec, jerr := openJournal("rs")
		if jerr != nil {
			return nil, jerr
		}
		g.rsJournal = j
		rsCfg.Journal = j
		rsCfg.Recovery = rec
	}
	rs, err := regserver.New(rsCfg)
	if err != nil {
		return nil, err
	}
	g.RS = rs

	// Start everything: controllers root-first, then backups, then RS.
	for _, c := range g.controllers {
		c.Start()
	}
	for _, b := range g.backups {
		b.Start()
	}
	rs.Start()
	return g, nil
}

// Controller returns controller i.
func (g *Group) Controller(i int) *area.Controller {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.controllers[i]
}

// RestartController kills controller i without a clean shutdown and
// rebuilds it from its journal: the loop stops, the journal's file
// descriptors are abandoned un-synced (a crash, as far as disk state is
// concerned), and a fresh controller recovers from whatever the chosen
// FsyncPolicy made durable. The restarted controller reuses the same
// transport, so members keep talking to the same address. Requires
// Config.JournalDir.
func (g *Group) RestartController(i int) error {
	if g.cfg.JournalDir == "" {
		return fmt.Errorf("core: RestartController requires JournalDir")
	}
	g.mu.Lock()
	old := g.controllers[i]
	g.mu.Unlock()

	old.Close()
	g.acJournals[i].Abandon()

	fsync, err := journal.ParseFsyncPolicy(g.cfg.FsyncPolicy)
	if err != nil {
		return err
	}
	j, rec, err := journal.Open(journal.Options{
		Dir:          filepath.Join(g.cfg.JournalDir, ACID(i)),
		Fsync:        fsync,
		SegmentBytes: g.cfg.SegmentBytes,
		Logf:         g.cfg.Logf,
		Clock:        g.cfg.Clock,
	})
	if err != nil {
		return fmt.Errorf("core: reopening journal for %s: %w", ACID(i), err)
	}
	acCfg := g.acCfgs[i]
	acCfg.Journal = j
	ctrl, err := area.NewFromJournal(acCfg, rec)
	if err != nil {
		_ = j.Close()
		return fmt.Errorf("core: recovering %s: %w", ACID(i), err)
	}
	g.mu.Lock()
	g.acJournals[i] = j
	g.controllers[i] = ctrl
	g.recovered = append(g.recovered, fmt.Sprintf(
		"%s: recovered snapshot@%d + %d records (truncated %d torn bytes)",
		ACID(i), rec.SnapshotLSN, len(rec.Records), rec.TruncatedBytes))
	g.mu.Unlock()
	g.trace.Event(obs.ProtoRecovery, ACID(i), "recovered",
		obs.Int("records", int64(len(rec.Records))),
		obs.Uint("snapshot_lsn", uint64(rec.SnapshotLSN)),
		obs.Int("truncated_bytes", int64(rec.TruncatedBytes)))
	ctrl.Start()
	return nil
}

// RecoverySummary reports, one line per component, what was restored
// from journals — both at New over an existing JournalDir and by
// RestartController calls since.
func (g *Group) RecoverySummary() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.recovered...)
}

// NumAreas returns the configured number of areas.
func (g *Group) NumAreas() int { return len(g.controllers) }

// Backup returns backup i (nil when backups are disabled).
func (g *Group) Backup(i int) *replica.Backup {
	if len(g.backups) == 0 {
		return nil
	}
	return g.backups[i]
}

// Directory returns the controller directory.
func (g *Group) Directory() []wire.ACInfo {
	return append([]wire.ACInfo(nil), g.ctrlInfo...)
}

// KShared exposes the shared ticket key, for tests that forge tickets.
func (g *Group) KShared() crypt.SymKey { return g.kShared }

// MemberConfig tweaks one member.
type MemberConfig struct {
	// AuthInfo defaults to "valid".
	AuthInfo string
	// OnData receives decrypted payloads.
	OnData func(payload []byte, origin string)
	// AutoRejoin enables §IV-B automatic recovery.
	AutoRejoin bool
	// DataCipher selects the bulk data cipher (zero = AES;
	// wire.CipherRC4 = the paper's §V-E hand-held path).
	DataCipher wire.DataCipher
}

// NewMember creates (but does not join) a member with the given ID. On
// the default simnet factory the member's transport address equals its
// ID.
func (g *Group) NewMember(id string, mc MemberConfig) (*member.Member, error) {
	if mc.AuthInfo == "" {
		mc.AuthInfo = "valid"
	}
	tr, err := g.cfg.NewTransport(id)
	if err != nil {
		return nil, err
	}
	keys, err := g.pool.Get()
	if err != nil {
		return nil, err
	}
	m, err := member.New(member.Config{
		ID:         id,
		Transport:  tr,
		Keys:       keys,
		Clock:      g.cfg.Clock,
		RSAddr:     g.rsTransport.Addr(),
		RSPub:      g.rsKeys.Public(),
		AuthInfo:   mc.AuthInfo,
		OnData:     mc.OnData,
		AutoRejoin: mc.AutoRejoin,
		DataCipher: mc.DataCipher,
		TActive:    g.cfg.TActive,
		TIdle:      g.cfg.TIdle,
		OpTimeout:  g.cfg.OpTimeout,
		Observer:   g.cfg.Observer,
		Metrics:    g.metrics,
		Logf:       g.cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	m.Start()
	g.mu.Lock()
	g.members[id] = m
	g.transports = append(g.transports, tr)
	g.mu.Unlock()
	return m, nil
}

// AddMember creates a member and runs the full join protocol.
func (g *Group) AddMember(id string, mc MemberConfig) (*member.Member, error) {
	m, err := g.NewMember(id, mc)
	if err != nil {
		return nil, err
	}
	if err := m.Join(); err != nil {
		return nil, fmt.Errorf("core: member %s join: %w", id, err)
	}
	return m, nil
}

// Member returns the member with the given ID, or nil.
func (g *Group) Member(id string) *member.Member {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.members[id]
}

// WarmMemberKeys pre-generates n member key pairs in parallel.
func (g *Group) WarmMemberKeys(n int) error { return g.pool.Warm(n) }

// Metrics returns the group-level registry holding the member join and
// rejoin latency histograms (shared across all members of the group).
func (g *Group) Metrics() *obs.Registry { return g.metrics }

// metricRegistries snapshots every registry in the deployment: the
// group-level histograms, each controller, the registration server,
// every member's loop counters, and the simulated network (when owned).
func (g *Group) metricRegistries() []*obs.Registry {
	regs := []*obs.Registry{g.metrics}
	g.mu.Lock()
	for _, c := range g.controllers {
		regs = append(regs, c.Stats())
	}
	for _, m := range g.members {
		regs = append(regs, m.Stats())
	}
	g.mu.Unlock()
	if g.RS != nil {
		regs = append(regs, g.RS.Stats())
	}
	if g.Net != nil {
		regs = append(regs, g.Net.Stats())
	}
	return regs
}

// WriteMetrics writes every component's metrics as one merged
// Prometheus text exposition — the body mykilnet serves on /metrics.
func (g *Group) WriteMetrics(w io.Writer) error {
	return obs.WriteAll(w, g.metricRegistries()...)
}

// DropSummary reports, one line per component, the commands each node
// loop dropped after stopping (node.drops) plus the simulated network's
// five sim.dropped.* counters — the loss surface a shutdown summary
// should always show.
func (g *Group) DropSummary() []string {
	var out []string
	g.mu.Lock()
	controllers := append([]*area.Controller(nil), g.controllers...)
	var memberDrops int64
	nMembers := len(g.members)
	for _, m := range g.members {
		memberDrops += m.Stats().Value(node.StatDrops)
	}
	g.mu.Unlock()
	for i, c := range controllers {
		out = append(out, fmt.Sprintf("%s %s=%d", ACID(i), node.StatDrops, c.Stats().Value(node.StatDrops)))
	}
	if g.RS != nil {
		out = append(out, fmt.Sprintf("regserver %s=%d", node.StatDrops, g.RS.Stats().Value(node.StatDrops)))
	}
	out = append(out, fmt.Sprintf("members(%d) %s=%d", nMembers, node.StatDrops, memberDrops))
	if g.Net != nil {
		st := g.Net.Stats()
		for _, name := range []string{
			simnet.StatDroppedPartition, simnet.StatDroppedCrashed,
			simnet.StatDroppedRate, simnet.StatDroppedOverflow,
			simnet.StatDroppedClosed,
		} {
			out = append(out, fmt.Sprintf("net %s=%d", name, st.Value(name)))
		}
		// Per-lane breakdown: queued depth plus each lane's share of the
		// drops, so a hot or lossy delivery lane is visible at shutdown.
		for i := 0; i < g.Net.NumShards(); i++ {
			var dropped int64
			for _, name := range []string{
				simnet.StatDroppedPartition, simnet.StatDroppedCrashed,
				simnet.StatDroppedRate, simnet.StatDroppedOverflow,
				simnet.StatDroppedClosed,
			} {
				dropped += st.Value(fmt.Sprintf("%s.shard%02d", name, i))
			}
			out = append(out, fmt.Sprintf("net sim.shard%02d depth=%d dropped=%d",
				i, st.Value(fmt.Sprintf("sim.shard%02d.depth", i)), dropped))
		}
	}
	return out
}

// Close stops every component and, if the group owns it, the network.
func (g *Group) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	members := make([]*member.Member, 0, len(g.members))
	for _, m := range g.members {
		members = append(members, m)
	}
	transports := g.transports
	g.mu.Unlock()

	for _, m := range members {
		m.Close()
	}
	g.RS.Close()
	for _, b := range g.backups {
		b.Close()
	}
	for _, c := range g.controllers {
		c.Close()
	}
	// Journals close after their owners stop appending.
	for _, j := range g.acJournals {
		_ = j.Close()
	}
	if g.rsJournal != nil {
		_ = g.rsJournal.Close()
	}
	for _, tr := range transports {
		_ = tr.Close()
	}
	if g.ownsNet {
		g.Net.Close()
	}
}
