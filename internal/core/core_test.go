package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mykil/internal/area"
	"mykil/internal/member"
	"mykil/internal/wire"
)

// fastTiming returns options with millisecond-scale protocol timers so
// failure-detection scenarios complete quickly under the real clock.
func fastTiming(areas int) []Option {
	return []Option{
		WithAreas(areas),
		WithRSABits(512),
		WithTIdle(30 * time.Millisecond),
		WithTActive(60 * time.Millisecond),
		WithRekeyInterval(50 * time.Millisecond),
		WithVerifyTimeout(200 * time.Millisecond),
		WithHeartbeatEvery(30 * time.Millisecond),
		WithOpTimeout(5 * time.Second),
	}
}

// waitFor polls cond until true or the deadline passes.
func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// collector accumulates delivered payloads.
type collector struct {
	mu   sync.Mutex
	msgs []string
}

func (c *collector) onData(payload []byte, origin string) {
	c.mu.Lock()
	c.msgs = append(c.msgs, origin+":"+string(payload))
	c.mu.Unlock()
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func (c *collector) has(msg string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.msgs {
		if m == msg {
			return true
		}
	}
	return false
}

func TestSingleAreaJoinAndMulticast(t *testing.T) {
	g, err := New(fastTiming(1)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()

	var recv [3]collector
	var members [3]*member.Member
	for i := range members {
		m, err := g.AddMember(fmt.Sprintf("m%d", i), MemberConfig{OnData: recv[i].onData})
		if err != nil {
			t.Fatalf("AddMember %d: %v", i, err)
		}
		members[i] = m
	}
	if got := g.Controller(0).NumMembers(); got != 3 {
		t.Fatalf("controller members = %d, want 3", got)
	}
	for i, m := range members {
		if !m.Connected() {
			t.Fatalf("member %d not connected", i)
		}
	}

	if err := members[0].Send([]byte("hello group")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	waitFor(t, "delivery to m1", 5*time.Second, func() bool { return recv[1].has("m0:hello group") })
	waitFor(t, "delivery to m2", 5*time.Second, func() bool { return recv[2].has("m0:hello group") })
	// The sender must not hear its own message back.
	time.Sleep(50 * time.Millisecond)
	if recv[0].count() != 0 {
		t.Errorf("sender received its own multicast")
	}
}

func TestCrossAreaMulticast(t *testing.T) {
	g, err := New(fastTiming(3)...) // ac-0 root, ac-1 and ac-2 children
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()

	// One member per area; round-robin assignment places m0->ac-0,
	// m1->ac-1, m2->ac-2.
	var recv [3]collector
	var members [3]*member.Member
	for i := range members {
		m, err := g.AddMember(fmt.Sprintf("m%d", i), MemberConfig{OnData: recv[i].onData})
		if err != nil {
			t.Fatalf("AddMember %d: %v", i, err)
		}
		members[i] = m
	}
	areas := map[string]bool{}
	for _, m := range members {
		areas[m.AreaID()] = true
	}
	if len(areas) != 3 {
		t.Fatalf("members spread over %d areas, want 3 (%v)", len(areas), areas)
	}

	// A message from the member in a leaf area must reach both other
	// areas (up through the root and down the other branch).
	if err := members[1].Send([]byte("cross")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	waitFor(t, "delivery to m0 (root area)", 5*time.Second, func() bool { return recv[0].has("m1:cross") })
	waitFor(t, "delivery to m2 (sibling area)", 5*time.Second, func() bool { return recv[2].has("m1:cross") })
}

func TestDeepAreaTreeMulticast(t *testing.T) {
	// Seven areas in a three-level tree (ac-0; ac-1, ac-2; ac-3..ac-6):
	// data from a grandchild area must climb two boundaries and descend
	// the other branch, re-encrypted at every crossing.
	g, err := New(fastTiming(7)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()
	if err := g.WarmMemberKeys(7); err != nil {
		t.Fatalf("WarmMemberKeys: %v", err)
	}

	// Wait for the full area tree to assemble.
	waitFor(t, "area tree assembly", 10*time.Second, func() bool {
		for i := 1; i < 7; i++ {
			if g.Controller(i).ParentID() == "" {
				return false
			}
		}
		return true
	})

	var recv [7]collector
	var members [7]*member.Member
	for i := range members {
		m, err := g.AddMember(fmt.Sprintf("d%d", i), MemberConfig{OnData: recv[i].onData})
		if err != nil {
			t.Fatalf("AddMember %d: %v", i, err)
		}
		members[i] = m
	}
	// Round-robin puts d_i in area i: d3 lives in a grandchild area.
	if members[3].ControllerID() != ACID(3) {
		t.Fatalf("d3 on %s, want ac-3", members[3].ControllerID())
	}
	if err := members[3].Send([]byte("from the leaves")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	for i := 0; i < 7; i++ {
		if i == 3 {
			continue
		}
		i := i
		waitFor(t, fmt.Sprintf("delivery to d%d", i), 10*time.Second, func() bool {
			return recv[i].has("d3:from the leaves")
		})
	}
}

func TestTicketExpiryBlocksRejoin(t *testing.T) {
	g, err := New(append(fastTiming(2),
		WithAuthDB(map[string]time.Duration{"short": 300 * time.Millisecond}))...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()

	m, err := g.AddMember("ephemeral", MemberConfig{AuthInfo: "short"})
	if err != nil {
		t.Fatalf("AddMember: %v", err)
	}
	home := m.ControllerID()
	var target string
	for _, e := range g.Directory() {
		if e.ID != home {
			target = e.ID
		}
	}
	if err := m.Leave(); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	time.Sleep(400 * time.Millisecond) // let the ticket expire
	err = m.Rejoin(target)
	if err == nil {
		t.Fatal("rejoin succeeded with an expired ticket")
	}
	// Depending on timing the controller answers with a denial or stays
	// silent (ticket rejected before a session forms); either way the
	// member is not admitted.
	if m.Connected() {
		t.Fatal("member connected despite expired ticket")
	}
}

func TestLeaveRevokesAccess(t *testing.T) {
	g, err := New(fastTiming(1)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()

	var recvA, recvB, recvC collector
	ma, err := g.AddMember("ma", MemberConfig{OnData: recvA.onData})
	if err != nil {
		t.Fatalf("AddMember: %v", err)
	}
	mb, err := g.AddMember("mb", MemberConfig{OnData: recvB.onData})
	if err != nil {
		t.Fatalf("AddMember: %v", err)
	}
	mc, err := g.AddMember("mc", MemberConfig{OnData: recvC.onData})
	if err != nil {
		t.Fatalf("AddMember: %v", err)
	}

	if err := mb.Leave(); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	waitFor(t, "controller to process leave", 5*time.Second, func() bool {
		return g.Controller(0).NumMembers() == 2
	})
	// Remaining members must converge to the post-leave epoch before the
	// next data packet, or they could not decrypt it.
	waitFor(t, "rekey to reach ma and mc", 5*time.Second, func() bool {
		return ma.Epoch() == g.Controller(0).Epoch() && mc.Epoch() == g.Controller(0).Epoch()
	})

	if err := ma.Send([]byte("post-leave")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	waitFor(t, "delivery to mc", 5*time.Second, func() bool { return recvC.has("ma:post-leave") })
	time.Sleep(50 * time.Millisecond)
	if recvB.count() != 0 {
		t.Errorf("departed member received %d post-leave messages (forward secrecy)", recvB.count())
	}
}

func TestLiveRekeyMatchesAnalysis(t *testing.T) {
	// Bridge the protocol and the analysis: after a deterministic member
	// sequence the controller's rekey-entry counter must equal the tree
	// arithmetic. Four sequential joins on an arity-4 tree put m0 at
	// child0 (displaced from the root) and m1..m3 at the other children;
	// m0's leave then changes only the root, encrypted under the three
	// occupied sibling leaves: exactly 3 entries.
	g, err := New(fastTiming(1)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()
	for i := 0; i < 4; i++ {
		if _, err := g.AddMember(fmt.Sprintf("m%d", i), MemberConfig{}); err != nil {
			t.Fatalf("AddMember %d: %v", i, err)
		}
	}
	entriesBefore := g.Controller(0).Stats().Value(area.StatRekeyEntries)
	if err := g.Member("m0").Leave(); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	waitFor(t, "leave rekey", 5*time.Second, func() bool {
		return g.Controller(0).NumMembers() == 3
	})
	if got := g.Controller(0).Stats().Value(area.StatRekeyEntries) - entriesBefore; got != 3 {
		t.Errorf("live leave produced %d rekey entries, analysis predicts 3", got)
	}
}

func TestRC4DataPathInterop(t *testing.T) {
	// §V-E: a hand-held member using the RC4 data path exchanges
	// multicast data with an AES member; the cipher travels per packet.
	g, err := New(fastTiming(1)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()

	var recvPDA, recvPC collector
	pda, err := g.AddMember("pda", MemberConfig{
		DataCipher: wire.CipherRC4,
		OnData:     recvPDA.onData,
	})
	if err != nil {
		t.Fatalf("AddMember pda: %v", err)
	}
	pc, err := g.AddMember("pc", MemberConfig{OnData: recvPC.onData})
	if err != nil {
		t.Fatalf("AddMember pc: %v", err)
	}

	if err := pda.Send([]byte("rc4 stream")); err != nil {
		t.Fatalf("pda Send: %v", err)
	}
	waitFor(t, "AES member decrypts RC4 packet", 5*time.Second, func() bool {
		return recvPC.has("pda:rc4 stream")
	})
	if err := pc.Send([]byte("aes payload")); err != nil {
		t.Fatalf("pc Send: %v", err)
	}
	waitFor(t, "RC4 member decrypts AES packet", 5*time.Second, func() bool {
		return recvPDA.has("pc:aes payload")
	})
}

func TestJoinDeniedBadAuth(t *testing.T) {
	g, err := New(fastTiming(1)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()

	m, err := g.NewMember("intruder", MemberConfig{AuthInfo: "bogus"})
	if err != nil {
		t.Fatalf("NewMember: %v", err)
	}
	if err := m.Join(); !errors.Is(err, member.ErrDenied) {
		t.Errorf("Join with bad auth: err=%v, want ErrDenied", err)
	}
	if g.Controller(0).NumMembers() != 0 {
		t.Error("intruder was admitted")
	}
}

func TestBatchingFlushOnData(t *testing.T) {
	// An hour-long rekey interval: the flush must come from data, not timer.
	g, err := New(append(fastTiming(1), WithBatching(), WithRekeyInterval(time.Hour))...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()

	// Under batching a blocking Join only completes at a flush; join the
	// first member asynchronously and force the flush.
	var recvA collector
	ma, err := g.NewMember("ma", MemberConfig{OnData: recvA.onData})
	if err != nil {
		t.Fatalf("NewMember ma: %v", err)
	}
	maJoin := make(chan error, 1)
	go func() { maJoin <- ma.Join() }()
	waitFor(t, "ma queued", 5*time.Second, func() bool { return g.Controller(0).PendingEvents() == 1 })
	g.Controller(0).FlushBatch()
	if err := <-maJoin; err != nil {
		t.Fatalf("ma join: %v", err)
	}

	// mb joins under batching: admission is deferred.
	joinDone := make(chan error, 1)
	mb, err := g.NewMember("mb", MemberConfig{})
	if err != nil {
		t.Fatalf("NewMember mb: %v", err)
	}
	go func() { joinDone <- mb.Join() }()
	waitFor(t, "mb queued", 5*time.Second, func() bool { return g.Controller(0).PendingEvents() == 1 })
	select {
	case err := <-joinDone:
		t.Fatalf("join completed before flush: %v", err)
	case <-time.After(100 * time.Millisecond):
	}

	// A data packet forces the flush (§III-E) and then delivers.
	if err := ma.Send([]byte("trigger")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := <-joinDone; err != nil {
		t.Fatalf("mb join after flush: %v", err)
	}
	if g.Controller(0).PendingEvents() != 0 {
		t.Error("pending events not flushed by data")
	}
	waitFor(t, "mb receives subsequent data", 5*time.Second, func() bool {
		if err := ma.Send([]byte("after")); err != nil {
			return false
		}
		return mb.Received() > 0
	})
}

func TestBatchingFlushOnTimer(t *testing.T) {
	g, err := New(append(fastTiming(1), WithBatching(), WithRekeyInterval(80*time.Millisecond))...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()

	m, err := g.NewMember("m0", MemberConfig{})
	if err != nil {
		t.Fatalf("NewMember: %v", err)
	}
	// No data traffic at all: the rekey-interval timer must flush the
	// pending admission.
	if err := m.Join(); err != nil {
		t.Fatalf("Join (timer flush): %v", err)
	}
}

func TestMemberEvictionOnSilence(t *testing.T) {
	g, err := New(fastTiming(1)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()

	m, err := g.AddMember("quiet", MemberConfig{})
	if err != nil {
		t.Fatalf("AddMember: %v", err)
	}
	if got := g.Controller(0).NumMembers(); got != 1 {
		t.Fatalf("members = %d", got)
	}
	// Kill the member silently (no LeaveNotice): crash its node.
	g.Net.Crash("quiet")
	m.Close()

	// 5×TActive = 300ms; the controller must evict within a few sweeps.
	waitFor(t, "silent member eviction", 5*time.Second, func() bool {
		return g.Controller(0).NumMembers() == 0
	})
}

func TestTicketRejoinToAnotherArea(t *testing.T) {
	g, err := New(fastTiming(2)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()

	m, err := g.AddMember("roamer", MemberConfig{})
	if err != nil {
		t.Fatalf("AddMember: %v", err)
	}
	firstAC := m.ControllerID()
	var target string
	for _, e := range g.Directory() {
		if e.ID != firstAC {
			target = e.ID
			break
		}
	}

	// Tell the old controller we are leaving, then rejoin the new area
	// with the ticket only — no registration server involved.
	if err := m.Leave(); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	waitFor(t, "old area emptied", 5*time.Second, func() bool {
		for i := 0; i < g.NumAreas(); i++ {
			if ACID(i) == firstAC && g.Controller(i).HasMember("roamer") {
				return false
			}
		}
		return true
	})
	rsJoins := g.RS.Joins()
	if err := m.Rejoin(target); err != nil {
		t.Fatalf("Rejoin: %v", err)
	}
	if m.ControllerID() != target {
		t.Errorf("rejoined to %s, want %s", m.ControllerID(), target)
	}
	if g.RS.Joins() != rsJoins {
		t.Error("rejoin involved the registration server")
	}
}

func TestRejoinDeniedWhileStillMember(t *testing.T) {
	// The §IV-B anti-cohort check: a ticket whose holder is still an
	// active member of its old area must be rejected elsewhere.
	g, err := New(fastTiming(2)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()

	m, err := g.AddMember("cohort", MemberConfig{})
	if err != nil {
		t.Fatalf("AddMember: %v", err)
	}
	firstAC := m.ControllerID()
	var target string
	for _, e := range g.Directory() {
		if e.ID != firstAC {
			target = e.ID
			break
		}
	}
	// Keep the membership alive (member loop sends alives) and attempt a
	// second concurrent membership via rejoin.
	err = m.Rejoin(target)
	if !errors.Is(err, member.ErrDenied) {
		t.Errorf("concurrent rejoin: err=%v, want ErrDenied", err)
	}
}

func TestAutoRejoinAfterPartition(t *testing.T) {
	g, err := New(append(fastTiming(2), WithPolicy(area.AdmitOnPartition))...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()

	m, err := g.AddMember("mobile", MemberConfig{AutoRejoin: true})
	if err != nil {
		t.Fatalf("AddMember: %v", err)
	}
	firstAC := m.ControllerID()

	// Partition the member away from its controller only; it can still
	// reach the other controller.
	g.Net.SetPartitions([]string{firstAC})
	waitFor(t, "member to detect disconnect and rejoin", 10*time.Second, func() bool {
		return m.Connected() && m.ControllerID() != firstAC
	})
}

func TestControllerFailover(t *testing.T) {
	g, err := New(append(fastTiming(1), WithBackups())...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()

	var recvB collector
	ma, err := g.AddMember("ma", MemberConfig{})
	if err != nil {
		t.Fatalf("AddMember: %v", err)
	}
	mb, err := g.AddMember("mb", MemberConfig{OnData: recvB.onData})
	if err != nil {
		t.Fatalf("AddMember: %v", err)
	}
	waitFor(t, "replica to absorb both members", 5*time.Second, func() bool {
		return g.Backup(0).StateMembers() == 2
	})

	// Crash the primary; the backup must take over and members must
	// keep exchanging data through it.
	g.Net.Crash(ACAddr(0))
	waitFor(t, "backup promotion", 10*time.Second, func() bool {
		_, err := g.Backup(0).Promoted()
		return err == nil
	})
	waitFor(t, "members to switch to the backup", 10*time.Second, func() bool {
		return ma.ControllerID() != ACID(0) && mb.ControllerID() != ACID(0)
	})
	waitFor(t, "data flows through the backup", 10*time.Second, func() bool {
		if err := ma.Send([]byte("via backup")); err != nil {
			return false
		}
		return recvB.has("ma:via backup")
	})
}

func TestReparentAfterParentFailure(t *testing.T) {
	g, err := New(fastTiming(3)...) // ac-0 root; ac-1, ac-2 its children
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()

	waitFor(t, "initial parenting", 5*time.Second, func() bool {
		return g.Controller(1).ParentID() == ACID(0) && g.Controller(2).ParentID() == ACID(0)
	})

	// Kill the root; ac-1 and ac-2 must adopt new parents from their
	// preferred lists (each other).
	g.Net.Crash(ACAddr(0))
	waitFor(t, "re-parenting away from the dead root", 10*time.Second, func() bool {
		p1, p2 := g.Controller(1).ParentID(), g.Controller(2).ParentID()
		return p1 != ACID(0) && p2 != ACID(0) && (p1 != "" || p2 != "")
	})
}

func TestEpochGapRecovery(t *testing.T) {
	g, err := New(fastTiming(1)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()
	// Pre-generate keys so the partition below lasts only as long as the
	// join handshakes: ma must stay under the 5×T_idle silence threshold
	// (it has no AutoRejoin) or it would detach for good.
	if err := g.WarmMemberKeys(6); err != nil {
		t.Fatalf("WarmMemberKeys: %v", err)
	}

	ma, err := g.AddMember("ma", MemberConfig{})
	if err != nil {
		t.Fatalf("AddMember: %v", err)
	}
	if _, err := g.AddMember("mb", MemberConfig{}); err != nil {
		t.Fatalf("AddMember: %v", err)
	}

	// Drop every frame to ma while churn advances the epoch, then heal:
	// ma must detect the gap and recover via a path request.
	g.Net.SetPartitions([]string{"ma"})
	for i := 0; i < 3; i++ {
		if _, err := g.AddMember(fmt.Sprintf("extra%d", i), MemberConfig{}); err != nil {
			t.Fatalf("AddMember extra%d: %v", i, err)
		}
	}
	g.Net.Heal()
	waitFor(t, "ma to converge after gap", 10*time.Second, func() bool {
		return ma.Connected() && ma.Epoch() == g.Controller(0).Epoch()
	})
}

func TestManyMembersChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("churn test in -short mode")
	}
	g, err := New(fastTiming(2)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer g.Close()
	if err := g.WarmMemberKeys(16); err != nil {
		t.Fatalf("WarmMemberKeys: %v", err)
	}

	var members []*member.Member
	for i := 0; i < 16; i++ {
		m, err := g.AddMember(fmt.Sprintf("m%d", i), MemberConfig{})
		if err != nil {
			t.Fatalf("AddMember %d: %v", i, err)
		}
		members = append(members, m)
	}
	for i := 0; i < 16; i += 3 {
		if err := members[i].Leave(); err != nil {
			t.Fatalf("Leave %d: %v", i, err)
		}
	}
	total := func() int {
		return g.Controller(0).NumMembers() + g.Controller(1).NumMembers() - countChildACs(g)
	}
	waitFor(t, "membership to settle at 10", 10*time.Second, func() bool { return total() == 10 })

	// Everyone still attached must share their controller's epoch.
	waitFor(t, "epochs to converge", 10*time.Second, func() bool {
		for _, m := range members {
			if !m.Connected() {
				continue
			}
			var ctl *area.Controller
			for i := 0; i < g.NumAreas(); i++ {
				if ACID(i) == m.ControllerID() {
					ctl = g.Controller(i)
				}
			}
			if ctl == nil || m.Epoch() != ctl.Epoch() {
				return false
			}
		}
		return true
	})
}

// countChildACs counts controller-as-member entries, which inflate
// NumMembers in multi-area groups.
func countChildACs(g *Group) int {
	n := 0
	for i := 0; i < g.NumAreas(); i++ {
		for j := 0; j < g.NumAreas(); j++ {
			if g.Controller(i).HasMember(ACID(j)) {
				n++
			}
		}
	}
	return n
}
