// Package intern canonicalizes frequently repeated values — member IDs,
// addresses, public-key DER blobs — so that the many maps and structs
// holding them share one backing allocation instead of one copy per
// holder. Every wire decode allocates a fresh string for each ID it
// parses; an area controller tracking m members references each ID from
// its member table, sequence table, session maps, and key tree, and at
// mega-sim scale (10^5 members) those duplicate backings dominate
// controller storage. Interning collapses them to one canonical copy.
//
// Interners only ever grow. That is the right trade for protocol
// principals: the ID universe of a run is bounded by the principals the
// scenario creates, and eviction bookkeeping would cost more than the
// stale entries.
package intern

import "sync"

// shardCount spreads lock contention across independent map shards;
// power of two so the hash folds with a mask.
const shardCount = 16

// Strings is a concurrency-safe string interner. The zero value is not
// usable; construct with NewStrings.
type Strings struct {
	shards [shardCount]stringShard
}

type stringShard struct {
	mu sync.RWMutex
	m  map[string]string
}

// NewStrings returns an empty interner.
func NewStrings() *Strings {
	s := &Strings{}
	for i := range s.shards {
		s.shards[i].m = make(map[string]string)
	}
	return s
}

// Get returns the canonical copy of v, storing v itself on first sight.
func (s *Strings) Get(v string) string {
	sh := &s.shards[fnv32(v)&(shardCount-1)]
	sh.mu.RLock()
	c, ok := sh.m[v]
	sh.mu.RUnlock()
	if ok {
		return c
	}
	sh.mu.Lock()
	if c, ok = sh.m[v]; !ok {
		sh.m[v] = v
		c = v
	}
	sh.mu.Unlock()
	return c
}

// Len reports how many distinct strings are interned.
func (s *Strings) Len() int {
	total := 0
	for i := range s.shards {
		s.shards[i].mu.RLock()
		total += len(s.shards[i].m)
		s.shards[i].mu.RUnlock()
	}
	return total
}

// Bytes canonicalizes byte slices by content. Callers MUST treat returned
// slices as immutable — they are shared across every holder. The zero
// value is not usable; construct with NewBytes.
type Bytes struct {
	shards [shardCount]bytesShard
}

type bytesShard struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewBytes returns an empty byte-slice interner.
func NewBytes() *Bytes {
	b := &Bytes{}
	for i := range b.shards {
		b.shards[i].m = make(map[string][]byte)
	}
	return b
}

// Get returns the canonical slice with v's content. The first caller's
// slice becomes canonical; it must not be mutated afterwards.
func (b *Bytes) Get(v []byte) []byte {
	sh := &b.shards[fnv32b(v)&(shardCount-1)]
	sh.mu.RLock()
	c, ok := sh.m[string(v)] // no alloc: map lookup special-cases string(b)
	sh.mu.RUnlock()
	if ok {
		return c
	}
	sh.mu.Lock()
	if c, ok = sh.m[string(v)]; !ok {
		sh.m[string(v)] = v
		c = v
	}
	sh.mu.Unlock()
	return c
}

// Len reports how many distinct slices are interned.
func (b *Bytes) Len() int {
	total := 0
	for i := range b.shards {
		b.shards[i].mu.RLock()
		total += len(b.shards[i].m)
		b.shards[i].mu.RUnlock()
	}
	return total
}

// Process-wide default interners. Controllers, the registration server,
// and replicas all see the same principal IDs and public-key blobs, so a
// shared table dedupes across components, not just within one.
var (
	defaultStrings = NewStrings()
	defaultBytes   = NewBytes()
)

// ID canonicalizes a principal or area identifier through the shared
// process-wide table.
func ID(v string) string { return defaultStrings.Get(v) }

// DER canonicalizes an encoded public key (or similar immutable blob)
// through the shared process-wide table. The result must not be mutated.
func DER(v []byte) []byte {
	if len(v) == 0 {
		return v
	}
	return defaultBytes.Get(v)
}

// fnv32 is FNV-1a over a string; inlined here so the hot path needs no
// hash.Hash allocation.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func fnv32b(b []byte) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(b); i++ {
		h ^= uint32(b[i])
		h *= 16777619
	}
	return h
}
