package intern

import (
	"fmt"
	"sync"
	"testing"
	"unsafe"
)

func TestStringsCanonical(t *testing.T) {
	s := NewStrings()
	a := s.Get("member-42")
	b := s.Get("mem" + "ber-42") // distinct backing, same content
	if a != b {
		t.Fatal("contents differ")
	}
	if unsafe.StringData(a) != unsafe.StringData(b) {
		t.Error("interner returned distinct backings for equal strings")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestStringsConcurrent(t *testing.T) {
	s := NewStrings()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				v := s.Get(fmt.Sprintf("id-%d", i%100))
				if v == "" {
					t.Error("empty canonical string")
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.Len() != 100 {
		t.Errorf("Len = %d, want 100", s.Len())
	}
}

func TestBytesCanonical(t *testing.T) {
	b := NewBytes()
	first := []byte{1, 2, 3}
	second := []byte{1, 2, 3}
	ca := b.Get(first)
	cb := b.Get(second)
	if &ca[0] != &cb[0] {
		t.Error("interner returned distinct backings for equal slices")
	}
	if &ca[0] != &first[0] {
		t.Error("first-seen slice did not become canonical")
	}
	if b.Len() != 1 {
		t.Errorf("Len = %d, want 1", b.Len())
	}
}
