package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"mykil/internal/clock"
)

// Protocol identifies which paper flow a trace event belongs to.
type Protocol string

const (
	// ProtoJoin is the 7-step registration-server join (§III-B).
	ProtoJoin Protocol = "join"
	// ProtoRejoin is the 6-step ticket rejoin, including the anti-cohort
	// verification round 4-5 (§III-D).
	ProtoRejoin Protocol = "rejoin"
	// ProtoRekey covers batch and freshness rekeys (§III-E).
	ProtoRekey Protocol = "rekey"
	// ProtoReseal covers Iolus data re-encryption at area borders (§III-C).
	ProtoReseal Protocol = "reseal"
	// ProtoAlive covers T_idle/T_active alive messages and silence
	// eviction (§IV-A).
	ProtoAlive Protocol = "alive"
	// ProtoReparent covers AC tree re-parenting after failures (§IV-C).
	ProtoReparent Protocol = "reparent"
	// ProtoRecovery covers journal replay on restart.
	ProtoRecovery Protocol = "recovery"
	// ProtoFailover covers backup-replica promotion (§IV-B).
	ProtoFailover Protocol = "failover"
	// ProtoElection covers quorum leader election among an area's
	// replica set, including segment catch-up pulls.
	ProtoElection Protocol = "election"
	// ProtoSplit covers dynamic area split/merge topology changes.
	ProtoSplit Protocol = "split"
)

// Attr is one key/value annotation on an event. Values are plain
// strings by construction: the typed constructors below accept only
// identifiers, integers, and durations, never key material. The fields
// are K and V (not Key) deliberately: keyleak's name heuristic treats a
// bytes-like .Key as key material, and these never are.
type Attr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// String builds a string-valued attribute (IDs, addresses, epochs as
// text — never key bytes; mykil-vet's obsdiscipline check enforces it).
func String(key, value string) Attr { return Attr{K: key, V: value} }

// Int builds an integer-valued attribute.
func Int(key string, v int64) Attr { return Attr{K: key, V: strconv.FormatInt(v, 10)} }

// Uint builds an unsigned-integer attribute (epochs, LSNs).
func Uint(key string, v uint64) Attr { return Attr{K: key, V: strconv.FormatUint(v, 10)} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr { return Attr{K: key, V: strconv.FormatBool(v)} }

// Dur builds a duration-valued attribute.
func Dur(key string, d time.Duration) Attr { return Attr{K: key, V: d.String()} }

// Event is one structured protocol event. Step is 1-based within a
// handshake (join 1..7, rejoin 1..6) and zero for non-handshake events.
type Event struct {
	Time    time.Time `json:"t"`
	Node    string    `json:"node"`
	Proto   Protocol  `json:"proto"`
	Subject string    `json:"subject,omitempty"`
	Step    int       `json:"step,omitempty"`
	Name    string    `json:"name"`
	Attrs   []Attr    `json:"attrs,omitempty"`
}

func (e Event) String() string {
	s := fmt.Sprintf("%s %s %s", e.Node, e.Proto, e.Name)
	if e.Step != 0 {
		s = fmt.Sprintf("%s step=%d", s, e.Step)
	}
	if e.Subject != "" {
		s = fmt.Sprintf("%s subject=%s", s, e.Subject)
	}
	for _, a := range e.Attrs {
		s = fmt.Sprintf("%s %s=%s", s, a.K, a.V)
	}
	return s
}

// Sink receives events. Implementations must be safe for concurrent
// Emit calls: node loops and data-plane workers share one sink.
type Sink interface {
	Emit(Event)
}

// Ring is an in-memory sink keeping the most recent events, for tests.
type Ring struct {
	mu     sync.Mutex
	buf    []Event
	start  int
	filled bool
}

// NewRing returns a ring sink with the given capacity (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Emit appends the event, evicting the oldest once full.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.filled && len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.filled = true
	r.buf[r.start] = e
	r.start = (r.start + 1) % len(r.buf)
}

// Events returns the buffered events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.start:]...)
	out = append(out, r.buf[:r.start]...)
	return out
}

// Filter returns buffered events matching the protocol and, when
// subject is non-empty, the subject — oldest first.
func (r *Ring) Filter(proto Protocol, subject string) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Proto == proto && (subject == "" || e.Subject == subject) {
			out = append(out, e)
		}
	}
	return out
}

// Len returns the number of buffered events.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// JSONL writes one JSON object per event per line — the mykilnet trace
// file format. Encoding errors are sticky and reported by Err.
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONL returns a sink writing JSON lines to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Emit encodes the event as one JSON line.
func (j *JSONL) Emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(e)
}

// Err returns the first encoding error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// MultiSink fans one event out to several sinks.
type MultiSink []Sink

// Emit forwards the event to every non-nil sink.
func (m MultiSink) Emit(e Event) {
	for _, s := range m {
		if s != nil {
			s.Emit(e)
		}
	}
}

// Tracer stamps events for one node and forwards them to a sink. A nil
// *Tracer is a no-op, so instrumented code never branches on whether
// observability is enabled. Timestamps come from the injected clock,
// never from time.Now (clockdiscipline + obsdiscipline enforced).
type Tracer struct {
	node string
	clk  clock.Clock
	sink Sink
}

// NewTracer binds a node identity and clock to a sink. A nil sink
// yields a nil tracer (every method no-ops).
func NewTracer(node string, clk clock.Clock, sink Sink) *Tracer {
	if sink == nil {
		return nil
	}
	if clk == nil {
		clk = clock.Real{}
	}
	return &Tracer{node: node, clk: clk, sink: sink}
}

// Step emits one numbered handshake step for the given subject (the
// member or controller the handshake is about).
func (t *Tracer) Step(proto Protocol, subject string, step int, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.sink.Emit(Event{
		Time:    t.clk.Now(),
		Node:    t.node,
		Proto:   proto,
		Subject: subject,
		Step:    step,
		Name:    name,
		Attrs:   attrs,
	})
}

// Event emits an un-numbered protocol event (rekeys, alive rounds,
// reseals, recovery).
func (t *Tracer) Event(proto Protocol, subject, name string, attrs ...Attr) {
	t.Step(proto, subject, 0, name, attrs...)
}
