package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"mykil/internal/clock"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.frames", "frames handled")
	c.Add(3)
	c.Inc()
	c.Add(-5) // ignored: counters are monotonic
	if got := c.Value(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	if got := r.Value("test.frames"); got != 4 {
		t.Errorf("registry value = %d, want 4", got)
	}
	g := r.Gauge("test.depth", "queue depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}

	// Re-registering the same name+kind returns the same handle.
	if r.Counter("test.frames", "frames handled") != c {
		t.Error("re-registration returned a different counter")
	}

	// Nil handles are safe.
	var nc *Counter
	nc.Add(1)
	nc.Inc()
	if nc.Value() != 0 {
		t.Error("nil counter has a value")
	}
	var ng *Gauge
	ng.Set(1)
	ng.Add(1)
	if ng.Value() != 0 {
		t.Error("nil gauge has a value")
	}
}

func TestUnknownNamePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("known", "")
	defer func() {
		if recover() == nil {
			t.Error("Value on unknown name did not panic")
		}
	}()
	r.Value("knwon") // typo must fail loudly
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual", "")
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("dual", "")
}

func TestSnapshotStringNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.two", "").Add(2)
	r.Counter("a.one", "").Inc()
	r.Histogram("h.lat", "", nil).Observe(0.01)
	if got, want := r.String(), "a.one=1 b.two=2 h.lat=1"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	names := r.Names()
	if len(names) != 3 || names[0] != "a.one" || names[2] != "h.lat" {
		t.Errorf("Names() = %v", names)
	}
	snap := r.Snapshot()
	if snap["b.two"] != 2 || snap["h.lat"] != 1 {
		t.Errorf("Snapshot() = %v", snap)
	}
	r.Reset()
	if r.Value("a.one") != 0 {
		t.Error("Reset did not zero counter")
	}
	if r.Value("h.lat") != 1 {
		t.Error("Reset touched histogram observations")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 55.6 {
		t.Errorf("sum = %g, want 55.6", got)
	}
	if got := h.Mean(); got < 11.11 || got > 11.13 {
		t.Errorf("mean = %g, want ~11.12", got)
	}
	// p40 falls into the first bucket (2 of 5 observations <= 0.1).
	if q := h.Quantile(0.4); q <= 0 || q > 0.1 {
		t.Errorf("p40 = %g, want in (0, 0.1]", q)
	}
	// p99 lands in the overflow bucket and reports the top bound.
	if q := h.Quantile(0.99); q != 10 {
		t.Errorf("p99 = %g, want 10", q)
	}
	if h.Quantile(0) != 0 || h.Quantile(1.5) != 0 {
		t.Error("out-of-range quantile not zero")
	}
	var nh *Histogram
	nh.Observe(1)
	if nh.Count() != 0 || nh.Mean() != 0 || nh.Quantile(0.5) != 0 {
		t.Error("nil histogram not inert")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Errorf("count = %d, want 8000", got)
	}
	if got := h.Sum(); got < 7.99 || got > 8.01 {
		t.Errorf("sum = %g, want ~8", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry(L("node", "ac-0"))
	r.Counter("sim.dropped.rate", "Messages dropped by loss injection.").Add(3)
	r.Histogram(MetricJoinSeconds, HelpJoinSeconds, []float64{0.1, 1}).Observe(0.05)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP sim_dropped_rate Messages dropped by loss injection.",
		"# TYPE sim_dropped_rate counter",
		`sim_dropped_rate{node="ac-0"} 3`,
		"# TYPE mykil_member_join_seconds histogram",
		`mykil_member_join_seconds_bucket{node="ac-0",le="0.1"} 1`,
		`mykil_member_join_seconds_bucket{node="ac-0",le="+Inf"} 1`,
		`mykil_member_join_seconds_sum{node="ac-0"} 0.05`,
		`mykil_member_join_seconds_count{node="ac-0"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteAllMerges(t *testing.T) {
	a := NewRegistry(L("node", "ac-0"))
	b := NewRegistry(L("node", "ac-1"))
	a.Counter("ac.joins", "Members admitted.").Add(2)
	b.Counter("ac.joins", "Members admitted.").Add(5)
	var buf bytes.Buffer
	if err := WriteAll(&buf, a, nil, b); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "# TYPE ac_joins counter") != 1 {
		t.Errorf("TYPE header not deduplicated:\n%s", out)
	}
	if !strings.Contains(out, `ac_joins{node="ac-0"} 2`) || !strings.Contains(out, `ac_joins{node="ac-1"} 5`) {
		t.Errorf("missing labeled series:\n%s", out)
	}
}

func TestRingSink(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Emit(Event{Step: i, Proto: ProtoJoin, Subject: "m1"})
	}
	evs := r.Events()
	if len(evs) != 3 || evs[0].Step != 3 || evs[2].Step != 5 {
		t.Errorf("ring kept %v", evs)
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d", r.Len())
	}
	r.Emit(Event{Proto: ProtoRejoin, Subject: "m1", Step: 1})
	got := r.Filter(ProtoRejoin, "m1")
	if len(got) != 1 || got[0].Step != 1 {
		t.Errorf("Filter = %v", got)
	}
	if len(r.Filter(ProtoJoin, "m2")) != 0 {
		t.Error("Filter matched wrong subject")
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Emit(Event{Node: "rs", Proto: ProtoJoin, Subject: "m1", Step: 2, Name: "JoinChallenge",
		Attrs: []Attr{String("ac", "ac-0"), Uint("epoch", 3)}})
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	for _, want := range []string{`"node":"rs"`, `"proto":"join"`, `"step":2`, `"subject":"m1"`, `{"k":"epoch","v":"3"}`} {
		if !strings.Contains(line, want) {
			t.Errorf("JSONL line missing %q: %s", want, line)
		}
	}
	if strings.Contains(line, "\n\n") || strings.Count(buf.String(), "\n") != 1 {
		t.Errorf("not one line per event: %q", buf.String())
	}
}

func TestTracer(t *testing.T) {
	if tr := NewTracer("n", clock.Real{}, nil); tr != nil {
		t.Error("nil sink should yield nil tracer")
	}
	var nilTracer *Tracer
	nilTracer.Step(ProtoJoin, "m1", 1, "JoinRequest") // must not panic
	nilTracer.Event(ProtoRekey, "area", "rekey")

	fake := clock.NewFake(time.Unix(100, 0))
	ring := NewRing(8)
	tr := NewTracer("ac-0", fake, ring)
	tr.Step(ProtoJoin, "m1", 7, "JoinWelcome", Uint("epoch", 2))
	fake.Advance(time.Second)
	tr.Event(ProtoAlive, "area-0", "ACAlive")
	evs := ring.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].Node != "ac-0" || evs[0].Step != 7 || !evs[0].Time.Equal(time.Unix(100, 0)) {
		t.Errorf("event 0 = %+v", evs[0])
	}
	if !evs[1].Time.Equal(time.Unix(101, 0)) {
		t.Errorf("event 1 time = %v, want clock-advanced", evs[1].Time)
	}
	if s := evs[0].String(); !strings.Contains(s, "step=7") || !strings.Contains(s, "epoch=2") {
		t.Errorf("String() = %q", s)
	}

	multi := MultiSink{ring, nil, NewRing(2)}
	multi.Emit(Event{Proto: ProtoJoin})
	if ring.Len() != 3 {
		t.Error("MultiSink did not forward")
	}
}
