// Package obs is the observability layer: a typed metrics registry
// (counters, gauges, fixed-bucket histograms with Prometheus-style text
// exposition) and a structured protocol-event tracer whose timestamps
// come exclusively from the injected clock.Clock.
//
// Metric names are registered up front with a help string, so a
// misspelled name fails loudly at construction or lookup instead of
// silently creating a fresh series the way the (since removed)
// string-keyed stats.Registry did. All handles are safe for concurrent
// use and
// nil-receiver safe, so instrumented code never has to guard against a
// missing registry.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is a constant key=value pair attached to every series a
// registry exposes (e.g. node="ac-0").
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// DefLatencyBuckets are the default histogram upper bounds (seconds)
// for protocol-latency histograms. Fixed at construction: no runtime
// bucket allocation, no wall-clock reads.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// metric is the registry's view of one registered series.
type metric struct {
	name string
	help string
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds typed, pre-registered metrics. The zero value is not
// usable; construct with NewRegistry.
type Registry struct {
	mu      sync.Mutex
	labels  []Label
	metrics map[string]*metric
}

// NewRegistry returns an empty registry whose series all carry the
// given constant labels at exposition time.
func NewRegistry(labels ...Label) *Registry {
	return &Registry{labels: labels, metrics: make(map[string]*metric)}
}

// Labels returns the registry's constant labels.
func (r *Registry) Labels() []Label { return r.labels }

func (r *Registry) register(name, help string, kind metricKind) *metric {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	switch kind {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	}
	r.metrics[name] = m
	return m
}

// Counter registers (or returns the existing) counter under name.
// Registering the same name with a different kind panics.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter).c
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge).g
}

// Histogram registers (or returns the existing) histogram under name
// with the given bucket upper bounds (seconds, ascending). A second
// registration must not change the buckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefLatencyBuckets
	}
	m := r.register(name, help, kindHistogram)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.h == nil {
		m.h = NewHistogram(buckets)
		return m.h
	}
	if len(m.h.bounds) != len(buckets) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different buckets", name))
	}
	return m.h
}

// lookup panics on an unknown name: the whole point of pre-registration
// is that a typo fails fast instead of reading a phantom zero.
func (r *Registry) lookup(name string) *metric {
	r.mu.Lock()
	m, ok := r.metrics[name]
	r.mu.Unlock()
	if !ok {
		panic(fmt.Sprintf("obs: unknown metric %q", name))
	}
	return m
}

// Value returns the current value of the named counter or gauge, or the
// observation count of the named histogram. Unknown names panic.
func (r *Registry) Value(name string) int64 {
	switch m := r.lookup(name); m.kind {
	case kindCounter:
		return m.c.Value()
	case kindGauge:
		return m.g.Value()
	default:
		return m.h.Count()
	}
}

// GetHistogram returns the previously registered histogram under name,
// panicking if the name is unknown or not a histogram.
func (r *Registry) GetHistogram(name string) *Histogram {
	m := r.lookup(name)
	if m.kind != kindHistogram {
		panic(fmt.Sprintf("obs: metric %q is a %s, not a histogram", name, m.kind))
	}
	return m.h
}

// Names returns all registered metric names in sorted order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns the current value of every counter and gauge, plus
// each histogram's observation count.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.metrics))
	for name := range r.metrics {
		m := r.metrics[name]
		switch m.kind {
		case kindCounter:
			out[name] = m.c.Value()
		case kindGauge:
			out[name] = m.g.Value()
		default:
			out[name] = m.h.Count()
		}
	}
	return out
}

// Reset zeroes every counter and gauge. Histograms are left alone:
// their buckets are cumulative by design.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.metrics {
		switch m.kind {
		case kindCounter:
			m.c.v.Store(0)
		case kindGauge:
			m.g.v.Store(0)
		}
	}
}

// String renders "name=value" pairs sorted by name — the flat
// exposition used in logs and tests.
func (r *Registry) String() string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", name, snap[name]))
	}
	return strings.Join(parts, " ")
}

// Counter is a monotonically non-decreasing metric. Negative deltas are
// ignored. A nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increases the counter by delta (ignored if delta < 0).
func (c *Counter) Add(delta int64) {
	if c == nil || delta < 0 {
		return
	}
	c.v.Add(delta)
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. A nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge value (zero for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets chosen at
// construction. Observe is lock-free and safe from data-plane worker
// goroutines. A nil *Histogram is a no-op.
type Histogram struct {
	bounds  []float64      // ascending upper bounds
	counts  []atomic.Int64 // len(bounds)+1; last bucket is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// NewHistogram returns a histogram with the given ascending bucket
// upper bounds. An empty slice falls back to DefLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram buckets must be strictly ascending")
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Mean returns Sum/Count, or zero with no observations.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation within the bucket that holds the q-th observation. The
// overflow bucket reports its lower bound.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.Count()
	if h == nil || n == 0 || q <= 0 || q > 1 {
		return 0
	}
	rank := q * float64(n)
	var seen float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if seen+c < rank {
			seen += c
			continue
		}
		if i == len(h.bounds) { // +Inf bucket: best effort
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		if c == 0 {
			return h.bounds[i]
		}
		return lo + (h.bounds[i]-lo)*(rank-seen)/c
	}
	return h.bounds[len(h.bounds)-1]
}

// sanitizeName maps internal dotted metric names ("sim.dropped.rate")
// to the Prometheus charset ([a-zA-Z0-9_:]).
func sanitizeName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func labelString(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, 0, len(all))
	for _, l := range all {
		parts = append(parts, fmt.Sprintf("%s=%q", sanitizeName(l.Name), l.Value))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus writes this registry's series in the Prometheus text
// exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WriteAll(w, r)
}

// WriteAll merges several registries into one Prometheus text
// exposition: series sharing a metric name get one HELP/TYPE header and
// one sample per registry, distinguished by the registries' constant
// labels.
func WriteAll(w io.Writer, regs ...*Registry) error {
	type series struct {
		m      *metric
		labels []Label
	}
	byName := make(map[string][]series)
	var names []string
	for _, r := range regs {
		if r == nil {
			continue
		}
		r.mu.Lock()
		for name, m := range r.metrics {
			if _, ok := byName[name]; !ok {
				names = append(names, name)
			}
			byName[name] = append(byName[name], series{m: m, labels: r.labels})
		}
		r.mu.Unlock()
	}
	sort.Strings(names)
	for _, name := range names {
		ss := byName[name]
		pn := sanitizeName(name)
		if ss[0].m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", pn, ss[0].m.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", pn, ss[0].m.kind); err != nil {
			return err
		}
		for _, s := range ss {
			var err error
			switch s.m.kind {
			case kindCounter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", pn, labelString(s.labels), s.m.c.Value())
			case kindGauge:
				_, err = fmt.Fprintf(w, "%s%s %d\n", pn, labelString(s.labels), s.m.g.Value())
			case kindHistogram:
				err = writeHistogram(w, pn, s.labels, s.m.h)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, pn string, labels []Label, h *Histogram) error {
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		le := L("le", formatFloat(b))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", pn, labelString(labels, le), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", pn, labelString(labels, L("le", "+Inf")), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", pn, labelString(labels), h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", pn, labelString(labels), h.Count())
	return err
}

func formatFloat(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", f), "0"), ".")
}

// Shared metric names registered by the member layer and read by the
// bench and daemon layers.
const (
	MetricJoinSeconds   = "mykil_member_join_seconds"
	MetricRejoinSeconds = "mykil_member_rejoin_seconds"
	MetricRekeySeconds  = "mykil_ac_rekey_seconds"
	MetricElections     = "mykil_elections_total"
	MetricAreaSplits    = "mykil_area_splits_total"
	MetricReplBytes     = "mykil_replication_bytes_total"

	HelpJoinSeconds   = "Latency of the full 7-step member join handshake."
	HelpRejoinSeconds = "Latency of the 6-step ticket rejoin handshake."
	HelpRekeySeconds  = "Duration of one area batch rekey (tree recompute + seal)."
	HelpElections     = "Quorum leader elections won across all replica sets."
	HelpAreaSplits    = "Dynamic area topology changes (splits and merges)."
	HelpReplBytes     = "Payload bytes shipped to replicas (snapshot or segment sync)."
)
