package clock

import (
	"sync"
	"testing"
	"time"
)

// TestFakeAdvanceOrderingContract pins the contract the mega-sim scheduler
// relies on: Advance fires every due waiter synchronously, in timestamp
// order, and each firing carries the waiter's own deadline (the clock
// steps through the timeline rather than jumping straight to the target).
func TestFakeAdvanceOrderingContract(t *testing.T) {
	f := NewFake(epoch)

	// Register out of deadline order on purpose.
	at30 := f.After(30 * time.Second)
	tick7 := f.NewTicker(7 * time.Second)
	defer tick7.Stop()
	at5 := f.After(5 * time.Second)

	f.Advance(30 * time.Second)

	if got := <-at5; !got.Equal(epoch.Add(5 * time.Second)) {
		t.Errorf("After(5s) stamped %v, want %v", got, epoch.Add(5*time.Second))
	}
	if got := <-at30; !got.Equal(epoch.Add(30 * time.Second)) {
		t.Errorf("After(30s) stamped %v, want %v", got, epoch.Add(30*time.Second))
	}
	// The ticker's channel holds exactly one tick (capacity one, later
	// firings dropped) and it is the first one: ticks are offered in
	// timeline order, not retroactively from the target time.
	if got := <-tick7.C(); !got.Equal(epoch.Add(7 * time.Second)) {
		t.Errorf("first tick stamped %v, want %v", got, epoch.Add(7*time.Second))
	}
	if f.PendingWaiters() != 1 { // only the ticker remains armed
		t.Errorf("PendingWaiters = %d, want 1", f.PendingWaiters())
	}
}

// TestFakeAdvanceTieBreakByCreation pins the tie rule: waiters sharing a
// deadline fire oldest first. Observed through a ticker and a one-shot
// racing for the same instant where the one-shot was created first: both
// must be stamped with that instant regardless, and both must fire.
func TestFakeAdvanceTieBreakByCreation(t *testing.T) {
	f := NewFake(epoch)
	a := f.After(10 * time.Second)
	tk := f.NewTicker(10 * time.Second)
	defer tk.Stop()
	f.Advance(10 * time.Second)
	want := epoch.Add(10 * time.Second)
	if got := <-a; !got.Equal(want) {
		t.Errorf("After stamped %v, want %v", got, want)
	}
	if got := <-tk.C(); !got.Equal(want) {
		t.Errorf("ticker stamped %v, want %v", got, want)
	}
}

// TestFakeConcurrentAdvanceVsTickers hammers Advance from one goroutine
// while others create, consume, and stop tickers — the exact interleaving
// a mega-sim run produces with 100k member alive loops parked on one Fake.
// Run under -race; it also asserts per-ticker timestamps stay strictly
// increasing and that Stop retires every waiter.
func TestFakeConcurrentAdvanceVsTickers(t *testing.T) {
	f := NewFake(epoch)
	const workers = 8
	const perWorker = 50

	stop := make(chan struct{})
	var advWG sync.WaitGroup
	advWG.Add(1)
	go func() {
		defer advWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				f.Advance(time.Second)
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tk := f.NewTicker(time.Duration(1+(w+i)%5) * time.Second)
				var last time.Time
				for ticks := 0; ticks < 3; {
					select {
					case ts := <-tk.C():
						if !last.IsZero() && !ts.After(last) {
							t.Errorf("worker %d: tick %v not after %v", w, ts, last)
							tk.Stop()
							return
						}
						last = ts
						ticks++
					case <-time.After(5 * time.Second):
						t.Errorf("worker %d: ticker starved", w)
						tk.Stop()
						return
					}
				}
				tk.Stop()
				tk.Stop() // double Stop must be safe
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	advWG.Wait()

	if got := f.PendingWaiters(); got != 0 {
		t.Errorf("PendingWaiters = %d after all tickers stopped", got)
	}
}

// TestFakeManyWaitersAdvance guards the heap rewrite's scaling: driving
// 50k concurrent tickers through several periods must stay well under the
// test timeout (the old flat-slice scan was quadratic and took minutes).
func TestFakeManyWaitersAdvance(t *testing.T) {
	f := NewFake(epoch)
	const n = 50_000
	tickers := make([]Ticker, n)
	for i := range tickers {
		tickers[i] = f.NewTicker(time.Duration(1+i%10) * time.Second)
	}
	f.Advance(30 * time.Second)
	for _, tk := range tickers {
		tk.Stop()
	}
	f.Advance(time.Minute) // drains the stopped waiters lazily
	if got := f.PendingWaiters(); got != 0 {
		t.Errorf("PendingWaiters = %d, want 0", got)
	}
}
