// Package clock abstracts time so that protocol components that depend on
// timers — alive-message emission, disconnection detection, heartbeat
// monitoring, batch-flush intervals — can be driven deterministically in
// tests with a fake clock and by the wall clock in production.
package clock

import (
	"sync"
	"time"
)

// Clock provides the time operations the protocol stack needs.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that receives the then-current time once d
	// has elapsed.
	After(d time.Duration) <-chan time.Time
	// NewTicker returns a ticker firing every d. d must be positive.
	NewTicker(d time.Duration) Ticker
	// Sleep blocks for d.
	Sleep(d time.Duration)
}

// Ticker is the subset of time.Ticker the stack uses.
type Ticker interface {
	// C returns the delivery channel.
	C() <-chan time.Time
	// Stop shuts the ticker down. It does not close the channel.
	Stop()
}

// Real is a Clock backed by the runtime wall clock.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// NewTicker implements Clock.
func (Real) NewTicker(d time.Duration) Ticker { return realTicker{time.NewTicker(d)} }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

type realTicker struct{ t *time.Ticker }

func (rt realTicker) C() <-chan time.Time { return rt.t.C }
func (rt realTicker) Stop()               { rt.t.Stop() }

// Fake is a manually advanced Clock for deterministic tests. Timers fire
// synchronously inside Advance, in timestamp order. The zero value is not
// usable; construct with NewFake.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*fakeWaiter
	nextID  int64
}

var _ Clock = (*Fake)(nil)

type fakeWaiter struct {
	id       int64
	deadline time.Time
	period   time.Duration // zero for one-shot After
	ch       chan time.Time
	stopped  bool
}

// NewFake returns a Fake clock starting at start.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// After implements Clock. The returned channel has capacity one so Advance
// never blocks on an abandoned waiter.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	w := &fakeWaiter{
		id:       f.nextID,
		deadline: f.now.Add(d),
		ch:       make(chan time.Time, 1),
	}
	f.nextID++
	f.waiters = append(f.waiters, w)
	return w.ch
}

// NewTicker implements Clock.
func (f *Fake) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		d = time.Nanosecond
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	w := &fakeWaiter{
		id:       f.nextID,
		deadline: f.now.Add(d),
		period:   d,
		ch:       make(chan time.Time, 1),
	}
	f.nextID++
	f.waiters = append(f.waiters, w)
	return &fakeTicker{clk: f, w: w}
}

// Sleep implements Clock. On a fake clock Sleep returns only when another
// goroutine advances time past the deadline.
func (f *Fake) Sleep(d time.Duration) {
	<-f.After(d)
}

// Advance moves the clock forward by d, firing every timer and ticker whose
// deadline falls within the window, in deadline order.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	target := f.now.Add(d)
	for {
		w := f.earliestDue(target)
		if w == nil {
			break
		}
		f.now = w.deadline
		select {
		case w.ch <- f.now:
		default: // waiter fell behind; drop the tick like time.Ticker does
		}
		if w.period > 0 {
			w.deadline = w.deadline.Add(w.period)
		} else {
			f.removeWaiter(w.id)
		}
	}
	f.now = target
	f.mu.Unlock()
}

// earliestDue returns the live waiter with the earliest deadline <= target,
// breaking ties by creation order. Caller holds f.mu.
func (f *Fake) earliestDue(target time.Time) *fakeWaiter {
	var best *fakeWaiter
	for _, w := range f.waiters {
		if w.stopped || w.deadline.After(target) {
			continue
		}
		if best == nil || w.deadline.Before(best.deadline) ||
			(w.deadline.Equal(best.deadline) && w.id < best.id) {
			best = w
		}
	}
	return best
}

// removeWaiter deletes the waiter with the given id. Caller holds f.mu.
func (f *Fake) removeWaiter(id int64) {
	for i, w := range f.waiters {
		if w.id == id {
			f.waiters = append(f.waiters[:i], f.waiters[i+1:]...)
			return
		}
	}
}

// PendingWaiters reports how many timers/tickers are outstanding; useful in
// tests to assert components shut their timers down.
func (f *Fake) PendingWaiters() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, w := range f.waiters {
		if !w.stopped {
			n++
		}
	}
	return n
}

type fakeTicker struct {
	clk *Fake
	w   *fakeWaiter
}

func (ft *fakeTicker) C() <-chan time.Time { return ft.w.ch }

func (ft *fakeTicker) Stop() {
	ft.clk.mu.Lock()
	ft.w.stopped = true
	ft.clk.removeWaiter(ft.w.id)
	ft.clk.mu.Unlock()
}
