// Package clock abstracts time so that protocol components that depend on
// timers — alive-message emission, disconnection detection, heartbeat
// monitoring, batch-flush intervals — can be driven deterministically in
// tests with a fake clock and by the wall clock in production.
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock provides the time operations the protocol stack needs.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that receives the then-current time once d
	// has elapsed.
	After(d time.Duration) <-chan time.Time
	// NewTicker returns a ticker firing every d. d must be positive.
	NewTicker(d time.Duration) Ticker
	// Sleep blocks for d.
	Sleep(d time.Duration)
}

// Ticker is the subset of time.Ticker the stack uses.
type Ticker interface {
	// C returns the delivery channel.
	C() <-chan time.Time
	// Stop shuts the ticker down. It does not close the channel.
	Stop()
}

// Real is a Clock backed by the runtime wall clock.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// NewTicker implements Clock.
func (Real) NewTicker(d time.Duration) Ticker { return realTicker{time.NewTicker(d)} }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

type realTicker struct{ t *time.Ticker }

func (rt realTicker) C() <-chan time.Time { return rt.t.C }
func (rt realTicker) Stop()               { rt.t.Stop() }

// Fake is a manually advanced Clock for deterministic tests and
// simulations. Timers fire synchronously inside Advance, in timestamp
// order, ties broken by creation order. The zero value is not usable;
// construct with NewFake.
//
// Waiters live in a min-heap keyed by (deadline, id), so Advance costs
// O(F log W) for F firings over W outstanding waiters. The mega-sim
// harness parks 100k+ member tickers on one Fake; the previous flat-slice
// scan was quadratic in the firing count and dominated whole runs.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
	nextID  int64
	pending int // live (not stopped, not yet fired one-shot) waiters
}

var _ Clock = (*Fake)(nil)

type fakeWaiter struct {
	id       int64
	deadline time.Time
	period   time.Duration // zero for one-shot After
	ch       chan time.Time
	stopped  bool
}

// waiterHeap is a min-heap of waiters by (deadline, id). Stopped waiters
// are removed lazily when they surface at the top.
type waiterHeap []*fakeWaiter

var _ heap.Interface = (*waiterHeap)(nil)

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if !h[i].deadline.Equal(h[j].deadline) {
		return h[i].deadline.Before(h[j].deadline)
	}
	return h[i].id < h[j].id
}
func (h waiterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x interface{}) { *h = append(*h, x.(*fakeWaiter)) }
func (h *waiterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return item
}

// NewFake returns a Fake clock starting at start.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// After implements Clock. The returned channel has capacity one so Advance
// never blocks on an abandoned waiter.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	w := &fakeWaiter{
		id:       f.nextID,
		deadline: f.now.Add(d),
		ch:       make(chan time.Time, 1),
	}
	f.nextID++
	f.pending++
	heap.Push(&f.waiters, w)
	return w.ch
}

// NewTicker implements Clock.
func (f *Fake) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		d = time.Nanosecond
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	w := &fakeWaiter{
		id:       f.nextID,
		deadline: f.now.Add(d),
		period:   d,
		ch:       make(chan time.Time, 1),
	}
	f.nextID++
	f.pending++
	heap.Push(&f.waiters, w)
	return &fakeTicker{clk: f, w: w}
}

// Sleep implements Clock. On a fake clock Sleep returns only when another
// goroutine advances time past the deadline.
func (f *Fake) Sleep(d time.Duration) {
	<-f.After(d)
}

// Advance moves the clock forward by d, firing every timer and ticker whose
// deadline falls within the window, in deadline order (ties by creation
// order). Sends are non-blocking: a waiter that has not drained its
// previous tick drops the new one, like time.Ticker.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	target := f.now.Add(d)
	for f.waiters.Len() > 0 {
		w := f.waiters[0]
		if w.stopped {
			heap.Pop(&f.waiters)
			continue
		}
		if w.deadline.After(target) {
			break
		}
		f.now = w.deadline
		select {
		case w.ch <- f.now:
		default: // waiter fell behind; drop the tick like time.Ticker does
		}
		if w.period > 0 {
			w.deadline = w.deadline.Add(w.period)
			heap.Fix(&f.waiters, 0)
		} else {
			heap.Pop(&f.waiters)
			f.pending--
		}
	}
	f.now = target
	f.mu.Unlock()
}

// NextDeadline reports the earliest outstanding timer/ticker deadline.
// Event-driven drivers use it to advance straight to the next firing
// instead of sweeping time forward in blind steps.
func (f *Fake) NextDeadline() (time.Time, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.waiters) > 0 && f.waiters[0].stopped {
		heap.Pop(&f.waiters)
	}
	if len(f.waiters) == 0 {
		return time.Time{}, false
	}
	return f.waiters[0].deadline, true
}

// PendingWaiters reports how many timers/tickers are outstanding; useful in
// tests to assert components shut their timers down.
func (f *Fake) PendingWaiters() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pending
}

type fakeTicker struct {
	clk  *Fake
	w    *fakeWaiter
	once sync.Once
}

func (ft *fakeTicker) C() <-chan time.Time { return ft.w.ch }

// Stop marks the waiter dead; the heap drops it lazily when it surfaces.
func (ft *fakeTicker) Stop() {
	ft.once.Do(func() {
		ft.clk.mu.Lock()
		ft.w.stopped = true
		ft.clk.pending--
		ft.clk.mu.Unlock()
	})
}
