package clock

import (
	"testing"
	"time"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestRealClockNow(t *testing.T) {
	c := Real{}
	before := time.Now()
	now := c.Now()
	after := time.Now()
	if now.Before(before) || now.After(after) {
		t.Errorf("Real.Now %v outside [%v, %v]", now, before, after)
	}
}

func TestRealClockAfter(t *testing.T) {
	c := Real{}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(5 * time.Second):
		t.Fatal("Real.After never fired")
	}
}

func TestRealClockTicker(t *testing.T) {
	c := Real{}
	tk := c.NewTicker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.C():
	case <-time.After(5 * time.Second):
		t.Fatal("Real ticker never fired")
	}
}

func TestFakeNowAndAdvance(t *testing.T) {
	f := NewFake(epoch)
	if !f.Now().Equal(epoch) {
		t.Fatalf("Now = %v, want %v", f.Now(), epoch)
	}
	f.Advance(90 * time.Second)
	if want := epoch.Add(90 * time.Second); !f.Now().Equal(want) {
		t.Errorf("Now after Advance = %v, want %v", f.Now(), want)
	}
}

func TestFakeAfterFiresAtDeadline(t *testing.T) {
	f := NewFake(epoch)
	ch := f.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before Advance")
	default:
	}
	f.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired 1s early")
	default:
	}
	f.Advance(time.Second)
	select {
	case got := <-ch:
		if want := epoch.Add(10 * time.Second); !got.Equal(want) {
			t.Errorf("fired with time %v, want %v", got, want)
		}
	default:
		t.Fatal("After did not fire at deadline")
	}
}

func TestFakeAfterFiresOnce(t *testing.T) {
	f := NewFake(epoch)
	ch := f.After(time.Second)
	f.Advance(time.Second)
	<-ch
	f.Advance(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("one-shot timer fired twice")
	default:
	}
	if f.PendingWaiters() != 0 {
		t.Errorf("PendingWaiters = %d after one-shot fired", f.PendingWaiters())
	}
}

func TestFakeTimersFireInDeadlineOrder(t *testing.T) {
	f := NewFake(epoch)
	late := f.After(20 * time.Second)
	early := f.After(5 * time.Second)
	f.Advance(30 * time.Second)
	tLate := <-late
	tEarly := <-early
	if !tEarly.Equal(epoch.Add(5 * time.Second)) {
		t.Errorf("early fired at %v", tEarly)
	}
	if !tLate.Equal(epoch.Add(20 * time.Second)) {
		t.Errorf("late fired at %v", tLate)
	}
	if tEarly.After(tLate) {
		t.Error("timers fired out of order")
	}
}

func TestFakeTickerPeriodic(t *testing.T) {
	f := NewFake(epoch)
	tk := f.NewTicker(10 * time.Second)
	defer tk.Stop()
	for i := 1; i <= 3; i++ {
		f.Advance(10 * time.Second)
		select {
		case got := <-tk.C():
			if want := epoch.Add(time.Duration(i) * 10 * time.Second); !got.Equal(want) {
				t.Errorf("tick %d at %v, want %v", i, got, want)
			}
		default:
			t.Fatalf("tick %d missing", i)
		}
	}
}

func TestFakeTickerDropsWhenBehind(t *testing.T) {
	f := NewFake(epoch)
	tk := f.NewTicker(time.Second)
	defer tk.Stop()
	f.Advance(10 * time.Second) // 10 ticks due, channel capacity 1
	n := 0
	for {
		select {
		case <-tk.C():
			n++
			continue
		default:
		}
		break
	}
	if n != 1 {
		t.Errorf("received %d buffered ticks, want 1 (extra ticks dropped)", n)
	}
}

func TestFakeTickerStop(t *testing.T) {
	f := NewFake(epoch)
	tk := f.NewTicker(time.Second)
	tk.Stop()
	f.Advance(5 * time.Second)
	select {
	case <-tk.C():
		t.Fatal("stopped ticker fired")
	default:
	}
	if f.PendingWaiters() != 0 {
		t.Errorf("PendingWaiters = %d after Stop", f.PendingWaiters())
	}
}

func TestFakeSleepUnblocksOnAdvance(t *testing.T) {
	f := NewFake(epoch)
	done := make(chan struct{})
	go func() {
		f.Sleep(time.Minute)
		close(done)
	}()
	// Wait until the sleeper has registered its waiter.
	for i := 0; f.PendingWaiters() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	f.Advance(time.Minute)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep never returned after Advance")
	}
}

func TestFakeZeroDurationAfter(t *testing.T) {
	f := NewFake(epoch)
	ch := f.After(0)
	f.Advance(0)
	select {
	case <-ch:
	default:
		t.Error("After(0) did not fire on Advance(0)")
	}
}
