// Package replica implements Mykil's fault-tolerance layer past the
// paper's single passive backup (§IV-C): an area controller ships its
// journal — segment records rather than full state snapshots — to N
// replicas, and when the primary's heartbeats stop the replicas run a
// Bully-style quorum leader election. Candidates are ordered by applied
// journal LSN (ties broken by ID), so the winner always holds the
// longest log; it rebuilds the controller with area.NewFromJournal,
// which regenerates byte-identical tree keys, and takes over with zero
// member rejoins. Losers re-point their monitoring at the new leader and
// keep replicating — the replica set heals itself.
//
// With no peers configured the machinery degenerates to the paper's
// passive backup: a quorum of one promotes immediately after the
// takeover window of silence.
package replica

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mykil/internal/area"
	"mykil/internal/clock"
	"mykil/internal/crypt"
	"mykil/internal/journal"
	"mykil/internal/node"
	"mykil/internal/obs"
	"mykil/internal/transport"
	"mykil/internal/wire"
)

// DefaultTakeoverFactor declares the primary dead after this many missed
// heartbeat intervals.
const DefaultTakeoverFactor = 5

// DefaultHeartbeatEvery seeds the monitor cadence until the first
// segment sync carries the primary's configured interval.
const DefaultHeartbeatEvery = 500 * time.Millisecond

// ErrNotPromoted reports that no takeover has happened yet.
var ErrNotPromoted = errors.New("replica: not promoted")

// Peer identifies a fellow replica in the same replica set.
type Peer struct {
	ID   string
	Addr string
	Pub  crypt.PublicKey
}

// Config parameterizes a replica.
type Config struct {
	// ID is the replica's identity. Required.
	ID string
	// Transport carries frames; Keys is the replica's own key pair. Both
	// required. Members learn the advertised replica's public key at join
	// and use it to verify the takeover announcement.
	Transport transport.Transport
	Keys      *crypt.KeyPair
	// Clock drives the heartbeat monitor; nil means clock.Real.
	Clock clock.Clock
	// PrimaryID and PrimaryPub identify and authenticate the watched
	// primary. Required. Both are re-pointed at the winner after an
	// election this replica loses.
	PrimaryID  string
	PrimaryPub crypt.PublicKey
	// HeartbeatEvery bootstraps the monitor cadence; zero means
	// DefaultHeartbeatEvery. The authoritative value is the one the
	// primary carries in every SegmentPush, so a drifting config cannot
	// skew the takeover window once the first sync arrives.
	HeartbeatEvery time.Duration
	// TakeoverAfter overrides the silence window; zero means
	// DefaultTakeoverFactor × the current heartbeat interval.
	TakeoverAfter time.Duration
	// Peers lists the other replicas of the same primary. Empty recovers
	// the paper's passive single-backup behaviour.
	Peers []Peer
	// Announcer marks the replica whose address and key were advertised
	// to members in their welcomes. Members only trust ACFailover frames
	// signed by that key, so when a different replica wins the election,
	// the announcer relays the takeover notice on the winner's behalf.
	Announcer bool
	// ControllerConfig seeds the promoted controller (KShared, RSPub,
	// Directory, timing...). Transport, Keys, ID, Clock are overridden
	// with the replica's own.
	ControllerConfig area.Config
	// ColdState, if set, is a state recovered from a durable journal. It
	// lets the replica promote even when the primary died before sending
	// a single sync or heartbeat: after a takeover window of silence
	// measured from Start, the replica restores from ColdState. Fresher
	// replicated state always wins.
	ColdState *area.State
	// OnPromote, if set, is called with the promoted controller.
	OnPromote func(*area.Controller)
	// Observer, if set, receives election and failover trace events. It
	// is also handed to the promoted controller.
	Observer obs.Sink
	// Logf, if set, receives debug logging.
	Logf func(format string, args ...any)
}

// Replica watches a primary area controller, replicates its journal, and
// takes part in leader election when the primary fails.
type Replica struct {
	cfg Config
	clk clock.Clock

	// mu guards the replicated state and promotion result: accessors stay
	// readable after the loop exits at promotion.
	mu sync.Mutex
	// Snapshot-mode state (legacy full-state sync from unjournaled
	// primaries).
	state    *area.State
	stateSeq uint64
	// Journal-mode accumulation: a baseline snapshot plus the record tail
	// — exactly the shape of a journal.Recovery.
	base    []byte
	baseLSN uint64
	recs    [][]byte
	nextLSN uint64 // next LSN needed; 0 until the first record lands

	hbEvery  time.Duration
	takeover time.Duration

	primaryID   string
	primaryPub  crypt.PublicKey
	primaryAddr string

	lastHB   time.Time
	hbSeen   bool
	started  time.Time
	lastPull time.Time

	electing      bool
	votes         map[string]bool
	electionEnds  time.Time
	suppressUntil time.Time
	votedFor      string
	votedUntil    time.Time
	// rank counts the peers that beat this replica's ID in the bully
	// order: 0 for the strongest candidate. Silence detection and
	// election retries are staggered by rank so the replica that would
	// win a tie campaigns first and the others arrive as voters, not as
	// rival candidates.
	rank int

	trace      *obs.Tracer
	metrics    *obs.Registry
	cElections *obs.Counter
	promoted   *area.Controller
	syncCount  int64

	loop *node.Loop
}

// Backup is the historical name for a Replica, kept for the passive
// single-backup reading of §IV-C.
type Backup = Replica

// New validates the config and builds a replica.
func New(cfg Config) (*Replica, error) {
	if cfg.ID == "" || cfg.Transport == nil || cfg.Keys == nil {
		return nil, fmt.Errorf("replica: ID, Transport, and Keys are required")
	}
	if cfg.PrimaryID == "" || cfg.PrimaryPub.IsZero() {
		return nil, fmt.Errorf("replica: PrimaryID and PrimaryPub are required")
	}
	for _, p := range cfg.Peers {
		if p.ID == "" || p.Addr == "" || p.Pub.IsZero() {
			return nil, fmt.Errorf("replica: peer %q needs ID, Addr, and Pub", p.ID)
		}
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = DefaultHeartbeatEvery
	}
	r := &Replica{
		cfg:        cfg,
		clk:        cfg.Clock,
		hbEvery:    cfg.HeartbeatEvery,
		primaryID:  cfg.PrimaryID,
		primaryPub: cfg.PrimaryPub,
	}
	r.takeover = r.takeoverWindow()
	for _, p := range cfg.Peers {
		if p.ID > cfg.ID {
			r.rank++
		}
	}
	r.trace = obs.NewTracer(cfg.ID, cfg.Clock, cfg.Observer)
	r.metrics = obs.NewRegistry(obs.L("node", cfg.ID))
	r.cElections = r.metrics.Counter(obs.MetricElections, obs.HelpElections)
	r.loop = node.New(node.Config{
		Name:      cfg.ID,
		Transport: cfg.Transport,
		Clock:     cfg.Clock,
		TickEvery: cfg.HeartbeatEvery,
		OnFrame:   r.handleFrame,
		OnTick:    r.tick,
		Logf:      cfg.Logf,
	})
	return r, nil
}

// takeoverWindow computes the silence window from the current heartbeat
// interval. Callers hold mu or own the replica single-threadedly.
func (r *Replica) takeoverWindow() time.Duration {
	if r.cfg.TakeoverAfter != 0 {
		return r.cfg.TakeoverAfter
	}
	return DefaultTakeoverFactor * r.hbEvery
}

// quorum is the majority of the replica set (peers plus self).
func (r *Replica) quorum() int { return (len(r.cfg.Peers)+1)/2 + 1 }

// staggerLocked is the extra silence this replica waits beyond the
// takeover window before campaigning, a quarter-window per bully rank.
// Callers hold mu.
func (r *Replica) staggerLocked() time.Duration {
	return time.Duration(r.rank) * r.takeover / 4
}

// areaID returns the configured area, "" when unknown pre-sync.
func (r *Replica) areaID() string { return r.cfg.ControllerConfig.AreaID }

// Start launches the monitoring loop.
func (r *Replica) Start() {
	r.mu.Lock()
	r.started = r.clk.Now()
	r.mu.Unlock()
	r.loop.Start()
}

// Close stops the monitoring loop. A promoted controller keeps running;
// the caller owns it via OnPromote or Promoted.
func (r *Replica) Close() {
	r.loop.Close()
}

// Promoted returns the controller this replica promoted, if any.
func (r *Replica) Promoted() (*area.Controller, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.promoted == nil {
		return nil, ErrNotPromoted
	}
	return r.promoted, nil
}

// HasState reports whether any replicated state has been absorbed —
// a full snapshot or at least one journal record.
func (r *Replica) HasState() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state != nil || r.nextLSN > 0
}

// SyncCount reports how many syncs (snapshots or segment pushes that
// advanced the log) were absorbed.
func (r *Replica) SyncCount() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.syncCount
}

// AppliedLSN reports one past the last journal record absorbed (0 before
// the first segment push).
func (r *Replica) AppliedLSN() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nextLSN
}

// StateMembers reports how many members the latest absorbed full
// snapshot contains (zero in segment-sync mode, where membership is not
// materialized until promotion).
func (r *Replica) StateMembers() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state == nil {
		return 0
	}
	return len(r.state.Members)
}

// Stats exposes the replica's metrics registry (elections won).
func (r *Replica) Stats() *obs.Registry { return r.metrics }

// positionLocked is the replica's durability position for candidate
// ordering: the applied journal LSN, or the legacy snapshot sequence
// when the primary replicates full states. Both are monotonic.
func (r *Replica) positionLocked() uint64 {
	if r.nextLSN > r.stateSeq {
		return r.nextLSN
	}
	return r.stateSeq
}

// restorableLocked reports whether promotion has anything to restore.
func (r *Replica) restorableLocked() bool {
	return r.nextLSN > 0 || r.state != nil || r.cfg.ColdState != nil
}

// tick runs the heartbeat monitor and the election timer (loop context).
func (r *Replica) tick() {
	r.mu.Lock()
	if r.promoted != nil {
		r.mu.Unlock()
		return
	}
	now := r.clk.Now()
	if r.electing {
		retry := now.After(r.electionEnds)
		r.mu.Unlock()
		if retry {
			// No quorum and no Coordinator inside the window: the peers
			// we needed may themselves have been restarting. Re-campaign.
			r.startElection("retry")
		}
		return
	}
	// With no heartbeat ever heard, silence runs from Start: a cold
	// restore only fires after the primary had a full takeover window to
	// show signs of life.
	since := r.lastHB
	if !r.hbSeen {
		since = r.started
	}
	silence := now.Sub(since)
	if silence <= r.takeover+r.staggerLocked() || now.Before(r.suppressUntil) || !r.restorableLocked() {
		r.mu.Unlock()
		return
	}
	primary := r.primaryID
	r.mu.Unlock()
	r.cfg.Logf("%s: primary %s silent for %v; starting election", r.cfg.ID, primary, silence)
	r.startElection("silence")
}

// startElection opens (or re-opens) a candidacy: broadcast Election to
// every peer and wait for a quorum of acks. With no peers the quorum is
// one and the candidacy wins immediately — the passive-backup case.
func (r *Replica) startElection(reason string) {
	r.mu.Lock()
	if r.promoted != nil {
		r.mu.Unlock()
		return
	}
	now := r.clk.Now()
	// A campaign is itself a vote: self-pledge through the same
	// single-vote window the stand-down path uses, so a replica that
	// already backed a peer cannot turn around and assemble a rival
	// quorum (e.g. when a stale third candidate's Election trips the
	// bully branch after we acked the eventual winner).
	if r.votedFor != "" && r.votedFor != r.cfg.ID && now.Before(r.votedUntil) {
		r.mu.Unlock()
		return
	}
	r.votedFor = r.cfg.ID
	r.votedUntil = now.Add(r.takeover)
	r.electing = true
	r.votes = make(map[string]bool)
	r.electionEnds = now.Add(r.takeover + r.staggerLocked())
	lsn := r.positionLocked()
	primary := r.primaryID
	r.mu.Unlock()
	r.trace.Event(obs.ProtoElection, primary, "candidate",
		obs.String("reason", reason), obs.Uint("lsn", lsn))
	for _, p := range r.cfg.Peers {
		r.sendPlain(p.Addr, wire.KindElection, wire.Election{
			AreaID: r.areaID(), CandidateID: r.cfg.ID, LSN: lsn,
		})
	}
	r.maybeWin()
}

func (r *Replica) handleFrame(f *wire.Frame) {
	switch f.Kind {
	case wire.KindReplicaSync:
		r.handleSync(f)
	case wire.KindReplicaHeartbeat:
		r.handleHeartbeat(f)
	case wire.KindSegmentPush:
		r.handleSegmentPush(f)
	case wire.KindElection:
		r.handleElection(f)
	case wire.KindElectionOK:
		r.handleElectionOK(f)
	case wire.KindCoordinator:
		r.handleCoordinator(f)
	default:
		// Frames for the promoted controller arrive on its own
		// transport; anything else here is noise.
	}
}

// peer finds a configured peer by ID.
func (r *Replica) peer(id string) (Peer, bool) {
	for _, p := range r.cfg.Peers {
		if p.ID == id {
			return p, true
		}
	}
	return Peer{}, false
}

// verifyPrimary checks a frame signature against the current primary key.
func (r *Replica) verifyPrimary(f *wire.Frame) bool {
	r.mu.Lock()
	pub := r.primaryPub
	r.mu.Unlock()
	return pub.Verify(f.Body, f.Sig) == nil
}

// handleSync absorbs a legacy full-state snapshot from an unjournaled
// primary.
func (r *Replica) handleSync(f *wire.Frame) {
	if !r.verifyPrimary(f) {
		r.cfg.Logf("%s: replica sync with bad signature dropped", r.cfg.ID)
		return
	}
	var sync wire.ReplicaSync
	if err := wire.OpenBody(r.cfg.Keys, f.Body, &sync); err != nil {
		r.cfg.Logf("%s: replica sync body: %v", r.cfg.ID, err)
		return
	}
	st, err := area.DecodeState(sync.State)
	if err != nil {
		r.cfg.Logf("%s: replica state: %v", r.cfg.ID, err)
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state != nil && sync.Seq <= r.stateSeq {
		return // stale or duplicate snapshot
	}
	r.state = st
	r.stateSeq = sync.Seq
	r.syncCount++
	r.lastHB = r.clk.Now()
	r.hbSeen = true
	r.primaryAddr = f.From
}

// handleHeartbeat notes primary liveness and pulls the journal tail when
// the advertised position is ahead of ours.
func (r *Replica) handleHeartbeat(f *wire.Frame) {
	if !r.verifyPrimary(f) {
		return
	}
	var hb wire.ReplicaHeartbeat
	if err := wire.DecodePlain(f.Body, &hb); err != nil {
		return
	}
	r.mu.Lock()
	now := r.clk.Now()
	r.lastHB = now
	r.hbSeen = true
	r.primaryAddr = f.From
	// The heartbeat advertises the primary's last position (journal LSN
	// or legacy state sequence); pull when it passes what we hold. On a
	// legacy primary the pull is answered with a full ReplicaSync, which
	// repairs a lost snapshot push.
	applied := r.stateSeq
	if r.nextLSN > 0 && r.nextLSN-1 > applied {
		applied = r.nextLSN - 1
	}
	var fromLSN uint64
	if hb.Seq > applied && now.Sub(r.lastPull) >= r.hbEvery {
		r.lastPull = now
		fromLSN = r.nextLSN
		if fromLSN == 0 {
			fromLSN = 1
		}
	}
	r.mu.Unlock()
	if fromLSN > 0 {
		r.sendPlain(f.From, wire.KindSegmentPull, wire.SegmentPull{
			AreaID: hb.AreaID, FromLSN: fromLSN,
		})
	}
}

// handleSegmentPush absorbs journal records (and possibly a baseline
// snapshot) shipped by the primary, and adopts the heartbeat cadence the
// stream carries — the config value is only a bootstrap.
func (r *Replica) handleSegmentPush(f *wire.Frame) {
	if !r.verifyPrimary(f) {
		r.cfg.Logf("%s: segment push with bad signature dropped", r.cfg.ID)
		return
	}
	var push wire.SegmentPush
	if err := wire.OpenBody(r.cfg.Keys, f.Body, &push); err != nil {
		r.cfg.Logf("%s: segment push body: %v", r.cfg.ID, err)
		return
	}
	r.mu.Lock()
	now := r.clk.Now()
	r.lastHB = now
	r.hbSeen = true
	r.primaryAddr = f.From
	if push.HeartbeatEvery > 0 && push.HeartbeatEvery != r.hbEvery {
		r.hbEvery = push.HeartbeatEvery
		r.takeover = r.takeoverWindow()
	}
	need := r.nextLSN
	if need == 0 {
		need = 1
	}
	changed := false
	if push.Snapshot != nil && push.SnapshotLSN+1 > need {
		r.base = push.Snapshot
		r.baseLSN = push.SnapshotLSN
		r.recs = nil
		need = push.SnapshotLSN + 1
		changed = true
	}
	if push.FromLSN > need {
		// A gap: this push starts past what we hold. Re-pull from our
		// actual position; the primary will include a baseline if the
		// tail below it was compacted away.
		r.lastPull = now
		r.mu.Unlock()
		r.sendPlain(f.From, wire.KindSegmentPull, wire.SegmentPull{
			AreaID: push.AreaID, FromLSN: need,
		})
		return
	}
	if push.NextLSN > need {
		skip := need - push.FromLSN
		r.recs = append(r.recs, push.Records[skip:]...)
		need = push.NextLSN
		changed = true
	}
	if changed {
		r.nextLSN = need
		r.syncCount++
	}
	r.mu.Unlock()
}

// handleElection is the voter side: acknowledge a candidate at least as
// durable as ourselves; bully an inferior one by campaigning.
func (r *Replica) handleElection(f *wire.Frame) {
	var e wire.Election
	if err := wire.DecodePlain(f.Body, &e); err != nil {
		return
	}
	p, ok := r.peer(e.CandidateID)
	if !ok {
		r.cfg.Logf("%s: election from unknown candidate %q", r.cfg.ID, e.CandidateID)
		return
	}
	if p.Pub.Verify(f.Body, f.Sig) != nil {
		return
	}
	if id := r.areaID(); id != "" && e.AreaID != "" && e.AreaID != id {
		return
	}
	r.mu.Lock()
	if r.promoted != nil {
		r.mu.Unlock()
		return
	}
	mine := r.positionLocked()
	if e.LSN > mine || (e.LSN == mine && e.CandidateID >= r.cfg.ID) {
		// The candidate is at least as durable: stand down and let it
		// collect the quorum. If no Coordinator emerges within the
		// suppression window, our own silence timer re-fires.
		//
		// One vote per window: two candidates racing the same silence must
		// never both assemble a quorum through a shared voter, so once we
		// back a candidate (ourselves included — campaigning self-pledges)
		// we only re-ack that same candidate until the window expires. The
		// lone exception is a candidate holding a strictly longer log than
		// ours: refusing it could wedge a two-replica set whose weaker
		// member self-pledged first.
		now := r.clk.Now()
		if r.votedFor != "" && now.Before(r.votedUntil) && r.votedFor != e.CandidateID && e.LSN <= mine {
			r.mu.Unlock()
			return
		}
		r.votedFor = e.CandidateID
		r.votedUntil = now.Add(r.takeover)
		r.electing = false
		r.suppressUntil = now.Add(r.takeover)
		r.mu.Unlock()
		r.trace.Event(obs.ProtoElection, e.CandidateID, "ack",
			obs.Uint("candidate_lsn", e.LSN), obs.Uint("own_lsn", mine))
		r.sendPlain(p.Addr, wire.KindElectionOK, wire.ElectionOK{
			AreaID: e.AreaID, VoterID: r.cfg.ID, LSN: mine,
		})
		return
	}
	// We hold a longer log than the candidate: bully it.
	alreadyElecting := r.electing
	restorable := r.restorableLocked()
	r.mu.Unlock()
	if !alreadyElecting && restorable {
		r.startElection("bully")
	}
}

// handleElectionOK is the candidate side: count the vote and promote at
// quorum.
func (r *Replica) handleElectionOK(f *wire.Frame) {
	var ok wire.ElectionOK
	if err := wire.DecodePlain(f.Body, &ok); err != nil {
		return
	}
	p, found := r.peer(ok.VoterID)
	if !found || p.Pub.Verify(f.Body, f.Sig) != nil {
		return
	}
	r.mu.Lock()
	if !r.electing || r.promoted != nil {
		r.mu.Unlock()
		return
	}
	r.votes[ok.VoterID] = true
	r.mu.Unlock()
	r.maybeWin()
}

// handleCoordinator is the loser side: adopt the winner as the new
// primary and, when we are the member-advertised replica, relay the
// takeover notice to the area.
func (r *Replica) handleCoordinator(f *wire.Frame) {
	var co wire.Coordinator
	if err := wire.DecodePlain(f.Body, &co); err != nil {
		return
	}
	p, found := r.peer(co.LeaderID)
	if !found || p.Pub.Verify(f.Body, f.Sig) != nil {
		return
	}
	pub, err := crypt.ParsePublicKey(co.PubDER)
	if err != nil {
		return
	}
	r.mu.Lock()
	if r.promoted != nil {
		r.mu.Unlock()
		return
	}
	r.electing = false
	r.suppressUntil = time.Time{}
	r.votedFor = ""
	r.primaryID = co.LeaderID
	r.primaryPub = pub
	r.primaryAddr = co.Addr
	r.lastHB = r.clk.Now()
	r.hbSeen = true
	announcer := r.cfg.Announcer
	r.mu.Unlock()
	r.trace.Event(obs.ProtoElection, co.LeaderID, "coordinator",
		obs.String("voter", r.cfg.ID))
	if announcer && co.LeaderID != r.cfg.ID {
		// Members verify ACFailover signatures against OUR key (it was
		// advertised in their welcomes); vouch for the winner.
		fo := wire.ACFailover{
			AreaID: co.AreaID, NewAddr: co.Addr, NewPub: co.PubDER, Epoch: co.Epoch,
		}
		for _, addr := range co.MemberAddrs {
			r.sendPlain(addr, wire.KindACFailover, fo)
		}
	}
}

// maybeWin promotes when the candidacy holds a quorum of the replica set.
func (r *Replica) maybeWin() {
	r.mu.Lock()
	if !r.electing || r.promoted != nil || len(r.votes)+1 < r.quorum() {
		r.mu.Unlock()
		return
	}
	r.electing = false
	votes := len(r.votes) + 1
	r.mu.Unlock()
	r.win(votes)
}

// win rebuilds the controller from the replicated journal (or state) and
// takes over the area.
func (r *Replica) win(votes int) {
	ctrl := r.buildController()
	if ctrl == nil {
		r.mu.Lock()
		r.suppressUntil = r.clk.Now().Add(r.takeover)
		r.mu.Unlock()
		return
	}
	memberAddrs := ctrl.BootMemberAddrs()
	epoch := ctrl.BootEpoch()

	// Exit the loop so the replica stops consuming the shared transport —
	// every subsequent frame then reaches the promoted controller.
	r.loop.Exit()
	r.mu.Lock()
	lsn := r.positionLocked()
	primary := r.primaryID
	r.mu.Unlock()
	r.cElections.Inc()
	r.trace.Event(obs.ProtoElection, primary, "won",
		obs.Int("votes", int64(votes)), obs.Uint("lsn", lsn))
	r.trace.Event(obs.ProtoFailover, primary, "promoted",
		obs.String("backup", r.cfg.ID))

	co := wire.Coordinator{
		AreaID:      r.areaID(),
		LeaderID:    r.cfg.ID,
		Addr:        r.cfg.Transport.Addr(),
		PubDER:      r.cfg.Keys.Public().Marshal(),
		Epoch:       epoch,
		MemberAddrs: memberAddrs,
	}
	for _, p := range r.cfg.Peers {
		r.sendPlain(p.Addr, wire.KindCoordinator, co)
	}

	ctrl.Start()
	ctrl.AnnounceFailover()
	r.mu.Lock()
	r.promoted = ctrl
	r.mu.Unlock()
	if r.cfg.OnPromote != nil {
		r.cfg.OnPromote(ctrl)
	}
}

// buildController restores the area controller from the freshest
// replicated source: the accumulated journal first (byte-identical tree
// keys), then the last full snapshot, then the cold state.
func (r *Replica) buildController() *area.Controller {
	r.mu.Lock()
	cfg := r.cfg.ControllerConfig
	cfg.ID = r.cfg.ID
	cfg.Transport = r.cfg.Transport
	cfg.Keys = r.cfg.Keys
	cfg.Clock = r.cfg.Clock
	cfg.Logf = r.cfg.Logf
	if cfg.Observer == nil {
		cfg.Observer = r.cfg.Observer
	}
	var (
		ctrl *area.Controller
		err  error
	)
	if r.nextLSN > 0 {
		rec := &journal.Recovery{
			Snapshot:    r.base,
			SnapshotLSN: r.baseLSN,
			Records:     r.recs,
		}
		r.mu.Unlock()
		ctrl, err = area.NewFromJournal(cfg, rec)
	} else {
		st := r.state
		if st == nil {
			st = r.cfg.ColdState
		}
		r.mu.Unlock()
		if st == nil {
			r.cfg.Logf("%s: election won with nothing to restore", r.cfg.ID)
			return nil
		}
		ctrl, err = area.NewFromState(cfg, st)
	}
	if err != nil {
		r.cfg.Logf("%s: promotion failed: %v", r.cfg.ID, err)
		return nil
	}
	return ctrl
}

// sendPlain sends a signed plain-body frame; election traffic carries no
// secrets, and signatures are what peers and members verify.
func (r *Replica) sendPlain(addr string, kind wire.Kind, body wire.Marshaler) {
	blob, err := wire.PlainBody(body)
	if err != nil {
		return
	}
	f := &wire.Frame{
		Kind: kind,
		From: r.cfg.Transport.Addr(),
		Body: blob,
		Sig:  r.cfg.Keys.Sign(blob),
	}
	if err := r.cfg.Transport.Send(addr, f); err != nil {
		r.cfg.Logf("%s: send %v to %s: %v", r.cfg.ID, kind, addr, err)
	}
}
