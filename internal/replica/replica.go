// Package replica implements the backup half of Mykil's §IV-C
// primary-backup replication of an area controller. The backup passively
// absorbs state snapshots and heartbeats from the primary; when the
// heartbeats stop, it promotes itself: it reconstructs an area controller
// from the last replicated state, starts serving under its own address
// and key pair, and announces the takeover to the area.
package replica

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mykil/internal/area"
	"mykil/internal/clock"
	"mykil/internal/crypt"
	"mykil/internal/node"
	"mykil/internal/obs"
	"mykil/internal/transport"
	"mykil/internal/wire"
)

// DefaultTakeoverFactor declares the primary dead after this many missed
// heartbeat intervals.
const DefaultTakeoverFactor = 5

// ErrNotPromoted reports that no takeover has happened yet.
var ErrNotPromoted = errors.New("replica: not promoted")

// Config parameterizes a backup.
type Config struct {
	// ID is the backup's identity. Required.
	ID string
	// Transport carries frames; Keys is the backup's own key pair. Both
	// required. Members learn this public key at join and use it to
	// verify the takeover announcement.
	Transport transport.Transport
	Keys      *crypt.KeyPair
	// Clock drives the heartbeat monitor; nil means clock.Real.
	Clock clock.Clock
	// PrimaryID and PrimaryPub identify and authenticate the watched
	// primary. Required.
	PrimaryID  string
	PrimaryPub crypt.PublicKey
	// HeartbeatEvery is the primary's configured heartbeat interval.
	// Required (must match the primary's area.Config.HeartbeatEvery).
	HeartbeatEvery time.Duration
	// TakeoverAfter overrides the silence window; zero means
	// DefaultTakeoverFactor × HeartbeatEvery.
	TakeoverAfter time.Duration
	// ControllerConfig seeds the promoted controller (KShared, RSPub,
	// Directory, timing...). Transport, Keys, ID, Clock are overridden
	// with the backup's own.
	ControllerConfig area.Config
	// ColdState, if set, is a state recovered from a durable journal. It
	// lets the backup promote even when the primary died before sending a
	// single snapshot or heartbeat: after a takeover window of silence
	// measured from Start, the backup restores from ColdState. A fresher
	// hot snapshot from the primary always wins.
	ColdState *area.State
	// OnPromote, if set, is called with the promoted controller.
	OnPromote func(*area.Controller)
	// Observer, if set, receives a failover trace event on takeover. It
	// is also handed to the promoted controller.
	Observer obs.Sink
	// Logf, if set, receives debug logging.
	Logf func(format string, args ...any)
}

// Backup watches a primary area controller and takes over on failure.
type Backup struct {
	cfg      Config
	clk      clock.Clock
	takeover time.Duration

	// mu guards the replicated state and promotion result: accessors stay
	// readable after the loop exits at promotion.
	mu        sync.Mutex
	state     *area.State
	stateSeq  uint64
	lastHB    time.Time
	hbSeen    bool
	started   time.Time
	trace     *obs.Tracer
	promoted  *area.Controller
	syncCount int64

	loop *node.Loop
}

// New validates the config and builds a backup.
func New(cfg Config) (*Backup, error) {
	if cfg.ID == "" || cfg.Transport == nil || cfg.Keys == nil {
		return nil, fmt.Errorf("replica: ID, Transport, and Keys are required")
	}
	if cfg.PrimaryID == "" || cfg.PrimaryPub.IsZero() {
		return nil, fmt.Errorf("replica: PrimaryID and PrimaryPub are required")
	}
	if cfg.HeartbeatEvery <= 0 {
		return nil, fmt.Errorf("replica: HeartbeatEvery must be positive")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	takeover := cfg.TakeoverAfter
	if takeover == 0 {
		takeover = DefaultTakeoverFactor * cfg.HeartbeatEvery
	}
	b := &Backup{
		cfg:      cfg,
		clk:      cfg.Clock,
		takeover: takeover,
	}
	b.trace = obs.NewTracer(cfg.ID, cfg.Clock, cfg.Observer)
	b.loop = node.New(node.Config{
		Name:      cfg.ID,
		Transport: cfg.Transport,
		Clock:     cfg.Clock,
		TickEvery: cfg.HeartbeatEvery,
		OnFrame:   b.handleFrame,
		OnTick:    b.tick,
		Logf:      cfg.Logf,
	})
	return b, nil
}

// Start launches the monitoring loop.
func (b *Backup) Start() {
	b.mu.Lock()
	b.started = b.clk.Now()
	b.mu.Unlock()
	b.loop.Start()
}

// Close stops the monitoring loop. A promoted controller keeps running;
// the caller owns it via OnPromote or Promoted.
func (b *Backup) Close() {
	b.loop.Close()
}

// Promoted returns the controller this backup promoted, if any.
func (b *Backup) Promoted() (*area.Controller, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.promoted == nil {
		return nil, ErrNotPromoted
	}
	return b.promoted, nil
}

// HasState reports whether at least one state snapshot has been absorbed.
func (b *Backup) HasState() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != nil
}

// SyncCount reports how many snapshots were absorbed.
func (b *Backup) SyncCount() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.syncCount
}

// StateMembers reports how many members the latest absorbed snapshot
// contains (zero when no snapshot has arrived).
func (b *Backup) StateMembers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == nil {
		return 0
	}
	return len(b.state.Members)
}

// tick runs the heartbeat monitor (loop context). On takeover it asks the
// loop to exit so the backup stops consuming the shared transport — every
// subsequent frame then reaches the promoted controller.
func (b *Backup) tick() {
	ctrl := b.maybePromote()
	if ctrl == nil {
		return
	}
	b.loop.Exit()
	b.trace.Event(obs.ProtoFailover, b.cfg.PrimaryID, "promoted",
		obs.String("backup", b.cfg.ID))
	ctrl.Start()
	ctrl.AnnounceFailover()
	b.mu.Lock()
	b.promoted = ctrl
	b.mu.Unlock()
	if b.cfg.OnPromote != nil {
		b.cfg.OnPromote(ctrl)
	}
}

func (b *Backup) handleFrame(f *wire.Frame) {
	switch f.Kind {
	case wire.KindReplicaSync:
		b.handleSync(f)
	case wire.KindReplicaHeartbeat:
		b.handleHeartbeat(f)
	default:
		// Frames for the promoted controller arrive on its own
		// transport; anything else here is noise.
	}
}

func (b *Backup) handleSync(f *wire.Frame) {
	if err := b.cfg.PrimaryPub.Verify(f.Body, f.Sig); err != nil {
		b.cfg.Logf("%s: replica sync with bad signature dropped", b.cfg.ID)
		return
	}
	var sync wire.ReplicaSync
	if err := wire.OpenBody(b.cfg.Keys, f.Body, &sync); err != nil {
		b.cfg.Logf("%s: replica sync body: %v", b.cfg.ID, err)
		return
	}
	st, err := area.DecodeState(sync.State)
	if err != nil {
		b.cfg.Logf("%s: replica state: %v", b.cfg.ID, err)
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != nil && sync.Seq <= b.stateSeq {
		return // stale or duplicate snapshot
	}
	b.state = st
	b.stateSeq = sync.Seq
	b.syncCount++
	b.lastHB = b.clk.Now()
	b.hbSeen = true
}

func (b *Backup) handleHeartbeat(f *wire.Frame) {
	if err := b.cfg.PrimaryPub.Verify(f.Body, f.Sig); err != nil {
		return
	}
	var hb wire.ReplicaHeartbeat
	if err := wire.DecodePlain(f.Body, &hb); err != nil {
		return
	}
	b.mu.Lock()
	b.lastHB = b.clk.Now()
	b.hbSeen = true
	b.mu.Unlock()
}

// maybePromote builds (but does not start) the replacement controller
// when the primary has been silent past the takeover window.
func (b *Backup) maybePromote() *area.Controller {
	b.mu.Lock()
	st := b.state
	if st == nil {
		st = b.cfg.ColdState
	}
	if b.promoted != nil || st == nil {
		b.mu.Unlock()
		return nil
	}
	// With no heartbeat ever heard, silence runs from Start: a cold
	// restore only fires after the primary had a full takeover window to
	// show signs of life.
	since := b.lastHB
	if !b.hbSeen {
		since = b.started
	}
	silence := b.clk.Now().Sub(since)
	if silence <= b.takeover {
		b.mu.Unlock()
		return nil
	}
	b.mu.Unlock()

	b.cfg.Logf("%s: primary %s silent for %v; promoting", b.cfg.ID, b.cfg.PrimaryID, silence)
	cfg := b.cfg.ControllerConfig
	cfg.ID = b.cfg.ID
	cfg.Transport = b.cfg.Transport
	cfg.Keys = b.cfg.Keys
	cfg.Clock = b.cfg.Clock
	cfg.Logf = b.cfg.Logf
	if cfg.Observer == nil {
		cfg.Observer = b.cfg.Observer
	}
	ctrl, err := area.NewFromState(cfg, st)
	if err != nil {
		b.cfg.Logf("%s: promotion failed: %v", b.cfg.ID, err)
		return nil
	}
	return ctrl
}
