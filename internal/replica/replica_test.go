package replica

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mykil/internal/area"
	"mykil/internal/crypt"
	"mykil/internal/keytree"
	"mykil/internal/obs"
	"mykil/internal/simnet"
	"mykil/internal/transport"
	"mykil/internal/wire"
)

var (
	testPoolOnce sync.Once
	testPool     *crypt.Pool
)

func keyPair(t *testing.T) *crypt.KeyPair {
	t.Helper()
	testPoolOnce.Do(func() {
		testPool = crypt.NewPool(512)
		if err := testPool.Warm(4); err != nil {
			t.Fatalf("warming pool: %v", err)
		}
	})
	kp, err := testPool.Get()
	if err != nil {
		t.Fatalf("key pair: %v", err)
	}
	return kp
}

// rig hosts a backup plus a hand-driven "primary" endpoint.
type rig struct {
	t        *testing.T
	net      *simnet.Network
	backup   *Backup
	primary  transport.Transport
	priKeys  *crypt.KeyPair
	backKeys *crypt.KeyPair
}

func newRig(t *testing.T, mutate func(*Config)) *rig {
	t.Helper()
	r := &rig{
		t:        t,
		net:      simnet.New(simnet.Config{}),
		priKeys:  keyPair(t),
		backKeys: keyPair(t),
	}
	var err error
	r.primary, err = transport.NewSim(r.net, "primary")
	if err != nil {
		t.Fatalf("primary transport: %v", err)
	}
	backTr, err := transport.NewSim(r.net, "backup")
	if err != nil {
		t.Fatalf("backup transport: %v", err)
	}
	cfg := Config{
		ID:             "backup",
		Transport:      backTr,
		Keys:           r.backKeys,
		PrimaryID:      "primary",
		PrimaryPub:     r.priKeys.Public(),
		HeartbeatEvery: 20 * time.Millisecond,
		ControllerConfig: area.Config{
			KShared: crypt.NewSymKey(),
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	r.backup = b
	b.Start()
	t.Cleanup(func() {
		b.Close()
		if ctrl, err := b.Promoted(); err == nil {
			ctrl.Close()
		}
		_ = backTr.Close()
		_ = r.primary.Close()
		r.net.Close()
	})
	return r
}

// sampleState builds a one-member area state.
func sampleState(t *testing.T, memberKeys *crypt.KeyPair) *area.State {
	t.Helper()
	tree := keytree.New(keytree.Config{Arity: 2})
	if _, err := tree.Join("m1"); err != nil {
		t.Fatalf("tree join: %v", err)
	}
	return &area.State{
		AreaID: "area-0",
		Tree:   tree.Export(),
		Members: []area.MemberState{{
			ID:     "m1",
			Addr:   "m1",
			PubDER: memberKeys.Public().Marshal(),
		}},
		Seq: 1,
	}
}

// sendSync ships a signed state snapshot from the primary endpoint.
func (r *rig) sendSync(st *area.State, seq uint64, signer *crypt.KeyPair) {
	r.t.Helper()
	blob, err := area.EncodeState(st)
	if err != nil {
		r.t.Fatalf("EncodeState: %v", err)
	}
	body, err := wire.SealBody(r.backKeys.Public(), wire.ReplicaSync{
		AreaID: st.AreaID, Seq: seq, State: blob,
	})
	if err != nil {
		r.t.Fatalf("SealBody: %v", err)
	}
	f := &wire.Frame{Kind: wire.KindReplicaSync, From: "primary", Body: body, Sig: signer.Sign(body)}
	if err := r.primary.Send("backup", f); err != nil {
		r.t.Fatalf("Send: %v", err)
	}
}

// sendHeartbeat ships one signed heartbeat.
func (r *rig) sendHeartbeat(seq uint64) {
	r.t.Helper()
	body, err := wire.PlainBody(wire.ReplicaHeartbeat{AreaID: "area-0", Seq: seq})
	if err != nil {
		r.t.Fatal(err)
	}
	f := &wire.Frame{Kind: wire.KindReplicaHeartbeat, From: "primary", Body: body, Sig: r.priKeys.Sign(body)}
	if err := r.primary.Send("backup", f); err != nil {
		r.t.Fatal(err)
	}
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	kp := keyPair(t)
	n := simnet.New(simnet.Config{})
	defer n.Close()
	tr, err := transport.NewSim(n, "b")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	// HeartbeatEvery is only a bootstrap value now — the primary carries
	// the authoritative cadence in every segment push — so omitting it
	// must default rather than fail.
	r, err := New(Config{ID: "b", Transport: tr, Keys: kp, PrimaryID: "p", PrimaryPub: kp.Public()})
	if err != nil {
		t.Errorf("config without HeartbeatEvery rejected: %v", err)
	} else if r.hbEvery != DefaultHeartbeatEvery {
		t.Errorf("hbEvery = %v, want %v", r.hbEvery, DefaultHeartbeatEvery)
	}
	if _, err := New(Config{ID: "b", Transport: tr, Keys: kp, PrimaryID: "p", PrimaryPub: kp.Public(),
		Peers: []Peer{{ID: "x"}}}); err == nil {
		t.Error("peer without Addr/Pub accepted")
	}
}

func TestAbsorbsStateAndStaysQuietWhileHeartbeating(t *testing.T) {
	r := newRig(t, nil)
	st := sampleState(t, keyPair(t))
	r.sendSync(st, 1, r.priKeys)
	waitFor(t, "state absorption", 5*time.Second, r.backup.HasState)
	if r.backup.StateMembers() != 1 {
		t.Errorf("StateMembers = %d", r.backup.StateMembers())
	}

	// Keep heartbeats flowing well past the takeover window; the backup
	// must not promote.
	for i := 0; i < 10; i++ {
		r.sendHeartbeat(uint64(i))
		time.Sleep(15 * time.Millisecond)
	}
	if _, err := r.backup.Promoted(); !errors.Is(err, ErrNotPromoted) {
		t.Error("backup promoted despite live primary")
	}
}

func TestRejectsForgedSync(t *testing.T) {
	r := newRig(t, nil)
	st := sampleState(t, keyPair(t))
	attacker := keyPair(t)
	r.sendSync(st, 1, attacker)
	time.Sleep(60 * time.Millisecond)
	if r.backup.HasState() {
		t.Error("forged sync absorbed")
	}
}

func TestIgnoresStaleSyncSeq(t *testing.T) {
	r := newRig(t, nil)
	st := sampleState(t, keyPair(t))
	r.sendSync(st, 5, r.priKeys)
	waitFor(t, "first sync", 5*time.Second, r.backup.HasState)

	// An older (replayed) snapshot must not overwrite the newer one.
	empty := &area.State{AreaID: "area-0", Tree: keytree.New(keytree.Config{}).Export(), Seq: 2}
	r.sendSync(empty, 2, r.priKeys)
	time.Sleep(60 * time.Millisecond)
	if r.backup.StateMembers() != 1 {
		t.Errorf("stale sync replaced state: members = %d", r.backup.StateMembers())
	}
	if r.backup.SyncCount() != 1 {
		t.Errorf("SyncCount = %d, want 1", r.backup.SyncCount())
	}
}

func TestRejectsCorruptStateBlob(t *testing.T) {
	r := newRig(t, nil)
	body, err := wire.SealBody(r.backKeys.Public(), wire.ReplicaSync{
		AreaID: "area-0", Seq: 1, State: []byte("not a state blob"),
	})
	if err != nil {
		t.Fatal(err)
	}
	f := &wire.Frame{Kind: wire.KindReplicaSync, From: "primary", Body: body, Sig: r.priKeys.Sign(body)}
	if err := r.primary.Send("backup", f); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	if r.backup.HasState() {
		t.Error("corrupt state blob absorbed")
	}
}

func TestPromotesAfterSilence(t *testing.T) {
	promoted := make(chan *area.Controller, 1)
	r := newRig(t, func(c *Config) {
		c.TakeoverAfter = 60 * time.Millisecond
		c.OnPromote = func(ctrl *area.Controller) { promoted <- ctrl }
	})
	memberKP := keyPair(t)
	r.sendSync(sampleState(t, memberKP), 1, r.priKeys)
	waitFor(t, "sync", 5*time.Second, r.backup.HasState)
	r.sendHeartbeat(1)
	// Now go silent; promotion must follow.
	select {
	case ctrl := <-promoted:
		if !ctrl.HasMember("m1") {
			t.Error("promoted controller lost the member")
		}
		got, err := r.backup.Promoted()
		if err != nil || got != ctrl {
			t.Errorf("Promoted() = %v, %v", got, err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no promotion after primary silence")
	}
}

func TestNoPromotionWithoutState(t *testing.T) {
	r := newRig(t, func(c *Config) { c.TakeoverAfter = 40 * time.Millisecond })
	r.sendHeartbeat(1) // heartbeat but never a snapshot
	time.Sleep(300 * time.Millisecond)
	if _, err := r.backup.Promoted(); !errors.Is(err, ErrNotPromoted) {
		t.Error("promoted without any replicated state")
	}
}

func TestNoPromotionBeforeFirstContact(t *testing.T) {
	r := newRig(t, func(c *Config) { c.TakeoverAfter = 40 * time.Millisecond })
	// Total silence from the start: the backup has never seen the
	// primary, so it must not declare it dead.
	time.Sleep(300 * time.Millisecond)
	if _, err := r.backup.Promoted(); !errors.Is(err, ErrNotPromoted) {
		t.Error("promoted before first primary contact")
	}
}

// electionRig hosts n replicas of one area plus a hand-driven primary
// endpoint, for exercising the quorum election layer directly.
type electionRig struct {
	t       *testing.T
	net     *simnet.Network
	primary transport.Transport
	priKeys *crypt.KeyPair
	reps    []*Replica
	keys    []*crypt.KeyPair
}

func newElectionRig(t *testing.T, n int, takeover time.Duration, mutate func(i int, c *Config)) *electionRig {
	t.Helper()
	r := &electionRig{t: t, net: simnet.New(simnet.Config{}), priKeys: keyPair(t)}
	var err error
	r.primary, err = transport.NewSim(r.net, "primary")
	if err != nil {
		t.Fatalf("primary transport: %v", err)
	}
	peers := make([]Peer, n)
	trs := make([]transport.Transport, n)
	for i := 0; i < n; i++ {
		r.keys = append(r.keys, keyPair(t))
		id := fmt.Sprintf("r%d", i)
		trs[i], err = transport.NewSim(r.net, id)
		if err != nil {
			t.Fatalf("transport %s: %v", id, err)
		}
		peers[i] = Peer{ID: id, Addr: id, Pub: r.keys[i].Public()}
	}
	kShared := crypt.NewSymKey()
	for i := 0; i < n; i++ {
		others := make([]Peer, 0, n-1)
		survivors := make([]area.PeerInfo, 0, n-1)
		for o := 0; o < n; o++ {
			if o != i {
				others = append(others, peers[o])
				survivors = append(survivors, area.PeerInfo{ID: peers[o].ID, Addr: peers[o].Addr, Pub: peers[o].Pub})
			}
		}
		cfg := Config{
			ID:             peers[i].ID,
			Transport:      trs[i],
			Keys:           r.keys[i],
			PrimaryID:      "primary",
			PrimaryPub:     r.priKeys.Public(),
			HeartbeatEvery: 20 * time.Millisecond,
			TakeoverAfter:  takeover,
			Peers:          others,
			Announcer:      i == 0,
			// A winner must keep heartbeating the surviving replicas, or
			// their silence timers fire a second election against it.
			ControllerConfig: area.Config{
				AreaID:         "area-0",
				KShared:        kShared,
				Replicas:       survivors,
				HeartbeatEvery: 20 * time.Millisecond,
			},
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		rep, err := New(cfg)
		if err != nil {
			t.Fatalf("New r%d: %v", i, err)
		}
		r.reps = append(r.reps, rep)
		rep.Start()
	}
	t.Cleanup(func() {
		for _, rep := range r.reps {
			rep.Close()
			if ctrl, err := rep.Promoted(); err == nil {
				ctrl.Close()
			}
		}
		for _, tr := range trs {
			_ = tr.Close()
		}
		_ = r.primary.Close()
		r.net.Close()
	})
	return r
}

// syncTo ships a signed, sealed state snapshot to one replica.
func (r *electionRig) syncTo(i int, st *area.State, seq uint64) {
	r.t.Helper()
	blob, err := area.EncodeState(st)
	if err != nil {
		r.t.Fatalf("EncodeState: %v", err)
	}
	body, err := wire.SealBody(r.keys[i].Public(), wire.ReplicaSync{
		AreaID: st.AreaID, Seq: seq, State: blob,
	})
	if err != nil {
		r.t.Fatalf("SealBody: %v", err)
	}
	f := &wire.Frame{Kind: wire.KindReplicaSync, From: "primary", Body: body, Sig: r.priKeys.Sign(body)}
	if err := r.primary.Send(r.reps[i].cfg.ID, f); err != nil {
		r.t.Fatalf("Send: %v", err)
	}
}

// promotedCount reports how many replicas promoted a controller.
func (r *electionRig) promotedCount() int {
	n := 0
	for _, rep := range r.reps {
		if _, err := rep.Promoted(); err == nil {
			n++
		}
	}
	return n
}

// TestElectionSingleWinnerAtEqualLSN: three equally caught-up replicas
// lose their primary; exactly one must assemble a quorum and promote
// (the rank stagger biases the outcome toward the highest candidate ID,
// but the hard guarantee under arbitrary scheduling is single-winner),
// and the losers must re-point their monitoring at the winner.
func TestElectionSingleWinnerAtEqualLSN(t *testing.T) {
	r := newElectionRig(t, 3, 60*time.Millisecond, nil)
	st := sampleState(t, keyPair(t))
	for i := 0; i < 3; i++ {
		r.syncTo(i, st, 1)
	}
	for i := 0; i < 3; i++ {
		rep := r.reps[i]
		waitFor(t, "sync absorption", 5*time.Second, rep.HasState)
	}
	// Primary goes silent; quorum election follows.
	waitFor(t, "election winner", 10*time.Second, func() bool {
		return r.promotedCount() >= 1
	})
	// Give a racing second candidacy every chance to (wrongly) land,
	// then check the winner's Coordinator suppressed the losers.
	time.Sleep(150 * time.Millisecond)
	if got := r.promotedCount(); got != 1 {
		var who []string
		for _, rep := range r.reps {
			if _, err := rep.Promoted(); err == nil {
				who = append(who, rep.cfg.ID)
			}
		}
		t.Fatalf("%d replicas promoted (%v), want exactly 1", got, who)
	}
	var winner *Replica
	for _, rep := range r.reps {
		if _, err := rep.Promoted(); err == nil {
			winner = rep
		}
	}
	ctrl, _ := winner.Promoted()
	if !ctrl.HasMember("m1") {
		t.Error("winner lost the replicated member")
	}
	if got := winner.Stats().Value(obs.MetricElections); got != 1 {
		t.Errorf("%s = %d, want 1", obs.MetricElections, got)
	}
	for _, rep := range r.reps {
		if rep == winner {
			continue
		}
		rep.mu.Lock()
		adopted := rep.primaryID
		rep.mu.Unlock()
		if adopted != winner.cfg.ID {
			t.Errorf("%s still watches %q, want winner %q", rep.cfg.ID, adopted, winner.cfg.ID)
		}
	}
}

// TestElectionPrefersHigherLSN: a replica holding a longer replicated
// log must beat a peer with a higher ID but a shorter log.
func TestElectionPrefersHigherLSN(t *testing.T) {
	r := newElectionRig(t, 2, 60*time.Millisecond, nil)
	st := sampleState(t, keyPair(t))
	r.syncTo(0, st, 7) // r0 is further ahead...
	r.syncTo(1, st, 3) // ...than the higher-ID r1
	waitFor(t, "syncs", 5*time.Second, func() bool {
		return r.reps[0].HasState() && r.reps[1].HasState()
	})
	waitFor(t, "r0 wins on LSN", 10*time.Second, func() bool {
		_, err := r.reps[0].Promoted()
		return err == nil
	})
	time.Sleep(150 * time.Millisecond)
	if _, err := r.reps[1].Promoted(); err == nil {
		t.Error("shorter-log replica promoted too")
	}
}

// TestNoQuorumNoPromotion: a candidate that cannot reach a quorum of its
// peers must never promote, however long the primary stays silent.
func TestNoQuorumNoPromotion(t *testing.T) {
	r := newElectionRig(t, 3, 60*time.Millisecond, nil)
	st := sampleState(t, keyPair(t))
	r.syncTo(0, st, 1)
	waitFor(t, "sync", 5*time.Second, r.reps[0].HasState)
	// Kill both peers: r0 can campaign but never collect a second vote.
	r.net.Crash("r1")
	r.net.Crash("r2")
	time.Sleep(400 * time.Millisecond)
	if _, err := r.reps[0].Promoted(); err == nil {
		t.Error("promoted without a quorum")
	}
}
