package replica

import (
	"errors"
	"sync"
	"testing"
	"time"

	"mykil/internal/area"
	"mykil/internal/crypt"
	"mykil/internal/keytree"
	"mykil/internal/simnet"
	"mykil/internal/transport"
	"mykil/internal/wire"
)

var (
	testPoolOnce sync.Once
	testPool     *crypt.Pool
)

func keyPair(t *testing.T) *crypt.KeyPair {
	t.Helper()
	testPoolOnce.Do(func() {
		testPool = crypt.NewPool(512)
		if err := testPool.Warm(4); err != nil {
			t.Fatalf("warming pool: %v", err)
		}
	})
	kp, err := testPool.Get()
	if err != nil {
		t.Fatalf("key pair: %v", err)
	}
	return kp
}

// rig hosts a backup plus a hand-driven "primary" endpoint.
type rig struct {
	t        *testing.T
	net      *simnet.Network
	backup   *Backup
	primary  transport.Transport
	priKeys  *crypt.KeyPair
	backKeys *crypt.KeyPair
}

func newRig(t *testing.T, mutate func(*Config)) *rig {
	t.Helper()
	r := &rig{
		t:        t,
		net:      simnet.New(simnet.Config{}),
		priKeys:  keyPair(t),
		backKeys: keyPair(t),
	}
	var err error
	r.primary, err = transport.NewSim(r.net, "primary")
	if err != nil {
		t.Fatalf("primary transport: %v", err)
	}
	backTr, err := transport.NewSim(r.net, "backup")
	if err != nil {
		t.Fatalf("backup transport: %v", err)
	}
	cfg := Config{
		ID:             "backup",
		Transport:      backTr,
		Keys:           r.backKeys,
		PrimaryID:      "primary",
		PrimaryPub:     r.priKeys.Public(),
		HeartbeatEvery: 20 * time.Millisecond,
		ControllerConfig: area.Config{
			KShared: crypt.NewSymKey(),
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	r.backup = b
	b.Start()
	t.Cleanup(func() {
		b.Close()
		if ctrl, err := b.Promoted(); err == nil {
			ctrl.Close()
		}
		_ = backTr.Close()
		_ = r.primary.Close()
		r.net.Close()
	})
	return r
}

// sampleState builds a one-member area state.
func sampleState(t *testing.T, memberKeys *crypt.KeyPair) *area.State {
	t.Helper()
	tree := keytree.New(keytree.Config{Arity: 2})
	if _, err := tree.Join("m1"); err != nil {
		t.Fatalf("tree join: %v", err)
	}
	return &area.State{
		AreaID: "area-0",
		Tree:   tree.Export(),
		Members: []area.MemberState{{
			ID:     "m1",
			Addr:   "m1",
			PubDER: memberKeys.Public().Marshal(),
		}},
		Seq: 1,
	}
}

// sendSync ships a signed state snapshot from the primary endpoint.
func (r *rig) sendSync(st *area.State, seq uint64, signer *crypt.KeyPair) {
	r.t.Helper()
	blob, err := area.EncodeState(st)
	if err != nil {
		r.t.Fatalf("EncodeState: %v", err)
	}
	body, err := wire.SealBody(r.backKeys.Public(), wire.ReplicaSync{
		AreaID: st.AreaID, Seq: seq, State: blob,
	})
	if err != nil {
		r.t.Fatalf("SealBody: %v", err)
	}
	f := &wire.Frame{Kind: wire.KindReplicaSync, From: "primary", Body: body, Sig: signer.Sign(body)}
	if err := r.primary.Send("backup", f); err != nil {
		r.t.Fatalf("Send: %v", err)
	}
}

// sendHeartbeat ships one signed heartbeat.
func (r *rig) sendHeartbeat(seq uint64) {
	r.t.Helper()
	body, err := wire.PlainBody(wire.ReplicaHeartbeat{AreaID: "area-0", Seq: seq})
	if err != nil {
		r.t.Fatal(err)
	}
	f := &wire.Frame{Kind: wire.KindReplicaHeartbeat, From: "primary", Body: body, Sig: r.priKeys.Sign(body)}
	if err := r.primary.Send("backup", f); err != nil {
		r.t.Fatal(err)
	}
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	kp := keyPair(t)
	n := simnet.New(simnet.Config{})
	defer n.Close()
	tr, err := transport.NewSim(n, "b")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	if _, err := New(Config{ID: "b", Transport: tr, Keys: kp, PrimaryID: "p", PrimaryPub: kp.Public()}); err == nil {
		t.Error("config without HeartbeatEvery accepted")
	}
}

func TestAbsorbsStateAndStaysQuietWhileHeartbeating(t *testing.T) {
	r := newRig(t, nil)
	st := sampleState(t, keyPair(t))
	r.sendSync(st, 1, r.priKeys)
	waitFor(t, "state absorption", 5*time.Second, r.backup.HasState)
	if r.backup.StateMembers() != 1 {
		t.Errorf("StateMembers = %d", r.backup.StateMembers())
	}

	// Keep heartbeats flowing well past the takeover window; the backup
	// must not promote.
	for i := 0; i < 10; i++ {
		r.sendHeartbeat(uint64(i))
		time.Sleep(15 * time.Millisecond)
	}
	if _, err := r.backup.Promoted(); !errors.Is(err, ErrNotPromoted) {
		t.Error("backup promoted despite live primary")
	}
}

func TestRejectsForgedSync(t *testing.T) {
	r := newRig(t, nil)
	st := sampleState(t, keyPair(t))
	attacker := keyPair(t)
	r.sendSync(st, 1, attacker)
	time.Sleep(60 * time.Millisecond)
	if r.backup.HasState() {
		t.Error("forged sync absorbed")
	}
}

func TestIgnoresStaleSyncSeq(t *testing.T) {
	r := newRig(t, nil)
	st := sampleState(t, keyPair(t))
	r.sendSync(st, 5, r.priKeys)
	waitFor(t, "first sync", 5*time.Second, r.backup.HasState)

	// An older (replayed) snapshot must not overwrite the newer one.
	empty := &area.State{AreaID: "area-0", Tree: keytree.New(keytree.Config{}).Export(), Seq: 2}
	r.sendSync(empty, 2, r.priKeys)
	time.Sleep(60 * time.Millisecond)
	if r.backup.StateMembers() != 1 {
		t.Errorf("stale sync replaced state: members = %d", r.backup.StateMembers())
	}
	if r.backup.SyncCount() != 1 {
		t.Errorf("SyncCount = %d, want 1", r.backup.SyncCount())
	}
}

func TestRejectsCorruptStateBlob(t *testing.T) {
	r := newRig(t, nil)
	body, err := wire.SealBody(r.backKeys.Public(), wire.ReplicaSync{
		AreaID: "area-0", Seq: 1, State: []byte("not a state blob"),
	})
	if err != nil {
		t.Fatal(err)
	}
	f := &wire.Frame{Kind: wire.KindReplicaSync, From: "primary", Body: body, Sig: r.priKeys.Sign(body)}
	if err := r.primary.Send("backup", f); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	if r.backup.HasState() {
		t.Error("corrupt state blob absorbed")
	}
}

func TestPromotesAfterSilence(t *testing.T) {
	promoted := make(chan *area.Controller, 1)
	r := newRig(t, func(c *Config) {
		c.TakeoverAfter = 60 * time.Millisecond
		c.OnPromote = func(ctrl *area.Controller) { promoted <- ctrl }
	})
	memberKP := keyPair(t)
	r.sendSync(sampleState(t, memberKP), 1, r.priKeys)
	waitFor(t, "sync", 5*time.Second, r.backup.HasState)
	r.sendHeartbeat(1)
	// Now go silent; promotion must follow.
	select {
	case ctrl := <-promoted:
		if !ctrl.HasMember("m1") {
			t.Error("promoted controller lost the member")
		}
		got, err := r.backup.Promoted()
		if err != nil || got != ctrl {
			t.Errorf("Promoted() = %v, %v", got, err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no promotion after primary silence")
	}
}

func TestNoPromotionWithoutState(t *testing.T) {
	r := newRig(t, func(c *Config) { c.TakeoverAfter = 40 * time.Millisecond })
	r.sendHeartbeat(1) // heartbeat but never a snapshot
	time.Sleep(300 * time.Millisecond)
	if _, err := r.backup.Promoted(); !errors.Is(err, ErrNotPromoted) {
		t.Error("promoted without any replicated state")
	}
}

func TestNoPromotionBeforeFirstContact(t *testing.T) {
	r := newRig(t, func(c *Config) { c.TakeoverAfter = 40 * time.Millisecond })
	// Total silence from the start: the backup has never seen the
	// primary, so it must not declare it dead.
	time.Sleep(300 * time.Millisecond)
	if _, err := r.backup.Promoted(); !errors.Is(err, ErrNotPromoted) {
		t.Error("promoted before first primary contact")
	}
}
