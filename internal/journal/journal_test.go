package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// openT opens a journal in dir, failing the test on error.
func openT(t *testing.T, opts Options) (*Journal, *Recovery) {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	j, rec, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", opts.Dir, err)
	}
	return j, rec
}

func payloadN(i int) []byte { return []byte(fmt.Sprintf("record-%04d", i)) }

func TestAppendAndRecover(t *testing.T) {
	dir := t.TempDir()
	j, rec := openT(t, Options{Dir: dir})
	if !rec.Empty() {
		t.Fatalf("fresh journal reported recovery state: %+v", rec)
	}
	const n = 25
	for i := 0; i < n; i++ {
		lsn, err := j.Append(payloadN(i))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("append %d got LSN %d", i, lsn)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, rec2 := openT(t, Options{Dir: dir})
	defer j2.Close()
	if rec2.Snapshot != nil {
		t.Fatal("unexpected snapshot")
	}
	if len(rec2.Records) != n {
		t.Fatalf("recovered %d records, want %d", len(rec2.Records), n)
	}
	for i, p := range rec2.Records {
		if !bytes.Equal(p, payloadN(i)) {
			t.Fatalf("record %d = %q, want %q", i, p, payloadN(i))
		}
	}
	if got := j2.NextLSN(); got != n+1 {
		t.Fatalf("NextLSN = %d, want %d", got, n+1)
	}
}

func TestSnapshotAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation so compaction has something to delete.
	j, _ := openT(t, Options{Dir: dir, SegmentBytes: 64, KeepSnapshots: 1})
	for i := 0; i < 10; i++ {
		if _, err := j.Append(payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Snapshot([]byte("state@10")); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 14; i++ {
		if _, err := j.Append(payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Compaction must have removed segments fully covered by the snapshot.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(segs) >= 10 {
		t.Fatalf("compaction left %d segments", len(segs))
	}

	j2, rec := openT(t, Options{Dir: dir})
	defer j2.Close()
	if string(rec.Snapshot) != "state@10" {
		t.Fatalf("snapshot = %q", rec.Snapshot)
	}
	if rec.SnapshotLSN != 10 {
		t.Fatalf("SnapshotLSN = %d", rec.SnapshotLSN)
	}
	if len(rec.Records) != 4 {
		t.Fatalf("replay tail has %d records, want 4", len(rec.Records))
	}
	for i, p := range rec.Records {
		if !bytes.Equal(p, payloadN(10+i)) {
			t.Fatalf("tail record %d = %q", i, p)
		}
	}
}

func TestNewerSnapshotWins(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, Options{Dir: dir})
	for i := 0; i < 3; i++ {
		if _, err := j.Append(payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Snapshot([]byte("old")); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(payloadN(3)); err != nil {
		t.Fatal(err)
	}
	if err := j.Snapshot([]byte("new")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, rec := openT(t, Options{Dir: dir})
	defer j2.Close()
	if string(rec.Snapshot) != "new" || rec.SnapshotLSN != 4 || len(rec.Records) != 0 {
		t.Fatalf("recovery = snap %q @%d + %d records", rec.Snapshot, rec.SnapshotLSN, len(rec.Records))
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, Options{Dir: dir})
	for i := 0; i < 3; i++ {
		if _, err := j.Append(payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Snapshot([]byte("good")); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(payloadN(3)); err != nil {
		t.Fatal(err)
	}
	if err := j.Snapshot([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Flip a payload byte in the newest snapshot; recovery must fall back
	// to the older one and replay the records past it.
	name := filepath.Join(dir, "snap-0000000000000004.snap")
	b, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-5] ^= 0xFF
	if err := os.WriteFile(name, b, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rec := openT(t, Options{Dir: dir})
	defer j2.Close()
	if string(rec.Snapshot) != "good" || rec.SnapshotLSN != 3 {
		t.Fatalf("fell back to snap %q @%d", rec.Snapshot, rec.SnapshotLSN)
	}
	if len(rec.Records) != 1 || !bytes.Equal(rec.Records[0], payloadN(3)) {
		t.Fatalf("replay tail = %q", rec.Records)
	}
}

func TestAbandonLosesNothingWithFsyncAlways(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, Options{Dir: dir, Fsync: FsyncAlways})
	for i := 0; i < 5; i++ {
		if _, err := j.Append(payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Abandon() // crash: close fds without the Close-path sync

	j2, rec := openT(t, Options{Dir: dir})
	defer j2.Close()
	if len(rec.Records) != 5 {
		t.Fatalf("recovered %d records after crash, want 5", len(rec.Records))
	}
}

func TestClosedJournalErrors(t *testing.T) {
	j, _ := openT(t, Options{Dir: t.TempDir()})
	j.Close()
	if _, err := j.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close: %v", err)
	}
	if err := j.Snapshot([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Snapshot after Close: %v", err)
	}
	if err := j.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after Close: %v", err)
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
		ok   bool
	}{
		{"always", FsyncAlways, true},
		{"", FsyncAlways, true},
		{"interval", FsyncInterval, true},
		{"never", FsyncNever, true},
		{"sometimes", 0, false},
	} {
		got, err := ParseFsyncPolicy(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		back, err := ParseFsyncPolicy(p.String())
		if err != nil || back != p {
			t.Errorf("round trip %v: %v, %v", p, back, err)
		}
	}
}

// TestCrashConsistency is the satellite crash suite: build a small log,
// then truncate the (single) segment at EVERY byte offset and require
// recovery to yield a valid prefix of the original records — never an
// error, never a mangled or reordered record, and appends must work
// afterwards. This simulates a kill at each possible point of a torn
// final write.
func TestCrashConsistency(t *testing.T) {
	master := t.TempDir()
	j, _ := openT(t, Options{Dir: master})
	const n = 8
	for i := 0; i < n; i++ {
		if _, err := j.Append(payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	segs, err := filepath.Glob(filepath.Join(master, "seg-*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want 1 segment, got %v (%v)", segs, err)
	}
	full, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	segBase := filepath.Base(segs[0])

	for cut := 0; cut <= len(full); cut++ {
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("cut-%d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segBase), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, rec, err := Open(Options{Dir: dir, Logf: func(string, ...any) {}})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		// Every recovered record must be an exact prefix of the originals.
		if len(rec.Records) > n {
			t.Fatalf("cut=%d: recovered %d records from a %d-record log", cut, len(rec.Records), n)
		}
		for i, p := range rec.Records {
			if !bytes.Equal(p, payloadN(i)) {
				t.Fatalf("cut=%d: record %d = %q, want %q", cut, i, p, payloadN(i))
			}
		}
		// The journal must accept new appends at the right LSN and
		// recover them on a further reopen (no second-crash amnesia).
		lsn, err := j2.Append([]byte("post-crash"))
		if err != nil {
			t.Fatalf("cut=%d: post-crash append: %v", cut, err)
		}
		if want := uint64(len(rec.Records)) + 1; lsn != want {
			t.Fatalf("cut=%d: post-crash LSN %d, want %d", cut, lsn, want)
		}
		if err := j2.Close(); err != nil {
			t.Fatalf("cut=%d: Close: %v", cut, err)
		}
		j3, rec3, err := Open(Options{Dir: dir, Logf: func(string, ...any) {}})
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		if want := len(rec.Records) + 1; len(rec3.Records) != want {
			t.Fatalf("cut=%d: reopen recovered %d records, want %d", cut, len(rec3.Records), want)
		}
		j3.Close()
	}
}

// TestCrashConsistencyWithSnapshot repeats the cut sweep with a snapshot
// in place: however the tail is torn, the snapshot plus a record prefix
// must survive.
func TestCrashConsistencyWithSnapshot(t *testing.T) {
	master := t.TempDir()
	j, _ := openT(t, Options{Dir: master})
	for i := 0; i < 4; i++ {
		if _, err := j.Append(payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Snapshot([]byte("snap@4")); err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 8; i++ {
		if _, err := j.Append(payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	// Records 5..8 live in the post-snapshot portion of the segment; cut
	// the segment at every offset and require snapshot + prefix.
	segs, err := filepath.Glob(filepath.Join(master, "seg-*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want 1 segment, got %v (%v)", segs, err)
	}
	full, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	snapB, err := os.ReadFile(filepath.Join(master, "snap-0000000000000004.snap"))
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(full); cut++ {
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("cut-%d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(segs[0])), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "snap-0000000000000004.snap"), snapB, 0o644); err != nil {
			t.Fatal(err)
		}
		j2, rec, err := Open(Options{Dir: dir, Logf: func(string, ...any) {}})
		if err != nil {
			// A cut below the snapshot's covered LSN loses records the
			// snapshot claims — recovery must refuse loudly, not
			// fabricate state. (Impossible under the fsync invariant:
			// Snapshot syncs the log first.)
			continue
		}
		if string(rec.Snapshot) != "snap@4" || rec.SnapshotLSN != 4 {
			t.Fatalf("cut=%d: snapshot %q @%d", cut, rec.Snapshot, rec.SnapshotLSN)
		}
		if len(rec.Records) > 4 {
			t.Fatalf("cut=%d: %d tail records", cut, len(rec.Records))
		}
		for i, p := range rec.Records {
			if !bytes.Equal(p, payloadN(4+i)) {
				t.Fatalf("cut=%d: tail record %d = %q", cut, i, p)
			}
		}
		j2.Close()
	}
}

// TestSegmentRotationChain verifies multi-segment recovery ordering and
// that a gap in the chain is a hard error rather than silent data loss.
func TestSegmentRotationChain(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, Options{Dir: dir, SegmentBytes: 48})
	const n = 12
	for i := 0; i < n; i++ {
		if _, err := j.Append(payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(segs) < 3 {
		t.Fatalf("rotation produced only %d segments", len(segs))
	}

	j2, rec := openT(t, Options{Dir: dir})
	if len(rec.Records) != n {
		t.Fatalf("recovered %d records across segments, want %d", len(rec.Records), n)
	}
	j2.Close()

	// Remove a middle segment: the chain has a hole, recovery must fail.
	sortedSegs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err := os.Remove(sortedSegs[1]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir, Logf: func(string, ...any) {}}); err == nil {
		t.Fatal("recovery with a missing middle segment did not fail")
	}
}

// TestCorruptMiddleSegmentFails: corruption anywhere but the final
// segment means acknowledged records are unrecoverable — a hard error.
func TestCorruptMiddleSegmentFails(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, Options{Dir: dir, SegmentBytes: 48})
	for i := 0; i < 12; i++ {
		if _, err := j.Append(payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(segs) < 3 {
		t.Fatalf("want ≥3 segments, got %d", len(segs))
	}
	b, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xFF
	if err := os.WriteFile(segs[0], b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir, Logf: func(string, ...any) {}}); err == nil {
		t.Fatal("recovery with a corrupt non-final segment did not fail")
	}
}
