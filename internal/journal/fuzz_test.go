package journal

import (
	"bytes"
	"testing"
)

// FuzzJournalRecord hardens the record framing against arbitrary disk
// bytes — the exact input recovery faces after a crash. Any input must
// produce an error or a valid record, never a panic and never an
// allocation beyond the input; a successful decode must re-encode to the
// identical consumed bytes (the framing is canonical), and decoding must
// resume correctly at the reported frame boundary.
func FuzzJournalRecord(f *testing.F) {
	f.Add(AppendRecord(nil, []byte("hello")))
	f.Add(AppendRecord(nil, nil))
	f.Add(AppendRecord(AppendRecord(nil, []byte("a")), []byte("b")))
	f.Add([]byte{})
	f.Add([]byte{0x05, 'h', 'i'})                           // torn payload
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}) // huge claimed length
	f.Add([]byte{0x80, 0x00, 0x00, 0x00, 0x00, 0x00})       // non-minimal zero
	f.Fuzz(func(t *testing.T, data []byte) {
		off := 0
		for off < len(data) {
			payload, n, err := ReadRecord(data[off:])
			if err != nil {
				return
			}
			if n <= 0 || off+n > len(data) {
				t.Fatalf("frame length %d escapes input (off %d, len %d)", n, off, len(data))
			}
			if len(payload) > n {
				t.Fatalf("payload %d bytes from a %d-byte frame", len(payload), n)
			}
			if re := AppendRecord(nil, payload); !bytes.Equal(re, data[off:off+n]) {
				t.Fatalf("framing not canonical:\n in: %x\nout: %x", data[off:off+n], re)
			}
			off += n
		}
	})
}
