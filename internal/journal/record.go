// Record framing. Every journal record — in a segment or a snapshot — is
// one self-checking frame:
//
//	uvarint payload length | payload | 4-byte little-endian CRC32C(payload)
//
// The CRC trails the payload so an append is a single sequential write,
// and a torn write (truncated length, truncated payload, or missing CRC)
// is detected at any byte offset. CRC32C (Castagnoli) is hardware-
// accelerated on every platform the repo targets.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/bits"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Framing errors. ErrTorn means the buffer ended inside a frame — the
// expected signature of a crash mid-append; ErrCorrupt means the frame is
// complete but its bytes are wrong (CRC mismatch or a non-canonical
// length prefix).
var (
	ErrTorn    = errors.New("journal: torn record")
	ErrCorrupt = errors.New("journal: corrupt record")
)

// recordOverhead is the framing cost beyond the payload for a payload of
// length n: the uvarint prefix plus the CRC.
func recordOverhead(n int) int {
	return uvarintLen(uint64(n)) + crcLen
}

const crcLen = 4

func uvarintLen(v uint64) int { return (bits.Len64(v|1) + 6) / 7 }

// AppendRecord appends one framed record to b.
func AppendRecord(b, payload []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(payload)))
	b = append(b, payload...)
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(payload, castagnoli))
}

// ReadRecord decodes the record at the start of b, returning the payload
// and the total frame length consumed. The payload aliases b; callers
// that retain it must copy. Errors are ErrTorn for a frame the buffer
// ends inside, ErrCorrupt for a checksum or encoding violation; a decoder
// never allocates more than the buffer holds.
func ReadRecord(b []byte) (payload []byte, n int, err error) {
	size, hdr := binary.Uvarint(b)
	switch {
	case hdr == 0:
		return nil, 0, ErrTorn
	case hdr < 0:
		return nil, 0, fmt.Errorf("%w: length prefix overflows", ErrCorrupt)
	case hdr != uvarintLen(size):
		return nil, 0, fmt.Errorf("%w: non-minimal length prefix", ErrCorrupt)
	}
	if size > uint64(len(b)-hdr) {
		return nil, 0, ErrTorn
	}
	end := hdr + int(size)
	if len(b) < end+crcLen {
		return nil, 0, ErrTorn
	}
	payload = b[hdr:end]
	want := binary.LittleEndian.Uint32(b[end:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, 0, fmt.Errorf("%w: crc mismatch (got %08x want %08x)", ErrCorrupt, got, want)
	}
	return payload, end + crcLen, nil
}

// File headers. Each segment and snapshot file opens with a 5-byte magic:
// four ASCII identity bytes plus a format version.
const formatVersion = 1

func segMagic() []byte  { return []byte{'M', 'Y', 'K', 'J', formatVersion} }
func snapMagic() []byte { return []byte{'M', 'Y', 'K', 'S', formatVersion} }
