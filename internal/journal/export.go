package journal

import (
	"fmt"
	"path/filepath"
)

// Export is a read-out of the log tail from a requested LSN: the segment
// replication unit a primary ships to a lagging replica. When the
// requested LSN has been compacted away, the newest snapshot rides along
// as a baseline and Records resume at SnapshotLSN+1.
type Export struct {
	// FromLSN is the LSN of the first record in Records (SnapshotLSN+1
	// when a baseline snapshot is included).
	FromLSN uint64
	// NextLSN is one past the last record shipped — the journal's next
	// append position at export time.
	NextLSN uint64
	// SnapshotLSN and Snapshot carry a baseline when the requested LSN
	// predates the oldest retained segment; Snapshot is nil otherwise.
	SnapshotLSN uint64
	Snapshot    []byte
	// Records holds the payloads for LSNs [FromLSN, NextLSN), in order.
	Records [][]byte
}

// ExportFrom reads every record with LSN >= fromLSN back out of the log
// (fromLSN 0 or 1 means from the beginning). Records below the oldest
// retained segment are represented by the newest snapshot instead —
// compaction guarantees the snapshot and the retained segments overlap,
// so the export is always contiguous. Safe to call between Appends; the
// caller sees a consistent prefix of the log.
func (j *Journal) ExportFrom(fromLSN uint64) (*Export, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil, ErrClosed
	}
	// The segment walk below reads the live files and expects every
	// assigned LSN to be on disk; under FsyncGroup, records may still sit
	// in the pending pile, so wait out any round in flight and flush.
	j.awaitGroupIdleLocked()
	if err := j.flushPendingLocked(); err != nil {
		return nil, err
	}
	if fromLSN == 0 {
		fromLSN = 1
	}
	ex := &Export{FromLSN: fromLSN, NextLSN: j.nextLSN}
	if fromLSN >= j.nextLSN {
		ex.FromLSN = j.nextLSN
		return ex, nil
	}
	start := fromLSN
	oldest := j.nextLSN
	if len(j.segStats) > 0 {
		oldest = j.segStats[0]
	}
	if start < oldest {
		// The tail below the oldest segment is gone; substitute the
		// newest snapshot as a baseline.
		if len(j.snaps) == 0 {
			return nil, fmt.Errorf("journal: export from %d: records compacted and no snapshot", fromLSN)
		}
		snapLSN := j.snaps[len(j.snaps)-1]
		state, err := readSnapshotFile(filepath.Join(j.opts.Dir, snapName(snapLSN)))
		if err != nil {
			return nil, fmt.Errorf("journal: export baseline: %w", err)
		}
		ex.Snapshot = state
		ex.SnapshotLSN = snapLSN
		start = snapLSN + 1
		ex.FromLSN = start
	}
	// Walk the retained segments and collect payloads at LSN >= start.
	// Appends hold the same lock and write whole frames, so the on-disk
	// bytes of every retained segment are complete.
	for i, first := range j.segStats {
		var segEnd uint64 // one past the segment's last LSN
		if i+1 < len(j.segStats) {
			segEnd = j.segStats[i+1]
		} else {
			segEnd = j.nextLSN
		}
		if segEnd <= start {
			continue
		}
		payloads, _, err := j.readSegment(filepath.Join(j.opts.Dir, segName(first)), false)
		if err != nil {
			return nil, fmt.Errorf("journal: export segment %s: %w", segName(first), err)
		}
		for k, p := range payloads {
			if first+uint64(k) >= start {
				ex.Records = append(ex.Records, p)
			}
		}
	}
	if got := uint64(len(ex.Records)); ex.FromLSN+got != ex.NextLSN {
		return nil, fmt.Errorf("journal: export from %d: have %d records, want %d",
			fromLSN, got, ex.NextLSN-ex.FromLSN)
	}
	return ex, nil
}
