package journal

import (
	"bytes"
	"fmt"
	"testing"
)

// TestExportFrom covers the tail read-out: whole log, mid-log suffix,
// nothing-to-ship, and the snapshot-baseline path after compaction.
func TestExportFrom(t *testing.T) {
	j, rec, err := Open(Options{Dir: t.TempDir(), SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if !rec.Empty() {
		t.Fatalf("fresh journal not empty: %+v", rec)
	}
	var want [][]byte
	for i := 0; i < 10; i++ {
		p := []byte(fmt.Sprintf("record-%02d-padding-to-force-rotation", i))
		want = append(want, p)
		if _, err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}

	checkRecords := func(ex *Export, from int) {
		t.Helper()
		if ex.FromLSN != uint64(from+1) || ex.NextLSN != 11 {
			t.Fatalf("export range [%d,%d), want [%d,11)", ex.FromLSN, ex.NextLSN, from+1)
		}
		if len(ex.Records) != len(want)-from {
			t.Fatalf("exported %d records, want %d", len(ex.Records), len(want)-from)
		}
		for i, p := range ex.Records {
			if !bytes.Equal(p, want[from+i]) {
				t.Fatalf("record %d mismatch: %q", from+i, p)
			}
		}
	}

	ex, err := j.ExportFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Snapshot != nil {
		t.Fatal("unexpected snapshot baseline before compaction")
	}
	checkRecords(ex, 0)

	ex, err = j.ExportFrom(6)
	if err != nil {
		t.Fatal(err)
	}
	checkRecords(ex, 5)

	ex, err = j.ExportFrom(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Records) != 0 || ex.FromLSN != 11 || ex.NextLSN != 11 {
		t.Fatalf("up-to-date export should be empty, got %+v", ex)
	}

	// Two snapshots compact the early segments away; an export from LSN 1
	// must now fall back to the newest snapshot baseline.
	for i := 0; i < 2; i++ {
		if err := j.Snapshot([]byte("state@10")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := j.Append([]byte("record-11")); err != nil {
		t.Fatal(err)
	}
	ex, err = j.ExportFrom(1)
	if err != nil {
		t.Fatal(err)
	}
	if ex.SnapshotLSN != 10 || !bytes.Equal(ex.Snapshot, []byte("state@10")) {
		t.Fatalf("want snapshot baseline @10, got @%d %q", ex.SnapshotLSN, ex.Snapshot)
	}
	if ex.FromLSN != 11 || ex.NextLSN != 12 || len(ex.Records) != 1 || !bytes.Equal(ex.Records[0], []byte("record-11")) {
		t.Fatalf("baseline export tail wrong: %+v", ex)
	}
}
