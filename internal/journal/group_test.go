package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestGroupCommitDurability pins the FsyncGroup contract: once Append
// returns, the record survives a crash — exactly FsyncAlways's promise,
// shared-fsync implementation notwithstanding. Concurrent appenders
// hammer the journal, it is abandoned (fds closed with no final sync,
// as in a kill), and recovery must yield every acknowledged record.
func TestGroupCommitDurability(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, Options{Dir: dir, Fsync: FsyncGroup})

	const (
		writers = 8
		each    = 40
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := j.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent append: %v", err)
	}
	appends, syncs := j.Appends(), j.Syncs()
	j.Abandon() // crash: no Close-path sync may save us

	_, rec, err := Open(Options{Dir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got, want := len(rec.Records), writers*each; got != want {
		t.Fatalf("recovered %d records after crash, want %d (all were acknowledged)", got, want)
	}
	if syncs > appends {
		t.Fatalf("group commit issued %d fsyncs for %d appends", syncs, appends)
	}
	t.Logf("group commit: %d appends, %d fsyncs (%.1f records/fsync)",
		appends, syncs, float64(appends)/float64(syncs))
}

// TestGroupCommitCoalesces forces observable coalescing: with a real
// stall window, a round's leader dallies while the other appenders pile
// on, so the fsync count lands far below the append count.
func TestGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, Options{Dir: dir, Fsync: FsyncGroup, GroupStall: 2 * time.Millisecond})
	defer j.Close()

	const (
		writers = 8
		each    = 25
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := j.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	appends, syncs := j.Appends(), j.Syncs()
	if appends != writers*each {
		t.Fatalf("appends = %d, want %d", appends, writers*each)
	}
	// Every stalled round should cover several appenders' records; even
	// a slow box coalesces far better than one fsync per append.
	if syncs*2 > appends {
		t.Fatalf("expected coalescing: %d fsyncs for %d appends", syncs, appends)
	}
}

// TestGroupCrashConsistency runs the byte-level torn-write sweep (the
// same discipline as TestCrashConsistency) over a log built under
// FsyncPolicy group with concurrent appenders: truncate the segment at
// every byte offset, and recovery must always yield a clean prefix of
// the record stream, accept appends, and survive a reopen.
func TestGroupCrashConsistency(t *testing.T) {
	master := t.TempDir()
	j, _ := openT(t, Options{Dir: master, Fsync: FsyncGroup})
	const (
		writers = 4
		each    = 2
	)
	// Concurrent appenders interleave nondeterministically, so record
	// identity is by LSN: recovery order must match on-disk order, which
	// we learn from a clean first recovery.
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := j.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	j.Close()

	segs, err := filepath.Glob(filepath.Join(master, "seg-*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want 1 segment, got %v (%v)", segs, err)
	}
	full, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	segBase := filepath.Base(segs[0])
	jc, recClean, err := Open(Options{Dir: master, Logf: t.Logf})
	if err != nil {
		t.Fatalf("clean reopen: %v", err)
	}
	jc.Close()
	canonical := recClean.Records
	if len(canonical) != writers*each {
		t.Fatalf("clean recovery found %d records, want %d", len(canonical), writers*each)
	}

	for cut := 0; cut <= len(full); cut++ {
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("cut-%d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segBase), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, rec, err := Open(Options{Dir: dir, Fsync: FsyncGroup, Logf: func(string, ...any) {}})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		if len(rec.Records) > len(canonical) {
			t.Fatalf("cut=%d: recovered %d records from a %d-record log", cut, len(rec.Records), len(canonical))
		}
		for i, p := range rec.Records {
			if !bytes.Equal(p, canonical[i]) {
				t.Fatalf("cut=%d: record %d = %q, want %q", cut, i, p, canonical[i])
			}
		}
		lsn, err := j2.Append([]byte("post-crash"))
		if err != nil {
			t.Fatalf("cut=%d: post-crash append: %v", cut, err)
		}
		if want := uint64(len(rec.Records)) + 1; lsn != want {
			t.Fatalf("cut=%d: post-crash LSN %d, want %d", cut, lsn, want)
		}
		if err := j2.Close(); err != nil {
			t.Fatalf("cut=%d: Close: %v", cut, err)
		}
		j3, rec3, err := Open(Options{Dir: dir, Logf: func(string, ...any) {}})
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		if want := len(rec.Records) + 1; len(rec3.Records) != want {
			t.Fatalf("cut=%d: reopen recovered %d records, want %d", cut, len(rec3.Records), want)
		}
		j3.Close()
	}
}

// TestGroupPolicyParses pins the config-file spelling round trip.
func TestGroupPolicyParses(t *testing.T) {
	p, err := ParseFsyncPolicy("group")
	if err != nil || p != FsyncGroup {
		t.Fatalf("ParseFsyncPolicy(group) = %v, %v", p, err)
	}
	if got := FsyncGroup.String(); got != "group" {
		t.Fatalf("FsyncGroup.String() = %q", got)
	}
}

// TestGroupRotationUnderConcurrency crosses segment boundaries while
// many appenders race: rotation must wait out in-flight rounds (never
// yanking the segment from under a leader's fsync) and lose nothing.
func TestGroupRotationUnderConcurrency(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, Options{Dir: dir, Fsync: FsyncGroup, SegmentBytes: 512})

	const (
		writers = 6
		each    = 30
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := j.Append([]byte(fmt.Sprintf("w%d-%d-padding-to-force-rotation", w, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec, err := Open(Options{Dir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got, want := len(rec.Records), writers*each; got != want {
		t.Fatalf("recovered %d records across rotations, want %d", got, want)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(segs) < 2 {
		t.Fatalf("test never rotated (segments: %v); shrink SegmentBytes", segs)
	}
}
