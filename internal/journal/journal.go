// Package journal is Mykil's durability layer: a segmented, CRC32C-framed,
// append-only write-ahead log plus point-in-time snapshots, stored in one
// directory per node. An area controller (or the registration server)
// appends one record per state mutation and periodically writes a full
// state snapshot; after a crash, Open finds the newest valid snapshot,
// replays the record tail behind it, and truncates any torn final record
// instead of failing. Restart thereby becomes a local replay rather than a
// network-wide rejoin storm (the §IV failure model's worst case at scale).
//
// The journal stores opaque byte payloads; callers define record and
// snapshot encodings (internal/wire/codec in this repo). Layout:
//
//	seg-<firstLSN>.wal    record frames, rotated at SegmentBytes
//	snap-<throughLSN>.snap one snapshot frame covering records ≤ throughLSN
//
// Records are numbered by LSN starting at 1. Each frame is a uvarint
// payload length, the payload, and a CRC32C of the payload, so a torn
// write is detectable at any byte offset. Fsync policy is configurable:
// FsyncAlways survives power loss per record, FsyncInterval bounds loss to
// a time window, FsyncNever leaves flushing to the OS.
package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"mykil/internal/clock"
)

// FsyncPolicy selects when appended records are forced to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append: no acknowledged record is
	// ever lost, at the cost of one fsync per mutation.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs when FsyncEvery has elapsed since the last
	// sync, bounding loss to one interval of records.
	FsyncInterval
	// FsyncNever leaves flushing to the operating system. Process
	// crashes lose nothing (the OS holds the pages); power loss may.
	FsyncNever
	// FsyncGroup coalesces concurrent appends into shared pile writes
	// and shared fsyncs (group commit): appends land in an in-memory
	// pile and join a round; each round's leader writes the whole pile
	// with one syscall and syncs once, while the next round gathers
	// under its sync window. Durability equals FsyncAlways — no Append
	// returns before its record is on stable storage — but N concurrent
	// appenders share O(1) write+fsync pairs instead of paying N.
	FsyncGroup
)

// String returns the policy's config-file spelling.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	case FsyncGroup:
		return "group"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// ParseFsyncPolicy parses "always", "interval", "never", or "group".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always", "":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	case "group":
		return FsyncGroup, nil
	}
	return 0, fmt.Errorf("journal: unknown fsync policy %q (want always|interval|never|group)", s)
}

// Defaults for zero-valued Options fields.
const (
	DefaultSegmentBytes = 4 << 20
	DefaultFsyncEvery   = 100 * time.Millisecond
	DefaultKeepSnaps    = 2
)

// Options parameterizes Open.
type Options struct {
	// Dir is the journal directory, created if absent. Required.
	Dir string
	// Fsync selects the sync policy; the zero value is FsyncAlways.
	Fsync FsyncPolicy
	// FsyncEvery spaces syncs under FsyncInterval; 0 means 100ms.
	FsyncEvery time.Duration
	// SegmentBytes rotates the active segment once it reaches this size;
	// 0 means 4 MiB.
	SegmentBytes int64
	// KeepSnapshots retains this many snapshots after compaction (older
	// segments are deleted once covered by the oldest kept snapshot);
	// 0 means 2, so one corrupt snapshot never strands recovery.
	KeepSnapshots int
	// GroupStall bounds how long an FsyncGroup leader dallies before
	// issuing its fsync, giving concurrent appenders time to pile onto
	// the round. The leader yields the scheduler in a loop and stops
	// early once no new appends arrive between yields (the herd has
	// drained), so GroupStall is a ceiling, not a fixed delay. Zero
	// (the default) means no deliberate stall: the leader syncs
	// immediately and still absorbs every record written while the
	// previous sync was in flight — the natural batch. Only meaningful
	// under FsyncGroup.
	GroupStall time.Duration
	// Logf, if set, receives recovery and compaction notes.
	Logf func(format string, args ...any)
	// Clock drives the FsyncInterval policy; nil means the wall clock.
	// Tests inject a fake clock so interval-sync behavior replays
	// deterministically.
	Clock clock.Clock
}

func (o *Options) fillDefaults() error {
	if o.Dir == "" {
		return errors.New("journal: Dir is required")
	}
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = DefaultFsyncEvery
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.KeepSnapshots <= 0 {
		o.KeepSnapshots = DefaultKeepSnaps
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.Clock == nil {
		o.Clock = clock.Real{}
	}
	return nil
}

// Recovery reports what Open found on disk: the newest valid snapshot (if
// any) and the record tail to replay on top of it.
type Recovery struct {
	// Snapshot is the newest valid snapshot payload, nil when none exists.
	Snapshot []byte
	// SnapshotLSN is the LSN the snapshot covers through (0 with no
	// snapshot). Records carries every record with a higher LSN.
	SnapshotLSN uint64
	// Records is the replay tail, in LSN order starting at SnapshotLSN+1.
	Records [][]byte
	// TruncatedBytes counts torn final-record bytes discarded from the
	// last segment during recovery.
	TruncatedBytes int64
}

// Empty reports whether the journal held no usable state at all.
func (r *Recovery) Empty() bool {
	return r == nil || (r.Snapshot == nil && len(r.Records) == 0)
}

// Journal is an open write-ahead log. Safe for concurrent appenders;
// methods lock internally. Under FsyncGroup, concurrent Appends
// coalesce their fsyncs (see FsyncGroup).
type Journal struct {
	opts Options

	mu       sync.Mutex
	seg      *os.File // active segment
	segStart uint64   // first LSN of the active segment
	segSize  int64
	nextLSN  uint64
	lastSync time.Time
	snaps    []uint64 // through-LSNs of on-disk snapshots, ascending
	segStats []uint64 // first LSNs of on-disk segments, ascending (incl. active)
	closed   bool

	// Group commit (FsyncGroup). The leader drops mu for the physical
	// fsync; rotation and close wait out an in-flight round first so the
	// segment handle never changes under it.
	gcCond      *sync.Cond // signaled when a round's sync completes or the journal closes
	gcSyncing   bool       // a leader's pile write + fsync is in flight
	gcSyncedLSN uint64     // highest LSN proven durable
	gcGather    *gcRound   // round still accepting members, nil when none
	// Under FsyncGroup, appends land in gcPending instead of the segment
	// file; the round leader writes the whole pile with one syscall
	// before its one fsync, so per-record cost is an encode plus a
	// memcpy. An acked record is always flushed and synced; a buffered
	// record belongs to an Append that has not returned, which a crash
	// may legally lose. gcSpare is the double buffer the leader swaps in
	// so appends keep piling while it writes.
	gcPending []byte
	gcSpare   []byte

	appends   int64
	syncs     int64
	snapshots int64

	scratch []byte
}

// gcRound is one group-commit round. Its leader closes done exactly
// once, after err is set; followers block on done without touching the
// journal mutex again.
type gcRound struct {
	done chan struct{}
	err  error // read only after done is closed
}

// Open creates or recovers the journal in opts.Dir. The returned Recovery
// describes on-disk state for the caller to rebuild from; appending
// continues at the next LSN in a fresh segment (a previously torn tail is
// physically truncated first, so segments never interleave live and dead
// bytes).
func Open(opts Options) (*Journal, *Recovery, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: creating dir: %w", err)
	}
	j := &Journal{opts: opts, nextLSN: 1}
	j.gcCond = sync.NewCond(&j.mu)
	rec, err := j.recover()
	if err != nil {
		return nil, nil, err
	}
	if err := j.openSegment(); err != nil {
		return nil, nil, err
	}
	return j, rec, nil
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.opts.Dir }

// NextLSN returns the LSN the next Append will receive.
func (j *Journal) NextLSN() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextLSN
}

// Appends reports how many records were appended through this handle.
func (j *Journal) Appends() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appends
}

// Syncs reports how many fsyncs this handle performed.
func (j *Journal) Syncs() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncs
}

// ErrClosed reports use of a closed journal.
var ErrClosed = errors.New("journal: closed")

// Append writes one record and applies the fsync policy. It returns the
// record's LSN.
func (j *Journal) Append(payload []byte) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, ErrClosed
	}
	if j.segSize >= j.opts.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			return 0, err
		}
	}
	j.scratch = AppendRecord(j.scratch[:0], payload)
	if j.opts.Fsync == FsyncGroup {
		// Buffer the encoded record; the round leader (or any flush
		// point) writes the pile in one syscall. segSize still counts
		// the logical segment size so rotation fires on schedule.
		j.gcPending = append(j.gcPending, j.scratch...)
	} else if _, err := j.seg.Write(j.scratch); err != nil {
		return 0, fmt.Errorf("journal: appending record %d: %w", j.nextLSN, err)
	}
	j.segSize += int64(len(j.scratch))
	lsn := j.nextLSN
	j.nextLSN++
	j.appends++
	ride, err := j.maybeSyncLocked(lsn)
	if err != nil {
		return 0, err
	}
	if ride != nil {
		// A group-commit round is gathering and will cover this record;
		// block on its done channel with the lock released, so a record
		// costs one lock hold however deep the pile is.
		j.mu.Unlock()
		<-ride.done
		j.mu.Lock()
		if ride.err != nil {
			return 0, ride.err
		}
	}
	return lsn, nil
}

// maybeSyncLocked applies the fsync policy after appending record lsn.
// Under FsyncGroup it may return a gathering round instead of blocking:
// the caller must release the lock and wait on the round's done channel.
func (j *Journal) maybeSyncLocked(lsn uint64) (*gcRound, error) {
	switch j.opts.Fsync {
	case FsyncAlways:
		return nil, j.syncLocked()
	case FsyncInterval:
		if j.opts.Clock.Now().Sub(j.lastSync) >= j.opts.FsyncEvery {
			return nil, j.syncLocked()
		}
	case FsyncGroup:
		return j.groupSyncLocked(lsn)
	}
	return nil, nil
}

// groupSyncLocked drives record lsn toward stable storage, sharing
// fsyncs with concurrent appenders. The first arrival with no round
// gathering leads one: it waits out the previous round's sync — that
// fsync window is this round's natural gather window — optionally
// dallies GroupStall, then captures its target and pile, syncs once,
// and publishes the outcome by closing the round's done channel,
// returning (nil, err). An arrival while a round gathers rides it:
// the gathering round is returned for the caller to wait on after
// releasing the lock (its leader captures its target only after
// leaving the gather phase, so it covers this record). Followers thus
// block on a channel, not on the mutex.
func (j *Journal) groupSyncLocked(lsn uint64) (*gcRound, error) {
	if j.gcSyncedLSN >= lsn {
		return nil, nil // already proven durable (rotation, Sync, a past round)
	}
	if j.closed {
		return nil, ErrClosed
	}
	if r := j.gcGather; r != nil {
		return r, nil
	}
	r := &gcRound{done: make(chan struct{})}
	j.gcGather = r
	for j.gcSyncing && !j.closed {
		j.gcCond.Wait() // the previous round's sync is the gather window
	}
	if j.opts.GroupStall > 0 && !j.closed {
		// Dally with the lock released so more appenders can pile on
		// before the sync is issued. Yielding instead of sleeping keeps
		// the gather window tight: timer wheels overshoot microsecond
		// sleeps badly, while Gosched hands the CPU straight to the
		// piling appenders, and the drain check cuts the stall short
		// once they stop arriving.
		start := j.opts.Clock.Now()
		idle := 0
		for !j.closed {
			before := j.nextLSN
			j.mu.Unlock()
			runtime.Gosched()
			j.mu.Lock()
			if j.opts.Clock.Now().Sub(start) >= j.opts.GroupStall {
				break
			}
			if j.nextLSN == before {
				// One empty cycle can just be an unrelated goroutine
				// taking its scheduler turn; two in a row means the
				// herd has truly drained.
				if idle++; idle >= 2 {
					break
				}
			} else {
				idle = 0
			}
		}
	}
	j.gcGather = nil // later arrivals start the next round
	if j.closed {
		r.err = ErrClosed
		close(r.done)
		return nil, ErrClosed
	}
	if j.gcSyncedLSN >= j.nextLSN-1 {
		// A rotation or explicit Sync flushed and synced the whole pile
		// while this round gathered; nothing left to prove.
		close(r.done)
		return nil, nil
	}
	target := j.nextLSN - 1
	seg := j.seg
	// Take the whole pile and swap in the spare buffer, so appends keep
	// accumulating for the next round while this one writes and syncs
	// with the lock released. Every record with LSN <= target is either
	// already in the file or in this pile — both reads happen under the
	// same lock hold as the target capture.
	pending := j.gcPending
	j.gcPending = j.gcSpare[:0]
	j.gcSyncing = true
	j.mu.Unlock()
	var err error
	if len(pending) > 0 {
		if _, werr := seg.Write(pending); werr != nil {
			err = fmt.Errorf("group flush through LSN %d: %w", target, werr)
		}
	}
	if err == nil {
		err = seg.Sync()
	}
	j.mu.Lock()
	j.gcSpare = pending[:0]
	j.gcSyncing = false
	if err == nil {
		if j.gcSyncedLSN < target {
			j.gcSyncedLSN = target
		}
		j.lastSync = j.opts.Clock.Now()
		j.syncs++
	} else {
		err = fmt.Errorf("journal: fsync: %w", err)
	}
	j.gcCond.Broadcast() // wake the next leader, rotation, or Close
	r.err = err
	close(r.done)
	return nil, err
}

// awaitGroupIdleLocked waits out any in-flight group-commit round. The
// segment handle must not be swapped or closed under a leader's fsync.
func (j *Journal) awaitGroupIdleLocked() {
	for j.gcSyncing {
		j.gcCond.Wait()
	}
}

// flushPendingLocked writes group-mode buffered records to the active
// segment. Callers hold mu and must have waited out any in-flight round
// first (awaitGroupIdleLocked), so this write never interleaves with a
// leader's unlocked pile write. On error the buffer is still consumed:
// the partially written tail is a legal torn record for recovery to
// truncate, exactly as a failed direct append would be.
func (j *Journal) flushPendingLocked() error {
	if len(j.gcPending) == 0 {
		return nil
	}
	_, err := j.seg.Write(j.gcPending)
	//lint:ignore guardedby every caller holds j.mu per the Locked-suffix contract; the per-function lock walk cannot see a caller's hold
	j.gcPending = j.gcPending[:0]
	if err != nil {
		return fmt.Errorf("journal: flushing group-commit buffer: %w", err)
	}
	return nil
}

func (j *Journal) syncLocked() error {
	// A leader's unlocked pile write must never interleave with the
	// flush below; rounds are impossible under the other policies, so
	// this wait is free there.
	j.awaitGroupIdleLocked()
	if err := j.flushPendingLocked(); err != nil {
		return err
	}
	if err := j.seg.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.lastSync = j.opts.Clock.Now()
	j.syncs++
	// A full sync under the lock proves every record appended so far
	// durable (earlier segments were synced at rotation); group-commit
	// waiters covered by it need no round of their own.
	if j.gcSyncedLSN < j.nextLSN-1 {
		j.gcSyncedLSN = j.nextLSN - 1
		j.gcCond.Broadcast()
	}
	return nil
}

// Sync forces the active segment to stable storage regardless of policy.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	return j.syncLocked()
}

// Snapshot writes a snapshot covering every record appended so far, then
// compacts: snapshots beyond KeepSnapshots and segments fully covered by
// the oldest kept snapshot are deleted. The snapshot is written to a
// temporary file, synced, and renamed, so a crash mid-write never corrupts
// an existing snapshot.
func (j *Journal) Snapshot(state []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	// The snapshot must not claim records the log hasn't made durable.
	if err := j.syncLocked(); err != nil {
		return err
	}
	through := j.nextLSN - 1
	name := snapName(through)
	tmp := filepath.Join(j.opts.Dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	buf := AppendRecord(snapMagic(), state)
	if _, err := f.Write(buf); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		os.Remove(tmp)
		return fmt.Errorf("journal: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // the sync error is the one worth reporting
		os.Remove(tmp)
		return fmt.Errorf("journal: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(j.opts.Dir, name)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: snapshot rename: %w", err)
	}
	j.syncDir()
	j.snapshots++
	// Replace any snapshot at the same LSN (no new records since last
	// snapshot), then compact.
	j.snaps = append(removeLSN(j.snaps, through), through)
	sort.Slice(j.snaps, func(a, b int) bool { return j.snaps[a] < j.snaps[b] })
	j.compactLocked()
	return nil
}

// compactLocked drops snapshots beyond KeepSnapshots and segments fully
// covered by the oldest kept snapshot.
func (j *Journal) compactLocked() {
	for len(j.snaps) > j.opts.KeepSnapshots {
		old := j.snaps[0]
		j.snaps = j.snaps[1:]
		if err := os.Remove(filepath.Join(j.opts.Dir, snapName(old))); err != nil {
			j.opts.Logf("journal: removing snapshot %d: %v", old, err)
		}
	}
	if len(j.snaps) == 0 {
		return
	}
	cover := j.snaps[0] // oldest kept snapshot covers through this LSN
	// A non-final segment's last LSN is the next segment's first minus 1.
	for len(j.segStats) > 1 && j.segStats[1] <= cover+1 {
		first := j.segStats[0]
		j.segStats = j.segStats[1:]
		if err := os.Remove(filepath.Join(j.opts.Dir, segName(first))); err != nil {
			j.opts.Logf("journal: removing segment %d: %v", first, err)
		}
	}
}

// rotateLocked seals the active segment and starts a new one.
func (j *Journal) rotateLocked() error {
	j.awaitGroupIdleLocked()
	if err := j.syncLocked(); err != nil {
		return err
	}
	if err := j.seg.Close(); err != nil {
		return err
	}
	j.seg = nil
	return j.openSegment()
}

// openSegment starts a fresh segment at nextLSN. Called at Open and on
// rotation; the previous segment, if any, is already closed.
func (j *Journal) openSegment() error {
	path := filepath.Join(j.opts.Dir, segName(j.nextLSN))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: creating segment: %w", err)
	}
	if _, err := f.Write(segMagic()); err != nil {
		_ = f.Close() // the header-write error is the one worth reporting
		return fmt.Errorf("journal: segment header: %w", err)
	}
	j.seg = f
	j.segStart = j.nextLSN
	j.segSize = int64(len(segMagic()))
	j.segStats = append(j.segStats, j.nextLSN)
	j.syncDir()
	return nil
}

// syncDir fsyncs the journal directory so renames and creations are
// durable. Failures are logged, not fatal: data-file syncs already
// happened.
func (j *Journal) syncDir() {
	d, err := os.Open(j.opts.Dir)
	if err != nil {
		return
	}
	if err := d.Sync(); err != nil {
		j.opts.Logf("journal: dir sync: %v", err)
	}
	_ = d.Close() // read-only directory handle; nothing to lose
}

// Close syncs and closes the journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.awaitGroupIdleLocked()
	j.closed = true
	j.gcCond.Broadcast() // release any followers queued for a next round
	if err := j.flushPendingLocked(); err != nil {
		_ = j.seg.Close()
		return err
	}
	if err := j.seg.Sync(); err != nil {
		_ = j.seg.Close() // the sync error is the one worth reporting
		return err
	}
	return j.seg.Close()
}

// Abandon closes file descriptors without syncing — it simulates a crash
// for tests and drills: everything not yet flushed by the fsync policy is
// at the OS's mercy, exactly as in a real kill.
func (j *Journal) Abandon() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.closed = true
	j.gcCond.Broadcast() // waiters see closed and return ErrClosed
	//lint:ignore errcheck-io Abandon simulates a crash: losing unflushed bytes is the point, so a close error carries no information the caller could act on
	j.seg.Close()
}

func segName(firstLSN uint64) string { return fmt.Sprintf("seg-%016x.wal", firstLSN) }
func snapName(through uint64) string { return fmt.Sprintf("snap-%016x.snap", through) }
func removeLSN(s []uint64, v uint64) []uint64 {
	out := s[:0]
	for _, x := range s {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}
