package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// recover scans the journal directory, selects the newest valid snapshot,
// replays and validates the segment chain, and physically truncates any
// torn tail in the final segment. It fills j.snaps, j.segStats, and
// j.nextLSN; the caller then opens a fresh segment for new appends.
func (j *Journal) recover() (*Recovery, error) {
	entries, err := os.ReadDir(j.opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("journal: scanning dir: %w", err)
	}
	var segFirsts, snapLSNs []uint64
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".wal"):
			var lsn uint64
			if _, err := fmt.Sscanf(name, "seg-%016x.wal", &lsn); err == nil && segName(lsn) == name {
				segFirsts = append(segFirsts, lsn)
			} else {
				j.opts.Logf("journal: ignoring unparseable file %s", name)
			}
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			var lsn uint64
			if _, err := fmt.Sscanf(name, "snap-%016x.snap", &lsn); err == nil && snapName(lsn) == name {
				snapLSNs = append(snapLSNs, lsn)
			} else {
				j.opts.Logf("journal: ignoring unparseable file %s", name)
			}
		case strings.HasSuffix(name, ".tmp"):
			// A snapshot that crashed before its rename; never valid.
			os.Remove(filepath.Join(j.opts.Dir, name))
		}
	}
	sort.Slice(segFirsts, func(a, b int) bool { return segFirsts[a] < segFirsts[b] })
	sort.Slice(snapLSNs, func(a, b int) bool { return snapLSNs[a] < snapLSNs[b] })

	rec := &Recovery{}

	// Newest valid snapshot wins; an unreadable one falls back to the
	// next older, whose covered records are still on disk (compaction
	// only deletes segments below the OLDEST kept snapshot).
	for i := len(snapLSNs) - 1; i >= 0; i-- {
		lsn := snapLSNs[i]
		state, err := readSnapshotFile(filepath.Join(j.opts.Dir, snapName(lsn)))
		if err != nil {
			j.opts.Logf("journal: snapshot %s unusable, trying older: %v", snapName(lsn), err)
			snapLSNs = snapLSNs[:i]
			continue
		}
		rec.Snapshot = state
		rec.SnapshotLSN = lsn
		break
	}
	j.snaps = snapLSNs

	// Replay the segment chain. Every record must have a contiguous LSN:
	// a segment's first record carries the LSN in its filename, and the
	// next segment must begin exactly where the previous one ended.
	nextLSN := rec.SnapshotLSN + 1
	if len(segFirsts) > 0 {
		if segFirsts[0] > rec.SnapshotLSN+1 {
			// Records between the snapshot (or LSN 1) and the oldest
			// segment are gone; nothing can reconstruct them.
			return nil, fmt.Errorf("journal: gap: snapshot covers through %d but oldest segment starts at %d", rec.SnapshotLSN, segFirsts[0])
		}
		nextLSN = segFirsts[0]
	}

	kept := segFirsts[:0]
	for i, first := range segFirsts {
		if first != nextLSN && i > 0 {
			return nil, fmt.Errorf("journal: gap: expected segment starting at %d, found %d", nextLSN, first)
		}
		last := i == len(segFirsts)-1
		path := filepath.Join(j.opts.Dir, segName(first))
		payloads, truncated, err := j.readSegment(path, last)
		if err != nil {
			return nil, fmt.Errorf("journal: segment %s: %w", segName(first), err)
		}
		rec.TruncatedBytes += truncated
		for k, p := range payloads {
			if lsn := first + uint64(k); lsn > rec.SnapshotLSN {
				rec.Records = append(rec.Records, p)
			}
		}
		nextLSN = first + uint64(len(payloads))
		if last && len(payloads) == 0 {
			// A fully torn (or legitimately empty) final segment: remove
			// it so the fresh segment Open creates can take its name.
			if err := os.Remove(path); err != nil {
				return nil, fmt.Errorf("journal: removing empty segment: %w", err)
			}
			continue
		}
		kept = append(kept, first)
	}
	j.segStats = kept
	j.nextLSN = nextLSN
	if rec.SnapshotLSN >= j.nextLSN {
		return nil, fmt.Errorf("journal: snapshot covers through %d but log ends at %d", rec.SnapshotLSN, j.nextLSN-1)
	}
	if !rec.Empty() || rec.TruncatedBytes > 0 {
		j.opts.Logf("journal: recovered snapshot@%d + %d record(s), truncated %d torn byte(s)",
			rec.SnapshotLSN, len(rec.Records), rec.TruncatedBytes)
	}
	return rec, nil
}

// readSegment validates one segment file and returns its record payloads
// (copied, in order). For the final segment, a torn or corrupt tail is
// physically truncated to the last valid record boundary and reported in
// truncated; for any earlier segment the same condition is a hard error,
// because records after it exist and the chain would silently skip LSNs.
func (j *Journal) readSegment(path string, last bool) (payloads [][]byte, truncated int64, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	magic := segMagic()
	if len(b) < len(magic) || string(b[:len(magic)]) != string(magic) {
		if !last {
			return nil, 0, fmt.Errorf("%w: bad segment header", ErrCorrupt)
		}
		// A crash during segment creation tore the header itself; no
		// record can follow a torn header, so the whole file is dead.
		return nil, int64(len(b)), truncateFile(path, 0)
	}
	off := len(magic)
	for off < len(b) {
		payload, n, rerr := ReadRecord(b[off:])
		if rerr != nil {
			if !last {
				return nil, 0, rerr
			}
			truncated = int64(len(b) - off)
			if terr := truncateFile(path, int64(off)); terr != nil {
				return nil, 0, terr
			}
			return payloads, truncated, nil
		}
		cp := make([]byte, len(payload))
		copy(cp, payload)
		payloads = append(payloads, cp)
		off += n
	}
	return payloads, 0, nil
}

// truncateFile truncates path to size and syncs it, so the discarded torn
// bytes can never reappear after a second crash.
func truncateFile(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	if err := f.Truncate(size); err != nil {
		_ = f.Close() // the truncate error is the one worth reporting
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // the sync error is the one worth reporting
		return err
	}
	return f.Close()
}

// readSnapshotFile validates and returns a snapshot's state payload.
func readSnapshotFile(path string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	magic := snapMagic()
	if len(b) < len(magic) || string(b[:len(magic)]) != string(magic) {
		return nil, fmt.Errorf("%w: bad snapshot header", ErrCorrupt)
	}
	payload, n, err := ReadRecord(b[len(magic):])
	if err != nil {
		return nil, err
	}
	if len(magic)+n != len(b) {
		return nil, fmt.Errorf("%w: trailing bytes after snapshot record", ErrCorrupt)
	}
	// The payload aliases the file buffer, which is otherwise unreferenced.
	return payload, nil
}
