package regserver

import (
	"fmt"
	"testing"
	"time"

	"mykil/internal/journal"
	"mykil/internal/simnet"
	"mykil/internal/transport"
	"mykil/internal/wire"
)

// journaledServer builds a server backed by a journal in dir, recovering
// whatever state the journal holds.
func journaledServer(t *testing.T, net *simnet.Network, dir, addr string) (*Server, *journal.Journal) {
	t.Helper()
	j, rec, err := journal.Open(journal.Options{Dir: dir, Fsync: journal.FsyncAlways})
	if err != nil {
		t.Fatalf("journal.Open: %v", err)
	}
	tr, err := transport.NewSim(net, addr)
	if err != nil {
		t.Fatalf("transport: %v", err)
	}
	t.Cleanup(func() { _ = tr.Close() })
	srv, err := New(Config{
		Transport:     tr,
		Keys:          keyPair(t),
		Auth:          StaticAuthorizer{"good": time.Hour},
		Controllers:   []wire.ACInfo{{ID: "ac-0", Addr: "ac-0", PubDER: keyPair(t).Public().Marshal()}},
		Journal:       j,
		Recovery:      rec,
		SnapshotEvery: 4, // small, so the test crosses a snapshot boundary
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv.Start()
	return srv, j
}

// TestRegistryRestart admits a batch of clients, kills the server without
// a clean shutdown, and checks a restarted server recovers the full
// registry and K_shared epoch from disk.
func TestRegistryRestart(t *testing.T) {
	dir := t.TempDir()
	net := simnet.New(simnet.Config{})
	defer net.Close()

	srv, j := journaledServer(t, net, dir, "rs-a")
	const n = 10
	admitted := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	_ = srv.loop.Call(func() {
		for i := 0; i < n; i++ {
			srv.journalAdmit(RegisteredMember{
				ClientID:   fmt.Sprintf("c%d", i),
				Controller: "ac-0",
				Duration:   time.Duration(i+1) * time.Minute,
				Admitted:   admitted.Add(time.Duration(i) * time.Second),
			})
		}
	})
	if e := srv.BumpKSharedEpoch(); e != 1 {
		t.Fatalf("first epoch bump = %d", e)
	}
	if e := srv.BumpKSharedEpoch(); e != 2 {
		t.Fatalf("second epoch bump = %d", e)
	}
	srv.Close()
	j.Abandon() // crash: no clean journal close

	srv2, j2 := journaledServer(t, net, dir, "rs-b")
	defer func() {
		srv2.Close()
		_ = j2.Close()
	}()
	if got := srv2.NumRegistered(); got != n {
		t.Fatalf("NumRegistered after restart = %d, want %d", got, n)
	}
	if got := srv2.Joins(); got != n {
		t.Fatalf("Joins after restart = %d, want %d", got, n)
	}
	if got := srv2.KSharedEpoch(); got != 2 {
		t.Fatalf("KSharedEpoch after restart = %d, want 2", got)
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("c%d", i)
		m, ok := srv2.Registered(id)
		if !ok {
			t.Fatalf("client %s lost across restart", id)
		}
		want := RegisteredMember{
			ClientID:   id,
			Controller: "ac-0",
			Duration:   time.Duration(i+1) * time.Minute,
			Admitted:   admitted.Add(time.Duration(i) * time.Second),
		}
		if m != want {
			t.Errorf("client %s restored as %+v, want %+v", id, m, want)
		}
	}
}

// TestRegistryRestartEmpty checks a journal with no records restores a
// pristine server.
func TestRegistryRestartEmpty(t *testing.T) {
	dir := t.TempDir()
	net := simnet.New(simnet.Config{})
	defer net.Close()

	srv, j := journaledServer(t, net, dir, "rs-a")
	srv.Close()
	j.Abandon()

	srv2, j2 := journaledServer(t, net, dir, "rs-b")
	defer func() {
		srv2.Close()
		_ = j2.Close()
	}()
	if got := srv2.NumRegistered(); got != 0 {
		t.Fatalf("NumRegistered = %d, want 0", got)
	}
	if got := srv2.KSharedEpoch(); got != 0 {
		t.Fatalf("KSharedEpoch = %d, want 0", got)
	}
}
