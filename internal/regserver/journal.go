package regserver

import (
	"fmt"
	"sort"
	"time"

	"mykil/internal/journal"
	"mykil/internal/wire"
	"mykil/internal/wire/codec"
)

// The registration server's durable state is its member registry — who
// was admitted, to which controller, for how long — plus the K_shared
// epoch counter. Unlike a controller's keytree this state carries no
// random key material, so replay is plain re-application; the registry
// is what lets a restarted server answer "is this client registered?"
// and account admissions without a network-wide re-registration.

// Registry journal record kinds.
const (
	// recAdmit records one completed admission (step 4/5 emitted).
	recAdmit byte = 1
	// recKSharedEpoch records a bump of the shared ticket-key epoch.
	recKSharedEpoch byte = 2
	// recACAdd records one controller entering the directory (an area
	// split spawned it, or an operator registered it).
	recACAdd byte = 3
	// recACRemove records one controller leaving the directory (merged
	// away or decommissioned).
	recACRemove byte = 4
)

// Registry snapshot versions. V1 carried the epoch and member registry;
// V2 appends the live controller directory, so the dynamic area map
// survives a restart without replaying every add/remove.
const (
	rsSnapFormatV1 = 1
	rsSnapFormatV2 = 2
)

// DefaultSnapshotEvery is the record cadence between registry snapshots.
const DefaultSnapshotEvery = 512

// RegisteredMember is one durable admission record.
type RegisteredMember struct {
	ClientID   string
	Controller string
	Duration   time.Duration
	Admitted   time.Time
}

// appendWire appends the member's compact encoding.
func (m RegisteredMember) appendWire(b []byte) []byte {
	b = codec.AppendString(b, m.ClientID)
	b = codec.AppendString(b, m.Controller)
	b = codec.AppendVarint(b, int64(m.Duration))
	return codec.AppendTime(b, m.Admitted)
}

// readWire decodes a RegisteredMember written by appendWire.
func (m *RegisteredMember) readWire(r *codec.Reader) error {
	m.ClientID = r.String()
	m.Controller = r.String()
	m.Duration = time.Duration(r.Varint())
	m.Admitted = r.Time()
	return r.Err()
}

// registeredMinWire is the smallest encoded RegisteredMember: two empty
// length prefixes, a one-byte duration, and a two-byte timestamp.
const registeredMinWire = 5

// journalAdmit records one admission and snapshots at the cadence.
// Runs on the loop.
func (s *Server) journalAdmit(m RegisteredMember) {
	s.registry[m.ClientID] = m
	if s.cfg.Journal == nil {
		return
	}
	if _, err := s.cfg.Journal.Append(m.appendWire([]byte{recAdmit})); err != nil {
		s.cfg.Logf("regserver: JOURNAL APPEND FAILED (restart durability degraded): %v", err)
		return
	}
	s.recsSinceSnap++
	if s.recsSinceSnap >= s.cfg.SnapshotEvery {
		s.journalSnapshot()
	}
}

// BumpKSharedEpoch durably advances the shared ticket-key epoch — the
// hook for a future K_shared rotation sweep. Controllers are told out of
// band; the journal makes the epoch survive a restart so a rotated key
// is never rolled back to an older epoch.
func (s *Server) BumpKSharedEpoch() uint64 {
	var epoch uint64
	_ = s.loop.Call(func() {
		s.ksharedEpoch++
		epoch = s.ksharedEpoch
		if s.cfg.Journal == nil {
			return
		}
		b := codec.AppendUvarint([]byte{recKSharedEpoch}, epoch)
		if _, err := s.cfg.Journal.Append(b); err != nil {
			s.cfg.Logf("regserver: JOURNAL APPEND FAILED (restart durability degraded): %v", err)
		}
	})
	return epoch
}

// journalSnapshot writes the registry snapshot: version, K_shared epoch,
// every registered member in sorted ID order, and the live controller
// directory (the encoding is canonical, so identical registries produce
// identical snapshots).
func (s *Server) journalSnapshot() {
	b := []byte{rsSnapFormatV2}
	b = codec.AppendUvarint(b, s.ksharedEpoch)
	ids := make([]string, 0, len(s.registry))
	for id := range s.registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	b = codec.AppendUvarint(b, uint64(len(ids)))
	for _, id := range ids {
		b = s.registry[id].appendWire(b)
	}
	b = codec.AppendUvarint(b, uint64(len(s.controllers)))
	for _, ac := range s.controllers {
		b = appendACInfoWire(b, ac)
	}
	if err := s.cfg.Journal.Snapshot(b); err != nil {
		s.cfg.Logf("regserver: writing journal snapshot: %v", err)
		return
	}
	s.recsSinceSnap = 0
}

// appendACInfoWire appends one directory entry's compact encoding.
func appendACInfoWire(b []byte, ac wire.ACInfo) []byte {
	b = codec.AppendString(b, ac.ID)
	b = codec.AppendString(b, ac.Addr)
	return codec.AppendBytes(b, ac.PubDER)
}

// readACInfoWire decodes a directory entry written by appendACInfoWire.
func readACInfoWire(r *codec.Reader) (wire.ACInfo, error) {
	ac := wire.ACInfo{ID: r.String(), Addr: r.String(), PubDER: r.Bytes()}
	return ac, r.Err()
}

// acInfoMinWire is the smallest encoded directory entry: three empty
// length prefixes.
const acInfoMinWire = 3

// upsertController installs or refreshes one directory entry in place.
// Runs on the loop (or pre-Start).
func (s *Server) upsertController(ac wire.ACInfo) {
	for i := range s.controllers {
		if s.controllers[i].ID == ac.ID {
			s.controllers[i] = ac
			return
		}
	}
	s.controllers = append(s.controllers, ac)
}

// dropController removes one directory entry by ID. Runs on the loop
// (or pre-Start).
func (s *Server) dropController(id string) {
	for i := range s.controllers {
		if s.controllers[i].ID == id {
			s.controllers = append(s.controllers[:i], s.controllers[i+1:]...)
			return
		}
	}
}

// AddController registers (or refreshes) an area controller in the live
// directory and journals the change: every later join grant hands out a
// directory containing it. Split orchestration calls this with the
// freshly spawned sibling before any member is migrated, so migrants'
// future rejoins can find it.
func (s *Server) AddController(ac wire.ACInfo) error {
	if ac.ID == "" || ac.Addr == "" || len(ac.PubDER) == 0 {
		return fmt.Errorf("regserver: controller needs ID, Addr, and PubDER")
	}
	return s.loop.Call(func() {
		s.upsertController(ac)
		if s.cfg.Journal == nil {
			return
		}
		b := appendACInfoWire([]byte{recACAdd}, ac)
		if _, err := s.cfg.Journal.Append(b); err != nil {
			s.cfg.Logf("regserver: JOURNAL APPEND FAILED (restart durability degraded): %v", err)
			return
		}
		s.recsSinceSnap++
		if s.recsSinceSnap >= s.cfg.SnapshotEvery {
			s.journalSnapshot()
		}
	})
}

// RemoveController retires an area controller from the live directory
// and journals the change — the merge counterpart of AddController.
func (s *Server) RemoveController(id string) error {
	return s.loop.Call(func() {
		s.dropController(id)
		if s.cfg.Journal == nil {
			return
		}
		b := codec.AppendString([]byte{recACRemove}, id)
		if _, err := s.cfg.Journal.Append(b); err != nil {
			s.cfg.Logf("regserver: JOURNAL APPEND FAILED (restart durability degraded): %v", err)
			return
		}
		s.recsSinceSnap++
		if s.recsSinceSnap >= s.cfg.SnapshotEvery {
			s.journalSnapshot()
		}
	})
}

// Controllers reports a copy of the live directory.
func (s *Server) Controllers() []wire.ACInfo {
	var out []wire.ACInfo
	_ = s.loop.Call(func() { out = append([]wire.ACInfo(nil), s.controllers...) })
	return out
}

// restoreFromJournal rebuilds the registry from a recovery. Called from
// New, before the loop starts, so no locking is needed.
func (s *Server) restoreFromJournal(rec *journal.Recovery) error {
	if rec == nil {
		return nil
	}
	if rec.Snapshot != nil {
		r := codec.NewReader(rec.Snapshot)
		v := r.Byte()
		if r.Err() == nil && v != rsSnapFormatV1 && v != rsSnapFormatV2 {
			return fmt.Errorf("regserver: unknown registry snapshot version %d", v)
		}
		s.ksharedEpoch = r.Uvarint()
		n := r.Count(registeredMinWire)
		for i := 0; i < n; i++ {
			var m RegisteredMember
			if err := m.readWire(r); err != nil {
				return fmt.Errorf("regserver: registry snapshot member: %w", err)
			}
			s.registry[m.ClientID] = m
		}
		if v >= rsSnapFormatV2 {
			// The snapshot's directory is the truth at snapshot time; it
			// replaces the config seed entirely (a controller absent from
			// it was removed before the snapshot).
			cn := r.Count(acInfoMinWire)
			s.controllers = make([]wire.ACInfo, 0, cn)
			for i := 0; i < cn; i++ {
				ac, err := readACInfoWire(r)
				if err != nil {
					return fmt.Errorf("regserver: registry snapshot controller: %w", err)
				}
				s.controllers = append(s.controllers, ac)
			}
		}
		if err := r.Finish(); err != nil {
			return fmt.Errorf("regserver: registry snapshot: %w", err)
		}
	}
	for i, p := range rec.Records {
		r := codec.NewReader(p)
		switch kind := r.Byte(); kind {
		case recAdmit:
			var m RegisteredMember
			if err := m.readWire(r); err != nil {
				return fmt.Errorf("regserver: journal record %d: %w", i+1, err)
			}
			if err := r.Finish(); err != nil {
				return fmt.Errorf("regserver: journal record %d: %w", i+1, err)
			}
			s.registry[m.ClientID] = m
		case recKSharedEpoch:
			epoch := r.Uvarint()
			if err := r.Finish(); err != nil {
				return fmt.Errorf("regserver: journal record %d: %w", i+1, err)
			}
			s.ksharedEpoch = epoch
		case recACAdd:
			ac, err := readACInfoWire(r)
			if err != nil {
				return fmt.Errorf("regserver: journal record %d: %w", i+1, err)
			}
			if err := r.Finish(); err != nil {
				return fmt.Errorf("regserver: journal record %d: %w", i+1, err)
			}
			s.upsertController(ac)
		case recACRemove:
			id := r.String()
			if err := r.Finish(); err != nil {
				return fmt.Errorf("regserver: journal record %d: %w", i+1, err)
			}
			s.dropController(id)
		default:
			return fmt.Errorf("regserver: journal record %d: unknown kind %d", i+1, kind)
		}
	}
	s.joins.Store(int64(len(s.registry)))
	return nil
}

// Registered reports the durable admission record for a client, if any.
func (s *Server) Registered(clientID string) (RegisteredMember, bool) {
	var m RegisteredMember
	var ok bool
	_ = s.loop.Call(func() { m, ok = s.registry[clientID] })
	return m, ok
}

// NumRegistered reports the registry size.
func (s *Server) NumRegistered() int {
	var n int
	_ = s.loop.Call(func() { n = len(s.registry) })
	return n
}

// KSharedEpoch reports the durable shared ticket-key epoch.
func (s *Server) KSharedEpoch() uint64 {
	var e uint64
	_ = s.loop.Call(func() { e = s.ksharedEpoch })
	return e
}
