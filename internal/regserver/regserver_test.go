package regserver

import (
	"sync"
	"testing"
	"time"

	"mykil/internal/clock"
	"mykil/internal/crypt"
	"mykil/internal/simnet"
	"mykil/internal/transport"
	"mykil/internal/wire"
)

var (
	testPoolOnce sync.Once
	testPool     *crypt.Pool
)

func keyPair(t *testing.T) *crypt.KeyPair {
	t.Helper()
	testPoolOnce.Do(func() {
		testPool = crypt.NewPool(512)
		if err := testPool.Warm(8); err != nil {
			t.Fatalf("warming pool: %v", err)
		}
	})
	kp, err := testPool.Get()
	if err != nil {
		t.Fatalf("key pair: %v", err)
	}
	return kp
}

// rig wires a registration server, a fake area controller endpoint, and a
// fake client endpoint on one simnet.
type rig struct {
	t         *testing.T
	net       *simnet.Network
	srv       *Server
	rsKeys    *crypt.KeyPair
	acKeys    *crypt.KeyPair
	client    transport.Transport
	clientKP  *crypt.KeyPair
	ac        transport.Transport
	rsAddr    string
	transport []transport.Transport
}

func newRig(t *testing.T, clk clock.Clock) *rig {
	t.Helper()
	r := &rig{t: t, net: simnet.New(simnet.Config{})}
	r.rsKeys = keyPair(t)
	r.acKeys = keyPair(t)
	r.clientKP = keyPair(t)

	rsTr, err := transport.NewSim(r.net, "rs")
	if err != nil {
		t.Fatalf("rs transport: %v", err)
	}
	r.rsAddr = "rs"
	r.ac, err = transport.NewSim(r.net, "ac-0")
	if err != nil {
		t.Fatalf("ac transport: %v", err)
	}
	r.client, err = transport.NewSim(r.net, "client")
	if err != nil {
		t.Fatalf("client transport: %v", err)
	}
	r.transport = []transport.Transport{rsTr, r.ac, r.client}

	srv, err := New(Config{
		Transport: rsTr,
		Keys:      r.rsKeys,
		Clock:     clk,
		Auth:      StaticAuthorizer{"good": time.Hour},
		Controllers: []wire.ACInfo{{
			ID:     "ac-0",
			Addr:   "ac-0",
			PubDER: r.acKeys.Public().Marshal(),
		}},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	r.srv = srv
	srv.Start()
	t.Cleanup(func() {
		srv.Close()
		for _, tr := range r.transport {
			_ = tr.Close()
		}
		r.net.Close()
	})
	return r
}

// sendSealed seals and sends a body from the client to the RS.
func (r *rig) sendSealed(from transport.Transport, kind wire.Kind, body wire.Marshaler) {
	r.t.Helper()
	blob, err := wire.SealBody(r.rsKeys.Public(), body)
	if err != nil {
		r.t.Fatalf("SealBody: %v", err)
	}
	if err := from.Send(r.rsAddr, &wire.Frame{Kind: kind, From: from.Addr(), Body: blob}); err != nil {
		r.t.Fatalf("Send: %v", err)
	}
}

// recv waits for one frame.
func recv(t *testing.T, tr transport.Transport) *wire.Frame {
	t.Helper()
	select {
	case f := <-tr.Recv():
		return f
	case <-time.After(5 * time.Second):
		t.Fatal("no frame within timeout")
		return nil
	}
}

func expectSilence(t *testing.T, tr transport.Transport) {
	t.Helper()
	select {
	case f := <-tr.Recv():
		t.Fatalf("unexpected frame %v", f.Kind)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	kp := keyPair(t)
	n := simnet.New(simnet.Config{})
	defer n.Close()
	tr, err := transport.NewSim(n, "rs")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	if _, err := New(Config{Transport: tr, Keys: kp, Auth: StaticAuthorizer{}}); err == nil {
		t.Error("config without controllers accepted")
	}
}

func TestFullHandshake(t *testing.T) {
	r := newRig(t, clock.Real{})
	nonceCW := crypt.Nonce()
	r.sendSealed(r.client, wire.KindJoinRequest, wire.JoinRequest{
		AuthInfo:   "good",
		ClientID:   "c1",
		ClientAddr: "client",
		ClientPub:  r.clientKP.Public().Marshal(),
		NonceCW:    nonceCW,
	})

	// Step 2 arrives sealed to the client.
	f := recv(t, r.client)
	if f.Kind != wire.KindJoinChallenge {
		t.Fatalf("got %v, want JoinChallenge", f.Kind)
	}
	var ch wire.JoinChallenge
	if err := wire.OpenBody(r.clientKP, f.Body, &ch); err != nil {
		t.Fatalf("OpenBody: %v", err)
	}
	if ch.NonceCWPlus1 != nonceCW+1 {
		t.Fatalf("NonceCW echo wrong: %d", ch.NonceCWPlus1)
	}

	// Step 3.
	r.sendSealed(r.client, wire.KindJoinResponse, wire.JoinResponse{
		ClientID:     "c1",
		NonceWCPlus1: ch.NonceWC + 1,
	})

	// Step 4 reaches the AC, signed by the RS.
	f4 := recv(t, r.ac)
	if f4.Kind != wire.KindJoinRefer {
		t.Fatalf("AC got %v, want JoinRefer", f4.Kind)
	}
	if err := r.rsKeys.Public().Verify(f4.Body, f4.Sig); err != nil {
		t.Fatalf("referral signature invalid: %v", err)
	}
	var refer wire.JoinRefer
	if err := wire.OpenBody(r.acKeys, f4.Body, &refer); err != nil {
		t.Fatalf("referral body: %v", err)
	}
	if refer.ClientID != "c1" || refer.Duration != time.Hour {
		t.Errorf("referral = %+v", refer)
	}

	// Step 5 reaches the client with the directory, signed by the RS.
	f5 := recv(t, r.client)
	if f5.Kind != wire.KindJoinGrant {
		t.Fatalf("client got %v, want JoinGrant", f5.Kind)
	}
	if err := r.rsKeys.Public().Verify(f5.Body, f5.Sig); err != nil {
		t.Fatalf("grant signature invalid: %v", err)
	}
	var grant wire.JoinGrant
	if err := wire.OpenBody(r.clientKP, f5.Body, &grant); err != nil {
		t.Fatalf("grant body: %v", err)
	}
	if grant.AC.ID != "ac-0" || len(grant.Directory) != 1 {
		t.Errorf("grant = %+v", grant)
	}
	if grant.NonceACPlus1 != refer.NonceAC+1 {
		t.Error("grant/referral nonce mismatch")
	}
	if r.srv.Joins() != 1 {
		t.Errorf("Joins = %d", r.srv.Joins())
	}
}

func TestBadAuthDenied(t *testing.T) {
	r := newRig(t, clock.Real{})
	r.sendSealed(r.client, wire.KindJoinRequest, wire.JoinRequest{
		AuthInfo:   "stolen-card",
		ClientID:   "c1",
		ClientAddr: "client",
		ClientPub:  r.clientKP.Public().Marshal(),
		NonceCW:    1,
	})
	f := recv(t, r.client)
	if f.Kind != wire.KindJoinDenied {
		t.Fatalf("got %v, want JoinDenied", f.Kind)
	}
	var d wire.JoinDenied
	if err := wire.OpenBody(r.clientKP, f.Body, &d); err != nil {
		t.Fatalf("OpenBody: %v", err)
	}
	expectSilence(t, r.ac)
}

func TestWrongChallengeResponseDenied(t *testing.T) {
	r := newRig(t, clock.Real{})
	r.sendSealed(r.client, wire.KindJoinRequest, wire.JoinRequest{
		AuthInfo: "good", ClientID: "c1", ClientAddr: "client",
		ClientPub: r.clientKP.Public().Marshal(), NonceCW: 5,
	})
	f := recv(t, r.client)
	var ch wire.JoinChallenge
	if err := wire.OpenBody(r.clientKP, f.Body, &ch); err != nil {
		t.Fatalf("OpenBody: %v", err)
	}
	r.sendSealed(r.client, wire.KindJoinResponse, wire.JoinResponse{
		ClientID:     "c1",
		NonceWCPlus1: ch.NonceWC + 2, // wrong
	})
	f = recv(t, r.client)
	if f.Kind != wire.KindJoinDenied {
		t.Fatalf("got %v, want JoinDenied", f.Kind)
	}
	expectSilence(t, r.ac)
	if r.srv.Joins() != 0 {
		t.Error("failed challenge still counted as join")
	}
}

func TestUnknownSessionIgnored(t *testing.T) {
	r := newRig(t, clock.Real{})
	r.sendSealed(r.client, wire.KindJoinResponse, wire.JoinResponse{
		ClientID: "never-seen", NonceWCPlus1: 9,
	})
	expectSilence(t, r.client)
	expectSilence(t, r.ac)
}

func TestGarbageBodyIgnored(t *testing.T) {
	r := newRig(t, clock.Real{})
	if err := r.client.Send("rs", &wire.Frame{
		Kind: wire.KindJoinRequest, From: "client", Body: []byte("garbage"),
	}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	expectSilence(t, r.client)
}

func TestUnexpectedKindIgnored(t *testing.T) {
	r := newRig(t, clock.Real{})
	body, err := wire.PlainBody(wire.MemberAlive{MemberID: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.client.Send("rs", &wire.Frame{Kind: wire.KindMemberAlive, From: "client", Body: body}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	expectSilence(t, r.client)
}

func TestSessionExpiry(t *testing.T) {
	fake := clock.NewFake(time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC))
	r := newRig(t, fake)
	r.sendSealed(r.client, wire.KindJoinRequest, wire.JoinRequest{
		AuthInfo: "good", ClientID: "c1", ClientAddr: "client",
		ClientPub: r.clientKP.Public().Marshal(), NonceCW: 5,
	})
	f := recv(t, r.client)
	var ch wire.JoinChallenge
	if err := wire.OpenBody(r.clientKP, f.Body, &ch); err != nil {
		t.Fatalf("OpenBody: %v", err)
	}

	// Age the session past the TTL; a new request triggers pruning.
	fake.Advance(2 * time.Minute)
	r.sendSealed(r.client, wire.KindJoinRequest, wire.JoinRequest{
		AuthInfo: "good", ClientID: "c2", ClientAddr: "client",
		ClientPub: r.clientKP.Public().Marshal(), NonceCW: 6,
	})
	recv(t, r.client) // c2's challenge

	// The stale c1 session must be gone: its step 3 is ignored.
	r.sendSealed(r.client, wire.KindJoinResponse, wire.JoinResponse{
		ClientID: "c1", NonceWCPlus1: ch.NonceWC + 1,
	})
	expectSilence(t, r.client)
	expectSilence(t, r.ac)
}

func TestRoundRobinPicker(t *testing.T) {
	p := &RoundRobinPicker{}
	ctrls := []wire.ACInfo{{ID: "a"}, {ID: "b"}, {ID: "c"}}
	want := []string{"a", "b", "c", "a", "b"}
	for i, w := range want {
		if got := p.Pick("x", ctrls).ID; got != w {
			t.Errorf("pick %d = %s, want %s", i, got, w)
		}
	}
}

func TestStaticPicker(t *testing.T) {
	ctrls := []wire.ACInfo{{ID: "a"}, {ID: "b"}, {ID: "c"}}
	p := &StaticPicker{Assign: map[string]string{"near-b": "b", "gone": "zz"}}
	if got := p.Pick("near-b", ctrls).ID; got != "b" {
		t.Errorf("mapped pick = %s, want b", got)
	}
	// Unmapped and unresolvable both fall back to the first controller.
	if got := p.Pick("unknown", ctrls).ID; got != "a" {
		t.Errorf("fallback pick = %s, want a", got)
	}
	if got := p.Pick("gone", ctrls).ID; got != "a" {
		t.Errorf("unresolvable pick = %s, want a", got)
	}
	p.Fallback = &RoundRobinPicker{}
	if got := p.Pick("unknown", ctrls).ID; got != "a" {
		t.Errorf("rr fallback first pick = %s, want a", got)
	}
	if got := p.Pick("unknown", ctrls).ID; got != "b" {
		t.Errorf("rr fallback second pick = %s, want b", got)
	}
}

func TestStaticAuthorizer(t *testing.T) {
	a := StaticAuthorizer{"ok": 2 * time.Hour}
	d, err := a.Authorize("ok")
	if err != nil || d != 2*time.Hour {
		t.Errorf("Authorize(ok) = %v, %v", d, err)
	}
	if _, err := a.Authorize("nope"); err == nil {
		t.Error("Authorize(nope) succeeded")
	}
}
