// Package regserver implements Mykil's registration server: the authority
// that authenticates prospective members (join protocol steps 1–3, paper
// Fig. 3), decides eligibility and membership duration from their
// authorization information, chooses an area for them, and introduces them
// to that area's controller (steps 4–5).
package regserver

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mykil/internal/clock"
	"mykil/internal/crypt"
	"mykil/internal/journal"
	"mykil/internal/node"
	"mykil/internal/obs"
	"mykil/internal/transport"
	"mykil/internal/wire"
)

// sessionTTL bounds how long a half-completed join handshake is kept.
const sessionTTL = time.Minute

// Authorizer decides whether an auth-info string is eligible to join and
// for how long ("this can contain credit card information and the time
// period the client wants to stay as a member").
type Authorizer interface {
	// Authorize returns the granted membership duration, or an error if
	// the client is not eligible.
	Authorize(authInfo string) (time.Duration, error)
}

// StaticAuthorizer authorizes from a fixed table of auth-info strings.
type StaticAuthorizer map[string]time.Duration

var _ Authorizer = StaticAuthorizer(nil)

// Authorize implements Authorizer.
func (a StaticAuthorizer) Authorize(authInfo string) (time.Duration, error) {
	d, ok := a[authInfo]
	if !ok {
		return 0, fmt.Errorf("regserver: authorization rejected")
	}
	return d, nil
}

// AreaPicker chooses an area controller for a newly admitted client. The
// paper suggests proximity or load balancing.
type AreaPicker interface {
	Pick(clientID string, controllers []wire.ACInfo) wire.ACInfo
}

// StaticPicker implements the paper's proximity/administrative-policy
// assignment: a fixed client-to-controller map with a fallback for
// unmapped clients.
type StaticPicker struct {
	// Assign maps client IDs to controller IDs.
	Assign map[string]string
	// Fallback picks for clients not in Assign; nil means the first
	// controller.
	Fallback AreaPicker
}

var _ AreaPicker = (*StaticPicker)(nil)

// Pick implements AreaPicker.
func (p *StaticPicker) Pick(clientID string, controllers []wire.ACInfo) wire.ACInfo {
	if want, ok := p.Assign[clientID]; ok {
		for _, c := range controllers {
			if c.ID == want {
				return c
			}
		}
	}
	if p.Fallback != nil {
		return p.Fallback.Pick(clientID, controllers)
	}
	return controllers[0]
}

// RoundRobinPicker balances clients across controllers in rotation.
type RoundRobinPicker struct {
	mu   sync.Mutex
	next int
}

var _ AreaPicker = (*RoundRobinPicker)(nil)

// Pick implements AreaPicker.
func (p *RoundRobinPicker) Pick(_ string, controllers []wire.ACInfo) wire.ACInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	ac := controllers[p.next%len(controllers)]
	p.next++
	return ac
}

// Config parameterizes a registration server.
type Config struct {
	// Transport carries protocol frames. Required.
	Transport transport.Transport
	// Keys is the server's key pair; its public half is the well-known
	// key clients are provisioned with. Required.
	Keys *crypt.KeyPair
	// Clock drives timestamps and session expiry; nil means clock.Real.
	Clock clock.Clock
	// Auth decides eligibility. Required.
	Auth Authorizer
	// Controllers seeds the directory of area controllers (id, address,
	// public key). Required, non-empty. The live directory is dynamic:
	// AddController and RemoveController change it at runtime (area
	// splits spawn controllers, merges retire them), and with Journal set
	// every change is durable.
	Controllers []wire.ACInfo
	// Picker selects an area per client; nil means round-robin.
	Picker AreaPicker
	// Journal, if set, makes the member registry and K_shared epoch
	// durable across restarts.
	Journal *journal.Journal
	// Recovery, if set, is replayed into the registry before serving
	// (pass the Recovery returned by journal.Open alongside Journal).
	Recovery *journal.Recovery
	// SnapshotEvery spaces registry snapshots in records; zero means
	// DefaultSnapshotEvery.
	SnapshotEvery int
	// Observer, if set, receives structured protocol trace events for
	// the server's side of the join handshake (steps 2, 4, 5).
	Observer obs.Sink
	// Logf, if set, receives debug logging.
	Logf func(format string, args ...any)
}

// session holds one client's half-completed handshake.
type session struct {
	clientID   string
	clientAddr string
	clientPub  crypt.PublicKey
	clientDER  []byte
	nonceWC    uint64
	duration   time.Duration
	created    time.Time
}

// Server is the registration authority. Create with New, start with
// Start, stop with Close.
type Server struct {
	cfg Config
	clk clock.Clock

	// sessions holds half-completed handshakes (loop-owned).
	sessions map[string]*session
	// registry is the durable member registry (loop-owned after Start).
	registry map[string]RegisteredMember
	// controllers is the live area-controller directory (loop-owned after
	// Start), seeded from cfg.Controllers and mutated by Add/Remove.
	controllers []wire.ACInfo
	// ksharedEpoch is the durable shared ticket-key epoch (loop-owned).
	ksharedEpoch uint64
	// recsSinceSnap counts journal records since the last snapshot.
	recsSinceSnap int
	// joins counts completed admissions, for tests and load stats; atomic
	// so it stays readable after Close.
	joins atomic.Int64

	trace *obs.Tracer

	loop *node.Loop
}

// New validates the config and builds a server.
func New(cfg Config) (*Server, error) {
	if cfg.Transport == nil || cfg.Keys == nil || cfg.Auth == nil {
		return nil, fmt.Errorf("regserver: Transport, Keys, and Auth are required")
	}
	if len(cfg.Controllers) == 0 {
		return nil, fmt.Errorf("regserver: at least one area controller required")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Picker == nil {
		cfg.Picker = &RoundRobinPicker{}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = DefaultSnapshotEvery
	}
	s := &Server{
		cfg:         cfg,
		clk:         cfg.Clock,
		sessions:    make(map[string]*session),
		registry:    make(map[string]RegisteredMember),
		controllers: append([]wire.ACInfo(nil), cfg.Controllers...),
	}
	s.trace = obs.NewTracer("regserver", cfg.Clock, cfg.Observer)
	if err := s.restoreFromJournal(cfg.Recovery); err != nil {
		return nil, err
	}
	s.loop = node.New(node.Config{
		Name:      "regserver",
		Transport: cfg.Transport,
		Clock:     cfg.Clock,
		TickEvery: sessionTTL / 2,
		OnFrame:   s.handle,
		OnTick:    s.pruneSessions,
		Stats:     obs.NewRegistry(obs.L("node", "regserver")),
		Logf:      cfg.Logf,
	})
	return s, nil
}

// Stats exposes the server's node-loop counters (frames, commands,
// ticks, drops).
func (s *Server) Stats() *obs.Registry { return s.loop.Stats() }

// Start launches the serving loop.
func (s *Server) Start() {
	s.loop.Start()
}

// Close stops the server and waits for its loop to exit. It does not
// close the transport, which the caller owns.
func (s *Server) Close() {
	s.loop.Close()
}

// Joins reports how many clients completed registration.
func (s *Server) Joins() int64 {
	return s.joins.Load()
}

func (s *Server) handle(f *wire.Frame) {
	switch f.Kind {
	case wire.KindJoinRequest:
		s.handleJoinRequest(f)
	case wire.KindJoinResponse:
		s.handleJoinResponse(f)
	default:
		s.cfg.Logf("regserver: ignoring frame kind %v from %s", f.Kind, f.From)
	}
}

// handleJoinRequest processes step 1 and answers with step 2.
func (s *Server) handleJoinRequest(f *wire.Frame) {
	var req wire.JoinRequest
	if err := wire.OpenBody(s.cfg.Keys, f.Body, &req); err != nil {
		s.cfg.Logf("regserver: step 1 from %s: %v", f.From, err)
		return
	}
	clientPub, err := crypt.ParsePublicKey(req.ClientPub)
	if err != nil {
		s.cfg.Logf("regserver: step 1 from %s: bad client key: %v", f.From, err)
		return
	}
	duration, err := s.cfg.Auth.Authorize(req.AuthInfo)
	if err != nil {
		s.deny(req.ClientAddr, clientPub, req.ClientID, "authorization rejected")
		return
	}

	sess := &session{
		clientID:   req.ClientID,
		clientAddr: req.ClientAddr,
		clientPub:  clientPub,
		clientDER:  req.ClientPub,
		nonceWC:    crypt.Nonce(),
		duration:   duration,
		created:    s.clk.Now(),
	}
	s.pruneSessions()
	s.sessions[req.ClientID] = sess

	// Step 2: challenge the client to prove possession of its key.
	s.trace.Step(obs.ProtoJoin, req.ClientID, 2, "JoinChallenge")
	s.sendSealed(req.ClientAddr, clientPub, wire.KindJoinChallenge, wire.JoinChallenge{
		NonceCWPlus1: req.NonceCW + 1,
		NonceWC:      sess.nonceWC,
	}, false)
}

// handleJoinResponse processes step 3 and, on success, emits steps 4 (to
// the chosen AC) and 5 (to the client).
func (s *Server) handleJoinResponse(f *wire.Frame) {
	var resp wire.JoinResponse
	if err := wire.OpenBody(s.cfg.Keys, f.Body, &resp); err != nil {
		s.cfg.Logf("regserver: step 3 from %s: %v", f.From, err)
		return
	}
	sess, ok := s.sessions[resp.ClientID]
	if ok {
		delete(s.sessions, resp.ClientID)
	}
	if !ok {
		s.cfg.Logf("regserver: step 3 for unknown session %q", resp.ClientID)
		return
	}
	if resp.NonceWCPlus1 != sess.nonceWC+1 {
		s.deny(sess.clientAddr, sess.clientPub, sess.clientID, "challenge failed")
		return
	}

	if len(s.controllers) == 0 {
		s.deny(sess.clientAddr, sess.clientPub, sess.clientID, "no area controller available")
		return
	}
	ac := s.cfg.Picker.Pick(sess.clientID, s.controllers)
	acPub, err := crypt.ParsePublicKey(ac.PubDER)
	if err != nil {
		s.cfg.Logf("regserver: controller %s has unparsable key: %v", ac.ID, err)
		return
	}
	nonceAC := crypt.Nonce()
	now := s.clk.Now()

	// Durability point: the admission is journaled before either frame
	// leaves, so a crash after the referral or grant is on the wire can
	// never produce a client whose registration the restarted server has
	// no record of (§IV).
	s.journalAdmit(RegisteredMember{
		ClientID:   sess.clientID,
		Controller: ac.ID,
		Duration:   sess.duration,
		Admitted:   now,
	})

	// Step 4: refer the client to the area controller, signed so the AC
	// can authenticate the referral's origin.
	s.trace.Step(obs.ProtoJoin, sess.clientID, 4, "JoinRefer", obs.String("ac", ac.ID))
	s.sendSealed(ac.Addr, acPub, wire.KindJoinRefer, wire.JoinRefer{
		NonceAC:    nonceAC,
		ClientID:   sess.clientID,
		ClientAddr: sess.clientAddr,
		Timestamp:  now,
		ClientPub:  sess.clientDER,
		Duration:   sess.duration,
	}, true)

	// Step 5: hand the client its AC plus the full controller directory
	// for later rejoins (§IV-B).
	s.trace.Step(obs.ProtoJoin, sess.clientID, 5, "JoinGrant", obs.String("ac", ac.ID),
		obs.Dur("duration", sess.duration))
	s.sendSealed(sess.clientAddr, sess.clientPub, wire.KindJoinGrant, wire.JoinGrant{
		NonceACPlus1: nonceAC + 1,
		AC:           ac,
		Directory:    append([]wire.ACInfo(nil), s.controllers...),
	}, true)

	s.joins.Add(1)
	s.cfg.Logf("regserver: admitted %s to area controller %s (duration %v)",
		sess.clientID, ac.ID, sess.duration)
}

// deny sends a JoinDenied sealed to the client.
func (s *Server) deny(addr string, pub crypt.PublicKey, clientID, reason string) {
	s.sendSealed(addr, pub, wire.KindJoinDenied, wire.JoinDenied{
		ClientID: clientID,
		Reason:   reason,
	}, true)
}

// sendSealed seals body to the recipient and transmits it, optionally
// signing with the server's private key.
func (s *Server) sendSealed(addr string, to crypt.PublicKey, kind wire.Kind, body wire.Marshaler, sign bool) {
	blob, err := wire.SealBody(to, body)
	if err != nil {
		s.cfg.Logf("regserver: sealing %v to %s: %v", kind, addr, err)
		return
	}
	f := &wire.Frame{Kind: kind, From: s.cfg.Transport.Addr(), Body: blob}
	if sign {
		f.Sig = s.cfg.Keys.Sign(blob)
	}
	if err := s.cfg.Transport.Send(addr, f); err != nil {
		s.cfg.Logf("regserver: sending %v to %s: %v", kind, addr, err)
	}
}

// pruneSessions drops handshakes older than sessionTTL. Runs on the loop
// — on every step-1 arrival and on the housekeeping tick, so abandoned
// handshakes are reclaimed even when no new clients show up.
func (s *Server) pruneSessions() {
	cutoff := s.clk.Now().Add(-sessionTTL)
	for id, sess := range s.sessions {
		if sess.created.Before(cutoff) {
			delete(s.sessions, id)
		}
	}
}
