// Package lkh implements the LKH (logical key hierarchy) baseline of Wong
// et al. [21] the paper compares against: a single key server maintaining
// one tree-structured key hierarchy over the entire multicast group. It
// reuses the auxiliary-key-tree engine (internal/keytree) with the whole
// group as one "area"; what distinguishes it from Mykil is exactly what
// the paper's analysis says — one global tree, one centralized server, no
// areas, no partition tolerance.
package lkh

import (
	"mykil/internal/crypt"
	"mykil/internal/keytree"
)

// KeyServer is the centralized LKH key manager.
type KeyServer struct {
	tree *keytree.Tree
}

// New creates a key server with the given tree configuration.
func New(cfg keytree.Config) *KeyServer {
	return &KeyServer{tree: keytree.New(cfg)}
}

// Tree exposes the underlying key tree for measurement.
func (s *KeyServer) Tree() *keytree.Tree { return s.tree }

// GroupKey returns the current group key (the tree root).
func (s *KeyServer) GroupKey() crypt.SymKey { return s.tree.AreaKey() }

// Join admits one member.
func (s *KeyServer) Join(m keytree.MemberID) (*keytree.BatchResult, error) {
	return s.tree.Join(m)
}

// Leave removes one member, rekeying its root path.
func (s *KeyServer) Leave(m keytree.MemberID) (*keytree.BatchResult, error) {
	return s.tree.Leave(m)
}

// BatchLeave removes several members in one rekey operation.
func (s *KeyServer) BatchLeave(ms []keytree.MemberID) (*keytree.BatchResult, error) {
	return s.tree.BatchLeave(ms)
}

// NumMembers returns the group size.
func (s *KeyServer) NumMembers() int { return s.tree.NumMembers() }

// ServerKeyCount returns how many keys the server stores — §V-A notes
// this is the whole tree (≈ 2^18 keys for 100,000 members in the paper's
// binary accounting).
func (s *KeyServer) ServerKeyCount() int { return s.tree.NumNodes() }

// MemberKeyCount returns how many keys one member stores (its path).
func (s *KeyServer) MemberKeyCount(m keytree.MemberID) (int, error) {
	return s.tree.MemberKeyCount(m)
}
