package lkh

import (
	"fmt"
	"testing"

	"mykil/internal/crypt"
	"mykil/internal/keytree"
)

func joinN(t *testing.T, s *KeyServer, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := s.Join(keytree.MemberID(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatalf("Join %d: %v", i, err)
		}
	}
}

func TestLifecycle(t *testing.T) {
	s := New(keytree.Config{Arity: 4})
	joinN(t, s, 20)
	if s.NumMembers() != 20 {
		t.Fatalf("NumMembers = %d", s.NumMembers())
	}
	key := s.GroupKey()
	if _, err := s.Leave("m7"); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	if s.NumMembers() != 19 {
		t.Errorf("NumMembers after leave = %d", s.NumMembers())
	}
	if s.GroupKey().Equal(key) {
		t.Error("group key unchanged by leave")
	}
}

func TestPaperLeaveMessageSize(t *testing.T) {
	// §V-C computes the LKH leave rekey as 2 encryptions per level of a
	// binary tree: our engine produces 2d-1 entries for a complete tree
	// of depth d (the vacated leaf is skipped as a target).
	s := New(keytree.Config{Arity: 2, Encryptor: keytree.AccountingEncryptor{}})
	joinN(t, s, 1024) // depth 10
	res, err := s.Leave("m0")
	if err != nil {
		t.Fatalf("Leave: %v", err)
	}
	want := (2*10 - 1) * crypt.SymKeyLen
	if got := res.Update.PaperBytes(); got != want {
		t.Errorf("leave rekey bytes = %d, want %d", got, want)
	}
}

func TestServerStoresWholeTree(t *testing.T) {
	s := New(keytree.Config{Arity: 2, Encryptor: keytree.AccountingEncryptor{}})
	joinN(t, s, 256)
	if got := s.ServerKeyCount(); got != 511 {
		t.Errorf("server keys = %d, want 511 (complete binary tree)", got)
	}
	mk, err := s.MemberKeyCount("m0")
	if err != nil {
		t.Fatalf("MemberKeyCount: %v", err)
	}
	if mk != 9 { // depth 8 + root
		t.Errorf("member keys = %d, want 9", mk)
	}
}

func TestBatchLeaveSharesPaths(t *testing.T) {
	s := New(keytree.Config{Arity: 2, Encryptor: keytree.AccountingEncryptor{}})
	joinN(t, s, 64)
	cohort, err := s.Tree().CohortOf("m0", 4)
	if err != nil {
		t.Fatalf("CohortOf: %v", err)
	}
	res, err := s.BatchLeave(cohort)
	if err != nil {
		t.Fatalf("BatchLeave: %v", err)
	}
	// Four separate leaves at depth 6 would cost ~4×11 entries; the
	// clustered batch must cost well under that.
	if res.Update.NumKeys() >= 44 {
		t.Errorf("batched entries = %d, want < 44", res.Update.NumKeys())
	}
	if s.NumMembers() != 60 {
		t.Errorf("NumMembers = %d", s.NumMembers())
	}
}
