package member

import (
	"fmt"

	"mykil/internal/crypt"
	"mykil/internal/keytree"
	"mykil/internal/obs"
	"mykil/internal/wire"
)

// startJoin begins the seven-step join protocol (loop context).
func (m *Member) startJoin(errc chan error) {
	if m.op != nil {
		errc <- ErrBusy
		return
	}
	if m.cfg.RSAddr == "" || m.cfg.RSPub.IsZero() {
		errc <- fmt.Errorf("member: no registration server configured")
		return
	}
	now := m.clk.Now()
	m.op = &pendingOp{
		kind:     opJoin,
		deadline: now.Add(m.cfg.OpTimeout),
		errc:     errc,
		nonceCW:  crypt.Nonce(),
		start:    now,
	}
	// Step 1: {auth-info; Pub_k; Nonce_CW; MAC}_Pub_rs.
	m.trace.Step(obs.ProtoJoin, m.cfg.ID, 1, "JoinRequest", obs.String("rs", m.cfg.RSAddr))
	m.sendSealed(m.cfg.RSAddr, m.cfg.RSPub, wire.KindJoinRequest, wire.JoinRequest{
		AuthInfo:   m.cfg.AuthInfo,
		ClientID:   m.cfg.ID,
		ClientAddr: m.cfg.Transport.Addr(),
		ClientPub:  m.cfg.Keys.Public().Marshal(),
		NonceCW:    m.op.nonceCW,
	})
}

// handleJoinChallenge is step 2; it answers with step 3.
func (m *Member) handleJoinChallenge(f *wire.Frame) {
	if m.op == nil || m.op.kind != opJoin {
		return
	}
	var ch wire.JoinChallenge
	if err := wire.OpenBody(m.cfg.Keys, f.Body, &ch); err != nil {
		m.cfg.Logf("%s: join step 2: %v", m.cfg.ID, err)
		return
	}
	// Authenticate the RS: only the holder of the well-known key's
	// private half could read Nonce_CW.
	if ch.NonceCWPlus1 != m.op.nonceCW+1 {
		m.failOp(fmt.Errorf("%w: registration server failed nonce check", ErrDenied))
		return
	}
	// Step 3: {Nonce_WC+1; MAC}_Pub_rs.
	m.trace.Step(obs.ProtoJoin, m.cfg.ID, 3, "JoinResponse")
	m.sendSealed(m.cfg.RSAddr, m.cfg.RSPub, wire.KindJoinResponse, wire.JoinResponse{
		ClientID:     m.cfg.ID,
		NonceWCPlus1: ch.NonceWC + 1,
	})
}

// handleJoinGrant is step 5; it answers with step 6 to the assigned AC.
func (m *Member) handleJoinGrant(f *wire.Frame) {
	if m.op == nil || m.op.kind != opJoin {
		return
	}
	// The grant is signed by the RS (§III-B step 5).
	if err := m.cfg.RSPub.Verify(f.Body, f.Sig); err != nil {
		m.cfg.Logf("%s: join grant with bad signature", m.cfg.ID)
		return
	}
	var g wire.JoinGrant
	if err := wire.OpenBody(m.cfg.Keys, f.Body, &g); err != nil {
		m.cfg.Logf("%s: join step 5: %v", m.cfg.ID, err)
		return
	}
	acPub, err := crypt.ParsePublicKey(g.AC.PubDER)
	if err != nil {
		m.failOp(fmt.Errorf("member: assigned controller key unparsable: %w", err))
		return
	}
	m.op.acAddr = g.AC.Addr
	m.op.acID = g.AC.ID
	m.op.acPub = acPub
	m.op.nonceCA = crypt.Nonce()
	m.directory = sharedDirectories.canonical(g.Directory)

	// Step 6: {Nonce_AC+2; Nonce_CA; MAC}_Pub_ac.
	m.trace.Step(obs.ProtoJoin, m.cfg.ID, 6, "JoinToAC", obs.String("ac", g.AC.ID))
	m.sendSealed(g.AC.Addr, acPub, wire.KindJoinToAC, wire.JoinToAC{
		ClientID:     m.cfg.ID,
		ClientAddr:   m.cfg.Transport.Addr(),
		NonceACPlus2: g.NonceACPlus1 + 1,
		NonceCA:      m.op.nonceCA,
		SuiteMask:    m.cfg.Suites,
	})
}

// handleJoinWelcome is step 7: admission.
func (m *Member) handleJoinWelcome(f *wire.Frame) {
	if m.op == nil || m.op.kind != opJoin {
		return
	}
	var w wire.JoinWelcome
	if err := wire.OpenBody(m.cfg.Keys, f.Body, &w); err != nil {
		m.cfg.Logf("%s: join step 7: %v", m.cfg.ID, err)
		return
	}
	// Authenticate the AC: it echoed our challenge from step 6.
	if w.NonceCAPlus1 != m.op.nonceCA+1 {
		m.failOp(fmt.Errorf("%w: controller failed nonce check", ErrDenied))
		return
	}
	if err := m.attach(m.op.acID, m.op.acAddr, m.op.acPub, w.AreaID, w.Path, w.Epoch, w.TicketBlob, w.BackupAddr, w.BackupPub, w.Suite); err != nil {
		m.failOp(err)
		return
	}
	m.completeOp(nil)
}

// handleJoinDenied fails a pending join.
func (m *Member) handleJoinDenied(f *wire.Frame) {
	if m.op == nil {
		return
	}
	var d wire.JoinDenied
	if err := wire.OpenBody(m.cfg.Keys, f.Body, &d); err != nil {
		return
	}
	m.failOp(fmt.Errorf("%w: %s", ErrDenied, d.Reason))
}

// startRejoin begins the six-step rejoin protocol toward acID (loop
// context).
func (m *Member) startRejoin(acID string, errc chan error) {
	if m.op != nil {
		errc <- ErrBusy
		return
	}
	if len(m.ticketBlob) == 0 {
		errc <- fmt.Errorf("member: no ticket held; full join required")
		return
	}
	var target *wire.ACInfo
	for i := range m.directory {
		if m.directory[i].ID == acID {
			target = &m.directory[i]
			break
		}
	}
	if target == nil {
		errc <- fmt.Errorf("member: controller %q not in directory", acID)
		return
	}
	pub, err := crypt.ParsePublicKey(target.PubDER)
	if err != nil {
		errc <- fmt.Errorf("member: controller %q key unparsable: %w", acID, err)
		return
	}
	now := m.clk.Now()
	m.op = &pendingOp{
		kind:     opRejoin,
		deadline: now.Add(m.cfg.OpTimeout),
		errc:     errc,
		nonceCB:  crypt.Nonce(),
		acAddr:   target.Addr,
		acID:     target.ID,
		acPub:    pub,
		start:    now,
	}
	// Step 1: {Nonce_CB; ticket; MAC}_Pub_ac_b.
	m.trace.Step(obs.ProtoRejoin, m.cfg.ID, 1, "RejoinRequest", obs.String("target", target.ID))
	m.sendSealed(target.Addr, pub, wire.KindRejoinRequest, wire.RejoinRequest{
		ClientID:   m.cfg.ID,
		ClientAddr: m.cfg.Transport.Addr(),
		NonceCB:    m.op.nonceCB,
		TicketBlob: m.ticketBlob,
		SuiteMask:  m.cfg.Suites,
	})
}

// handleRejoinChallenge is step 2; it answers with step 3.
func (m *Member) handleRejoinChallenge(f *wire.Frame) {
	if m.op == nil || m.op.kind != opRejoin {
		return
	}
	var ch wire.RejoinChallenge
	if err := wire.OpenBody(m.cfg.Keys, f.Body, &ch); err != nil {
		return
	}
	if ch.NonceCBPlus1 != m.op.nonceCB+1 {
		m.failOp(fmt.Errorf("%w: controller failed nonce check", ErrDenied))
		return
	}
	// Step 3: {Nonce_BC+1; MAC}_Pub_ac_b.
	m.trace.Step(obs.ProtoRejoin, m.cfg.ID, 3, "RejoinResponse")
	m.sendSealed(m.op.acAddr, m.op.acPub, wire.KindRejoinResponse, wire.RejoinResponse{
		ClientID:     m.cfg.ID,
		NonceBCPlus1: ch.NonceBC + 1,
	})
}

// handleRejoinWelcome is step 6: admission into the new area.
func (m *Member) handleRejoinWelcome(f *wire.Frame) {
	if m.op == nil || m.op.kind != opRejoin {
		return
	}
	// Step 6 is signed by the new controller.
	if err := m.op.acPub.Verify(f.Body, f.Sig); err != nil {
		m.cfg.Logf("%s: rejoin welcome with bad signature", m.cfg.ID)
		return
	}
	var w wire.RejoinWelcome
	if err := wire.OpenBody(m.cfg.Keys, f.Body, &w); err != nil {
		return
	}
	if err := m.attach(m.op.acID, m.op.acAddr, m.op.acPub, w.AreaID, w.Path, w.Epoch, w.TicketBlob, w.BackupAddr, w.BackupPub, w.Suite); err != nil {
		m.failOp(err)
		return
	}
	m.completeOp(nil)
}

// handleRejoinDenied fails a pending rejoin.
func (m *Member) handleRejoinDenied(f *wire.Frame) {
	if m.op == nil || m.op.kind != opRejoin {
		return
	}
	var d wire.RejoinDenied
	if err := wire.OpenBody(m.cfg.Keys, f.Body, &d); err != nil {
		return
	}
	m.rejoinBlacklist[m.op.acID] = m.clk.Now()
	m.failOp(fmt.Errorf("%w: %s", ErrDenied, d.Reason))
}

// attach installs area state after a successful join or rejoin. The
// welcome names the area's cipher suite; a suite we do not speak (or do
// not link) makes the admission unusable, so it fails here rather than
// leaving the member decoding garbage.
func (m *Member) attach(acID, acAddr string, acPub crypt.PublicKey, areaID string,
	path []keytree.PathKey, epoch uint64, ticketBlob []byte, backupAddr string, backupPubDER []byte,
	suiteID crypt.SuiteID) error {

	suite, err := crypt.SuiteByID(suiteID)
	if err != nil {
		return fmt.Errorf("%w: area negotiated unknown cipher suite %d", ErrDenied, uint8(suiteID))
	}
	if suite.ID().Mask()&m.cfg.Suites == 0 {
		return fmt.Errorf("%w: area negotiated cipher suite %s outside our advertised set", ErrDenied, suite.Name())
	}
	m.connected = true
	m.acID = acID
	m.acAddr = acAddr
	m.acPub = acPub
	m.areaID = areaID
	m.suite = suite
	m.view = keytree.NewMemberView(path, epoch, keytree.NewSuiteEncryptor(suite))
	if len(ticketBlob) > 0 {
		m.ticketBlob = ticketBlob
	}
	m.backupAddr = backupAddr
	m.backupPub = crypt.PublicKey{}
	if len(backupPubDER) > 0 {
		if pub, err := crypt.ParsePublicKey(backupPubDER); err == nil {
			m.backupPub = pub
		}
	}
	now := m.clk.Now()
	m.lastACRecv = now
	m.lastSent = now
	m.cfg.Logf("%s: attached to area %s via %s (epoch %d, suite %s)", m.cfg.ID, m.areaID, acID, epoch, suite.Name())
	return nil
}

// detach marks the member disconnected. The area view, ticket, and backup
// identity are retained: a signed §IV-C failover announcement can still
// re-attach us, and the ticket drives rejoins. A successful join/rejoin
// replaces all of it.
func (m *Member) detach() {
	m.connected = false
	m.acAddr = ""
	m.acPub = crypt.PublicKey{}
}

// completeOp resolves the pending operation successfully, recording the
// handshake's latency against the clock reading taken at its start.
func (m *Member) completeOp(err error) {
	if m.op == nil {
		return
	}
	if err == nil && !m.op.start.IsZero() {
		elapsed := m.clk.Now().Sub(m.op.start).Seconds()
		switch m.op.kind {
		case opJoin:
			m.joinHist.Observe(elapsed)
		case opRejoin:
			m.rejoinHist.Observe(elapsed)
		}
	}
	m.op.errc <- err
	m.op = nil
}

// failOp resolves the pending operation with an error.
func (m *Member) failOp(err error) {
	if m.op == nil {
		return
	}
	m.op.errc <- err
	m.op = nil
}

// sendSealed seals a body to a recipient and transmits it.
func (m *Member) sendSealed(addr string, to crypt.PublicKey, kind wire.Kind, body wire.Marshaler) {
	blob, err := wire.SealBody(to, body)
	if err != nil {
		m.cfg.Logf("%s: sealing %v: %v", m.cfg.ID, kind, err)
		return
	}
	if err := m.cfg.Transport.Send(addr, &wire.Frame{
		Kind: kind,
		From: m.cfg.Transport.Addr(),
		Body: blob,
	}); err != nil {
		m.cfg.Logf("%s: sending %v to %s: %v", m.cfg.ID, kind, addr, err)
	}
	m.lastSent = m.clk.Now()
}

// sendPlain transmits an unencrypted body.
func (m *Member) sendPlain(addr string, kind wire.Kind, body wire.Marshaler) {
	blob, err := wire.PlainBody(body)
	if err != nil {
		return
	}
	if err := m.cfg.Transport.Send(addr, &wire.Frame{
		Kind: kind,
		From: m.cfg.Transport.Addr(),
		Body: blob,
	}); err != nil {
		m.cfg.Logf("%s: sending %v to %s: %v", m.cfg.ID, kind, addr, err)
	}
	m.lastSent = m.clk.Now()
}
