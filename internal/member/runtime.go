package member

import (
	"bytes"
	"errors"
	"time"

	"mykil/internal/crypt"
	"mykil/internal/keytree"
	"mykil/internal/obs"
	"mykil/internal/wire"
)

// handleFrame dispatches one incoming frame (loop context).
func (m *Member) handleFrame(f *wire.Frame) {
	if m.connected && f.From == m.acAddr {
		m.lastACRecv = m.clk.Now()
	}
	switch f.Kind {
	case wire.KindJoinChallenge:
		m.handleJoinChallenge(f)
	case wire.KindJoinGrant:
		m.handleJoinGrant(f)
	case wire.KindJoinWelcome:
		m.handleJoinWelcome(f)
	case wire.KindJoinDenied:
		m.handleJoinDenied(f)
	case wire.KindRejoinChallenge:
		m.handleRejoinChallenge(f)
	case wire.KindRejoinWelcome:
		m.handleRejoinWelcome(f)
	case wire.KindRejoinDenied:
		m.handleRejoinDenied(f)
	case wire.KindData:
		m.handleData(f)
	case wire.KindKeyUpdate:
		m.handleKeyUpdate(f)
	case wire.KindPathUpdate:
		m.handlePathUpdate(f)
	case wire.KindACAlive:
		m.handleACAlive(f)
	case wire.KindACFailover:
		m.handleFailover(f)
	case wire.KindAreaReassign:
		m.handleAreaReassign(f)
	default:
		m.cfg.Logf("%s: ignoring frame kind %v from %s", m.cfg.ID, f.Kind, f.From)
	}
}

// handleData decrypts one multicast payload (Fig. 2 receive side).
func (m *Member) handleData(f *wire.Frame) {
	if !m.connected {
		return
	}
	var d wire.Data
	if err := wire.DecodePlain(f.Body, &d); err != nil {
		return
	}
	if d.Origin == m.cfg.ID {
		return // our own packet relayed back
	}
	if d.FromArea != m.areaID {
		return // sealed for a different area's key
	}
	raw, err := m.suite.Open(m.view.AreaKey(), d.EncKey)
	if err != nil {
		m.cfg.Logf("%s: cannot open data key (stale area key?): %v", m.cfg.ID, err)
		m.requestPath()
		return
	}
	dataKey, err := crypt.SymKeyFromBytes(raw)
	if err != nil {
		return
	}
	var payload []byte
	switch d.Cipher {
	case wire.CipherRC4:
		payload = crypt.RC4XOR(dataKey, append([]byte(nil), d.Payload...))
	default:
		if s, ok := payloadSuite(d.Cipher); ok {
			payload, err = s.Open(dataKey, d.Payload)
		} else {
			payload, err = crypt.Open(dataKey, d.Payload)
		}
		if err != nil {
			return
		}
	}
	m.received++
	if m.cfg.OnData != nil {
		m.cfg.OnData(payload, d.Origin)
	}
}

// handleKeyUpdate applies a signed rekey multicast (§III).
func (m *Member) handleKeyUpdate(f *wire.Frame) {
	if !m.connected || f.From != m.acAddr {
		return
	}
	// §III-E: key update messages are signed by the area controller.
	if err := m.acPub.Verify(f.Body, f.Sig); err != nil {
		m.cfg.Logf("%s: key update with bad signature dropped", m.cfg.ID)
		return
	}
	var u wire.KeyUpdate
	if err := wire.DecodePlain(f.Body, &u); err != nil {
		return
	}
	if u.AreaID != m.areaID {
		return
	}
	_, err := m.view.Apply(&keytree.KeyUpdate{Epoch: u.Epoch, Entries: u.Entries})
	switch {
	case err == nil:
		m.rekeys++
	case errors.Is(err, keytree.ErrEpochGap):
		// A rekey was lost (e.g. transient partition): recover the path.
		m.cfg.Logf("%s: missed rekey (at %d, got %d); requesting path", m.cfg.ID, m.view.Epoch(), u.Epoch)
		m.requestPath()
	case errors.Is(err, keytree.ErrStale):
		// Duplicate delivery; ignore.
	default:
		m.cfg.Logf("%s: applying key update: %v", m.cfg.ID, err)
	}
}

// handlePathUpdate rebases the member's path keys (displacement or
// recovery).
func (m *Member) handlePathUpdate(f *wire.Frame) {
	if !m.connected || f.From != m.acAddr {
		return
	}
	if err := m.acPub.Verify(f.Body, f.Sig); err != nil {
		m.cfg.Logf("%s: path update with bad signature dropped", m.cfg.ID)
		return
	}
	var pu wire.PathUpdate
	if err := wire.OpenBody(m.cfg.Keys, f.Body, &pu); err != nil {
		return
	}
	if pu.AreaID != m.areaID {
		return
	}
	m.view.Rebase(pu.Path, pu.Epoch)
	m.rekeys++
}

// handleFailover switches to the backup controller after verifying its
// signature against the backup key learned at join (§IV-C). A member that
// already declared disconnection (the timeouts race) re-attaches: its view
// is still valid because the backup restored the same tree.
func (m *Member) handleFailover(f *wire.Frame) {
	if m.backupPub.IsZero() || m.view == nil || m.areaID == "" {
		return
	}
	if err := m.backupPub.Verify(f.Body, f.Sig); err != nil {
		m.cfg.Logf("%s: failover announcement with bad signature dropped", m.cfg.ID)
		return
	}
	var fo wire.ACFailover
	if err := wire.DecodePlain(f.Body, &fo); err != nil {
		return
	}
	if fo.AreaID != m.areaID {
		return
	}
	m.connected = true
	m.acAddr = fo.NewAddr
	// The announcement names the successor's key: with quorum election a
	// replica other than the announcer may have won, and its rekeys will
	// carry its own signature. The trusted backup key vouches for it; fall
	// back to that key for announcements predating the NewPub field.
	m.acPub = m.backupPub
	if len(fo.NewPub) > 0 {
		if pub, err := crypt.ParsePublicKey(fo.NewPub); err == nil {
			m.acPub = pub
		}
	}
	m.acID = m.acID + "+backup"
	m.lastACRecv = m.clk.Now()
	m.cfg.Logf("%s: controller failover; now served by %s", m.cfg.ID, fo.NewAddr)
	if fo.Epoch > m.view.Epoch() {
		m.requestPath()
	}
}

// handleAreaReassign migrates to the target controller named by our own
// controller during an area split or merge: the target is upserted into
// the directory (the frame carries its endpoint and key, signed by the
// controller we already trust) and a ticket rejoin starts toward it. The
// old controller prevouched us there, so the rejoin admits without the
// steps 4-5 round trip.
func (m *Member) handleAreaReassign(f *wire.Frame) {
	if !m.connected || f.From != m.acAddr {
		return
	}
	if err := m.acPub.Verify(f.Body, f.Sig); err != nil {
		m.cfg.Logf("%s: area reassign with bad signature dropped", m.cfg.ID)
		return
	}
	var ra wire.AreaReassign
	if err := wire.DecodePlain(f.Body, &ra); err != nil {
		return
	}
	if ra.AreaID != m.areaID {
		return
	}
	m.upsertDirectory(wire.ACInfo{ID: ra.TargetID, Addr: ra.TargetAddr, PubDER: ra.TargetPub})
	m.trace.Event(obs.ProtoSplit, m.cfg.ID, "reassigned",
		obs.String("target", ra.TargetID), obs.String("reason", ra.Reason))
	if m.op != nil {
		// A handshake is already in flight; when it resolves, auto-rejoin
		// finds the target through the updated directory.
		m.cfg.Logf("%s: reassign to %s deferred (operation in flight)", m.cfg.ID, ra.TargetID)
		return
	}
	errc := make(chan error, 1)
	m.startRejoin(ra.TargetID, errc)
	go func() {
		if err := <-errc; err != nil {
			m.cfg.Logf("%s: reassign rejoin to %s failed: %v", m.cfg.ID, ra.TargetID, err)
		}
	}()
}

// upsertDirectory installs or refreshes one controller entry. The backing
// slice may be shared across members (directoryCache), so it is replaced,
// never mutated.
func (m *Member) upsertDirectory(info wire.ACInfo) {
	for i := range m.directory {
		if m.directory[i].ID == info.ID {
			if m.directory[i].Addr == info.Addr && bytes.Equal(m.directory[i].PubDER, info.PubDER) {
				return
			}
			nd := append([]wire.ACInfo(nil), m.directory...)
			nd[i] = info
			m.directory = nd
			return
		}
	}
	m.directory = append(append([]wire.ACInfo(nil), m.directory...), info)
}

// handleACAlive records controller liveness and, via the epoch the alive
// message carries, detects rekeys missed while partitioned (§IV-A).
func (m *Member) handleACAlive(f *wire.Frame) {
	if !m.connected || f.From != m.acAddr {
		return
	}
	var alive wire.ACAlive
	if err := wire.DecodePlain(f.Body, &alive); err != nil {
		return
	}
	if alive.AreaID == m.areaID && alive.Epoch > m.view.Epoch() {
		m.cfg.Logf("%s: alive message shows epoch %d ahead of ours (%d); requesting path",
			m.cfg.ID, alive.Epoch, m.view.Epoch())
		m.requestPath()
	}
}

// requestPath asks the controller to resend our path keys.
func (m *Member) requestPath() {
	if !m.connected {
		return
	}
	m.sendPlain(m.acAddr, wire.KindPathRequest, wire.PathRequest{
		MemberID: m.cfg.ID,
		Epoch:    m.view.Epoch(),
	})
}

// housekeeping runs the member's periodic duties (loop context).
func (m *Member) housekeeping() {
	now := m.clk.Now()

	// Fail a timed-out blocking operation.
	if m.op != nil && now.After(m.op.deadline) {
		m.failOp(ErrTimeout)
	}

	if !m.connected {
		// Disconnected with auto-rejoin on: keep trying — the §IV-B
		// machinery must survive candidate controllers that are
		// themselves unreachable.
		if m.cfg.AutoRejoin && m.op == nil && len(m.ticketBlob) > 0 &&
			now.Sub(m.lastRejoinTry) >= silenceFactor*m.cfg.TIdle {
			m.lastRejoinTry = now
			m.autoRejoin(m.lastFailedAC, now)
		}
		return
	}

	// §IV-A: tell the controller we are alive if we have been quiet.
	if now.Sub(m.lastSent) >= m.cfg.TActive {
		m.trace.Event(obs.ProtoAlive, m.cfg.ID, "MemberAlive", obs.String("ac", m.acID))
		m.sendPlain(m.acAddr, wire.KindMemberAlive, wire.MemberAlive{MemberID: m.cfg.ID})
	}

	// §IV-A: declare disconnection after 5×T_idle of controller silence.
	if now.Sub(m.lastACRecv) > silenceFactor*m.cfg.TIdle {
		m.cfg.Logf("%s: controller %s silent for %v; disconnected",
			m.cfg.ID, m.acID, now.Sub(m.lastACRecv))
		m.trace.Event(obs.ProtoAlive, m.cfg.ID, "controller-silent",
			obs.String("ac", m.acID), obs.Dur("silence", now.Sub(m.lastACRecv)))
		m.lastFailedAC = m.acID
		m.detach()
		if m.cfg.AutoRejoin && m.op == nil {
			m.lastRejoinTry = now
			m.autoRejoin(m.lastFailedAC, now)
		}
	}
}

// autoRejoin picks the next directory controller in rotation — skipping
// the one we just lost and any that recently denied us — and starts a
// rejoin toward it.
func (m *Member) autoRejoin(failedAC string, now time.Time) {
	const blacklistFor = time.Minute
	n := len(m.directory)
	for i := 0; i < n; i++ {
		e := m.directory[(m.rejoinRotation+i)%n]
		if e.ID == failedAC && n > 1 {
			continue
		}
		if until, ok := m.rejoinBlacklist[e.ID]; ok && now.Sub(until) < blacklistFor {
			continue
		}
		m.rejoinRotation = (m.rejoinRotation + i + 1) % n
		errc := make(chan error, 1)
		m.startRejoin(e.ID, errc)
		go func(ac string) {
			if err := <-errc; err != nil {
				m.cfg.Logf("%s: auto-rejoin to %s failed: %v", m.cfg.ID, ac, err)
			}
		}(e.ID)
		return
	}
	m.cfg.Logf("%s: no rejoin candidate available", m.cfg.ID)
}
