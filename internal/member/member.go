// Package member implements a Mykil group member: the client side of the
// seven-step join protocol (Fig. 3), the six-step rejoin protocol
// (Fig. 7), sending and receiving encrypted multicast data (Fig. 2),
// applying rekey messages, emitting §IV-A alive messages, detecting
// disconnection from its area controller, and automatically rejoining
// another area through its ticket.
package member

import (
	"errors"
	"fmt"
	"time"

	"mykil/internal/clock"
	"mykil/internal/crypt"
	"mykil/internal/keytree"
	"mykil/internal/node"
	"mykil/internal/obs"
	"mykil/internal/transport"
	"mykil/internal/wire"
)

// Default member timing; see area.Config for the controller's side.
const (
	DefaultTActive   = 10 * time.Second
	DefaultTIdle     = 2 * time.Second
	DefaultOpTimeout = 30 * time.Second
	silenceFactor    = 5
)

// Errors returned by member operations.
var (
	ErrStopped      = errors.New("member: stopped")
	ErrNotConnected = errors.New("member: not connected to an area")
	ErrBusy         = errors.New("member: another operation is in progress")
	ErrDenied       = errors.New("member: request denied")
	ErrTimeout      = errors.New("member: operation timed out")
)

// Config parameterizes a member.
type Config struct {
	// ID is the member's identity (the paper uses the NIC MAC address).
	// Required.
	ID string
	// Transport carries frames; Keys is the member's key pair. Required.
	Transport transport.Transport
	Keys      *crypt.KeyPair
	// Clock drives timers; nil means clock.Real.
	Clock clock.Clock
	// RSAddr and RSPub locate and authenticate the registration server.
	RSAddr string
	RSPub  crypt.PublicKey
	// AuthInfo is presented at registration (step 1).
	AuthInfo string
	// OnData, if set, receives each decrypted multicast payload. Called
	// from the member's loop: it must not call blocking member methods.
	OnData func(payload []byte, origin string)
	// AutoRejoin rejoins another directory controller after detecting
	// disconnection (§IV-B).
	AutoRejoin bool
	// DataCipher selects the bulk cipher for outgoing multicast data;
	// zero means wire.CipherAES. wire.CipherRC4 reproduces the paper's
	// §V-E hand-held data path (confidentiality only, no payload
	// authenticator). Incoming data is decrypted per the cipher each
	// packet declares.
	DataCipher wire.DataCipher
	// Suites is the bitmask of cipher suites this member is willing to
	// speak (1 << crypt.SuiteID), advertised during join/rejoin
	// negotiation. Zero means every registered suite. A controller whose
	// area runs a suite outside this mask denies admission.
	Suites uint64
	// Timing; zero values take the defaults.
	TActive   time.Duration
	TIdle     time.Duration
	OpTimeout time.Duration
	// Observer, if set, receives structured protocol trace events for
	// the member's side of the join/rejoin handshakes and alive rounds.
	Observer obs.Sink
	// Metrics, if set, receives the member's join/rejoin latency
	// histograms. Several members may share one registry so counts
	// aggregate; nil disables latency recording.
	Metrics *obs.Registry
	// Logf, if set, receives debug logging.
	Logf func(format string, args ...any)
}

func (cfg *Config) fillDefaults() error {
	if cfg.ID == "" || cfg.Transport == nil || cfg.Keys == nil {
		return fmt.Errorf("member: ID, Transport, and Keys are required")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.TActive == 0 {
		cfg.TActive = DefaultTActive
	}
	if cfg.TIdle == 0 {
		cfg.TIdle = DefaultTIdle
	}
	if cfg.OpTimeout == 0 {
		cfg.OpTimeout = DefaultOpTimeout
	}
	if cfg.DataCipher == 0 {
		cfg.DataCipher = wire.CipherAES
	}
	if cfg.Suites == 0 {
		cfg.Suites = crypt.AllSuitesMask()
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return nil
}

// opKind identifies the in-flight blocking operation.
type opKind int

const (
	opNone opKind = iota
	opJoin
	opRejoin
)

// pendingOp is one blocking Join/Rejoin in progress.
type pendingOp struct {
	kind     opKind
	deadline time.Time
	errc     chan error
	// Join-protocol scratch state.
	nonceCW uint64 // step 1 challenge to the RS
	nonceCA uint64 // step 6 challenge to the AC
	nonceCB uint64 // rejoin step 1 challenge
	acAddr  string
	acID    string
	acPub   crypt.PublicKey
	// start is the clock reading when the operation began, feeding the
	// join/rejoin latency histograms on success.
	start time.Time
}

// Member is one group member. Create with New, start with Start.
type Member struct {
	cfg Config
	clk clock.Clock

	// Area attachment (loop-owned).
	connected  bool
	areaID     string
	acID       string
	acAddr     string
	acPub      crypt.PublicKey
	backupAddr string
	backupPub  crypt.PublicKey
	view       *keytree.MemberView
	// suite is the area's negotiated cipher suite from the last welcome;
	// it seals outgoing data keys and opens incoming ones.
	suite      crypt.Suite
	ticketBlob []byte
	directory  []wire.ACInfo

	lastACRecv time.Time
	lastSent   time.Time
	dataSeq    uint64
	op         *pendingOp

	// rejoinBlacklist tracks controllers that recently denied us, so
	// auto-rejoin rotates through the directory.
	rejoinBlacklist map[string]time.Time
	rejoinRotation  int
	lastRejoinTry   time.Time
	lastFailedAC    string

	// Counters exposed for tests/benches (loop-owned, read via call).
	received int64
	rekeys   int64

	trace      *obs.Tracer
	joinHist   *obs.Histogram
	rejoinHist *obs.Histogram

	loop *node.Loop
}

// New validates the config and builds a member.
func New(cfg Config) (*Member, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	m := &Member{
		cfg:             cfg,
		clk:             cfg.Clock,
		rejoinBlacklist: make(map[string]time.Time),
	}
	m.trace = obs.NewTracer(cfg.ID, cfg.Clock, cfg.Observer)
	if cfg.Metrics != nil {
		m.joinHist = cfg.Metrics.Histogram(obs.MetricJoinSeconds, obs.HelpJoinSeconds, nil)
		m.rejoinHist = cfg.Metrics.Histogram(obs.MetricRejoinSeconds, obs.HelpRejoinSeconds, nil)
	}
	m.loop = node.New(node.Config{
		Name:      cfg.ID,
		Transport: cfg.Transport,
		Clock:     cfg.Clock,
		TickEvery: cfg.TIdle,
		OnFrame:   m.handleFrame,
		OnTick:    m.housekeeping,
		OnExit:    func() { m.failOp(ErrStopped) },
		Stats:     obs.NewRegistry(obs.L("node", cfg.ID)),
		Logf:      cfg.Logf,
	})
	return m, nil
}

// Stats exposes the member's node-loop counters (frames, commands,
// ticks, drops), labeled with the member's ID.
func (m *Member) Stats() *obs.Registry { return m.loop.Stats() }

// Start launches the member loop.
func (m *Member) Start() {
	m.loop.Start()
}

// Close stops the member loop (the transport is the caller's).
func (m *Member) Close() {
	m.loop.Close()
}

// call runs fn on the loop.
func (m *Member) call(fn func()) error {
	if err := m.loop.Call(fn); err != nil {
		return ErrStopped
	}
	return nil
}

// ---- Public API ----

// Join runs the full seven-step join protocol against the registration
// server and blocks until admitted or failed.
func (m *Member) Join() error {
	errc := make(chan error, 1)
	if err := m.call(func() { m.startJoin(errc) }); err != nil {
		return err
	}
	select {
	case err := <-errc:
		return err
	case <-m.loop.Stopped():
		return ErrStopped
	}
}

// Rejoin presents the member's ticket to the given controller (by
// directory ID) and blocks until admitted or failed.
func (m *Member) Rejoin(acID string) error {
	errc := make(chan error, 1)
	if err := m.call(func() { m.startRejoin(acID, errc) }); err != nil {
		return err
	}
	select {
	case err := <-errc:
		return err
	case <-m.loop.Stopped():
		return ErrStopped
	}
}

// Leave announces departure to the controller and detaches.
func (m *Member) Leave() error {
	return m.call(func() {
		if !m.connected {
			return
		}
		m.sendPlain(m.acAddr, wire.KindLeaveNotice, wire.LeaveNotice{MemberID: m.cfg.ID})
		m.detach()
		// A voluntary departure is not a §IV-B disconnection: hold
		// auto-rejoin back for a full silence window so an explicit
		// Rejoin (e.g. a ticket move) is not raced by the housekeeper.
		m.lastRejoinTry = m.clk.Now()
	})
}

// Send multicasts a payload to the group: the payload is encrypted under
// a fresh random key K_d, and K_d is sealed under the area key (Fig. 2).
func (m *Member) Send(payload []byte) error {
	var sendErr error
	err := m.call(func() {
		if !m.connected {
			sendErr = ErrNotConnected
			return
		}
		dataKey := crypt.NewSymKey()
		m.dataSeq++
		var body []byte
		switch m.cfg.DataCipher {
		case wire.CipherRC4:
			body = crypt.RC4XOR(dataKey, append([]byte(nil), payload...))
		default:
			if s, ok := payloadSuite(m.cfg.DataCipher); ok {
				body = s.Seal(dataKey, payload)
			} else {
				body = crypt.Seal(dataKey, payload)
			}
		}
		d := wire.Data{
			Origin:     m.cfg.ID,
			OriginArea: m.areaID,
			Seq:        m.dataSeq,
			FromArea:   m.areaID,
			Cipher:     m.cfg.DataCipher,
			EncKey:     m.suite.Seal(m.view.AreaKey(), dataKey[:]),
			Payload:    body,
		}
		body, err := wire.PlainBody(d)
		if err != nil {
			sendErr = err
			return
		}
		sendErr = m.cfg.Transport.Send(m.acAddr, &wire.Frame{
			Kind: wire.KindData,
			From: m.cfg.Transport.Addr(),
			Body: body,
		})
		m.lastSent = m.clk.Now()
	})
	if err != nil {
		return err
	}
	return sendErr
}

// payloadSuite maps an AEAD payload-cipher selector to its crypt suite.
// CipherAES (the legacy HMAC construction) and CipherRC4 are handled by
// their original paths and return false.
func payloadSuite(c wire.DataCipher) (crypt.Suite, bool) {
	switch c {
	case wire.CipherGCM:
		s, err := crypt.SuiteByID(crypt.SuiteAESGCM)
		return s, err == nil
	case wire.CipherChaCha:
		s, err := crypt.SuiteByID(crypt.SuiteChaCha20Poly1305)
		return s, err == nil
	}
	return nil, false
}

// Connected reports whether the member is attached to an area.
func (m *Member) Connected() bool {
	var v bool
	_ = m.call(func() { v = m.connected })
	return v
}

// AreaID reports the current area ("" when detached).
func (m *Member) AreaID() string {
	var v string
	_ = m.call(func() { v = m.areaID })
	return v
}

// ControllerID reports the current area controller's identity.
func (m *Member) ControllerID() string {
	var v string
	_ = m.call(func() { v = m.acID })
	return v
}

// Epoch reports the member's current key epoch.
func (m *Member) Epoch() uint64 {
	var v uint64
	_ = m.call(func() {
		if m.view != nil {
			v = m.view.Epoch()
		}
	})
	return v
}

// Received reports how many data payloads were delivered.
func (m *Member) Received() int64 {
	var v int64
	_ = m.call(func() { v = m.received })
	return v
}

// Rekeys reports how many key updates were applied.
func (m *Member) Rekeys() int64 {
	var v int64
	_ = m.call(func() { v = m.rekeys })
	return v
}

// Directory returns the controller directory learned at registration.
func (m *Member) Directory() []wire.ACInfo {
	var v []wire.ACInfo
	_ = m.call(func() { v = append([]wire.ACInfo(nil), m.directory...) })
	return v
}

// NumKeys reports how many symmetric keys the member stores (§V-A).
func (m *Member) NumKeys() int {
	var v int
	_ = m.call(func() {
		if m.view != nil {
			v = m.view.NumKeys()
		}
	})
	return v
}
