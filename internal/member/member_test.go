package member

import (
	"errors"
	"sync"
	"testing"
	"time"

	"mykil/internal/crypt"
	"mykil/internal/simnet"
	"mykil/internal/transport"
)

var (
	testPoolOnce sync.Once
	testPool     *crypt.Pool
)

func keyPair(t *testing.T) *crypt.KeyPair {
	t.Helper()
	testPoolOnce.Do(func() {
		testPool = crypt.NewPool(512)
		if err := testPool.Warm(4); err != nil {
			t.Fatalf("warming pool: %v", err)
		}
	})
	kp, err := testPool.Get()
	if err != nil {
		t.Fatalf("key pair: %v", err)
	}
	return kp
}

// newMember stands up a member on a private simnet with no servers: the
// right fixture for error-path tests.
func newMember(t *testing.T, mutate func(*Config)) (*Member, *simnet.Network) {
	t.Helper()
	n := simnet.New(simnet.Config{})
	tr, err := transport.NewSim(n, "m")
	if err != nil {
		t.Fatalf("transport: %v", err)
	}
	rsKeys := keyPair(t)
	cfg := Config{
		ID:        "m",
		Transport: tr,
		Keys:      keyPair(t),
		RSAddr:    "rs",
		RSPub:     rsKeys.Public(),
		AuthInfo:  "valid",
		TIdle:     20 * time.Millisecond,
		TActive:   40 * time.Millisecond,
		OpTimeout: 150 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m.Start()
	t.Cleanup(func() {
		m.Close()
		_ = tr.Close()
		n.Close()
	})
	return m, n
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestSendRequiresConnection(t *testing.T) {
	m, _ := newMember(t, nil)
	if err := m.Send([]byte("x")); !errors.Is(err, ErrNotConnected) {
		t.Errorf("Send while detached: err=%v, want ErrNotConnected", err)
	}
}

func TestRejoinWithoutTicket(t *testing.T) {
	m, _ := newMember(t, nil)
	if err := m.Rejoin("ac-1"); err == nil {
		t.Error("Rejoin without a ticket succeeded")
	}
}

func TestJoinWithoutRegistrationServer(t *testing.T) {
	m, _ := newMember(t, func(c *Config) {
		c.RSAddr = ""
		c.RSPub = crypt.PublicKey{}
	})
	if err := m.Join(); err == nil {
		t.Error("Join without an RS configured succeeded")
	}
}

func TestJoinTimesOutWhenRSUnreachable(t *testing.T) {
	// "rs" is not registered on the network: step 1 is lost and the
	// operation must time out.
	m, _ := newMember(t, nil)
	start := time.Now()
	err := m.Join()
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("Join: err=%v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout took %v", elapsed)
	}
}

func TestLeaveWhileDetachedIsNoop(t *testing.T) {
	m, _ := newMember(t, nil)
	if err := m.Leave(); err != nil {
		t.Errorf("Leave while detached: %v", err)
	}
}

func TestAccessorsOnFreshMember(t *testing.T) {
	m, _ := newMember(t, nil)
	if m.Connected() {
		t.Error("fresh member connected")
	}
	if m.AreaID() != "" || m.ControllerID() != "" {
		t.Error("fresh member has area state")
	}
	if m.Epoch() != 0 || m.Received() != 0 || m.Rekeys() != 0 || m.NumKeys() != 0 {
		t.Error("fresh member has nonzero counters")
	}
	if len(m.Directory()) != 0 {
		t.Error("fresh member has a directory")
	}
}

func TestCloseUnblocksPendingOp(t *testing.T) {
	m, _ := newMember(t, func(c *Config) { c.OpTimeout = time.Hour })
	done := make(chan error, 1)
	go func() { done <- m.Join() }()
	time.Sleep(30 * time.Millisecond) // let the op register
	m.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrStopped) {
			t.Errorf("Join after Close: err=%v, want ErrStopped", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Join never returned after Close")
	}
}

func TestConcurrentOpRejected(t *testing.T) {
	m, _ := newMember(t, func(c *Config) { c.OpTimeout = time.Hour })
	first := make(chan error, 1)
	go func() { first <- m.Join() }()
	time.Sleep(30 * time.Millisecond)
	if err := m.Rejoin("ac-0"); !errors.Is(err, ErrBusy) {
		t.Errorf("second op: err=%v, want ErrBusy", err)
	}
	m.Close()
	<-first
}

func TestCallAfterClose(t *testing.T) {
	m, _ := newMember(t, nil)
	m.Close()
	if m.Connected() {
		t.Error("Connected true after close")
	}
	if err := m.Send([]byte("x")); err == nil {
		t.Error("Send after close succeeded")
	}
}
