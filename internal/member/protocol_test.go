package member

import (
	"errors"
	"testing"
	"time"

	"mykil/internal/crypt"
	"mykil/internal/keytree"
	"mykil/internal/simnet"
	"mykil/internal/ticket"
	"mykil/internal/transport"
	"mykil/internal/wire"
)

// protoRig drives a member against hand-scripted registration-server and
// area-controller endpoints, so tests control every server-side byte.
type protoRig struct {
	t   *testing.T
	net *simnet.Network
	m   *Member

	rsKeys  *crypt.KeyPair
	acKeys  *crypt.KeyPair
	memKeys *crypt.KeyPair
	kShared crypt.SymKey

	rs *simReceiver
	ac *simReceiver

	data chan string
}

// simReceiver wraps a transport with typed receive helpers.
type simReceiver struct {
	t  *testing.T
	tr transport.Transport
}

func (s *simReceiver) recv(kind wire.Kind) *wire.Frame {
	s.t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case f := <-s.tr.Recv():
			if f.Kind == kind {
				return f
			}
		case <-deadline:
			s.t.Fatalf("no %v frame within timeout", kind)
			return nil
		}
	}
}

func (s *simReceiver) send(to string, kind wire.Kind, body []byte, sig []byte) {
	s.t.Helper()
	if err := s.tr.Send(to, &wire.Frame{Kind: kind, From: s.tr.Addr(), Body: body, Sig: sig}); err != nil {
		s.t.Fatalf("send %v: %v", kind, err)
	}
}

func newProtoRig(t *testing.T) *protoRig {
	t.Helper()
	r := &protoRig{
		t:       t,
		net:     simnet.New(simnet.Config{}),
		rsKeys:  keyPair(t),
		acKeys:  keyPair(t),
		memKeys: keyPair(t),
		kShared: crypt.NewSymKey(),
		data:    make(chan string, 16),
	}
	mk := func(addr string) transport.Transport {
		tr, err := transport.NewSim(r.net, addr)
		if err != nil {
			t.Fatalf("transport %s: %v", addr, err)
		}
		return tr
	}
	rsTr, acTr, memTr := mk("rs"), mk("ac"), mk("mem")
	r.rs = &simReceiver{t: t, tr: rsTr}
	r.ac = &simReceiver{t: t, tr: acTr}

	m, err := New(Config{
		ID:        "mem",
		Transport: memTr,
		Keys:      r.memKeys,
		RSAddr:    "rs",
		RSPub:     r.rsKeys.Public(),
		AuthInfo:  "valid",
		TIdle:     50 * time.Millisecond,
		TActive:   100 * time.Millisecond,
		OpTimeout: 5 * time.Second,
		OnData: func(payload []byte, origin string) {
			r.data <- origin + ":" + string(payload)
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	r.m = m
	m.Start()
	t.Cleanup(func() {
		m.Close()
		_ = memTr.Close()
		_ = rsTr.Close()
		_ = acTr.Close()
		r.net.Close()
	})
	return r
}

// seal seals a body to the member's public key.
func (r *protoRig) seal(v wire.Marshaler) []byte {
	r.t.Helper()
	blob, err := wire.SealBody(r.memKeys.Public(), v)
	if err != nil {
		r.t.Fatalf("SealBody: %v", err)
	}
	return blob
}

// serveJoin plays a correct RS+AC through the full protocol while the
// member's Join runs, and returns the path it delivered.
func (r *protoRig) serveJoin() []keytree.PathKey {
	r.t.Helper()
	// Step 1 arrives at the RS.
	f1 := r.rs.recv(wire.KindJoinRequest)
	var req wire.JoinRequest
	if err := wire.OpenBody(r.rsKeys, f1.Body, &req); err != nil {
		r.t.Fatalf("step 1 body: %v", err)
	}
	// Step 2.
	nonceWC := crypt.Nonce()
	r.rs.send("mem", wire.KindJoinChallenge, r.seal(wire.JoinChallenge{
		NonceCWPlus1: req.NonceCW + 1,
		NonceWC:      nonceWC,
	}), nil)
	// Step 3.
	f3 := r.rs.recv(wire.KindJoinResponse)
	var resp wire.JoinResponse
	if err := wire.OpenBody(r.rsKeys, f3.Body, &resp); err != nil {
		r.t.Fatalf("step 3 body: %v", err)
	}
	if resp.NonceWCPlus1 != nonceWC+1 {
		r.t.Fatalf("member answered challenge with %d", resp.NonceWCPlus1)
	}
	// Step 5 (we skip a real step 4: the AC is ours).
	nonceAC := crypt.Nonce()
	grant := r.seal(wire.JoinGrant{
		NonceACPlus1: nonceAC + 1,
		AC:           wire.ACInfo{ID: "ac", Addr: "ac", PubDER: r.acKeys.Public().Marshal()},
		Directory: []wire.ACInfo{
			{ID: "ac", Addr: "ac", PubDER: r.acKeys.Public().Marshal()},
			{ID: "ac2", Addr: "ac2", PubDER: r.acKeys.Public().Marshal()},
		},
	})
	r.rs.send("mem", wire.KindJoinGrant, grant, r.rsKeys.Sign(grant))
	// Step 6 arrives at the AC.
	f6 := r.ac.recv(wire.KindJoinToAC)
	var to wire.JoinToAC
	if err := wire.OpenBody(r.acKeys, f6.Body, &to); err != nil {
		r.t.Fatalf("step 6 body: %v", err)
	}
	if to.NonceACPlus2 != nonceAC+2 {
		r.t.Fatalf("member echoed NonceAC+2 = %d", to.NonceACPlus2)
	}
	// Step 7: a one-node path whose root is the area key.
	path := []keytree.PathKey{{Node: 1, Key: crypt.NewSymKey()}}
	tk := &ticket.Ticket{
		JoinTime: time.Now(), Validity: time.Now().Add(time.Hour),
		ID: "mem", PublicKeyDER: r.memKeys.Public().Marshal(), AreaController: "ac",
	}
	tkBlob, err := tk.Seal(r.kShared)
	if err != nil {
		r.t.Fatal(err)
	}
	r.ac.send("mem", wire.KindJoinWelcome, r.seal(wire.JoinWelcome{
		NonceCAPlus1: to.NonceCA + 1,
		TicketBlob:   tkBlob,
		Path:         path,
		Epoch:        1,
		AreaID:       "area-x",
	}), nil)
	return path
}

// join runs the member's blocking Join against the scripted servers.
func (r *protoRig) join() []keytree.PathKey {
	r.t.Helper()
	done := make(chan error, 1)
	go func() { done <- r.m.Join() }()
	path := r.serveJoin()
	if err := <-done; err != nil {
		r.t.Fatalf("Join: %v", err)
	}
	return path
}

func TestClientRunsFullJoinProtocol(t *testing.T) {
	r := newProtoRig(t)
	r.join()
	if !r.m.Connected() || r.m.AreaID() != "area-x" || r.m.ControllerID() != "ac" {
		t.Errorf("post-join state: connected=%v area=%s ac=%s",
			r.m.Connected(), r.m.AreaID(), r.m.ControllerID())
	}
	if r.m.Epoch() != 1 || r.m.NumKeys() != 1 {
		t.Errorf("epoch=%d keys=%d", r.m.Epoch(), r.m.NumKeys())
	}
	if len(r.m.Directory()) != 2 {
		t.Errorf("directory = %d entries", len(r.m.Directory()))
	}
}

func TestClientRejectsRSImpersonation(t *testing.T) {
	r := newProtoRig(t)
	done := make(chan error, 1)
	go func() { done <- r.m.Join() }()

	f1 := r.rs.recv(wire.KindJoinRequest)
	var req wire.JoinRequest
	if err := wire.OpenBody(r.rsKeys, f1.Body, &req); err != nil {
		t.Fatal(err)
	}
	// Wrong nonce echo: an attacker who never decrypted step 1.
	r.rs.send("mem", wire.KindJoinChallenge, r.seal(wire.JoinChallenge{
		NonceCWPlus1: req.NonceCW + 99,
		NonceWC:      1,
	}), nil)
	if err := <-done; !errors.Is(err, ErrDenied) {
		t.Errorf("Join: err=%v, want ErrDenied", err)
	}
}

func TestClientRejectsUnsignedGrant(t *testing.T) {
	r := newProtoRig(t)
	done := make(chan error, 1)
	go func() { done <- r.m.Join() }()

	f1 := r.rs.recv(wire.KindJoinRequest)
	var req wire.JoinRequest
	if err := wire.OpenBody(r.rsKeys, f1.Body, &req); err != nil {
		t.Fatal(err)
	}
	nonceWC := crypt.Nonce()
	r.rs.send("mem", wire.KindJoinChallenge, r.seal(wire.JoinChallenge{
		NonceCWPlus1: req.NonceCW + 1, NonceWC: nonceWC,
	}), nil)
	r.rs.recv(wire.KindJoinResponse)

	// Grant signed with the wrong key must be ignored; the join times
	// out rather than trusting the forged controller assignment.
	grant := r.seal(wire.JoinGrant{
		NonceACPlus1: 2,
		AC:           wire.ACInfo{ID: "evil", Addr: "ac", PubDER: r.acKeys.Public().Marshal()},
	})
	r.rs.send("mem", wire.KindJoinGrant, grant, r.acKeys.Sign(grant))
	select {
	case f := <-r.ac.tr.Recv():
		t.Fatalf("member proceeded to %v after forged grant", f.Kind)
	case <-time.After(150 * time.Millisecond):
	}
}

func TestClientAppliesSignedKeyUpdateOnly(t *testing.T) {
	r := newProtoRig(t)
	path := r.join()

	// Build the next epoch's update: root key re-encrypted under the old.
	newKey := crypt.NewSymKey()
	enc := keytree.SealingEncryptor{}
	entry := keytree.Entry{
		Node: 1, Under: 1,
		Ciphertext: enc.EncryptKey(path[0].Key, newKey),
	}
	body, err := wire.PlainBody(wire.KeyUpdate{AreaID: "area-x", Epoch: 2, Entries: []keytree.Entry{entry}})
	if err != nil {
		t.Fatal(err)
	}

	// Forged signature: dropped.
	r.ac.send("mem", wire.KindKeyUpdate, body, r.rsKeys.Sign(body))
	time.Sleep(50 * time.Millisecond)
	if r.m.Epoch() != 1 {
		t.Fatal("member applied a forged key update")
	}

	// Genuine signature: applied.
	r.ac.send("mem", wire.KindKeyUpdate, body, r.acKeys.Sign(body))
	deadline := time.Now().Add(5 * time.Second)
	for r.m.Epoch() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("member never applied the signed key update")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if r.m.Rekeys() != 1 {
		t.Errorf("rekeys = %d", r.m.Rekeys())
	}
}

func TestClientDecryptsRelayedData(t *testing.T) {
	r := newProtoRig(t)
	path := r.join()

	dataKey := crypt.NewSymKey()
	body, err := wire.PlainBody(wire.Data{
		Origin: "peer", OriginArea: "area-x", Seq: 1, FromArea: "area-x",
		Cipher:  wire.CipherAES,
		EncKey:  crypt.Seal(path[0].Key, dataKey[:]),
		Payload: crypt.Seal(dataKey, []byte("hi")),
	})
	if err != nil {
		t.Fatal(err)
	}
	r.ac.send("mem", wire.KindData, body, nil)
	select {
	case got := <-r.data:
		if got != "peer:hi" {
			t.Errorf("delivered %q", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("data never delivered")
	}
	if r.m.Received() != 1 {
		t.Errorf("Received = %d", r.m.Received())
	}
}

func TestClientIgnoresDataForOtherArea(t *testing.T) {
	r := newProtoRig(t)
	path := r.join()
	dataKey := crypt.NewSymKey()
	body, err := wire.PlainBody(wire.Data{
		Origin: "peer", OriginArea: "area-y", Seq: 1, FromArea: "area-y",
		Cipher:  wire.CipherAES,
		EncKey:  crypt.Seal(path[0].Key, dataKey[:]),
		Payload: crypt.Seal(dataKey, []byte("hi")),
	})
	if err != nil {
		t.Fatal(err)
	}
	r.ac.send("mem", wire.KindData, body, nil)
	select {
	case got := <-r.data:
		t.Fatalf("foreign-area data delivered: %q", got)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestClientRequestsPathOnStaleDataKey(t *testing.T) {
	r := newProtoRig(t)
	r.join()
	// Data sealed under a key the member does not hold: it must ask for
	// its path instead of silently dropping forever.
	dataKey := crypt.NewSymKey()
	body, err := wire.PlainBody(wire.Data{
		Origin: "peer", OriginArea: "area-x", Seq: 1, FromArea: "area-x",
		Cipher:  wire.CipherAES,
		EncKey:  crypt.Seal(crypt.NewSymKey(), dataKey[:]),
		Payload: crypt.Seal(dataKey, []byte("hi")),
	})
	if err != nil {
		t.Fatal(err)
	}
	r.ac.send("mem", wire.KindData, body, nil)
	f := r.ac.recv(wire.KindPathRequest)
	var req wire.PathRequest
	if err := wire.DecodePlain(f.Body, &req); err != nil {
		t.Fatal(err)
	}
	if req.MemberID != "mem" || req.Epoch != 1 {
		t.Errorf("path request = %+v", req)
	}
}

func TestClientSendsMemberAliveWhenQuiet(t *testing.T) {
	r := newProtoRig(t)
	r.join()
	f := r.ac.recv(wire.KindMemberAlive) // within ~TActive
	var alive wire.MemberAlive
	if err := wire.DecodePlain(f.Body, &alive); err != nil {
		t.Fatal(err)
	}
	if alive.MemberID != "mem" {
		t.Errorf("alive from %q", alive.MemberID)
	}
}

func TestClientDetectsEpochAheadAlive(t *testing.T) {
	r := newProtoRig(t)
	r.join()
	body, err := wire.PlainBody(wire.ACAlive{AreaID: "area-x", Epoch: 9})
	if err != nil {
		t.Fatal(err)
	}
	r.ac.send("mem", wire.KindACAlive, body, nil)
	r.ac.recv(wire.KindPathRequest)
}

func TestClientRebasesOnSignedPathUpdate(t *testing.T) {
	r := newProtoRig(t)
	r.join()
	fresh := []keytree.PathKey{
		{Node: 5, Key: crypt.NewSymKey()},
		{Node: 1, Key: crypt.NewSymKey()},
	}
	blob := r.seal(wire.PathUpdate{AreaID: "area-x", Epoch: 7, Path: fresh})
	r.ac.send("mem", wire.KindPathUpdate, blob, r.acKeys.Sign(blob))
	deadline := time.Now().Add(5 * time.Second)
	for r.m.Epoch() != 7 {
		if time.Now().After(deadline) {
			t.Fatal("member never rebased")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if r.m.NumKeys() != 2 {
		t.Errorf("NumKeys = %d, want 2", r.m.NumKeys())
	}
}

func TestClientRejectsUnsignedPathUpdate(t *testing.T) {
	r := newProtoRig(t)
	r.join()
	blob := r.seal(wire.PathUpdate{AreaID: "area-x", Epoch: 7,
		Path: []keytree.PathKey{{Node: 1, Key: crypt.NewSymKey()}}})
	r.ac.send("mem", wire.KindPathUpdate, blob, r.rsKeys.Sign(blob))
	time.Sleep(80 * time.Millisecond)
	if r.m.Epoch() == 7 {
		t.Fatal("member rebased on a forged path update")
	}
}

func TestClientDisconnectDetection(t *testing.T) {
	r := newProtoRig(t)
	r.join()
	// The scripted AC goes silent; 5×T_idle (250ms) later the member
	// must declare disconnection.
	deadline := time.Now().Add(10 * time.Second)
	for r.m.Connected() {
		if time.Now().After(deadline) {
			t.Fatal("member never detected controller silence")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
