package member

import (
	"testing"

	"mykil/internal/wire"
)

func TestSharedDirectoryCanonical(t *testing.T) {
	dc := &directoryCache{m: make(map[[32]byte][]wire.ACInfo)}
	a := []wire.ACInfo{
		{ID: "ac-1", Addr: "addr-1", PubDER: []byte{1, 2, 3}},
		{ID: "ac-2", Addr: "addr-2", PubDER: []byte{4, 5, 6}},
	}
	b := []wire.ACInfo{
		{ID: "ac-1", Addr: "addr-1", PubDER: []byte{1, 2, 3}},
		{ID: "ac-2", Addr: "addr-2", PubDER: []byte{4, 5, 6}},
	}
	ca, cb := dc.canonical(a), dc.canonical(b)
	if &ca[0] != &cb[0] {
		t.Error("equal directories got distinct backings")
	}
	// A different version must not collide with the first.
	c := []wire.ACInfo{{ID: "ac-1", Addr: "addr-9", PubDER: []byte{1, 2, 3}}}
	if cc := dc.canonical(c); len(cc) != 1 || cc[0].Addr != "addr-9" {
		t.Error("distinct directory was conflated with cached one")
	}
	if len(dc.m) != 2 {
		t.Errorf("cache holds %d versions, want 2", len(dc.m))
	}
}

func TestSharedDirectoryFramingDistinguishesShiftedFields(t *testing.T) {
	dc := &directoryCache{m: make(map[[32]byte][]wire.ACInfo)}
	// Without length framing these two would hash identically.
	a := dc.canonical([]wire.ACInfo{{ID: "ab", Addr: "c"}})
	b := dc.canonical([]wire.ACInfo{{ID: "a", Addr: "bc"}})
	if a[0].ID == b[0].ID {
		t.Error("field boundaries were not framed into the fingerprint")
	}
}

func TestSharedDirectoryEmpty(t *testing.T) {
	dc := &directoryCache{m: make(map[[32]byte][]wire.ACInfo)}
	if dc.canonical(nil) != nil {
		t.Error("nil directory should stay nil")
	}
}
